//! Placement planning: run AQUA-PLACER (Algorithm 1) on a mixed-modality
//! cluster and pair producers with consumers via stable matching.
//!
//! Run with: `cargo run --release --example placement_planning`

use aqua::models::zoo;
use aqua::placer::prelude::*;
use aqua::sim::link::bytes::gib;

fn main() {
    // A cluster of 4 servers x 2 GPUs hosting the paper's Table 1-3 mix.
    // Memory numbers: producers offer their Figure-2 plateau free memory;
    // consumers declare their context deficit.
    let models = vec![
        ModelSpec::consumer("OPT-30B/long-prompt", 12 * gib(1)),
        ModelSpec::consumer("OPT-30B/long-prompt-2", 12 * gib(1)),
        ModelSpec::consumer("Mistral-7B/lora", 10 * gib(1)),
        ModelSpec::consumer("Codellama-34B/cfs", 8 * gib(1)),
        ModelSpec::producer("StableDiffusion", 60 * gib(1)),
        ModelSpec::producer("Kandinsky", 55 * gib(1)),
        ModelSpec::producer("AudioGen", 65 * gib(1)),
        ModelSpec::producer("MusicGen", 60 * gib(1)),
    ];
    let inst = PlacementInstance::new(4, 2, gib(80), models);

    let optimal = solve_optimal(&inst);
    let greedy = solve_greedy(&inst);
    optimal.validate(&inst).expect("feasible");
    greedy.validate(&inst).expect("feasible");

    println!("AQUA-PLACER on 4 servers x 2 GPUs:");
    println!(
        "  optimal objective: {}   greedy objective: {}\n",
        optimal.objective(&inst),
        greedy.objective(&inst)
    );

    for s in 0..inst.servers {
        let members = optimal.models_on(s);
        println!("server {s}:");
        let specs: Vec<ModelSpec> = members.iter().map(|&m| inst.models[m].clone()).collect();
        for spec in &specs {
            println!(
                "    {:<24} {} {:>3} GB",
                spec.name,
                if spec.role() == Role::Producer {
                    "offers"
                } else {
                    "needs "
                },
                spec.mem_bytes.abs() >> 30
            );
        }
        // Within the server, stable matching pairs each consumer with
        // exactly one producer that covers its deficit.
        for pair in stable_match(&specs) {
            println!(
                "    pairing: {} <- {}",
                specs[pair.consumer].name, specs[pair.producer].name
            );
        }
    }

    println!("\nModel inventory backing these numbers:");
    for m in zoo::all_models() {
        println!(
            "  {:<20} {:?}: weights {:>2} GiB",
            m.name,
            m.resource_bound(),
            m.weights_bytes() >> 30
        );
    }
}
