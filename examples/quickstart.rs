//! Quickstart: offload LLM inference context to a neighbouring GPU with
//! AQUA and compare against the DRAM-over-PCIe baseline.
//!
//! Run with: `cargo run --example quickstart`

use aqua::core::prelude::*;
use aqua::engines::offload::{DramOffloader, Offloader};
use aqua::sim::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

fn main() {
    // The paper's first testbed: two A100-80G GPUs joined by NVLink.
    let server = Rc::new(ServerTopology::nvlink_pair(GpuSpec::a100_80g()));
    let transfers = Rc::new(RefCell::new(TransferEngine::new()));
    let coordinator = Arc::new(Coordinator::new());

    // GPU 1 hosts StableDiffusion at its throughput plateau and leases its
    // spare HBM to AQUA (Figure 2b shows tens of GB free).
    coordinator.lease(GpuRef::single(GpuId(1)), 40 << 30);
    println!("GPU 1 leased 40 GiB to AQUA\n");

    // GPU 0 hosts a memory-bound LLM that must offload a 4 GiB KV cache
    // scattered across 2,048 block tensors.
    let payload: u64 = 4 << 30;
    let chunks: u64 = 2_048;

    let mut aqua = AquaOffloader::new(
        GpuRef::single(GpuId(0)),
        Arc::clone(&coordinator),
        server.clone(),
        transfers.clone(),
    );
    let mut dram = DramOffloader::pinned(&server, GpuId(0), transfers.clone());
    let mut dram_scattered = DramOffloader::pinned_scattered(&server, GpuId(0), transfers);

    let t_aqua = aqua.swap_out(payload, chunks, SimTime::ZERO).as_secs_f64();
    let t_dram = dram.swap_out(payload, chunks, SimTime::ZERO).as_secs_f64();
    let t_scat = dram_scattered
        .swap_out(payload, chunks, SimTime::ZERO)
        .as_secs_f64();

    println!("Offloading 4 GiB of KV cache from GPU 0:");
    println!("  AQUA (gather + NVLink to GPU 1): {:7.1} ms", t_aqua * 1e3);
    println!("  DRAM (pinned, coalesced PCIe):   {:7.1} ms", t_dram * 1e3);
    println!("  DRAM (per-tensor PCIe copies):   {:7.1} ms", t_scat * 1e3);
    println!(
        "\nAQUA is {:.1}x faster than the pinned DRAM path ({:.1}x vs per-tensor copies).",
        t_dram / t_aqua,
        t_scat / t_aqua
    );
    println!(
        "Offloaded bytes now live on: {} (fabric traffic: {} MiB)",
        aqua.location(),
        aqua.fabric_bytes_moved() >> 20
    );
}
