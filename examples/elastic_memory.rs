//! Elastic AQUA tensors: the full donate → offload → reclaim → fallback →
//! re-donate lifecycle, plus the migratable-tensor pointer semantics.
//!
//! Run with: `cargo run --example elastic_memory`

use aqua::core::prelude::*;
use aqua::core::tensor::TensorId;
use aqua::engines::offload::Offloader;
use aqua::sim::prelude::*;
use bytes::Bytes;
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

fn main() {
    // --- Part 1: the AQUA TENSOR abstraction (paper §B). ---
    println!("== AQUA TENSORS: migratable, location-transparent ==");
    let mut table = TensorTable::new();
    let id: TensorId = table.to_responsive_tensor(
        Bytes::from_static(b"kv-cache-of-prompt-42"),
        TensorLocation::LocalHbm,
    );
    let ptr = table.to_torch_tensor(id).expect("live tensor");
    println!("tensor {id:?} resolved at {}", ptr.location());

    // aqua.respond(): AQUA migrates the tensor between iterations.
    table.migrate(id, TensorLocation::PeerGpu { gpu: 1 });
    match table.read(ptr) {
        Err(stale) => println!("stale pointer rejected safely: {stale}"),
        Ok(_) => unreachable!("migration must invalidate old pointers"),
    }
    let fresh = table.to_torch_tensor(id).expect("re-resolve");
    println!(
        "fresh pointer at {} reads {} bytes intact\n",
        fresh.location(),
        table.read(fresh).expect("valid").len()
    );

    // --- Part 2: the elastic lease lifecycle. ---
    println!("== Elastic leases: donate, offload, reclaim, fall back ==");
    let server = Rc::new(ServerTopology::nvlink_pair(GpuSpec::a100_80g()));
    let transfers = Rc::new(RefCell::new(TransferEngine::new()));
    let coordinator = Arc::new(Coordinator::new());
    let producer = GpuRef::single(GpuId(1));
    let consumer = GpuRef::single(GpuId(0));

    coordinator.lease(producer, 10 << 30);
    println!("producer leased 10 GiB");

    let mut offloader = AquaOffloader::new(consumer, Arc::clone(&coordinator), server, transfers);
    let t = offloader.swap_out(6 << 30, 3_000, SimTime::ZERO);
    println!(
        "consumer offloaded 6 GiB over NVLink in {} (location: {})",
        t,
        offloader.location()
    );

    // The producer's load spikes: it reclaims.
    coordinator.reclaim_request(producer);
    let resume = offloader.on_iteration_boundary(SimTime::from_secs(10));
    println!(
        "reclaim: consumer blocked until {} migrating to DRAM (location: {})",
        resume,
        offloader.location()
    );
    match coordinator.reclaim_status(producer) {
        ReclaimStatus::Released { bytes, at } => {
            println!("producer got {} GiB back at {at}", bytes >> 30)
        }
        other => println!("unexpected status {other:?}"),
    }

    // Later the producer donates again; the offloader promotes the bytes
    // back to the fast path in the background.
    coordinator.lease(producer, 10 << 30);
    offloader.on_iteration_boundary(SimTime::from_secs(60));
    println!(
        "after re-donation the context returned to the fast path: {} ({} GiB on peer)",
        offloader.location(),
        offloader.peer_total() >> 30
    );
}
