//! Responsive serving: fair-schedule prompts on a memory-bound LLM, paging
//! context to a colocated producer GPU — the Figure 9 scenario end to end.
//!
//! Run with: `cargo run --release --example responsive_serving`

use aqua::core::coordinator::GpuRef;
use aqua::core::informer::BatchInformer;
use aqua::core::offloader::AquaOffloader;
use aqua::engines::cfs::{CfsConfig, CfsEngine};
use aqua::engines::driver::{Driver, Engine};
use aqua::engines::producer::{ProducerEngine, ProducerModel};
use aqua::engines::vllm::{VllmConfig, VllmEngine};
use aqua::models::zoo;
use aqua::sim::prelude::*;
use aqua::workloads::items::item_trace;
use aqua::workloads::sharegpt::{sharegpt_trace, ShareGptConfig};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

fn main() {
    let geom = *zoo::codellama_34b().llm_geometry().unwrap();
    let trace = sharegpt_trace(&ShareGptConfig::code_summary(5.0, 150), 7, 0);
    let horizon = SimTime::from_secs(1_800);
    let pool = 1 << 30; // Codellama-34B leaves little HBM after weights

    // --- Baseline: vLLM batch processing. ---
    let mut vllm = VllmEngine::new(
        geom,
        GpuSpec::a100_80g(),
        VllmConfig {
            kv_pool_bytes: pool,
            max_batch: 48,
            ..VllmConfig::default()
        },
    );
    let mut driver = Driver::new();
    driver.schedule_trace(0, trace.clone());
    {
        let mut engines: Vec<&mut dyn Engine> = vec![&mut vllm];
        driver.run(&mut engines, horizon);
    }
    let vllm_log: aqua::metrics::RequestLog = vllm.drain_completions().into_iter().collect();

    // --- AQUA: fair scheduling, context paged to the Kandinsky GPU. ---
    let server = Rc::new(ServerTopology::nvlink_pair(GpuSpec::a100_80g()));
    let transfers = Rc::new(RefCell::new(TransferEngine::new()));
    let coordinator = Arc::new(aqua::core::Coordinator::new());

    let kandinsky = zoo::kandinsky();
    let mut producer = ProducerEngine::new(
        ProducerModel::Diffusion(*kandinsky.diffusion_geometry().unwrap()),
        GpuSpec::a100_80g(),
        8,
    )
    .with_informer(Box::new(BatchInformer::new(
        GpuRef::single(GpuId(1)),
        Arc::clone(&coordinator),
    )));

    let offloader = AquaOffloader::new(GpuRef::single(GpuId(0)), coordinator, server, transfers);
    let mut cfs = CfsEngine::new(
        geom,
        GpuSpec::a100_80g(),
        CfsConfig {
            slice_tokens: 4,
            max_active: 48,
            kv_pool_bytes: pool,
            ..CfsConfig::default()
        },
        Box::new(offloader),
    );

    let mut driver = Driver::new();
    driver.schedule_trace(0, trace);
    driver.schedule_trace(1, item_trace(0.4, 200, 99, 1_000_000));
    {
        let mut engines: Vec<&mut dyn Engine> = vec![&mut cfs, &mut producer];
        driver.run(&mut engines, horizon);
    }
    let aqua_log: aqua::metrics::RequestLog = cfs.drain_completions().into_iter().collect();

    println!("Codellama-34B, 150 code-summary requests at 5 req/s:\n");
    println!(
        "  vLLM (batch):  {} done | TTFT {} | RCT {}",
        vllm_log.len(),
        vllm_log.ttft_summary(),
        vllm_log.rct_summary()
    );
    println!(
        "  AQUA (CFS):    {} done | TTFT {} | RCT {}",
        aqua_log.len(),
        aqua_log.ttft_summary(),
        aqua_log.rct_summary()
    );
    println!(
        "\nTTFT p95 improvement: {:.1}x (the paper's Figure 9 reports ~4x).",
        vllm_log.ttft_summary().p95 / aqua_log.ttft_summary().p95
    );
    println!(
        "Producer stayed busy throughout: {} images generated, {} GiB donated.",
        producer.items_served(),
        producer.donated_bytes() >> 30
    );
}
