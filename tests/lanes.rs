//! PDES lane-executor determinism: a sharded scenario must render the same
//! bytes and fold the same telemetry digests at every lane count. The
//! executor's conservative null-message windows make the window sequence a
//! function of the scenario alone, so these tests compare full runs at
//! `--lanes 1/4/8` in-run — no pinned digests, just mutual identity.

use aqua_bench::{e2e_cluster, scale_cluster, serve_chaos};

#[test]
fn e2e_sharded_is_byte_identical_across_lane_counts() {
    // §6.1 with every consumer pair as its own decoupled shard: the
    // assembled placement + outcome tables and the folded shard digest must
    // be identical whether the pairs run on 1, 4 or 8 lanes.
    let runs: Vec<_> = [1usize, 4, 8]
        .iter()
        .map(|&lanes| e2e_cluster::run_sharded(e2e_cluster::Split::LlmHeavy, 30, 3, lanes))
        .collect();
    let (base_result, base) = &runs[0];
    let (bp, bo) = e2e_cluster::tables(base_result);
    let base_render = format!("{bp}\n{bo}");
    assert!(base.sim_events > 0, "shards must process simulator events");
    assert!(base.events > 0, "shards must journal trace events");
    for (result, outcome) in &runs[1..] {
        let (p, o) = e2e_cluster::tables(result);
        assert_eq!(
            format!("{p}\n{o}"),
            base_render,
            "rendered tables must be lane-count independent"
        );
        assert_eq!(outcome.digest, base.digest, "folded digests must match");
        assert_eq!(outcome.events, base.events);
        assert_eq!(outcome.sim_events, base.sim_events);
        assert_eq!(outcome.windows, base.windows);
    }
}

#[test]
fn serve_chaos_sharded_is_byte_identical_across_lane_counts() {
    // Every overload/crash cell as its own shard, crash cells audited: the
    // concatenated cell tables and folded digest are lane-count independent,
    // and the auditor stays silent on every lane count.
    let runs: Vec<_> = [1usize, 4, 8]
        .iter()
        .map(|&lanes| serve_chaos::run_sharded(16, 3, lanes, true))
        .collect();
    let (base_output, base) = &runs[0];
    assert!(base.sim_events > 0, "chaos shards must process events");
    assert!(
        base_output.contains("crash recovery"),
        "suite must include the crash cells"
    );
    for (output, outcome) in &runs[1..] {
        assert_eq!(output, base_output, "cell tables must be identical");
        assert_eq!(outcome.digest, base.digest, "folded digests must match");
        assert_eq!(outcome.events, base.events);
        assert_eq!(outcome.sim_events, base.sim_events);
    }
}

#[test]
fn scale_cluster_is_byte_identical_across_lane_counts() {
    // The coupled case: servers heartbeat the coordinator through mailboxes,
    // so the executor must take real conservative windows — and the table,
    // digest, window count and message count must still be identical at
    // lanes 1/4/8.
    let runs: Vec<_> = [1usize, 4, 8]
        .iter()
        .map(|&lanes| {
            scale_cluster::run_scale(&scale_cluster::ScaleSpec {
                servers: 5,
                requests_per_server: 16,
                rate: 2.0,
                seed: 7,
                lanes,
                audited: true,
            })
        })
        .collect();
    let base = &runs[0];
    assert!(base.messages >= 10, "heartbeats must cross shards");
    assert!(base.windows > 1, "coupled shards must take real windows");
    assert_eq!(base.audit_violations, 0, "audited crash must stay clean");
    for run in &runs[1..] {
        assert_eq!(run.table, base.table, "tables must be identical");
        assert_eq!(run.digest, base.digest, "digests must match");
        assert_eq!(run.windows, base.windows);
        assert_eq!(run.messages, base.messages);
        assert_eq!(run.sim_events, base.sim_events);
        assert_eq!(run.journal_events, base.journal_events);
        assert_eq!(run.audit_violations, 0);
    }
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(4))]
    /// Randomized fault plans fire identically under sharded execution: for
    /// any (servers, per-server trace length, seed), the audited point's
    /// crash window lands inside the arrival span, and running the cluster
    /// at lanes 1 vs 4 yields identical tables, digests and audit results.
    #[test]
    fn randomized_fault_plans_fire_identically_when_sharded(
        servers in 2usize..5,
        rps in 8usize..25,
        seed in 0u64..1_000,
    ) {
        let spec = |lanes| scale_cluster::ScaleSpec {
            servers,
            requests_per_server: rps,
            rate: 2.0,
            seed,
            lanes,
            audited: true,
        };
        let (crash_start, crash_end) = spec(1).crash_window();
        assert!(crash_start >= 1 && crash_end > crash_start);
        let seq = scale_cluster::run_scale(&spec(1));
        let par = scale_cluster::run_scale(&spec(4));
        assert_eq!(seq.table, par.table, "tables must be identical");
        assert_eq!(seq.digest, par.digest, "digests must match");
        assert_eq!(seq.windows, par.windows);
        assert_eq!(seq.messages, par.messages);
        assert_eq!(seq.sim_events, par.sim_events);
        assert_eq!(seq.audit_violations, 0);
        assert_eq!(par.audit_violations, 0);
    }
}
