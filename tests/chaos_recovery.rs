//! Chaos acceptance: a producer GPU crash mid-lease must not lose consumer
//! work, must keep the degraded consumer within 2× of the FlexGen DRAM
//! baseline, and must recover to ≥ 90% of the pre-fault rate once the
//! producer returns and re-donates.

use aqua_bench::chaos_degradation::{run, run_traced, ChaosTimeline};
use aqua_telemetry::JournalTracer;
use std::sync::Arc;

#[test]
fn producer_crash_meets_acceptance_bounds() {
    let tl = ChaosTimeline::short();
    let r = run(&tl, 5);
    // The fault actually happened: the coordinator expired the lease on
    // missed heartbeats and the offloader walked its failover ladder.
    assert!(r.lease_expirations >= 1, "no lease expired: {r:?}");
    assert!(r.failovers >= 1, "no failover engaged: {r:?}");
    assert!(
        r.degraded_entries >= 1,
        "never entered degraded mode: {r:?}"
    );
    // During the fault the consumer keeps moving at DRAM-class speed:
    // within 2× of the FlexGen DRAM baseline.
    assert!(
        r.chaos.fault_tput > 0.0,
        "consumer stalled during the fault"
    );
    assert!(
        r.chaos.fault_tput >= r.dram_baseline_tput / 2.0,
        "degraded throughput {:.2} tok/s vs DRAM baseline {:.2} tok/s",
        r.chaos.fault_tput,
        r.dram_baseline_tput
    );
    // After the producer returns, throughput recovers to >= 90% of what the
    // identical fault-free run does over the same span (the long-prompt
    // job's per-token cost grows with its context, so the healthy run at
    // the same context length is the fair yardstick).
    assert!(
        r.chaos.recovery_tput >= 0.9 * r.nofault_recovery_tput,
        "recovery {:.2} tok/s vs fault-free {:.2} tok/s",
        r.chaos.recovery_tput,
        r.nofault_recovery_tput
    );
}

#[test]
fn no_consumer_progress_is_lost_through_the_crash() {
    let tl = ChaosTimeline::short();
    let journal = Arc::new(JournalTracer::new());
    let sample_secs = 5u64;
    let r = run_traced(&tl, sample_secs, journal.clone());
    assert!(r.consumer_tokens > 0);
    // The in-flight long-prompt job survives the crash: tokens keep being
    // generated after the lease expiry and DRAM re-materialisation.
    let tokens_after_crash: f64 = r
        .consumer_throughput
        .points()
        .iter()
        .filter(|(t, _)| t.as_secs_f64() > (tl.crash_start + 15) as f64)
        .map(|(_, v)| v * sample_secs as f64)
        .sum();
    assert!(
        tokens_after_crash > 0.0,
        "consumer generated nothing after the crash"
    );
    // The journal witnesses the whole failure cascade.
    let names: Vec<&'static str> = journal.events().iter().map(|e| e.name()).collect();
    for expected in [
        "fault_injected",
        "fault_cleared",
        "lease_expired",
        "failover_engaged",
        "degraded_mode",
    ] {
        assert!(
            names.contains(&expected),
            "journal is missing a {expected} event"
        );
    }
}
