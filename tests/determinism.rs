//! Reproducibility: every experiment is a pure function of its seed — the
//! property the whole harness rests on (integer-nanosecond clock, explicit
//! RNG seeds, FIFO event tie-breaking).

use aqua::workloads::prelude::*;
use aqua_bench::{fig07_long_prompt, fig08_lora, fig09_cfs};

#[test]
fn traces_are_seed_deterministic() {
    let cfg = ShareGptConfig::new(5.0, 100);
    assert_eq!(sharegpt_trace(&cfg, 1, 0), sharegpt_trace(&cfg, 1, 0));
    assert_ne!(sharegpt_trace(&cfg, 1, 0), sharegpt_trace(&cfg, 2, 0));
    assert_eq!(lora_trace(4.0, 50, 30, 9, 0), lora_trace(4.0, 50, 30, 9, 0));
    assert_eq!(item_trace(1.0, 20, 3, 0), item_trace(1.0, 20, 3, 0));
}

#[test]
fn long_prompt_experiment_is_deterministic() {
    let a = fig07_long_prompt::run(30);
    let b = fig07_long_prompt::run(30);
    assert_eq!(a.tokens, b.tokens);
}

#[test]
fn lora_experiment_is_deterministic() {
    let a = fig08_lora::run(2.0, 40, 5);
    let b = fig08_lora::run(2.0, 40, 5);
    for ((na, la), (nb, lb)) in a.systems.iter().zip(b.systems.iter()) {
        assert_eq!(na, nb);
        assert_eq!(la.records(), lb.records());
    }
}

#[test]
fn cfs_experiment_is_deterministic() {
    let cfg = fig09_cfs::CfsExperiment::figure9(5.0, 40, 3);
    let a = fig09_cfs::run(&cfg);
    let b = fig09_cfs::run(&cfg);
    for ((na, la), (nb, lb)) in a.systems.iter().zip(b.systems.iter()) {
        assert_eq!(na, nb);
        assert_eq!(la.rcts(), lb.rcts());
        assert_eq!(la.ttfts(), lb.ttfts());
    }
}

#[test]
fn different_seeds_differ() {
    let a = fig08_lora::run(2.0, 40, 5);
    let b = fig08_lora::run(2.0, 40, 6);
    assert_ne!(
        a.systems[0].1.rcts(),
        b.systems[0].1.rcts(),
        "different seeds must explore different workloads"
    );
}

/// Journals a scaled-down Figure 9 scenario and returns the telemetry digest
/// (plus the journal length, to guard against trivially-empty journals).
fn traced_cfs_digest(seed: u64) -> (u64, usize) {
    use aqua_telemetry::JournalTracer;
    use std::sync::Arc;

    let journal = Arc::new(JournalTracer::new());
    let cfg = fig09_cfs::CfsExperiment::figure9(5.0, 30, seed);
    let _ = fig09_cfs::run_traced(&cfg, journal.clone());
    (journal.digest(), journal.len())
}

#[test]
fn telemetry_digest_is_seed_deterministic() {
    // The whole instrumented stack — transfers, leases, informer decisions,
    // CFS slices — must journal the identical event stream for the same
    // seed: the digest is a 64-bit witness of the entire execution.
    let (da, na) = traced_cfs_digest(3);
    let (db, nb) = traced_cfs_digest(3);
    assert!(na > 0, "instrumented run must journal events");
    assert_eq!(na, nb, "same seed, same event count");
    assert_eq!(da, db, "same seed, same telemetry digest");
}

#[test]
fn telemetry_digest_differs_across_seeds() {
    let (da, _) = traced_cfs_digest(3);
    let (db, _) = traced_cfs_digest(4);
    assert_ne!(da, db, "different seeds must produce different journals");
}

/// Journals the chaos run (producer crash + lease expiry + failover) and
/// returns the digest/length pair.
fn traced_chaos_digest(tl: &aqua_bench::chaos_degradation::ChaosTimeline) -> (u64, usize) {
    use aqua_telemetry::JournalTracer;
    use std::sync::Arc;

    let journal = Arc::new(JournalTracer::new());
    let _ = aqua_bench::chaos_degradation::run_traced(tl, 5, journal.clone());
    (journal.digest(), journal.len())
}

#[test]
fn chaos_run_is_digest_deterministic() {
    // Fault injection must not break reproducibility: the same FaultPlan on
    // the same seed journals the identical event stream — aborted transfers,
    // retries, lease expiry, failover and degraded-mode transitions included.
    let tl = aqua_bench::chaos_degradation::ChaosTimeline::short();
    let (da, na) = traced_chaos_digest(&tl);
    let (db, nb) = traced_chaos_digest(&tl);
    assert!(na > 0, "chaos run must journal events");
    assert_eq!(na, nb, "same FaultPlan, same event count");
    assert_eq!(da, db, "same FaultPlan, same telemetry digest");
}

/// The sweep points the parallel-determinism tests fan out: both Figure 9
/// request rates (scaled down) plus the chaos failover run — the heaviest,
/// most event-dense experiments in the suite.
fn sweep_points() -> Vec<aqua_bench::runner::ReproPoint> {
    use aqua_bench::runner::ReproPoint;
    let mut points: Vec<ReproPoint> = fig09_cfs::PAPER_RATES
        .iter()
        .map(|&rate| {
            ReproPoint::new("fig09", format!("rate={rate}"), move || {
                let cfg = fig09_cfs::CfsExperiment::figure9(rate, 30, 3);
                let r = fig09_cfs::run(&cfg);
                fig09_cfs::table(&r, &format!("Figure 9 at {rate} req/s")).to_string()
            })
        })
        .collect();
    points.push(ReproPoint::new("chaos", "short", || {
        let tl = aqua_bench::chaos_degradation::ChaosTimeline::short();
        let r = aqua_bench::chaos_degradation::run(&tl, 5);
        aqua_bench::chaos_degradation::table(&r).to_string()
    }));
    points
}

#[test]
fn sweep_is_schedule_independent_across_job_counts() {
    // The tentpole guarantee: fanning the suite across worker threads must
    // not perturb a single simulation. Every job count renders the same
    // bytes AND folds the same per-point telemetry digests — the combined
    // digest is a witness that each simulation's full event stream was
    // identical, not merely its printed summary.
    use aqua_bench::sweep::Sweep;
    let points = sweep_points();
    let runs: Vec<_> = [1usize, 4, 8]
        .iter()
        .map(|&jobs| Sweep::new().jobs(jobs).run(&points, |p| p.render()))
        .collect();
    let baseline = &runs[0];
    assert!(baseline.total_events() > 0, "points must journal events");
    for run in &runs[1..] {
        assert_eq!(run.points.len(), baseline.points.len());
        for (a, b) in baseline.points.iter().zip(run.points.iter()) {
            assert_eq!(a.result, b.result, "rendered tables must be identical");
            assert_eq!(a.digest, b.digest, "per-point digests must be identical");
            assert_eq!(a.events, b.events, "per-point event counts must match");
        }
        assert_eq!(
            run.combined_digest(),
            baseline.combined_digest(),
            "combined digest must be independent of the thread schedule"
        );
    }
}

#[test]
fn suite_runner_is_byte_identical_across_job_counts() {
    // Same property one layer up: the stitched `aqua-repro` output for the
    // simulation-heavy experiments, through the real experiment → point
    // decomposition, at 1/4/8 jobs.
    use aqua_bench::runner::{run_suite, ReproArgs};
    let a = ReproArgs {
        window: 30,
        seed: 3,
        count: 30,
        lanes: 1,
    };
    let names = ["fig09", "fig12"];
    let seq = run_suite(&names, &a, 1, true, false).unwrap();
    for jobs in [4usize, 8] {
        let par = run_suite(&names, &a, jobs, true, false).unwrap();
        assert_eq!(seq.output, par.output, "stdout must match at {jobs} jobs");
        assert_eq!(seq.combined_digest, par.combined_digest);
        assert_eq!(seq.total_events, par.total_events);
    }
    assert!(seq.output.contains("Figure 9 at 2 req/s"));
}

#[test]
fn serve_experiment_is_byte_identical_across_job_counts() {
    // The gateway tentpole's determinism gate: every policy × load × offload
    // cell of `aqua-repro serve` renders the same bytes and folds the same
    // telemetry digests at 1/4/8 jobs.
    use aqua_bench::runner::{run_suite, ReproArgs};
    let a = ReproArgs {
        window: 30,
        seed: 3,
        count: 32,
        lanes: 1,
    };
    let seq = run_suite(&["serve"], &a, 1, true, false).unwrap();
    assert!(seq.total_events > 0, "gateway cells must journal events");
    for jobs in [4usize, 8] {
        let par = run_suite(&["serve"], &a, jobs, true, false).unwrap();
        assert_eq!(seq.output, par.output, "stdout must match at {jobs} jobs");
        assert_eq!(seq.combined_digest, par.combined_digest);
        assert_eq!(seq.total_events, par.total_events);
    }
    assert!(seq.output.contains("Serve `sjf+bucket`"));
}

#[test]
fn serve_chaos_experiment_is_byte_identical_across_job_counts() {
    // The overload/crash-recovery study inherits the same gate: every
    // mode × load goodput cell and both crash-restore cells of
    // `aqua-repro serve_chaos` render the same bytes and fold the same
    // telemetry digests at 1/4/8 jobs.
    use aqua_bench::runner::{run_suite, ReproArgs};
    let a = ReproArgs {
        window: 30,
        seed: 3,
        count: 24,
        lanes: 1,
    };
    let seq = run_suite(&["serve_chaos"], &a, 1, true, false).unwrap();
    assert!(seq.total_events > 0, "chaos cells must journal events");
    for jobs in [4usize, 8] {
        let par = run_suite(&["serve_chaos"], &a, jobs, true, false).unwrap();
        assert_eq!(seq.output, par.output, "stdout must match at {jobs} jobs");
        assert_eq!(seq.combined_digest, par.combined_digest);
        assert_eq!(seq.total_events, par.total_events);
    }
    assert!(seq.output.contains("crash recovery"));
}

#[test]
fn coord_chaos_experiment_is_byte_identical_across_job_counts() {
    // The control-plane recovery study inherits the determinism gate:
    // every cell of `aqua-repro coord_chaos` — including the coordinator
    // crash and the partition, epoch bump and resync traffic and all —
    // renders the same bytes and folds the same telemetry digests at
    // 1/4/8 jobs.
    use aqua_bench::runner::{run_suite, ReproArgs};
    let a = ReproArgs {
        window: 30,
        seed: 3,
        count: 80,
        lanes: 1,
    };
    let seq = run_suite(&["coord_chaos"], &a, 1, true, false).unwrap();
    assert!(
        seq.total_events > 0,
        "coord-chaos cells must journal events"
    );
    for jobs in [4usize, 8] {
        let par = run_suite(&["coord_chaos"], &a, jobs, true, false).unwrap();
        assert_eq!(seq.output, par.output, "stdout must match at {jobs} jobs");
        assert_eq!(seq.combined_digest, par.combined_digest);
        assert_eq!(seq.total_events, par.total_events);
    }
    assert!(seq.output.contains("control-plane recovery"));
}

#[test]
fn audited_coordinator_crash_run_is_digest_identical_to_unaudited() {
    // "Silent when clean" through a control-plane failure: attaching the
    // auditor to the coord-chaos crash cell — epoch bump, fenced
    // rejections, informer resync and lease re-homing included — must
    // journal the exact same event stream and digest as the unaudited
    // cell.
    use aqua_bench::coord_chaos::{run_cell_traced, CoordCell, CoordChaosConfig};
    use aqua_sim::audit::Auditor;
    use aqua_telemetry::JournalTracer;
    use std::sync::Arc;

    let cfg = CoordChaosConfig::standard(80, 3);
    let plain = Arc::new(JournalTracer::new());
    let audited = Arc::new(JournalTracer::new());
    let auditor = Auditor::with_tracer(audited.clone());
    let ra = run_cell_traced(&cfg, CoordCell::Crash, plain.clone(), None);
    let rb = run_cell_traced(
        &cfg,
        CoordCell::Crash,
        audited.clone(),
        Some(auditor.clone()),
    );
    assert!(
        auditor.is_clean(),
        "coordinator crash cell tripped the audit: {:?}",
        auditor.violations()
    );
    assert_eq!(ra.epoch, 2, "the crash must have bumped the epoch");
    assert_eq!(ra.streams.len(), rb.streams.len());
    assert_eq!(
        plain.len(),
        audited.len(),
        "audit hooks added/dropped events"
    );
    assert_eq!(
        plain.digest(),
        audited.digest(),
        "audit hooks perturbed the journal"
    );
    assert!(
        !plain.is_empty(),
        "coordinator crash cell journaled nothing"
    );
}

#[test]
fn audited_gateway_chaos_run_is_digest_identical_to_unaudited() {
    // The "silent when clean" property extended to the serving path:
    // attaching the crash-restore auditor to a gateway cell that replays a
    // mid-run GpuCrash — retries, swap restores and all — must journal the
    // exact same event stream and digest as the unaudited cell.
    use aqua_bench::serve_chaos::{run_cell_traced, CellSpec, ChaosExperiment};
    use aqua_sim::audit::Auditor;
    use aqua_telemetry::JournalTracer;
    use std::sync::Arc;

    let cfg = ChaosExperiment::standard(24, 3);
    let spec = CellSpec::crashed(true);
    let plain = Arc::new(JournalTracer::new());
    let audited = Arc::new(JournalTracer::new());
    let auditor = Auditor::with_tracer(audited.clone());
    let ra = run_cell_traced(&cfg, spec, plain.clone(), None);
    let rb = run_cell_traced(&cfg, spec, audited.clone(), Some(auditor.clone()));
    assert!(
        auditor.is_clean(),
        "gateway chaos cell tripped the audit: {:?}",
        auditor.violations()
    );
    assert!(
        ra.retries + rb.retries > 0,
        "the crash window must have forced retries"
    );
    assert_eq!(ra.streams.len(), rb.streams.len());
    assert_eq!(
        plain.len(),
        audited.len(),
        "audit hooks added/dropped events"
    );
    assert_eq!(
        plain.digest(),
        audited.digest(),
        "audit hooks perturbed the journal"
    );
    assert!(!plain.is_empty(), "gateway chaos cell journaled nothing");
}

#[test]
fn chaos_digest_differs_across_fault_plans() {
    let a = aqua_bench::chaos_degradation::ChaosTimeline::short();
    let mut b = a;
    b.crash_start += 10;
    let (da, _) = traced_chaos_digest(&a);
    let (db, _) = traced_chaos_digest(&b);
    assert_ne!(da, db, "a different crash window must change the journal");
}

#[test]
fn audited_chaos_run_is_digest_identical_to_unaudited() {
    // aqua-audit's "silent when clean" property: attaching the full auditor
    // stack (transfer engine, coordinator, driver, offloader) to a chaos
    // run that trips no invariant must journal the exact same event stream
    // — and digest — as the unaudited run. Audited runs therefore remain
    // comparable against any digest on file.
    use aqua_bench::chaos_degradation::{run_traced, run_traced_audited, ChaosTimeline};
    use aqua_sim::audit::Auditor;
    use aqua_telemetry::JournalTracer;
    use std::sync::Arc;

    let tl = ChaosTimeline::short();
    let plain = Arc::new(JournalTracer::new());
    let audited = Arc::new(JournalTracer::new());
    let auditor = Auditor::with_tracer(audited.clone());
    let ra = run_traced(&tl, 5, plain.clone());
    let rb = run_traced_audited(&tl, 5, audited.clone(), Some(auditor.clone()));
    assert!(
        auditor.is_clean(),
        "chaos run tripped the audit: {:?}",
        auditor.violations()
    );
    assert_eq!(ra.consumer_tokens, rb.consumer_tokens);
    assert_eq!(
        plain.len(),
        audited.len(),
        "audit hooks added/dropped events"
    );
    assert_eq!(
        plain.digest(),
        audited.digest(),
        "audit hooks perturbed the journal"
    );
    assert!(!plain.is_empty(), "chaos run journaled nothing");
}

proptest::proptest! {
    /// Seeded fault-plan *generation* is deterministic and schedule-independent:
    /// for any base seed, deriving the fuzzer's points and journalling their
    /// randomized plans produces identical per-point digests at --jobs 1/4/8.
    #[test]
    fn fault_plan_generation_is_job_count_independent(base_seed in 0u64..u64::MAX) {
        use aqua_bench::fuzz::FuzzPoint;
        use aqua_bench::sweep::Sweep;
        use aqua_sim::fault::{FaultPlan, RandomFaultProfile};
        use aqua_sim::gpu::GpuId;
        use aqua_sim::time::{SimDuration, SimTime};
        use aqua_sim::topology::PortId;

        let points: Vec<FuzzPoint> = (0..12).map(|i| FuzzPoint::derive(base_seed, i)).collect();
        let generate = |p: &FuzzPoint| {
            let tracer = aqua_bench::trace::tracer();
            let profile = RandomFaultProfile {
                link_ports: vec![PortId::NvlinkEgress(GpuId(1)), PortId::NvlinkIngress(GpuId(1))],
                crash_gpus: vec![GpuId(1)],
                control_plane: true,
                events: p.faults,
                min_duration: SimDuration::from_secs(5),
                max_duration: SimDuration::from_secs(30),
            };
            let plan = FaultPlan::randomized(p.seed, SimTime::from_secs(p.horizon_secs), &profile);
            plan.emit(&tracer);
            plan.windows().len()
        };
        let seq = Sweep::new().run(&points, generate);
        let par4 = Sweep::new().jobs(4).run(&points, generate);
        let par8 = Sweep::new().jobs(8).run(&points, generate);
        proptest::prop_assert!(seq.total_events() > 0, "plans must journal fault windows");
        proptest::prop_assert_eq!(seq.combined_digest(), par4.combined_digest());
        proptest::prop_assert_eq!(seq.combined_digest(), par8.combined_digest());
        for (a, b) in seq.points.iter().zip(par8.points.iter()) {
            proptest::prop_assert_eq!(a.result, b.result);
            proptest::prop_assert_eq!(a.digest, b.digest);
        }
    }
}
