//! Reproducibility: every experiment is a pure function of its seed — the
//! property the whole harness rests on (integer-nanosecond clock, explicit
//! RNG seeds, FIFO event tie-breaking).

use aqua::workloads::prelude::*;
use aqua_bench::{fig07_long_prompt, fig08_lora, fig09_cfs};

#[test]
fn traces_are_seed_deterministic() {
    let cfg = ShareGptConfig::new(5.0, 100);
    assert_eq!(sharegpt_trace(&cfg, 1, 0), sharegpt_trace(&cfg, 1, 0));
    assert_ne!(sharegpt_trace(&cfg, 1, 0), sharegpt_trace(&cfg, 2, 0));
    assert_eq!(lora_trace(4.0, 50, 30, 9, 0), lora_trace(4.0, 50, 30, 9, 0));
    assert_eq!(item_trace(1.0, 20, 3, 0), item_trace(1.0, 20, 3, 0));
}

#[test]
fn long_prompt_experiment_is_deterministic() {
    let a = fig07_long_prompt::run(30);
    let b = fig07_long_prompt::run(30);
    assert_eq!(a.tokens, b.tokens);
}

#[test]
fn lora_experiment_is_deterministic() {
    let a = fig08_lora::run(2.0, 40, 5);
    let b = fig08_lora::run(2.0, 40, 5);
    for ((na, la), (nb, lb)) in a.systems.iter().zip(b.systems.iter()) {
        assert_eq!(na, nb);
        assert_eq!(la.records(), lb.records());
    }
}

#[test]
fn cfs_experiment_is_deterministic() {
    let cfg = fig09_cfs::CfsExperiment::figure9(5.0, 40, 3);
    let a = fig09_cfs::run(&cfg);
    let b = fig09_cfs::run(&cfg);
    for ((na, la), (nb, lb)) in a.systems.iter().zip(b.systems.iter()) {
        assert_eq!(na, nb);
        assert_eq!(la.rcts(), lb.rcts());
        assert_eq!(la.ttfts(), lb.ttfts());
    }
}

#[test]
fn different_seeds_differ() {
    let a = fig08_lora::run(2.0, 40, 5);
    let b = fig08_lora::run(2.0, 40, 6);
    assert_ne!(
        a.systems[0].1.rcts(),
        b.systems[0].1.rcts(),
        "different seeds must explore different workloads"
    );
}

/// Journals a scaled-down Figure 9 scenario and returns the telemetry digest
/// (plus the journal length, to guard against trivially-empty journals).
fn traced_cfs_digest(seed: u64) -> (u64, usize) {
    use aqua_telemetry::JournalTracer;
    use std::sync::Arc;

    let journal = Arc::new(JournalTracer::new());
    let cfg = fig09_cfs::CfsExperiment::figure9(5.0, 30, seed);
    let _ = fig09_cfs::run_traced(&cfg, journal.clone());
    (journal.digest(), journal.len())
}

#[test]
fn telemetry_digest_is_seed_deterministic() {
    // The whole instrumented stack — transfers, leases, informer decisions,
    // CFS slices — must journal the identical event stream for the same
    // seed: the digest is a 64-bit witness of the entire execution.
    let (da, na) = traced_cfs_digest(3);
    let (db, nb) = traced_cfs_digest(3);
    assert!(na > 0, "instrumented run must journal events");
    assert_eq!(na, nb, "same seed, same event count");
    assert_eq!(da, db, "same seed, same telemetry digest");
}

#[test]
fn telemetry_digest_differs_across_seeds() {
    let (da, _) = traced_cfs_digest(3);
    let (db, _) = traced_cfs_digest(4);
    assert_ne!(da, db, "different seeds must produce different journals");
}

/// Journals the chaos run (producer crash + lease expiry + failover) and
/// returns the digest/length pair.
fn traced_chaos_digest(tl: &aqua_bench::chaos_degradation::ChaosTimeline) -> (u64, usize) {
    use aqua_telemetry::JournalTracer;
    use std::sync::Arc;

    let journal = Arc::new(JournalTracer::new());
    let _ = aqua_bench::chaos_degradation::run_traced(tl, 5, journal.clone());
    (journal.digest(), journal.len())
}

#[test]
fn chaos_run_is_digest_deterministic() {
    // Fault injection must not break reproducibility: the same FaultPlan on
    // the same seed journals the identical event stream — aborted transfers,
    // retries, lease expiry, failover and degraded-mode transitions included.
    let tl = aqua_bench::chaos_degradation::ChaosTimeline::short();
    let (da, na) = traced_chaos_digest(&tl);
    let (db, nb) = traced_chaos_digest(&tl);
    assert!(na > 0, "chaos run must journal events");
    assert_eq!(na, nb, "same FaultPlan, same event count");
    assert_eq!(da, db, "same FaultPlan, same telemetry digest");
}

#[test]
fn chaos_digest_differs_across_fault_plans() {
    let a = aqua_bench::chaos_degradation::ChaosTimeline::short();
    let mut b = a;
    b.crash_start += 10;
    let (da, _) = traced_chaos_digest(&a);
    let (db, _) = traced_chaos_digest(&b);
    assert_ne!(da, db, "a different crash window must change the journal");
}
