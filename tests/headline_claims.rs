//! Integration tests asserting the paper's headline claims end to end,
//! using the same experiment harness that regenerates the figures
//! (scaled-down parameters; generous tolerance bands — the shapes, winners
//! and rough factors must hold, not the authors' absolute numbers).

use aqua_bench::{fig03_links, fig07_long_prompt, fig08_lora, fig09_cfs, fig14_placer};

/// §6 headline + Figure 7: AQUA generates ~6x more tokens than FlexGen on
/// a single long prompt in the same window.
#[test]
fn long_prompt_throughput_6x() {
    let r = fig07_long_prompt::run(60);
    let speedup = r.speedup();
    assert!(
        (4.0..9.0).contains(&speedup),
        "expected ~6x, measured {speedup:.2}x"
    );
}

/// §6 headline + Figure 9: fair scheduling with AQUA improves tail TTFT by
/// at least the paper's 4x while keeping RCT below CFS-over-DRAM.
#[test]
fn responsiveness_4x_at_5rps() {
    let cfg = fig09_cfs::CfsExperiment::figure9(5.0, 120, 3);
    let r = fig09_cfs::run(&cfg);
    assert!(
        r.ttft_improvement() >= 4.0,
        "TTFT improvement {:.2}x below the paper's 4x",
        r.ttft_improvement()
    );
    assert!(
        r.cfs_dram_rct_overhead() > 1.15,
        "CFS-over-DRAM must pay for PCIe paging, measured {:.2}x",
        r.cfs_dram_rct_overhead()
    );
    // AQUA's RCT is not catastrophically above vLLM's (CFS trades some
    // throughput for fairness; AQUA contains the cost).
    let vllm = r.log_of("vllm").rct_summary().p50;
    let aqua = r.log_of("aqua").rct_summary().p50;
    assert!(aqua < 3.0 * vllm, "aqua rct {aqua:.1}s vs vllm {vllm:.1}s");
}

/// Figure 8: AQUA improves LoRA RCTs (paper: up to 1.8x at the median).
#[test]
fn lora_rct_improvement() {
    let r = fig08_lora::run(2.0, 100, 7);
    let imp = r.p50_improvement();
    assert!((1.2..3.0).contains(&imp), "median improvement {imp:.2}x");
}

/// Figure 3b: donating memory costs a producer < 5% throughput.
#[test]
fn producer_sharing_impact_under_5_percent() {
    for p in fig03_links::run_sharing(3) {
        assert!(p.impact() < 0.05, "{}: {:.3}", p.model, p.impact());
    }
}

/// Figure 3a: the NVLink bandwidth curve anchors.
#[test]
fn nvlink_bandwidth_anchors() {
    let pts = fig03_links::run_bandwidth(&[64 << 10, 2 << 20, 1 << 30]);
    assert!(pts[0].nvlink < 10e9, "small buffers are PCIe-class");
    assert!((80e9..120e9).contains(&pts[1].nvlink), "2 MiB ≈ 100 GB/s");
    assert!(pts[2].nvlink > 240e9, "large buffers near 250 GB/s peak");
}

/// Figure 14's shape: LLM-only placement inputs solve far faster than
/// mixed-modality inputs as the cluster grows.
#[test]
fn placer_convergence_shape() {
    let pts = fig14_placer::run(&[16, 32]);
    let growth_mixed = pts[1].mixed_states as f64 / pts[0].mixed_states.max(1) as f64;
    for p in &pts {
        assert!(p.llm_states <= p.mixed_states);
        assert!(p.llm_expansions <= p.mixed_expansions);
    }
    // Mixed-modality cost grows rapidly with cluster size.
    assert!(growth_mixed > 1.0, "mixed growth {growth_mixed:.1}");
}
