//! End-to-end gateway serving properties: the policy zoo under the
//! three-tenant mix, the offload cross, and graceful degradation through a
//! mid-run GPU crash.

use aqua::engines::driver::{Driver, Engine};
use aqua::gateway::engine::{GatewayConfig, GatewayEngine};
use aqua::gateway::scheduler::PolicyKind;
use aqua::metrics::streaming::StreamLog;
use aqua::models::zoo;
use aqua::sim::gpu::GpuSpec;
use aqua::sim::link::bytes::gib;
use aqua::sim::time::SimTime;
use aqua::workloads::tenants::{tenant_trace, TENANT_CHAT};

/// Runs one gateway over the scaled-down tenant mix, optionally freezing
/// the GPU for `[crash_start, crash_end)` seconds mid-run.
fn serve(policy: PolicyKind, crash: Option<(u64, u64)>) -> StreamLog {
    let mix = tenant_trace(2.0, 32, 9);
    let expected = mix.trace.len();
    let geom = *zoo::codellama_34b().llm_geometry().unwrap();
    let mut engine = GatewayEngine::new(
        geom,
        GpuSpec::a100_80g(),
        policy,
        GatewayConfig {
            kv_pool_bytes: gib(3),
            max_outstanding_per_tenant: 8,
            ..GatewayConfig::default()
        },
    )
    .with_tenants(mix.tenant_of.clone());
    let mut driver = Driver::new();
    driver.schedule_trace(0, mix.trace);
    if let Some((start, end)) = crash {
        driver.crash_window(0, SimTime::from_secs(start), SimTime::from_secs(end));
    }
    {
        let mut engines: Vec<&mut dyn Engine> = vec![&mut engine];
        driver.run(&mut engines, SimTime::from_secs(40_000));
    }
    assert!(!engine.has_work(), "{policy}: work left behind");
    let streams = engine.drain_streams();
    assert_eq!(streams.len(), expected, "{policy}: dropped requests");
    streams
}

#[test]
fn mid_run_crash_degrades_p99_gracefully_for_every_policy() {
    // A GPU crash freezes the engine for 40 s mid-arrival-stream. Graceful
    // degradation means: every request still completes with its full token
    // stream, and the chat-tenant P99 TTFT lands within the clean P99 plus
    // a bounded penalty (the outage plus the backlog it creates) — not an
    // unbounded collapse or a livelock.
    for policy in PolicyKind::ALL {
        let clean = serve(policy, None);
        let crashed = serve(policy, Some((20, 60)));
        let p99_clean = clean.tenant(TENANT_CHAT).ttft_summary().p99;
        let p99_crash = crashed.tenant(TENANT_CHAT).ttft_summary().p99;
        assert!(p99_clean > 0.0 && p99_crash > 0.0);
        assert!(
            p99_crash <= p99_clean + 400.0,
            "{policy}: crash P99 {p99_crash:.1}s vs clean {p99_clean:.1}s — not graceful"
        );
        // The outage may only stall delivery, never truncate a stream
        // (completion order differs, so align by request id).
        let lengths: std::collections::BTreeMap<u64, usize> = clean
            .streams()
            .iter()
            .map(|s| (s.id, s.tokens.len()))
            .collect();
        for s in crashed.streams() {
            assert_eq!(
                lengths[&s.id],
                s.tokens.len(),
                "{policy}: request {} lost tokens",
                s.id
            );
        }
    }
}

#[test]
fn serve_experiment_crosses_every_policy_with_offload() {
    use aqua_bench::serve_schedulers::{run, ServeExperiment};

    let cfg = ServeExperiment::at_rate(2.0, 32, 9);
    let r = run(&cfg);
    assert_eq!(r.runs.len(), PolicyKind::ALL.len() * 2);
    for policy in PolicyKind::ALL {
        let off = r.run_of(policy, false);
        let on = r.run_of(policy, true);
        assert_eq!(off.streams.len(), on.streams.len());
        // Swapping KV over NVLink never loses more work than recompute:
        // the offload cell's tail is at or below the recompute cell's.
        let p99_off = r.chat_ttft_p99(policy, false);
        let p99_on = r.chat_ttft_p99(policy, true);
        assert!(
            p99_on <= p99_off + 1e-9,
            "{policy}: aqua P99 {p99_on:.2}s worse than recompute {p99_off:.2}s"
        );
    }
}
