//! Differential oracle for the calendar event queue: the whole `aqua-repro`
//! suite — every experiment, through the real experiment → point
//! decomposition — must render byte-identical output and fold the same
//! combined digest under the calendar backend and the original
//! `BinaryHeap` backend.
//!
//! The backend switch is process-global, so this file holds exactly one
//! test: nothing else in this binary may race the flip.

use aqua_bench::runner::{run_suite, ReproArgs, EXPERIMENTS};
use aqua_sim::event::{set_global_backend, QueueBackend};

#[test]
fn full_suite_is_byte_identical_across_queue_backends() {
    let names: Vec<&str> = EXPERIMENTS.iter().map(|(n, _)| *n).collect();
    let a = ReproArgs {
        window: 20,
        seed: 3,
        count: 16,
        lanes: 1,
    };

    set_global_backend(QueueBackend::Binary);
    let binary = run_suite(&names, &a, 2, true, false).unwrap();

    set_global_backend(QueueBackend::Calendar);
    let calendar = run_suite(&names, &a, 2, true, false).unwrap();

    assert!(calendar.total_events > 0, "suite must journal events");
    assert_eq!(
        calendar.output, binary.output,
        "suite output must be backend-independent"
    );
    assert_eq!(
        calendar.combined_digest, binary.combined_digest,
        "combined digest must be backend-independent"
    );
    assert_eq!(calendar.total_events, binary.total_events);
}
