//! Cross-crate integration of the AQUA control plane, built only from the
//! public API of the workspace crates (no bench harness): coordinator,
//! offloader, informers, engines and driver working together.

use aqua::core::coordinator::{AllocationSite, GpuRef, ReclaimStatus};
use aqua::core::informer::{LlmInformer, LlmInformerConfig};
use aqua::core::messages::{handle, CoordinatorRequest, CoordinatorResponse};
use aqua::core::prelude::*;
use aqua::engines::driver::{Driver, Engine};
use aqua::engines::northbound::MemoryElastic;
use aqua::engines::offload::Offloader;
use aqua::engines::request::InferenceRequest;
use aqua::engines::vllm::{VllmConfig, VllmEngine};
use aqua::models::zoo;
use aqua::sim::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

fn setup() -> (
    Rc<ServerTopology>,
    Rc<RefCell<TransferEngine>>,
    Arc<Coordinator>,
) {
    (
        Rc::new(ServerTopology::nvlink_pair(GpuSpec::a100_80g())),
        Rc::new(RefCell::new(TransferEngine::new())),
        Arc::new(Coordinator::new()),
    )
}

/// The full producer→consumer→reclaim protocol driven through the REST-like
/// message envelope, with real transfer timing in between.
#[test]
fn protocol_round_trip_with_transfers() {
    let (server, transfers, coord) = setup();
    let producer = GpuRef::single(GpuId(1));
    let consumer = GpuRef::single(GpuId(0));

    // Producer donates via the message envelope.
    let lease = match handle(
        &coord,
        CoordinatorRequest::Lease {
            producer,
            bytes: 16 << 30,
        },
    ) {
        CoordinatorResponse::Leased { lease } => lease,
        other => panic!("{other:?}"),
    };

    // Consumer offloads through the real offloader.
    let mut off = AquaOffloader::new(consumer, Arc::clone(&coord), server, transfers);
    let t1 = off.swap_out(8 << 30, 4096, SimTime::ZERO);
    assert!(t1.as_secs_f64() < 0.1, "8 GiB over NVLink in tens of ms");
    assert_eq!(coord.used_bytes(), 8 << 30);

    // Producer requests its memory back; consumer must migrate.
    handle(&coord, CoordinatorRequest::ReclaimRequest { producer });
    match handle(&coord, CoordinatorRequest::Respond { lease }) {
        CoordinatorResponse::MustMigrate { bytes } => assert_eq!(bytes, 8 << 30),
        other => panic!("{other:?}"),
    }
    let resume = off.on_iteration_boundary(t1);
    assert!(resume > t1, "release blocks the consumer");
    assert_eq!(off.dram_total(), 8 << 30);
    assert!(matches!(
        coord.reclaim_status(producer),
        ReclaimStatus::Released { bytes, .. } if bytes == 16 << 30
    ));
}

/// A vLLM producer with an llm-informer donates under low load and takes
/// the memory back under a burst — end to end through the driver.
#[test]
fn llm_producer_lifecycle_through_driver() {
    let (_server, _transfers, coord) = setup();
    let geom = *zoo::llama2_13b().llm_geometry().unwrap();
    let producer_ref = GpuRef::single(GpuId(1));
    let mut producer = VllmEngine::new(
        geom,
        GpuSpec::a100_80g(),
        VllmConfig {
            kv_pool_bytes: 40 << 30,
            ..VllmConfig::default()
        },
    )
    .with_informer(Box::new(LlmInformer::new(
        producer_ref,
        Arc::clone(&coord),
        LlmInformerConfig::default(),
    )));

    // Idle ticks let the informer observe a quiet window and donate.
    let mut driver = Driver::new();
    {
        let mut engines: Vec<&mut dyn Engine> = vec![&mut producer];
        driver.run(&mut engines, SimTime::from_secs(2));
    }
    let donated = producer.donated_bytes();
    assert!(donated > 30 << 30, "quiet producer donates, got {donated}");
    assert_eq!(coord.leased_bytes(), donated);

    // A burst of requests builds the queue past the high-water mark.
    for i in 0..40 {
        driver.schedule_arrival(
            0,
            SimTime::from_secs(2),
            InferenceRequest::text(i, 6_000, 400),
        );
    }
    {
        let mut engines: Vec<&mut dyn Engine> = vec![&mut producer];
        driver.run(&mut engines, SimTime::from_secs(40));
    }
    assert_eq!(
        producer.donated_bytes(),
        0,
        "burst must trigger a reclaim (queue={}, kv={}B free)",
        producer.queue_depth(),
        producer.kv().free_bytes()
    );
    assert_eq!(coord.leased_bytes(), 0);
}

/// Transparent DRAM fallback: with no producer anywhere, AQUA degrades to
/// the DRAM path at PCIe speed ("AQUA-LIB falls back to using the DRAM for
/// offloading tensors, just like previous work", §3).
#[test]
fn dram_fallback_without_producers() {
    let (server, transfers, coord) = setup();
    assert_eq!(
        coord.allocate(GpuRef::single(GpuId(0)), 1 << 30),
        AllocationSite::Dram
    );
    let mut off = AquaOffloader::new(
        GpuRef::single(GpuId(0)),
        Arc::clone(&coord),
        server,
        transfers,
    );
    let t = off.swap_out(2 << 30, 1024, SimTime::ZERO);
    assert_eq!(off.dram_total(), 2 << 30);
    assert_eq!(off.peer_total(), 0);
    // 2 GiB at 25 GB/s PCIe ≈ 86 ms — an order slower than NVLink.
    assert!(
        t.as_secs_f64() > 0.05,
        "fallback runs at PCIe speed, t = {t}"
    );
}

/// Engines expose coherent northbound stats throughout a run.
#[test]
fn northbound_stats_are_coherent() {
    let geom = *zoo::mistral_7b().llm_geometry().unwrap();
    let mut engine = VllmEngine::new(geom, GpuSpec::a100_80g(), VllmConfig::default());
    for i in 0..10 {
        engine.submit(InferenceRequest::text(i, 128, 32), SimTime::ZERO);
    }
    let mut now = SimTime::ZERO;
    while engine.has_work() {
        now = engine.step(now);
        let stats = engine.stats();
        assert!(stats.context_used_bytes <= stats.context_reserved_bytes);
        assert!(stats.context_utilization() <= 1.0);
        assert!(stats.donatable_bytes <= stats.context_reserved_bytes);
    }
    assert_eq!(engine.drain_completions().len(), 10);
}
