//! End-to-end placement pipeline: AQUA-PLACER decides where models live,
//! its pairings feed the coordinator, and the runtime benefit of a good
//! placement is measurable — the Figure 4 story executed for real.

use aqua::core::coordinator::GpuRef;
use aqua::core::prelude::*;
use aqua::engines::driver::{Driver, Engine};
use aqua::engines::flexgen::{FlexGenConfig, FlexGenEngine};
use aqua::models::zoo;
use aqua::placer::prelude::*;
use aqua::sim::link::bytes::gib;
use aqua::sim::prelude::*;
use aqua::workloads::longprompt::long_prompt_trace;
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

fn fig4_instance() -> PlacementInstance {
    PlacementInstance::new(
        2,
        2,
        gib(80),
        vec![
            ModelSpec::producer("vision-0", gib(40)),
            ModelSpec::producer("vision-1", gib(40)),
            ModelSpec::consumer("llm-0", gib(12)),
            ModelSpec::consumer("llm-1", gib(12)),
        ],
    )
}

/// The optimal placement colocates each consumer with a producer; the
/// Figure 4a placement (producers together) strands the consumers.
#[test]
fn placer_prefers_colocation_and_matching_pairs() {
    let inst = fig4_instance();
    let placement = solve_optimal(&inst);
    placement.validate(&inst).unwrap();
    for s in 0..inst.servers {
        let members = placement.models_on(s);
        let roles: i64 = members.iter().map(|&m| inst.models[m].t()).sum();
        assert_eq!(roles, 0, "server {s} must host one producer + one consumer");
        let specs: Vec<ModelSpec> = members.iter().map(|&m| inst.models[m].clone()).collect();
        let pairs = stable_match(&specs);
        assert_eq!(pairs.len(), 1, "one pairing per server");
    }
    // The segregated placement is strictly worse under Equation 5.
    let segregated = inst.objective(&[0, 0, 1, 1]);
    assert!(placement.objective(&inst) < segregated);
}

/// Executing both placements: the colocated consumer streams over NVLink,
/// the segregated one falls back to DRAM — a ~6x token-rate difference.
#[test]
fn colocation_benefit_is_measurable_at_runtime() {
    let run = |colocated: bool| -> u64 {
        let server = Rc::new(ServerTopology::nvlink_pair(GpuSpec::a100_80g()));
        let transfers = Rc::new(RefCell::new(TransferEngine::new()));
        let coordinator = Arc::new(Coordinator::new());
        if colocated {
            // The placer put a vision producer on this server; it leases
            // its spare HBM and is paired with the consumer.
            coordinator.lease(GpuRef::single(GpuId(1)), gib(24));
            coordinator.pair(GpuRef::single(GpuId(0)), GpuRef::single(GpuId(1)));
        }
        let geom = *zoo::opt_30b().llm_geometry().unwrap();
        let offloader =
            AquaOffloader::new(GpuRef::single(GpuId(0)), coordinator, server, transfers);
        let mut engine = FlexGenEngine::new(
            geom,
            GpuSpec::a100_80g(),
            FlexGenConfig {
                context_budget_bytes: gib(8),
                decode_chunk: 8,
            },
            Box::new(offloader),
        );
        let mut driver = Driver::new();
        driver.schedule_trace(0, long_prompt_trace(1, 1_000_000, 0));
        let mut engines: Vec<&mut dyn Engine> = vec![&mut engine];
        driver.run(&mut engines, SimTime::from_secs(60));
        engine.tokens_generated()
    };
    let colocated = run(true);
    let segregated = run(false);
    let ratio = colocated as f64 / segregated as f64;
    assert!(
        (3.0..9.0).contains(&ratio),
        "colocated {colocated} vs segregated {segregated} tokens ({ratio:.1}x)"
    );
}

/// The incumbent-pruned solver is not merely objective-equivalent to the
/// unpruned reference DP — it reconstructs the *identical* `Placement` on
/// the Figure 14 16-GPU inputs, because both replay the same lexicographic
/// fill catalog and pruning never removes the optimal witness.
#[test]
fn pruned_solver_matches_reference_placement_exactly() {
    use aqua_bench::fig14_placer::{llm_only_instance, mixed_instance, mixed_lora_instance};
    for (name, inst) in [
        ("mixed-16", mixed_instance(16)),
        ("mixed+lora-16", mixed_lora_instance(16)),
        ("llm-16", llm_only_instance(16)),
    ] {
        let (pruned, pruned_stats) = solve_optimal_stats(&inst);
        let (reference, reference_stats) = solve_optimal_reference(&inst);
        pruned.validate(&inst).unwrap();
        reference.validate(&inst).unwrap();
        assert_eq!(
            pruned, reference,
            "{name}: pruned and reference solves must reconstruct the same placement"
        );
        assert!(
            pruned_stats.dp_states <= reference_stats.dp_states,
            "{name}: pruning visited {} states, reference only {}",
            pruned_stats.dp_states,
            reference_stats.dp_states
        );
        assert!(
            pruned_stats.expansions <= reference_stats.expansions,
            "{name}"
        );
    }
}

/// The greedy baseline also produces feasible placements, never better than
/// the exact optimum, across a sweep of random-ish instances.
#[test]
fn optimal_dominates_greedy_everywhere() {
    for servers in [2usize, 3, 4] {
        for n_pairs in [2usize, 4, 6] {
            let gpus = 4;
            if 2 * n_pairs > servers * gpus {
                continue;
            }
            let models: Vec<ModelSpec> =
                (0..n_pairs)
                    .map(|i| ModelSpec::producer(format!("p{i}"), gib(30 + (i as u64 % 3) * 10)))
                    .chain((0..n_pairs).map(|i| {
                        ModelSpec::consumer(format!("c{i}"), gib(20 + (i as u64 % 2) * 10))
                    }))
                    .collect();
            let inst = PlacementInstance::new(servers, gpus, gib(80), models);
            let opt = solve_optimal(&inst);
            let greedy = solve_greedy(&inst);
            opt.validate(&inst).unwrap();
            greedy.validate(&inst).unwrap();
            assert!(
                opt.objective(&inst) <= greedy.objective(&inst),
                "S={servers} pairs={n_pairs}"
            );
        }
    }
}
