//! The calibration contract: every number this reproduction takes from the
//! paper (or from published hardware/model specifications), asserted in one
//! place. If a refactor drifts any of these, the figures stop meaning what
//! EXPERIMENTS.md says they mean.

use aqua::models::{cost, zoo};
use aqua::sim::gpu::GpuSpec;
use aqua::sim::link::bytes::{gib, kib, mib};
use aqua::sim::link::BandwidthModel;

/// Figure 3a: the NVLink effective-bandwidth anchors.
#[test]
fn nvlink_curve_anchors() {
    let nv = BandwidthModel::nvlink_a100();
    // "it reaches 100 GB/s at 2 MB"
    let at_2mb = nv.effective_bandwidth(mib(2));
    assert!((85e9..115e9).contains(&at_2mb), "2 MiB: {at_2mb:.3e}");
    // "peak NVlink bandwidth of 250 GBps for this generation of GPUs"
    let peak = nv.effective_bandwidth(gib(1));
    assert!((245e9..251e9).contains(&peak), "peak: {peak:.3e}");
    // "transferring small sizes of buffers … nearly as slow as … PCIe"
    let small = nv.effective_bandwidth(kib(64));
    let pcie_small = BandwidthModel::pcie_gen4_pinned().effective_bandwidth(kib(64));
    assert!(
        small < 3.0 * pcie_small,
        "small NVLink {small:.2e} ~ PCIe {pcie_small:.2e}"
    );
}

/// §2.3: "the bandwidth of fifth generation PCIe connectivity is 64 GB/s
/// whereas NVlink bandwidth … ranges between 300-900 GB/s" — our testbed
/// models PCIe gen4 (the A100 servers'), and the headline ratio holds.
#[test]
fn nvlink_to_pcie_ratio_is_an_order_of_magnitude() {
    let nv = BandwidthModel::nvlink_a100().effective_bandwidth(gib(1));
    let pcie = BandwidthModel::pcie_gen4_pinned().effective_bandwidth(gib(1));
    let ratio = nv / pcie;
    assert!((8.0..12.0).contains(&ratio), "ratio {ratio:.1}");
}

/// A100-80G hardware constants.
#[test]
fn a100_spec() {
    let a100 = GpuSpec::a100_80g();
    assert_eq!(a100.hbm_bytes, gib(80), "80 GB HBM (paper testbed)");
    assert!(
        (1.9e12..2.1e12).contains(&a100.hbm_bandwidth),
        "HBM2e ~2 TB/s"
    );
    assert!(
        (300e12..320e12).contains(&a100.dense_flops),
        "312 TFLOPS fp16"
    );
}

/// Model weights (fp16) match published parameter counts.
#[test]
fn model_weight_footprints() {
    let cases = [
        (zoo::opt_30b(), 60.0),
        (zoo::llama2_13b(), 26.0),
        (zoo::mistral_7b(), 14.5),
        (zoo::codellama_34b(), 68.0),
    ];
    for (m, gb) in cases {
        let measured = m.weights_bytes() as f64 / 1e9;
        assert!(
            (measured - gb).abs() / gb < 0.02,
            "{}: {measured:.1} GB vs {gb} GB",
            m.name
        );
    }
}

/// KV-cache growth rates follow each model's published attention geometry.
#[test]
fn kv_rates() {
    // OPT-30B: 2 * 48 layers * 56 heads * 128 dim * 2 B = 1.376 MB/token.
    assert_eq!(
        zoo::opt_30b().llm_geometry().unwrap().kv_bytes_per_token(),
        1_376_256
    );
    // Llama-2-13B (MHA): 2 * 40 * 40 * 128 * 2 = 0.819 MB/token.
    assert_eq!(
        zoo::llama2_13b()
            .llm_geometry()
            .unwrap()
            .kv_bytes_per_token(),
        819_200
    );
    // Mistral-7B (GQA, 8 kv heads): 2 * 32 * 8 * 128 * 2 = 131 KB/token.
    assert_eq!(
        zoo::mistral_7b()
            .llm_geometry()
            .unwrap()
            .kv_bytes_per_token(),
        131_072
    );
    // Codellama-34B (GQA): 2 * 48 * 8 * 128 * 2 = 196.6 KB/token.
    assert_eq!(
        zoo::codellama_34b()
            .llm_geometry()
            .unwrap()
            .kv_bytes_per_token(),
        196_608
    );
}

/// §6 long prompts: "it is impossible to infer a single prompt of 8,000
/// tokens" on OPT-30B — its context exceeds the free HBM budget.
#[test]
fn long_prompt_premise() {
    let kv = zoo::opt_30b().llm_geometry().unwrap().kv_bytes(8_000);
    assert!(kv > gib(10), "8k-token OPT context is ~11 GB");
    assert!(kv > aqua_bench::fig07_long_prompt::CONTEXT_BUDGET);
}

/// §6 LoRA: the Zephyr adapter is ~320 MB and Mteb ~160 MB.
#[test]
fn adapter_sizes() {
    use aqua::models::lora::LoraAdapter;
    assert_eq!(LoraAdapter::zephyr().bytes, 320 << 20);
    assert_eq!(LoraAdapter::mteb().bytes, 160 << 20);
}

/// Figure 2: compute-bound producers keep tens of GB free at their plateau;
/// the LLM exhausts its HBM at peak throughput.
#[test]
fn modality_envelopes() {
    let gpu = GpuSpec::a100_80g();
    for m in [
        zoo::stable_diffusion(),
        zoo::kandinsky(),
        zoo::stable_diffusion_xl(),
    ] {
        let g = *m.diffusion_geometry().unwrap();
        let (_, _, free) = cost::peak_batch_under_memory(
            gpu.hbm_bytes,
            64,
            |b| cost::diffusion_throughput(&g, &gpu, b),
            |b| cost::diffusion_used_bytes(&g, b),
        );
        assert!(free > gib(20), "{}: {free} free", m.name);
    }
    let llama = *zoo::llama2_13b().llm_geometry().unwrap();
    let (_, _, free) = cost::peak_batch_under_memory(
        gpu.hbm_bytes,
        512,
        |b| cost::llm_decode_throughput(&llama, &gpu, b, b * 1024),
        |b| cost::llm_static_bytes(&llama, b) + llama.kv_bytes(b * 1024),
    );
    assert!(free < gib(8), "LLM free at peak: {free}");
}

/// Single-stream decode rates land in the ranges A100 deployments report.
#[test]
fn decode_rate_sanity() {
    let gpu = GpuSpec::a100_80g();
    let rate_13b =
        cost::llm_decode_throughput(zoo::llama2_13b().llm_geometry().unwrap(), &gpu, 1, 256);
    assert!((30.0..90.0).contains(&rate_13b), "13B: {rate_13b:.0} tok/s");
    let rate_34b =
        cost::llm_decode_throughput(zoo::codellama_34b().llm_geometry().unwrap(), &gpu, 1, 256);
    assert!((15.0..40.0).contains(&rate_34b), "34B: {rate_34b:.0} tok/s");
}
