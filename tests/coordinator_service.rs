//! The coordinator-as-a-service deployment shape (paper §3: the
//! coordinator is its own program reached over the southbound interface),
//! exercised from the umbrella crate with simulated GPU clients on real
//! threads.

use aqua::core::coordinator::{AllocationSite, Coordinator, GpuRef, ReclaimStatus};
use aqua::core::service::CoordinatorService;
use aqua::sim::gpu::GpuId;
use aqua::sim::time::SimTime;
use std::sync::Arc;

/// A producer thread and a consumer thread run the donate/offload/reclaim
/// protocol concurrently against the service.
#[test]
fn producer_and_consumer_threads_negotiate() {
    let service = CoordinatorService::spawn(Arc::new(Coordinator::new()));
    let producer_gpu = GpuRef::single(GpuId(1));
    let consumer_gpu = GpuRef::single(GpuId(0));

    // Producer: donate, then demand the memory back.
    let producer_client = service.client();
    let producer = std::thread::spawn(move || {
        producer_client.lease(producer_gpu, 8 << 30).unwrap();
        // Poll until the consumer has taken something, then reclaim.
        loop {
            if let AllocationSite::Dram = producer_client.allocate(producer_gpu, 1).unwrap() {
                // (Producers never allocate; this is just a cheap probe that
                // exercises a request while we wait.)
            }
            std::thread::yield_now();
            producer_client.reclaim_request(producer_gpu).unwrap();
            match producer_client.reclaim_status(producer_gpu).unwrap() {
                ReclaimStatus::Released { bytes, .. } => return bytes,
                _ => continue,
            }
        }
    });

    // Consumer: grab memory, notice the reclaim, release.
    let consumer_client = service.client();
    let consumer = std::thread::spawn(move || {
        let lease = loop {
            match consumer_client.allocate(consumer_gpu, 2 << 30).unwrap() {
                AllocationSite::Peer { lease, .. } => break lease,
                AllocationSite::Dram => std::thread::yield_now(),
            }
        };
        // Iteration boundaries: check /respond until a reclaim appears.
        loop {
            let must_move = consumer_client.respond(lease).unwrap();
            if must_move > 0 {
                consumer_client
                    .call(aqua::core::messages::CoordinatorRequest::Release {
                        lease,
                        bytes: must_move,
                        at: SimTime::from_secs(1),
                    })
                    .unwrap();
                return must_move;
            }
            std::thread::yield_now();
        }
    });

    let moved = consumer.join().expect("consumer thread");
    let reclaimed = producer.join().expect("producer thread");
    assert_eq!(moved, 2 << 30);
    assert_eq!(reclaimed, 8 << 30);
    assert_eq!(service.store().leased_bytes(), 0);
}

/// The service survives many short-lived clients.
#[test]
fn many_transient_clients() {
    let service = CoordinatorService::spawn(Arc::new(Coordinator::new()));
    service
        .client()
        .lease(GpuRef::single(GpuId(1)), 1 << 30)
        .unwrap();
    for _ in 0..50 {
        let c = service.client();
        assert!(matches!(
            c.allocate(GpuRef::single(GpuId(0)), 1 << 20).unwrap(),
            AllocationSite::Peer { .. }
        ));
        drop(c);
    }
    assert_eq!(service.store().used_bytes(), 50 << 20);
    assert!(service.shutdown() >= 51);
}
