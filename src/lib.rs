//! # AQUA — network-accelerated GPU memory offloading for responsive LLM inference
//!
//! A full Rust reproduction of *"Responsive ML inference in multi-tenanted
//! environments using AQUA"* (a.k.a. *"Aqua: Network-Accelerated Memory
//! Offloading for LLMs in Scale-Up GPU Domains"*, ASPLOS 2025).
//!
//! AQUA's idea: LLM serving is bottlenecked by GPU memory, while image and
//! audio generators on the *same multi-GPU server* leave tens of GB of HBM
//! idle. Instead of paging inference context (KV caches, LoRA adapters) to
//! host DRAM over slow PCIe, AQUA pages it to a neighbouring GPU over
//! NVLink/NVSwitch — fast enough to make *completely fair scheduling* of
//! prompts practical, giving interactive users both responsiveness (4× TTFT)
//! and throughput (6× tokens on long prompts).
//!
//! This umbrella crate re-exports the workspace:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `aqua-core` | **AQUA-LIB**: AQUA tensors, coordinator, offloader, informers |
//! | [`placer`] | `aqua-placer` | **AQUA-PLACER**: optimal model placement + stable matching |
//! | [`sim`] | `aqua-sim` | multi-GPU server simulator (HBM, NVLink/NVSwitch/PCIe) |
//! | [`models`] | `aqua-models` | model zoo + roofline cost models |
//! | [`engines`] | `aqua-engines` | vLLM / CFS / FlexGen / producer engine simulations |
//! | [`gateway`] | `aqua-gateway` | request-level serving front-end: scheduler zoo + SLO metrics |
//! | [`workloads`] | `aqua-workloads` | seeded synthetic traces (ShareGPT-like, LoRA, chat, …) |
//! | [`metrics`] | `aqua-metrics` | TTFT/RCT recorders, time series, tables |
//! | [`telemetry`] | `aqua-telemetry` | structured trace events, Chrome-trace export, determinism digests |
//!
//! # Quickstart
//!
//! ```
//! use aqua::core::prelude::*;
//! use aqua::sim::prelude::*;
//! use aqua::engines::offload::{DramOffloader, Offloader};
//! use std::{cell::RefCell, rc::Rc, sync::Arc};
//!
//! // A 2-GPU server: GPU 1 hosts a compute-bound model with spare HBM.
//! let server = Rc::new(ServerTopology::nvlink_pair(GpuSpec::a100_80g()));
//! let transfers = Rc::new(RefCell::new(TransferEngine::new()));
//! let coordinator = Arc::new(Coordinator::new());
//! coordinator.lease(GpuRef::single(GpuId(1)), 20 << 30);
//!
//! // Offload 4 GiB of KV cache: AQUA vs the DRAM path.
//! let mut aqua = AquaOffloader::new(
//!     GpuRef::single(GpuId(0)), coordinator, server.clone(), transfers.clone());
//! let mut dram = DramOffloader::pinned(&server, GpuId(0), transfers);
//! let t_aqua = aqua.swap_out(4 << 30, 2048, SimTime::ZERO).as_secs_f64();
//! let t_dram = dram.swap_out(4 << 30, 2048, SimTime::ZERO).as_secs_f64();
//! assert!(t_dram / t_aqua > 5.0, "NVLink wins by ~10x");
//! ```
//!
//! See `DESIGN.md` for the experiment index, `EXPERIMENTS.md` for
//! paper-vs-measured results, and `crates/bench/benches/` for the harness
//! that regenerates every figure and table (`cargo bench`).

pub use aqua_core as core;
pub use aqua_engines as engines;
pub use aqua_gateway as gateway;
pub use aqua_metrics as metrics;
pub use aqua_models as models;
pub use aqua_placer as placer;
pub use aqua_sim as sim;
pub use aqua_telemetry as telemetry;
pub use aqua_workloads as workloads;
