#!/usr/bin/env bash
# CI for the aqua workspace.
#
# Note on offline environments: the workspace depends on a handful of
# crates-io packages (serde, rand, parking_lot, crossbeam, bytes, plus
# criterion/proptest for dev). In a container without registry access,
# `cargo build` fails at dependency resolution before compiling any local
# code — run this script from a networked environment (or with a vendored
# registry / offline mirror configured in .cargo/config.toml).
set -euo pipefail
cd "$(dirname "$0")"

cargo build --workspace --release
cargo test --workspace -q
# Chaos acceptance: producer crash mid-lease → degrade to DRAM → recover,
# and the faulted run stays digest-deterministic.
cargo test -q --test chaos_recovery
cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings
