#!/usr/bin/env bash
# CI for the aqua workspace.
#
# Note on offline environments: the workspace depends on a handful of
# crates-io packages (serde, rand, parking_lot, crossbeam, bytes, plus
# criterion/proptest for dev). In a container without registry access,
# `cargo build` fails at dependency resolution before compiling any local
# code — run this script from a networked environment (or with a vendored
# registry / offline mirror configured in .cargo/config.toml).
set -euo pipefail
cd "$(dirname "$0")"

cargo build --workspace --release
cargo test --workspace -q
# Chaos acceptance: producer crash mid-lease → degrade to DRAM → recover,
# and the faulted run stays digest-deterministic.
cargo test -q --test chaos_recovery
# Hot-path acceptance: the untraced transfer-schedule path must stay
# allocation-free, the placer catalog DP allocation-bounded per state, the
# untraced decode step limited to amortized block-table doubling, a
# pre-sized driver must never re-grow its event arena, and one gateway
# admission step must do backlog-independent work (allocations and
# scheduler-key comparisons flat from a 1k to a 10k backlog, all five
# policies) — all asserted by the microbench main before timing starts.
cargo bench -p aqua-bench --bench microbench -- --test
# Repro-suite acceptance: run the full experiment suite sequentially AND
# through the parallel sweep runner. `bench` exits non-zero if the parallel
# output or the combined determinism digest diverges from sequential, then
# runs the 1M-request scale-cluster pair (undersaturated 0.5 req/s vs
# oversaturated 2 req/s audited) and fails if the overload row's events/s
# collapses — the canary for backlog-linear scans creeping back into the
# gateway hot path. Records everything in BENCH_pr9.json.
cargo run --release -p aqua-bench --bin aqua-repro -- bench --out BENCH_pr9.json
# Gateway acceptance: the scheduler-zoo serving study must render
# byte-identical output and fold identical telemetry digests sequentially
# vs in parallel. The digests are compared run-against-run inside the
# process — never against a pinned literal — so the gate survives workload
# generator changes.
cargo run --release -p aqua-bench --bin aqua-repro -- serve --smoke --count 64
# Same gate for the overload/crash-recovery study (goodput cells at 1-4x
# load plus both crash-restore cells).
cargo run --release -p aqua-bench --bin aqua-repro -- serve --chaos-smoke
# Control-plane acceptance: the coordinator crash/partition recovery study
# must be byte- and digest-identical at 1/4/8 jobs through the sweep AND at
# 1 vs 4 lanes through the PDES shard path, with the audited faulted cells
# clean and audited-vs-unaudited digests identical.
cargo run --release -p aqua-bench --bin aqua-repro -- coord_chaos --smoke
# PDES acceptance: a 64-server (512-GPU) scale-cluster run with the crash
# fault plan and the full audit layer enabled must be byte- and
# digest-identical at 1 vs 4 lanes with zero audit violations — once at
# the calm default rate and once oversaturated at 2 req/s with a
# backlog-building span.
cargo run --release -p aqua-bench --bin aqua-repro -- scale --smoke
# Audit acceptance, part 1: 32 seeded FaultPlan x workload x topology points
# under full invariant auditing must report zero violations.
cargo run --release -p aqua-bench --bin aqua-repro -- fuzz --smoke
# Audit acceptance, part 2: a planted coordinator double-free must be
# *caught* (non-zero exit) and shrunk to a re-runnable reproducer spec.
if plant_out=$(cargo run --release -p aqua-bench --bin aqua-repro -- fuzz --points 4 --plant 2>&1); then
  echo "FAIL: planted double-free was not caught by the audit" >&2
  exit 1
fi
echo "$plant_out" | grep -q "reproduce with: aqua-repro fuzz" || {
  echo "FAIL: planted violation did not print a shrunk reproducer" >&2
  echo "$plant_out" >&2
  exit 1
}
echo "$plant_out" | grep -q "double_free" || {
  echo "FAIL: planted violation was not diagnosed as a double free" >&2
  echo "$plant_out" >&2
  exit 1
}
echo "planted double-free caught and shrunk to a reproducer"
# Audit acceptance, part 2b: a planted epoch-fencing bypass (a stale resync
# merged through the unfenced path after a coordinator crash) must be
# *caught* (non-zero exit), diagnosed as a cross-epoch double grant and
# shrunk to a re-runnable reproducer spec.
if fence_out=$(cargo run --release -p aqua-bench --bin aqua-repro -- fuzz --points 4 --plant-fence 2>&1); then
  echo "FAIL: planted fencing bypass was not caught by the audit" >&2
  exit 1
fi
echo "$fence_out" | grep -q "reproduce with: aqua-repro fuzz" || {
  echo "FAIL: planted fencing bypass did not print a shrunk reproducer" >&2
  echo "$fence_out" >&2
  exit 1
}
echo "$fence_out" | grep -q "double_grant_across_epochs" || {
  echo "FAIL: planted fencing bypass was not diagnosed as a cross-epoch double grant" >&2
  echo "$fence_out" >&2
  exit 1
}
echo "planted fencing bypass caught and shrunk to a reproducer"
# Audit acceptance, part 3: 16 seeded gateway points (FaultPlan x scheduler
# policy x load on the serving path) must report zero audit violations AND
# zero truncated streams.
cargo run --release -p aqua-bench --bin aqua-repro -- fuzz --gateway --smoke
# Audit acceptance, part 4: a planted skipped-restore must be *caught*
# (non-zero exit), diagnosed as token_without_restore and shrunk to a
# re-runnable reproducer spec.
if gw_plant_out=$(cargo run --release -p aqua-bench --bin aqua-repro -- fuzz --gateway --points 2 --plant 2>&1); then
  echo "FAIL: planted skipped restore was not caught by the audit" >&2
  exit 1
fi
echo "$gw_plant_out" | grep -q "reproduce with: aqua-repro fuzz --gateway" || {
  echo "FAIL: planted gateway violation did not print a shrunk reproducer" >&2
  echo "$gw_plant_out" >&2
  exit 1
}
echo "$gw_plant_out" | grep -q "token_without_restore" || {
  echo "FAIL: planted gateway violation was not diagnosed as a skipped restore" >&2
  echo "$gw_plant_out" >&2
  exit 1
}
echo "planted skipped restore caught and shrunk to a reproducer"
cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings
