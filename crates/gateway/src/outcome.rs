//! Request-level failure semantics: the outcome taxonomy, per-tenant
//! deadlines and the deterministic retry budget.
//!
//! The gateway of PR 6 had exactly one request fate — completion. A front
//! door for "millions of users" needs more honesty: requests can be
//! *shed* at the door under overload, *time out* against a tenant SLO,
//! be *crash-aborted* when a GPU loses their KV state, or be *retried*
//! from a bounded backoff budget. [`RequestOutcome`] names those fates,
//! [`SloPolicy`] carries the per-tenant deadlines, [`RetryPolicy`] bounds
//! recovery, and [`OutcomeLog`] is the ledger the experiments read.
//!
//! Everything here is plain data with no clocks or randomness of its own;
//! outcome decisions are pure functions of simulation time, so runs remain
//! byte-identical across `--jobs` counts.

use aqua_sim::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Why the gateway refused a request at admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The admission queue reached its depth watermark.
    QueueDepth,
    /// The request's estimated KV bytes would blow the commit budget.
    KvCost,
    /// A brownout is active and the tenant is capped.
    Brownout,
}

impl ShedReason {
    /// Stable snake_case label (used in trace events and tables).
    pub fn label(&self) -> &'static str {
        match self {
            ShedReason::QueueDepth => "queue_depth",
            ShedReason::KvCost => "kv_cost",
            ShedReason::Brownout => "brownout",
        }
    }
}

/// Which deadline a request missed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeadlineKind {
    /// Time to first token.
    Ttft,
    /// Total latency, arrival to last token.
    Total,
}

impl DeadlineKind {
    /// Stable snake_case label.
    pub fn label(&self) -> &'static str {
        match self {
            DeadlineKind::Ttft => "ttft",
            DeadlineKind::Total => "total",
        }
    }
}

/// The fate of one request as seen by the gateway.
///
/// `Retried` is the only non-terminal state: a crash-aborted request with
/// budget left is re-queued and will later resolve to `Completed`,
/// `TimedOut` or a terminal `CrashAborted`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestOutcome {
    /// Every output token was delivered.
    Completed,
    /// Refused at the door by overload protection.
    ShedAtAdmission(ShedReason),
    /// Cancelled after missing a per-tenant deadline.
    TimedOut(DeadlineKind),
    /// A GPU crash destroyed its state and the retry budget was exhausted.
    CrashAborted,
    /// Crash-aborted but re-queued under the retry budget (non-terminal).
    Retried,
}

impl RequestOutcome {
    /// Stable snake_case label.
    pub fn label(&self) -> &'static str {
        match self {
            RequestOutcome::Completed => "completed",
            RequestOutcome::ShedAtAdmission(_) => "shed_at_admission",
            RequestOutcome::TimedOut(_) => "timed_out",
            RequestOutcome::CrashAborted => "crash_aborted",
            RequestOutcome::Retried => "retried",
        }
    }

    /// Whether the request's story ends here.
    pub fn is_terminal(&self) -> bool {
        !matches!(self, RequestOutcome::Retried)
    }
}

/// Per-tenant latency deadlines. `None` bounds are unenforced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TenantSlo {
    /// Maximum time to first token.
    pub ttft: Option<SimDuration>,
    /// Maximum total latency (arrival to last token).
    pub total: Option<SimDuration>,
}

impl TenantSlo {
    /// No deadlines (batch tenants).
    pub fn none() -> Self {
        TenantSlo::default()
    }

    /// An interactive SLO bounding TTFT and total latency.
    pub fn interactive(ttft: SimDuration, total: SimDuration) -> Self {
        TenantSlo {
            ttft: Some(ttft),
            total: Some(total),
        }
    }

    /// Which deadline (if any) a request has blown at `now`, given its
    /// arrival time and how many tokens it has delivered.
    pub fn missed(&self, arrival: SimTime, generated: u64, now: SimTime) -> Option<DeadlineKind> {
        if generated == 0 {
            if let Some(bound) = self.ttft {
                if now > arrival + bound {
                    return Some(DeadlineKind::Ttft);
                }
            }
        }
        if let Some(bound) = self.total {
            if now > arrival + bound {
                return Some(DeadlineKind::Total);
            }
        }
        None
    }
}

/// The gateway's deadline policy: a default SLO plus per-tenant overrides.
///
/// The default-constructed policy enforces nothing, which keeps the
/// gateway's legacy never-drop semantics unless a deployment opts in.
#[derive(Debug, Clone, Default)]
pub struct SloPolicy {
    default: TenantSlo,
    per_tenant: BTreeMap<u32, TenantSlo>,
}

impl SloPolicy {
    /// No deadlines for anyone.
    pub fn none() -> Self {
        SloPolicy::default()
    }

    /// A policy applying `slo` to every tenant without an override.
    pub fn with_default(slo: TenantSlo) -> Self {
        SloPolicy {
            default: slo,
            per_tenant: BTreeMap::new(),
        }
    }

    /// Overrides the SLO for one tenant.
    pub fn tenant(mut self, tenant: u32, slo: TenantSlo) -> Self {
        self.per_tenant.insert(tenant, slo);
        self
    }

    /// The SLO `tenant` is served under.
    pub fn of(&self, tenant: u32) -> TenantSlo {
        self.per_tenant
            .get(&tenant)
            .copied()
            .unwrap_or(self.default)
    }

    /// Whether any tenant has any deadline (lets the gateway skip the
    /// deadline sweep entirely when the policy is inert).
    pub fn any_deadline(&self) -> bool {
        let has = |s: &TenantSlo| s.ttft.is_some() || s.total.is_some();
        has(&self.default) || self.per_tenant.values().any(has)
    }
}

/// Deterministic bounded retry with exponential backoff.
///
/// A crash-aborted request is re-queued at the gateway's recovery step but
/// only becomes *eligible* again after `backoff × 2^(attempt−1)`; after
/// `max_retries` failed attempts it is terminally crash-aborted. All delays
/// are pure functions of the attempt number — no clocks, no jitter — so
/// recovery schedules are identical across runs and job counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// How many times a request may be re-queued after crash aborts.
    pub max_retries: u32,
    /// Base backoff before the first retry becomes eligible.
    pub backoff: SimDuration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            backoff: SimDuration::from_millis(500),
        }
    }
}

impl RetryPolicy {
    /// The backoff applied before retry `attempt` (1-based) becomes
    /// eligible: `backoff × 2^(attempt−1)`, with the shift saturated.
    pub fn backoff_for(&self, attempt: u32) -> SimDuration {
        let shift = attempt.saturating_sub(1).min(32);
        self.backoff.mul_u64(1u64 << shift)
    }
}

/// The ledger of request fates, keyed by request id.
#[derive(Debug, Clone, Default)]
pub struct OutcomeLog {
    outcomes: BTreeMap<u64, (u32, RequestOutcome)>,
    retries: BTreeMap<u64, u32>,
}

impl OutcomeLog {
    /// An empty ledger.
    pub fn new() -> Self {
        OutcomeLog::default()
    }

    /// Records the latest outcome for a request. Later notes overwrite
    /// earlier ones: a `Retried` request that finishes ends `Completed`.
    pub fn note(&mut self, id: u64, tenant: u32, outcome: RequestOutcome) {
        self.outcomes.insert(id, (tenant, outcome));
    }

    /// Bumps and returns the 1-based retry attempt count for a request.
    pub fn note_retry(&mut self, id: u64) -> u32 {
        let n = self.retries.entry(id).or_insert(0);
        *n += 1;
        *n
    }

    /// Retry attempts recorded for a request so far.
    pub fn retries_of(&self, id: u64) -> u32 {
        self.retries.get(&id).copied().unwrap_or(0)
    }

    /// The latest outcome of a request, if any was recorded.
    pub fn of(&self, id: u64) -> Option<RequestOutcome> {
        self.outcomes.get(&id).map(|(_, o)| *o)
    }

    /// Number of requests whose latest outcome matches `pred`.
    pub fn count_where(&self, pred: impl Fn(RequestOutcome) -> bool) -> usize {
        self.outcomes.values().filter(|(_, o)| pred(*o)).count()
    }

    /// Requests shed at admission.
    pub fn shed(&self) -> usize {
        self.count_where(|o| matches!(o, RequestOutcome::ShedAtAdmission(_)))
    }

    /// Requests cancelled on a deadline.
    pub fn timed_out(&self) -> usize {
        self.count_where(|o| matches!(o, RequestOutcome::TimedOut(_)))
    }

    /// Requests terminally crash-aborted.
    pub fn crash_aborted(&self) -> usize {
        self.count_where(|o| matches!(o, RequestOutcome::CrashAborted))
    }

    /// Requests that completed.
    pub fn completed(&self) -> usize {
        self.count_where(|o| matches!(o, RequestOutcome::Completed))
    }

    /// Total retry attempts across all requests.
    pub fn total_retries(&self) -> u64 {
        self.retries.values().map(|&n| u64::from(n)).sum()
    }

    /// Iterates `(id, tenant, outcome)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u32, RequestOutcome)> + '_ {
        self.outcomes.iter().map(|(&id, &(t, o))| (id, t, o))
    }

    /// Number of requests with a recorded outcome.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// Whether the ledger is empty.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_terminality() {
        assert_eq!(RequestOutcome::Completed.label(), "completed");
        assert_eq!(
            RequestOutcome::ShedAtAdmission(ShedReason::KvCost).label(),
            "shed_at_admission"
        );
        assert_eq!(
            RequestOutcome::TimedOut(DeadlineKind::Ttft).label(),
            "timed_out"
        );
        assert!(RequestOutcome::CrashAborted.is_terminal());
        assert!(!RequestOutcome::Retried.is_terminal());
        assert_eq!(ShedReason::Brownout.label(), "brownout");
        assert_eq!(DeadlineKind::Total.label(), "total");
    }

    #[test]
    fn slo_missed_distinguishes_ttft_from_total() {
        let slo = TenantSlo::interactive(SimDuration::from_secs(1), SimDuration::from_secs(10));
        let arrival = SimTime::from_secs(5);
        // Within both deadlines.
        assert_eq!(slo.missed(arrival, 0, SimTime::from_secs(6)), None);
        // No token after the TTFT bound.
        assert_eq!(
            slo.missed(arrival, 0, SimTime::from_secs(7)),
            Some(DeadlineKind::Ttft)
        );
        // Tokens flowing, but the total bound passed.
        assert_eq!(
            slo.missed(arrival, 4, SimTime::from_secs(16)),
            Some(DeadlineKind::Total)
        );
        assert_eq!(slo.missed(arrival, 4, SimTime::from_secs(14)), None);
        assert_eq!(TenantSlo::none().missed(arrival, 0, SimTime::MAX), None);
    }

    #[test]
    fn slo_policy_overrides_and_inertness() {
        let inert = SloPolicy::none();
        assert!(!inert.any_deadline());
        let policy = SloPolicy::with_default(TenantSlo::none()).tenant(
            2,
            TenantSlo::interactive(SimDuration::from_secs(1), SimDuration::from_secs(2)),
        );
        assert!(policy.any_deadline());
        assert_eq!(policy.of(0), TenantSlo::none());
        assert!(policy.of(2).ttft.is_some());
    }

    #[test]
    fn retry_backoff_doubles_deterministically() {
        let r = RetryPolicy {
            max_retries: 3,
            backoff: SimDuration::from_millis(100),
        };
        assert_eq!(r.backoff_for(1), SimDuration::from_millis(100));
        assert_eq!(r.backoff_for(2), SimDuration::from_millis(200));
        assert_eq!(r.backoff_for(3), SimDuration::from_millis(400));
    }

    #[test]
    fn ledger_overwrites_and_counts() {
        let mut log = OutcomeLog::new();
        log.note(1, 0, RequestOutcome::Retried);
        assert_eq!(log.note_retry(1), 1);
        assert_eq!(log.note_retry(1), 2);
        log.note(1, 0, RequestOutcome::Completed);
        log.note(
            2,
            2,
            RequestOutcome::ShedAtAdmission(ShedReason::QueueDepth),
        );
        log.note(3, 0, RequestOutcome::TimedOut(DeadlineKind::Ttft));
        log.note(4, 0, RequestOutcome::CrashAborted);
        assert_eq!(log.of(1), Some(RequestOutcome::Completed));
        assert_eq!(log.completed(), 1);
        assert_eq!(log.shed(), 1);
        assert_eq!(log.timed_out(), 1);
        assert_eq!(log.crash_aborted(), 1);
        assert_eq!(log.total_retries(), 2);
        assert_eq!(log.retries_of(1), 2);
        assert_eq!(log.retries_of(9), 0);
        assert_eq!(log.len(), 4);
        assert_eq!(log.iter().count(), 4);
    }
}
