//! Tenant-aware admission control and overload protection.
//!
//! Two layers of defense live here:
//!
//! * **Pacing.** Capping each tenant's outstanding (admitted-but-unfinished)
//!   requests keeps a backlog tenant — e.g. batch long-prompt jobs submitted
//!   all at once — from claiming every KV block the moment the pool has
//!   room, which is what protects interactive tenants' TTFT. Pacing never
//!   drops a request; it only decides *when* queued work becomes eligible.
//! * **Shedding.** Under genuine overload, pacing is not enough: an
//!   unbounded queue turns every SLO into a lie. An opt-in
//!   [`OverloadPolicy`] refuses requests at the door once the queue passes a
//!   depth watermark or the estimated KV commitment passes a byte budget,
//!   and a hysteresis-gated *brownout* tightens the caps of designated
//!   (batch) tenants before chat SLOs break.
//!
//! The default-constructed policy enforces nothing, preserving the
//! never-drop semantics every pre-existing gateway test assumes.

use crate::outcome::ShedReason;
use std::collections::BTreeMap;

/// Opt-in overload-protection thresholds. The default polices nothing.
#[derive(Debug, Clone, Default)]
pub struct OverloadPolicy {
    /// Shed arrivals once the admission queue reaches this depth.
    pub queue_watermark: Option<usize>,
    /// Shed arrivals whose estimated KV bytes would push the total
    /// committed estimate (queued + running) past this budget.
    pub kv_commit_bytes: Option<u64>,
    /// Brownout mode: tighten designated tenants' caps under pressure.
    pub brownout: Option<BrownoutConfig>,
}

impl OverloadPolicy {
    /// Whether any protection is configured.
    pub fn is_enabled(&self) -> bool {
        self.queue_watermark.is_some() || self.kv_commit_bytes.is_some() || self.brownout.is_some()
    }
}

/// Brownout: when the admission queue is deep, capped (batch) tenants are
/// throttled to a tighter outstanding cap and their new arrivals are shed,
/// spending batch throughput to keep interactive SLOs alive. Enter/exit
/// depths form a hysteresis band so the mode does not flap.
#[derive(Debug, Clone)]
pub struct BrownoutConfig {
    /// Queue depth at or above which brownout engages.
    pub enter_depth: usize,
    /// Queue depth at or below which brownout clears (must be below
    /// `enter_depth` for useful hysteresis).
    pub exit_depth: usize,
    /// Tenants subject to brownout throttling.
    pub capped_tenants: Vec<u32>,
    /// Outstanding cap applied to capped tenants while browned out (0
    /// pauses new admissions entirely; already-running work continues).
    pub capped_outstanding: usize,
}

/// Per-tenant outstanding-request caps plus overload protection.
#[derive(Debug, Clone)]
pub struct AdmissionController {
    /// Maximum admitted-but-unfinished requests per tenant.
    max_outstanding: usize,
    outstanding: BTreeMap<u32, usize>,
    total: usize,
    overload: OverloadPolicy,
    brownout_active: bool,
    /// Estimated KV bytes committed to accepted-but-unretired requests,
    /// maintained as a running counter (`commit_bytes`/`release_bytes`)
    /// instead of being re-derived by a queue scan.
    committed_bytes: u64,
}

impl AdmissionController {
    /// A controller allowing each tenant `max_outstanding` requests in
    /// flight at once.
    ///
    /// # Panics
    ///
    /// Panics if `max_outstanding` is zero (that would deadlock every
    /// tenant).
    pub fn new(max_outstanding: usize) -> Self {
        assert!(max_outstanding > 0, "a zero cap would starve every tenant");
        AdmissionController {
            max_outstanding,
            outstanding: BTreeMap::new(),
            total: 0,
            overload: OverloadPolicy::default(),
            brownout_active: false,
            committed_bytes: 0,
        }
    }

    /// Installs an overload-protection policy.
    pub fn with_overload(mut self, overload: OverloadPolicy) -> Self {
        self.overload = overload;
        self
    }

    /// The installed overload policy.
    pub fn overload(&self) -> &OverloadPolicy {
        &self.overload
    }

    /// The cap currently applied to `tenant`.
    fn cap_of(&self, tenant: u32) -> usize {
        if self.brownout_active {
            if let Some(b) = &self.overload.brownout {
                if b.capped_tenants.contains(&tenant) {
                    return b.capped_outstanding.min(self.max_outstanding);
                }
            }
        }
        self.max_outstanding
    }

    /// Whether `tenant` may have another request scheduled right now.
    pub fn eligible(&self, tenant: u32) -> bool {
        self.outstanding.get(&tenant).copied().unwrap_or(0) < self.cap_of(tenant)
    }

    /// Records an admission for `tenant`.
    pub fn on_admit(&mut self, tenant: u32) {
        *self.outstanding.entry(tenant).or_insert(0) += 1;
        self.total += 1;
    }

    /// Records a completion for `tenant`.
    ///
    /// Saturating: a completion for an unknown tenant, or a double
    /// completion, leaves the books at zero instead of panicking — a
    /// crash-recovery path that retires the same request twice must not
    /// take the whole gateway down with it.
    pub fn on_complete(&mut self, tenant: u32) {
        if let Some(n) = self.outstanding.get_mut(&tenant) {
            if *n > 0 {
                *n -= 1;
                self.total = self.total.saturating_sub(1);
            }
        }
    }

    /// Outstanding requests for `tenant`.
    pub fn outstanding(&self, tenant: u32) -> usize {
        self.outstanding.get(&tenant).copied().unwrap_or(0)
    }

    /// Outstanding requests across all tenants (for watermark checks).
    pub fn outstanding_total(&self) -> usize {
        self.total
    }

    /// Records `est_bytes` of estimated KV commitment for an accepted
    /// request.
    pub fn commit_bytes(&mut self, est_bytes: u64) {
        self.committed_bytes = self.committed_bytes.saturating_add(est_bytes);
    }

    /// Releases `est_bytes` of estimated KV commitment when a request
    /// retires (or is timed out of the queue).
    pub fn release_bytes(&mut self, est_bytes: u64) {
        self.committed_bytes = self.committed_bytes.saturating_sub(est_bytes);
    }

    /// Estimated KV bytes currently committed to queued + running work.
    pub fn committed_bytes(&self) -> u64 {
        self.committed_bytes
    }

    /// Admission-time shed decision for a new arrival from `tenant`, given
    /// the current queue depth and the arrival's estimated KV bytes; the
    /// committed-bytes side of the KV-budget check reads this controller's
    /// running counter. Returns `None` when the request should be accepted.
    pub fn shed_reason(
        &self,
        tenant: u32,
        queue_depth: usize,
        est_bytes: u64,
    ) -> Option<ShedReason> {
        if self.brownout_active {
            if let Some(b) = &self.overload.brownout {
                if b.capped_tenants.contains(&tenant) {
                    return Some(ShedReason::Brownout);
                }
            }
        }
        if let Some(watermark) = self.overload.queue_watermark {
            if queue_depth >= watermark {
                return Some(ShedReason::QueueDepth);
            }
        }
        if let Some(budget) = self.overload.kv_commit_bytes {
            if self.committed_bytes.saturating_add(est_bytes) > budget {
                return Some(ShedReason::KvCost);
            }
        }
        None
    }

    /// Advances the brownout hysteresis against the current queue depth.
    /// Returns `Some(new_state)` on a transition so the gateway can journal
    /// it, `None` when the state is unchanged.
    pub fn update_brownout(&mut self, queue_depth: usize) -> Option<bool> {
        let Some(b) = &self.overload.brownout else {
            return None;
        };
        if !self.brownout_active && queue_depth >= b.enter_depth {
            self.brownout_active = true;
            Some(true)
        } else if self.brownout_active && queue_depth <= b.exit_depth {
            self.brownout_active = false;
            Some(false)
        } else {
            None
        }
    }

    /// Whether brownout mode is currently engaged.
    pub fn brownout_active(&self) -> bool {
        self.brownout_active
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cap_gates_eligibility() {
        let mut a = AdmissionController::new(2);
        assert!(a.eligible(0));
        a.on_admit(0);
        a.on_admit(0);
        assert!(!a.eligible(0), "tenant 0 is at its cap");
        assert!(a.eligible(1), "caps are per tenant");
        a.on_complete(0);
        assert!(a.eligible(0));
        assert_eq!(a.outstanding(0), 1);
        assert_eq!(a.outstanding(9), 0);
    }

    #[test]
    #[should_panic(expected = "starve")]
    fn zero_cap_rejected() {
        AdmissionController::new(0);
    }

    #[test]
    fn unmatched_completion_saturates_instead_of_panicking() {
        let mut a = AdmissionController::new(1);
        // Unknown tenant: no admission was ever recorded.
        a.on_complete(3);
        assert_eq!(a.outstanding(3), 0);
        assert_eq!(a.outstanding_total(), 0);
        // Double complete: the second retire is a no-op, not an underflow.
        a.on_admit(0);
        a.on_complete(0);
        a.on_complete(0);
        assert_eq!(a.outstanding(0), 0);
        assert_eq!(a.outstanding_total(), 0);
        assert!(a.eligible(0));
    }

    #[test]
    fn outstanding_total_tracks_all_tenants() {
        let mut a = AdmissionController::new(4);
        a.on_admit(0);
        a.on_admit(0);
        a.on_admit(1);
        assert_eq!(a.outstanding_total(), 3);
        a.on_complete(1);
        assert_eq!(a.outstanding_total(), 2);
    }

    #[test]
    fn shed_reasons_fire_in_order() {
        let mut a = AdmissionController::new(4).with_overload(OverloadPolicy {
            queue_watermark: Some(10),
            kv_commit_bytes: Some(1000),
            brownout: None,
        });
        a.commit_bytes(100);
        assert_eq!(a.committed_bytes(), 100);
        assert_eq!(a.shed_reason(0, 3, 100), None);
        assert_eq!(a.shed_reason(0, 10, 100), Some(ShedReason::QueueDepth));
        a.commit_bytes(400);
        assert_eq!(a.shed_reason(0, 3, 600), Some(ShedReason::KvCost));
        // Releasing the commitment re-opens the budget.
        a.release_bytes(400);
        assert_eq!(a.shed_reason(0, 3, 600), None);
        // Release saturates rather than underflowing.
        a.release_bytes(u64::MAX);
        assert_eq!(a.committed_bytes(), 0);
        let unprotected = AdmissionController::new(4);
        assert_eq!(unprotected.shed_reason(0, usize::MAX, u64::MAX), None);
    }

    #[test]
    fn brownout_hysteresis_caps_and_sheds_batch() {
        let mut a = AdmissionController::new(4).with_overload(OverloadPolicy {
            queue_watermark: None,
            kv_commit_bytes: None,
            brownout: Some(BrownoutConfig {
                enter_depth: 8,
                exit_depth: 2,
                capped_tenants: vec![2],
                capped_outstanding: 1,
            }),
        });
        assert!(!a.brownout_active());
        assert_eq!(a.update_brownout(7), None, "below the enter depth");
        assert_eq!(a.update_brownout(8), Some(true));
        assert!(a.brownout_active());
        assert_eq!(a.update_brownout(9), None, "already engaged");
        // Capped tenant: tighter cap and arrivals shed; others untouched.
        a.on_admit(2);
        assert!(!a.eligible(2), "browned-out cap of 1 is full");
        assert!(a.eligible(0));
        assert_eq!(a.shed_reason(2, 5, 0), Some(ShedReason::Brownout));
        assert_eq!(a.shed_reason(0, 5, 0), None);
        // Hysteresis: stays engaged until the exit depth.
        assert_eq!(a.update_brownout(3), None);
        assert_eq!(a.update_brownout(2), Some(false));
        assert!(a.eligible(2));
    }
}
