//! Tenant-aware admission control.
//!
//! The gateway never drops requests; admission control only decides *when* a
//! tenant's queued requests become eligible for scheduling. Capping each
//! tenant's outstanding (admitted-but-unfinished) requests keeps a backlog
//! tenant — e.g. batch long-prompt jobs submitted all at once — from
//! claiming every KV block the moment the pool has room, which is what
//! protects interactive tenants' TTFT.

use std::collections::BTreeMap;

/// Per-tenant outstanding-request caps.
#[derive(Debug, Clone)]
pub struct AdmissionController {
    /// Maximum admitted-but-unfinished requests per tenant.
    max_outstanding: usize,
    outstanding: BTreeMap<u32, usize>,
}

impl AdmissionController {
    /// A controller allowing each tenant `max_outstanding` requests in
    /// flight at once.
    ///
    /// # Panics
    ///
    /// Panics if `max_outstanding` is zero (that would deadlock every
    /// tenant).
    pub fn new(max_outstanding: usize) -> Self {
        assert!(max_outstanding > 0, "a zero cap would starve every tenant");
        AdmissionController {
            max_outstanding,
            outstanding: BTreeMap::new(),
        }
    }

    /// Whether `tenant` may have another request scheduled right now.
    pub fn eligible(&self, tenant: u32) -> bool {
        self.outstanding.get(&tenant).copied().unwrap_or(0) < self.max_outstanding
    }

    /// Records an admission for `tenant`.
    pub fn on_admit(&mut self, tenant: u32) {
        *self.outstanding.entry(tenant).or_insert(0) += 1;
    }

    /// Records a completion for `tenant`.
    pub fn on_complete(&mut self, tenant: u32) {
        let n = self
            .outstanding
            .get_mut(&tenant)
            .expect("completion without admission");
        *n = n.checked_sub(1).expect("completion without admission");
    }

    /// Outstanding requests for `tenant`.
    pub fn outstanding(&self, tenant: u32) -> usize {
        self.outstanding.get(&tenant).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cap_gates_eligibility() {
        let mut a = AdmissionController::new(2);
        assert!(a.eligible(0));
        a.on_admit(0);
        a.on_admit(0);
        assert!(!a.eligible(0), "tenant 0 is at its cap");
        assert!(a.eligible(1), "caps are per tenant");
        a.on_complete(0);
        assert!(a.eligible(0));
        assert_eq!(a.outstanding(0), 1);
        assert_eq!(a.outstanding(9), 0);
    }

    #[test]
    #[should_panic(expected = "starve")]
    fn zero_cap_rejected() {
        AdmissionController::new(0);
    }

    #[test]
    #[should_panic(expected = "without admission")]
    fn unmatched_completion_panics() {
        AdmissionController::new(1).on_complete(3);
    }
}
