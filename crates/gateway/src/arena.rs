//! Arena for per-token delivery records.
//!
//! Every running sequence appends one `SimTime` per decode iteration — the
//! single highest-volume allocation in a serving run. Giving each sequence
//! its own growing `Vec<SimTime>` reallocates `log₂(output_tokens)` times
//! per request and scatters records across the heap; at a million requests
//! that is tens of millions of reallocations. [`TokenArena`] instead packs
//! all token records into one backing buffer: a sequence's capacity is known
//! exactly at submission (`output_tokens` is part of the request), so the
//! arena hands out a fixed-size chunk once, and recycles it by exact size
//! class when the sequence retires. Peak footprint is bounded by the *live*
//! sequences, not the whole trace.

use aqua_sim::time::SimTime;
use std::collections::HashMap;

/// A sequence's chunk in a [`TokenArena`]: `cap` slots at `start`, `len`
/// filled so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TokenSlot {
    start: usize,
    len: u32,
    cap: u32,
}

impl TokenSlot {
    /// Tokens recorded so far.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Returns `true` before the first token lands.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Bump-allocated token-record storage with exact-size-class recycling.
///
/// # Example
///
/// ```
/// use aqua_gateway::arena::TokenArena;
/// use aqua_sim::time::SimTime;
///
/// let mut arena = TokenArena::new();
/// let mut slot = arena.alloc(2);
/// arena.push(&mut slot, SimTime::from_millis(5));
/// arena.push(&mut slot, SimTime::from_millis(9));
/// assert_eq!(arena.take(&slot), vec![SimTime::from_millis(5), SimTime::from_millis(9)]);
/// arena.release(slot);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TokenArena {
    buf: Vec<SimTime>,
    /// Retired chunks by exact capacity, LIFO per class.
    free: HashMap<u32, Vec<usize>>,
}

impl TokenArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Claims a chunk of exactly `cap` token slots (a free chunk of the same
    /// size class when one exists, fresh buffer tail otherwise).
    pub fn alloc(&mut self, cap: u64) -> TokenSlot {
        let cap = u32::try_from(cap).expect("per-request token counts fit u32");
        let start = match self.free.get_mut(&cap).and_then(Vec::pop) {
            Some(start) => start,
            None => {
                let start = self.buf.len();
                self.buf.resize(start + cap as usize, SimTime::ZERO);
                start
            }
        };
        TokenSlot { start, len: 0, cap }
    }

    /// Appends a token record to `slot`.
    ///
    /// # Panics
    ///
    /// Panics if the chunk is already full — a sequence generating more
    /// tokens than its request declared is a simulator bug.
    pub fn push(&mut self, slot: &mut TokenSlot, at: SimTime) {
        assert!(slot.len < slot.cap, "token record past declared output");
        self.buf[slot.start + slot.len as usize] = at;
        slot.len += 1;
    }

    /// The records written to `slot` so far.
    pub fn slice(&self, slot: &TokenSlot) -> &[SimTime] {
        &self.buf[slot.start..slot.start + slot.len as usize]
    }

    /// Copies `slot`'s records out (does not release the chunk).
    pub fn take(&self, slot: &TokenSlot) -> Vec<SimTime> {
        self.slice(slot).to_vec()
    }

    /// Returns `slot`'s chunk to its size-class free list.
    pub fn release(&mut self, slot: TokenSlot) {
        if slot.cap > 0 {
            self.free.entry(slot.cap).or_default().push(slot.start);
        }
    }

    /// Total backing-buffer slots ever claimed (peak-live watermark).
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }
}

const NIL: u32 = u32::MAX;

/// A slot in a [`SlotArena`]: payload plus intrusive list links.
#[derive(Debug, Clone)]
struct Slot<T> {
    value: Option<T>,
    prev: u32,
    next: u32,
}

/// An insertion-ordered slot arena: stable `u32` handles, O(1) removal by
/// handle, and iteration in insertion order via an intrusive doubly-linked
/// list threaded through the slots.
///
/// The gateway keeps queued sequences here. The old pending queue was a
/// `Vec` compacted with `remove(position)` — an O(backlog) shift per
/// admission, plus an O(backlog) `position()` search to find the entry the
/// scheduler picked. With an arena, the scheduler index stores handles and
/// every admission unlinks its slot in O(1), while deadline sweeps and
/// crash marking still walk the queue in arrival order (the trace-event
/// order the determinism suites pin).
///
/// Freed slots go on a LIFO free list and are reused by the next insert, so
/// steady-state serving does no allocation at all.
#[derive(Debug, Clone)]
pub struct SlotArena<T> {
    slots: Vec<Slot<T>>,
    head: u32,
    tail: u32,
    free: Vec<u32>,
    len: usize,
}

impl<T> Default for SlotArena<T> {
    fn default() -> Self {
        SlotArena {
            slots: Vec::new(),
            head: NIL,
            tail: NIL,
            free: Vec::new(),
            len: 0,
        }
    }
}

impl<T> SlotArena<T> {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when no entries are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends `value` at the back of the insertion order; returns its
    /// handle.
    pub fn push_back(&mut self, value: T) -> u32 {
        let handle = match self.free.pop() {
            Some(h) => {
                self.slots[h as usize] = Slot {
                    value: Some(value),
                    prev: self.tail,
                    next: NIL,
                };
                h
            }
            None => {
                let h = u32::try_from(self.slots.len()).expect("slot handles fit u32");
                self.slots.push(Slot {
                    value: Some(value),
                    prev: self.tail,
                    next: NIL,
                });
                h
            }
        };
        if self.tail == NIL {
            self.head = handle;
        } else {
            self.slots[self.tail as usize].next = handle;
        }
        self.tail = handle;
        self.len += 1;
        handle
    }

    /// Unlinks and returns the entry at `handle`.
    ///
    /// # Panics
    ///
    /// Panics if `handle` is vacant — removing twice is a bookkeeping bug.
    pub fn remove(&mut self, handle: u32) -> T {
        let slot = &mut self.slots[handle as usize];
        let value = slot.value.take().expect("slot is live");
        let (prev, next) = (slot.prev, slot.next);
        if prev == NIL {
            self.head = next;
        } else {
            self.slots[prev as usize].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slots[next as usize].prev = prev;
        }
        self.free.push(handle);
        self.len -= 1;
        value
    }

    /// The entry at `handle`, if live.
    pub fn get(&self, handle: u32) -> Option<&T> {
        self.slots
            .get(handle as usize)
            .and_then(|s| s.value.as_ref())
    }

    /// Mutable access to the entry at `handle`, if live.
    pub fn get_mut(&mut self, handle: u32) -> Option<&mut T> {
        self.slots
            .get_mut(handle as usize)
            .and_then(|s| s.value.as_mut())
    }

    /// Iterates `(handle, &entry)` in insertion order.
    pub fn iter(&self) -> SlotIter<'_, T> {
        SlotIter {
            arena: self,
            at: self.head,
        }
    }

    /// Collects the handles in insertion order (for sweeps that mutate or
    /// remove entries mid-walk).
    pub fn handles(&self) -> Vec<u32> {
        self.iter().map(|(h, _)| h).collect()
    }
}

/// Insertion-order iterator over a [`SlotArena`].
pub struct SlotIter<'a, T> {
    arena: &'a SlotArena<T>,
    at: u32,
}

impl<'a, T> Iterator for SlotIter<'a, T> {
    type Item = (u32, &'a T);

    fn next(&mut self) -> Option<Self::Item> {
        if self.at == NIL {
            return None;
        }
        let handle = self.at;
        let slot = &self.arena.slots[handle as usize];
        self.at = slot.next;
        Some((handle, slot.value.as_ref().expect("linked slots are live")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_take_roundtrip() {
        let mut a = TokenArena::new();
        let mut s = a.alloc(3);
        assert!(s.is_empty());
        for ms in [1u64, 2, 3] {
            a.push(&mut s, SimTime::from_millis(ms));
        }
        assert_eq!(s.len(), 3);
        assert_eq!(a.slice(&s).len(), 3);
        assert_eq!(a.take(&s)[2], SimTime::from_millis(3));
    }

    #[test]
    #[should_panic(expected = "past declared output")]
    fn overflow_is_a_bug() {
        let mut a = TokenArena::new();
        let mut s = a.alloc(1);
        a.push(&mut s, SimTime::ZERO);
        a.push(&mut s, SimTime::ZERO);
    }

    #[test]
    fn release_recycles_exact_size_class() {
        let mut a = TokenArena::new();
        let s1 = a.alloc(8);
        let watermark = a.capacity();
        a.release(s1);
        // Same class reuses the chunk; a different class claims fresh space.
        let s2 = a.alloc(8);
        assert_eq!(a.capacity(), watermark);
        let _s3 = a.alloc(4);
        assert_eq!(a.capacity(), watermark + 4);
        a.release(s2);
    }

    #[test]
    fn interleaved_sequences_do_not_collide() {
        let mut a = TokenArena::new();
        let mut s1 = a.alloc(2);
        let mut s2 = a.alloc(2);
        a.push(&mut s1, SimTime::from_millis(1));
        a.push(&mut s2, SimTime::from_millis(2));
        a.push(&mut s1, SimTime::from_millis(3));
        assert_eq!(
            a.take(&s1),
            vec![SimTime::from_millis(1), SimTime::from_millis(3)]
        );
        assert_eq!(a.take(&s2), vec![SimTime::from_millis(2)]);
    }

    #[test]
    fn slot_arena_preserves_insertion_order_across_removals() {
        let mut a = SlotArena::new();
        let h1 = a.push_back("a");
        let h2 = a.push_back("b");
        let h3 = a.push_back("c");
        assert_eq!(a.len(), 3);
        assert_eq!(a.remove(h2), "b");
        assert_eq!(
            a.iter().map(|(_, v)| *v).collect::<Vec<_>>(),
            vec!["a", "c"]
        );
        // Freed slots are recycled LIFO but the new entry joins at the back.
        let h4 = a.push_back("d");
        assert_eq!(h4, h2, "freed slot is reused");
        assert_eq!(a.handles(), vec![h1, h3, h4]);
        assert_eq!(a.remove(h1), "a");
        assert_eq!(a.remove(h3), "c");
        assert_eq!(a.remove(h4), "d");
        assert!(a.is_empty());
        assert_eq!(a.iter().next().map(|(h, _)| h), None);
    }

    #[test]
    fn slot_arena_head_and_tail_removals_relink() {
        let mut a = SlotArena::new();
        let h1 = a.push_back(1);
        let h2 = a.push_back(2);
        let h3 = a.push_back(3);
        a.remove(h1); // head
        a.remove(h3); // tail
        assert_eq!(a.iter().map(|(_, v)| *v).collect::<Vec<_>>(), vec![2]);
        assert_eq!(a.get(h2), Some(&2));
        assert_eq!(a.get(h1), None);
        *a.get_mut(h2).unwrap() = 9;
        assert_eq!(a.remove(h2), 9);
        let h = a.push_back(4);
        assert_eq!(a.handles(), vec![h]);
    }

    #[test]
    #[should_panic(expected = "slot is live")]
    fn slot_arena_double_remove_is_a_bug() {
        let mut a = SlotArena::new();
        let h = a.push_back(());
        a.remove(h);
        a.remove(h);
    }
}
