//! Arena for per-token delivery records.
//!
//! Every running sequence appends one `SimTime` per decode iteration — the
//! single highest-volume allocation in a serving run. Giving each sequence
//! its own growing `Vec<SimTime>` reallocates `log₂(output_tokens)` times
//! per request and scatters records across the heap; at a million requests
//! that is tens of millions of reallocations. [`TokenArena`] instead packs
//! all token records into one backing buffer: a sequence's capacity is known
//! exactly at submission (`output_tokens` is part of the request), so the
//! arena hands out a fixed-size chunk once, and recycles it by exact size
//! class when the sequence retires. Peak footprint is bounded by the *live*
//! sequences, not the whole trace.

use aqua_sim::time::SimTime;
use std::collections::HashMap;

/// A sequence's chunk in a [`TokenArena`]: `cap` slots at `start`, `len`
/// filled so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TokenSlot {
    start: usize,
    len: u32,
    cap: u32,
}

impl TokenSlot {
    /// Tokens recorded so far.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Returns `true` before the first token lands.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Bump-allocated token-record storage with exact-size-class recycling.
///
/// # Example
///
/// ```
/// use aqua_gateway::arena::TokenArena;
/// use aqua_sim::time::SimTime;
///
/// let mut arena = TokenArena::new();
/// let mut slot = arena.alloc(2);
/// arena.push(&mut slot, SimTime::from_millis(5));
/// arena.push(&mut slot, SimTime::from_millis(9));
/// assert_eq!(arena.take(&slot), vec![SimTime::from_millis(5), SimTime::from_millis(9)]);
/// arena.release(slot);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TokenArena {
    buf: Vec<SimTime>,
    /// Retired chunks by exact capacity, LIFO per class.
    free: HashMap<u32, Vec<usize>>,
}

impl TokenArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Claims a chunk of exactly `cap` token slots (a free chunk of the same
    /// size class when one exists, fresh buffer tail otherwise).
    pub fn alloc(&mut self, cap: u64) -> TokenSlot {
        let cap = u32::try_from(cap).expect("per-request token counts fit u32");
        let start = match self.free.get_mut(&cap).and_then(Vec::pop) {
            Some(start) => start,
            None => {
                let start = self.buf.len();
                self.buf.resize(start + cap as usize, SimTime::ZERO);
                start
            }
        };
        TokenSlot { start, len: 0, cap }
    }

    /// Appends a token record to `slot`.
    ///
    /// # Panics
    ///
    /// Panics if the chunk is already full — a sequence generating more
    /// tokens than its request declared is a simulator bug.
    pub fn push(&mut self, slot: &mut TokenSlot, at: SimTime) {
        assert!(slot.len < slot.cap, "token record past declared output");
        self.buf[slot.start + slot.len as usize] = at;
        slot.len += 1;
    }

    /// The records written to `slot` so far.
    pub fn slice(&self, slot: &TokenSlot) -> &[SimTime] {
        &self.buf[slot.start..slot.start + slot.len as usize]
    }

    /// Copies `slot`'s records out (does not release the chunk).
    pub fn take(&self, slot: &TokenSlot) -> Vec<SimTime> {
        self.slice(slot).to_vec()
    }

    /// Returns `slot`'s chunk to its size-class free list.
    pub fn release(&mut self, slot: TokenSlot) {
        if slot.cap > 0 {
            self.free.entry(slot.cap).or_default().push(slot.start);
        }
    }

    /// Total backing-buffer slots ever claimed (peak-live watermark).
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_take_roundtrip() {
        let mut a = TokenArena::new();
        let mut s = a.alloc(3);
        assert!(s.is_empty());
        for ms in [1u64, 2, 3] {
            a.push(&mut s, SimTime::from_millis(ms));
        }
        assert_eq!(s.len(), 3);
        assert_eq!(a.slice(&s).len(), 3);
        assert_eq!(a.take(&s)[2], SimTime::from_millis(3));
    }

    #[test]
    #[should_panic(expected = "past declared output")]
    fn overflow_is_a_bug() {
        let mut a = TokenArena::new();
        let mut s = a.alloc(1);
        a.push(&mut s, SimTime::ZERO);
        a.push(&mut s, SimTime::ZERO);
    }

    #[test]
    fn release_recycles_exact_size_class() {
        let mut a = TokenArena::new();
        let s1 = a.alloc(8);
        let watermark = a.capacity();
        a.release(s1);
        // Same class reuses the chunk; a different class claims fresh space.
        let s2 = a.alloc(8);
        assert_eq!(a.capacity(), watermark);
        let _s3 = a.alloc(4);
        assert_eq!(a.capacity(), watermark + 4);
        a.release(s2);
    }

    #[test]
    fn interleaved_sequences_do_not_collide() {
        let mut a = TokenArena::new();
        let mut s1 = a.alloc(2);
        let mut s2 = a.alloc(2);
        a.push(&mut s1, SimTime::from_millis(1));
        a.push(&mut s2, SimTime::from_millis(2));
        a.push(&mut s1, SimTime::from_millis(3));
        assert_eq!(
            a.take(&s1),
            vec![SimTime::from_millis(1), SimTime::from_millis(3)]
        );
        assert_eq!(a.take(&s2), vec![SimTime::from_millis(2)]);
    }
}
