//! The decode-scheduler zoo, as incremental priority indices.
//!
//! Each policy answers one question: given the queue of admissible requests,
//! in what order should the gateway admit them into the continuous batch?
//! Until PR 8 the answer was computed by re-sorting the whole pending queue
//! every decode iteration — fine undersaturated, quadratic the moment
//! arrivals outrun service and the backlog grows. The [`Scheduler`] trait is
//! now an *incremental index*: the gateway notifies it on every queue
//! transition (`on_enqueue` / `on_requeue` / `on_remove`) and asks for the
//! single next request to admit (`pop_next`), and each policy maintains a
//! data structure whose per-admission cost is independent of backlog depth:
//!
//! | policy       | index                                   | per-op cost  |
//! |--------------|-----------------------------------------|--------------|
//! | `fcfs`       | arrival-ordered ring buffer             | O(1) amortized |
//! | `sjf`        | ordered map on remaining output         | O(log n)     |
//! | `sjf+bucket` | per-bucket FIFO rings                   | O(log B)     |
//! | `sjf+aging`  | SJF map + aged ring, deadline-wheel promotion | O(log n) |
//! | `orca`       | predicted-length map, epoch re-key on ratio drift | O(log n)* |
//!
//! (*) Orca re-keys the whole index when the learned ratio drifts — an
//! explicit epoch rebuild, amortized against how often completions move the
//! EWMA, instead of a hidden per-iteration sort.
//!
//! Every index reproduces the order of the sort-based reference policies in
//! [`oracle`] *exactly, including ties* (each ordering ends with
//! `(enqueued, id)` tie-breakers), which is what keeps experiment digests
//! byte-identical across the PR 8 → PR 9 engine rewrite. The differential
//! proptest at the bottom of this file pins that equivalence under random
//! arrivals, completions, crash re-queues and aging promotions.

use crate::admission::AdmissionController;
use aqua_sim::time::{SimDuration, SimTime};
use std::cell::Cell;
use std::collections::{BTreeMap, VecDeque};

/// Queue metadata a scheduler is allowed to see for one waiting request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueuedMeta {
    /// Request id.
    pub id: u64,
    /// Tenant the request belongs to.
    pub tenant: u32,
    /// When the request entered the gateway queue.
    pub enqueued: SimTime,
    /// Prompt length in tokens.
    pub prompt_tokens: u64,
    /// Declared output length in tokens (the simulator's oracle; real
    /// servers must predict this — see [`oracle::OrcaPredict`]).
    pub output_tokens: u64,
    /// Tokens already generated before a preemption returned the request to
    /// the queue (0 for first-time admission).
    pub generated: u64,
}

impl QueuedMeta {
    /// Declared output tokens still to generate.
    fn remaining(&self) -> u64 {
        self.output_tokens.saturating_sub(self.generated)
    }

    /// KV context tokens this request occupies when admitted (prompt plus
    /// already-generated output) — constant while the request is queued.
    pub fn context_tokens(&self) -> u64 {
        self.prompt_tokens + self.generated
    }
}

thread_local! {
    static KEY_COMPARISONS: Cell<u64> = const { Cell::new(0) };
}

/// Monotone per-thread count of [`SchedKey`] comparisons. Microbenchmarks
/// difference this around one operation to assert that admission work is
/// independent of backlog depth.
pub fn sched_comparisons() -> u64 {
    KEY_COMPARISONS.with(Cell::get)
}

/// The unified priority key every policy orders by: `(class, primary,
/// enqueued, id)`. `class` separates aged from un-aged work (0 for every
/// other policy), `primary` is the policy's priority (0 for FCFS), and the
/// `(enqueued, id)` suffix is the tie-breaker every ordering ends with, so
/// equal-priority requests keep a stable total order. Comparisons are
/// counted per thread (see [`sched_comparisons`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedKey {
    class: u8,
    primary: u64,
    enqueued: SimTime,
    id: u64,
}

impl Ord for SchedKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        KEY_COMPARISONS.with(|c| c.set(c.get() + 1));
        (self.class, self.primary, self.enqueued, self.id).cmp(&(
            other.class,
            other.primary,
            other.enqueued,
            other.id,
        ))
    }
}

impl PartialOrd for SchedKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A decode-admission ordering policy, driven incrementally.
///
/// The gateway mirrors every pending-queue transition into the index and
/// admits by repeatedly calling [`pop_next`](Scheduler::pop_next), which
/// returns the eligible request the policy ranks first. "Eligible" means
/// the request's tenant has admission-cap headroom (first-time admissions
/// only — re-queued work already holds its slot) and any crash-retry
/// backoff (`eligible_after`) has expired. Implementations must be
/// deterministic and must order exactly like the sort-based [`oracle`]
/// policies, ties included.
pub trait Scheduler {
    /// Policy name as it appears in tables and trace events.
    fn name(&self) -> &'static str;

    /// A fresh, never-admitted request entered the queue.
    fn on_enqueue(&mut self, m: QueuedMeta, now: SimTime);

    /// An admitted-once request returned to the queue (preemption or crash
    /// retry). It is not schedulable before `eligible_after`.
    fn on_requeue(&mut self, m: QueuedMeta, eligible_after: SimTime, now: SimTime);

    /// A queued request left the queue for good (deadline timeout).
    /// `admitted_once`/`eligible_after` locate it; returns whether it was
    /// indexed.
    fn on_remove(&mut self, m: &QueuedMeta, admitted_once: bool, eligible_after: SimTime) -> bool;

    /// Removes and returns the next request to admit at `now`, or `None`
    /// when nothing is eligible. Does not consume cap headroom — the
    /// gateway records the admission against `caps` itself.
    fn pop_next(&mut self, now: SimTime, caps: &AdmissionController) -> Option<QueuedMeta>;

    /// Earliest `eligible_after` among requests still parked on a crash
    /// backoff strictly in the future (as of the last `pop_next`).
    fn next_parked(&self) -> Option<SimTime>;

    /// Smallest [`QueuedMeta::context_tokens`] over requests whose tenant
    /// currently has cap headroom (backoff is ignored: parked work still
    /// counts as work). With monotone KV fit checks this answers "is any
    /// queued request admissible" without scanning the backlog.
    fn min_context(&self, caps: &AdmissionController) -> Option<u64>;

    /// Feedback hook: a request with `prompt` prompt tokens finished after
    /// generating `output` tokens. Predictive policies learn from this.
    fn observe_completion(&mut self, _prompt: u64, _output: u64) {}

    /// Requests currently indexed.
    fn len(&self) -> usize;

    /// Whether the index is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Per-pop policy context: the current time (aging promotions) and the
/// Orca ratio (epoch re-keys). Cheap to build, passed by reference.
#[derive(Debug, Clone, Copy)]
struct QueueCtx {
    now: SimTime,
    ratio: f64,
}

/// One policy's backlog-independent container. [`TenantIndex`] keeps one
/// per tenant for cap-gated fresh arrivals plus one shared queue for
/// re-admissions, and takes a global minimum over their fronts.
trait PolicyQueue: Clone {
    fn insert(&mut self, m: QueuedMeta, ctx: &QueueCtx);
    /// Removes `m` (matched by its key); returns whether it was present.
    fn remove(&mut self, m: &QueuedMeta) -> bool;
    /// Applies lazy state transitions due at `ctx` (aging promotions, Orca
    /// epoch re-keys) so `peek_key` answers as the oracle would.
    fn advance(&mut self, ctx: &QueueCtx);
    fn peek_key(&self) -> Option<SchedKey>;
    fn pop_min(&mut self) -> Option<QueuedMeta>;
    fn len(&self) -> usize;
}

/// An ordered ring buffer: O(1) at the ends (the common case — arrivals
/// carry nondecreasing `(enqueued, id)` keys), binary-search insert for the
/// rare out-of-order key. FCFS uses it directly; bucketed SJF and aging use
/// it per bucket / for the aged class.
#[derive(Debug, Clone, Default)]
struct FifoRing {
    ring: VecDeque<(SchedKey, QueuedMeta)>,
}

impl FifoRing {
    fn insert(&mut self, key: SchedKey, m: QueuedMeta) {
        if self.ring.back().is_none_or(|(k, _)| *k < key) {
            self.ring.push_back((key, m));
        } else if self.ring.front().is_some_and(|(k, _)| key < *k) {
            self.ring.push_front((key, m));
        } else {
            let at = self.ring.partition_point(|(k, _)| *k < key);
            self.ring.insert(at, (key, m));
        }
    }

    fn remove(&mut self, key: SchedKey) -> bool {
        match self.ring.binary_search_by(|(k, _)| k.cmp(&key)) {
            Ok(at) => {
                self.ring.remove(at);
                true
            }
            Err(_) => false,
        }
    }

    fn peek_key(&self) -> Option<SchedKey> {
        self.ring.front().map(|(k, _)| *k)
    }

    fn pop_min(&mut self) -> Option<QueuedMeta> {
        self.ring.pop_front().map(|(_, m)| m)
    }

    fn len(&self) -> usize {
        self.ring.len()
    }
}

/// First-come first-served: admission order is arrival order (this is what
/// vLLM's waiting queue does). Key `(enqueued, id)`.
#[derive(Debug, Clone, Default)]
struct FcfsQueue {
    ring: FifoRing,
}

fn fcfs_key(m: &QueuedMeta) -> SchedKey {
    SchedKey {
        class: 0,
        primary: 0,
        enqueued: m.enqueued,
        id: m.id,
    }
}

impl PolicyQueue for FcfsQueue {
    fn insert(&mut self, m: QueuedMeta, _ctx: &QueueCtx) {
        self.ring.insert(fcfs_key(&m), m);
    }

    fn remove(&mut self, m: &QueuedMeta) -> bool {
        self.ring.remove(fcfs_key(m))
    }

    fn advance(&mut self, _ctx: &QueueCtx) {}

    fn peek_key(&self) -> Option<SchedKey> {
        self.ring.peek_key()
    }

    fn pop_min(&mut self) -> Option<QueuedMeta> {
        self.ring.pop_min()
    }

    fn len(&self) -> usize {
        self.ring.len()
    }
}

/// Pure shortest-job-first on declared remaining output, as an ordered map.
/// Minimizes mean latency but lets a stream of short jobs starve a long one
/// indefinitely.
#[derive(Debug, Clone, Default)]
struct SjfQueue {
    map: BTreeMap<SchedKey, QueuedMeta>,
}

fn sjf_key(m: &QueuedMeta) -> SchedKey {
    SchedKey {
        class: 0,
        primary: m.remaining(),
        enqueued: m.enqueued,
        id: m.id,
    }
}

impl PolicyQueue for SjfQueue {
    fn insert(&mut self, m: QueuedMeta, _ctx: &QueueCtx) {
        self.map.insert(sjf_key(&m), m);
    }

    fn remove(&mut self, m: &QueuedMeta) -> bool {
        self.map.remove(&sjf_key(m)).is_some()
    }

    fn advance(&mut self, _ctx: &QueueCtx) {}

    fn peek_key(&self) -> Option<SchedKey> {
        self.map.first_key_value().map(|(k, _)| *k)
    }

    fn pop_min(&mut self) -> Option<QueuedMeta> {
        self.map.pop_first().map(|(_, m)| m)
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// SJF with length bucketing: jobs whose remaining lengths fall in the same
/// bucket are served FCFS — one ring per bucket, orderd by bucket index —
/// so near-equal jobs do not leapfrog each other and the queue keeps most
/// of SJF's tail-latency win without its churn.
#[derive(Debug, Clone)]
struct SjfBucketQueue {
    bucket: u64,
    rings: BTreeMap<u64, FifoRing>,
    len: usize,
}

impl Default for SjfBucketQueue {
    fn default() -> Self {
        SjfBucketQueue {
            bucket: 64,
            rings: BTreeMap::new(),
            len: 0,
        }
    }
}

impl SjfBucketQueue {
    fn key(&self, m: &QueuedMeta) -> SchedKey {
        SchedKey {
            class: 0,
            primary: m.remaining() / self.bucket.max(1),
            enqueued: m.enqueued,
            id: m.id,
        }
    }
}

impl PolicyQueue for SjfBucketQueue {
    fn insert(&mut self, m: QueuedMeta, _ctx: &QueueCtx) {
        let key = self.key(&m);
        self.rings.entry(key.primary).or_default().insert(key, m);
        self.len += 1;
    }

    fn remove(&mut self, m: &QueuedMeta) -> bool {
        let key = self.key(m);
        let Some(ring) = self.rings.get_mut(&key.primary) else {
            return false;
        };
        let removed = ring.remove(key);
        if removed {
            self.len -= 1;
            if ring.len() == 0 {
                self.rings.remove(&key.primary);
            }
        }
        removed
    }

    fn advance(&mut self, _ctx: &QueueCtx) {}

    fn peek_key(&self) -> Option<SchedKey> {
        self.rings.first_key_value().and_then(|(_, r)| r.peek_key())
    }

    fn pop_min(&mut self) -> Option<QueuedMeta> {
        let mut first = self.rings.first_entry()?;
        let m = first.get_mut().pop_min().expect("empty rings are pruned");
        if first.get().len() == 0 {
            first.remove();
        }
        self.len -= 1;
        Some(m)
    }

    fn len(&self) -> usize {
        self.len
    }
}

/// SJF with starvation aging: a request waiting longer than the promotion
/// threshold jumps ahead of every un-aged request (aged requests among
/// themselves are FCFS), bounding worst-case queueing delay. Un-aged work
/// sits in an SJF map with its promotion deadline (`enqueued + promote`) on
/// a wheel; [`PolicyQueue::advance`] lazily moves due entries into the aged
/// ring, so the per-pop cost is O(log n) plus O(log n) per promotion
/// instead of a full re-sort per iteration.
#[derive(Debug, Clone)]
struct SjfAgingQueue {
    promote: SimDuration,
    /// Aged class (0): FCFS ring keyed `(enqueued, id)`.
    aged: FifoRing,
    /// Un-aged class (1): SJF map keyed `(remaining, enqueued, id)`.
    unaged: BTreeMap<SchedKey, QueuedMeta>,
    /// Promotion deadlines of un-aged entries: `(enqueued + promote, key)`.
    deadlines: BTreeMap<(SimTime, SchedKey), ()>,
}

impl Default for SjfAgingQueue {
    fn default() -> Self {
        SjfAgingQueue {
            promote: SimDuration::from_secs(60),
            aged: FifoRing::default(),
            unaged: BTreeMap::new(),
            deadlines: BTreeMap::new(),
        }
    }
}

impl SjfAgingQueue {
    fn aged_key(m: &QueuedMeta) -> SchedKey {
        SchedKey {
            class: 0,
            primary: 0,
            enqueued: m.enqueued,
            id: m.id,
        }
    }

    fn unaged_key(m: &QueuedMeta) -> SchedKey {
        SchedKey {
            class: 1,
            primary: m.remaining(),
            enqueued: m.enqueued,
            id: m.id,
        }
    }
}

impl PolicyQueue for SjfAgingQueue {
    fn insert(&mut self, m: QueuedMeta, ctx: &QueueCtx) {
        if ctx.now.duration_since(m.enqueued) >= self.promote {
            self.aged.insert(Self::aged_key(&m), m);
        } else {
            let key = Self::unaged_key(&m);
            self.deadlines.insert((m.enqueued + self.promote, key), ());
            self.unaged.insert(key, m);
        }
    }

    fn remove(&mut self, m: &QueuedMeta) -> bool {
        let key = Self::unaged_key(m);
        if let Some(removed) = self.unaged.remove(&key) {
            self.deadlines
                .remove(&(removed.enqueued + self.promote, key));
            return true;
        }
        self.aged.remove(Self::aged_key(m))
    }

    fn advance(&mut self, ctx: &QueueCtx) {
        while let Some((&(due, key), ())) = self.deadlines.first_key_value() {
            if due > ctx.now {
                break;
            }
            self.deadlines.pop_first();
            let m = self.unaged.remove(&key).expect("deadline tracks unaged");
            self.aged.insert(Self::aged_key(&m), m);
        }
    }

    fn peek_key(&self) -> Option<SchedKey> {
        // Aged entries (class 0) always rank before un-aged (class 1).
        self.aged
            .peek_key()
            .or_else(|| self.unaged.first_key_value().map(|(k, _)| *k))
    }

    fn pop_min(&mut self) -> Option<QueuedMeta> {
        if let Some(m) = self.aged.pop_min() {
            return Some(m);
        }
        let (key, m) = self.unaged.pop_first()?;
        self.deadlines.remove(&(m.enqueued + self.promote, key));
        Some(m)
    }

    fn len(&self) -> usize {
        // `deadlines` mirrors `unaged` (one promotion deadline per unaged
        // entry) and never counts separately.
        self.aged.len() + self.unaged.len()
    }
}

/// Orca-style remaining-length prediction: instead of trusting the declared
/// output length (which a real server does not know), predict it from an
/// exponentially weighted average of observed output/prompt ratios and
/// order by predicted remaining work. Keys are computed at the *epoch*
/// ratio the index was last built at; when the learned ratio drifts (any
/// completion moves the EWMA), the next touch re-keys the whole index in
/// one pass — the oracle's per-iteration re-sort, amortized to once per
/// drift.
#[derive(Debug, Clone)]
struct OrcaQueue {
    /// The ratio every stored key was computed at.
    epoch: f64,
    map: BTreeMap<SchedKey, QueuedMeta>,
}

impl Default for OrcaQueue {
    fn default() -> Self {
        OrcaQueue {
            epoch: 1.0,
            map: BTreeMap::new(),
        }
    }
}

/// Predicted remaining output tokens at `ratio` — the exact [`oracle`]
/// formula, shared so keys and the reference agree bit-for-bit.
fn orca_predict(ratio: f64, m: &QueuedMeta) -> u64 {
    let total = (ratio * m.prompt_tokens.max(1) as f64).max(1.0) as u64;
    total.saturating_sub(m.generated).max(1)
}

impl OrcaQueue {
    fn key_at(&self, m: &QueuedMeta) -> SchedKey {
        SchedKey {
            class: 0,
            primary: orca_predict(self.epoch, m),
            enqueued: m.enqueued,
            id: m.id,
        }
    }

    /// Re-keys the index if the learned ratio moved since the last build.
    fn sync(&mut self, ratio: f64) {
        if ratio.to_bits() == self.epoch.to_bits() {
            return;
        }
        self.epoch = ratio;
        let old = std::mem::take(&mut self.map);
        for (_, m) in old {
            self.map.insert(self.key_at(&m), m);
        }
    }
}

impl PolicyQueue for OrcaQueue {
    fn insert(&mut self, m: QueuedMeta, ctx: &QueueCtx) {
        self.sync(ctx.ratio);
        self.map.insert(self.key_at(&m), m);
    }

    fn remove(&mut self, m: &QueuedMeta) -> bool {
        // Stored keys are at `epoch`, whatever the live ratio is by now.
        self.map.remove(&self.key_at(m)).is_some()
    }

    fn advance(&mut self, ctx: &QueueCtx) {
        self.sync(ctx.ratio);
    }

    fn peek_key(&self) -> Option<SchedKey> {
        self.map.first_key_value().map(|(k, _)| *k)
    }

    fn pop_min(&mut self) -> Option<QueuedMeta> {
        self.map.pop_first().map(|(_, m)| m)
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// Where the winning entry of a `pop_next` round lives.
enum PopSource {
    Readmit,
    Fresh(u32),
}

/// The generic incremental scheduler: per-tenant queues for cap-gated fresh
/// arrivals, one shared queue for re-admitted (cap-exempt) work, and a
/// parked set for crash-retry backoffs. `pop_next` takes the key-minimum
/// over the front of each queue whose tenant has cap headroom — O(tenants ·
/// policy-op), never O(backlog) — which reproduces the oracle's
/// sort-the-eligible-set order exactly:
///
/// * within a queue, entries pop in key order (each policy's invariant);
/// * across queues, the global front minimum is the sorted head;
/// * tenants at their cap only ever *lose* headroom during an admission
///   round (admissions fill caps; completions happen between rounds), so
///   skipping their queues at pop time equals the oracle's filter-then-sort
///   with its mid-round re-check.
///
/// Parked entries (backoff in the future) are promoted into the re-admit
/// queue lazily at the head of every `pop_next`; they were all admitted
/// once, so they bypass cap gating exactly like the oracle's
/// `admitted_once` test.
struct TenantIndex<Q: PolicyQueue> {
    name: &'static str,
    template: Q,
    fresh: BTreeMap<u32, Q>,
    readmit: Q,
    /// Crash-retry backoffs: `(eligible_after, id)` → meta.
    parked: BTreeMap<(SimTime, u64), QueuedMeta>,
    /// Context-token multisets for O(tenants · log) `min_context`.
    fresh_ctx: BTreeMap<u32, BTreeMap<u64, u32>>,
    /// Context multiset over re-admit + parked (cap-exempt work).
    admitted_ctx: BTreeMap<u64, u32>,
    /// Orca EWMA of output/prompt across completions (warm-start 1.0).
    ratio: f64,
    alpha: f64,
    len: usize,
}

fn ctx_add(set: &mut BTreeMap<u64, u32>, tokens: u64) {
    *set.entry(tokens).or_insert(0) += 1;
}

fn ctx_sub(set: &mut BTreeMap<u64, u32>, tokens: u64) {
    match set.get_mut(&tokens) {
        Some(n) if *n > 1 => *n -= 1,
        Some(_) => {
            set.remove(&tokens);
        }
        None => unreachable!("context multiset out of sync"),
    }
}

impl<Q: PolicyQueue> TenantIndex<Q> {
    fn new(name: &'static str, template: Q) -> Self {
        TenantIndex {
            name,
            readmit: template.clone(),
            template,
            fresh: BTreeMap::new(),
            parked: BTreeMap::new(),
            fresh_ctx: BTreeMap::new(),
            admitted_ctx: BTreeMap::new(),
            ratio: 1.0,
            alpha: 0.1,
            len: 0,
        }
    }

    fn ctx(&self, now: SimTime) -> QueueCtx {
        QueueCtx {
            now,
            ratio: self.ratio,
        }
    }
}

impl<Q: PolicyQueue> Scheduler for TenantIndex<Q> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn on_enqueue(&mut self, m: QueuedMeta, now: SimTime) {
        let ctx = self.ctx(now);
        ctx_add(
            self.fresh_ctx.entry(m.tenant).or_default(),
            m.context_tokens(),
        );
        self.fresh
            .entry(m.tenant)
            .or_insert_with(|| self.template.clone())
            .insert(m, &ctx);
        self.len += 1;
    }

    fn on_requeue(&mut self, m: QueuedMeta, eligible_after: SimTime, now: SimTime) {
        let ctx = self.ctx(now);
        ctx_add(&mut self.admitted_ctx, m.context_tokens());
        if eligible_after > now {
            self.parked.insert((eligible_after, m.id), m);
        } else {
            self.readmit.insert(m, &ctx);
        }
        self.len += 1;
    }

    fn on_remove(&mut self, m: &QueuedMeta, admitted_once: bool, eligible_after: SimTime) -> bool {
        let removed = if admitted_once {
            self.parked.remove(&(eligible_after, m.id)).is_some() || self.readmit.remove(m)
        } else {
            self.fresh.get_mut(&m.tenant).is_some_and(|q| q.remove(m))
        };
        if removed {
            let set = if admitted_once {
                &mut self.admitted_ctx
            } else {
                self.fresh_ctx.entry(m.tenant).or_default()
            };
            ctx_sub(set, m.context_tokens());
            self.len -= 1;
        }
        removed
    }

    fn pop_next(&mut self, now: SimTime, caps: &AdmissionController) -> Option<QueuedMeta> {
        let ctx = self.ctx(now);
        // Expired crash backoffs rejoin the re-admit queue first, exactly
        // like the oracle's `eligible_after <= now` round-start filter.
        while let Some((&(due, _), _)) = self.parked.first_key_value() {
            if due > now {
                break;
            }
            let (_, m) = self.parked.pop_first().expect("checked non-empty");
            self.readmit.insert(m, &ctx);
        }

        self.readmit.advance(&ctx);
        let mut best: Option<(SchedKey, PopSource)> =
            self.readmit.peek_key().map(|k| (k, PopSource::Readmit));
        for (&tenant, q) in self.fresh.iter_mut() {
            if q.len() == 0 || !caps.eligible(tenant) {
                continue;
            }
            q.advance(&ctx);
            let Some(key) = q.peek_key() else { continue };
            if best.as_ref().is_none_or(|(b, _)| key < *b) {
                best = Some((key, PopSource::Fresh(tenant)));
            }
        }
        let (_, src) = best?;
        let (m, set) = match src {
            PopSource::Readmit => (
                self.readmit.pop_min().expect("peeked non-empty"),
                &mut self.admitted_ctx,
            ),
            PopSource::Fresh(tenant) => (
                self.fresh
                    .get_mut(&tenant)
                    .expect("peeked tenant queue")
                    .pop_min()
                    .expect("peeked non-empty"),
                self.fresh_ctx.entry(tenant).or_default(),
            ),
        };
        ctx_sub(set, m.context_tokens());
        self.len -= 1;
        Some(m)
    }

    fn next_parked(&self) -> Option<SimTime> {
        self.parked.first_key_value().map(|((due, _), _)| *due)
    }

    fn min_context(&self, caps: &AdmissionController) -> Option<u64> {
        let mut min = self.admitted_ctx.first_key_value().map(|(&t, _)| t);
        for (&tenant, set) in &self.fresh_ctx {
            if set.is_empty() || !caps.eligible(tenant) {
                continue;
            }
            let t = *set.first_key_value().expect("checked non-empty").0;
            min = Some(min.map_or(t, |m| m.min(t)));
        }
        min
    }

    fn observe_completion(&mut self, prompt: u64, output: u64) {
        let observed = output as f64 / prompt.max(1) as f64;
        self.ratio = (1.0 - self.alpha) * self.ratio + self.alpha * observed;
    }

    fn len(&self) -> usize {
        self.len
    }
}

/// The sort-based reference policies the incremental indices must match
/// order-for-order, ties included.
///
/// These are the original `prioritize(&mut [QueuedMeta])` implementations;
/// the serving path no longer calls them, but they stay as the executable
/// specification: the differential tests in this module drain a
/// [`TenantIndex`] against the corresponding oracle sort and require
/// identical sequences.
pub mod oracle {
    use super::QueuedMeta;
    use aqua_sim::time::{SimDuration, SimTime};

    /// A sort-based reference ordering (the pre-PR 9 `Scheduler` trait).
    pub trait SortScheduler {
        /// Policy name as it appears in tables and trace events.
        fn name(&self) -> &'static str;

        /// Reorders `queue` so the next request to admit is first.
        fn prioritize(&mut self, queue: &mut [QueuedMeta], now: SimTime);

        /// Feedback hook mirroring [`super::Scheduler::observe_completion`].
        fn observe_completion(&mut self, _prompt: u64, _output: u64) {}
    }

    /// First-come first-served reference: `(enqueued, id)`.
    #[derive(Debug, Default)]
    pub struct Fcfs;

    impl SortScheduler for Fcfs {
        fn name(&self) -> &'static str {
            "fcfs"
        }

        fn prioritize(&mut self, queue: &mut [QueuedMeta], _now: SimTime) {
            queue.sort_by_key(|m| (m.enqueued, m.id));
        }
    }

    /// Pure shortest-job-first reference: `(remaining, enqueued, id)`.
    #[derive(Debug, Default)]
    pub struct Sjf;

    impl SortScheduler for Sjf {
        fn name(&self) -> &'static str {
            "sjf"
        }

        fn prioritize(&mut self, queue: &mut [QueuedMeta], _now: SimTime) {
            queue.sort_by_key(|m| {
                (
                    m.output_tokens.saturating_sub(m.generated),
                    m.enqueued,
                    m.id,
                )
            });
        }
    }

    /// Bucketed-SJF reference: `(remaining / bucket, enqueued, id)`.
    #[derive(Debug)]
    pub struct SjfBucket {
        /// Bucket width in tokens.
        pub bucket: u64,
    }

    impl Default for SjfBucket {
        fn default() -> Self {
            SjfBucket { bucket: 64 }
        }
    }

    impl SortScheduler for SjfBucket {
        fn name(&self) -> &'static str {
            "sjf+bucket"
        }

        fn prioritize(&mut self, queue: &mut [QueuedMeta], _now: SimTime) {
            let bucket = self.bucket.max(1);
            queue.sort_by_key(|m| {
                (
                    m.output_tokens.saturating_sub(m.generated) / bucket,
                    m.enqueued,
                    m.id,
                )
            });
        }
    }

    /// Aging reference: waited ≥ threshold → `(0, 0, enqueued, id)`, else
    /// `(1, remaining, enqueued, id)`.
    #[derive(Debug)]
    pub struct SjfAging {
        /// Waiting time after which a request is promoted.
        pub promote_after: SimDuration,
    }

    impl Default for SjfAging {
        fn default() -> Self {
            SjfAging {
                promote_after: SimDuration::from_secs(60),
            }
        }
    }

    impl SortScheduler for SjfAging {
        fn name(&self) -> &'static str {
            "sjf+aging"
        }

        fn prioritize(&mut self, queue: &mut [QueuedMeta], now: SimTime) {
            let promote = self.promote_after;
            queue.sort_by_key(|m| {
                let aged = now.duration_since(m.enqueued) >= promote;
                if aged {
                    // Aged requests first, FCFS among themselves.
                    (0u8, 0u64, m.enqueued, m.id)
                } else {
                    (
                        1u8,
                        m.output_tokens.saturating_sub(m.generated),
                        m.enqueued,
                        m.id,
                    )
                }
            });
        }
    }

    /// Orca reference: `(predict(m), enqueued, id)` with an EWMA'd
    /// output/prompt ratio.
    #[derive(Debug)]
    pub struct OrcaPredict {
        ratio: f64,
        alpha: f64,
    }

    impl Default for OrcaPredict {
        fn default() -> Self {
            OrcaPredict {
                ratio: 1.0,
                alpha: 0.1,
            }
        }
    }

    impl OrcaPredict {
        /// Predicted remaining output tokens for one queue entry.
        pub fn predict(&self, m: &QueuedMeta) -> u64 {
            super::orca_predict(self.ratio, m)
        }

        /// The current learned output/prompt ratio.
        pub fn learned_ratio(&self) -> f64 {
            self.ratio
        }
    }

    impl SortScheduler for OrcaPredict {
        fn name(&self) -> &'static str {
            "orca"
        }

        fn prioritize(&mut self, queue: &mut [QueuedMeta], _now: SimTime) {
            // Keys are cached per element and the sort permutes in place —
            // the previous version cloned the queue twice per call (a
            // predictions vec plus a reordered copy).
            let ratio = self.ratio;
            queue.sort_by_cached_key(|m| (super::orca_predict(ratio, m), m.enqueued, m.id));
        }

        fn observe_completion(&mut self, prompt: u64, output: u64) {
            let observed = output as f64 / prompt.max(1) as f64;
            self.ratio = (1.0 - self.alpha) * self.ratio + self.alpha * observed;
        }
    }
}

/// The policy zoo as a value type, for CLI flags and experiment fan-out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// First-come first-served (ring buffer).
    Fcfs,
    /// Pure shortest-job-first (ordered map on remaining output).
    Sjf,
    /// Bucketed SJF with the default 64-token buckets (per-bucket rings).
    SjfBucket,
    /// SJF + starvation aging with the default 60 s promotion (deadline
    /// wheel).
    SjfAging,
    /// Orca-style learned remaining-length prediction with the default
    /// EWMA (epoch-rekeyed map).
    Orca,
}

impl PolicyKind {
    /// Every policy, in table order.
    pub const ALL: [PolicyKind; 5] = [
        PolicyKind::Fcfs,
        PolicyKind::Sjf,
        PolicyKind::SjfBucket,
        PolicyKind::SjfAging,
        PolicyKind::Orca,
    ];

    /// Instantiates the policy's incremental index with its default
    /// parameters.
    pub fn build(self) -> Box<dyn Scheduler> {
        match self {
            PolicyKind::Fcfs => Box::new(TenantIndex::new("fcfs", FcfsQueue::default())),
            PolicyKind::Sjf => Box::new(TenantIndex::new("sjf", SjfQueue::default())),
            PolicyKind::SjfBucket => {
                Box::new(TenantIndex::new("sjf+bucket", SjfBucketQueue::default()))
            }
            PolicyKind::SjfAging => {
                Box::new(TenantIndex::new("sjf+aging", SjfAgingQueue::default()))
            }
            PolicyKind::Orca => Box::new(TenantIndex::new("orca", OrcaQueue::default())),
        }
    }

    /// Instantiates the sort-based [`oracle`] reference for this policy.
    pub fn build_oracle(self) -> Box<dyn oracle::SortScheduler> {
        match self {
            PolicyKind::Fcfs => Box::new(oracle::Fcfs),
            PolicyKind::Sjf => Box::new(oracle::Sjf),
            PolicyKind::SjfBucket => Box::new(oracle::SjfBucket::default()),
            PolicyKind::SjfAging => Box::new(oracle::SjfAging::default()),
            PolicyKind::Orca => Box::new(oracle::OrcaPredict::default()),
        }
    }

    /// The policy's table/CLI name.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Fcfs => "fcfs",
            PolicyKind::Sjf => "sjf",
            PolicyKind::SjfBucket => "sjf+bucket",
            PolicyKind::SjfAging => "sjf+aging",
            PolicyKind::Orca => "orca",
        }
    }

    /// Parses a CLI name back into a policy.
    pub fn parse(s: &str) -> Option<PolicyKind> {
        PolicyKind::ALL.into_iter().find(|p| p.name() == s)
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(id: u64, enqueued_s: u64, output: u64) -> QueuedMeta {
        QueuedMeta {
            id,
            tenant: 0,
            enqueued: SimTime::from_secs(enqueued_s),
            prompt_tokens: 100,
            output_tokens: output,
            generated: 0,
        }
    }

    /// Feeds `queue` into a fresh index and drains it with an effectively
    /// uncapped controller.
    fn drain_order(policy: PolicyKind, queue: &[QueuedMeta], now: SimTime) -> Vec<u64> {
        let caps = AdmissionController::new(usize::MAX >> 1);
        let mut s = policy.build();
        for m in queue {
            s.on_enqueue(m.clone(), m.enqueued.min(now));
        }
        let mut order = Vec::new();
        while let Some(m) = s.pop_next(now, &caps) {
            order.push(m.id);
        }
        assert!(s.is_empty());
        order
    }

    #[test]
    fn fcfs_orders_by_arrival() {
        let q = vec![meta(2, 5, 10), meta(1, 1, 500), meta(3, 3, 50)];
        assert_eq!(
            drain_order(PolicyKind::Fcfs, &q, SimTime::from_secs(5)),
            vec![1, 3, 2]
        );
    }

    #[test]
    fn sjf_orders_by_remaining_output() {
        let q = vec![meta(1, 1, 500), meta(2, 5, 10), meta(3, 3, 50)];
        assert_eq!(
            drain_order(PolicyKind::Sjf, &q, SimTime::from_secs(5)),
            vec![2, 3, 1]
        );
        // A preempted request competes with its remaining length.
        let mut preempted = meta(4, 0, 500);
        preempted.generated = 495;
        let q = vec![meta(1, 1, 500), preempted];
        assert_eq!(
            drain_order(PolicyKind::Sjf, &q, SimTime::from_secs(1)),
            vec![4, 1]
        );
    }

    #[test]
    fn bucketing_keeps_near_equal_jobs_fcfs() {
        // 40 and 50 share the 64-token bucket: FCFS between them; 500 last.
        let q = vec![meta(1, 1, 500), meta(2, 5, 40), meta(3, 3, 50)];
        assert_eq!(
            drain_order(PolicyKind::SjfBucket, &q, SimTime::from_secs(5)),
            vec![3, 2, 1]
        );
    }

    #[test]
    fn aging_promotes_starved_requests() {
        // At t=75 the long job has waited 75 s > 60 s: it jumps the queue.
        let q = vec![meta(1, 0, 500), meta(2, 70, 10)];
        assert_eq!(
            drain_order(PolicyKind::SjfAging, &q, SimTime::from_secs(75)),
            vec![1, 2]
        );
        // At t=30 nothing is aged: plain SJF.
        let q = vec![meta(1, 0, 500), meta(2, 7, 10)];
        assert_eq!(
            drain_order(PolicyKind::SjfAging, &q, SimTime::from_secs(30)),
            vec![2, 1]
        );
    }

    #[test]
    fn aging_promotes_lazily_between_pops() {
        let caps = AdmissionController::new(64);
        let mut s = PolicyKind::SjfAging.build();
        s.on_enqueue(meta(1, 0, 500), SimTime::ZERO);
        s.on_enqueue(meta(2, 1, 10), SimTime::from_secs(1));
        // Before the threshold the short job wins; after it, the starved
        // long job has been promoted past it.
        assert_eq!(s.pop_next(SimTime::from_secs(30), &caps).unwrap().id, 2);
        s.on_enqueue(meta(3, 31, 10), SimTime::from_secs(31));
        assert_eq!(s.pop_next(SimTime::from_secs(61), &caps).unwrap().id, 1);
        assert_eq!(s.pop_next(SimTime::from_secs(61), &caps).unwrap().id, 3);
    }

    #[test]
    fn orca_learns_from_completions() {
        let mut orca = oracle::OrcaPredict::default();
        // After observing many tiny outputs the ratio collapses and the
        // prediction shrinks toward the floor.
        for _ in 0..100 {
            oracle::SortScheduler::observe_completion(&mut orca, 1000, 1);
        }
        assert!(orca.learned_ratio() < 0.01);
        let m = meta(9, 0, 1);
        assert_eq!(orca.predict(&m), 1);

        // Warm start predicts output == prompt, so ordering follows
        // prompts; the incremental index re-keys when the ratio drifts.
        let caps = AdmissionController::new(64);
        let mut s = PolicyKind::Orca.build();
        let mut short_prompt = meta(1, 1, 999);
        short_prompt.prompt_tokens = 10;
        let mut long_prompt = meta(2, 0, 1);
        long_prompt.prompt_tokens = 1000;
        s.on_enqueue(long_prompt.clone(), SimTime::from_secs(1));
        s.on_enqueue(short_prompt.clone(), SimTime::from_secs(1));
        assert_eq!(
            s.pop_next(SimTime::from_secs(1), &caps).unwrap().id,
            1,
            "warm start orders by prompt length"
        );
        // Drift the ratio far down: the long prompt's prediction collapses
        // and it still pops (epoch re-key keeps the index consistent).
        s.on_enqueue(short_prompt, SimTime::from_secs(1));
        for _ in 0..100 {
            s.observe_completion(1000, 1);
        }
        assert_eq!(s.pop_next(SimTime::from_secs(2), &caps).unwrap().id, 2);
        assert_eq!(s.pop_next(SimTime::from_secs(2), &caps).unwrap().id, 1);
    }

    #[test]
    fn zoo_roundtrips_names() {
        for p in PolicyKind::ALL {
            assert_eq!(PolicyKind::parse(p.name()), Some(p));
            assert_eq!(p.build().name(), p.name());
            assert_eq!(p.build_oracle().name(), p.name());
            assert_eq!(p.to_string(), p.name());
        }
        assert_eq!(PolicyKind::parse("lifo"), None);
    }

    #[test]
    fn orderings_are_deterministic_on_ties() {
        for p in PolicyKind::ALL {
            let a = vec![meta(3, 1, 10), meta(1, 1, 10), meta(2, 1, 10)];
            let b = vec![meta(2, 1, 10), meta(3, 1, 10), meta(1, 1, 10)];
            let now = SimTime::from_secs(2);
            let oa = drain_order(p, &a, now);
            let ob = drain_order(p, &b, now);
            assert_eq!(oa, ob, "{p}: ties must break identically");
            assert_eq!(oa, vec![1, 2, 3], "{p}: id is the final tie-breaker");
        }
    }

    #[test]
    fn caps_gate_fresh_but_not_requeued_work() {
        let mut caps = AdmissionController::new(1);
        caps.on_admit(0); // tenant 0 at cap
        let mut s = PolicyKind::Fcfs.build();
        s.on_enqueue(meta(1, 0, 10), SimTime::ZERO); // tenant 0, gated
        let mut re = meta(2, 0, 10);
        re.generated = 3;
        s.on_requeue(re, SimTime::ZERO, SimTime::from_secs(1)); // cap-exempt
        let now = SimTime::from_secs(1);
        assert_eq!(s.pop_next(now, &caps).unwrap().id, 2);
        assert!(s.pop_next(now, &caps).is_none(), "tenant 0 is capped");
        assert_eq!(s.min_context(&caps), None, "no admissible work");
        caps.on_complete(0);
        assert_eq!(s.min_context(&caps), Some(100));
        assert_eq!(s.pop_next(now, &caps).unwrap().id, 1);
    }

    #[test]
    fn parked_entries_wait_out_their_backoff() {
        let caps = AdmissionController::new(8);
        let mut s = PolicyKind::Sjf.build();
        let mut m = meta(7, 0, 50);
        m.generated = 5;
        s.on_requeue(m, SimTime::from_secs(10), SimTime::from_secs(2));
        assert_eq!(s.len(), 1);
        assert!(s.pop_next(SimTime::from_secs(9), &caps).is_none());
        assert_eq!(s.next_parked(), Some(SimTime::from_secs(10)));
        assert_eq!(
            s.min_context(&caps),
            Some(105),
            "parked work still counts as work"
        );
        assert_eq!(s.pop_next(SimTime::from_secs(10), &caps).unwrap().id, 7);
        assert_eq!(s.next_parked(), None);
    }

    #[test]
    fn on_remove_finds_entries_in_every_region() {
        let caps = AdmissionController::new(8);
        let mut s = PolicyKind::SjfAging.build();
        s.on_enqueue(meta(1, 0, 10), SimTime::ZERO);
        s.on_requeue(meta(2, 0, 10), SimTime::ZERO, SimTime::ZERO);
        s.on_requeue(meta(3, 0, 10), SimTime::from_secs(9), SimTime::ZERO);
        assert_eq!(s.len(), 3);
        assert!(s.on_remove(&meta(1, 0, 10), false, SimTime::ZERO));
        assert!(s.on_remove(&meta(2, 0, 10), true, SimTime::ZERO));
        assert!(s.on_remove(&meta(3, 0, 10), true, SimTime::from_secs(9)));
        assert!(!s.on_remove(&meta(3, 0, 10), true, SimTime::from_secs(9)));
        assert_eq!(s.len(), 0);
        assert!(s.pop_next(SimTime::from_secs(20), &caps).is_none());
    }

    /// The differential harness: applies one scripted op sequence to the
    /// incremental index and replays the drain against the sort-based
    /// oracle (re-filtering and re-sorting the live set before *every*
    /// pop, caps and backoffs included), requiring identical id sequences.
    fn check_against_oracle(policy: PolicyKind, ops: &[(u64, u64, u64, u32, u64)], cap: usize) {
        #[derive(Clone)]
        struct Live {
            m: QueuedMeta,
            admitted_once: bool,
            eligible_after: SimTime,
        }

        let mut index = policy.build();
        let mut oracle = policy.build_oracle();
        let mut live: Vec<Live> = Vec::new();
        let mut now = SimTime::ZERO;
        let mut next_id = 0u64;

        for &(kind, a, b, tenant, dt) in ops {
            now += SimDuration::from_millis(dt);
            match kind % 4 {
                // Fresh arrival.
                0 => {
                    let m = QueuedMeta {
                        id: next_id,
                        tenant,
                        enqueued: now,
                        prompt_tokens: a.max(1),
                        output_tokens: b,
                        generated: 0,
                    };
                    next_id += 1;
                    index.on_enqueue(m.clone(), now);
                    live.push(Live {
                        m,
                        admitted_once: false,
                        eligible_after: SimTime::ZERO,
                    });
                }
                // Crash/preemption re-queue of an admitted request, with a
                // backoff of `b % 30` seconds (possibly zero).
                1 => {
                    let m = QueuedMeta {
                        id: next_id,
                        tenant,
                        enqueued: now,
                        prompt_tokens: a.max(1),
                        output_tokens: b.max(2),
                        generated: b.max(2) / 2,
                    };
                    next_id += 1;
                    let eligible_after = now + SimDuration::from_secs(b % 30);
                    index.on_requeue(m.clone(), eligible_after, now);
                    live.push(Live {
                        m,
                        admitted_once: true,
                        eligible_after,
                    });
                }
                // Completion feedback (moves Orca's ratio → epoch re-key).
                2 => {
                    index.observe_completion(a.max(1), b);
                    oracle.observe_completion(a.max(1), b);
                }
                // Deadline-style removal of a random live entry.
                _ => {
                    if !live.is_empty() {
                        let e = live.remove((a as usize) % live.len());
                        assert!(
                            index.on_remove(&e.m, e.admitted_once, e.eligible_after),
                            "{policy}: indexed entry must be removable"
                        );
                    }
                }
            }
        }

        // Drain with capped tenants: both sides observe the same
        // mid-drain cap fills.
        now += SimDuration::from_secs(3);
        let mut caps = AdmissionController::new(cap);
        loop {
            // Reference: filter the live set exactly like the engine's old
            // round-start scan, sort, take the head.
            let mut eligible: Vec<QueuedMeta> = live
                .iter()
                .filter(|e| {
                    (e.admitted_once || caps.eligible(e.m.tenant)) && e.eligible_after <= now
                })
                .map(|e| e.m.clone())
                .collect();
            oracle.prioritize(&mut eligible, now);
            let expect = eligible.first().map(|m| m.id);

            let expect_ctx = live
                .iter()
                .filter(|e| e.admitted_once || caps.eligible(e.m.tenant))
                .map(|e| e.m.context_tokens())
                .min();
            assert_eq!(
                index.min_context(&caps),
                expect_ctx,
                "{policy}: min_context"
            );

            let got = index.pop_next(now, &caps);
            assert_eq!(
                got.as_ref().map(|m| m.id),
                expect,
                "{policy}: admission order diverged from the oracle"
            );
            let Some(m) = got else { break };

            let at = live.iter().position(|e| e.m.id == m.id).unwrap();
            let e = live.remove(at);
            if !e.admitted_once {
                caps.on_admit(e.m.tenant);
            }

            // With every eligible entry drained, only parked (future
            // backoff) work remains: next_parked must agree with a scan.
            let expect_parked = live
                .iter()
                .filter(|e| e.eligible_after > now)
                .map(|e| e.eligible_after)
                .min();
            if live.iter().all(|e| e.eligible_after > now) {
                assert_eq!(index.next_parked(), expect_parked, "{policy}: next_parked");
            }

            // Occasionally advance time mid-drain so aging promotions land
            // between pops too.
            if m.id % 5 == 0 {
                now += SimDuration::from_secs(20);
            }
        }
        assert_eq!(
            index.len(),
            live.len(),
            "{policy}: leftover (capped/parked) counts must agree"
        );
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(8))]

        // The tentpole invariant: under random arrivals, completions,
        // crash re-queues, removals and aging promotions, every policy's
        // incremental index admits in exactly the sort-based oracle's
        // order — ties, caps and backoffs included.
        #[test]
        fn incremental_index_matches_sort_oracle(
            ops in proptest::collection::vec(
                (0u64..8, 1u64..400, 1u64..200, 0u32..3, 0u64..70_000),
                1..48,
            ),
            policy_idx in 0usize..5,
            cap in 1usize..4,
        ) {
            check_against_oracle(PolicyKind::ALL[policy_idx], &ops, cap);
        }
    }

    #[test]
    fn differential_regression_cases() {
        // Deterministic spot checks (independent of the proptest seeds):
        // interleaved tenants, zero-backoff requeues, post-drift inserts.
        let ops: Vec<(u64, u64, u64, u32, u64)> = vec![
            (0, 100, 50, 0, 10),
            (0, 10, 120, 1, 0),
            (1, 64, 40, 0, 5),
            (2, 100, 7, 0, 1),
            (0, 80, 64, 2, 61_000),
            (1, 32, 10, 1, 0),
            (3, 1, 0, 0, 0),
            (0, 500, 100, 0, 2),
        ];
        for p in PolicyKind::ALL {
            for cap in [1, 2, 8] {
                check_against_oracle(p, &ops, cap);
            }
        }
    }
}
