//! The decode-scheduler zoo.
//!
//! Each policy answers one question: given the queue of admissible requests,
//! in what order should the gateway admit them into the continuous batch?
//! The trait is deliberately tiny — policies see queue metadata only, never
//! engine internals — so a policy is a pure, deterministic ordering and two
//! runs with the same inputs always produce the same admission sequence.

use aqua_sim::time::{SimDuration, SimTime};

/// Queue metadata a scheduler is allowed to see for one waiting request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueuedMeta {
    /// Request id.
    pub id: u64,
    /// Tenant the request belongs to.
    pub tenant: u32,
    /// When the request entered the gateway queue.
    pub enqueued: SimTime,
    /// Prompt length in tokens.
    pub prompt_tokens: u64,
    /// Declared output length in tokens (the simulator's oracle; real
    /// servers must predict this — see [`OrcaPredict`]).
    pub output_tokens: u64,
    /// Tokens already generated before a preemption returned the request to
    /// the queue (0 for first-time admission).
    pub generated: u64,
}

/// A decode-admission ordering policy.
///
/// `prioritize` reorders the queue in place; the gateway admits from the
/// front with a head-of-line stop at the first request whose KV does not
/// fit. Implementations must be deterministic: every ordering ends with
/// `(enqueued, id)` tie-breakers so equal-priority requests keep a stable
/// total order.
pub trait Scheduler {
    /// Policy name as it appears in tables and trace events.
    fn name(&self) -> &'static str;

    /// Reorders `queue` so the next request to admit is first.
    fn prioritize(&mut self, queue: &mut [QueuedMeta], now: SimTime);

    /// Feedback hook: a request with `prompt` prompt tokens finished after
    /// generating `output` tokens. Predictive policies learn from this.
    fn observe_completion(&mut self, _prompt: u64, _output: u64) {}
}

/// First-come first-served: admission order is arrival order (this is what
/// vLLM's waiting queue does).
#[derive(Debug, Default)]
pub struct Fcfs;

impl Scheduler for Fcfs {
    fn name(&self) -> &'static str {
        "fcfs"
    }

    fn prioritize(&mut self, queue: &mut [QueuedMeta], _now: SimTime) {
        queue.sort_by_key(|m| (m.enqueued, m.id));
    }
}

/// Pure shortest-job-first on declared output length. Minimizes mean
/// latency but lets a stream of short jobs starve a long one indefinitely.
#[derive(Debug, Default)]
pub struct Sjf;

impl Scheduler for Sjf {
    fn name(&self) -> &'static str {
        "sjf"
    }

    fn prioritize(&mut self, queue: &mut [QueuedMeta], _now: SimTime) {
        queue.sort_by_key(|m| {
            (
                m.output_tokens.saturating_sub(m.generated),
                m.enqueued,
                m.id,
            )
        });
    }
}

/// SJF with length bucketing: jobs whose remaining lengths fall in the same
/// bucket are served FCFS, so near-equal jobs do not leapfrog each other and
/// the queue keeps most of SJF's tail-latency win without its churn.
#[derive(Debug)]
pub struct SjfBucket {
    /// Bucket width in tokens.
    pub bucket: u64,
}

impl Default for SjfBucket {
    fn default() -> Self {
        SjfBucket { bucket: 64 }
    }
}

impl Scheduler for SjfBucket {
    fn name(&self) -> &'static str {
        "sjf+bucket"
    }

    fn prioritize(&mut self, queue: &mut [QueuedMeta], _now: SimTime) {
        let bucket = self.bucket.max(1);
        queue.sort_by_key(|m| {
            (
                m.output_tokens.saturating_sub(m.generated) / bucket,
                m.enqueued,
                m.id,
            )
        });
    }
}

/// SJF with starvation aging: a request waiting longer than the promotion
/// threshold jumps ahead of every un-aged request (aged requests among
/// themselves are FCFS), bounding worst-case queueing delay.
#[derive(Debug)]
pub struct SjfAging {
    /// Waiting time after which a request is promoted.
    pub promote_after: SimDuration,
}

impl Default for SjfAging {
    fn default() -> Self {
        SjfAging {
            promote_after: SimDuration::from_secs(60),
        }
    }
}

impl Scheduler for SjfAging {
    fn name(&self) -> &'static str {
        "sjf+aging"
    }

    fn prioritize(&mut self, queue: &mut [QueuedMeta], now: SimTime) {
        let promote = self.promote_after;
        queue.sort_by_key(|m| {
            let aged = now.duration_since(m.enqueued) >= promote;
            if aged {
                // Aged requests first, FCFS among themselves.
                (0u8, 0u64, m.enqueued, m.id)
            } else {
                (
                    1u8,
                    m.output_tokens.saturating_sub(m.generated),
                    m.enqueued,
                    m.id,
                )
            }
        });
    }
}

/// Orca-style remaining-length prediction: instead of trusting the declared
/// output length (which a real server does not know), predict it from an
/// exponentially weighted average of observed output/prompt ratios and
/// order by predicted remaining work.
#[derive(Debug)]
pub struct OrcaPredict {
    /// EWMA of output/prompt across completed requests (warm-start 1.0).
    ratio: f64,
    /// EWMA smoothing factor.
    alpha: f64,
}

impl Default for OrcaPredict {
    fn default() -> Self {
        OrcaPredict {
            ratio: 1.0,
            alpha: 0.1,
        }
    }
}

impl OrcaPredict {
    /// Predicted remaining output tokens for one queue entry.
    fn predict(&self, m: &QueuedMeta) -> u64 {
        let total = (self.ratio * m.prompt_tokens.max(1) as f64).max(1.0) as u64;
        total.saturating_sub(m.generated).max(1)
    }

    /// The current learned output/prompt ratio.
    pub fn learned_ratio(&self) -> f64 {
        self.ratio
    }
}

impl Scheduler for OrcaPredict {
    fn name(&self) -> &'static str {
        "orca"
    }

    fn prioritize(&mut self, queue: &mut [QueuedMeta], _now: SimTime) {
        let predictions: Vec<u64> = queue.iter().map(|m| self.predict(m)).collect();
        let mut order: Vec<usize> = (0..queue.len()).collect();
        order.sort_by_key(|&i| (predictions[i], queue[i].enqueued, queue[i].id));
        let reordered: Vec<QueuedMeta> = order.iter().map(|&i| queue[i].clone()).collect();
        queue.clone_from_slice(&reordered);
    }

    fn observe_completion(&mut self, prompt: u64, output: u64) {
        let observed = output as f64 / prompt.max(1) as f64;
        self.ratio = (1.0 - self.alpha) * self.ratio + self.alpha * observed;
    }
}

/// The policy zoo as a value type, for CLI flags and experiment fan-out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// [`Fcfs`].
    Fcfs,
    /// [`Sjf`].
    Sjf,
    /// [`SjfBucket`] with the default 64-token buckets.
    SjfBucket,
    /// [`SjfAging`] with the default 60 s promotion.
    SjfAging,
    /// [`OrcaPredict`] with the default EWMA.
    Orca,
}

impl PolicyKind {
    /// Every policy, in table order.
    pub const ALL: [PolicyKind; 5] = [
        PolicyKind::Fcfs,
        PolicyKind::Sjf,
        PolicyKind::SjfBucket,
        PolicyKind::SjfAging,
        PolicyKind::Orca,
    ];

    /// Instantiates the policy with its default parameters.
    pub fn build(self) -> Box<dyn Scheduler> {
        match self {
            PolicyKind::Fcfs => Box::new(Fcfs),
            PolicyKind::Sjf => Box::new(Sjf),
            PolicyKind::SjfBucket => Box::new(SjfBucket::default()),
            PolicyKind::SjfAging => Box::new(SjfAging::default()),
            PolicyKind::Orca => Box::new(OrcaPredict::default()),
        }
    }

    /// The policy's table/CLI name.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Fcfs => "fcfs",
            PolicyKind::Sjf => "sjf",
            PolicyKind::SjfBucket => "sjf+bucket",
            PolicyKind::SjfAging => "sjf+aging",
            PolicyKind::Orca => "orca",
        }
    }

    /// Parses a CLI name back into a policy.
    pub fn parse(s: &str) -> Option<PolicyKind> {
        PolicyKind::ALL.into_iter().find(|p| p.name() == s)
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(id: u64, enqueued_s: u64, output: u64) -> QueuedMeta {
        QueuedMeta {
            id,
            tenant: 0,
            enqueued: SimTime::from_secs(enqueued_s),
            prompt_tokens: 100,
            output_tokens: output,
            generated: 0,
        }
    }

    fn order_of(s: &mut dyn Scheduler, queue: &mut [QueuedMeta], now: SimTime) -> Vec<u64> {
        s.prioritize(queue, now);
        queue.iter().map(|m| m.id).collect()
    }

    #[test]
    fn fcfs_orders_by_arrival() {
        let mut q = vec![meta(2, 5, 10), meta(1, 1, 500), meta(3, 3, 50)];
        assert_eq!(order_of(&mut Fcfs, &mut q, SimTime::ZERO), vec![1, 3, 2]);
    }

    #[test]
    fn sjf_orders_by_remaining_output() {
        let mut q = vec![meta(1, 1, 500), meta(2, 5, 10), meta(3, 3, 50)];
        assert_eq!(order_of(&mut Sjf, &mut q, SimTime::ZERO), vec![2, 3, 1]);
        // A preempted request competes with its remaining length.
        let mut preempted = meta(4, 0, 500);
        preempted.generated = 495;
        let mut q = vec![meta(1, 1, 500), preempted];
        assert_eq!(order_of(&mut Sjf, &mut q, SimTime::ZERO), vec![4, 1]);
    }

    #[test]
    fn bucketing_keeps_near_equal_jobs_fcfs() {
        // 40 and 50 share the 64-token bucket: FCFS between them; 500 last.
        let mut q = vec![meta(1, 1, 500), meta(2, 5, 40), meta(3, 3, 50)];
        assert_eq!(
            order_of(&mut SjfBucket::default(), &mut q, SimTime::ZERO),
            vec![3, 2, 1]
        );
    }

    #[test]
    fn aging_promotes_starved_requests() {
        let mut q = vec![meta(1, 0, 500), meta(2, 70, 10)];
        // At t=75 the long job has waited 75 s > 60 s: it jumps the queue.
        assert_eq!(
            order_of(&mut SjfAging::default(), &mut q, SimTime::from_secs(75)),
            vec![1, 2]
        );
        // At t=30 nothing is aged: plain SJF.
        let mut q = vec![meta(1, 0, 500), meta(2, 7, 10)];
        assert_eq!(
            order_of(&mut SjfAging::default(), &mut q, SimTime::from_secs(30)),
            vec![2, 1]
        );
    }

    #[test]
    fn orca_learns_from_completions() {
        let mut orca = OrcaPredict::default();
        // Warm start predicts output == prompt, so ordering follows prompts.
        let mut short_prompt = meta(1, 1, 999);
        short_prompt.prompt_tokens = 10;
        let mut long_prompt = meta(2, 0, 1);
        long_prompt.prompt_tokens = 1000;
        let mut q = vec![long_prompt.clone(), short_prompt.clone()];
        assert_eq!(
            order_of(&mut orca, &mut q, SimTime::ZERO),
            vec![1, 2],
            "warm start orders by prompt length"
        );
        // After observing many tiny outputs the ratio collapses and the
        // prediction shrinks toward the floor.
        for _ in 0..100 {
            orca.observe_completion(1000, 1);
        }
        assert!(orca.learned_ratio() < 0.01);
        let m = meta(9, 0, 1);
        assert_eq!(orca.predict(&m), 1);
    }

    #[test]
    fn zoo_roundtrips_names() {
        for p in PolicyKind::ALL {
            assert_eq!(PolicyKind::parse(p.name()), Some(p));
            assert_eq!(p.build().name(), p.name());
            assert_eq!(p.to_string(), p.name());
        }
        assert_eq!(PolicyKind::parse("lifo"), None);
    }

    #[test]
    fn orderings_are_deterministic_on_ties() {
        for p in PolicyKind::ALL {
            let mut a = vec![meta(3, 1, 10), meta(1, 1, 10), meta(2, 1, 10)];
            let mut b = vec![meta(2, 1, 10), meta(3, 1, 10), meta(1, 1, 10)];
            let oa = order_of(&mut *p.build(), &mut a, SimTime::from_secs(2));
            let ob = order_of(&mut *p.build(), &mut b, SimTime::from_secs(2));
            assert_eq!(oa, ob, "{p}: ties must break identically");
            assert_eq!(oa, vec![1, 2, 3], "{p}: id is the final tie-breaker");
        }
    }
}
