//! # aqua-gateway — a request-level serving front-end
//!
//! The engines in `aqua-engines` answer "how fast does one scheduler policy
//! execute a fixed batch"; a serving deployment additionally decides *which*
//! request decodes next, and that decision dominates the user-visible SLOs
//! (P99 TTFT, inter-token latency) under load. This crate adds that layer:
//!
//! * [`scheduler`] — a pluggable decode [`scheduler::Scheduler`] trait and a
//!   zoo of five policies: FCFS, pure SJF, SJF + length-bucketing, SJF +
//!   starvation-aging and an Orca-style remaining-length predictor.
//! * [`admission`] — per-tenant outstanding-request caps, so one tenant's
//!   backlog (e.g. batch long-prompt jobs) cannot monopolize the engine,
//!   plus opt-in overload protection: queue-depth watermarks, KV-cost
//!   shedding and a hysteresis brownout that throttles batch tenants.
//! * [`outcome`] — the typed [`outcome::RequestOutcome`] taxonomy
//!   (completed / shed / timed-out / crash-aborted / retried), per-tenant
//!   SLO deadlines and the deterministic bounded-retry budget.
//! * [`engine`] — [`engine::GatewayEngine`], a vLLM-style continuous-batching
//!   engine (paged KV admission, youngest-first preemption, optional
//!   [`aqua_engines::offload::Offloader`] swap path) that records the
//!   delivery time of every output token into
//!   [`aqua_metrics::streaming::TokenStream`]s, making TTFT and ITL
//!   percentiles first-class outputs.
//!
//! The gateway sits on the existing [`aqua_engines::driver::Driver`] event
//! loop, so it composes with crash windows, informers and every offloader —
//! the `serve_schedulers` experiment in `aqua-bench` crosses the policy zoo
//! with AQUA offloading on and off under memory pressure.

pub mod admission;
pub mod arena;
pub mod engine;
pub mod outcome;
pub mod scheduler;

pub mod prelude {
    //! Convenience re-exports.
    pub use crate::admission::{AdmissionController, BrownoutConfig, OverloadPolicy};
    pub use crate::engine::{GatewayConfig, GatewayEngine};
    pub use crate::outcome::{
        DeadlineKind, OutcomeLog, RequestOutcome, RetryPolicy, ShedReason, SloPolicy, TenantSlo,
    };
    pub use crate::scheduler::{PolicyKind, QueuedMeta, Scheduler};
}

pub use prelude::*;
