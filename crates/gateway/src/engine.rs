//! The gateway serving engine.
//!
//! [`GatewayEngine`] is a vLLM-style continuous-batching engine (paged KV
//! admission control, youngest-first preemption with recompute or swap, the
//! same roofline cost model) with two additions the figure engines lack:
//!
//! * Admission order is delegated to a pluggable [`Scheduler`] policy and
//!   gated by per-tenant [`AdmissionController`] caps, instead of vLLM's
//!   fixed FCFS queue.
//! * Every output token's delivery time is recorded into a
//!   [`TokenStream`], so TTFT *and* inter-token latency percentiles are
//!   first-class outputs ([`GatewayEngine::drain_streams`]).
//!
//! It implements [`Engine`], so it runs on the existing
//! [`aqua_engines::driver::Driver`] event loop alongside crash windows and
//! any offload backend.

use crate::admission::{AdmissionController, OverloadPolicy};
use crate::arena::SlotArena;
use crate::outcome::{DeadlineKind, OutcomeLog, RequestOutcome, RetryPolicy, SloPolicy};
use crate::scheduler::{PolicyKind, QueuedMeta, Scheduler};
use aqua_engines::driver::Engine;
use aqua_engines::gauges::GaugeCache;
use aqua_engines::kvcache::{PagedKvCache, DEFAULT_BLOCK_TOKENS};
use aqua_engines::offload::Offloader;
use aqua_engines::request::{InferenceRequest, SeqLifecycle};
use aqua_engines::vllm::PreemptionPolicy;
use aqua_metrics::requests::RequestRecord;
use aqua_metrics::streaming::{StreamLog, TokenStream};
use aqua_models::cost;
use aqua_models::geometry::LlmGeometry;
use aqua_sim::audit::{AuditViolation, SharedAuditor};
use aqua_sim::fault::{FaultKind, FaultPlan};
use aqua_sim::gpu::{GpuId, GpuSpec};
use aqua_sim::link::bytes::gib;
use aqua_sim::time::SimTime;
use aqua_telemetry::{null_tracer, trace, SharedTracer, TraceEvent};
use std::collections::{BTreeMap, BTreeSet};

/// Configuration of a [`GatewayEngine`].
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Maximum sequences batched per iteration.
    pub max_batch: usize,
    /// Bytes reserved for the paged KV pool.
    pub kv_pool_bytes: u64,
    /// Tokens per KV block.
    pub block_tokens: u64,
    /// What happens to sequences preempted under KV pressure.
    pub preemption: PreemptionPolicy,
    /// Per-tenant cap on admitted-but-unfinished requests.
    pub max_outstanding_per_tenant: usize,
    /// Overload protection (shedding, brownout). Inert by default: the
    /// gateway never drops a request unless a deployment opts in.
    pub overload: OverloadPolicy,
    /// Per-tenant latency deadlines. No deadlines by default.
    pub slo: SloPolicy,
    /// Retry budget for crash-aborted requests.
    pub retry: RetryPolicy,
    /// Audit self-test knob: when set, the gateway "forgets" to journal
    /// restore events after a crash, which the `token_without_restore`
    /// audit invariant must catch. Never enable outside fuzzing.
    pub plant_skip_restore: bool,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            max_batch: 256,
            kv_pool_bytes: gib(40),
            block_tokens: DEFAULT_BLOCK_TOKENS,
            preemption: PreemptionPolicy::Recompute,
            max_outstanding_per_tenant: 16,
            overload: OverloadPolicy::default(),
            slo: SloPolicy::none(),
            retry: RetryPolicy::default(),
            plant_skip_restore: false,
        }
    }
}

#[derive(Debug, Clone)]
struct GateSeq {
    life: SeqLifecycle,
    tenant: u32,
    /// Delivery records, stored in the gateway's [`TokenArena`].
    tokens: crate::arena::TokenSlot,
    prefilled: bool,
    /// KV cache lives in the offload store (swap preemption).
    swapped: bool,
    /// The request has been admitted before (it counts against its
    /// tenant's outstanding cap until completion, but is never re-gated).
    admitted_once: bool,
    /// Retry backoff: the sequence may not be scheduled before this time.
    eligible_after: SimTime,
    /// The sequence was in flight during a GPU crash and must journal a
    /// restore event before delivering another token.
    needs_restore: bool,
}

/// A request-level serving front-end with a pluggable decode scheduler.
///
/// # Example
///
/// ```
/// use aqua_gateway::engine::{GatewayConfig, GatewayEngine};
/// use aqua_gateway::scheduler::PolicyKind;
/// use aqua_engines::driver::Engine;
/// use aqua_engines::request::InferenceRequest;
/// use aqua_models::zoo;
/// use aqua_sim::gpu::GpuSpec;
/// use aqua_sim::time::SimTime;
///
/// let geom = *zoo::mistral_7b().llm_geometry().unwrap();
/// let mut gw = GatewayEngine::new(
///     geom,
///     GpuSpec::a100_80g(),
///     PolicyKind::SjfBucket,
///     GatewayConfig::default(),
/// );
/// gw.submit(InferenceRequest::text(0, 128, 16), SimTime::ZERO);
/// let mut now = SimTime::ZERO;
/// while gw.has_work() {
///     now = gw.step(now);
/// }
/// let streams = gw.drain_streams();
/// assert_eq!(streams.streams()[0].tokens.len(), 16);
/// ```
pub struct GatewayEngine {
    geom: LlmGeometry,
    gpu: GpuSpec,
    config: GatewayConfig,
    kv: PagedKvCache,
    scheduler: Box<dyn Scheduler>,
    policy: PolicyKind,
    admission: AdmissionController,
    /// Request id → tenant (requests not in the map belong to tenant 0).
    tenants: BTreeMap<u64, u32>,
    /// Queued sequences, in arrival order (deadline sweeps and crash
    /// marking walk this order — it pins trace-event order). The scheduler
    /// index holds the admission order; this arena holds the state.
    pending: SlotArena<GateSeq>,
    /// Request id → pending-arena handle.
    pending_ids: BTreeMap<u64, u32>,
    /// Admitted batch. `Vec` doubles as the youngest-first preemption
    /// index: the last element is the most recent admission, so victim
    /// selection is an O(1) `pop`.
    running: Vec<GateSeq>,
    completions: Vec<RequestRecord>,
    streams: StreamLog,
    offloader: Option<Box<dyn Offloader>>,
    pending_swap_out: u64,
    pending_swap_in: u64,
    swapped_bytes_total: u64,
    iterations: u64,
    preemptions: u64,
    tracer: SharedTracer,
    scope: String,
    gauges: GaugeCache,
    arena: crate::arena::TokenArena,
    outcomes: OutcomeLog,
    /// GpuCrash windows affecting this gateway's GPU, sorted by start.
    crash_windows: Vec<(SimTime, SimTime)>,
    /// Crash windows already processed by recovery.
    next_crash: usize,
    /// Crashed sequences that owe a restore event before their next token.
    crashed_pending_restore: BTreeSet<u64>,
    auditor: Option<SharedAuditor>,
}

impl std::fmt::Debug for GatewayEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GatewayEngine")
            .field("policy", &self.policy.name())
            .field("pending", &self.pending.len())
            .field("running", &self.running.len())
            .field("iterations", &self.iterations)
            .finish()
    }
}

impl GatewayEngine {
    /// Creates a gateway hosting `geom` on `gpu`, admitting in `policy`
    /// order.
    pub fn new(geom: LlmGeometry, gpu: GpuSpec, policy: PolicyKind, config: GatewayConfig) -> Self {
        let kv = PagedKvCache::new(geom, config.kv_pool_bytes, config.block_tokens);
        let admission = AdmissionController::new(config.max_outstanding_per_tenant)
            .with_overload(config.overload.clone());
        GatewayEngine {
            geom,
            gpu,
            kv,
            scheduler: policy.build(),
            policy,
            admission,
            tenants: BTreeMap::new(),
            pending: SlotArena::new(),
            pending_ids: BTreeMap::new(),
            running: Vec::new(),
            completions: Vec::new(),
            streams: StreamLog::new(),
            offloader: None,
            pending_swap_out: 0,
            pending_swap_in: 0,
            swapped_bytes_total: 0,
            iterations: 0,
            preemptions: 0,
            tracer: null_tracer(),
            scope: "gateway".to_owned(),
            gauges: GaugeCache::new(),
            arena: crate::arena::TokenArena::new(),
            outcomes: OutcomeLog::new(),
            crash_windows: Vec::new(),
            next_crash: 0,
            crashed_pending_restore: BTreeSet::new(),
            auditor: None,
            config,
        }
    }

    /// Attaches a tracer; `scope` labels this gateway's events.
    pub fn with_tracer(mut self, tracer: SharedTracer, scope: impl Into<String>) -> Self {
        self.tracer = tracer;
        self.scope = scope.into();
        self.gauges.reset();
        self
    }

    /// Installs the request-id → tenant map (unmapped ids are tenant 0).
    pub fn with_tenants(mut self, tenants: BTreeMap<u64, u32>) -> Self {
        self.tenants = tenants;
        self
    }

    /// Installs the offload backend used by swap preemption.
    pub fn with_offloader(mut self, offloader: Box<dyn Offloader>) -> Self {
        self.offloader = Some(offloader);
        self
    }

    /// Tells the gateway which `FaultPlan` governs `gpu`, the GPU it
    /// serves on. GpuCrash windows of that GPU destroy the HBM KV of
    /// running sequences: at its first step after a window opens, the
    /// gateway aborts them and re-queues survivors under the retry budget,
    /// while sequences whose KV sits in the offload store restore via the
    /// cheap swap path. Without a plan, crash windows only pause the
    /// engine (the pre-existing driver semantics).
    pub fn with_fault_plan(mut self, plan: &FaultPlan, gpu: GpuId) -> Self {
        let mut windows: Vec<(SimTime, SimTime)> = plan
            .windows()
            .iter()
            .filter(|w| matches!(w.kind, FaultKind::GpuCrash { gpu: g } if g == gpu))
            .map(|w| (w.start, w.end))
            .collect();
        windows.sort();
        self.crash_windows = windows;
        self
    }

    /// Attaches the runtime auditor guarding the crash-restore invariant.
    pub fn with_auditor(mut self, auditor: SharedAuditor) -> Self {
        self.auditor = Some(auditor);
        self
    }

    /// The admission policy this gateway runs.
    pub fn policy(&self) -> PolicyKind {
        self.policy
    }

    /// Number of decode/prefill iterations executed.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// Number of mid-decode preemptions.
    pub fn preemptions(&self) -> u64 {
        self.preemptions
    }

    /// Total KV bytes moved by swap preemption (both directions).
    pub fn swapped_bytes_total(&self) -> u64 {
        self.swapped_bytes_total
    }

    /// Requests queued for admission.
    pub fn queue_depth(&self) -> usize {
        self.pending.len()
    }

    /// Sequences currently being decoded.
    pub fn running_count(&self) -> usize {
        self.running.len()
    }

    /// Read access to the KV pool.
    pub fn kv(&self) -> &PagedKvCache {
        &self.kv
    }

    /// Removes and returns the completed token streams so far.
    pub fn drain_streams(&mut self) -> StreamLog {
        std::mem::take(&mut self.streams)
    }

    /// The request-outcome ledger (completed / shed / timed out / aborted).
    pub fn outcomes(&self) -> &OutcomeLog {
        &self.outcomes
    }

    /// Whether brownout mode is currently engaged.
    pub fn brownout_active(&self) -> bool {
        self.admission.brownout_active()
    }

    /// Estimated KV bytes for a request: full context (prompt plus every
    /// output token) at the model's per-token KV cost.
    fn est_bytes(&self, req: &InferenceRequest) -> u64 {
        self.geom
            .kv_bytes(req.prompt_tokens + req.output_tokens.max(1))
    }

    /// Releases a sequence's admission slot and KV commitment estimate.
    fn retire(&mut self, seq: &GateSeq) {
        if seq.admitted_once {
            self.admission.on_complete(seq.tenant);
        }
        self.arena.release(seq.tokens);
        let est = self.est_bytes(&seq.life.req);
        self.admission.release_bytes(est);
    }

    /// The scheduler's view of a queued sequence.
    fn meta_of(seq: &GateSeq) -> QueuedMeta {
        QueuedMeta {
            id: seq.life.req.id.0,
            tenant: seq.tenant,
            enqueued: seq.life.arrival,
            prompt_tokens: seq.life.req.prompt_tokens,
            output_tokens: seq.life.req.output_tokens,
            generated: seq.life.generated,
        }
    }

    /// Inserts `seq` into the pending arena and mirrors the transition
    /// into the scheduler index (fresh enqueue, or cap-exempt re-queue for
    /// already-admitted work).
    fn enqueue_pending(&mut self, seq: GateSeq, now: SimTime) {
        let meta = Self::meta_of(&seq);
        let admitted_once = seq.admitted_once;
        let eligible_after = seq.eligible_after;
        let handle = self.pending.push_back(seq);
        self.pending_ids.insert(meta.id, handle);
        if admitted_once {
            self.scheduler.on_requeue(meta, eligible_after, now);
        } else {
            self.scheduler.on_enqueue(meta, now);
        }
    }

    /// Removes the pending entry at `handle` from the arena, the id map
    /// and the scheduler index (for paths other than `pop_next`, which
    /// already took its entry out of the index).
    fn unqueue_pending(&mut self, handle: u32) -> GateSeq {
        let seq = self.pending.remove(handle);
        self.pending_ids.remove(&seq.life.req.id.0);
        let removed =
            self.scheduler
                .on_remove(&Self::meta_of(&seq), seq.admitted_once, seq.eligible_after);
        debug_assert!(removed, "pending entries are always indexed");
        seq
    }

    fn tenant_of(&self, id: u64) -> u32 {
        self.tenants.get(&id).copied().unwrap_or(0)
    }

    fn emit_gauge(&mut self, suffix: &'static str, value: f64, at: SimTime) {
        if !self.tracer.enabled() {
            return;
        }
        let Some(name) = self.gauges.changed(&self.scope, suffix, value) else {
            return;
        };
        let name = name.to_owned();
        self.tracer.gauge(&name, value);
        self.tracer.emit(TraceEvent::Gauge { name, value, at });
    }

    /// Processes GpuCrash windows that opened since the last step.
    ///
    /// The driver withholds steps while the window is active, so the first
    /// step afterwards observes `window.start <= now` and runs recovery:
    /// every running sequence lost its HBM KV and is either re-queued
    /// under the retry budget (restore mode `recompute`) or terminally
    /// aborted; preempted-and-swapped pending sequences keep their KV in
    /// the offload store and restore via the cheap `swap` path at their
    /// next admission. Both kinds owe a `request_restored` journal entry
    /// before any further token — the `token_without_restore` invariant.
    fn handle_crashes(&mut self, now: SimTime) {
        while self.next_crash < self.crash_windows.len()
            && self.crash_windows[self.next_crash].0 <= now
        {
            self.next_crash += 1;
            self.on_gpu_crash(now);
        }
    }

    fn on_gpu_crash(&mut self, now: SimTime) {
        let victims: Vec<GateSeq> = self.running.drain(..).collect();
        for mut victim in victims {
            let id = victim.life.req.id.0;
            self.kv.free_seq(victim.life.req.id);
            trace!(
                self.tracer,
                TraceEvent::RequestCrashAborted {
                    gateway: self.scope.clone(),
                    request: id,
                    generated: victim.life.generated,
                    at: now,
                }
            );
            let attempt = self.outcomes.note_retry(id);
            if attempt > self.config.retry.max_retries {
                self.outcomes
                    .note(id, victim.tenant, RequestOutcome::CrashAborted);
                self.retire(&victim);
                self.crashed_pending_restore.remove(&id);
            } else {
                self.outcomes
                    .note(id, victim.tenant, RequestOutcome::Retried);
                trace!(
                    self.tracer,
                    TraceEvent::RequestRetried {
                        gateway: self.scope.clone(),
                        request: id,
                        attempt: u64::from(attempt),
                        at: now,
                    }
                );
                victim.prefilled = false;
                victim.swapped = false;
                victim.needs_restore = true;
                victim.eligible_after = now + self.config.retry.backoff_for(attempt);
                self.crashed_pending_restore.insert(id);
                // Re-queue as an event: the scheduler parks the victim on
                // its backoff deadline and promotes it when due, instead of
                // the engine re-filtering `eligible_after` every step.
                self.enqueue_pending(victim, now);
            }
        }
        // Swap-preempted pending sequences survived — their KV was captured
        // into the offload store at preemption time — but they are still
        // crashed sequences: their readmission must journal a swap restore.
        // (`needs_restore` is not part of the scheduler key, so this walk
        // needs no index updates.)
        for handle in self.pending.handles() {
            let seq = self.pending.get_mut(handle).expect("handles are live");
            if seq.swapped && !seq.needs_restore {
                seq.needs_restore = true;
                self.crashed_pending_restore.insert(seq.life.req.id.0);
            }
        }
    }

    /// Cancels queued and running sequences that blew a tenant deadline.
    /// A cancelled sequence frees its KV (and its slot in the admission
    /// books) immediately — capacity spent on an already-missed SLO is
    /// capacity stolen from requests that can still meet theirs.
    fn enforce_deadlines(&mut self, now: SimTime) {
        if !self.config.slo.any_deadline() {
            return;
        }
        for handle in self.pending.handles() {
            let seq = self.pending.get(handle).expect("handles are live");
            let slo = self.config.slo.of(seq.tenant);
            if let Some(kind) = slo.missed(seq.life.arrival, seq.life.generated, now) {
                let seq = self.unqueue_pending(handle);
                self.timeout_seq(seq, kind, now);
            }
        }
        let mut i = 0;
        while i < self.running.len() {
            let seq = &self.running[i];
            let slo = self.config.slo.of(seq.tenant);
            if let Some(kind) = slo.missed(seq.life.arrival, seq.life.generated, now) {
                let seq = self.running.remove(i);
                self.kv.free_seq(seq.life.req.id);
                self.timeout_seq(seq, kind, now);
            } else {
                i += 1;
            }
        }
    }

    fn timeout_seq(&mut self, seq: GateSeq, kind: DeadlineKind, now: SimTime) {
        let id = seq.life.req.id.0;
        trace!(
            self.tracer,
            TraceEvent::RequestTimedOut {
                gateway: self.scope.clone(),
                request: id,
                deadline: kind.label().to_owned(),
                at: now,
            }
        );
        self.outcomes
            .note(id, seq.tenant, RequestOutcome::TimedOut(kind));
        self.retire(&seq);
        self.crashed_pending_restore.remove(&id);
    }

    /// Admits pending requests in scheduler order.
    ///
    /// Admission stops at the first request whose KV does not fit
    /// (head-of-line semantics, like vLLM) — except while the batch is
    /// empty and nothing has been admitted yet, where non-fitting entries
    /// are skipped instead so one oversized head cannot stall an idle
    /// engine that still has admissible work.
    ///
    /// Each admission is one `pop_next` against the incremental index —
    /// cap gating and backoff promotion happen inside the pop — so a
    /// round's cost scales with the *batch*, never with the backlog. The
    /// old implementation materialized and sorted every eligible entry
    /// per decode iteration, which turned saturated million-request
    /// traces quadratic.
    fn admit(&mut self, now: SimTime) {
        if self.running.len() >= self.config.max_batch || self.pending.is_empty() {
            return;
        }
        let mut admitted_any = false;
        // Picks that did not fit in KV sit out the rest of the round here
        // (matching the sort-based walk, which never revisits a skipped
        // entry) and rejoin the index afterwards.
        let mut stashed: Vec<QueuedMeta> = Vec::new();
        while self.running.len() < self.config.max_batch {
            let Some(meta) = self.scheduler.pop_next(now, &self.admission) else {
                break;
            };
            let handle = self.pending_ids[&meta.id];
            let needed = self
                .pending
                .get(handle)
                .expect("scheduled ids come from the pending queue")
                .life
                .context_tokens()
                + 1;
            if !self.kv.can_fit_tokens(needed) {
                stashed.push(meta);
                if self.running.is_empty() && !admitted_any {
                    continue;
                }
                break;
            }
            self.pending_ids.remove(&meta.id);
            let mut seq = self.pending.remove(handle);
            admitted_any = true;
            trace!(
                self.tracer,
                TraceEvent::RequestScheduled {
                    gateway: self.scope.clone(),
                    policy: self.scheduler.name().to_owned(),
                    request: seq.life.req.id.0,
                    queue_depth: self.pending.len() as u64,
                    at: now,
                }
            );
            trace!(
                self.tracer,
                TraceEvent::RequestAdmitted {
                    engine: self.scope.clone(),
                    request: seq.life.req.id.0,
                    waiting: self.pending.len() as u64,
                    at: now,
                }
            );
            if !seq.admitted_once {
                self.admission.on_admit(seq.tenant);
                seq.admitted_once = true;
            }
            self.kv
                .grow_seq(seq.life.req.id, seq.life.context_tokens())
                .expect("can_fit_tokens checked");
            if seq.needs_restore && !self.config.plant_skip_restore {
                trace!(
                    self.tracer,
                    TraceEvent::RequestRestored {
                        gateway: self.scope.clone(),
                        request: seq.life.req.id.0,
                        mode: if seq.swapped { "swap" } else { "recompute" }.to_owned(),
                        bytes: self.geom.kv_bytes(seq.life.context_tokens()),
                        at: now,
                    }
                );
                seq.needs_restore = false;
                self.crashed_pending_restore.remove(&seq.life.req.id.0);
            }
            if seq.swapped {
                let bytes = self.geom.kv_bytes(seq.life.context_tokens());
                self.pending_swap_in += bytes;
                self.swapped_bytes_total += bytes;
                seq.swapped = false;
                seq.prefilled = true;
            } else {
                seq.prefilled = false;
            }
            self.running.push(seq);
        }
        // Reinsert skipped picks. Keys recompute identically (same `now`,
        // same learned ratio), so the index order is as if they never left.
        for meta in stashed {
            let handle = self.pending_ids[&meta.id];
            let seq = self
                .pending
                .get(handle)
                .expect("stashed entries stay pending");
            if seq.admitted_once {
                let eligible_after = seq.eligible_after;
                self.scheduler.on_requeue(meta, eligible_after, now);
            } else {
                self.scheduler.on_enqueue(meta, now);
            }
        }
    }

    /// Ensures every running sequence can grow by one token this iteration,
    /// preempting the youngest (most recently admitted) under KV pressure.
    fn make_room_for_decode(&mut self, now: SimTime) {
        loop {
            let need: u64 = self
                .running
                .iter()
                .filter(|s| s.life.context_tokens() % self.config.block_tokens == 0)
                .count() as u64;
            if need <= self.kv.free_blocks() || self.running.is_empty() {
                return;
            }
            let mut victim = self.running.pop().expect("non-empty");
            self.kv.free_seq(victim.life.req.id);
            self.preemptions += 1;
            self.tracer.incr("gateway.preemptions", 1);
            let swapping =
                self.config.preemption == PreemptionPolicy::Swap && self.offloader.is_some();
            trace!(
                self.tracer,
                TraceEvent::RequestPreempted {
                    engine: self.scope.clone(),
                    request: victim.life.req.id.0,
                    policy: if swapping { "swap" } else { "recompute" }.to_owned(),
                    at: now,
                }
            );
            if swapping {
                let bytes = self.geom.kv_bytes(victim.life.context_tokens());
                self.pending_swap_out += bytes;
                self.swapped_bytes_total += bytes;
                victim.swapped = true;
            } else {
                victim.prefilled = false;
            }
            // Preempted work was admitted before, so it re-queues
            // cap-exempt with no backoff (immediately re-admissible).
            self.enqueue_pending(victim, now);
        }
    }
}

impl Engine for GatewayEngine {
    fn submit(&mut self, req: InferenceRequest, now: SimTime) {
        let tenant = self.tenant_of(req.id.0);
        trace!(
            self.tracer,
            TraceEvent::GatewayEnqueued {
                gateway: self.scope.clone(),
                tenant: u64::from(tenant),
                request: req.id.0,
                at: now,
            }
        );
        let est = self.est_bytes(&req);
        if let Some(reason) = self.admission.shed_reason(tenant, self.pending.len(), est) {
            trace!(
                self.tracer,
                TraceEvent::RequestShed {
                    gateway: self.scope.clone(),
                    tenant: u64::from(tenant),
                    request: req.id.0,
                    reason: reason.label().to_owned(),
                    at: now,
                }
            );
            self.outcomes
                .note(req.id.0, tenant, RequestOutcome::ShedAtAdmission(reason));
            return;
        }
        self.admission.commit_bytes(est);
        let life = SeqLifecycle::new(req, now);
        // Exact-capacity token chunk: `output_tokens` (clamped >= 1 by
        // SeqLifecycle) is precisely how many records this request writes.
        let tokens = self.arena.alloc(life.req.output_tokens);
        self.enqueue_pending(
            GateSeq {
                life,
                tenant,
                tokens,
                prefilled: false,
                swapped: false,
                admitted_once: false,
                eligible_after: SimTime::ZERO,
                needs_restore: false,
            },
            now,
        );
    }

    fn has_work(&self) -> bool {
        if !self.running.is_empty() {
            return true;
        }
        // KV fit checks are monotone in context size, so "does any
        // cap-eligible request fit" reduces to the scheduler's smallest
        // context — no backlog scan.
        self.scheduler
            .min_context(&self.admission)
            .is_some_and(|ctx| self.kv.can_fit_tokens(ctx + 1))
    }

    fn step(&mut self, now: SimTime) -> SimTime {
        self.iterations += 1;
        let mut now = now;
        if let Some(off) = self.offloader.as_mut() {
            now = off.on_iteration_boundary(now).max(now);
        }
        self.handle_crashes(now);
        self.enforce_deadlines(now);
        if let Some(engaged) = self.admission.update_brownout(self.pending.len()) {
            trace!(
                self.tracer,
                TraceEvent::GatewayBrownout {
                    gateway: self.scope.clone(),
                    state: if engaged { "enter" } else { "exit" }.to_owned(),
                    queue_depth: self.pending.len() as u64,
                    at: now,
                }
            );
        }
        self.admit(now);
        self.make_room_for_decode(now);
        self.emit_gauge("queue_depth", self.pending.len() as f64, now);
        self.emit_gauge("running", self.running.len() as f64, now);
        self.emit_gauge("kv_used_bytes", self.kv.used_bytes() as f64, now);
        if self.running.is_empty() {
            // If the only schedulable work is backing off after a crash
            // retry, tell the driver when it becomes eligible — spinning
            // 1ns steps until then would melt the event loop. (`admit` just
            // promoted every expired backoff, so the parked set holds only
            // strictly-future deadlines.)
            return self.scheduler.next_parked().unwrap_or(now);
        }

        let mut io_done = now;
        if let Some(off) = self.offloader.as_mut() {
            let chunks_per_gib = 2 * self.geom.layers;
            if self.pending_swap_out > 0 {
                io_done = io_done.max(off.swap_out(self.pending_swap_out, chunks_per_gib, now));
                self.pending_swap_out = 0;
            }
            if self.pending_swap_in > 0 {
                io_done = io_done.max(off.swap_in(self.pending_swap_in, chunks_per_gib, now));
                self.pending_swap_in = 0;
            }
        } else {
            self.pending_swap_out = 0;
            self.pending_swap_in = 0;
        }

        let prefill_tokens: u64 = self
            .running
            .iter()
            .filter(|s| !s.prefilled)
            .map(|s| s.life.context_tokens())
            .sum();
        let t_prefill = cost::llm_prefill_time(&self.geom, &self.gpu, prefill_tokens);
        let batch = self.running.len() as u64;
        let total_ctx = self.kv.total_context_tokens() + batch;
        let t_decode = cost::llm_decode_step_time(&self.geom, &self.gpu, batch, total_ctx);
        let end = io_done + t_prefill + t_decode;

        let mut finished: Vec<usize> = Vec::new();
        for (i, seq) in self.running.iter_mut().enumerate() {
            seq.prefilled = true;
            self.kv
                .grow_seq(seq.life.req.id, 1)
                .expect("make_room_for_decode guarantees headroom");
            seq.life.note_token(end);
            self.arena.push(&mut seq.tokens, end);
            // The crash-restore invariant: a crashed sequence still in the
            // pending-restore set at token time means no restore event was
            // journalled for it. Flag once, then clear so one planted bug
            // does not flood the journal.
            let id = seq.life.req.id.0;
            if self.crashed_pending_restore.remove(&id) {
                if let Some(aud) = &self.auditor {
                    aud.record(AuditViolation::TokenWithoutRestore {
                        gateway: self.scope.clone(),
                        request: id,
                        at: end,
                    });
                }
            }
            if seq.life.generated == 1 {
                trace!(
                    self.tracer,
                    TraceEvent::FirstTokenEmitted {
                        gateway: self.scope.clone(),
                        request: seq.life.req.id.0,
                        at: end,
                    }
                );
            }
            if seq.life.is_complete() {
                finished.push(i);
            }
        }
        for &i in finished.iter().rev() {
            let seq = self.running.remove(i);
            let delivered = self.arena.take(&seq.tokens);
            self.kv.free_seq(seq.life.req.id);
            self.retire(&seq);
            self.outcomes
                .note(seq.life.req.id.0, seq.tenant, RequestOutcome::Completed);
            self.scheduler
                .observe_completion(seq.life.req.prompt_tokens, seq.life.generated);
            trace!(
                self.tracer,
                TraceEvent::GatewayCompleted {
                    gateway: self.scope.clone(),
                    request: seq.life.req.id.0,
                    output_tokens: seq.life.generated,
                    at: end,
                }
            );
            self.completions.push(seq.life.record(end));
            self.streams.record(TokenStream {
                id: seq.life.req.id.0,
                tenant: seq.tenant,
                arrival: seq.life.arrival,
                tokens: delivered,
            });
        }
        end
    }

    fn drain_completions(&mut self) -> Vec<RequestRecord> {
        std::mem::take(&mut self.completions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_models::zoo;

    fn engine(policy: PolicyKind, pool_blocks: u64) -> GatewayEngine {
        let geom = *zoo::mistral_7b().llm_geometry().unwrap();
        let pool = geom.kv_bytes_per_token() * DEFAULT_BLOCK_TOKENS * pool_blocks;
        GatewayEngine::new(
            geom,
            GpuSpec::a100_80g(),
            policy,
            GatewayConfig {
                kv_pool_bytes: pool,
                ..GatewayConfig::default()
            },
        )
    }

    fn run_to_completion(e: &mut GatewayEngine) -> SimTime {
        let mut now = SimTime::ZERO;
        let mut guard = 0;
        while e.has_work() {
            now = e.step(now);
            guard += 1;
            assert!(guard < 1_000_000, "gateway failed to make progress");
        }
        now
    }

    #[test]
    fn single_request_streams_every_token() {
        let mut e = engine(PolicyKind::Fcfs, 2000);
        e.submit(InferenceRequest::text(0, 256, 32), SimTime::ZERO);
        run_to_completion(&mut e);
        let streams = e.drain_streams();
        assert_eq!(streams.len(), 1);
        let s = &streams.streams()[0];
        assert_eq!(s.tokens.len(), 32);
        assert!(s.ttft().unwrap() > 0.0);
        assert!(s.tokens.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(e.drain_completions().len(), 1);
        assert_eq!(e.kv().used_blocks(), 0);
    }

    #[test]
    fn sjf_admits_short_job_first_under_contention() {
        // Pool fits one sequence at a time: the admission order is the
        // completion order.
        let run = |policy: PolicyKind| -> Vec<u64> {
            let geom = *zoo::mistral_7b().llm_geometry().unwrap();
            let pool = geom.kv_bytes_per_token() * 16 * 80; // 1280 tokens
            let mut e = GatewayEngine::new(
                geom,
                GpuSpec::a100_80g(),
                policy,
                GatewayConfig {
                    kv_pool_bytes: pool,
                    ..GatewayConfig::default()
                },
            );
            e.submit(InferenceRequest::text(0, 900, 100), SimTime::ZERO);
            e.submit(InferenceRequest::text(1, 900, 10), SimTime::ZERO);
            run_to_completion(&mut e);
            e.drain_completions().iter().map(|r| r.id).collect()
        };
        assert_eq!(run(PolicyKind::Fcfs), vec![0, 1], "fcfs serves in order");
        assert_eq!(run(PolicyKind::Sjf), vec![1, 0], "sjf serves short first");
    }

    #[test]
    fn tenant_cap_limits_concurrent_admissions() {
        let geom = *zoo::mistral_7b().llm_geometry().unwrap();
        let mut e = GatewayEngine::new(
            geom,
            GpuSpec::a100_80g(),
            PolicyKind::Fcfs,
            GatewayConfig {
                max_outstanding_per_tenant: 1,
                ..GatewayConfig::default()
            },
        );
        for i in 0..3 {
            e.submit(InferenceRequest::text(i, 64, 8), SimTime::ZERO);
        }
        e.step(SimTime::ZERO);
        assert_eq!(e.running_count(), 1, "cap of 1 admits one at a time");
        assert_eq!(e.queue_depth(), 2);
        run_to_completion(&mut e);
        assert_eq!(e.drain_completions().len(), 3, "nothing is dropped");
    }

    #[test]
    fn tenants_with_free_slots_bypass_a_capped_tenant() {
        let geom = *zoo::mistral_7b().llm_geometry().unwrap();
        let tenants: BTreeMap<u64, u32> = [(0, 0), (1, 0), (2, 1)].into_iter().collect();
        let mut e = GatewayEngine::new(
            geom,
            GpuSpec::a100_80g(),
            PolicyKind::Fcfs,
            GatewayConfig {
                max_outstanding_per_tenant: 1,
                ..GatewayConfig::default()
            },
        )
        .with_tenants(tenants);
        for i in 0..3 {
            e.submit(InferenceRequest::text(i, 64, 8), SimTime::ZERO);
        }
        e.step(SimTime::ZERO);
        // Tenant 0's second request is capped, but tenant 1's runs.
        assert_eq!(e.running_count(), 2);
        run_to_completion(&mut e);
        assert_eq!(e.drain_completions().len(), 3);
    }

    #[test]
    fn preemption_under_pressure_completes_everything() {
        let mut e = engine(PolicyKind::SjfBucket, 40); // 640 tokens
        e.submit(InferenceRequest::text(0, 256, 200), SimTime::ZERO);
        e.submit(InferenceRequest::text(1, 256, 200), SimTime::ZERO);
        run_to_completion(&mut e);
        let recs = e.drain_completions();
        assert_eq!(recs.len(), 2);
        assert!(e.preemptions() > 0, "expected KV pressure");
        let streams = e.drain_streams();
        assert!(streams.streams().iter().all(|s| s.tokens.len() == 200));
    }

    #[test]
    fn swap_preemption_moves_bytes_through_offloader() {
        use aqua_engines::offload::DramOffloader;
        use aqua_sim::gpu::GpuId;
        use aqua_sim::topology::ServerTopology;
        use aqua_sim::transfer::TransferEngine;
        use std::cell::RefCell;
        use std::rc::Rc;

        let geom = *zoo::mistral_7b().llm_geometry().unwrap();
        let server = ServerTopology::nvlink_pair(GpuSpec::a100_80g());
        let xfer = Rc::new(RefCell::new(TransferEngine::new()));
        let mut e = GatewayEngine::new(
            geom,
            GpuSpec::a100_80g(),
            PolicyKind::Fcfs,
            GatewayConfig {
                kv_pool_bytes: geom.kv_bytes_per_token() * 16 * 40,
                preemption: PreemptionPolicy::Swap,
                ..GatewayConfig::default()
            },
        )
        .with_offloader(Box::new(DramOffloader::pinned(&server, GpuId(0), xfer)));
        e.submit(InferenceRequest::text(0, 256, 200), SimTime::ZERO);
        e.submit(InferenceRequest::text(1, 256, 200), SimTime::ZERO);
        run_to_completion(&mut e);
        assert_eq!(e.drain_completions().len(), 2);
        assert!(e.preemptions() > 0);
        assert!(e.swapped_bytes_total() > 0, "swap path exercised");
    }

    #[test]
    fn oversized_head_does_not_stall_admissible_work() {
        // FCFS head can never fit; the idle-engine skip must let the small
        // request through (and has_work must agree).
        let mut e = engine(PolicyKind::Fcfs, 40); // 640 tokens
        e.submit(InferenceRequest::text(0, 10_000, 5), SimTime::ZERO);
        e.submit(InferenceRequest::text(1, 64, 8), SimTime::ZERO);
        assert!(e.has_work());
        run_to_completion(&mut e);
        let recs = e.drain_completions();
        assert_eq!(recs.len(), 1, "only the admissible request completes");
        assert_eq!(recs[0].id, 1);
        assert!(!e.has_work(), "the oversized request can never be admitted");
    }

    #[test]
    fn traced_gateway_journals_the_request_lifecycle() {
        use aqua_telemetry::JournalTracer;
        use std::sync::Arc;

        let journal = Arc::new(JournalTracer::new());
        let geom = *zoo::mistral_7b().llm_geometry().unwrap();
        let mut e = GatewayEngine::new(
            geom,
            GpuSpec::a100_80g(),
            PolicyKind::Sjf,
            GatewayConfig::default(),
        )
        .with_tracer(journal.clone(), "gw:test");
        e.submit(InferenceRequest::text(7, 128, 4), SimTime::ZERO);
        run_to_completion(&mut e);

        let events = journal.events();
        let names: Vec<&str> = events.iter().map(|e| e.name()).collect();
        for expected in [
            "gateway_enqueued",
            "request_scheduled",
            "request_admitted",
            "first_token_emitted",
            "gateway_completed",
        ] {
            assert!(names.contains(&expected), "missing {expected}: {names:?}");
        }
        assert!(events.iter().any(|e| matches!(
            e,
            TraceEvent::RequestScheduled { policy, request, .. }
                if policy == "sjf" && *request == 7
        )));
        // Lifecycle events serialize canonically.
        for e in &events {
            assert!(aqua_telemetry::json::parse(&e.to_json_line()).is_ok());
        }
    }

    #[test]
    fn queue_watermark_sheds_at_the_door() {
        use crate::outcome::ShedReason;

        let geom = *zoo::mistral_7b().llm_geometry().unwrap();
        let mut e = GatewayEngine::new(
            geom,
            GpuSpec::a100_80g(),
            PolicyKind::Fcfs,
            GatewayConfig {
                overload: OverloadPolicy {
                    queue_watermark: Some(1),
                    kv_commit_bytes: None,
                    brownout: None,
                },
                ..GatewayConfig::default()
            },
        );
        for i in 0..3 {
            e.submit(InferenceRequest::text(i, 64, 8), SimTime::ZERO);
        }
        assert_eq!(e.queue_depth(), 1, "watermark of 1 accepts one");
        run_to_completion(&mut e);
        assert_eq!(e.drain_completions().len(), 1);
        assert_eq!(e.outcomes().completed(), 1);
        assert_eq!(e.outcomes().shed(), 2);
        assert_eq!(
            e.outcomes().of(1),
            Some(RequestOutcome::ShedAtAdmission(ShedReason::QueueDepth))
        );
        assert_eq!(e.drain_streams().len(), 1, "shed requests have no stream");
    }

    #[test]
    fn kv_cost_budget_sheds_expensive_requests() {
        use crate::outcome::ShedReason;

        let geom = *zoo::mistral_7b().llm_geometry().unwrap();
        let budget = geom.kv_bytes(200);
        let mut e = GatewayEngine::new(
            geom,
            GpuSpec::a100_80g(),
            PolicyKind::Fcfs,
            GatewayConfig {
                overload: OverloadPolicy {
                    queue_watermark: None,
                    kv_commit_bytes: Some(budget),
                    brownout: None,
                },
                ..GatewayConfig::default()
            },
        );
        e.submit(InferenceRequest::text(0, 64, 8), SimTime::ZERO);
        e.submit(InferenceRequest::text(1, 1000, 100), SimTime::ZERO);
        assert_eq!(
            e.outcomes().of(1),
            Some(RequestOutcome::ShedAtAdmission(ShedReason::KvCost))
        );
        let done_at = run_to_completion(&mut e);
        // The commitment estimate is released on completion: a request
        // that would have blown the budget earlier is now accepted.
        e.submit(InferenceRequest::text(2, 64, 8), done_at);
        assert_eq!(e.outcomes().of(2), None, "accepted after books drained");
        run_to_completion(&mut e);
        assert_eq!(e.outcomes().completed(), 2);
        assert_eq!(e.outcomes().shed(), 1);
    }

    #[test]
    fn ttft_deadline_times_out_queued_work() {
        use crate::outcome::{SloPolicy, TenantSlo};
        use aqua_sim::time::SimDuration;

        let geom = *zoo::mistral_7b().llm_geometry().unwrap();
        let mut e = GatewayEngine::new(
            geom,
            GpuSpec::a100_80g(),
            PolicyKind::Fcfs,
            GatewayConfig {
                max_outstanding_per_tenant: 1,
                slo: SloPolicy::with_default(TenantSlo {
                    ttft: Some(SimDuration::from_secs(1)),
                    total: None,
                }),
                ..GatewayConfig::default()
            },
        );
        // Tenant cap 1: request 1 waits behind request 0, whose multi-second
        // decode blows request 1's one-second TTFT deadline in the queue.
        e.submit(InferenceRequest::text(0, 256, 400), SimTime::ZERO);
        e.submit(InferenceRequest::text(1, 256, 400), SimTime::ZERO);
        run_to_completion(&mut e);
        assert_eq!(e.drain_completions().len(), 1);
        assert_eq!(e.outcomes().completed(), 1);
        assert_eq!(e.outcomes().timed_out(), 1);
        assert!(matches!(
            e.outcomes().of(1),
            Some(RequestOutcome::TimedOut(DeadlineKind::Ttft))
        ));
        assert_eq!(e.kv().used_blocks(), 0, "cancelled work freed its KV");
        assert!(!e.has_work());
    }

    #[test]
    fn crash_recovery_retries_and_restores() {
        use aqua_engines::driver::Driver;
        use aqua_sim::audit::Auditor;
        use aqua_telemetry::JournalTracer;
        use std::sync::Arc;

        let journal = Arc::new(JournalTracer::new());
        let auditor = Auditor::with_tracer(journal.clone());
        let geom = *zoo::mistral_7b().llm_geometry().unwrap();
        let plan =
            FaultPlan::new().gpu_crash(GpuId(0), SimTime::from_secs(1), SimTime::from_secs(2));
        let mut e = GatewayEngine::new(
            geom,
            GpuSpec::a100_80g(),
            PolicyKind::Fcfs,
            GatewayConfig::default(),
        )
        .with_tracer(journal.clone(), "gw:crash")
        .with_fault_plan(&plan, GpuId(0))
        .with_auditor(auditor.clone());

        let mut driver = Driver::new();
        driver.crash_window(0, SimTime::from_secs(1), SimTime::from_secs(2));
        driver.schedule_arrival(0, SimTime::ZERO, InferenceRequest::text(0, 256, 400));
        {
            let mut engines: Vec<&mut dyn Engine> = vec![&mut e];
            driver.run(&mut engines, SimTime::from_secs(10_000));
        }
        let recs = e.drain_completions();
        assert_eq!(recs.len(), 1, "the request survives the crash");
        let streams = e.drain_streams();
        assert_eq!(streams.streams()[0].tokens.len(), 400, "no truncation");
        assert_eq!(e.outcomes().of(0), Some(RequestOutcome::Completed));
        assert!(e.outcomes().total_retries() >= 1);

        let names: Vec<&str> = journal.events().iter().map(|ev| ev.name()).collect();
        for expected in [
            "request_crash_aborted",
            "request_retried",
            "request_restored",
        ] {
            assert!(names.contains(&expected), "missing {expected}: {names:?}");
        }
        assert!(journal.events().iter().any(|ev| matches!(
            ev,
            TraceEvent::RequestRestored { mode, .. } if mode == "recompute"
        )));
        assert!(auditor.is_clean(), "restore events satisfy the invariant");
    }

    #[test]
    fn planted_skip_restore_trips_the_audit() {
        use aqua_engines::driver::Driver;
        use aqua_sim::audit::Auditor;

        let auditor = Auditor::collecting();
        let geom = *zoo::mistral_7b().llm_geometry().unwrap();
        let plan =
            FaultPlan::new().gpu_crash(GpuId(0), SimTime::from_secs(1), SimTime::from_secs(2));
        let mut e = GatewayEngine::new(
            geom,
            GpuSpec::a100_80g(),
            PolicyKind::Fcfs,
            GatewayConfig {
                plant_skip_restore: true,
                ..GatewayConfig::default()
            },
        )
        .with_fault_plan(&plan, GpuId(0))
        .with_auditor(auditor.clone());

        let mut driver = Driver::new();
        driver.crash_window(0, SimTime::from_secs(1), SimTime::from_secs(2));
        driver.schedule_arrival(0, SimTime::ZERO, InferenceRequest::text(0, 256, 400));
        {
            let mut engines: Vec<&mut dyn Engine> = vec![&mut e];
            driver.run(&mut engines, SimTime::from_secs(10_000));
        }
        assert!(!auditor.is_clean(), "the planted bug must be caught");
        assert_eq!(auditor.first().unwrap().kind(), "token_without_restore");
        // The plant only skips the restore journal entry — serving itself
        // still completes, which is exactly why the invariant is needed.
        assert_eq!(e.drain_completions().len(), 1);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(10))]

        // Liveness across the whole policy zoo: every admissible request
        // completes with its exact token count and the pool drains.
        #[test]
        fn gateway_liveness_across_policies(
            reqs in proptest::collection::vec((1u64..400, 1u64..60, 0u64..8), 1..10),
            policy_idx in 0usize..5,
            swap in proptest::bool::ANY,
        ) {
            use aqua_engines::driver::Driver;

            let policy = PolicyKind::ALL[policy_idx];
            let geom = *zoo::mistral_7b().llm_geometry().unwrap();
            let mut e = GatewayEngine::new(
                geom,
                GpuSpec::a100_80g(),
                policy,
                GatewayConfig {
                    kv_pool_bytes: geom.kv_bytes_per_token() * 16 * 60,
                    preemption: if swap { PreemptionPolicy::Swap } else { PreemptionPolicy::Recompute },
                    max_outstanding_per_tenant: 3,
                    ..GatewayConfig::default()
                },
            );
            let mut driver = Driver::new();
            for (i, (prompt, output, at_s)) in reqs.iter().enumerate() {
                driver.schedule_arrival(
                    0,
                    SimTime::from_secs(*at_s),
                    InferenceRequest::text(i as u64, *prompt, *output),
                );
            }
            {
                let mut engines: Vec<&mut dyn Engine> = vec![&mut e];
                driver.run(&mut engines, SimTime::from_secs(100_000));
            }
            proptest::prop_assert!(!e.has_work());
            let recs = e.drain_completions();
            proptest::prop_assert_eq!(recs.len(), reqs.len());
            let streams = e.drain_streams();
            proptest::prop_assert_eq!(streams.len(), reqs.len());
            for s in streams.streams() {
                let (_, output, _) = reqs[s.id as usize];
                proptest::prop_assert_eq!(s.tokens.len() as u64, output.max(1));
                proptest::prop_assert!(s.tokens.windows(2).all(|w| w[0] <= w[1]));
            }
            proptest::prop_assert_eq!(e.kv().used_blocks(), 0);
        }
    }
}
