//! Regenerates Figure 2: throughput vs batch size vs free memory for
//! AudioGen (2a), StableDiffusion (2b) and Llama-2-13B (2c).

use aqua_bench::fig02_contention::{run, tables};

fn main() {
    let sweeps = run(&[1, 2, 4, 8, 12, 16, 24, 32, 48, 64, 96]);
    for t in tables(&sweeps) {
        println!("{t}");
    }
    println!("Paper shape: audio/vision plateau with tens of GiB free;");
    println!("the LLM's free memory collapses toward 0 at peak throughput.");
    aqua_bench::trace::finish();
}
