//! Regenerates Figure 11: producer RCTs over the Figure 10 timeline, with
//! AQUA donating/reclaiming vs the same producer isolated.

use aqua_bench::fig10_elasticity::Timeline;
use aqua_bench::fig11_producer_overhead::{run_overhead, table};

fn main() {
    let tl = Timeline::default();
    let r = run_overhead(&tl, 10, 11);
    println!("{}", table(&r));
    println!(
        "Median producer RCT overhead: {:.2}x (paper: near parity; only the",
        r.median_overhead()
    );
    println!("requests caught in the reclaim pause pay).");
    aqua_bench::trace::finish();
}
