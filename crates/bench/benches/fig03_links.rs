//! Regenerates Figure 3: (a) NVLink effective bandwidth vs buffer size;
//! (b) producer throughput impact of sharing memory (< 5%).

use aqua_bench::fig03_links::{
    bandwidth_table, default_sizes, run_bandwidth, run_sharing, sharing_table,
};

fn main() {
    println!("{}", bandwidth_table(&run_bandwidth(&default_sizes())));
    println!("{}", sharing_table(&run_sharing(10)));
    println!("Paper anchors: ~100 GB/s at 2 MB, ~250 GB/s peak; sharing < 5%.");
}
