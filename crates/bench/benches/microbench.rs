//! Criterion microbenchmarks for the hot substrate paths: HBM accounting,
//! the event queue, transfer scheduling, the paged KV cache, coordinator
//! operations, LoRA transfer planning and the placer.

use aqua_core::coordinator::{Coordinator, GpuRef};
use aqua_engines::kvcache::PagedKvCache;
use aqua_engines::request::RequestId;
use aqua_models::lora::LoraAdapter;
use aqua_models::zoo;
use aqua_placer::instance::{ModelSpec, PlacementInstance};
use aqua_placer::matching::stable_match;
use aqua_placer::solver::solve_optimal;
use aqua_sim::event::EventQueue;
use aqua_sim::gpu::{GpuId, GpuSpec};
use aqua_sim::link::BandwidthModel;
use aqua_sim::memory::{HbmAllocator, RegionKind};
use aqua_sim::time::SimTime;
use aqua_sim::topology::ServerTopology;
use aqua_sim::transfer::{TransferEngine, TransferPlan};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_allocator(c: &mut Criterion) {
    c.bench_function("hbm_alloc_free", |b| {
        let mut hbm = HbmAllocator::new(80 << 30);
        b.iter(|| {
            let id = hbm.alloc(RegionKind::KvCache, black_box(1 << 20)).unwrap();
            hbm.free(id).unwrap();
        });
    });
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                q.push(SimTime::from_nanos((i * 7919) % 1000), i);
            }
            while let Some(ev) = q.pop() {
                black_box(ev);
            }
        });
    });
}

fn bench_transfer_engine(c: &mut Criterion) {
    c.bench_function("transfer_schedule", |b| {
        let server = ServerTopology::nvswitch(8, GpuSpec::a100_80g());
        let path = server.gpu_to_gpu_path(GpuId(0), GpuId(1)).unwrap();
        let mut eng = TransferEngine::new();
        let mut now = SimTime::ZERO;
        b.iter(|| {
            let t = eng.schedule(&path, TransferPlan::coalesced(1 << 26), now);
            now = t.end;
            black_box(t);
        });
    });
}

fn bench_kv_cache(c: &mut Criterion) {
    c.bench_function("kv_grow_free_seq", |b| {
        let geom = *zoo::mistral_7b().llm_geometry().unwrap();
        let mut kv = PagedKvCache::new(geom, 8 << 30, 16);
        let mut i = 0u64;
        b.iter(|| {
            let id = RequestId(i);
            i += 1;
            kv.grow_seq(id, 512).unwrap();
            kv.grow_seq(id, 1).unwrap();
            black_box(kv.free_seq(id));
        });
    });
}

fn bench_coordinator(c: &mut Criterion) {
    c.bench_function("coordinator_allocate_free", |b| {
        let coord = Coordinator::new();
        let producer = GpuRef::single(GpuId(1));
        let consumer = GpuRef::single(GpuId(0));
        coord.lease(producer, 1 << 40);
        b.iter(|| {
            match coord.allocate(consumer, 1 << 20) {
                aqua_core::coordinator::AllocationSite::Peer { lease, .. } => {
                    coord.free(lease, 1 << 20).unwrap()
                }
                aqua_core::coordinator::AllocationSite::Dram => unreachable!(),
            };
        });
    });
}

fn bench_lora_plans(c: &mut Criterion) {
    c.bench_function("lora_transfer_time", |b| {
        let nv = BandwidthModel::nvlink_a100();
        let adapter = LoraAdapter::zephyr();
        b.iter(|| {
            black_box(nv.transfer_time(adapter.scattered_plan()));
            black_box(nv.transfer_time(adapter.coalesced_plan()));
        });
    });
}

fn bench_placer(c: &mut Criterion) {
    c.bench_function("placer_solve_16gpu_mixed", |b| {
        const GB: u64 = 1 << 30;
        let inst = PlacementInstance::new(
            2,
            8,
            80 * GB,
            (0..5)
                .map(|i| ModelSpec::producer(format!("img{i}"), 50 * GB))
                .chain((0..5).map(|i| ModelSpec::producer(format!("aud{i}"), 60 * GB)))
                .chain((0..6).map(|i| ModelSpec::consumer(format!("llm{i}"), 30 * GB)))
                .collect(),
        );
        b.iter(|| black_box(solve_optimal(&inst)));
    });
    c.bench_function("stable_match_16", |b| {
        const GB: u64 = 1 << 30;
        let models: Vec<ModelSpec> = (0..8)
            .map(|i| ModelSpec::producer(format!("p{i}"), (30 + i) * GB))
            .chain((0..8).map(|i| ModelSpec::consumer(format!("c{i}"), (20 + i) * GB)))
            .collect();
        b.iter(|| black_box(stable_match(&models)));
    });
}

criterion_group!(
    benches,
    bench_allocator,
    bench_event_queue,
    bench_transfer_engine,
    bench_kv_cache,
    bench_coordinator,
    bench_lora_plans,
    bench_placer
);
criterion_main!(benches);
