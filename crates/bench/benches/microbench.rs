//! Criterion microbenchmarks for the hot substrate paths: HBM accounting,
//! the event queue, transfer scheduling, the paged KV cache, coordinator
//! operations, LoRA transfer planning and the placer.
//!
//! The binary also *asserts* (before any benchmark runs, via a counting
//! global allocator) five hot-path guarantees: the untraced
//! transfer-schedule path performs zero heap allocations per transfer — the
//! budget behind Figure 11's sub-5% producer overhead (it allocated up to
//! four strings per transfer before lane interning and the dense
//! `PortStats` table); the placer's catalog DP stays within a small
//! allocation budget per memoised state on a 64-GPU mixed solve; the
//! untraced decode step's only heap traffic is amortized block-table
//! doubling; a driver pre-sized with `Driver::for_expected_events`
//! never re-grows its event arena mid-run; and one gateway admission round
//! does work independent of backlog depth (the incremental scheduler
//! indices, checked for every policy via allocation and key-comparison
//! counters at backlogs of 1,000 vs 10,000).

use aqua_bench::fig14_placer::mixed_instance;
use aqua_core::coordinator::{Coordinator, GpuRef};
use aqua_engines::driver::{Driver, Engine};
use aqua_engines::kvcache::PagedKvCache;
use aqua_engines::request::{InferenceRequest, RequestId};
use aqua_engines::vllm::{VllmConfig, VllmEngine};
use aqua_gateway::engine::{GatewayConfig, GatewayEngine};
use aqua_gateway::scheduler::{sched_comparisons, PolicyKind};
use aqua_models::lora::LoraAdapter;
use aqua_models::zoo;
use aqua_placer::instance::{ModelSpec, PlacementInstance};
use aqua_placer::matching::stable_match;
use aqua_placer::solver::{solve_optimal, solve_optimal_stats};
use aqua_sim::event::EventQueue;
use aqua_sim::gpu::{GpuId, GpuSpec};
use aqua_sim::link::BandwidthModel;
use aqua_sim::memory::{HbmAllocator, RegionKind};
use aqua_sim::time::SimTime;
use aqua_sim::topology::ServerTopology;
use aqua_sim::transfer::{TransferEngine, TransferPlan};
use criterion::{criterion_group, Criterion};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

/// A pass-through allocator that counts every allocation, so the zero-alloc
/// assertion below can observe the schedule hot path directly.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// The untraced schedule path must be allocation-free: one dense-slot
/// update per port, no lane strings, no counter-name formatting, no map
/// rehashing. Warm-up covers the one legitimate allocation (first touch of
/// a GPU's ports grows the dense table); after that, 10k transfers must
/// leave the allocation counter untouched.
fn assert_untraced_schedule_is_allocation_free() {
    let server = ServerTopology::nvswitch(8, GpuSpec::a100_80g());
    let path = server.gpu_to_gpu_path(GpuId(0), GpuId(1)).unwrap();
    let mut eng = TransferEngine::new();
    let mut now = SimTime::ZERO;
    for _ in 0..64 {
        now = eng
            .schedule(&path, TransferPlan::coalesced(1 << 26), now)
            .end;
    }
    const TRANSFERS: u64 = 10_000;
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..TRANSFERS {
        now = eng
            .schedule(&path, TransferPlan::coalesced(1 << 26), now)
            .end;
    }
    let allocs = ALLOCATIONS.load(Ordering::SeqCst) - before;
    assert_eq!(
        allocs, 0,
        "untraced schedule path made {allocs} allocations over {TRANSFERS} transfers \
         (it allocated up to 4 strings per transfer before lane interning)"
    );
    black_box(&eng);
    eprintln!(
        "microbench: untraced transfer-schedule path: 0 allocations over {TRANSFERS} transfers"
    );
}

/// The catalog-DP solver must stay allocation-lean: memoised frontiers are
/// the only per-state heap traffic (one `Rc<[Pair]>` plus occasional map
/// rehash/scratch growth), so a 64-GPU mixed solve is capped at a small
/// constant per DP state plus fixed slack for the catalog, greedy incumbent
/// and model grouping. The pre-catalog solver allocated a fresh candidate
/// `Vec` per *expansion* — orders of magnitude above this bound.
fn assert_placer_solve_allocation_bounded() {
    let inst = mixed_instance(64);
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let (placement, stats) = solve_optimal_stats(&inst);
    let allocs = ALLOCATIONS.load(Ordering::SeqCst) - before;
    placement.validate(&inst).unwrap();
    let cap = 8 * stats.dp_states as u64 + 1024;
    assert!(
        allocs <= cap,
        "placer 64-GPU mixed solve made {allocs} allocations for {} DP states \
         (cap {cap}: 8/state + 1024 slack)",
        stats.dp_states
    );
    black_box(&placement);
    eprintln!(
        "microbench: placer 64-GPU mixed solve: {allocs} allocations over {} DP states (cap {cap})",
        stats.dp_states
    );
}

/// The decode hot path must be allocation-lean: with an untraced engine
/// (gauges short-circuit), no offloader and no completions in flight, a
/// steady-state decode step touches only the SoA sequence arrays, the paged
/// KV free-list watermark and the dense gauge cache — its sole legitimate
/// heap traffic is the amortized doubling of a sequence's block table as it
/// crosses block boundaries (≤ log₂(blocks) reallocations per sequence over
/// its whole life). Before the SoA/arena rework this path allocated per
/// step via per-sequence map churn and gauge-name formatting.
fn assert_untraced_decode_step_is_allocation_lean() {
    const SEQS: u64 = 8;
    const STEPS: u64 = 512;
    // Amortized block-table doubling is the only budgeted traffic.
    const CAP: u64 = SEQS * 6;
    let geom = *zoo::mistral_7b().llm_geometry().unwrap();
    let mut e = VllmEngine::new(geom, GpuSpec::a100_80g(), VllmConfig::default());
    for i in 0..SEQS {
        // Output far beyond the measured window, so nothing completes and
        // the completion-record path stays cold.
        e.submit(InferenceRequest::text(i, 128, 1 << 20), SimTime::ZERO);
    }
    let mut now = SimTime::ZERO;
    for _ in 0..64 {
        now = e.step(now); // warm-up: admission, first KV blocks, batch growth
    }
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..STEPS {
        now = e.step(now);
    }
    let allocs = ALLOCATIONS.load(Ordering::SeqCst) - before;
    assert!(
        allocs <= CAP,
        "untraced decode step made {allocs} allocations over {STEPS} steps x {SEQS} seqs \
         (cap {CAP}: amortized block-table doubling only)"
    );
    black_box(&e);
    eprintln!(
        "microbench: untraced decode hot path: {allocs} allocations over {STEPS} steps \
         x {SEQS} seqs (cap {CAP})"
    );
}

/// A driver pre-sized with [`Driver::for_expected_events`] must finish its
/// whole trace without re-growing the event arena: the capacity observed
/// before the run is the capacity after it. This is the regression gate for
/// the `EventQueue::reserve` / `with_event_capacity` plumbing that lets the
/// figure harnesses pre-size from the workload's expected event count.
fn assert_presized_driver_never_regrows() {
    const REQUESTS: usize = 2_000;
    let geom = *zoo::mistral_7b().llm_geometry().unwrap();
    let mut e = VllmEngine::new(geom, GpuSpec::a100_80g(), VllmConfig::default());
    let mut driver = Driver::for_expected_events(REQUESTS + 1);
    driver.schedule_trace(
        0,
        (0..REQUESTS).map(|i| {
            let at = SimTime::from_nanos(i as u64 * 50_000_000);
            (at, InferenceRequest::text(i as u64, 64, 8))
        }),
    );
    let cap = driver.event_capacity();
    // Far past the trace span (100 s of arrivals) — the driver idle-ticks
    // to the horizon, so `SimTime::MAX` would never return.
    driver.run(&mut [&mut e], SimTime::from_secs(1_000));
    assert!(
        driver.next_event_time().is_none(),
        "trace must drain inside the horizon"
    );
    assert_eq!(
        driver.event_capacity(),
        cap,
        "pre-sized driver re-grew its event arena mid-run \
         ({cap} -> {} slots)",
        driver.event_capacity()
    );
    assert!(
        driver.processed_events() > REQUESTS as u64,
        "trace must actually run ({} events)",
        driver.processed_events()
    );
    eprintln!(
        "microbench: pre-sized driver ran {} events in a fixed {cap}-slot arena",
        driver.processed_events()
    );
}

/// One gateway `step()` (an admission round of `max_batch` picks plus a
/// decode iteration) with `backlog` queued requests: returns the heap
/// allocations and scheduler key comparisons it performed.
fn gateway_admit_work(policy: PolicyKind, backlog: u64) -> (u64, u64) {
    let geom = *zoo::mistral_7b().llm_geometry().unwrap();
    let mut e = GatewayEngine::new(
        geom,
        GpuSpec::a100_80g(),
        policy,
        GatewayConfig {
            max_batch: 8,
            max_outstanding_per_tenant: 1_000_000,
            ..GatewayConfig::default()
        },
    );
    // Nanosecond-spaced arrivals: distinct tie-breaker keys, but a span far
    // below the 60 s aging threshold so no promotions land mid-measure.
    for i in 0..backlog {
        e.submit(InferenceRequest::text(i, 100, 8), SimTime::from_nanos(i));
    }
    let allocs_before = ALLOCATIONS.load(Ordering::SeqCst);
    let comps_before = sched_comparisons();
    black_box(e.step(SimTime::from_millis(1)));
    let allocs = ALLOCATIONS.load(Ordering::SeqCst) - allocs_before;
    let comps = sched_comparisons() - comps_before;
    black_box(&e);
    (allocs, comps)
}

/// Gateway admission must be backlog-independent: the incremental scheduler
/// indices make one admission round cost O(batch · log backlog) — never a
/// scan or sort of the whole queue. One `step()` at a backlog of 10,000 may
/// not allocate more than the same step at 1,000 (plus fixed slack), and
/// its scheduler-key comparisons may at most double (tree depth grows by
/// log₁₀, nowhere near the 10× a backlog-linear walk would show). Before
/// the index rework, `admit()` cloned and sorted every eligible entry per
/// iteration — ~10⁵ comparisons and thousands of allocations at this depth.
fn assert_gateway_admit_is_backlog_independent() {
    for policy in PolicyKind::ALL {
        let (allocs_small, comps_small) = gateway_admit_work(policy, 1_000);
        let (allocs_big, comps_big) = gateway_admit_work(policy, 10_000);
        let alloc_cap = allocs_small + 64;
        assert!(
            allocs_big <= alloc_cap,
            "{policy}: admit at backlog 10k made {allocs_big} allocations \
             vs {allocs_small} at 1k (cap {alloc_cap}) — backlog-dependent work",
        );
        let comp_cap = 2 * comps_small + 256;
        assert!(
            comps_big <= comp_cap,
            "{policy}: admit at backlog 10k made {comps_big} key comparisons \
             vs {comps_small} at 1k (cap {comp_cap}) — backlog-dependent work",
        );
        eprintln!(
            "microbench: gateway admit [{policy}]: backlog 1k -> 10k: \
             {allocs_small} -> {allocs_big} allocations, \
             {comps_small} -> {comps_big} key comparisons"
        );
    }
}

fn bench_allocator(c: &mut Criterion) {
    c.bench_function("hbm_alloc_free", |b| {
        let mut hbm = HbmAllocator::new(80 << 30);
        b.iter(|| {
            let id = hbm.alloc(RegionKind::KvCache, black_box(1 << 20)).unwrap();
            hbm.free(id).unwrap();
        });
    });
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                q.push(SimTime::from_nanos((i * 7919) % 1000), i);
            }
            while let Some(ev) = q.pop() {
                black_box(ev);
            }
        });
    });
    c.bench_function("event_queue_push_pop_1k_prealloc", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(1000);
            for i in 0..1000u64 {
                q.push(SimTime::from_nanos((i * 7919) % 1000), i);
            }
            while let Some(ev) = q.pop() {
                black_box(ev);
            }
        });
    });
}

fn bench_transfer_engine(c: &mut Criterion) {
    c.bench_function("transfer_schedule", |b| {
        let server = ServerTopology::nvswitch(8, GpuSpec::a100_80g());
        let path = server.gpu_to_gpu_path(GpuId(0), GpuId(1)).unwrap();
        let mut eng = TransferEngine::new();
        let mut now = SimTime::ZERO;
        b.iter(|| {
            let t = eng.schedule(&path, TransferPlan::coalesced(1 << 26), now);
            now = t.end;
            black_box(t);
        });
    });
}

fn bench_kv_cache(c: &mut Criterion) {
    c.bench_function("kv_grow_free_seq", |b| {
        let geom = *zoo::mistral_7b().llm_geometry().unwrap();
        let mut kv = PagedKvCache::new(geom, 8 << 30, 16);
        let mut i = 0u64;
        b.iter(|| {
            let id = RequestId(i);
            i += 1;
            kv.grow_seq(id, 512).unwrap();
            kv.grow_seq(id, 1).unwrap();
            black_box(kv.free_seq(id));
        });
    });
}

fn bench_coordinator(c: &mut Criterion) {
    c.bench_function("coordinator_allocate_free", |b| {
        let coord = Coordinator::new();
        let producer = GpuRef::single(GpuId(1));
        let consumer = GpuRef::single(GpuId(0));
        coord.lease(producer, 1 << 40);
        b.iter(|| {
            match coord.allocate(consumer, 1 << 20) {
                aqua_core::coordinator::AllocationSite::Peer { lease, .. } => {
                    coord.free(lease, 1 << 20).unwrap()
                }
                aqua_core::coordinator::AllocationSite::Dram => unreachable!(),
            };
        });
    });
}

fn bench_lora_plans(c: &mut Criterion) {
    c.bench_function("lora_transfer_time", |b| {
        let nv = BandwidthModel::nvlink_a100();
        let adapter = LoraAdapter::zephyr();
        b.iter(|| {
            black_box(nv.transfer_time(adapter.scattered_plan()));
            black_box(nv.transfer_time(adapter.coalesced_plan()));
        });
    });
}

fn bench_placer(c: &mut Criterion) {
    c.bench_function("placer_solve_16gpu_mixed", |b| {
        const GB: u64 = 1 << 30;
        let inst = PlacementInstance::new(
            2,
            8,
            80 * GB,
            (0..5)
                .map(|i| ModelSpec::producer(format!("img{i}"), 50 * GB))
                .chain((0..5).map(|i| ModelSpec::producer(format!("aud{i}"), 60 * GB)))
                .chain((0..6).map(|i| ModelSpec::consumer(format!("llm{i}"), 30 * GB)))
                .collect(),
        );
        b.iter(|| black_box(solve_optimal(&inst)));
    });
    c.bench_function("placer_solve_64gpu_mixed", |b| {
        let inst = mixed_instance(64);
        b.iter(|| black_box(solve_optimal(&inst)));
    });
    c.bench_function("stable_match_16", |b| {
        const GB: u64 = 1 << 30;
        let models: Vec<ModelSpec> = (0..8)
            .map(|i| ModelSpec::producer(format!("p{i}"), (30 + i) * GB))
            .chain((0..8).map(|i| ModelSpec::consumer(format!("c{i}"), (20 + i) * GB)))
            .collect();
        b.iter(|| black_box(stable_match(&models)));
    });
}

criterion_group!(
    benches,
    bench_allocator,
    bench_event_queue,
    bench_transfer_engine,
    bench_kv_cache,
    bench_coordinator,
    bench_lora_plans,
    bench_placer
);

fn main() {
    // The hot-path guarantees are checked unconditionally, so a regression
    // fails `cargo bench --bench microbench` even before timing starts.
    assert_untraced_schedule_is_allocation_free();
    assert_placer_solve_allocation_bounded();
    assert_untraced_decode_step_is_allocation_lean();
    assert_presized_driver_never_regrows();
    assert_gateway_admit_is_backlog_independent();
    benches();
}
