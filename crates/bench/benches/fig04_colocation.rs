//! Regenerates Figure 4: the placement-matters illustration, scored under
//! Equation 5 and executed end to end.

use aqua_bench::fig04_colocation::{run, table};

fn main() {
    let window = 120;
    let result = run(window);
    println!("{}", table(&result, window));
    println!("Paper: colocation gives LLMs reachable spare HBM; segregation strands them.");
    aqua_bench::trace::finish();
}
