//! Regenerates Figure 8: sorted LoRA RCTs on Mistral-7B with 30 × 320 MB
//! adapters and a 10-slot GPU cache (AQUA up to 1.8× better).

use aqua_bench::fig08_lora::{run, table};

fn main() {
    // 8a (image producer lease) and 8b (LLM producer lease) share the data
    // path; the run below is the canonical instance.
    for (label, seed) in [
        ("AQUA-0 (vs SD/SD-XL server)", 7u64),
        ("AQUA-1 (vs Llama-2-13B server)", 8),
    ] {
        let result = run(2.0, 300, seed);
        println!("[{label}]");
        println!("{}", table(&result));
        println!(
            "p50 improvement: {:.2}x (paper: up to 1.8x)\n",
            result.p50_improvement()
        );
    }
    aqua_bench::trace::finish();
}
