//! Prints Tables 1–3 (the evaluation's model/workload inventory) plus the
//! derived model-geometry inventory they rest on.

use aqua_bench::tables_registry::{model_inventory, table1, table2, table3};

fn main() {
    println!("{}", table1());
    println!("{}", table2());
    println!("{}", table3());
    println!("{}", model_inventory());
}
