//! Regenerates Figure 9: CFS responsiveness at 2 and 5 req/s
//! (Codellama-34B consumer + Kandinsky producer, 2-GPU server).

use aqua_bench::fig09_cfs::{run, table, CfsExperiment};

fn main() {
    for rate in [2.0, 5.0] {
        let cfg = CfsExperiment::figure9(rate, 300, 3);
        let r = run(&cfg);
        println!(
            "{}",
            table(&r, &format!("Figure 9: CFS workload at {rate} requests/s"))
        );
        println!(
            "TTFT p90 improvement (vllm/aqua): {:.2}x (paper: ~4x at 5 req/s)",
            r.ttft_improvement()
        );
        println!(
            "CFS-over-DRAM RCT overhead vs AQUA: {:.2}x (paper: ~2x)\n",
            r.cfs_dram_rct_overhead()
        );
    }
    aqua_bench::trace::finish();
}
