//! Regenerates Figure 12: AQUA's benefit vs offloaded tensor size
//! (200 adapters of 160 MB and 320 MB, 10 req/s, 10 GB adapter cache).

use aqua_bench::fig12_tensor_size::{paper_sizes, run, table};

fn main() {
    let results: Vec<_> = paper_sizes()
        .iter()
        .map(|&bytes| run(bytes, 200, 10.0, 21))
        .collect();
    println!("{}", table(&results));
    println!("Paper: the larger adapter benefits more from AQUA.");
    aqua_bench::trace::finish();
}
