//! Regenerates Figures 10 and 11: elastic donation/reclaim between a
//! Llama-2-13B producer and an OPT-30B long-prompt consumer.

use aqua_bench::fig10_elasticity::{producer_table, run, run_producer_baseline, table, Timeline};

fn main() {
    let tl = Timeline::default();
    let result = run(&tl, 10, 11);
    println!("{}", table(&result));
    println!(
        "Consumer generated {} tokens over the {}s window.",
        result.consumer_tokens, tl.end
    );
    let baseline = run_producer_baseline(&tl, 11);
    println!("{}", producer_table(&result.producer_log, &baseline));
    println!("Paper shape: free memory drops to the 5 GB retain floor while quiet,");
    println!("snaps back on the 5 req/s burst; consumer throughput dips during the");
    println!("reclaim and recovers once memory is re-donated (Fig 10). Producer RCTs");
    println!("track the baseline except the reclaim pause (Fig 11).");
    aqua_bench::trace::finish();
}
