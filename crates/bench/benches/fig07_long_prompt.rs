//! Regenerates Figure 7: tokens generated in ten minutes on a single
//! 8,000-token prompt (OPT-30B) — FlexGen-over-DRAM vs AQUA.

use aqua_bench::fig07_long_prompt::{run, table};

fn main() {
    let window = 600; // the paper's ten-minute window
    let result = run(window);
    println!("{}", table(&result, window));
    println!(
        "Paper: AQUA generates 6x more tokens; measured {:.2}x.",
        result.speedup()
    );
    aqua_bench::trace::finish();
}
