//! Regenerates Figure 13 / §8: closed-loop chatbot, 25 users, 4 turns
//! (Codellama-34B + Kandinsky).

use aqua_bench::fig13_chatbot::{run, table};

fn main() {
    let result = run(25, 4, 31);
    println!("{}", table(&result));
    println!("Paper shape: saw-tooth per turn; CFS-over-DRAM inflates RCT,");
    println!("AQUA stays close to vLLM while keeping CFS responsiveness.");
    aqua_bench::trace::finish();
}
