//! Regenerates Figure 3b: producer throughput with memory donated (S)
//! vs isolated (I) — sharing costs the producer < 5%.

use aqua_bench::fig03_links::{run_sharing, sharing_table};

fn main() {
    println!("{}", sharing_table(&run_sharing(10)));
    println!("Paper anchor: donating memory costs every producer < 5% throughput.");
    aqua_bench::trace::finish();
}
