//! Regenerates §A.2: the one-hour LoRA workload (Mistral-7B, 320 MB
//! adapters, 2 req/s). Paper: AQUA improves p50 RCT by 2x and p95 by 1.7x.

use aqua_bench::fig08_lora::run;
use aqua_metrics::table::Table;

fn main() {
    // 2 req/s for one simulated hour = 7,200 requests.
    let result = run(2.0, 7_200, 99);
    let mut t = Table::new(
        "Appendix A.2: 1-hour LoRA workload (Mistral-7B, 320 MB adapters, 2 req/s)",
        &["system", "n", "rct_p50_s", "rct_p95_s"],
    );
    for (name, log) in &result.systems {
        let s = log.rct_summary();
        t.row(&[
            name.clone(),
            log.len().to_string(),
            format!("{:.3}", s.p50),
            format!("{:.3}", s.p95),
        ]);
    }
    println!("{t}");
    let b = result.log_of("baseline").rct_summary();
    let a = result.log_of("aqua").rct_summary();
    println!(
        "p50 improvement {:.2}x (paper 2x); p95 improvement {:.2}x (paper 1.7x)",
        b.p50 / a.p50,
        b.p95 / a.p95
    );
    aqua_bench::trace::finish();
}
