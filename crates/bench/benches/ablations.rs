//! Ablation benches for the design choices DESIGN.md calls out:
//! coalescing, CFS slice length, producer sharing, reclaim threshold.

use aqua_bench::ablations::{
    cfs_slice_table, coalescing_table, lora_skew_table, preemption_table, producer_sharing_table,
    reclaim_threshold_table,
};
use aqua_bench::fig10_elasticity::Timeline;

fn main() {
    println!("{}", coalescing_table());
    println!("{}", cfs_slice_table(&[2, 4, 8, 16, 32], 120, 9));
    println!("{}", producer_sharing_table(120));
    println!(
        "{}",
        reclaim_threshold_table(&[2, 4, 8, 16, 32], &Timeline::default(), 3)
    );
    println!("{}", preemption_table(200, 3));
    println!("{}", lora_skew_table(&[0.0, 0.5, 1.0, 1.5, 2.0], 200, 11));
    aqua_bench::trace::finish();
}
