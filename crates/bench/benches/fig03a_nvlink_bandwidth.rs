//! Regenerates Figure 3a: NVLink effective bandwidth vs buffer size
//! between two A100s, against the PCIe curve.

use aqua_bench::fig03_links::{bandwidth_table, default_sizes, run_bandwidth};

fn main() {
    println!("{}", bandwidth_table(&run_bandwidth(&default_sizes())));
    println!("Paper anchors: ~100 GB/s at 2 MB, ~250 GB/s peak, ~10x PCIe at large buffers.");
    aqua_bench::trace::finish();
}
