//! Chaos run: the Figure 10 testbed with the producer GPU crashing at
//! t=300s and returning at t=420s, heartbeat-TTL lease expiry, DRAM
//! failover, and recovery once the producer re-donates.

use aqua_bench::chaos_degradation::{run, summary_table, table, ChaosTimeline};

fn main() {
    let tl = ChaosTimeline::default();
    let report = run(&tl, 10);
    println!("{}", table(&report));
    println!("{}", summary_table(&report));
    println!(
        "Consumer generated {} tokens over the {}s window.",
        report.chaos.consumer_tokens, tl.end
    );
    println!("Expected shape: fabric-rate throughput until the crash at");
    println!(
        "t={}s; the lease expires on missed heartbeats, the offloader",
        tl.crash_start
    );
    println!("re-materialises the stranded context into DRAM and runs degraded");
    println!("(within 2x of the FlexGen DRAM baseline); after the producer");
    println!(
        "returns at t={}s it re-donates and throughput recovers to",
        tl.crash_end
    );
    println!(">= 90% of the pre-fault rate. Zero requests are lost.");
    aqua_bench::trace::finish();
}
