//! Regenerates §6.1: the end-to-end cluster evaluation — 8 servers × 2
//! GPUs hosting 16 models (balanced and LLM-heavy splits), placed by
//! AQUA-PLACER, each consumer executed with and without AQUA.

use aqua_bench::e2e_cluster::{run, tables, Split};

fn main() {
    for split in [Split::Balanced, Split::LlmHeavy] {
        let result = run(split, 120, 17);
        let (placement, outcomes) = tables(&result);
        println!("{placement}");
        println!("{outcomes}");
    }
    println!("Paper: OPT-30B consumers generate ~6x more tokens; LoRA RCTs improve");
    println!("up to 1.8x; CFS consumers keep low TTFT — on both splits.");
    aqua_bench::trace::finish();
}
