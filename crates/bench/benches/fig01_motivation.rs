//! Regenerates Figure 1: TTFT/RCT of vLLM vs vLLM+CFS(DRAM) vs AQUA at
//! 5 req/s on a memory-constrained LLM GPU.

use aqua_bench::fig01_motivation::{run, table};

fn main() {
    let result = run(5.0, 300, 42);
    println!("{}", table(&result));
    println!("Paper shape: vLLM TTFT spikes once the pool fills (~20 in-flight");
    println!("contexts); CFS fixes TTFT but pays RCT over PCIe; AQUA keeps both low.");
    aqua_bench::trace::finish();
}
