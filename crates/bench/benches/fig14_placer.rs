//! Regenerates Figure 14 / §A.1: AQUA-PLACER convergence time on clusters
//! of 16 to 256 GPUs (8-GPU servers), mixed-modality vs mixed+LoRA vs
//! LLM-only inputs.

use aqua_bench::fig14_placer::{run, table, EXTENDED_GPU_COUNTS};

fn main() {
    let points = run(&EXTENDED_GPU_COUNTS);
    println!("{}", table(&points));
    println!("Paper shape: mixed-modality inputs take tens of seconds at 128 GPUs");
    println!("(more model types => larger search space); 50/50 LLM inputs stay");
    println!("under a second. The catalog DP with incumbent pruning extends the");
    println!("sweep to 256 GPUs and a 4-type mixed+LoRA input.");
    aqua_bench::trace::finish();
}
