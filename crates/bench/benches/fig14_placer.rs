//! Regenerates Figure 14 / §A.1: AQUA-PLACER convergence time on clusters
//! of 16 to 128 GPUs (8-GPU servers), mixed-modality vs LLM-only inputs.

use aqua_bench::fig14_placer::{run, table};

fn main() {
    let points = run(&[16, 32, 64, 96, 128]);
    println!("{}", table(&points));
    println!("Paper shape: mixed-modality inputs take tens of seconds at 128 GPUs");
    println!("(more model types => larger search space); 50/50 LLM inputs stay");
    println!("under a second.");
    aqua_bench::trace::finish();
}
