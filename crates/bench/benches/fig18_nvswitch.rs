//! Regenerates Figure 18: 4 long-prompt consumers + 4 producers stressing
//! the NVSwitch; every consumer should sustain the 2-GPU throughput.

use aqua_bench::fig18_nvswitch::{run, table};

fn main() {
    let window = 600;
    let result = run(window);
    println!("{}", table(&result, window));
    println!(
        "Worst consumer at {:.2}x of the 2-GPU reference (paper: parity).",
        result.worst_relative()
    );
    aqua_bench::trace::finish();
}
