//! Regenerates Figures 15–17: the CFS experiment on the 8-GPU NVSwitch
//! server with different producers (Mistral LLM producer — Fig 15;
//! StableDiffusion — Fig 16; SD-XL + AudioGen — Fig 17).

use aqua_bench::fig09_cfs::{run, table, CfsExperiment, ProducerChoice};

fn main() {
    let producers = [
        (
            "Figure 15: CFS next to a Mistral-7B LLM producer",
            ProducerChoice::MistralLlm,
        ),
        (
            "Figure 16: CFS next to StableDiffusion",
            ProducerChoice::StableDiffusion,
        ),
        (
            "Figure 17: CFS next to SD-XL + AudioGen",
            ProducerChoice::SdxlAndAudiogen,
        ),
    ];
    for (title, producer) in producers {
        for rate in [2.0, 5.0] {
            let cfg = CfsExperiment {
                eight_gpu: true,
                producer,
                ..CfsExperiment::figure9(rate, 200, 5)
            };
            let r = run(&cfg);
            println!(
                "{}",
                table(&r, &format!("{title} ({rate} req/s, 8-GPU NVSwitch)"))
            );
        }
    }
    println!("Paper: performance improvements mirror Figure 9 on the switched fabric.");
    aqua_bench::trace::finish();
}
