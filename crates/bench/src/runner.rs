//! Experiment → sweep-point decomposition for `aqua-repro` and `ci.sh`.
//!
//! Every experiment in the paper's evaluation is a list of independent
//! [`ReproPoint`]s — a labelled closure that runs one simulation point and
//! returns its rendered tables. The heavy modules own their decomposition
//! (`fig09_cfs::repro_points` yields one point per request rate,
//! `ablations::repro_points` one per study, …); this module assembles the
//! per-experiment lists, fans them across a [`Sweep`], and stitches the
//! results — **in input order** — back into the exact output a sequential
//! run would print. `aqua-repro all --jobs 8` is therefore byte-identical
//! to `--jobs 1`, and [`SuiteOutcome::combined_digest`] proves the
//! underlying simulations were too.

use crate::sweep::{Sweep, SweepResult};
use std::time::Duration;

/// Shared experiment parameters (the `--window/--seed/--count` flags).
#[derive(Debug, Clone, Copy)]
pub struct ReproArgs {
    /// Simulated window in seconds for windowed experiments.
    pub window: u64,
    /// RNG seed for trace generation.
    pub seed: u64,
    /// Request count for request-driven experiments.
    pub count: usize,
    /// PDES lane threads for sharded scenarios (`--lanes`; scale_cluster).
    /// Lane count never changes output or digests — only wall time.
    pub lanes: usize,
}

impl Default for ReproArgs {
    fn default() -> Self {
        ReproArgs {
            window: 120,
            seed: 42,
            count: 200,
            lanes: 1,
        }
    }
}

/// One independent unit of evaluation work: runs a single simulation point
/// and returns its rendered output.
pub struct ReproPoint {
    experiment: &'static str,
    label: String,
    cost_hint: u64,
    run: Box<dyn Fn() -> String + Send + Sync>,
}

impl ReproPoint {
    /// Wraps `run` as the point `label` of `experiment`.
    pub fn new(
        experiment: &'static str,
        label: impl Into<String>,
        run: impl Fn() -> String + Send + Sync + 'static,
    ) -> Self {
        ReproPoint {
            experiment,
            label: label.into(),
            cost_hint: 1,
            run: Box::new(run),
        }
    }

    /// Sets the point's relative cost hint (arbitrary units; default 1).
    /// The parallel runner claims heavy points first so one long solve
    /// doesn't become the tail of the schedule.
    pub fn with_cost_hint(mut self, cost_hint: u64) -> Self {
        self.cost_hint = cost_hint.max(1);
        self
    }

    /// The point's relative cost hint.
    pub fn cost_hint(&self) -> u64 {
        self.cost_hint
    }

    /// The experiment this point belongs to (`fig09`, `ablations`, …).
    pub fn experiment(&self) -> &'static str {
        self.experiment
    }

    /// The point's label within its experiment (`rate=2`, `cfs-slice`, …).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Runs the point, returning its rendered tables.
    pub fn render(&self) -> String {
        (self.run)()
    }
}

impl std::fmt::Debug for ReproPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReproPoint")
            .field("experiment", &self.experiment)
            .field("label", &self.label)
            .finish_non_exhaustive()
    }
}

/// `(name, description)` of every experiment, in `aqua-repro all` order.
pub const EXPERIMENTS: &[(&str, &str)] = &[
    ("fig01", "motivation: vLLM vs CFS vs AQUA TTFT/RCT"),
    ("fig02", "throughput vs batch vs free memory per modality"),
    ("fig03", "NVLink bandwidth curve + sharing impact"),
    ("fig04", "placement matters (Eq. 5 + execution)"),
    ("fig07", "long-prompt tokens: DeepSpeed/FlexGen/AQUA"),
    ("fig08", "LoRA adapter RCTs"),
    ("fig09", "CFS responsiveness at 2 and 5 req/s"),
    ("fig10", "elastic donate/reclaim timeline"),
    ("fig11", "producer RCT overhead of donating via AQUA"),
    ("fig12", "benefit vs offloaded tensor size"),
    ("fig13", "multi-turn chatbot saw-tooth"),
    ("fig14", "placer convergence time"),
    ("fig18", "NVSwitch stress: 4 consumers + 4 producers"),
    (
        "chaos",
        "producer crash at t=300s: degrade to DRAM, recover",
    ),
    ("e2e", "section 6.1 cluster evaluation (both splits)"),
    (
        "serve",
        "gateway scheduler zoo: TTFT/ITL SLOs, offload on/off",
    ),
    (
        "serve_chaos",
        "goodput under 1-4x overload + crash recovery, protected vs fcfs",
    ),
    (
        "coord_chaos",
        "coordinator crash/partition: epoch-fenced lease recovery under serving",
    ),
    (
        "scale_cluster",
        "256-1024 GPU domain through sharded PDES lanes + coordinator heartbeats",
    ),
    ("tables", "Tables 1-3 and the model inventory"),
    ("ablations", "all ablation studies"),
];

/// The sweep-point decomposition of one experiment.
pub fn experiment_points(name: &str, a: &ReproArgs) -> Result<Vec<ReproPoint>, String> {
    let a = *a;
    let points = match name {
        "fig01" => vec![ReproPoint::new("fig01", "rate=5", move || {
            let r = crate::fig01_motivation::run(5.0, a.count, a.seed);
            format!("{}\n", crate::fig01_motivation::table(&r))
        })],
        "fig02" => crate::fig02_contention::repro_points(&a),
        "fig03" => vec![
            ReproPoint::new("fig03", "bandwidth", move || {
                format!(
                    "{}\n",
                    crate::fig03_links::bandwidth_table(&crate::fig03_links::run_bandwidth(
                        &crate::fig03_links::default_sizes()
                    ))
                )
            }),
            ReproPoint::new("fig03", "sharing", move || {
                format!(
                    "{}\n",
                    crate::fig03_links::sharing_table(&crate::fig03_links::run_sharing(5))
                )
            }),
        ],
        "fig04" => vec![ReproPoint::new("fig04", "colocation", move || {
            let r = crate::fig04_colocation::run(a.window);
            format!("{}\n", crate::fig04_colocation::table(&r, a.window))
        })],
        "fig07" => crate::fig07_long_prompt::repro_points(&a),
        "fig08" => vec![ReproPoint::new("fig08", "rate=2", move || {
            let r = crate::fig08_lora::run(2.0, a.count, a.seed);
            format!("{}\n", crate::fig08_lora::table(&r))
        })],
        "fig09" => crate::fig09_cfs::repro_points(&a),
        "fig10" => vec![ReproPoint::new("fig10", "timeline", move || {
            let tl = crate::fig10_elasticity::Timeline::default();
            let r = crate::fig10_elasticity::run(&tl, 10, a.seed);
            let baseline = crate::fig10_elasticity::run_producer_baseline(&tl, a.seed);
            format!(
                "{}\n{}\n",
                crate::fig10_elasticity::table(&r),
                crate::fig10_elasticity::producer_table(&r.producer_log, &baseline)
            )
        })
        .with_cost_hint(15)],
        "fig11" => vec![ReproPoint::new("fig11", "overhead", move || {
            let tl = crate::fig10_elasticity::Timeline::default();
            let r = crate::fig11_producer_overhead::run_overhead(&tl, 10, a.seed);
            format!(
                "{}\nmedian overhead: {:.2}x\n",
                crate::fig11_producer_overhead::table(&r),
                r.median_overhead()
            )
        })
        .with_cost_hint(15)],
        "fig12" => crate::fig12_tensor_size::repro_points(&a),
        "fig13" => vec![ReproPoint::new("fig13", "chatbot", move || {
            let r = crate::fig13_chatbot::run(25, 4, a.seed);
            format!("{}\n", crate::fig13_chatbot::table(&r))
        })],
        "fig14" => crate::fig14_placer::repro_points(&a),
        "fig18" => crate::fig18_nvswitch::repro_points(&a),
        "chaos" => crate::chaos_degradation::repro_points(&a),
        "e2e" => crate::e2e_cluster::repro_points(&a),
        "serve" => crate::serve_schedulers::repro_points(&a),
        "serve_chaos" => crate::serve_chaos::repro_points(&a),
        "coord_chaos" => crate::coord_chaos::repro_points(&a),
        "scale_cluster" => crate::scale_cluster::repro_points(&a),
        "tables" => vec![ReproPoint::new("tables", "registry", move || {
            format!(
                "{}\n{}\n{}\n{}\n",
                crate::tables_registry::table1(),
                crate::tables_registry::table2(),
                crate::tables_registry::table3(),
                crate::tables_registry::model_inventory()
            )
        })],
        "ablations" => crate::ablations::repro_points(&a),
        other => return Err(format!("unknown experiment `{other}` (try `list`)")),
    };
    Ok(points)
}

/// Per-experiment wall accounting within a suite run.
#[derive(Debug, Clone)]
pub struct ExperimentWall {
    /// Experiment name.
    pub name: &'static str,
    /// Number of sweep points the experiment decomposed into.
    pub points: usize,
    /// Sum of the experiment's per-point walls (worker-thread time).
    pub wall: Duration,
}

/// A completed suite run: the printable output plus determinism and timing
/// evidence.
#[derive(Debug, Clone)]
pub struct SuiteOutcome {
    /// Rendered output in experiment order (headers + tables), identical
    /// for every job count.
    pub output: String,
    /// Order-independent combined determinism digest of every point.
    pub combined_digest: u64,
    /// Total trace events folded into the digest.
    pub total_events: usize,
    /// Wall time of the whole suite (slowest worker, not sum of points).
    pub wall: Duration,
    /// Worker threads actually used.
    pub jobs: usize,
    /// Per-experiment point counts and summed point walls.
    pub experiments: Vec<ExperimentWall>,
}

/// Runs `names` through the sweep with `jobs` workers and stitches the
/// outputs back in input order. `headers` controls the
/// `################ fig09 ################` banners that `aqua-repro all`
/// prints between experiments. `passthrough` routes events to the ambient
/// `AQUA_TRACE` journal instead of per-point digests (forcing jobs=1).
pub fn run_suite(
    names: &[&str],
    a: &ReproArgs,
    jobs: usize,
    headers: bool,
    passthrough: bool,
) -> Result<SuiteOutcome, String> {
    let mut points: Vec<ReproPoint> = Vec::new();
    for name in names {
        points.extend(experiment_points(name, a)?);
    }
    let sweep = if passthrough {
        Sweep::new().passthrough()
    } else {
        Sweep::new().jobs(jobs)
    };
    let result: SweepResult<String> =
        sweep.run_weighted(&points, |p| p.cost_hint(), |p| p.render());
    warn_on_stale_cost_hints(&points, &result);

    let combined_digest = result.combined_digest();
    let total_events = result.total_events();
    let mut output = String::new();
    let mut experiments: Vec<ExperimentWall> = Vec::new();
    for (point, done) in points.iter().zip(result.points.iter()) {
        match experiments.last_mut() {
            Some(e) if e.name == point.experiment() => {
                e.points += 1;
                e.wall += done.wall;
            }
            _ => {
                if headers {
                    output.push_str(&format!(
                        "\n################ {} ################\n",
                        point.experiment()
                    ));
                }
                experiments.push(ExperimentWall {
                    name: point.experiment(),
                    points: 1,
                    wall: done.wall,
                });
            }
        }
        output.push_str(&done.result);
    }
    Ok(SuiteOutcome {
        output,
        combined_digest,
        total_events,
        wall: result.wall,
        jobs: result.jobs,
        experiments,
    })
}

/// How far a point's measured wall-per-hint-unit may drift from the suite
/// median before [`run_suite`] flags its cost hint as stale.
const COST_HINT_DEVIATION: f64 = 4.0;

/// Points whose wall is below this are never flagged — at sub-50ms scale
/// the "deviation" is scheduler noise, not a stale hint.
const COST_HINT_MIN_WALL: Duration = Duration::from_millis(50);

/// Compares each point's measured wall against its cost hint and warns (on
/// stderr, so stdout stays byte-identical) when a point's seconds-per-hint
/// rate deviates more than [`COST_HINT_DEVIATION`]× from the suite median.
/// A flagged point means the hint no longer reflects the work — the
/// longest-processing-time-first schedule will mispack it.
fn warn_on_stale_cost_hints(points: &[ReproPoint], result: &SweepResult<String>) {
    let mut rates: Vec<f64> = points
        .iter()
        .zip(result.points.iter())
        .map(|(p, done)| done.wall.as_secs_f64() / p.cost_hint() as f64)
        .collect();
    if rates.len() < 3 {
        return;
    }
    rates.sort_by(|a, b| a.partial_cmp(b).expect("walls are finite"));
    let median = rates[rates.len() / 2];
    if median <= 0.0 {
        return;
    }
    for (p, done) in points.iter().zip(result.points.iter()) {
        if done.wall < COST_HINT_MIN_WALL {
            continue;
        }
        let rate = done.wall.as_secs_f64() / p.cost_hint() as f64;
        if rate > median * COST_HINT_DEVIATION || rate < median / COST_HINT_DEVIATION {
            eprintln!(
                "aqua-repro: cost hint for {}:{} looks stale — {:.3}s at hint {} \
                 ({:.4}s/unit vs suite median {:.4}s/unit)",
                p.experiment(),
                p.label(),
                done.wall.as_secs_f64(),
                p.cost_hint(),
                rate,
                median,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_experiment_decomposes() {
        let a = ReproArgs::default();
        for (name, _) in EXPERIMENTS {
            let points = experiment_points(name, &a).expect(name);
            assert!(!points.is_empty(), "{name} has no points");
            for p in &points {
                assert_eq!(p.experiment(), *name);
            }
        }
        assert!(experiment_points("fig99", &a).is_err());
    }

    #[test]
    fn multi_point_experiments_fan_out() {
        let a = ReproArgs::default();
        assert_eq!(experiment_points("fig02", &a).unwrap().len(), 3);
        assert_eq!(experiment_points("fig09", &a).unwrap().len(), 2);
        assert_eq!(experiment_points("fig12", &a).unwrap().len(), 2);
        assert_eq!(experiment_points("fig14", &a).unwrap().len(), 6);
        assert_eq!(experiment_points("e2e", &a).unwrap().len(), 2);
        assert_eq!(experiment_points("serve", &a).unwrap().len(), 10);
        assert_eq!(experiment_points("serve_chaos", &a).unwrap().len(), 8);
        assert_eq!(experiment_points("coord_chaos", &a).unwrap().len(), 3);
        assert_eq!(experiment_points("scale_cluster", &a).unwrap().len(), 3);
        assert_eq!(experiment_points("ablations", &a).unwrap().len(), 6);
    }

    #[test]
    fn suite_output_is_identical_across_job_counts() {
        // Cheap analytic experiments only, so the test stays fast; the
        // simulation-heavy equivalents live in tests/determinism.rs.
        let a = ReproArgs::default();
        let names = ["fig02", "fig03", "tables"];
        let seq = run_suite(&names, &a, 1, true, false).unwrap();
        let par = run_suite(&names, &a, 4, true, false).unwrap();
        assert_eq!(seq.output, par.output);
        assert_eq!(seq.combined_digest, par.combined_digest);
        assert!(seq
            .output
            .contains("################ fig02 ################"));
        assert_eq!(seq.experiments.len(), 3);
        assert_eq!(seq.experiments[0].points, 3);
        // Without headers the banners disappear but tables remain.
        let bare = run_suite(&["fig02"], &a, 1, false, false).unwrap();
        assert!(!bare.output.contains("################"));
        assert!(bare.output.contains("Figure 2"));
    }
}
