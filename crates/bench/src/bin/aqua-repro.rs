//! `aqua-repro` — run any of the paper's experiments by name.
//!
//! ```text
//! cargo run -p aqua-bench --release --bin aqua-repro -- list
//! cargo run -p aqua-bench --release --bin aqua-repro -- fig07 --window 600
//! cargo run -p aqua-bench --release --bin aqua-repro -- all --jobs 8
//! cargo run -p aqua-bench --release --bin aqua-repro -- bench --jobs 8 --out BENCH_pr7.json
//! ```
//!
//! Experiments decompose into independent sweep points (one per request
//! rate, tensor size, cluster split, ablation study, …) that `--jobs N`
//! fans across worker threads. Output is stitched back in input order, so
//! `all --jobs 8` prints byte-for-byte what `all --jobs 1` prints, and the
//! combined determinism digest (reported on stderr) proves the simulations
//! behaved identically too. `bench` runs the whole suite sequentially and
//! in parallel, verifies that identity, and writes the wall-time trajectory
//! to a `BENCH_pr7.json`.
//!
//! The same experiments also run as `cargo bench` targets; this binary is
//! the ad-hoc front door (pick one experiment, tweak the window/seed).

use aqua_bench::fuzz::{self, FuzzConfig, FuzzPoint, GatewayFuzzPoint};
use aqua_bench::runner::{run_suite, ReproArgs, SuiteOutcome, EXPERIMENTS};
use aqua_bench::trace;
use std::process::ExitCode;

struct Flags {
    args: ReproArgs,
    jobs: usize,
    out: Option<String>,
    /// Requests per server for `bench`'s undersaturated/overload scale
    /// rows (default: the full 1M-request domain).
    scale_rps: usize,
}

fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn parse_flags(rest: &[String]) -> Result<Flags, String> {
    let mut flags = Flags {
        args: ReproArgs::default(),
        jobs: 1,
        out: None,
        scale_rps: 15_625,
    };
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let value = it
            .next()
            .ok_or_else(|| format!("flag {flag} needs a value"))?;
        match flag.as_str() {
            "--window" => {
                flags.args.window = value.parse().map_err(|e| format!("--window: {e}"))?
            }
            "--seed" => flags.args.seed = value.parse().map_err(|e| format!("--seed: {e}"))?,
            "--count" => flags.args.count = value.parse().map_err(|e| format!("--count: {e}"))?,
            "--lanes" => {
                flags.args.lanes = value
                    .parse::<usize>()
                    .map_err(|e| format!("--lanes: {e}"))?
                    .max(1)
            }
            "--jobs" => flags.jobs = value.parse().map_err(|e| format!("--jobs: {e}"))?,
            "--out" => flags.out = Some(value.clone()),
            "--scale-rps" => {
                flags.scale_rps = value
                    .parse::<usize>()
                    .map_err(|e| format!("--scale-rps: {e}"))?
                    .max(1)
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(flags)
}

/// Runs `names` and prints the stitched output; wall/digest accounting goes
/// to stderr so stdout stays byte-identical across job counts.
fn run_and_print(names: &[&str], flags: &Flags, headers: bool) -> Result<(), String> {
    // A process-wide AQUA_TRACE capture needs one journal in deterministic
    // event order, so it forces the sequential passthrough path.
    let passthrough = trace::journal().is_some();
    if passthrough && flags.jobs > 1 {
        eprintln!("aqua-repro: AQUA_TRACE is set; forcing --jobs 1 (passthrough trace)");
    }
    let outcome = run_suite(names, &flags.args, flags.jobs, headers, passthrough)?;
    print!("{}", outcome.output);
    eprintln!(
        "aqua-repro: {} points over {} jobs in {:.2}s, {} events, digest {:016x}",
        outcome.experiments.iter().map(|e| e.points).sum::<usize>(),
        outcome.jobs,
        outcome.wall.as_secs_f64(),
        outcome.total_events,
        outcome.combined_digest
    );
    trace::finish();
    Ok(())
}

/// JSON for one suite run (hand-rolled: stable key order, no deps).
fn suite_json(label: &str, o: &SuiteOutcome) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "    \"{label}\": {{\n      \"jobs\": {},\n      \"wall_s\": {:.4},\n      \"events_per_sec\": {:.0},\n      \"experiments\": {{\n",
        o.jobs,
        o.wall.as_secs_f64(),
        o.total_events as f64 / o.wall.as_secs_f64().max(1e-9)
    ));
    for (i, e) in o.experiments.iter().enumerate() {
        let comma = if i + 1 < o.experiments.len() { "," } else { "" };
        s.push_str(&format!(
            "        \"{}\": {{\"points\": {}, \"wall_s\": {:.4}}}{comma}\n",
            e.name,
            e.points,
            e.wall.as_secs_f64()
        ));
    }
    s.push_str("      }\n    }");
    s
}

/// The `bench` subcommand: sequential vs parallel suite, identity check,
/// BENCH json.
fn bench(flags: &Flags) -> Result<(), String> {
    use aqua_bench::scale_cluster::{run_scale, ScaleSpec};
    if trace::journal().is_some() {
        return Err("bench mode measures the untraced path; unset AQUA_TRACE".into());
    }
    let names: Vec<&str> = EXPERIMENTS.iter().map(|(n, _)| *n).collect();
    let jobs = if flags.jobs > 1 {
        flags.jobs
    } else {
        default_jobs()
    };
    eprintln!("aqua-repro bench: sequential pass…");
    let seq = run_suite(&names, &flags.args, 1, true, false)?;
    eprintln!(
        "aqua-repro bench: sequential {:.2}s, digest {:016x}; parallel pass ({jobs} jobs)…",
        seq.wall.as_secs_f64(),
        seq.combined_digest
    );
    let par = run_suite(&names, &flags.args, jobs, true, false)?;
    eprintln!(
        "aqua-repro bench: parallel {:.2}s, digest {:016x}",
        par.wall.as_secs_f64(),
        par.combined_digest
    );

    if seq.output != par.output {
        return Err(format!(
            "parallel output differs from sequential ({} vs {} bytes)",
            par.output.len(),
            seq.output.len()
        ));
    }
    if seq.combined_digest != par.combined_digest {
        return Err(format!(
            "determinism digest mismatch: sequential {:016x} vs parallel {:016x}",
            seq.combined_digest, par.combined_digest
        ));
    }

    // The 512-GPU scale-cluster rows: the undersaturated throughput
    // yardstick and the oversaturated (2 req/s, audited crash plan)
    // overload run the sort-based scheduler could not finish. The
    // incremental index keeps per-admission work backlog-independent, so
    // the overload row must stay within the same order of magnitude of
    // events/s — a collapse below the floor here means backlog-linear
    // scans crept back into the gateway hot path.
    let scale_base = ScaleSpec {
        servers: 64,
        requests_per_server: flags.scale_rps,
        rate: 0.5,
        seed: flags.args.seed,
        lanes: default_jobs(),
        audited: false,
    };
    eprintln!(
        "aqua-repro bench: scale rows ({} requests each)…",
        scale_base.total_requests()
    );
    let calm = run_scale(&scale_base);
    eprintln!("{}", calm.perf_line());
    let hot = run_scale(&ScaleSpec {
        rate: 2.0,
        audited: true,
        ..scale_base
    });
    eprintln!("{}", hot.perf_line());
    if calm.audit_violations + hot.audit_violations != 0 {
        return Err(format!(
            "bench scale rows: {} audit violation(s)",
            calm.audit_violations + hot.audit_violations
        ));
    }
    let ratio = hot.events_per_sec() / calm.events_per_sec().max(1e-9);
    if ratio < 0.3 {
        return Err(format!(
            "bench scale rows: overload events/s collapsed to {ratio:.2}x the undersaturated \
             run ({:.0} vs {:.0}) — admission work is no longer backlog-independent",
            hot.events_per_sec(),
            calm.events_per_sec()
        ));
    }

    let speedup = seq.wall.as_secs_f64() / par.wall.as_secs_f64().max(1e-9);
    let json = format!(
        "{{\n  \"bench\": \"aqua-repro suite\",\n  \"pr\": 9,\n  \"host_cores\": {},\n  \"points\": {},\n  \"total_events\": {},\n  \"combined_digest\": \"{:016x}\",\n  \"digests_match\": true,\n  \"output_identical\": true,\n  \"speedup\": {:.2},\n  \"runs\": {{\n{},\n{}\n  }},\n  \"scale\": {{\n{},\n{},\n    \"overload_events_per_sec_ratio\": {:.2}\n  }}\n}}\n",
        default_jobs(),
        seq.experiments.iter().map(|e| e.points).sum::<usize>(),
        seq.total_events,
        seq.combined_digest,
        speedup,
        suite_json("sequential", &seq),
        suite_json("parallel", &par),
        scale_json("undersaturated", &calm),
        scale_json("overload", &hot),
        ratio
    );
    let out = flags.out.as_deref().unwrap_or("BENCH_pr9.json");
    std::fs::write(out, &json).map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "bench: {} points; sequential {:.2}s, parallel {:.2}s over {} jobs ({speedup:.2}x); \
         digest {:016x}; overload scale row at {ratio:.2}x undersaturated events/s; wrote {out}",
        seq.experiments.iter().map(|e| e.points).sum::<usize>(),
        seq.wall.as_secs_f64(),
        par.wall.as_secs_f64(),
        par.jobs,
        seq.combined_digest
    );
    Ok(())
}

/// JSON for one scale-cluster row of the bench file (hand-rolled: stable
/// key order, no deps). The digest and event totals are deterministic;
/// wall, events/s and RSS are this host's measurements.
fn scale_json(label: &str, run: &aqua_bench::scale_cluster::ScaleRun) -> String {
    format!(
        "    \"{label}\": {{\n      \"servers\": {},\n      \"requests\": {},\n      \"rate\": {:.1},\n      \"audited\": {},\n      \"digest\": \"{:016x}\",\n      \"sim_events\": {},\n      \"audit_violations\": {},\n      \"wall_s\": {:.2},\n      \"events_per_sec\": {:.0},\n      \"peak_rss_mib\": {}\n    }}",
        run.spec.servers,
        run.spec.total_requests(),
        run.spec.rate,
        run.spec.audited,
        run.digest,
        run.sim_events,
        run.audit_violations,
        run.wall.as_secs_f64(),
        run.events_per_sec(),
        run.peak_rss_mib
            .map_or_else(|| "null".to_owned(), |m| m.to_string()),
    )
}

/// Flags of the `fuzz` subcommand. `--smoke`/`--plant`/`--gateway`/
/// `--offload` are boolean; a point-shape flag (`--gpus/--work/--faults/
/// --horizon`, or `--policy/--load/--count` in gateway mode) switches from
/// a seeded campaign to re-running that one explicit point (the reproducer
/// path the shrinker prints).
struct FuzzFlags {
    seed: u64,
    points: Option<usize>,
    jobs: usize,
    smoke: bool,
    plant: bool,
    plant_fence: bool,
    gateway: bool,
    offload: bool,
    gpus: Option<usize>,
    work: Option<usize>,
    faults: Option<usize>,
    horizon: Option<u64>,
    policy: Option<usize>,
    load: Option<usize>,
    count: Option<usize>,
}

fn parse_fuzz_flags(rest: &[String]) -> Result<FuzzFlags, String> {
    let mut f = FuzzFlags {
        seed: 42,
        points: None,
        jobs: default_jobs(),
        smoke: false,
        plant: false,
        plant_fence: false,
        gateway: false,
        offload: false,
        gpus: None,
        work: None,
        faults: None,
        horizon: None,
        policy: None,
        load: None,
        count: None,
    };
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--smoke" => f.smoke = true,
            "--plant" => f.plant = true,
            "--plant-fence" => f.plant_fence = true,
            "--gateway" => f.gateway = true,
            "--offload" => f.offload = true,
            valued => {
                let value = it
                    .next()
                    .ok_or_else(|| format!("flag {valued} needs a value"))?;
                let parse = |what: &str| -> Result<u64, String> {
                    value.parse().map_err(|e| format!("{what}: {e}"))
                };
                match valued {
                    "--seed" => f.seed = parse("--seed")?,
                    "--points" => f.points = Some(parse("--points")? as usize),
                    "--jobs" => f.jobs = (parse("--jobs")? as usize).max(1),
                    "--gpus" => f.gpus = Some(parse("--gpus")? as usize),
                    "--work" => f.work = Some(parse("--work")? as usize),
                    "--faults" => f.faults = Some(parse("--faults")? as usize),
                    "--horizon" => f.horizon = Some(parse("--horizon")?),
                    "--policy" => f.policy = Some(parse("--policy")? as usize),
                    "--load" => f.load = Some(parse("--load")? as usize),
                    "--count" => f.count = Some(parse("--count")? as usize),
                    other => return Err(format!("unknown fuzz flag {other}")),
                }
            }
        }
    }
    Ok(f)
}

/// Describes why a gateway point is dirty, for the failure report.
fn gateway_failure(out: &fuzz::GatewayFuzzOutcome) -> String {
    let mut parts = Vec::new();
    if !out.violations.is_empty() {
        parts.push(format!("first violation: {}", out.violations[0]));
    }
    if out.truncated > 0 {
        parts.push(format!("{} truncated stream(s)", out.truncated));
    }
    parts.join("; ")
}

/// The `fuzz --gateway` subcommand: serving-path chaos campaign (FaultPlan
/// × scheduler policy × load) under the crash-restore auditor plus a
/// stream-integrity gate, or one explicit gateway point.
fn gateway_fuzz_cmd(flags: &FuzzFlags) -> Result<(), String> {
    let explicit = flags.policy.is_some()
        || flags.load.is_some()
        || flags.count.is_some()
        || flags.faults.is_some()
        || flags.horizon.is_some();
    if explicit {
        let point = GatewayFuzzPoint {
            seed: flags.seed,
            policy: flags.policy.unwrap_or(0),
            load: flags.load.unwrap_or(1).max(1),
            count: flags.count.unwrap_or(16),
            faults: flags.faults.unwrap_or(0),
            horizon_secs: flags.horizon.unwrap_or(fuzz::GATEWAY_MIN_HORIZON_SECS),
            offload: flags.offload,
            plant: flags.plant,
        };
        let out = fuzz::run_gateway_point_quiet(&point);
        if !out.dirty() {
            println!(
                "fuzz: gateway point `{}` is clean ({} streams, {} tokens)",
                point.repro_spec(),
                out.streams,
                out.tokens
            );
            return Ok(());
        }
        for v in &out.violations {
            println!("fuzz: {v}");
        }
        return Err(format!(
            "gateway point failed ({}) — reproduce with: aqua-repro fuzz {}",
            gateway_failure(&out),
            point.repro_spec()
        ));
    }

    let points = flags.points.unwrap_or(if flags.smoke { 16 } else { 48 });
    let cfg = FuzzConfig {
        base_seed: flags.seed,
        points,
        jobs: flags.jobs,
        plant: flags.plant,
        plant_fence: flags.plant_fence,
    };
    let report = fuzz::run_gateway_fuzz(&cfg);
    let dirty = report.dirty();
    let truncated: usize = report.outcomes.iter().map(|o| o.truncated).sum();
    let violations: usize = report.outcomes.iter().map(|o| o.violations.len()).sum();
    eprintln!(
        "fuzz: {} gateway points over {} jobs, digest {:016x}, {} violation(s), {} truncated stream(s) in {} dirty point(s)",
        report.outcomes.len(),
        report.jobs,
        report.combined_digest,
        violations,
        truncated,
        dirty.len()
    );
    let Some(&first_idx) = dirty.first() else {
        println!(
            "fuzz: {} gateway points, zero violations, zero truncated streams (digest {:016x})",
            report.outcomes.len(),
            report.combined_digest
        );
        return Ok(());
    };
    let first = &report.outcomes[first_idx];
    println!(
        "fuzz: gateway point #{first_idx} (`{}`) failed — {}",
        first.point.repro_spec(),
        gateway_failure(first)
    );
    let shrunk = fuzz::shrink_gateway(first.point)
        .expect("a dirty point is a pure function of its fields and must fail again");
    match &shrunk.violation {
        Some(v) => println!(
            "fuzz: shrunk over {} candidate runs to: {v}",
            shrunk.candidates_run
        ),
        None => println!(
            "fuzz: shrunk over {} candidate runs (stream-integrity failure)",
            shrunk.candidates_run
        ),
    }
    Err(format!(
        "gateway fuzz failed — reproduce with: aqua-repro fuzz {}",
        shrunk.minimal.repro_spec()
    ))
}

/// The `fuzz` subcommand: audited chaos campaign, or one explicit point.
/// Exits non-zero — with a re-runnable reproducer line — on any violation.
fn fuzz_cmd(flags: &FuzzFlags) -> Result<(), String> {
    let explicit = flags.gpus.is_some()
        || flags.work.is_some()
        || flags.faults.is_some()
        || flags.horizon.is_some();
    if explicit {
        let point = FuzzPoint {
            seed: flags.seed,
            gpus: flags.gpus.unwrap_or(2),
            work: flags.work.unwrap_or(1),
            faults: flags.faults.unwrap_or(0),
            horizon_secs: flags.horizon.unwrap_or(fuzz::MIN_HORIZON_SECS),
            plant: flags.plant,
            plant_fence: flags.plant_fence,
        };
        let out = fuzz::run_point_quiet(&point);
        if out.violations.is_empty() {
            println!(
                "fuzz: point `{}` is clean ({} consumer tokens)",
                point.repro_spec(),
                out.tokens
            );
            return Ok(());
        }
        for v in &out.violations {
            println!("fuzz: {v}");
        }
        return Err(format!(
            "{} audit violation(s) — reproduce with: aqua-repro fuzz {}",
            out.violations.len(),
            point.repro_spec()
        ));
    }

    let points = flags.points.unwrap_or(if flags.smoke { 32 } else { 64 });
    let cfg = FuzzConfig {
        base_seed: flags.seed,
        points,
        jobs: flags.jobs,
        plant: flags.plant,
        plant_fence: flags.plant_fence,
    };
    let report = fuzz::run_fuzz(&cfg);
    let dirty = report.dirty();
    eprintln!(
        "fuzz: {} audited points over {} jobs, digest {:016x}, {} violation(s) in {} point(s)",
        report.outcomes.len(),
        report.jobs,
        report.combined_digest,
        report.violation_count(),
        dirty.len()
    );
    let Some(&first_idx) = dirty.first() else {
        println!(
            "fuzz: {} audited points, zero violations (digest {:016x})",
            report.outcomes.len(),
            report.combined_digest
        );
        return Ok(());
    };
    let first = &report.outcomes[first_idx];
    println!(
        "fuzz: point #{first_idx} (`{}`) tripped {} violation(s):",
        first.point.repro_spec(),
        first.violations.len(),
    );
    for v in &first.violations {
        println!("fuzz: {v}");
    }
    let shrunk = fuzz::shrink(first.point)
        .expect("a violating point is a pure function of its fields and must violate again");
    println!(
        "fuzz: shrunk over {} candidate runs to: {}",
        shrunk.candidates_run, shrunk.violation
    );
    Err(format!(
        "audit violation — reproduce with: aqua-repro fuzz {}",
        shrunk.minimal.repro_spec()
    ))
}

/// Flags of the `scale` subcommand.
struct ScaleFlags {
    servers: usize,
    rps: usize,
    rate: f64,
    lanes: usize,
    seed: u64,
    smoke: bool,
    audited: bool,
}

fn parse_scale_flags(rest: &[String]) -> Result<ScaleFlags, String> {
    // Default rate keeps each server below its service capacity so the
    // run doubles as the undersaturated throughput yardstick; pass
    // `--rate 2` (with `--audited` for the crash plan) to push every
    // server past saturation. The overload run used to be infeasible —
    // the sort-based scheduler re-sorted the whole backlog every
    // admission, turning an oversaturated trace quadratic — but the
    // incremental scheduler index does backlog-independent work per
    // admission, so a 1M-request overload run now lands within ~2x of
    // the undersaturated run's events/s.
    let mut f = ScaleFlags {
        servers: 64,
        rps: 15_625,
        rate: 0.5,
        lanes: default_jobs(),
        seed: 42,
        smoke: false,
        audited: false,
    };
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--smoke" => f.smoke = true,
            "--audited" => f.audited = true,
            valued => {
                let value = it
                    .next()
                    .ok_or_else(|| format!("flag {valued} needs a value"))?;
                match valued {
                    "--servers" => {
                        f.servers = value.parse().map_err(|e| format!("--servers: {e}"))?
                    }
                    "--rps" => f.rps = value.parse().map_err(|e| format!("--rps: {e}"))?,
                    "--rate" => f.rate = value.parse().map_err(|e| format!("--rate: {e}"))?,
                    "--lanes" => f.lanes = value.parse().map_err(|e| format!("--lanes: {e}"))?,
                    "--seed" => f.seed = value.parse().map_err(|e| format!("--seed: {e}"))?,
                    other => return Err(format!("unknown scale flag {other}")),
                }
            }
        }
    }
    f.servers = f.servers.max(1);
    f.rps = f.rps.max(1);
    f.lanes = f.lanes.max(1);
    Ok(f)
}

/// Runs a scale spec at `--lanes 1` vs `--lanes 4` and fails unless the
/// rendered table, the folded shard digest and the window/message counts
/// are identical and the audit saw zero violations (compared
/// run-against-run, never against a pinned literal). Returns the lanes=1
/// run for reporting.
fn scale_lane_pair(
    label: &str,
    spec: aqua_bench::scale_cluster::ScaleSpec,
) -> Result<aqua_bench::scale_cluster::ScaleRun, String> {
    use aqua_bench::scale_cluster::{run_scale, ScaleSpec};
    let one = run_scale(&spec);
    let four = run_scale(&ScaleSpec { lanes: 4, ..spec });
    if one.table != four.table {
        return Err(format!(
            "{label}: lanes=1 and lanes=4 rendered different tables ({} vs {} bytes)",
            one.table.len(),
            four.table.len()
        ));
    }
    if one.digest != four.digest {
        return Err(format!(
            "{label}: digest mismatch: lanes=1 {:016x} vs lanes=4 {:016x}",
            one.digest, four.digest
        ));
    }
    if (one.windows, one.messages) != (four.windows, four.messages) {
        return Err(format!(
            "{label}: window/message mismatch: {}/{} vs {}/{}",
            one.windows, one.messages, four.windows, four.messages
        ));
    }
    if one.audit_violations + four.audit_violations != 0 {
        return Err(format!(
            "{label}: {} audit violation(s)",
            one.audit_violations + four.audit_violations
        ));
    }
    eprintln!("{}", one.perf_line());
    eprintln!("{}", four.perf_line());
    Ok(one)
}

/// The `scale` subcommand. `--smoke` runs two 64-server audited points —
/// one at the flag rate and one oversaturated at 2 req/s with a span long
/// enough to build real backlog — each at `--lanes 1` vs `--lanes 4`, and
/// fails unless every pair is byte- and digest-identical with zero audit
/// violations. Without `--smoke` it runs one configuration (default: 64
/// servers × 8 GPUs, 15625 requests each — a 512-GPU domain serving 1M
/// requests) and reports the deterministic table plus events/s, wall and
/// peak RSS.
fn scale_cmd(f: &ScaleFlags) -> Result<(), String> {
    use aqua_bench::scale_cluster::{run_scale, ScaleSpec};
    if f.smoke {
        let spec = ScaleSpec {
            servers: 64,
            requests_per_server: 8,
            rate: f.rate,
            seed: f.seed,
            lanes: 1,
            audited: true,
        };
        let one = scale_lane_pair("scale smoke", spec)?;
        print!("{}", one.table);
        println!(
            "scale smoke: {} servers byte-identical and digest-identical at lanes 1 vs 4 \
             (digest {:016x}, {} windows, {} messages, audited clean)",
            spec.servers, one.digest, one.windows, one.messages
        );
        // Overload variant: arrivals at 2 req/s outpace service capacity
        // for a 16s span, so the scheduler index is exercised against a
        // growing backlog rather than a draining one.
        let overload = ScaleSpec {
            requests_per_server: 32,
            rate: 2.0,
            ..spec
        };
        let hot = scale_lane_pair("scale smoke (overload)", overload)?;
        println!(
            "scale smoke (overload): {} servers at 2 req/s byte-identical and digest-identical \
             at lanes 1 vs 4 (digest {:016x}, {} windows, {} messages, audited clean)",
            overload.servers, hot.digest, hot.windows, hot.messages
        );
        return Ok(());
    }
    let spec = ScaleSpec {
        servers: f.servers,
        requests_per_server: f.rps,
        rate: f.rate,
        seed: f.seed,
        lanes: f.lanes,
        audited: f.audited,
    };
    let run = run_scale(&spec);
    print!("{}", run.table);
    if run.audit_violations != 0 {
        return Err(format!(
            "scale: {} audit violation(s)",
            run.audit_violations
        ));
    }
    println!("{}", run.perf_line());
    Ok(())
}

/// The `serve --smoke` / `serve --chaos-smoke` subcommands: run the gateway
/// scheduler study (or the overload/crash-recovery study) sequentially and
/// in parallel in the same process, and verify the stitched output and the
/// combined telemetry digest are identical. The digests are compared
/// run-against-run, never against a pinned literal, so the check is robust
/// to workload-generator changes.
fn serve_smoke(flags: &Flags, names: &[&str], label: &str) -> Result<(), String> {
    if trace::journal().is_some() {
        return Err(format!("{label}: compares parallel runs; unset AQUA_TRACE"));
    }
    // At least 4 worker threads even on a small host: the point is to
    // exercise a schedule different from the sequential pass.
    let jobs = if flags.jobs > 1 {
        flags.jobs
    } else {
        default_jobs().max(4)
    };
    let seq = run_suite(names, &flags.args, 1, false, false)?;
    let par = run_suite(names, &flags.args, jobs, false, false)?;
    if seq.output != par.output {
        return Err(format!(
            "{label}: parallel output differs from sequential ({} vs {} bytes)",
            par.output.len(),
            seq.output.len()
        ));
    }
    if seq.combined_digest != par.combined_digest {
        return Err(format!(
            "{label}: digest mismatch: sequential {:016x} vs parallel {:016x}",
            seq.combined_digest, par.combined_digest
        ));
    }
    print!("{}", seq.output);
    println!(
        "{label}: {} points byte-identical and digest-identical at 1 vs {jobs} jobs (digest {:016x}, {} events)",
        seq.experiments.iter().map(|e| e.points).sum::<usize>(),
        seq.combined_digest,
        seq.total_events
    );
    Ok(())
}

/// The `coord_chaos --smoke` subcommand: the control-plane recovery study
/// through the sweep at `--jobs 1/4/8` and through the PDES shard path at
/// `--lanes 1` vs `--lanes 4` (audited and unaudited), failing unless every
/// pairing is byte- and digest-identical and the audited shards are clean.
/// Digests are compared run-against-run, never against a pinned literal.
fn coord_chaos_smoke(flags: &Flags) -> Result<(), String> {
    use aqua_bench::coord_chaos;
    if trace::journal().is_some() {
        return Err("coord chaos smoke: compares parallel runs; unset AQUA_TRACE".into());
    }
    let seq = run_suite(&["coord_chaos"], &flags.args, 1, false, false)?;
    for jobs in [4usize, 8] {
        let par = run_suite(&["coord_chaos"], &flags.args, jobs, false, false)?;
        if seq.output != par.output {
            return Err(format!(
                "coord chaos smoke: --jobs {jobs} output differs from sequential ({} vs {} bytes)",
                par.output.len(),
                seq.output.len()
            ));
        }
        if seq.combined_digest != par.combined_digest {
            return Err(format!(
                "coord chaos smoke: --jobs {jobs} digest mismatch: {:016x} vs sequential {:016x}",
                par.combined_digest, seq.combined_digest
            ));
        }
    }
    let (count, seed) = (flags.args.count, flags.args.seed);
    let (out_one, one) = coord_chaos::run_sharded(count, seed, 1, true);
    let (out_four, four) = coord_chaos::run_sharded(count, seed, 4, true);
    if out_one != out_four {
        return Err(format!(
            "coord chaos smoke: lanes=1 and lanes=4 rendered different tables ({} vs {} bytes)",
            out_one.len(),
            out_four.len()
        ));
    }
    if one.digest != four.digest {
        return Err(format!(
            "coord chaos smoke: lane digest mismatch: lanes=1 {:016x} vs lanes=4 {:016x}",
            one.digest, four.digest
        ));
    }
    let (out_unaudited, unaudited) = coord_chaos::run_sharded(count, seed, 1, false);
    if out_unaudited != out_one || unaudited.digest != one.digest {
        return Err(format!(
            "coord chaos smoke: audited run diverges from unaudited (digest {:016x} vs {:016x})",
            one.digest, unaudited.digest
        ));
    }
    print!("{}", seq.output);
    println!(
        "coord chaos smoke: byte-identical and digest-identical at jobs 1/4/8 and lanes 1/4, \
         audited clean (suite digest {:016x}, shard digest {:016x})",
        seq.combined_digest, one.digest
    );
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else {
        eprintln!(
            "usage: aqua-repro <experiment|list|all|bench|fuzz|scale> [--window S] [--seed N] [--count N] [--lanes N] [--jobs N] [--out FILE] [--scale-rps N]\n       aqua-repro serve --smoke|--chaos-smoke [--seed N] [--count N] [--jobs N]\n       aqua-repro coord_chaos --smoke [--seed N] [--count N]\n       aqua-repro scale [--smoke] [--audited] [--servers N] [--rps N] [--rate F] [--lanes N] [--seed N]\n       aqua-repro fuzz [--smoke] [--plant] [--plant-fence] [--seed N] [--points N] [--jobs N] [--gpus 2|8] [--work N] [--faults N] [--horizon S]\n       aqua-repro fuzz --gateway [--smoke] [--plant] [--offload] [--seed N] [--points N] [--jobs N] [--policy I] [--load N] [--count N] [--faults N] [--horizon S]"
        );
        return ExitCode::FAILURE;
    };
    let smoke_flag = argv[1..].iter().find_map(|a| match a.as_str() {
        "--smoke" => Some(("serve", "serve smoke")),
        "--chaos-smoke" => Some(("serve_chaos", "serve chaos smoke")),
        _ => None,
    });
    if cmd == "serve" {
        if let Some((experiment, label)) = smoke_flag {
            let rest: Vec<String> = argv[1..]
                .iter()
                .filter(|a| *a != "--smoke" && *a != "--chaos-smoke")
                .cloned()
                .collect();
            return match parse_flags(&rest).and_then(|f| serve_smoke(&f, &[experiment], label)) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            };
        }
    }
    if cmd == "coord_chaos" && argv[1..].iter().any(|a| a == "--smoke") {
        let rest: Vec<String> = argv[1..]
            .iter()
            .filter(|a| *a != "--smoke")
            .cloned()
            .collect();
        return match parse_flags(&rest).and_then(|f| coord_chaos_smoke(&f)) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if cmd == "scale" {
        return match parse_scale_flags(&argv[1..]).and_then(|f| scale_cmd(&f)) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if cmd == "fuzz" {
        return match parse_fuzz_flags(&argv[1..]).and_then(|f| {
            if f.gateway {
                gateway_fuzz_cmd(&f)
            } else {
                fuzz_cmd(&f)
            }
        }) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if cmd == "list" {
        println!("available experiments:");
        for (name, what) in EXPERIMENTS {
            println!("  {name:<10} {what}");
        }
        return ExitCode::SUCCESS;
    }
    let flags = match parse_flags(&argv[1..]) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "all" => {
            let names: Vec<&str> = EXPERIMENTS.iter().map(|(n, _)| *n).collect();
            run_and_print(&names, &flags, true)
        }
        "bench" => bench(&flags),
        name => run_and_print(&[name], &flags, false),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
