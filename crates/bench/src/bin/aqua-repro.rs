//! `aqua-repro` — run any of the paper's experiments by name.
//!
//! ```text
//! cargo run -p aqua-bench --release --bin aqua-repro -- list
//! cargo run -p aqua-bench --release --bin aqua-repro -- fig07 --window 600
//! cargo run -p aqua-bench --release --bin aqua-repro -- all
//! ```
//!
//! The same experiments also run as `cargo bench` targets; this binary is
//! the ad-hoc front door (pick one experiment, tweak the window/seed).

use aqua_bench::*;
use std::process::ExitCode;

struct Args {
    window: u64,
    seed: u64,
    count: usize,
}

fn parse_flags(rest: &[String]) -> Result<Args, String> {
    let mut args = Args {
        window: 120,
        seed: 42,
        count: 200,
    };
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let value = it
            .next()
            .ok_or_else(|| format!("flag {flag} needs a value"))?;
        match flag.as_str() {
            "--window" => args.window = value.parse().map_err(|e| format!("--window: {e}"))?,
            "--seed" => args.seed = value.parse().map_err(|e| format!("--seed: {e}"))?,
            "--count" => args.count = value.parse().map_err(|e| format!("--count: {e}"))?,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

const EXPERIMENTS: &[(&str, &str)] = &[
    ("fig01", "motivation: vLLM vs CFS vs AQUA TTFT/RCT"),
    ("fig02", "throughput vs batch vs free memory per modality"),
    ("fig03", "NVLink bandwidth curve + sharing impact"),
    ("fig04", "placement matters (Eq. 5 + execution)"),
    ("fig07", "long-prompt tokens: DeepSpeed/FlexGen/AQUA"),
    ("fig08", "LoRA adapter RCTs"),
    ("fig09", "CFS responsiveness at 2 and 5 req/s"),
    ("fig10", "elastic donate/reclaim timeline"),
    ("fig11", "producer RCT overhead of donating via AQUA"),
    ("fig12", "benefit vs offloaded tensor size"),
    ("fig13", "multi-turn chatbot saw-tooth"),
    ("fig14", "placer convergence time"),
    ("fig18", "NVSwitch stress: 4 consumers + 4 producers"),
    (
        "chaos",
        "producer crash at t=300s: degrade to DRAM, recover",
    ),
    ("e2e", "section 6.1 cluster evaluation (both splits)"),
    ("tables", "Tables 1-3 and the model inventory"),
    ("ablations", "all ablation studies"),
];

fn run_experiment(name: &str, a: &Args) -> Result<(), String> {
    match name {
        "fig01" => {
            let r = fig01_motivation::run(5.0, a.count, a.seed);
            println!("{}", fig01_motivation::table(&r));
        }
        "fig02" => {
            for t in fig02_contention::tables(&fig02_contention::run(&[
                1, 2, 4, 8, 12, 16, 24, 32, 48, 64, 96,
            ])) {
                println!("{t}");
            }
        }
        "fig03" => {
            println!(
                "{}",
                fig03_links::bandwidth_table(&fig03_links::run_bandwidth(
                    &fig03_links::default_sizes()
                ))
            );
            println!(
                "{}",
                fig03_links::sharing_table(&fig03_links::run_sharing(5))
            );
        }
        "fig04" => {
            let r = fig04_colocation::run(a.window);
            println!("{}", fig04_colocation::table(&r, a.window));
        }
        "fig07" => {
            let r = fig07_long_prompt::run(a.window);
            println!("{}", fig07_long_prompt::table(&r, a.window));
        }
        "fig08" => {
            let r = fig08_lora::run(2.0, a.count, a.seed);
            println!("{}", fig08_lora::table(&r));
        }
        "fig09" => {
            for rate in [2.0, 5.0] {
                let cfg = fig09_cfs::CfsExperiment::figure9(rate, a.count, a.seed);
                let r = fig09_cfs::run(&cfg);
                println!(
                    "{}",
                    fig09_cfs::table(&r, &format!("Figure 9 at {rate} req/s"))
                );
            }
        }
        "fig10" => {
            let tl = fig10_elasticity::Timeline::default();
            let r = fig10_elasticity::run(&tl, 10, a.seed);
            println!("{}", fig10_elasticity::table(&r));
            let baseline = fig10_elasticity::run_producer_baseline(&tl, a.seed);
            println!(
                "{}",
                fig10_elasticity::producer_table(&r.producer_log, &baseline)
            );
        }
        "fig11" => {
            let tl = fig10_elasticity::Timeline::default();
            let r = fig11_producer_overhead::run_overhead(&tl, 10, a.seed);
            println!("{}", fig11_producer_overhead::table(&r));
            println!("median overhead: {:.2}x", r.median_overhead());
        }
        "fig12" => {
            let results: Vec<_> = fig12_tensor_size::paper_sizes()
                .iter()
                .map(|&b| fig12_tensor_size::run(b, a.count, 10.0, a.seed))
                .collect();
            println!("{}", fig12_tensor_size::table(&results));
        }
        "fig13" => {
            let r = fig13_chatbot::run(25, 4, a.seed);
            println!("{}", fig13_chatbot::table(&r));
        }
        "fig14" => {
            let pts = fig14_placer::run(&[16, 32, 64, 96, 128]);
            println!("{}", fig14_placer::table(&pts));
        }
        "fig18" => {
            let r = fig18_nvswitch::run(a.window);
            println!("{}", fig18_nvswitch::table(&r, a.window));
        }
        "chaos" => {
            let tl = chaos_degradation::ChaosTimeline::default();
            let r = chaos_degradation::run(&tl, 10);
            println!("{}", chaos_degradation::table(&r));
            println!("{}", chaos_degradation::summary_table(&r));
        }
        "e2e" => {
            for split in [e2e_cluster::Split::Balanced, e2e_cluster::Split::LlmHeavy] {
                let r = e2e_cluster::run(split, a.window, a.seed);
                let (p, o) = e2e_cluster::tables(&r);
                println!("{p}");
                println!("{o}");
            }
        }
        "tables" => {
            println!("{}", tables_registry::table1());
            println!("{}", tables_registry::table2());
            println!("{}", tables_registry::table3());
            println!("{}", tables_registry::model_inventory());
        }
        "ablations" => {
            println!("{}", ablations::coalescing_table());
            println!(
                "{}",
                ablations::cfs_slice_table(&[2, 4, 8, 16], a.count.min(120), a.seed)
            );
            println!("{}", ablations::producer_sharing_table(a.window));
            println!(
                "{}",
                ablations::reclaim_threshold_table(
                    &[2, 8, 32],
                    &fig10_elasticity::Timeline::default(),
                    a.seed
                )
            );
            println!("{}", ablations::preemption_table(a.count, a.seed));
            println!(
                "{}",
                ablations::lora_skew_table(&[0.0, 1.0, 2.0], a.count, a.seed)
            );
        }
        other => return Err(format!("unknown experiment `{other}` (try `list`)")),
    }
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else {
        eprintln!("usage: aqua-repro <experiment|list|all> [--window S] [--seed N] [--count N]");
        return ExitCode::FAILURE;
    };
    match cmd.as_str() {
        "list" => {
            println!("available experiments:");
            for (name, what) in EXPERIMENTS {
                println!("  {name:<10} {what}");
            }
            ExitCode::SUCCESS
        }
        "all" => {
            let args = match parse_flags(&argv[1..]) {
                Ok(a) => a,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            for (name, _) in EXPERIMENTS {
                println!("\n################ {name} ################");
                if let Err(e) = run_experiment(name, &args) {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            }
            trace::finish();
            ExitCode::SUCCESS
        }
        name => {
            let args = match parse_flags(&argv[1..]) {
                Ok(a) => a,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match run_experiment(name, &args) {
                Ok(()) => {
                    trace::finish();
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
    }
}
