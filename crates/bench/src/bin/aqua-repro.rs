//! `aqua-repro` — run any of the paper's experiments by name.
//!
//! ```text
//! cargo run -p aqua-bench --release --bin aqua-repro -- list
//! cargo run -p aqua-bench --release --bin aqua-repro -- fig07 --window 600
//! cargo run -p aqua-bench --release --bin aqua-repro -- all --jobs 8
//! cargo run -p aqua-bench --release --bin aqua-repro -- bench --jobs 8 --out BENCH_pr4.json
//! ```
//!
//! Experiments decompose into independent sweep points (one per request
//! rate, tensor size, cluster split, ablation study, …) that `--jobs N`
//! fans across worker threads. Output is stitched back in input order, so
//! `all --jobs 8` prints byte-for-byte what `all --jobs 1` prints, and the
//! combined determinism digest (reported on stderr) proves the simulations
//! behaved identically too. `bench` runs the whole suite sequentially and
//! in parallel, verifies that identity, and writes the wall-time trajectory
//! to a `BENCH_pr4.json`.
//!
//! The same experiments also run as `cargo bench` targets; this binary is
//! the ad-hoc front door (pick one experiment, tweak the window/seed).

use aqua_bench::runner::{run_suite, ReproArgs, SuiteOutcome, EXPERIMENTS};
use aqua_bench::trace;
use std::process::ExitCode;

struct Flags {
    args: ReproArgs,
    jobs: usize,
    out: Option<String>,
}

fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn parse_flags(rest: &[String]) -> Result<Flags, String> {
    let mut flags = Flags {
        args: ReproArgs::default(),
        jobs: 1,
        out: None,
    };
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let value = it
            .next()
            .ok_or_else(|| format!("flag {flag} needs a value"))?;
        match flag.as_str() {
            "--window" => {
                flags.args.window = value.parse().map_err(|e| format!("--window: {e}"))?
            }
            "--seed" => flags.args.seed = value.parse().map_err(|e| format!("--seed: {e}"))?,
            "--count" => flags.args.count = value.parse().map_err(|e| format!("--count: {e}"))?,
            "--jobs" => flags.jobs = value.parse().map_err(|e| format!("--jobs: {e}"))?,
            "--out" => flags.out = Some(value.clone()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(flags)
}

/// Runs `names` and prints the stitched output; wall/digest accounting goes
/// to stderr so stdout stays byte-identical across job counts.
fn run_and_print(names: &[&str], flags: &Flags, headers: bool) -> Result<(), String> {
    // A process-wide AQUA_TRACE capture needs one journal in deterministic
    // event order, so it forces the sequential passthrough path.
    let passthrough = trace::journal().is_some();
    if passthrough && flags.jobs > 1 {
        eprintln!("aqua-repro: AQUA_TRACE is set; forcing --jobs 1 (passthrough trace)");
    }
    let outcome = run_suite(names, &flags.args, flags.jobs, headers, passthrough)?;
    print!("{}", outcome.output);
    eprintln!(
        "aqua-repro: {} points over {} jobs in {:.2}s, {} events, digest {:016x}",
        outcome.experiments.iter().map(|e| e.points).sum::<usize>(),
        outcome.jobs,
        outcome.wall.as_secs_f64(),
        outcome.total_events,
        outcome.combined_digest
    );
    trace::finish();
    Ok(())
}

/// JSON for one suite run (hand-rolled: stable key order, no deps).
fn suite_json(label: &str, o: &SuiteOutcome) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "    \"{label}\": {{\n      \"jobs\": {},\n      \"wall_s\": {:.4},\n      \"experiments\": {{\n",
        o.jobs,
        o.wall.as_secs_f64()
    ));
    for (i, e) in o.experiments.iter().enumerate() {
        let comma = if i + 1 < o.experiments.len() { "," } else { "" };
        s.push_str(&format!(
            "        \"{}\": {{\"points\": {}, \"wall_s\": {:.4}}}{comma}\n",
            e.name,
            e.points,
            e.wall.as_secs_f64()
        ));
    }
    s.push_str("      }\n    }");
    s
}

/// The `bench` subcommand: sequential vs parallel suite, identity check,
/// BENCH json.
fn bench(flags: &Flags) -> Result<(), String> {
    if trace::journal().is_some() {
        return Err("bench mode measures the untraced path; unset AQUA_TRACE".into());
    }
    let names: Vec<&str> = EXPERIMENTS.iter().map(|(n, _)| *n).collect();
    let jobs = if flags.jobs > 1 {
        flags.jobs
    } else {
        default_jobs()
    };
    eprintln!("aqua-repro bench: sequential pass…");
    let seq = run_suite(&names, &flags.args, 1, true, false)?;
    eprintln!(
        "aqua-repro bench: sequential {:.2}s, digest {:016x}; parallel pass ({jobs} jobs)…",
        seq.wall.as_secs_f64(),
        seq.combined_digest
    );
    let par = run_suite(&names, &flags.args, jobs, true, false)?;
    eprintln!(
        "aqua-repro bench: parallel {:.2}s, digest {:016x}",
        par.wall.as_secs_f64(),
        par.combined_digest
    );

    if seq.output != par.output {
        return Err(format!(
            "parallel output differs from sequential ({} vs {} bytes)",
            par.output.len(),
            seq.output.len()
        ));
    }
    if seq.combined_digest != par.combined_digest {
        return Err(format!(
            "determinism digest mismatch: sequential {:016x} vs parallel {:016x}",
            seq.combined_digest, par.combined_digest
        ));
    }

    let speedup = seq.wall.as_secs_f64() / par.wall.as_secs_f64().max(1e-9);
    let json = format!(
        "{{\n  \"bench\": \"aqua-repro suite\",\n  \"pr\": 4,\n  \"host_cores\": {},\n  \"points\": {},\n  \"total_events\": {},\n  \"combined_digest\": \"{:016x}\",\n  \"digests_match\": true,\n  \"output_identical\": true,\n  \"speedup\": {:.2},\n  \"runs\": {{\n{},\n{}\n  }}\n}}\n",
        default_jobs(),
        seq.experiments.iter().map(|e| e.points).sum::<usize>(),
        seq.total_events,
        seq.combined_digest,
        speedup,
        suite_json("sequential", &seq),
        suite_json("parallel", &par)
    );
    let out = flags.out.as_deref().unwrap_or("BENCH_pr4.json");
    std::fs::write(out, &json).map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "bench: {} points; sequential {:.2}s, parallel {:.2}s over {} jobs ({speedup:.2}x); digest {:016x}; wrote {out}",
        seq.experiments.iter().map(|e| e.points).sum::<usize>(),
        seq.wall.as_secs_f64(),
        par.wall.as_secs_f64(),
        par.jobs,
        seq.combined_digest
    );
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else {
        eprintln!(
            "usage: aqua-repro <experiment|list|all|bench> [--window S] [--seed N] [--count N] [--jobs N] [--out FILE]"
        );
        return ExitCode::FAILURE;
    };
    if cmd == "list" {
        println!("available experiments:");
        for (name, what) in EXPERIMENTS {
            println!("  {name:<10} {what}");
        }
        return ExitCode::SUCCESS;
    }
    let flags = match parse_flags(&argv[1..]) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "all" => {
            let names: Vec<&str> = EXPERIMENTS.iter().map(|(n, _)| *n).collect();
            run_and_print(&names, &flags, true)
        }
        "bench" => bench(&flags),
        name => run_and_print(&[name], &flags, false),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
