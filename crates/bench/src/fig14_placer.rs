//! Figure 14 / §A.1 — AQUA-PLACER convergence time.
//!
//! The paper solves Algorithm 1 with Gurobi on clusters of 8-GPU servers,
//! 16–128 GPUs total: "less than 45 seconds when we have a mix of models
//! and less than one second when we have 50% LLM producers and 50% LLM
//! consumers. It takes longer to converge with multiple modality models
//! because … the solution space has to test for more matchings."
//!
//! Our exact solver shows the same structure for the same reason: mixed
//! inputs have more distinct model types, which blows up the DP state
//! space, while the 2-type LLM-only input stays tiny.

use aqua_metrics::table::Table;
use aqua_placer::instance::{ModelSpec, PlacementInstance};
use aqua_placer::solver::solve_optimal_stats;
use std::time::Instant;

const GB: u64 = 1 << 30;

/// The paper's mixed-modality input: 1/3 image producers, 1/3 audio
/// producers, 1/3 LLM consumers (three distinct types).
pub fn mixed_instance(gpus: usize) -> PlacementInstance {
    let servers = gpus / 8;
    let third = gpus / 3;
    let mut models = Vec::new();
    for i in 0..third {
        models.push(ModelSpec::producer(format!("img{i}"), 50 * GB));
    }
    for i in 0..third {
        models.push(ModelSpec::producer(format!("aud{i}"), 60 * GB));
    }
    for i in 0..(gpus - 2 * third) {
        models.push(ModelSpec::consumer(format!("llm{i}"), 30 * GB));
    }
    PlacementInstance::new(servers, 8, 80 * GB, models)
}

/// The paper's easy input: 50% LLM producers, 50% LLM consumers.
pub fn llm_only_instance(gpus: usize) -> PlacementInstance {
    let servers = gpus / 8;
    let half = gpus / 2;
    let mut models = Vec::new();
    for i in 0..half {
        models.push(ModelSpec::producer(format!("llm-p{i}"), 40 * GB));
    }
    for i in 0..(gpus - half) {
        models.push(ModelSpec::consumer(format!("llm-c{i}"), 35 * GB));
    }
    PlacementInstance::new(servers, 8, 80 * GB, models)
}

/// One measured point. The DP state counts are the deterministic,
/// machine-independent convergence-cost metric the table reports; the wall
/// seconds ride along for local inspection (they vary run to run, so the
/// reproducible output never prints them).
#[derive(Debug, Clone, Copy)]
pub struct ConvergencePoint {
    /// Total GPUs in the cluster.
    pub gpus: usize,
    /// Distinct DP states for the mixed-modality input.
    pub mixed_states: usize,
    /// Server-fill enumerations for the mixed-modality input.
    pub mixed_expansions: u64,
    /// Distinct DP states for the LLM-only input.
    pub llm_states: usize,
    /// Server-fill enumerations for the LLM-only input.
    pub llm_expansions: u64,
    /// Wall-clock solve time for the mixed input, seconds.
    pub mixed_secs: f64,
    /// Wall-clock solve time for the LLM-only input, seconds.
    pub llm_secs: f64,
}

/// Measures solver convergence across cluster sizes.
pub fn run(gpu_counts: &[usize]) -> Vec<ConvergencePoint> {
    gpu_counts
        .iter()
        .map(|&gpus| {
            let mixed = mixed_instance(gpus);
            let t0 = Instant::now();
            let (pm, sm) = solve_optimal_stats(&mixed);
            let mixed_secs = t0.elapsed().as_secs_f64();
            pm.validate(&mixed).expect("feasible");

            let llm = llm_only_instance(gpus);
            let t1 = Instant::now();
            let (pl, sl) = solve_optimal_stats(&llm);
            let llm_secs = t1.elapsed().as_secs_f64();
            pl.validate(&llm).expect("feasible");

            ConvergencePoint {
                gpus,
                mixed_states: sm.dp_states,
                mixed_expansions: sm.expansions,
                llm_states: sl.dp_states,
                llm_expansions: sl.expansions,
                mixed_secs,
                llm_secs,
            }
        })
        .collect()
}

/// Renders the convergence table: deterministic solver-work counters only,
/// so `aqua-repro` output stays byte-identical across runs and hosts.
pub fn table(points: &[ConvergencePoint]) -> Table {
    let mut t = Table::new(
        "Figure 14: AQUA-PLACER convergence cost (8-GPU servers, DP work)",
        &[
            "gpus",
            "mixed_dp_states",
            "mixed_expansions",
            "llm_dp_states",
            "llm_expansions",
        ],
    );
    for p in points {
        t.row(&[
            p.gpus.to_string(),
            p.mixed_states.to_string(),
            p.mixed_expansions.to_string(),
            p.llm_states.to_string(),
            p.llm_expansions.to_string(),
        ]);
    }
    t
}

/// The paper's Figure 14 cluster sizes.
pub const PAPER_GPU_COUNTS: [usize; 5] = [16, 32, 64, 96, 128];

/// One sweep point per cluster size. The exact DP's cost grows
/// combinatorially with `gpus`, so each point carries a `gpus³` cost hint —
/// the parallel suite starts the 128-GPU solve first and overlaps the whole
/// rest of the evaluation with it.
pub fn repro_points(_a: &crate::runner::ReproArgs) -> Vec<crate::runner::ReproPoint> {
    PAPER_GPU_COUNTS
        .iter()
        .map(|&gpus| {
            crate::runner::ReproPoint::new("fig14", format!("gpus={gpus}"), move || {
                format!("{}\n", table(&run(&[gpus])))
            })
            .with_cost_hint((gpus as u64).pow(3))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_holds_at_small_scale() {
        let pts = run(&[16, 24]);
        for p in &pts {
            assert!(
                p.llm_states <= p.mixed_states,
                "LLM-only ({} states) should not exceed mixed ({} states)",
                p.llm_states,
                p.mixed_states
            );
            assert!(p.llm_expansions <= p.mixed_expansions);
        }
        assert!(!table(&pts).is_empty());
    }

    #[test]
    fn instances_are_well_formed() {
        let m = mixed_instance(24);
        assert_eq!(m.models.len(), 24);
        assert_eq!(m.servers, 3);
        let l = llm_only_instance(16);
        assert_eq!(l.models.len(), 16);
    }
}
