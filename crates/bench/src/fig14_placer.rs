//! Figure 14 / §A.1 — AQUA-PLACER convergence time.
//!
//! The paper solves Algorithm 1 with Gurobi on clusters of 8-GPU servers,
//! 16–128 GPUs total: "less than 45 seconds when we have a mix of models
//! and less than one second when we have 50% LLM producers and 50% LLM
//! consumers. It takes longer to converge with multiple modality models
//! because … the solution space has to test for more matchings."
//!
//! Our exact solver shows the same structure for the same reason: mixed
//! inputs have more distinct model types, which blows up the DP state
//! space, while the 2-type LLM-only input stays tiny. The catalog DP with
//! incumbent pruning converges fast enough that we extend the sweep
//! *past* the paper: a 256-GPU cluster and a 4-type "mixed+LoRA" input
//! (image + audio producers, LLM + LoRA consumers) that Gurobi's reported
//! trend suggests would take minutes.

use aqua_metrics::table::Table;
use aqua_placer::instance::{ModelSpec, PlacementInstance};
use aqua_placer::solver::solve_optimal_stats;
use std::time::Instant;

const GB: u64 = 1 << 30;

/// The paper's mixed-modality input: 1/3 image producers, 1/3 audio
/// producers, 1/3 LLM consumers (three distinct types).
pub fn mixed_instance(gpus: usize) -> PlacementInstance {
    let servers = gpus / 8;
    let third = gpus / 3;
    let mut models = Vec::new();
    for i in 0..third {
        models.push(ModelSpec::producer(format!("img{i}"), 50 * GB));
    }
    for i in 0..third {
        models.push(ModelSpec::producer(format!("aud{i}"), 60 * GB));
    }
    for i in 0..(gpus - 2 * third) {
        models.push(ModelSpec::consumer(format!("llm{i}"), 30 * GB));
    }
    PlacementInstance::new(servers, 8, 80 * GB, models)
}

/// Beyond the paper: a four-type input adding LoRA-serving consumers to
/// the modality mix — 1/4 image producers, 1/4 audio producers, 1/4 LLM
/// consumers, 1/4 LoRA consumers. One more distinct type multiplies the
/// DP state space, which is exactly what made the pre-catalog solver
/// impractical here.
pub fn mixed_lora_instance(gpus: usize) -> PlacementInstance {
    let servers = gpus / 8;
    let quarter = gpus / 4;
    let mut models = Vec::new();
    for i in 0..quarter {
        models.push(ModelSpec::producer(format!("img{i}"), 50 * GB));
    }
    for i in 0..quarter {
        models.push(ModelSpec::producer(format!("aud{i}"), 60 * GB));
    }
    for i in 0..quarter {
        models.push(ModelSpec::consumer(format!("llm{i}"), 30 * GB));
    }
    for i in 0..(gpus - 3 * quarter) {
        models.push(ModelSpec::consumer(format!("lora{i}"), 10 * GB));
    }
    PlacementInstance::new(servers, 8, 80 * GB, models)
}

/// The paper's easy input: 50% LLM producers, 50% LLM consumers.
pub fn llm_only_instance(gpus: usize) -> PlacementInstance {
    let servers = gpus / 8;
    let half = gpus / 2;
    let mut models = Vec::new();
    for i in 0..half {
        models.push(ModelSpec::producer(format!("llm-p{i}"), 40 * GB));
    }
    for i in 0..(gpus - half) {
        models.push(ModelSpec::consumer(format!("llm-c{i}"), 35 * GB));
    }
    PlacementInstance::new(servers, 8, 80 * GB, models)
}

/// One measured point. The DP state counts are the deterministic,
/// machine-independent convergence-cost metric the table reports; the wall
/// seconds ride along for local inspection (they vary run to run, so the
/// reproducible output never prints them).
#[derive(Debug, Clone, Copy)]
pub struct ConvergencePoint {
    /// Total GPUs in the cluster.
    pub gpus: usize,
    /// Distinct DP states for the mixed-modality input (3 types).
    pub mixed_states: usize,
    /// Server-fill expansions for the mixed-modality input.
    pub mixed_expansions: u64,
    /// Distinct DP states for the mixed+LoRA input (4 types).
    pub lora_states: usize,
    /// Server-fill expansions for the mixed+LoRA input.
    pub lora_expansions: u64,
    /// Distinct DP states for the LLM-only input (2 types).
    pub llm_states: usize,
    /// Server-fill expansions for the LLM-only input.
    pub llm_expansions: u64,
    /// Wall-clock solve time for the mixed input, seconds.
    pub mixed_secs: f64,
    /// Wall-clock solve time for the mixed+LoRA input, seconds.
    pub lora_secs: f64,
    /// Wall-clock solve time for the LLM-only input, seconds.
    pub llm_secs: f64,
}

fn timed_solve(inst: &PlacementInstance) -> (usize, u64, f64) {
    let t0 = Instant::now();
    let (p, s) = solve_optimal_stats(inst);
    let secs = t0.elapsed().as_secs_f64();
    p.validate(inst).expect("feasible");
    (s.dp_states, s.expansions, secs)
}

/// Measures solver convergence across cluster sizes.
pub fn run(gpu_counts: &[usize]) -> Vec<ConvergencePoint> {
    gpu_counts
        .iter()
        .map(|&gpus| {
            let (mixed_states, mixed_expansions, mixed_secs) = timed_solve(&mixed_instance(gpus));
            let (lora_states, lora_expansions, lora_secs) = timed_solve(&mixed_lora_instance(gpus));
            let (llm_states, llm_expansions, llm_secs) = timed_solve(&llm_only_instance(gpus));
            ConvergencePoint {
                gpus,
                mixed_states,
                mixed_expansions,
                lora_states,
                lora_expansions,
                llm_states,
                llm_expansions,
                mixed_secs,
                lora_secs,
                llm_secs,
            }
        })
        .collect()
}

/// Renders the convergence table: deterministic solver-work counters only,
/// so `aqua-repro` output stays byte-identical across runs and hosts.
pub fn table(points: &[ConvergencePoint]) -> Table {
    let mut t = Table::new(
        "Figure 14: AQUA-PLACER convergence cost (8-GPU servers, DP work)",
        &[
            "gpus",
            "mixed_dp_states",
            "mixed_expansions",
            "lora_dp_states",
            "lora_expansions",
            "llm_dp_states",
            "llm_expansions",
        ],
    );
    for p in points {
        t.row(&[
            p.gpus.to_string(),
            p.mixed_states.to_string(),
            p.mixed_expansions.to_string(),
            p.lora_states.to_string(),
            p.lora_expansions.to_string(),
            p.llm_states.to_string(),
            p.llm_expansions.to_string(),
        ]);
    }
    t
}

/// The paper's Figure 14 cluster sizes.
pub const PAPER_GPU_COUNTS: [usize; 5] = [16, 32, 64, 96, 128];

/// Our extended sweep: the paper's sizes plus a 256-GPU point the catalog
/// DP makes affordable.
pub const EXTENDED_GPU_COUNTS: [usize; 6] = [16, 32, 64, 96, 128, 256];

/// One sweep point per cluster size. With the catalog DP the solve cost
/// grows roughly with the DP state count — about `gpus²` per type beyond
/// two, so the hint scales `gpus²` for the dominant mixed inputs with a
/// ×4 for the extra LoRA type; the parallel suite still starts the
/// heaviest (256-GPU) point first, but fig14 no longer owns the schedule
/// tail.
pub fn repro_points(_a: &crate::runner::ReproArgs) -> Vec<crate::runner::ReproPoint> {
    EXTENDED_GPU_COUNTS
        .iter()
        .map(|&gpus| {
            crate::runner::ReproPoint::new("fig14", format!("gpus={gpus}"), move || {
                format!("{}\n", table(&run(&[gpus])))
            })
            .with_cost_hint(4 * (gpus as u64).pow(2))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_holds_at_small_scale() {
        let pts = run(&[16, 24]);
        for p in &pts {
            assert!(
                p.llm_states <= p.mixed_states,
                "LLM-only ({} states) should not exceed mixed ({} states)",
                p.llm_states,
                p.mixed_states
            );
            assert!(p.llm_expansions <= p.mixed_expansions);
            // The raw 4-type state space is larger than the 3-type one, but
            // the incumbent bound prunes the balanced mixed+LoRA input far
            // harder (greedy lands near the optimum there), so its *visited*
            // state count can undercut the 3-type mixed input. The sound
            // cross-input claim is against the 2-type LLM baseline.
            assert!(
                p.lora_states >= p.llm_states,
                "4-type mixed+LoRA ({} states) should not undercut 2-type LLM-only ({})",
                p.lora_states,
                p.llm_states
            );
        }
        assert!(!table(&pts).is_empty());
    }

    #[test]
    fn instances_are_well_formed() {
        let m = mixed_instance(24);
        assert_eq!(m.models.len(), 24);
        assert_eq!(m.servers, 3);
        let l = llm_only_instance(16);
        assert_eq!(l.models.len(), 16);
        let lora = mixed_lora_instance(32);
        assert_eq!(lora.models.len(), 32);
        let distinct: std::collections::HashSet<i64> =
            lora.models.iter().map(|m| m.mem_bytes).collect();
        assert_eq!(distinct.len(), 4, "mixed+LoRA spans four types");
    }
}
