//! `aqua-repro coord_chaos` — serving through a control-plane failure.
//!
//! The other chaos experiments kill GPUs and links; this one kills the
//! *coordinator* (DESIGN §4.12). A gateway serves the chat/code/batch
//! tenant mix on GPU 0 with AQUA swap offload, a Llama-2-13B producer on
//! GPU 1 donates through its llm-informer — the live informer path, not a
//! static lease — and mid-trace the control plane fails one of two ways:
//!
//! * **Crash** ([`FaultKind::CoordinatorCrash`]): the coordinator process
//!   dies, losing its entire lease book, and rebuilds after a delay with a
//!   bumped epoch. Both sides run autonomously while it is down (consumer
//!   swaps pin to DRAM, the informer skips its verbs), then reconstruct:
//!   the informer re-registers its full inventory via `resync_report` and
//!   stale-epoch verbs bounce off the fence.
//! * **Partition** ([`FaultKind::Partition`]): the coordinator stays up but
//!   the producer cannot reach it. Its heartbeats lapse, the chaos TTL
//!   expires the lease underneath the consumer, and the books re-converge
//!   through the same-epoch resync path after the heal.
//!
//! Each faulted cell also runs its fault-free twin (journal-silent) and
//! reports the chat-goodput ratio — the acceptance bound is ≥ 90% — plus
//! the recovery-to-first-regrant clock from the coordinator's own metrics.
//! Zero truncated streams and a clean audit are part of the bar: a
//! control-plane outage may slow requests down, it must never lose one.
//!
//! [`FaultKind::CoordinatorCrash`]: aqua_sim::fault::FaultKind
//! [`FaultKind::Partition`]: aqua_sim::fault::FaultKind

use crate::setup::{OffloadKind, ServerCtx};
use aqua_core::coordinator::FailureConfig;
use aqua_core::informer::LlmInformerConfig;
use aqua_engines::driver::{Driver, Engine};
use aqua_engines::vllm::PreemptionPolicy;
use aqua_gateway::engine::{GatewayConfig, GatewayEngine};
use aqua_gateway::scheduler::PolicyKind;
use aqua_metrics::goodput::{GoodputReport, SloSpec};
use aqua_metrics::streaming::StreamLog;
use aqua_metrics::table::Table;
use aqua_models::zoo;
use aqua_sim::audit::SharedAuditor;
use aqua_sim::fault::FaultPlan;
use aqua_sim::gpu::{GpuId, GpuSpec};
use aqua_sim::link::bytes::gib;
use aqua_sim::time::SimTime;
use aqua_telemetry::SharedTracer;
use aqua_workloads::tenants::{tenant_trace, TENANT_CHAT};
use std::sync::Arc;

/// Chat TTFT SLO the goodput judgement uses, seconds (same bound as
/// `serve_chaos`, so the two chaos studies score against one objective).
pub const CHAT_SLO_TTFT_S: f64 = 30.0;

/// The control-plane outage window `(start_s, end_s)`, replayed identically
/// by the crash and partition cells. 40 s is long enough to cross both the
/// coordinator's 10 s heartbeat TTL and the consumer's 30 s conservative
/// local-revocation deadline.
pub const OUTAGE_WINDOW_SECS: (u64, u64) = (20, 60);

/// Experiment parameters shared by every cell.
#[derive(Debug, Clone, Copy)]
pub struct CoordChaosConfig {
    /// Chat-tenant request rate, req/s. Kept at 1 so the arrival span
    /// comfortably brackets the outage window.
    pub rate: f64,
    /// Chat-tenant request count.
    pub count: usize,
    /// Workload seed.
    pub seed: u64,
    /// Consumer KV pool bytes (tight, to force offload traffic).
    pub pool_bytes: u64,
}

impl CoordChaosConfig {
    /// The standard configuration. `count` is clamped so the arrival span
    /// always extends past the heal at [`OUTAGE_WINDOW_SECS`]`.1` — the
    /// recovery clock needs post-outage ticks to observe the first regrant.
    pub fn standard(count: usize, seed: u64) -> Self {
        CoordChaosConfig {
            rate: 1.0,
            count: count.clamp(80, 90),
            seed,
            pool_bytes: gib(3),
        }
    }

    /// Goodput measurement horizon, seconds.
    pub fn measure_horizon_s(&self) -> f64 {
        self.count as f64 / self.rate + 60.0
    }

    /// Simulation horizon: slack past the last arrival so every stream
    /// drains and the post-recovery reconciliation completes.
    pub fn horizon(&self) -> SimTime {
        SimTime::from_secs((self.count as f64 / self.rate) as u64 + 400)
    }
}

/// The fault axis of one cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoordCell {
    /// No fault — the goodput yardstick.
    FaultFree,
    /// Coordinator process crash: lease book lost, epoch bumped on rebuild.
    Crash,
    /// The producer loses the coordinator; the coordinator stays up.
    Partition,
}

impl CoordCell {
    /// Every cell, in suite (and shard, and repro-point) order.
    pub fn all() -> [CoordCell; 3] {
        [CoordCell::FaultFree, CoordCell::Crash, CoordCell::Partition]
    }

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            CoordCell::FaultFree => "faultfree",
            CoordCell::Crash => "crash",
            CoordCell::Partition => "partition",
        }
    }

    /// The fault plan this cell replays, if any. The partition split is 1:
    /// GPU 0 (the consumer) keeps control-plane reachability, GPU 1 (the
    /// producer) goes dark.
    pub fn plan(&self) -> Option<FaultPlan> {
        let (start, end) = OUTAGE_WINDOW_SECS;
        let (start, end) = (SimTime::from_secs(start), SimTime::from_secs(end));
        match self {
            CoordCell::FaultFree => None,
            CoordCell::Crash => {
                Some(FaultPlan::new().coordinator_crash(start, end.duration_since(start)))
            }
            CoordCell::Partition => Some(FaultPlan::new().partition(1, start, end)),
        }
    }
}

/// What one cell produced.
#[derive(Debug)]
pub struct CoordChaosRun {
    /// The cell that ran.
    pub cell: CoordCell,
    /// Per-request token streams.
    pub streams: StreamLog,
    /// Streams that delivered no tokens (must be zero: an outage may slow
    /// requests, never lose them).
    pub truncated: usize,
    /// Requests refused, cancelled or aborted by the gateway.
    pub dropped: usize,
    /// Chat-tenant goodput against [`CHAT_SLO_TTFT_S`].
    pub chat: GoodputReport,
    /// Chat goodput of the fault-free twin (the denominator of `ratio`);
    /// `None` for the fault-free cell itself.
    pub twin_chat: Option<GoodputReport>,
    /// Final coordinator epoch (2 after a crash, 1 otherwise).
    pub epoch: u64,
    /// Seconds from coordinator recovery to the first re-grant in the new
    /// epoch; `None` unless the cell crashed the coordinator.
    pub regrant_secs: Option<f64>,
    /// Simulator events the cell's driver processed.
    pub sim_events: u64,
}

impl CoordChaosRun {
    /// Chat goodput as a fraction of the fault-free twin.
    pub fn goodput_ratio(&self) -> Option<f64> {
        let twin = self.twin_chat.as_ref()?;
        if twin.goodput_tps() == 0.0 {
            return None;
        }
        Some(self.chat.goodput_tps() / twin.goodput_tps())
    }
}

/// One gateway+producer run of the timeline, with `cell`'s fault plan
/// installed (or none). Returns the run minus twin/ratio bookkeeping.
fn run_once(
    cfg: &CoordChaosConfig,
    cell: CoordCell,
    tracer: SharedTracer,
    auditor: Option<SharedAuditor>,
) -> CoordChaosRun {
    let mix = tenant_trace(cfg.rate, cfg.count, cfg.seed);
    let mut ctx = ServerCtx::two_gpu_traced(tracer.clone());
    if let Some(aud) = &auditor {
        ctx = ctx.with_auditor(aud.clone());
    }
    ctx.coordinator.set_failure_config(FailureConfig::chaos());
    if let Some(plan) = cell.plan() {
        let plan = Arc::new(plan);
        ctx = ctx.with_fault_plan(Arc::clone(&plan));
        plan.emit(&tracer);
    }
    let geom = *zoo::codellama_34b().llm_geometry().unwrap();
    let mut gateway = GatewayEngine::new(
        geom,
        GpuSpec::a100_80g(),
        PolicyKind::SjfBucket,
        GatewayConfig {
            kv_pool_bytes: cfg.pool_bytes,
            preemption: PreemptionPolicy::Swap,
            max_outstanding_per_tenant: 8,
            ..GatewayConfig::default()
        },
    )
    .with_tenants(mix.tenant_of.clone())
    .with_tracer(tracer.clone(), format!("coord:{}", cell.label()))
    .with_offloader(ctx.offloader(OffloadKind::Aqua, GpuId(0)));
    if let Some(aud) = &auditor {
        gateway = gateway.with_auditor(aud.clone());
    }
    let mut producer =
        ctx.llm_producer_with_informer(&zoo::llama2_13b(), GpuId(1), LlmInformerConfig::default());

    let mut driver = Driver::new();
    if let Some(aud) = &auditor {
        driver.set_auditor(aud.clone());
    }
    driver.schedule_trace(0, mix.trace);
    {
        let mut engines: Vec<&mut dyn Engine> = vec![&mut gateway, &mut producer];
        driver.run(&mut engines, cfg.horizon());
    }
    let streams = gateway.drain_streams();
    let truncated = streams
        .streams()
        .iter()
        .filter(|s| s.tokens.is_empty())
        .count();
    let chat = streams
        .tenant(TENANT_CHAT)
        .goodput(&SloSpec::ttft(CHAT_SLO_TTFT_S), cfg.measure_horizon_s());
    let (recovered_at, first_regrant_at) = ctx.coordinator.recovery_metrics();
    let regrant_secs = match (recovered_at, first_regrant_at) {
        (Some(r), Some(g)) if g >= r => Some(g.duration_since(r).as_secs_f64()),
        _ => None,
    };
    let outcomes = gateway.outcomes();
    CoordChaosRun {
        cell,
        truncated,
        dropped: outcomes.shed() + outcomes.timed_out() + outcomes.crash_aborted(),
        chat,
        twin_chat: None,
        epoch: ctx.coordinator.epoch(),
        regrant_secs,
        streams,
        sim_events: driver.processed_events(),
    }
}

/// Runs one cell with the process tracer.
pub fn run_cell(cfg: &CoordChaosConfig, cell: CoordCell) -> CoordChaosRun {
    run_cell_traced(cfg, cell, crate::trace::tracer(), None)
}

/// Runs one cell, journalling into `tracer` and (optionally) under a
/// runtime auditor. Faulted cells additionally run their fault-free twin
/// journal-silent, so [`CoordChaosRun::goodput_ratio`] has its denominator;
/// the twin never touches `tracer`, keeping digests comparable across
/// audited/unaudited and sweep/sharded paths.
pub fn run_cell_traced(
    cfg: &CoordChaosConfig,
    cell: CoordCell,
    tracer: SharedTracer,
    auditor: Option<SharedAuditor>,
) -> CoordChaosRun {
    let mut run = run_once(cfg, cell, tracer, auditor);
    if cell != CoordCell::FaultFree {
        let twin = run_once(
            cfg,
            CoordCell::FaultFree,
            aqua_telemetry::null_tracer(),
            None,
        );
        run.twin_chat = Some(twin.chat);
    }
    run
}

/// Renders one cell exactly the way its `aqua-repro` suite point does, so
/// the sharded path and the sweep path emit byte-identical output.
pub fn render_cell(run: &CoordChaosRun) -> String {
    format!(
        "{}\n",
        cell_table(
            std::slice::from_ref(run),
            &format!("Coord-chaos `{}` control-plane recovery", run.cell.label()),
        )
    )
}

/// Renders cells as the recovery table.
pub fn cell_table(runs: &[CoordChaosRun], title: &str) -> Table {
    let mut t = Table::new(
        title,
        &[
            "cell",
            "streams",
            "truncated",
            "dropped",
            "chat_n",
            "chat_met",
            "chat_goodput_tps",
            "goodput_ratio",
            "epoch",
            "regrant_s",
        ],
    );
    for run in runs {
        t.row(&[
            run.cell.label().to_owned(),
            run.streams.len().to_string(),
            run.truncated.to_string(),
            run.dropped.to_string(),
            run.chat.streams.to_string(),
            run.chat.slo_met_streams.to_string(),
            format!("{:.1}", run.chat.goodput_tps()),
            run.goodput_ratio()
                .map_or("-".to_owned(), |r| format!("{r:.3}")),
            run.epoch.to_string(),
            run.regrant_secs
                .map_or("-".to_owned(), |s| format!("{s:.1}")),
        ]);
    }
    t
}

/// Runs every cell with each cell as its own PDES shard (decoupled: cells
/// never share simulator state). Output and the folded digest are identical
/// at every lane count. With `audited`, the faulted cells run under a
/// collecting [`Auditor`] and panic the shard on any violation.
///
/// [`Auditor`]: aqua_sim::audit::Auditor
pub fn run_sharded(
    count: usize,
    seed: u64,
    lanes: usize,
    audited: bool,
) -> (String, crate::lanes::LaneOutcome<String>) {
    use crate::lanes::{run_decoupled, ShardFinish};
    use aqua_sim::audit::Auditor;
    let tasks: Vec<Box<dyn FnOnce() -> ShardFinish<String> + Send>> = CoordCell::all()
        .into_iter()
        .map(|cell| {
            let task: Box<dyn FnOnce() -> ShardFinish<String> + Send> = Box::new(move || {
                let cfg = CoordChaosConfig::standard(count, seed);
                let auditor = (audited && cell != CoordCell::FaultFree).then(Auditor::collecting);
                let run = run_cell_traced(&cfg, cell, crate::trace::tracer(), auditor.clone());
                if let Some(a) = auditor {
                    assert!(
                        a.is_clean(),
                        "audited coord-chaos shard `{}` tripped: {:?}",
                        cell.label(),
                        a.violations()
                    );
                }
                ShardFinish {
                    sim_events: run.sim_events,
                    output: render_cell(&run),
                }
            });
            task
        })
        .collect();
    let outcome = run_decoupled(tasks, lanes);
    let output: String = outcome.shards.iter().map(|s| s.output.as_str()).collect();
    (output, outcome)
}

/// The `aqua-repro` decomposition: one point per cell, rendered through the
/// same [`render_cell`] the sharded path uses.
pub fn repro_points(a: &crate::runner::ReproArgs) -> Vec<crate::runner::ReproPoint> {
    use crate::runner::ReproPoint;
    let (count, seed) = (a.count, a.seed);
    CoordCell::all()
        .into_iter()
        .map(|cell| {
            let label = format!("cell={}", cell.label());
            ReproPoint::new("coord_chaos", label, move || {
                let cfg = CoordChaosConfig::standard(count, seed);
                render_cell(&run_cell(&cfg, cell))
            })
            .with_cost_hint(if cell == CoordCell::FaultFree { 1 } else { 2 })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_sim::audit::Auditor;
    use aqua_telemetry::JournalTracer;

    fn cfg() -> CoordChaosConfig {
        CoordChaosConfig::standard(80, 7)
    }

    #[test]
    fn crash_cell_recovers_goodput_without_losing_streams() {
        // Acceptance: a mid-trace coordinator crash recovers to >= 90% of
        // the fault-free chat goodput, with zero audit violations, zero
        // truncated streams, and the epoch fence engaged end to end.
        let cfg = cfg();
        let auditor = Auditor::collecting();
        let journal = Arc::new(JournalTracer::new());
        let run = run_cell_traced(
            &cfg,
            CoordCell::Crash,
            journal.clone(),
            Some(auditor.clone()),
        );
        assert!(
            auditor.is_clean(),
            "audit tripped: {:?}",
            auditor.violations()
        );
        assert_eq!(
            run.truncated, 0,
            "a control-plane outage must not lose streams"
        );
        assert_eq!(run.dropped, 0, "nothing was shed or aborted");
        assert_eq!(run.epoch, 2, "the crash must have bumped the epoch");
        let ratio = run.goodput_ratio().expect("crash cell has a twin");
        assert!(
            ratio >= 0.9,
            "crash cell must recover to >= 90% of fault-free goodput, got {ratio:.3}"
        );
        let regrant = run.regrant_secs.expect("recovery must re-grant a lease");
        assert!(
            regrant < 30.0,
            "first regrant should land soon after rebuild, took {regrant:.1}s"
        );
        // The epoch machinery actually fired on the wire.
        let names: Vec<&'static str> = journal.events().iter().map(|e| e.name()).collect();
        for expected in [
            "coordinator_crashed",
            "epoch_bumped",
            "coordinator_recovered",
        ] {
            assert!(names.contains(&expected), "missing {expected} in journal");
        }
    }

    #[test]
    fn partition_cell_reconverges_in_the_same_epoch() {
        let cfg = cfg();
        let auditor = Auditor::collecting();
        let journal = Arc::new(JournalTracer::new());
        let run = run_cell_traced(
            &cfg,
            CoordCell::Partition,
            journal.clone(),
            Some(auditor.clone()),
        );
        assert!(
            auditor.is_clean(),
            "audit tripped: {:?}",
            auditor.violations()
        );
        assert_eq!(run.truncated, 0);
        assert_eq!(run.epoch, 1, "a partition never bumps the epoch");
        assert!(run.regrant_secs.is_none(), "no crash, no regrant clock");
        let names: Vec<&'static str> = journal.events().iter().map(|e| e.name()).collect();
        assert!(names.contains(&"partition_started"));
        assert!(names.contains(&"partition_healed"));
        // The producer's heartbeats lapsed while it was dark: the watchdog
        // expired its lease and the informer later resynced the books.
        assert!(
            journal.registry().counter("coordinator.lease_expirations") >= 1,
            "the partition must expire the unheartbeated lease"
        );
        assert!(
            journal.registry().counter("informer.unreachable_ticks") >= 1,
            "the informer must have skipped verbs while dark"
        );
    }

    #[test]
    fn cells_are_seed_deterministic() {
        let cfg = cfg();
        let a = run_cell_traced(&cfg, CoordCell::Crash, Arc::new(JournalTracer::new()), None);
        let b = run_cell_traced(&cfg, CoordCell::Crash, Arc::new(JournalTracer::new()), None);
        assert_eq!(a.streams.ttfts(), b.streams.ttfts());
        assert_eq!(a.chat, b.chat);
        assert_eq!(a.regrant_secs, b.regrant_secs);
    }

    #[test]
    fn tables_render_every_cell() {
        let cfg = CoordChaosConfig::standard(80, 3);
        let runs: Vec<CoordChaosRun> = CoordCell::all()
            .into_iter()
            .map(|c| run_cell_traced(&cfg, c, aqua_telemetry::null_tracer(), None))
            .collect();
        let t = cell_table(&runs, "test");
        assert!(!t.is_empty());
        for run in &runs {
            assert!(!render_cell(run).is_empty());
        }
    }
}
