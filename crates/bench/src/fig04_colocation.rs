//! Figure 4 — why placement matters.
//!
//! Two servers × two GPUs host two vision models and two LLMs. Figure 4a
//! segregates them (LLMs together → no reachable spare HBM); Figure 4b
//! colocates one LLM with one vision model per server. We score both under
//! Equation 5 and *execute* both: the colocated consumer streams its
//! long-prompt context over NVLink, the segregated one falls back to DRAM.

use crate::setup::{opt_flexgen, OffloadKind, ServerCtx};
use aqua_engines::driver::{Driver, Engine};
use aqua_metrics::table::Table;
use aqua_placer::instance::{ModelSpec, PlacementInstance};
use aqua_placer::solver::solve_optimal;
use aqua_sim::gpu::GpuId;
use aqua_sim::link::bytes::gib;
use aqua_sim::time::SimTime;
use aqua_workloads::longprompt::long_prompt_trace;

/// The Figure 4 instance: 2 servers × 2 GPUs, two vision producers and two
/// LLM consumers.
pub fn instance() -> PlacementInstance {
    PlacementInstance::new(
        2,
        2,
        gib(80),
        vec![
            ModelSpec::producer("vision-0", gib(40)),
            ModelSpec::producer("vision-1", gib(40)),
            ModelSpec::consumer("llm-0", gib(12)),
            ModelSpec::consumer("llm-1", gib(12)),
        ],
    )
}

/// Result: objective scores and measured tokens under both placements.
#[derive(Debug, Clone)]
pub struct Fig04Result {
    /// Equation-5 objective of the segregated placement (Figure 4a).
    pub segregated_objective: i128,
    /// Equation-5 objective of the optimizer's placement (Figure 4b).
    pub colocated_objective: i128,
    /// Long-prompt tokens per consumer in `window` seconds, segregated.
    pub segregated_tokens: u64,
    /// Long-prompt tokens per consumer in `window` seconds, colocated.
    pub colocated_tokens: u64,
}

impl Fig04Result {
    /// Runtime benefit of the colocated placement.
    pub fn speedup(&self) -> f64 {
        self.colocated_tokens as f64 / self.segregated_tokens as f64
    }
}

fn run_consumer(colocated: bool, window_secs: u64) -> u64 {
    let ctx = ServerCtx::two_gpu();
    if colocated {
        // Figure 4b: a vision producer shares the server and leases its
        // spare HBM (40 GB, its Figure 2 plateau free memory).
        ctx.static_lease(GpuId(1), gib(24));
    }
    let mut engine = opt_flexgen(&ctx, OffloadKind::Aqua, gib(8));
    let mut driver = Driver::new();
    driver.schedule_trace(0, long_prompt_trace(1, 1_000_000, 0));
    let mut engines: Vec<&mut dyn Engine> = vec![&mut engine];
    driver.run(&mut engines, SimTime::from_secs(window_secs));
    engine.tokens_generated()
}

/// Runs the Figure 4 comparison.
pub fn run(window_secs: u64) -> Fig04Result {
    let inst = instance();
    let optimal = solve_optimal(&inst);
    Fig04Result {
        segregated_objective: inst.objective(&[0, 0, 1, 1]),
        colocated_objective: optimal.objective(&inst),
        segregated_tokens: run_consumer(false, window_secs),
        colocated_tokens: run_consumer(true, window_secs),
    }
}

/// Renders the comparison.
pub fn table(result: &Fig04Result, _window_secs: u64) -> Table {
    let mut t = Table::new(
        "Figure 4: segregated (4a) vs colocated (4b) placement",
        &["placement", "eq5_objective", "consumer_tokens", "relative"],
    );
    t.row(&[
        "4a segregated".into(),
        result.segregated_objective.to_string(),
        result.segregated_tokens.to_string(),
        "1.00x".into(),
    ]);
    t.row(&[
        "4b colocated".into(),
        result.colocated_objective.to_string(),
        result.colocated_tokens.to_string(),
        format!("{:.2}x", result.speedup()),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn colocation_wins_on_paper_and_at_runtime() {
        let r = run(30);
        assert!(
            r.colocated_objective < r.segregated_objective,
            "optimizer prefers colocation under Eq. 5"
        );
        assert!(
            r.speedup() > 3.0,
            "colocated consumer runs at NVLink speed: {:.2}x",
            r.speedup()
        );
        assert_eq!(table(&r, 30).len(), 2);
    }
}
