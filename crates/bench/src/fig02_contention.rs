//! Figure 2 — resource contention across modalities.
//!
//! Sweep the batch size for AudioGen (2a), StableDiffusion (2b) and
//! Llama-2-13B (2c), reporting throughput and free HBM: audio/vision
//! plateau with tens of GB free; the LLM's free memory collapses to ~0 at
//! its peak throughput.

use aqua_metrics::table::Table;
use aqua_models::cost;
use aqua_models::zoo;
use aqua_sim::gpu::GpuSpec;
use aqua_sim::link::GIB;

/// One swept point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Batch size.
    pub batch: u64,
    /// Throughput in items/s (clips, images) or tokens/s (LLM).
    pub throughput: f64,
    /// Free HBM in bytes at that batch.
    pub free_bytes: u64,
}

/// One model's sweep.
#[derive(Debug, Clone)]
pub struct Sweep {
    /// Model name.
    pub model: String,
    /// Throughput unit label.
    pub unit: &'static str,
    /// The swept points (infeasible batches omitted).
    pub points: Vec<Point>,
}

/// Average live context per LLM sequence in the Figure 2c sweep.
pub const LLM_AVG_CONTEXT: u64 = 1024;

/// The batch sizes `aqua-repro` sweeps for Figure 2.
pub const PAPER_BATCHES: &[u64] = &[1, 2, 4, 8, 12, 16, 24, 32, 48, 64, 96];

/// The three modalities Figure 2 sweeps — each one independent sweep point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// Figure 2a: AudioGen.
    Audio,
    /// Figure 2b: StableDiffusion.
    Diffusion,
    /// Figure 2c: Llama-2-13B.
    Llm,
}

impl ModelKind {
    /// All three, in the paper's 2a/2b/2c order.
    pub const ALL: [ModelKind; 3] = [ModelKind::Audio, ModelKind::Diffusion, ModelKind::Llm];
}

/// Runs one modality's sweep (one Figure 2 sub-plot).
pub fn run_model(kind: ModelKind, batches: &[u64]) -> Sweep {
    let gpu = GpuSpec::a100_80g();
    match kind {
        ModelKind::Audio => {
            let audio = zoo::audiogen();
            let ag = audio.audio_geometry().unwrap();
            Sweep {
                model: audio.name.clone(),
                unit: "clips/s",
                points: batches
                    .iter()
                    .filter_map(|&b| {
                        let used = cost::audio_used_bytes(ag, b);
                        (used <= gpu.hbm_bytes).then(|| Point {
                            batch: b,
                            throughput: cost::audio_throughput(ag, &gpu, b),
                            free_bytes: gpu.hbm_bytes - used,
                        })
                    })
                    .collect(),
            }
        }
        ModelKind::Diffusion => {
            let sd = zoo::stable_diffusion();
            let dg = sd.diffusion_geometry().unwrap();
            Sweep {
                model: sd.name.clone(),
                unit: "images/s",
                points: batches
                    .iter()
                    .filter_map(|&b| {
                        let used = cost::diffusion_used_bytes(dg, b);
                        (used <= gpu.hbm_bytes).then(|| Point {
                            batch: b,
                            throughput: cost::diffusion_throughput(dg, &gpu, b),
                            free_bytes: gpu.hbm_bytes - used,
                        })
                    })
                    .collect(),
            }
        }
        ModelKind::Llm => {
            let llama = zoo::llama2_13b();
            let lg = llama.llm_geometry().unwrap();
            Sweep {
                model: llama.name.clone(),
                unit: "tokens/s",
                points: batches
                    .iter()
                    .filter_map(|&b| {
                        let used = cost::llm_static_bytes(lg, b) + lg.kv_bytes(b * LLM_AVG_CONTEXT);
                        (used <= gpu.hbm_bytes).then(|| Point {
                            batch: b,
                            throughput: cost::llm_decode_throughput(
                                lg,
                                &gpu,
                                b,
                                b * LLM_AVG_CONTEXT,
                            ),
                            free_bytes: gpu.hbm_bytes - used,
                        })
                    })
                    .collect(),
            }
        }
    }
}

/// Runs the three sweeps of Figure 2.
pub fn run(batches: &[u64]) -> Vec<Sweep> {
    ModelKind::ALL
        .iter()
        .map(|&k| run_model(k, batches))
        .collect()
}

/// The `aqua-repro` decomposition: one sweep point per modality.
pub fn repro_points(_a: &crate::runner::ReproArgs) -> Vec<crate::runner::ReproPoint> {
    ModelKind::ALL
        .iter()
        .map(|&kind| {
            crate::runner::ReproPoint::new("fig02", format!("{kind:?}"), move || {
                let sweep = run_model(kind, PAPER_BATCHES);
                format!("{}\n", tables(std::slice::from_ref(&sweep))[0])
            })
        })
        .collect()
}

/// Renders the sweeps as one table per model.
pub fn tables(sweeps: &[Sweep]) -> Vec<Table> {
    sweeps
        .iter()
        .map(|s| {
            let mut t = Table::new(
                format!("Figure 2: {} throughput vs free memory", s.model),
                &["batch", "throughput", "unit", "free_gib"],
            );
            for p in &s.points {
                t.row(&[
                    p.batch.to_string(),
                    format!("{:.2}", p.throughput),
                    s.unit.to_owned(),
                    format!("{:.1}", p.free_bytes as f64 / GIB),
                ]);
            }
            t
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_sim::link::bytes::gib;

    fn standard() -> Vec<Sweep> {
        run(&[1, 2, 4, 8, 16, 32, 64, 96])
    }

    #[test]
    fn audio_and_vision_plateau_with_free_memory() {
        let sweeps = standard();
        for s in &sweeps[0..2] {
            let last = s.points.last().unwrap();
            let peak = s.points.iter().map(|p| p.throughput).fold(0.0, f64::max);
            // Plateau: the knee throughput is within 20% of the best…
            let knee = s
                .points
                .iter()
                .find(|p| p.throughput >= 0.8 * peak)
                .unwrap();
            // …and at the knee tens of GB remain free.
            assert!(
                knee.free_bytes > gib(20),
                "{}: {} free at knee",
                s.model,
                knee.free_bytes
            );
            let _ = last;
        }
    }

    #[test]
    fn llm_free_memory_collapses_at_peak() {
        let sweeps = standard();
        let llm = &sweeps[2];
        let peak = llm
            .points
            .iter()
            .max_by(|a, b| a.throughput.partial_cmp(&b.throughput).unwrap())
            .unwrap();
        assert!(
            peak.free_bytes < gib(10),
            "LLM free at peak should be near 0, got {}",
            peak.free_bytes
        );
        // And throughput grows substantially from batch 1 to the peak.
        assert!(peak.throughput > 5.0 * llm.points[0].throughput);
    }

    #[test]
    fn tables_render() {
        let t = tables(&standard());
        assert_eq!(t.len(), 3);
        assert!(!t[0].is_empty());
    }
}
