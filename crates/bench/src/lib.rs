//! # aqua-bench — the figure/table regeneration harness
//!
//! One module per experiment in the paper's evaluation (§6–§8, §A). Each
//! module exposes a `run(...)` function returning structured results plus a
//! `table(...)` rendering of the same rows/series the paper reports. The
//! bench targets in `benches/` are thin `main`s over these functions, so
//! `cargo bench` regenerates every figure and table; the workspace
//! integration tests call the same functions with scaled-down parameters to
//! assert the paper's headline shapes (6× long-prompt throughput, 4× TTFT,
//! ~1.8× LoRA RCT, < 5% producer impact).
//!
//! See `DESIGN.md` for the experiment ↔ module index and `EXPERIMENTS.md`
//! for paper-vs-measured numbers.

pub mod ablations;
pub mod chaos_degradation;
pub mod coord_chaos;
pub mod e2e_cluster;
pub mod fig01_motivation;
pub mod fig02_contention;
pub mod fig03_links;
pub mod fig04_colocation;
pub mod fig07_long_prompt;
pub mod fig08_lora;
pub mod fig09_cfs;
pub mod fig10_elasticity;
pub mod fig11_producer_overhead;
pub mod fig12_tensor_size;
pub mod fig13_chatbot;
pub mod fig14_placer;
pub mod fig18_nvswitch;
pub mod fuzz;
pub mod lanes;
pub mod runner;
pub mod scale_cluster;
pub mod serve_chaos;
pub mod serve_schedulers;
pub mod setup;
pub mod sweep;
pub mod tables_registry;
pub mod trace;

pub use setup::{OffloadKind, ServerCtx};
