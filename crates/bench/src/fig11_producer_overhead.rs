//! Figure 11 — producer-side cost of donating memory through AQUA.
//!
//! Reuses the Figure 10 workload (Llama-2-13B producer sharing the 2-GPU
//! server with an OPT-30B FlexGen consumer) but reports the *producer's*
//! request completion times: one run with AQUA active (the informer donates,
//! the consumer borrows, the burst forces a reclaim) and one baseline run of
//! the identical trace with the producer isolated. The paper's claim is that
//! the two RCT curves coincide except for the requests caught in the reclaim
//! pause.

use crate::fig10_elasticity::{producer_table, run, run_producer_baseline, Timeline};
use aqua_metrics::requests::RequestLog;
use aqua_metrics::table::Table;

/// Producer logs with and without AQUA, over the same trace and seed.
#[derive(Debug)]
pub struct Fig11Result {
    /// Producer RCT log while donating through AQUA.
    pub aqua: RequestLog,
    /// Producer RCT log serving the same trace in isolation.
    pub baseline: RequestLog,
}

impl Fig11Result {
    /// Median producer RCT ratio, AQUA over baseline (the paper reports
    /// near parity — the donation itself is free, only the reclaim pauses).
    pub fn median_overhead(&self) -> f64 {
        self.aqua.rct_summary().p50 / self.baseline.rct_summary().p50
    }
}

/// Runs the Figure 10 timeline twice, once with AQUA and once isolated, and
/// keeps only the producer-side logs.
pub fn run_overhead(tl: &Timeline, sample_secs: u64, seed: u64) -> Fig11Result {
    let aqua = run(tl, sample_secs, seed).producer_log;
    let baseline = run_producer_baseline(tl, seed);
    Fig11Result { aqua, baseline }
}

/// Renders the Figure 11 RCT comparison.
pub fn table(result: &Fig11Result) -> Table {
    producer_table(&result.aqua, &result.baseline)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn producer_rcts_near_parity_outside_reclaim() {
        let tl = Timeline {
            low_phase_start: 20,
            low_count: 20,
            burst_start: 80,
            burst_count: 200,
            end: 180,
        };
        let r = run_overhead(&tl, 5, 17);
        assert!(
            r.aqua.len() >= 130,
            "aqua producer finished {}",
            r.aqua.len()
        );
        assert_eq!(r.baseline.len(), 220);
        let overhead = r.median_overhead();
        assert!(
            overhead < 2.0,
            "median producer RCT ratio {overhead:.2} (paper: near parity)"
        );
        assert!(!table(&r).is_empty());
    }
}
