//! `AQUA_TRACE` wiring: one process-wide tracer for bench runs.
//!
//! Every experiment builds its simulated server through [`ServerCtx`], which
//! asks this module for the process tracer. By default that is the
//! [`NullTracer`](aqua_telemetry::NullTracer) and instrumentation costs one
//! branch per event. Setting `AQUA_TRACE=<path>` switches the process to a
//! shared [`JournalTracer`]; calling [`finish`] at the end of a bench `main`
//! then writes
//!
//! * `<path>` — a Chrome trace (load it at `chrome://tracing` or
//!   <https://ui.perfetto.dev>),
//! * `<path>.jsonl` — the canonical JSONL journal,
//!
//! and prints the journal's determinism digest.
//!
//! ```console
//! $ AQUA_TRACE=/tmp/fig09.json cargo bench --bench fig09_cfs
//! ```
//!
//! [`ServerCtx`]: crate::setup::ServerCtx

use aqua_telemetry::{null_tracer, JournalTracer, SharedTracer};
use std::cell::RefCell;
use std::sync::{Arc, OnceLock};

static JOURNAL: OnceLock<Option<Arc<JournalTracer>>> = OnceLock::new();

thread_local! {
    /// Per-thread journal override, installed by [`with_tracer`]. Sweep
    /// workers use this to give every experiment point its own journal
    /// without threading a tracer through every `run(...)` signature.
    static OVERRIDE: RefCell<Option<Arc<JournalTracer>>> = const { RefCell::new(None) };
}

/// Runs `f` with `journal` installed as this thread's tracer: every
/// [`tracer()`] call made by `f` (including deep inside `ServerCtx`
/// construction) returns `journal` instead of the process-wide `AQUA_TRACE`
/// journal. The previous override (if any) is restored afterwards, even on
/// panic, so nested scopes compose.
pub fn with_tracer<R>(journal: Arc<JournalTracer>, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Arc<JournalTracer>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0.take();
            OVERRIDE.with(|o| *o.borrow_mut() = prev);
        }
    }
    let _restore = Restore(OVERRIDE.with(|o| o.borrow_mut().replace(journal)));
    f()
}

/// The journal events currently land in, if any: this thread's
/// [`with_tracer`] override first, else the process `AQUA_TRACE` capture.
/// Experiments that read counters back (the chaos report) use this so their
/// bookkeeping follows the same journal their events went to.
pub fn active_journal() -> Option<Arc<JournalTracer>> {
    if let Some(j) = OVERRIDE.with(|o| o.borrow().clone()) {
        return Some(j);
    }
    journal().cloned()
}

/// The journal backing `AQUA_TRACE`, if the variable is set.
pub fn journal() -> Option<&'static Arc<JournalTracer>> {
    JOURNAL
        .get_or_init(|| std::env::var_os("AQUA_TRACE").map(|_| Arc::new(JournalTracer::new())))
        .as_ref()
}

/// The tracer instrumented code should use: the thread's [`with_tracer`]
/// override when one is active, else the `AQUA_TRACE` journal when enabled,
/// else the zero-overhead null tracer.
pub fn tracer() -> SharedTracer {
    match active_journal() {
        Some(j) => j as SharedTracer,
        None => null_tracer(),
    }
}

/// Writes the collected trace to the `AQUA_TRACE` path (Chrome format, plus
/// the canonical journal at `<path>.jsonl`) and prints the determinism
/// digest. A no-op when `AQUA_TRACE` is unset.
pub fn finish() {
    let Some(journal) = journal() else { return };
    let Some(path) = std::env::var_os("AQUA_TRACE") else {
        return;
    };
    let path = std::path::PathBuf::from(path);
    let jsonl = path.with_extension(match path.extension().and_then(|e| e.to_str()) {
        Some(ext) => format!("{ext}.jsonl"),
        None => "jsonl".to_owned(),
    });
    if let Err(e) = journal.write_chrome_trace(&path) {
        eprintln!("AQUA_TRACE: failed to write {}: {e}", path.display());
        return;
    }
    if let Err(e) = journal.write_jsonl(&jsonl) {
        eprintln!("AQUA_TRACE: failed to write {}: {e}", jsonl.display());
        return;
    }
    eprintln!(
        "AQUA_TRACE: {} events → {} (chrome) + {} (journal), digest {:016x}",
        journal.len(),
        path.display(),
        jsonl.display(),
        journal.digest()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracer_defaults_to_null_without_env() {
        // Cargo test runs without AQUA_TRACE; the process tracer must be the
        // no-op tracer and finish() must be a no-op.
        if std::env::var_os("AQUA_TRACE").is_none() {
            assert!(!tracer().enabled());
            finish();
        }
    }

    #[test]
    fn with_tracer_overrides_then_restores() {
        let inner = Arc::new(JournalTracer::digest_only());
        let outer = Arc::new(JournalTracer::digest_only());
        with_tracer(outer.clone(), || {
            assert!(tracer().enabled(), "override is active");
            tracer().incr("outer", 1);
            with_tracer(inner.clone(), || {
                tracer().incr("inner", 1);
            });
            // The outer override survives the nested scope.
            tracer().incr("outer", 1);
        });
        assert_eq!(outer.registry().counter("outer"), 2);
        assert_eq!(outer.registry().counter("inner"), 0);
        assert_eq!(inner.registry().counter("inner"), 1);
        if std::env::var_os("AQUA_TRACE").is_none() {
            assert!(!tracer().enabled(), "override removed after the scope");
        }
    }

    #[test]
    fn with_tracer_restores_on_panic() {
        let j = Arc::new(JournalTracer::digest_only());
        let caught = std::panic::catch_unwind(|| with_tracer(j.clone(), || panic!("boom")));
        assert!(caught.is_err());
        if std::env::var_os("AQUA_TRACE").is_none() {
            assert!(!tracer().enabled());
        }
    }
}
