//! `AQUA_TRACE` wiring: one process-wide tracer for bench runs.
//!
//! Every experiment builds its simulated server through [`ServerCtx`], which
//! asks this module for the process tracer. By default that is the
//! [`NullTracer`](aqua_telemetry::NullTracer) and instrumentation costs one
//! branch per event. Setting `AQUA_TRACE=<path>` switches the process to a
//! shared [`JournalTracer`]; calling [`finish`] at the end of a bench `main`
//! then writes
//!
//! * `<path>` — a Chrome trace (load it at `chrome://tracing` or
//!   <https://ui.perfetto.dev>),
//! * `<path>.jsonl` — the canonical JSONL journal,
//!
//! and prints the journal's determinism digest.
//!
//! ```console
//! $ AQUA_TRACE=/tmp/fig09.json cargo bench --bench fig09_cfs
//! ```
//!
//! [`ServerCtx`]: crate::setup::ServerCtx

use aqua_telemetry::{null_tracer, JournalTracer, SharedTracer};
use std::sync::{Arc, OnceLock};

static JOURNAL: OnceLock<Option<Arc<JournalTracer>>> = OnceLock::new();

/// The journal backing `AQUA_TRACE`, if the variable is set.
pub fn journal() -> Option<&'static Arc<JournalTracer>> {
    JOURNAL
        .get_or_init(|| std::env::var_os("AQUA_TRACE").map(|_| Arc::new(JournalTracer::new())))
        .as_ref()
}

/// The process tracer: the `AQUA_TRACE` journal when enabled, otherwise the
/// zero-overhead null tracer.
pub fn tracer() -> SharedTracer {
    match journal() {
        Some(j) => j.clone() as SharedTracer,
        None => null_tracer(),
    }
}

/// Writes the collected trace to the `AQUA_TRACE` path (Chrome format, plus
/// the canonical journal at `<path>.jsonl`) and prints the determinism
/// digest. A no-op when `AQUA_TRACE` is unset.
pub fn finish() {
    let Some(journal) = journal() else { return };
    let Some(path) = std::env::var_os("AQUA_TRACE") else {
        return;
    };
    let path = std::path::PathBuf::from(path);
    let jsonl = path.with_extension(match path.extension().and_then(|e| e.to_str()) {
        Some(ext) => format!("{ext}.jsonl"),
        None => "jsonl".to_owned(),
    });
    if let Err(e) = journal.write_chrome_trace(&path) {
        eprintln!("AQUA_TRACE: failed to write {}: {e}", path.display());
        return;
    }
    if let Err(e) = journal.write_jsonl(&jsonl) {
        eprintln!("AQUA_TRACE: failed to write {}: {e}", jsonl.display());
        return;
    }
    eprintln!(
        "AQUA_TRACE: {} events → {} (chrome) + {} (journal), digest {:016x}",
        journal.len(),
        path.display(),
        jsonl.display(),
        journal.digest()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracer_defaults_to_null_without_env() {
        // Cargo test runs without AQUA_TRACE; the process tracer must be the
        // no-op tracer and finish() must be a no-op.
        if std::env::var_os("AQUA_TRACE").is_none() {
            assert!(!tracer().enabled());
            finish();
        }
    }
}
