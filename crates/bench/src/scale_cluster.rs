//! `aqua-repro scale_cluster` — cluster-scale serving through PDES lanes.
//!
//! The other experiments stay within one simulated server; this one drives
//! a 256–1024-GPU scale-up domain (32–128 servers × 8 GPUs behind
//! NVSwitch) through the sharded lane executor. Each server is a
//! [`LaneShard`]: a gateway engine with an AQUA offloader, a tenant trace,
//! and its own pre-sized event queue. Shard 0 is a cluster coordinator.
//! Servers send staggered heartbeats (`beat`, driver-event count) to the
//! coordinator over the cross-domain fabric; the coordinator journals each
//! heartbeat as a [`TraceEvent::LeaseGranted`] and acknowledges it, and
//! servers journal the ack delivery as a [`TraceEvent::LeaseAllocated`].
//!
//! The heartbeat traffic is what makes this a *coupled* PDES scenario: the
//! conservative window protocol of [`crate::lanes`] must merge cross-shard
//! messages in `(deliver_at, src, seq)` order for the per-shard journals —
//! and the folded digest — to be identical at `--lanes 1/4/8`. The
//! lookahead is the minimum cross-domain link latency, taken from the
//! NVSwitch α–β model's launch overhead.
//!
//! Deterministic results (the rendered table, digests, window and message
//! counts, simulator event totals) are strictly separated from perf
//! observations (wall time, events/s, peak RSS), so the table compares
//! byte-for-byte across lane counts while the perf line reports honestly.
//!
//! [`TraceEvent::LeaseGranted`]: aqua_telemetry::TraceEvent
//! [`TraceEvent::LeaseAllocated`]: aqua_telemetry::TraceEvent

use crate::lanes::{run_lanes, LaneShard, ShardFinish};
use crate::setup::{OffloadKind, ServerCtx};
use aqua_engines::driver::{Driver, Engine};
use aqua_engines::vllm::PreemptionPolicy;
use aqua_gateway::engine::{GatewayConfig, GatewayEngine};
use aqua_gateway::scheduler::PolicyKind;
use aqua_metrics::table::Table;
use aqua_models::zoo;
use aqua_sim::audit::{Auditor, SharedAuditor};
use aqua_sim::fault::FaultPlan;
use aqua_sim::gpu::{GpuId, GpuSpec};
use aqua_sim::link::bytes::gib;
use aqua_sim::link::BandwidthModel;
use aqua_sim::pdes::{lookahead_from_links, Msg};
use aqua_sim::time::{SimDuration, SimTime};
use aqua_telemetry::TraceEvent;
use aqua_workloads::tenants::tenant_trace;
use std::time::Duration;

/// GPUs per simulated server (the paper's 8-GPU NVSwitch testbed).
pub const GPUS_PER_SERVER: usize = 8;

/// Sim-time heartbeat period, seconds.
pub const HEARTBEAT_PERIOD_SECS: u64 = 60;

/// Rough driver events per request, used for queue pre-sizing and the
/// events-proportional sweep cost hints.
pub const EVENTS_PER_REQUEST: u64 = 8;

/// One scale-cluster configuration.
#[derive(Debug, Clone, Copy)]
pub struct ScaleSpec {
    /// Simulated servers (each [`GPUS_PER_SERVER`] GPUs).
    pub servers: usize,
    /// Tenant-trace requests per server.
    pub requests_per_server: usize,
    /// Per-server chat-tenant arrival rate, req/s.
    pub rate: f64,
    /// Workload seed (per-server traces derive from `seed + server`).
    pub seed: u64,
    /// Lane threads for the PDES executor.
    pub lanes: usize,
    /// Inject a mid-run GPU crash on server 0 and audit it.
    pub audited: bool,
}

impl ScaleSpec {
    /// Total GPUs in the domain.
    pub fn gpus(&self) -> usize {
        self.servers * GPUS_PER_SERVER
    }

    /// Total requests across all servers.
    pub fn total_requests(&self) -> usize {
        self.servers * self.requests_per_server
    }

    /// Arrival span of one server's trace, whole seconds (rounded up).
    pub fn span_secs(&self) -> u64 {
        (self.requests_per_server as f64 / self.rate).ceil() as u64
    }

    /// The crash window of the audited point, placed inside the arrival
    /// span so in-flight work is actually lost.
    pub fn crash_window(&self) -> (u64, u64) {
        let start = (self.span_secs() / 4).max(1);
        (start, start + 5)
    }

    /// The coordinator-shard crash window of the audited point: right after
    /// the GPU crash heals, while the restarted gateway still has backlog.
    /// The server's coordinator loses its lease book and bumps its epoch;
    /// the offloader's epoch-change sweep must migrate every stranded byte
    /// without tripping the audit or losing a stream.
    pub fn coord_crash_window(&self) -> (u64, u64) {
        let start = self.crash_window().1;
        (start, start + 5)
    }

    /// Whether arrivals outpace a server's rough service capacity
    /// (~1 req/s for the zoo model on this testbed), i.e. backlog grows
    /// for the length of the trace instead of draining between arrivals.
    pub fn oversaturated(&self) -> bool {
        self.rate > 1.0
    }

    /// Expected driver events across the cluster (for cost hints). An
    /// oversaturated point re-queues and re-examines work it cannot admit
    /// yet, so backlog-building traces cost extra events per request
    /// relative to an undersaturated trace that drains as it arrives.
    pub fn expected_events(&self) -> u64 {
        let per_request = if self.oversaturated() {
            EVENTS_PER_REQUEST + EVENTS_PER_REQUEST / 2
        } else {
            EVENTS_PER_REQUEST
        };
        self.total_requests() as u64 * per_request
    }
}

/// Cross-shard message payload: server → coordinator heartbeats and
/// coordinator → server acknowledgements.
#[derive(Debug, Clone, Copy)]
pub enum ScaleMsg {
    /// Periodic server heartbeat.
    Heartbeat {
        /// Reporting server index.
        server: u64,
        /// Heartbeat ordinal on that server.
        beat: u64,
        /// Driver events the server had processed at send time.
        completed: u64,
    },
    /// Coordinator acknowledgement of heartbeat `beat`.
    Ack {
        /// The acknowledged heartbeat ordinal.
        beat: u64,
    },
}

/// Per-shard result.
#[derive(Debug, Clone)]
pub enum ScaleOut {
    /// The coordinator's tally.
    Coordinator {
        /// Heartbeats received (and acknowledged).
        heartbeats: u64,
    },
    /// One server's serving outcome.
    Server {
        /// Server index.
        server: usize,
        /// Completed token streams.
        streams: usize,
        /// Requests refused at admission.
        shed: usize,
        /// Crash-retry attempts.
        retries: u64,
        /// Heartbeats sent.
        beats: u64,
        /// Coordinator acks received.
        acks: u64,
        /// Audit violations observed (audited server only).
        violations: usize,
    },
}

/// The cluster coordinator (shard 0). It never initiates traffic — its
/// send horizon is `None` and the executor covers its reactive acks through
/// the undelivered-message term of `S_min` (a heartbeat delivered at `t`
/// was counted in `S_min`, so its ack at `t + L` lands at or after the
/// window barrier).
struct CoordShard {
    lookahead: SimDuration,
    seq: u64,
    beats: u64,
}

impl CoordShard {
    fn advance(&mut self, inbox: Vec<Msg<ScaleMsg>>) -> Vec<Msg<ScaleMsg>> {
        let tracer = crate::trace::tracer();
        let mut out = Vec::with_capacity(inbox.len());
        for msg in inbox {
            let ScaleMsg::Heartbeat {
                server,
                beat,
                completed,
            } = msg.payload
            else {
                panic!("coordinator received a non-heartbeat message");
            };
            tracer.emit(TraceEvent::LeaseGranted {
                producer: format!("scale/s{server}"),
                lease: beat,
                bytes: completed,
                at: msg.deliver_at,
            });
            self.beats += 1;
            out.push(Msg {
                deliver_at: msg.deliver_at + self.lookahead,
                src: 0,
                dst: msg.src,
                seq: self.seq,
                payload: ScaleMsg::Ack { beat },
            });
            self.seq += 1;
        }
        out
    }
}

/// One server: a gateway engine + AQUA offloader over the 8-GPU NVSwitch
/// topology, driven by a pre-sized event queue, emitting heartbeats on a
/// staggered schedule.
struct ServerShard {
    id: usize,
    server: usize,
    driver: Driver,
    engine: GatewayEngine,
    horizon: SimTime,
    heartbeats: Vec<SimTime>,
    next_hb: usize,
    seq: u64,
    acks: u64,
    lookahead: SimDuration,
    auditor: Option<SharedAuditor>,
}

impl ServerShard {
    /// Builds the server under the ambient (per-shard) tracer. Must run on
    /// the shard's lane thread so everything — `ServerCtx` construction
    /// included — journals into the shard's own digest journal.
    fn build(spec: &ScaleSpec, server: usize, lookahead: SimDuration) -> Self {
        let tracer = crate::trace::tracer();
        let mix = tenant_trace(
            spec.rate,
            spec.requests_per_server,
            spec.seed + server as u64,
        );
        let geom = *zoo::codellama_34b().llm_geometry().unwrap();
        let mut engine = GatewayEngine::new(
            geom,
            GpuSpec::a100_80g(),
            PolicyKind::SjfBucket,
            GatewayConfig {
                kv_pool_bytes: gib(3),
                preemption: PreemptionPolicy::Swap,
                max_outstanding_per_tenant: 8,
                ..GatewayConfig::default()
            },
        )
        .with_tenants(mix.tenant_of.clone())
        .with_tracer(tracer.clone(), format!("scale:s{server}"));
        let ctx = ServerCtx::eight_gpu_traced(tracer);
        // Every peer GPU in the NVSwitch domain donates a static lease, so
        // the offloader spreads KV across the whole server.
        for g in 1..GPUS_PER_SERVER {
            ctx.static_lease(GpuId(g), gib(10));
        }
        engine = engine.with_offloader(ctx.offloader(OffloadKind::Aqua, GpuId(0)));

        let mut driver =
            Driver::for_expected_events(spec.requests_per_server * EVENTS_PER_REQUEST as usize);
        let mut auditor = None;
        if spec.audited && server == 0 {
            let (start_s, end_s) = spec.crash_window();
            let (start, end) = (SimTime::from_secs(start_s), SimTime::from_secs(end_s));
            let (c_start_s, c_end_s) = spec.coord_crash_window();
            let c_start = SimTime::from_secs(c_start_s);
            let rebuild = SimDuration::from_secs(c_end_s - c_start_s);
            // The audited server takes both hits: its gateway GPU crashes
            // mid-trace, and as it restarts its coordinator shard dies too,
            // wiping the lease book and bumping the epoch under the
            // offloader's static leases.
            let plan = FaultPlan::new()
                .gpu_crash(GpuId(0), start, end)
                .coordinator_crash(c_start, rebuild);
            engine = engine.with_fault_plan(&plan, GpuId(0));
            ctx.coordinator
                .set_fault_plan(std::sync::Arc::new(plan.clone()));
            driver.crash_window(0, start, end);
            let a = Auditor::collecting();
            engine = engine.with_auditor(a.clone());
            auditor = Some(a);
        }
        driver.schedule_trace(0, mix.trace);

        // Staggered heartbeat schedule: server `i` beats at
        // `i·period/servers + k·period`, so windows exercise the
        // `(deliver_at, src, seq)` merge instead of collapsing onto one
        // barrier.
        let period = SimDuration::from_secs(HEARTBEAT_PERIOD_SECS);
        let offset =
            SimDuration::from_nanos(period.as_nanos() / spec.servers as u64 * server as u64);
        let beats = (spec.span_secs() / HEARTBEAT_PERIOD_SECS).max(1);
        let heartbeats = (0..beats)
            .map(|k| SimTime::ZERO + offset + period.mul_u64(k + 1))
            .collect();
        ServerShard {
            id: server + 1,
            server,
            driver,
            engine,
            horizon: SimTime::from_secs(spec.span_secs() + 40_000),
            heartbeats,
            next_hb: 0,
            seq: 0,
            acks: 0,
            lookahead,
            auditor,
        }
    }

    fn run_to(&mut self, end: SimTime) {
        let ServerShard { driver, engine, .. } = self;
        let mut engines: Vec<&mut dyn Engine> = vec![engine];
        driver.run(&mut engines, end);
    }

    fn advance(&mut self, until: Option<SimTime>, inbox: Vec<Msg<ScaleMsg>>) -> Vec<Msg<ScaleMsg>> {
        let tracer = crate::trace::tracer();
        for msg in &inbox {
            let ScaleMsg::Ack { beat } = msg.payload else {
                panic!("server received a non-ack message");
            };
            tracer.emit(TraceEvent::LeaseAllocated {
                consumer: format!("scale/s{}", self.server),
                site: "coordinator-ack".into(),
                bytes: beat,
                at: msg.deliver_at,
            });
            self.acks += 1;
        }
        let mut out = Vec::new();
        while let Some(&hb) = self.heartbeats.get(self.next_hb) {
            if until.is_some_and(|u| hb >= u) {
                break;
            }
            // Advance the local simulation to the beat time, then sample.
            self.run_to(hb);
            out.push(Msg {
                deliver_at: hb + self.lookahead,
                src: self.id,
                dst: 0,
                seq: self.seq,
                payload: ScaleMsg::Heartbeat {
                    server: self.server as u64,
                    beat: self.next_hb as u64,
                    completed: self.driver.processed_events(),
                },
            });
            self.seq += 1;
            self.next_hb += 1;
        }
        match until {
            // Window ends are exclusive; the driver's are inclusive.
            Some(u) => self.run_to(SimTime::from_nanos(u.as_nanos().saturating_sub(1))),
            None => self.run_to(self.horizon),
        }
        out
    }
}

/// Either shard role, so one `run_lanes` call drives the whole cluster.
enum ScaleShard {
    Coord(CoordShard),
    Server(Box<ServerShard>),
}

impl LaneShard for ScaleShard {
    type Payload = ScaleMsg;
    type Out = ScaleOut;

    fn next_send_horizon(&self) -> Option<SimTime> {
        match self {
            ScaleShard::Coord(_) => None,
            ScaleShard::Server(s) => s.heartbeats.get(s.next_hb).copied(),
        }
    }

    fn advance(&mut self, until: Option<SimTime>, inbox: Vec<Msg<ScaleMsg>>) -> Vec<Msg<ScaleMsg>> {
        match self {
            ScaleShard::Coord(c) => c.advance(inbox),
            ScaleShard::Server(s) => s.advance(until, inbox),
        }
    }

    fn finish(self) -> ShardFinish<ScaleOut> {
        match self {
            ScaleShard::Coord(c) => ShardFinish {
                output: ScaleOut::Coordinator {
                    heartbeats: c.beats,
                },
                sim_events: 0,
            },
            ScaleShard::Server(s) => {
                let mut s = *s;
                let streams = s.engine.drain_streams();
                let violations = s.auditor.as_ref().map_or(0, |a| a.violations().len());
                ShardFinish {
                    sim_events: s.driver.processed_events(),
                    output: ScaleOut::Server {
                        server: s.server,
                        streams: streams.len(),
                        shed: s.engine.outcomes().shed(),
                        retries: s.engine.outcomes().total_retries(),
                        beats: s.next_hb as u64,
                        acks: s.acks,
                        violations,
                    },
                }
            }
        }
    }
}

/// A completed scale run: the deterministic table (identical at every lane
/// count) plus the perf observations (which are not, and are reported
/// separately).
#[derive(Debug, Clone)]
pub struct ScaleRun {
    /// The configuration that ran.
    pub spec: ScaleSpec,
    /// Deterministic rendering: per-server rows, totals, digest evidence.
    pub table: String,
    /// Folded per-shard digest, lane-count independent.
    pub digest: u64,
    /// Barrier windows the executor took.
    pub windows: u64,
    /// Cross-shard messages exchanged.
    pub messages: u64,
    /// Driver events processed across all servers.
    pub sim_events: u64,
    /// Trace events journalled across all shards.
    pub journal_events: usize,
    /// Audit violations across all shards (must be 0).
    pub audit_violations: usize,
    /// Wall time of the lane run.
    pub wall: Duration,
    /// Peak resident set of this process, MiB (`/proc/self/status` VmHWM).
    pub peak_rss_mib: Option<u64>,
}

impl ScaleRun {
    /// Simulator events per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        self.sim_events as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// The non-deterministic perf summary (wall, events/s, RSS). Keep this
    /// out of anything compared across lane counts.
    pub fn perf_line(&self) -> String {
        format!(
            "scale-cluster perf: lanes={} wall={:.2}s events/s={:.0} peak_rss_mib={}",
            self.spec.lanes,
            self.wall.as_secs_f64(),
            self.events_per_sec(),
            self.peak_rss_mib
                .map_or_else(|| "-".to_owned(), |m| m.to_string()),
        )
    }
}

/// Peak resident set size of the current process in MiB, from
/// `/proc/self/status` (`VmHWM`). `None` off Linux.
pub fn peak_rss_mib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb / 1024)
}

/// Runs one scale-cluster configuration through the lane executor.
pub fn run_scale(spec: &ScaleSpec) -> ScaleRun {
    let spec = *spec;
    // Lookahead: the minimum latency of the links crossing shard domains —
    // here the NVSwitch fabric's per-transfer launch overhead.
    let lookahead = lookahead_from_links([BandwidthModel::nvswitch_a100().launch_overhead]);

    let mut builders: Vec<Box<dyn FnOnce() -> ScaleShard + Send>> =
        Vec::with_capacity(spec.servers + 1);
    builders.push(Box::new(move || {
        ScaleShard::Coord(CoordShard {
            lookahead,
            seq: 0,
            beats: 0,
        })
    }));
    for server in 0..spec.servers {
        builders.push(Box::new(move || {
            ScaleShard::Server(Box::new(ServerShard::build(&spec, server, lookahead)))
        }));
    }
    let outcome = run_lanes(builders, spec.lanes, lookahead);

    let mut table = Table::new(
        format!(
            "Scale-cluster — {} servers x {} GPUs ({} GPUs), {} requests",
            spec.servers,
            GPUS_PER_SERVER,
            spec.gpus(),
            spec.total_requests(),
        ),
        &["server", "streams", "shed", "retries", "beats", "acks"],
    );
    let (mut streams, mut shed, mut retries) = (0usize, 0usize, 0u64);
    let (mut beats, mut acks, mut violations) = (0u64, 0u64, 0usize);
    let mut coordinator_beats = 0u64;
    for report in &outcome.shards {
        match &report.output {
            ScaleOut::Coordinator { heartbeats } => coordinator_beats = *heartbeats,
            ScaleOut::Server {
                server,
                streams: st,
                shed: sh,
                retries: rt,
                beats: bt,
                acks: ak,
                violations: vi,
            } => {
                table.row(&[
                    server.to_string(),
                    st.to_string(),
                    sh.to_string(),
                    rt.to_string(),
                    bt.to_string(),
                    ak.to_string(),
                ]);
                streams += st;
                shed += sh;
                retries += rt;
                beats += bt;
                acks += ak;
                violations += vi;
            }
        }
    }
    let mut rendered = format!(
        "{table}\nscale-cluster totals: streams={streams} shed={shed} retries={retries} \
         heartbeats={beats} coordinator_seen={coordinator_beats} acks={acks}\n",
    );
    rendered.push_str(&format!(
        "scale-cluster determinism: digest={:016x} windows={} messages={} sim_events={} \
         journal_events={} audit_violations={violations}\n",
        outcome.digest, outcome.windows, outcome.messages, outcome.sim_events, outcome.events,
    ));

    // Fold the shard digest into the ambient journal, so a sweep point
    // wrapping this run carries the cluster's determinism evidence in its
    // own digest.
    crate::trace::tracer().emit(TraceEvent::LeaseGranted {
        producer: "scale/summary".into(),
        lease: outcome.digest,
        bytes: outcome.sim_events,
        at: SimTime::ZERO,
    });

    ScaleRun {
        spec,
        table: rendered,
        digest: outcome.digest,
        windows: outcome.windows,
        messages: outcome.messages,
        sim_events: outcome.sim_events,
        journal_events: outcome.events,
        audit_violations: violations,
        wall: outcome.wall,
        peak_rss_mib: peak_rss_mib(),
    }
}

/// The `aqua-repro` decomposition: a plain mid-size domain, a smaller
/// audited one with a mid-run GPU crash, and an oversaturated point whose
/// arrival span is long enough for backlog to actually build. The overload
/// point was infeasible under the sort-based scheduler (every admission
/// re-sorted the whole backlog, so a growing queue turned the trace
/// quadratic); the incremental scheduler index does backlog-independent
/// work per admission, which is what makes it a routine sweep point now.
/// Cost hints are proportional to each point's expected driver-event count
/// ([`ScaleSpec::expected_events`], which charges oversaturated points
/// extra for their re-queue traffic), so the weighted sweep claims big
/// simulations first and the runner's wall-vs-hint deviation warning has a
/// meaningful baseline.
pub fn repro_points(a: &crate::runner::ReproArgs) -> Vec<crate::runner::ReproPoint> {
    use crate::runner::ReproPoint;
    let per_server = (a.count / 8).max(8);
    let specs = [
        (
            "servers=8",
            ScaleSpec {
                servers: 8,
                requests_per_server: per_server,
                rate: 2.0,
                seed: a.seed,
                lanes: a.lanes,
                audited: false,
            },
        ),
        (
            "servers=4,audited",
            ScaleSpec {
                servers: 4,
                requests_per_server: per_server,
                rate: 2.0,
                seed: a.seed,
                lanes: a.lanes,
                audited: true,
            },
        ),
        (
            "servers=8,overload",
            ScaleSpec {
                servers: 8,
                requests_per_server: a.count.max(64),
                rate: 2.0,
                seed: a.seed,
                lanes: a.lanes,
                audited: false,
            },
        ),
    ];
    specs
        .into_iter()
        .map(|(label, spec)| {
            ReproPoint::new("scale_cluster", label, move || {
                let run = run_scale(&spec);
                assert_eq!(
                    run.audit_violations, 0,
                    "scale-cluster point must audit clean"
                );
                run.table
            })
            // Divisor calibrated so seconds-per-hint-unit lands near the
            // suite median (the overload point is the first scale point
            // long enough for the runner's stale-hint check to see).
            .with_cost_hint(spec.expected_events() / 400)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(servers: usize, lanes: usize, audited: bool) -> ScaleSpec {
        ScaleSpec {
            servers,
            requests_per_server: 6,
            rate: 2.0,
            seed: 11,
            lanes,
            audited,
        }
    }

    #[test]
    fn scale_run_is_lane_count_independent() {
        let one = run_scale(&tiny(5, 1, false));
        let four = run_scale(&tiny(5, 4, false));
        assert_eq!(one.table, four.table);
        assert_eq!(one.digest, four.digest);
        assert_eq!(one.windows, four.windows);
        assert_eq!(one.messages, four.messages);
        assert_eq!(one.sim_events, four.sim_events);
        assert!(one.sim_events > 0);
        // Every heartbeat was acked and every ack delivered.
        assert!(one.messages >= 2 * 5, "beats + acks");
        assert_eq!(one.audit_violations, 0);
    }

    #[test]
    fn audited_crash_point_stays_clean_and_deterministic() {
        let a = run_scale(&tiny(3, 1, true));
        let b = run_scale(&tiny(3, 3, true));
        assert_eq!(a.table, b.table);
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.audit_violations, 0);
    }

    #[test]
    fn spec_accounting_adds_up() {
        let s = tiny(4, 1, false);
        assert_eq!(s.gpus(), 32);
        assert_eq!(s.total_requests(), 24);
        assert_eq!(s.span_secs(), 3);
        let (c0, c1) = s.crash_window();
        assert!(c0 >= 1 && c1 > c0);
        // rate 2.0 outpaces service capacity: the hint charges the
        // overload premium for re-queued work.
        assert!(s.oversaturated());
        assert_eq!(
            s.expected_events(),
            24 * (EVENTS_PER_REQUEST + EVENTS_PER_REQUEST / 2)
        );
        let calm = ScaleSpec { rate: 0.5, ..s };
        assert!(!calm.oversaturated());
        assert_eq!(calm.expected_events(), 24 * EVENTS_PER_REQUEST);
    }
}
