//! `aqua-repro fuzz` — seeded chaos fuzzing under full invariant auditing.
//!
//! Each fuzz point derives a `FaultPlan × workload × topology` combination
//! from `(base seed, point index)` and replays the chaos scenario — an LLM
//! producer donating HBM to a long-prompt FlexGen consumer — with every
//! aqua-audit hook attached: transfer-engine port legality, coordinator
//! lease books, driver time monotonicity and offloader byte conservation.
//! The point is *fully described by its field values*, so any point a sweep
//! discovers can be re-run from a `--seed/--gpus/--work/--faults/--horizon`
//! command line.
//!
//! Points fan across the [`Sweep`] runner exactly like the experiment
//! suite: one digest-only journal per point, results and the combined
//! determinism digest in input order, so `--jobs 8` explores the identical
//! universe `--jobs 1` does (`tests/determinism.rs` pins this).
//!
//! When a point trips the audit, [`shrink`] minimises it deterministically:
//! [`FaultPlan::randomized`] draws its windows sequentially from one
//! splitmix64 stream, so halving `faults` keeps a *prefix* of the original
//! schedule; the horizon and workload halve toward their floors and the
//! topology collapses to 2 GPUs. Every candidate re-runs under a throwaway
//! digest journal and is kept only if it still violates, so the minimal
//! reproducer printed at the end fails for the same reason the original
//! did.

use crate::setup::{opt_flexgen, OffloadKind, ServerCtx};
use crate::sweep::Sweep;
use aqua_core::coordinator::{FailureConfig, GpuRef};
use aqua_core::informer::LlmInformerConfig;
use aqua_engines::driver::{Driver, Engine};
use aqua_models::zoo;
use aqua_sim::audit::{AuditViolation, Auditor};
use aqua_sim::fault::{FaultKind, FaultPlan, FaultRng, RandomFaultProfile};
use aqua_sim::gpu::GpuId;
use aqua_sim::time::{SimDuration, SimTime};
use aqua_sim::topology::PortId;
use aqua_telemetry::JournalTracer;
use aqua_workloads::longprompt::long_prompt_trace;
use std::sync::Arc;

/// The smallest horizon the shrinker will propose: long enough for a lease
/// grant, one fault window and the offloader's recovery sweep to fit.
pub const MIN_HORIZON_SECS: u64 = 30;

/// One self-describing fuzz input. Every field appears in
/// [`FuzzPoint::repro_spec`], so a point prints as the exact command line
/// that re-runs it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuzzPoint {
    /// Seed for [`FaultPlan::randomized`] and the workload trace.
    pub seed: u64,
    /// Server size: 2 (NVLink pair) or 8 (NVSwitch).
    pub gpus: usize,
    /// Long-prompt requests scheduled on the consumer.
    pub work: usize,
    /// Fault windows drawn into the plan.
    pub faults: usize,
    /// Simulated run length in seconds.
    pub horizon_secs: u64,
    /// Plant a coordinator double-free (the audit self-test).
    pub plant: bool,
    /// Plant an epoch-fencing bypass (the crash-recovery audit self-test).
    pub plant_fence: bool,
}

impl FuzzPoint {
    /// Derives point `index` of a fuzz campaign from its base seed. Pure
    /// function of `(base_seed, index)` — the sweep explores the same
    /// points in any job count and on any machine.
    pub fn derive(base_seed: u64, index: u64) -> FuzzPoint {
        let mut rng = FaultRng::new(base_seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        FuzzPoint {
            seed: rng.next_u64(),
            // The NVSwitch box costs ~4x a pair; sample it at 1-in-4.
            gpus: if rng.next_range(4) == 0 { 8 } else { 2 },
            work: 1 + rng.next_range(2) as usize,
            faults: 1 + rng.next_range(6) as usize,
            horizon_secs: 60 + rng.next_range(4) * 30,
            plant: false,
            plant_fence: false,
        }
    }

    /// The flag string that re-runs exactly this point:
    /// `--seed S --gpus G --work W --faults F --horizon H [--plant]
    /// [--plant-fence]`.
    pub fn repro_spec(&self) -> String {
        let mut s = format!(
            "--seed {} --gpus {} --work {} --faults {} --horizon {}",
            self.seed, self.gpus, self.work, self.faults, self.horizon_secs
        );
        if self.plant {
            s.push_str(" --plant");
        }
        if self.plant_fence {
            s.push_str(" --plant-fence");
        }
        s
    }
}

/// What one audited point produced.
#[derive(Debug, Clone)]
pub struct FuzzOutcome {
    /// The input that ran.
    pub point: FuzzPoint,
    /// Consumer tokens generated (a liveness witness — the run made
    /// progress, it didn't just idle past the faults).
    pub tokens: u64,
    /// Every invariant violation the auditor recorded, in order.
    pub violations: Vec<AuditViolation>,
}

/// A buggy client planted for the audit self-test: allocates on its lease,
/// then hands the same bytes back twice. The second free is the
/// `double_free` the auditor must catch (the coordinator rejects it with
/// [`OverFree`](aqua_core::coordinator::AquaError::OverFree) either way —
/// the books stay correct; the *caller's* are what broke).
fn plant_double_free(ctx: &ServerCtx) {
    let bytes = 64 << 20;
    let lease = ctx.coordinator.lease(GpuRef::single(GpuId(1)), 256 << 20);
    let granted = ctx.coordinator.try_allocate_on(lease, bytes);
    debug_assert!(granted, "planted allocation must fit the fresh lease");
    let _ = ctx.coordinator.free(lease, bytes);
    let _ = ctx.coordinator.free(lease, bytes);
}

/// A buggy control plane planted for the fencing self-test: a producer's
/// grant survives a coordinator crash, and after the rebuild its pre-crash
/// inventory is pushed through the unfenced
/// [`merge_resync`](aqua_core::coordinator::Coordinator::merge_resync)
/// bypass instead of the fenced `/resync` verb. The audit must record
/// `stale_epoch_accepted` at the merge and `double_grant_across_epochs`
/// for the stale lease the bypass leaves live in the rebuilt book.
fn plant_fencing_bypass(ctx: &ServerCtx) {
    let producer = GpuRef::single(GpuId(1));
    let stale_epoch = ctx.coordinator.epoch();
    let _ = ctx.coordinator.lease(producer, 256 << 20);
    ctx.coordinator.crash(SimTime::from_secs(1));
    ctx.coordinator.recover(SimTime::from_secs(2));
    let current = ctx.coordinator.epoch();
    let _ = ctx
        .coordinator
        .resync_report(producer, 128 << 20, current, SimTime::from_secs(3));
    ctx.coordinator
        .merge_resync(producer, 64 << 20, stale_epoch, SimTime::from_secs(4));
}

/// Runs one point under full auditing, journalling into the ambient tracer
/// (inside a [`Sweep`] that is the point's own digest journal).
pub fn run_point(p: &FuzzPoint) -> FuzzOutcome {
    let tracer = crate::trace::tracer();
    let auditor = Auditor::with_tracer(tracer.clone());
    let mut ctx = if p.gpus >= 8 {
        ServerCtx::eight_gpu_traced(tracer.clone())
    } else {
        ServerCtx::two_gpu_traced(tracer.clone())
    };
    ctx = ctx.with_auditor(auditor.clone());

    let producer_gpu = GpuId(1);
    let horizon = SimTime::from_secs(p.horizon_secs);
    let mut link_ports = Vec::new();
    for g in 0..ctx.server.gpu_count().min(4) {
        link_ports.push(PortId::NvlinkEgress(GpuId(g)));
        link_ports.push(PortId::NvlinkIngress(GpuId(g)));
    }
    let profile = RandomFaultProfile {
        link_ports,
        crash_gpus: vec![producer_gpu],
        // Core campaign draws the control-plane kinds too: coordinator
        // crashes and partitions interleave with link/GPU faults.
        control_plane: true,
        events: p.faults,
        min_duration: SimDuration::from_secs(5),
        max_duration: SimDuration::from_secs(30),
    };
    let plan = Arc::new(FaultPlan::randomized(p.seed, horizon, &profile));
    // Journal the generated plan: the point digest then witnesses fault
    // *generation* determinism, not just execution determinism.
    plan.emit(&tracer);
    ctx = ctx.with_fault_plan(Arc::clone(&plan));
    ctx.coordinator.set_failure_config(FailureConfig::chaos());

    let mut producer = ctx.llm_producer_with_informer(
        &zoo::llama2_13b(),
        producer_gpu,
        LlmInformerConfig::default(),
    );
    let mut consumer = opt_flexgen(
        &ctx,
        OffloadKind::Aqua,
        crate::fig07_long_prompt::CONTEXT_BUDGET,
    );

    let mut driver = Driver::new();
    driver.set_auditor(auditor.clone());
    for w in plan.windows() {
        if let FaultKind::GpuCrash { gpu } = w.kind {
            if gpu == producer_gpu {
                // Engine 1 (the producer) goes dark: no ticks, no informer
                // heartbeats, so the chaos TTL expires its lease.
                driver.crash_window(1, w.start, w.end);
            }
        }
    }
    driver.schedule_trace(
        0,
        long_prompt_trace(p.work, 200_000, p.seed)
            .into_iter()
            .map(|(_, r)| (SimTime::from_secs(5), r)),
    );

    if p.plant {
        plant_double_free(&ctx);
    }
    if p.plant_fence {
        plant_fencing_bypass(&ctx);
    }

    let mut engines: Vec<&mut dyn Engine> = vec![&mut consumer, &mut producer];
    driver.run(&mut engines, horizon);

    FuzzOutcome {
        point: *p,
        tokens: consumer.tokens_generated(),
        violations: auditor.violations(),
    }
}

/// [`run_point`] under a throwaway digest journal — shrink probes and
/// explicit single-point re-runs use this so they never pollute an ambient
/// `AQUA_TRACE` capture.
pub fn run_point_quiet(p: &FuzzPoint) -> FuzzOutcome {
    crate::trace::with_tracer(Arc::new(JournalTracer::digest_only()), || run_point(p))
}

/// A fuzz campaign: how many derived points, how wide a fan-out.
#[derive(Debug, Clone, Copy)]
pub struct FuzzConfig {
    /// Base seed every point derives from.
    pub base_seed: u64,
    /// Number of points.
    pub points: usize,
    /// Sweep worker threads.
    pub jobs: usize,
    /// Plant the double-free self-test into every point.
    pub plant: bool,
    /// Plant the epoch-fencing-bypass self-test into every core point
    /// (ignored by the gateway campaign, which has no coordinator plant).
    pub plant_fence: bool,
}

/// A completed campaign, in point order.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Outcome per point, index-aligned with the derivation order.
    pub outcomes: Vec<FuzzOutcome>,
    /// Combined determinism digest across all point journals.
    pub combined_digest: u64,
    /// Worker threads actually used.
    pub jobs: usize,
}

impl FuzzReport {
    /// Indices of points that tripped the audit.
    pub fn dirty(&self) -> Vec<usize> {
        self.outcomes
            .iter()
            .enumerate()
            .filter(|(_, o)| !o.violations.is_empty())
            .map(|(i, _)| i)
            .collect()
    }

    /// Total violations across the campaign.
    pub fn violation_count(&self) -> usize {
        self.outcomes.iter().map(|o| o.violations.len()).sum()
    }
}

/// Runs a campaign through the [`Sweep`] fan-out.
pub fn run_fuzz(cfg: &FuzzConfig) -> FuzzReport {
    let points: Vec<FuzzPoint> = (0..cfg.points)
        .map(|i| {
            let mut p = FuzzPoint::derive(cfg.base_seed, i as u64);
            p.plant = cfg.plant;
            p.plant_fence = cfg.plant_fence;
            p
        })
        .collect();
    let result = Sweep::new().jobs(cfg.jobs).run(&points, run_point);
    FuzzReport {
        combined_digest: result.combined_digest(),
        jobs: result.jobs,
        outcomes: result.results(),
    }
}

/// A finished shrink: the minimal still-violating point and its witness.
#[derive(Debug, Clone)]
pub struct ShrinkOutcome {
    /// The smallest point found that still trips the audit.
    pub minimal: FuzzPoint,
    /// Points executed during the search (including the confirming re-run).
    pub candidates_run: usize,
    /// The first violation the minimal point raises.
    pub violation: AuditViolation,
}

/// The shrink moves, in preference order: fewer faults first (halving keeps
/// a prefix of the seeded plan), then a shorter horizon, less work, and a
/// smaller server.
fn shrink_candidates(p: &FuzzPoint) -> Vec<FuzzPoint> {
    let mut out = Vec::new();
    if p.faults > 0 {
        let mut c = *p;
        c.faults /= 2;
        out.push(c);
    }
    if p.horizon_secs > MIN_HORIZON_SECS {
        let mut c = *p;
        c.horizon_secs = (c.horizon_secs / 2).max(MIN_HORIZON_SECS);
        out.push(c);
    }
    if p.work > 1 {
        let mut c = *p;
        c.work /= 2;
        out.push(c);
    }
    if p.gpus > 2 {
        let mut c = *p;
        c.gpus = 2;
        out.push(c);
    }
    out
}

/// Greedily minimises a violating point. Returns `None` if the starting
/// point does not actually violate when re-run (it never should — points
/// are pure functions of their fields). Terminates because every accepted
/// candidate strictly shrinks a bounded component.
pub fn shrink(start: FuzzPoint) -> Option<ShrinkOutcome> {
    let mut best = run_point_quiet(&start);
    let mut candidates_run = 1;
    if best.violations.is_empty() {
        return None;
    }
    loop {
        let mut improved = false;
        for cand in shrink_candidates(&best.point) {
            candidates_run += 1;
            let out = run_point_quiet(&cand);
            if !out.violations.is_empty() {
                best = out;
                improved = true;
                break;
            }
        }
        if !improved {
            break;
        }
    }
    Some(ShrinkOutcome {
        violation: best.violations[0].clone(),
        minimal: best.point,
        candidates_run,
    })
}

// ---------------------------------------------------------------------------
// Gateway mode: FaultPlan × scheduler policy × load on the serving path.
// ---------------------------------------------------------------------------

/// The fault-drawing span floor for gateway points (seconds). Long enough
/// for the arrival stream, one crash window and the retry backoff to fit.
pub const GATEWAY_MIN_HORIZON_SECS: u64 = 60;

/// One self-describing gateway fuzz input: a seeded `FaultPlan` crossed
/// with a scheduler policy, an offload axis and a load multiplier over the
/// three-tenant serving mix. Like [`FuzzPoint`], every field appears in
/// [`GatewayFuzzPoint::repro_spec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GatewayFuzzPoint {
    /// Seed for [`FaultPlan::randomized`] and the workload trace.
    pub seed: u64,
    /// Index into [`PolicyKind::ALL`].
    pub policy: usize,
    /// Load multiplier over the 2 req/s base chat rate (count scales too).
    pub load: usize,
    /// Base chat-tenant request count.
    pub count: usize,
    /// Fault windows drawn into the plan.
    pub faults: usize,
    /// Span (seconds) the fault windows are drawn over. The simulation
    /// itself always runs until the gateway drains.
    pub horizon_secs: u64,
    /// Swap preemption + AQUA offloader (vs recompute).
    pub offload: bool,
    /// Plant the skipped-restore bug (the `token_without_restore`
    /// audit self-test).
    pub plant: bool,
}

use aqua_gateway::engine::{GatewayConfig, GatewayEngine};
use aqua_gateway::scheduler::PolicyKind;

impl GatewayFuzzPoint {
    /// Derives point `index` of a gateway fuzz campaign from its base
    /// seed — a pure function of `(base_seed, index)`.
    pub fn derive(base_seed: u64, index: u64) -> GatewayFuzzPoint {
        let mut rng = FaultRng::new(base_seed ^ index.wrapping_mul(0x517C_C1B7_2722_0A95));
        GatewayFuzzPoint {
            seed: rng.next_u64(),
            policy: rng.next_range(PolicyKind::ALL.len() as u64) as usize,
            load: 1 + rng.next_range(4) as usize,
            count: 16 * (1 + rng.next_range(2) as usize),
            faults: 1 + rng.next_range(4) as usize,
            horizon_secs: GATEWAY_MIN_HORIZON_SECS + rng.next_range(4) * 30,
            offload: rng.next_range(2) == 0,
            plant: false,
        }
    }

    /// The scheduling policy this point runs.
    pub fn policy_kind(&self) -> PolicyKind {
        PolicyKind::ALL[self.policy % PolicyKind::ALL.len()]
    }

    /// The flag string that re-runs exactly this point.
    pub fn repro_spec(&self) -> String {
        let mut s = format!(
            "--gateway --seed {} --policy {} --load {} --count {} --faults {} --horizon {}",
            self.seed, self.policy, self.load, self.count, self.faults, self.horizon_secs
        );
        if self.offload {
            s.push_str(" --offload");
        }
        if self.plant {
            s.push_str(" --plant");
        }
        s
    }
}

/// What one audited gateway point produced.
#[derive(Debug, Clone)]
pub struct GatewayFuzzOutcome {
    /// The input that ran.
    pub point: GatewayFuzzPoint,
    /// Completed token streams.
    pub streams: usize,
    /// Tokens delivered (liveness witness).
    pub tokens: u64,
    /// Streams whose token count disagrees with the request's output
    /// length, plus any admission-accounting mismatch (submitted requests
    /// not accounted completed/aborted after the drain).
    pub truncated: usize,
    /// Every invariant violation the auditor recorded, in order.
    pub violations: Vec<AuditViolation>,
}

impl GatewayFuzzOutcome {
    /// Whether this point failed either gate (audit or stream integrity).
    pub fn dirty(&self) -> bool {
        !self.violations.is_empty() || self.truncated > 0
    }
}

/// Runs one gateway point under full auditing, journalling into the
/// ambient tracer.
pub fn run_gateway_point(p: &GatewayFuzzPoint) -> GatewayFuzzOutcome {
    use aqua_engines::vllm::PreemptionPolicy;
    use aqua_sim::link::bytes::gib;
    use aqua_workloads::tenants::tenant_trace;

    let tracer = crate::trace::tracer();
    let auditor = Auditor::with_tracer(tracer.clone());
    let rate = 2.0 * p.load as f64;
    let mix = tenant_trace(rate, p.count * p.load, p.seed);
    let expected: std::collections::BTreeMap<u64, u64> = mix
        .trace
        .iter()
        .map(|(_, r)| (r.id.0, r.output_tokens))
        .collect();

    let gateway_gpu = GpuId(0);
    let span = SimTime::from_secs(p.horizon_secs);
    let profile = RandomFaultProfile {
        link_ports: vec![
            PortId::NvlinkEgress(gateway_gpu),
            PortId::NvlinkIngress(gateway_gpu),
            PortId::NvlinkEgress(GpuId(1)),
            PortId::NvlinkIngress(GpuId(1)),
        ],
        crash_gpus: vec![gateway_gpu],
        // The gateway campaign keeps its historical fault universe (the
        // coord_chaos experiment covers control-plane faults on the
        // serving path), so its seeded plans stay digest-stable.
        control_plane: false,
        events: p.faults,
        min_duration: SimDuration::from_secs(5),
        max_duration: SimDuration::from_secs(30),
    };
    let mut plan = FaultPlan::randomized(p.seed, span, &profile);
    if p.plant {
        // The planted bug only fires on a crash, so force one into the
        // arrival window where work is guaranteed in flight.
        plan = plan.gpu_crash(gateway_gpu, SimTime::from_secs(5), SimTime::from_secs(10));
    }
    plan.emit(&tracer);
    let plan = Arc::new(plan);

    let geom = *zoo::codellama_34b().llm_geometry().unwrap();
    let mut engine = GatewayEngine::new(
        geom,
        aqua_sim::gpu::GpuSpec::a100_80g(),
        p.policy_kind(),
        GatewayConfig {
            kv_pool_bytes: gib(3),
            preemption: if p.offload {
                PreemptionPolicy::Swap
            } else {
                PreemptionPolicy::Recompute
            },
            max_outstanding_per_tenant: 8,
            plant_skip_restore: p.plant,
            ..GatewayConfig::default()
        },
    )
    .with_tenants(mix.tenant_of.clone())
    .with_tracer(tracer.clone(), format!("fuzz:gw:{}", p.policy_kind()))
    .with_fault_plan(&plan, gateway_gpu)
    .with_auditor(auditor.clone());
    if p.offload {
        let mut ctx = ServerCtx::two_gpu_traced(tracer).with_auditor(auditor.clone());
        ctx = ctx.with_fault_plan(Arc::clone(&plan));
        ctx.static_lease(GpuId(1), gib(30));
        engine = engine.with_offloader(ctx.offloader(OffloadKind::Aqua, gateway_gpu));
    }

    let mut driver = Driver::new();
    driver.set_auditor(auditor.clone());
    for w in plan.windows() {
        if let FaultKind::GpuCrash { gpu } = w.kind {
            if gpu == gateway_gpu {
                driver.crash_window(0, w.start, w.end);
            }
        }
    }
    driver.schedule_trace(0, mix.trace);
    {
        let mut engines: Vec<&mut dyn Engine> = vec![&mut engine];
        driver.run(&mut engines, SimTime::from_secs(40_000));
    }

    // Stream integrity: every completed request streamed exactly its
    // output length, and after the drain every submitted request is
    // accounted completed or terminally crash-aborted.
    let streams = engine.drain_streams();
    let mut truncated = 0;
    let mut tokens = 0u64;
    for s in streams.streams() {
        tokens += s.tokens.len() as u64;
        if expected.get(&s.id).copied() != Some(s.tokens.len() as u64) {
            truncated += 1;
        }
    }
    let o = engine.outcomes();
    let accounted = o.completed() + o.crash_aborted() + o.shed() + o.timed_out();
    let drained = engine.queue_depth() == 0 && engine.running_count() == 0;
    if o.completed() != streams.len() || accounted != expected.len() || !drained {
        truncated += 1;
    }

    GatewayFuzzOutcome {
        point: *p,
        streams: streams.len(),
        tokens,
        truncated,
        violations: auditor.violations(),
    }
}

/// [`run_gateway_point`] under a throwaway digest journal.
pub fn run_gateway_point_quiet(p: &GatewayFuzzPoint) -> GatewayFuzzOutcome {
    crate::trace::with_tracer(Arc::new(JournalTracer::digest_only()), || {
        run_gateway_point(p)
    })
}

/// A completed gateway campaign, in point order.
#[derive(Debug, Clone)]
pub struct GatewayFuzzReport {
    /// Outcome per point, index-aligned with the derivation order.
    pub outcomes: Vec<GatewayFuzzOutcome>,
    /// Combined determinism digest across all point journals.
    pub combined_digest: u64,
    /// Worker threads actually used.
    pub jobs: usize,
}

impl GatewayFuzzReport {
    /// Indices of points that failed either gate.
    pub fn dirty(&self) -> Vec<usize> {
        self.outcomes
            .iter()
            .enumerate()
            .filter(|(_, o)| o.dirty())
            .map(|(i, _)| i)
            .collect()
    }
}

/// Runs a gateway campaign through the [`Sweep`] fan-out.
pub fn run_gateway_fuzz(cfg: &FuzzConfig) -> GatewayFuzzReport {
    let points: Vec<GatewayFuzzPoint> = (0..cfg.points)
        .map(|i| {
            let mut p = GatewayFuzzPoint::derive(cfg.base_seed, i as u64);
            p.plant = cfg.plant;
            p
        })
        .collect();
    let result = Sweep::new().jobs(cfg.jobs).run(&points, run_gateway_point);
    GatewayFuzzReport {
        combined_digest: result.combined_digest(),
        jobs: result.jobs,
        outcomes: result.results(),
    }
}

/// A finished gateway shrink: the minimal still-failing point.
#[derive(Debug, Clone)]
pub struct GatewayShrinkOutcome {
    /// The smallest point found that still fails a gate.
    pub minimal: GatewayFuzzPoint,
    /// Points executed during the search.
    pub candidates_run: usize,
    /// The first audit violation of the minimal point, if the failure was
    /// an audit trip (stream-integrity failures have no violation record).
    pub violation: Option<AuditViolation>,
}

/// The gateway shrink moves, in preference order: fewer faults (halving
/// keeps a prefix of the seeded plan), a shorter fault span, less work, a
/// lighter load, then the canonical FCFS policy.
fn gateway_shrink_candidates(p: &GatewayFuzzPoint) -> Vec<GatewayFuzzPoint> {
    let mut out = Vec::new();
    if p.faults > 0 {
        let mut c = *p;
        c.faults /= 2;
        out.push(c);
    }
    if p.horizon_secs > GATEWAY_MIN_HORIZON_SECS {
        let mut c = *p;
        c.horizon_secs = (c.horizon_secs / 2).max(GATEWAY_MIN_HORIZON_SECS);
        out.push(c);
    }
    if p.count > 8 {
        let mut c = *p;
        c.count = (c.count / 2).max(8);
        out.push(c);
    }
    if p.load > 1 {
        let mut c = *p;
        c.load /= 2;
        out.push(c);
    }
    if p.policy != 0 {
        let mut c = *p;
        c.policy = 0;
        out.push(c);
    }
    out
}

/// Greedily minimises a failing gateway point. Returns `None` if the
/// starting point does not fail when re-run.
pub fn shrink_gateway(start: GatewayFuzzPoint) -> Option<GatewayShrinkOutcome> {
    let mut best = run_gateway_point_quiet(&start);
    let mut candidates_run = 1;
    if !best.dirty() {
        return None;
    }
    loop {
        let mut improved = false;
        for cand in gateway_shrink_candidates(&best.point) {
            candidates_run += 1;
            let out = run_gateway_point_quiet(&cand);
            if out.dirty() {
                best = out;
                improved = true;
                break;
            }
        }
        if !improved {
            break;
        }
    }
    Some(GatewayShrinkOutcome {
        violation: best.violations.first().cloned(),
        minimal: best.point,
        candidates_run,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_points_are_pure_functions_of_seed_and_index() {
        for i in 0..8 {
            assert_eq!(FuzzPoint::derive(7, i), FuzzPoint::derive(7, i));
        }
        assert_ne!(FuzzPoint::derive(7, 0).seed, FuzzPoint::derive(7, 1).seed);
        assert_ne!(FuzzPoint::derive(7, 0).seed, FuzzPoint::derive(8, 0).seed);
        let p = FuzzPoint::derive(7, 3);
        assert!(p.gpus == 2 || p.gpus == 8);
        assert!(p.work >= 1 && p.faults >= 1 && p.horizon_secs >= 60);
    }

    #[test]
    fn repro_spec_round_trips_every_field() {
        let p = FuzzPoint {
            seed: 123,
            gpus: 8,
            work: 2,
            faults: 3,
            horizon_secs: 90,
            plant: true,
            plant_fence: true,
        };
        let s = p.repro_spec();
        assert_eq!(
            s,
            "--seed 123 --gpus 8 --work 2 --faults 3 --horizon 90 --plant --plant-fence"
        );
        assert!(!FuzzPoint::derive(1, 0).repro_spec().contains("--plant"));
    }

    #[test]
    fn seeded_point_runs_clean_and_makes_progress() {
        let out = run_point_quiet(&FuzzPoint::derive(42, 0));
        assert!(
            out.violations.is_empty(),
            "clean chaos point tripped the audit: {:?}",
            out.violations
        );
        assert!(out.tokens > 0, "consumer made no progress");
    }

    #[test]
    fn planted_double_free_is_caught_and_shrinks_to_the_floor() {
        let start = FuzzPoint {
            seed: 9,
            gpus: 8,
            work: 2,
            faults: 4,
            horizon_secs: 120,
            plant: true,
            plant_fence: false,
        };
        let shrunk = shrink(start).expect("planted point must violate");
        assert_eq!(shrunk.violation.kind(), "double_free");
        // The plant is independent of faults, horizon, work and topology,
        // so the shrinker must strip all of them to their floors.
        assert_eq!(shrunk.minimal.faults, 0);
        assert_eq!(shrunk.minimal.horizon_secs, MIN_HORIZON_SECS);
        assert_eq!(shrunk.minimal.work, 1);
        assert_eq!(shrunk.minimal.gpus, 2);
        assert!(shrunk.minimal.plant);
        assert!(shrunk.candidates_run > 1);
        // And the minimal spec re-runs to the same violation.
        let again = run_point_quiet(&shrunk.minimal);
        assert_eq!(again.violations[0].kind(), "double_free");
    }

    #[test]
    fn planted_fencing_bypass_is_caught_and_shrinks_to_the_floor() {
        let start = FuzzPoint {
            seed: 13,
            gpus: 8,
            work: 2,
            faults: 4,
            horizon_secs: 120,
            plant: false,
            plant_fence: true,
        };
        let shrunk = shrink(start).expect("planted fencing bypass must violate");
        // The unfenced stale merge is recorded at the merge itself, and the
        // stale lease it leaves live in the rebuilt book is the split-brain
        // witness.
        assert_eq!(shrunk.violation.kind(), "stale_epoch_accepted");
        let again = run_point_quiet(&shrunk.minimal);
        let kinds: Vec<&str> = again.violations.iter().map(|v| v.kind()).collect();
        assert!(
            kinds.contains(&"double_grant_across_epochs"),
            "bypass must leave a cross-epoch double grant: {kinds:?}"
        );
        // The plant drives its own crash/recover, so every chaos axis must
        // strip to its floor.
        assert_eq!(shrunk.minimal.faults, 0);
        assert_eq!(shrunk.minimal.horizon_secs, MIN_HORIZON_SECS);
        assert_eq!(shrunk.minimal.work, 1);
        assert_eq!(shrunk.minimal.gpus, 2);
        assert!(shrunk.minimal.plant_fence);
    }

    #[test]
    fn gateway_points_derive_purely_and_round_trip_their_spec() {
        for i in 0..8 {
            assert_eq!(
                GatewayFuzzPoint::derive(7, i),
                GatewayFuzzPoint::derive(7, i)
            );
        }
        assert_ne!(
            GatewayFuzzPoint::derive(7, 0).seed,
            GatewayFuzzPoint::derive(7, 1).seed
        );
        let p = GatewayFuzzPoint {
            seed: 5,
            policy: 2,
            load: 3,
            count: 16,
            faults: 2,
            horizon_secs: 90,
            offload: true,
            plant: true,
        };
        assert_eq!(
            p.repro_spec(),
            "--gateway --seed 5 --policy 2 --load 3 --count 16 --faults 2 \
             --horizon 90 --offload --plant"
        );
        let d = GatewayFuzzPoint::derive(3, 1);
        assert!(d.policy < PolicyKind::ALL.len());
        assert!((1..=4).contains(&d.load));
        assert!(d.count >= 16 && d.faults >= 1);
        assert!(d.horizon_secs >= GATEWAY_MIN_HORIZON_SECS);
    }

    #[test]
    fn seeded_gateway_point_streams_clean_under_faults() {
        let mut p = GatewayFuzzPoint::derive(42, 0);
        // Keep the unit test cheap; the CI smoke covers the full range.
        p.load = p.load.min(2);
        p.count = 16;
        let out = run_gateway_point_quiet(&p);
        assert!(
            out.violations.is_empty(),
            "clean gateway point tripped the audit: {:?}",
            out.violations
        );
        assert_eq!(out.truncated, 0, "clean gateway point truncated streams");
        assert!(out.tokens > 0, "gateway made no progress");
    }

    #[test]
    fn planted_skip_restore_is_caught_and_shrinks_to_the_floor() {
        let start = GatewayFuzzPoint {
            seed: 11,
            policy: 3,
            load: 2,
            count: 32,
            faults: 3,
            horizon_secs: 120,
            offload: false,
            plant: true,
        };
        let shrunk = shrink_gateway(start).expect("planted point must violate");
        let v = shrunk.violation.expect("failure must be an audit trip");
        assert_eq!(v.kind(), "token_without_restore");
        // The plant forces its own crash window, so every other axis must
        // strip to its floor.
        assert_eq!(shrunk.minimal.faults, 0);
        assert_eq!(shrunk.minimal.horizon_secs, GATEWAY_MIN_HORIZON_SECS);
        assert_eq!(shrunk.minimal.count, 8);
        assert_eq!(shrunk.minimal.load, 1);
        assert_eq!(shrunk.minimal.policy, 0);
        assert!(shrunk.minimal.plant);
        // And the minimal spec re-runs to the same violation.
        let again = run_gateway_point_quiet(&shrunk.minimal);
        assert_eq!(again.violations[0].kind(), "token_without_restore");
    }
}
