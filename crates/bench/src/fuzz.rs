//! `aqua-repro fuzz` — seeded chaos fuzzing under full invariant auditing.
//!
//! Each fuzz point derives a `FaultPlan × workload × topology` combination
//! from `(base seed, point index)` and replays the chaos scenario — an LLM
//! producer donating HBM to a long-prompt FlexGen consumer — with every
//! aqua-audit hook attached: transfer-engine port legality, coordinator
//! lease books, driver time monotonicity and offloader byte conservation.
//! The point is *fully described by its field values*, so any point a sweep
//! discovers can be re-run from a `--seed/--gpus/--work/--faults/--horizon`
//! command line.
//!
//! Points fan across the [`Sweep`] runner exactly like the experiment
//! suite: one digest-only journal per point, results and the combined
//! determinism digest in input order, so `--jobs 8` explores the identical
//! universe `--jobs 1` does (`tests/determinism.rs` pins this).
//!
//! When a point trips the audit, [`shrink`] minimises it deterministically:
//! [`FaultPlan::randomized`] draws its windows sequentially from one
//! splitmix64 stream, so halving `faults` keeps a *prefix* of the original
//! schedule; the horizon and workload halve toward their floors and the
//! topology collapses to 2 GPUs. Every candidate re-runs under a throwaway
//! digest journal and is kept only if it still violates, so the minimal
//! reproducer printed at the end fails for the same reason the original
//! did.

use crate::setup::{opt_flexgen, OffloadKind, ServerCtx};
use crate::sweep::Sweep;
use aqua_core::coordinator::{FailureConfig, GpuRef};
use aqua_core::informer::LlmInformerConfig;
use aqua_engines::driver::{Driver, Engine};
use aqua_models::zoo;
use aqua_sim::audit::{AuditViolation, Auditor};
use aqua_sim::fault::{FaultKind, FaultPlan, FaultRng, RandomFaultProfile};
use aqua_sim::gpu::GpuId;
use aqua_sim::time::{SimDuration, SimTime};
use aqua_sim::topology::PortId;
use aqua_telemetry::JournalTracer;
use aqua_workloads::longprompt::long_prompt_trace;
use std::sync::Arc;

/// The smallest horizon the shrinker will propose: long enough for a lease
/// grant, one fault window and the offloader's recovery sweep to fit.
pub const MIN_HORIZON_SECS: u64 = 30;

/// One self-describing fuzz input. Every field appears in
/// [`FuzzPoint::repro_spec`], so a point prints as the exact command line
/// that re-runs it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuzzPoint {
    /// Seed for [`FaultPlan::randomized`] and the workload trace.
    pub seed: u64,
    /// Server size: 2 (NVLink pair) or 8 (NVSwitch).
    pub gpus: usize,
    /// Long-prompt requests scheduled on the consumer.
    pub work: usize,
    /// Fault windows drawn into the plan.
    pub faults: usize,
    /// Simulated run length in seconds.
    pub horizon_secs: u64,
    /// Plant a coordinator double-free (the audit self-test).
    pub plant: bool,
}

impl FuzzPoint {
    /// Derives point `index` of a fuzz campaign from its base seed. Pure
    /// function of `(base_seed, index)` — the sweep explores the same
    /// points in any job count and on any machine.
    pub fn derive(base_seed: u64, index: u64) -> FuzzPoint {
        let mut rng = FaultRng::new(base_seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        FuzzPoint {
            seed: rng.next_u64(),
            // The NVSwitch box costs ~4x a pair; sample it at 1-in-4.
            gpus: if rng.next_range(4) == 0 { 8 } else { 2 },
            work: 1 + rng.next_range(2) as usize,
            faults: 1 + rng.next_range(6) as usize,
            horizon_secs: 60 + rng.next_range(4) * 30,
            plant: false,
        }
    }

    /// The flag string that re-runs exactly this point:
    /// `--seed S --gpus G --work W --faults F --horizon H [--plant]`.
    pub fn repro_spec(&self) -> String {
        let mut s = format!(
            "--seed {} --gpus {} --work {} --faults {} --horizon {}",
            self.seed, self.gpus, self.work, self.faults, self.horizon_secs
        );
        if self.plant {
            s.push_str(" --plant");
        }
        s
    }
}

/// What one audited point produced.
#[derive(Debug, Clone)]
pub struct FuzzOutcome {
    /// The input that ran.
    pub point: FuzzPoint,
    /// Consumer tokens generated (a liveness witness — the run made
    /// progress, it didn't just idle past the faults).
    pub tokens: u64,
    /// Every invariant violation the auditor recorded, in order.
    pub violations: Vec<AuditViolation>,
}

/// A buggy client planted for the audit self-test: allocates on its lease,
/// then hands the same bytes back twice. The second free is the
/// `double_free` the auditor must catch (the coordinator rejects it with
/// [`OverFree`](aqua_core::coordinator::AquaError::OverFree) either way —
/// the books stay correct; the *caller's* are what broke).
fn plant_double_free(ctx: &ServerCtx) {
    let bytes = 64 << 20;
    let lease = ctx.coordinator.lease(GpuRef::single(GpuId(1)), 256 << 20);
    let granted = ctx.coordinator.try_allocate_on(lease, bytes);
    debug_assert!(granted, "planted allocation must fit the fresh lease");
    let _ = ctx.coordinator.free(lease, bytes);
    let _ = ctx.coordinator.free(lease, bytes);
}

/// Runs one point under full auditing, journalling into the ambient tracer
/// (inside a [`Sweep`] that is the point's own digest journal).
pub fn run_point(p: &FuzzPoint) -> FuzzOutcome {
    let tracer = crate::trace::tracer();
    let auditor = Auditor::with_tracer(tracer.clone());
    let mut ctx = if p.gpus >= 8 {
        ServerCtx::eight_gpu_traced(tracer.clone())
    } else {
        ServerCtx::two_gpu_traced(tracer.clone())
    };
    ctx = ctx.with_auditor(auditor.clone());

    let producer_gpu = GpuId(1);
    let horizon = SimTime::from_secs(p.horizon_secs);
    let mut link_ports = Vec::new();
    for g in 0..ctx.server.gpu_count().min(4) {
        link_ports.push(PortId::NvlinkEgress(GpuId(g)));
        link_ports.push(PortId::NvlinkIngress(GpuId(g)));
    }
    let profile = RandomFaultProfile {
        link_ports,
        crash_gpus: vec![producer_gpu],
        events: p.faults,
        min_duration: SimDuration::from_secs(5),
        max_duration: SimDuration::from_secs(30),
    };
    let plan = Arc::new(FaultPlan::randomized(p.seed, horizon, &profile));
    // Journal the generated plan: the point digest then witnesses fault
    // *generation* determinism, not just execution determinism.
    plan.emit(&tracer);
    ctx = ctx.with_fault_plan(Arc::clone(&plan));
    ctx.coordinator.set_failure_config(FailureConfig::chaos());

    let mut producer = ctx.llm_producer_with_informer(
        &zoo::llama2_13b(),
        producer_gpu,
        LlmInformerConfig::default(),
    );
    let mut consumer = opt_flexgen(
        &ctx,
        OffloadKind::Aqua,
        crate::fig07_long_prompt::CONTEXT_BUDGET,
    );

    let mut driver = Driver::new();
    driver.set_auditor(auditor.clone());
    for w in plan.windows() {
        if let FaultKind::GpuCrash { gpu } = w.kind {
            if gpu == producer_gpu {
                // Engine 1 (the producer) goes dark: no ticks, no informer
                // heartbeats, so the chaos TTL expires its lease.
                driver.crash_window(1, w.start, w.end);
            }
        }
    }
    driver.schedule_trace(
        0,
        long_prompt_trace(p.work, 200_000, p.seed)
            .into_iter()
            .map(|(_, r)| (SimTime::from_secs(5), r)),
    );

    if p.plant {
        plant_double_free(&ctx);
    }

    let mut engines: Vec<&mut dyn Engine> = vec![&mut consumer, &mut producer];
    driver.run(&mut engines, horizon);

    FuzzOutcome {
        point: *p,
        tokens: consumer.tokens_generated(),
        violations: auditor.violations(),
    }
}

/// [`run_point`] under a throwaway digest journal — shrink probes and
/// explicit single-point re-runs use this so they never pollute an ambient
/// `AQUA_TRACE` capture.
pub fn run_point_quiet(p: &FuzzPoint) -> FuzzOutcome {
    crate::trace::with_tracer(Arc::new(JournalTracer::digest_only()), || run_point(p))
}

/// A fuzz campaign: how many derived points, how wide a fan-out.
#[derive(Debug, Clone, Copy)]
pub struct FuzzConfig {
    /// Base seed every point derives from.
    pub base_seed: u64,
    /// Number of points.
    pub points: usize,
    /// Sweep worker threads.
    pub jobs: usize,
    /// Plant the double-free self-test into every point.
    pub plant: bool,
}

/// A completed campaign, in point order.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Outcome per point, index-aligned with the derivation order.
    pub outcomes: Vec<FuzzOutcome>,
    /// Combined determinism digest across all point journals.
    pub combined_digest: u64,
    /// Worker threads actually used.
    pub jobs: usize,
}

impl FuzzReport {
    /// Indices of points that tripped the audit.
    pub fn dirty(&self) -> Vec<usize> {
        self.outcomes
            .iter()
            .enumerate()
            .filter(|(_, o)| !o.violations.is_empty())
            .map(|(i, _)| i)
            .collect()
    }

    /// Total violations across the campaign.
    pub fn violation_count(&self) -> usize {
        self.outcomes.iter().map(|o| o.violations.len()).sum()
    }
}

/// Runs a campaign through the [`Sweep`] fan-out.
pub fn run_fuzz(cfg: &FuzzConfig) -> FuzzReport {
    let points: Vec<FuzzPoint> = (0..cfg.points)
        .map(|i| {
            let mut p = FuzzPoint::derive(cfg.base_seed, i as u64);
            p.plant = cfg.plant;
            p
        })
        .collect();
    let result = Sweep::new().jobs(cfg.jobs).run(&points, run_point);
    FuzzReport {
        combined_digest: result.combined_digest(),
        jobs: result.jobs,
        outcomes: result.results(),
    }
}

/// A finished shrink: the minimal still-violating point and its witness.
#[derive(Debug, Clone)]
pub struct ShrinkOutcome {
    /// The smallest point found that still trips the audit.
    pub minimal: FuzzPoint,
    /// Points executed during the search (including the confirming re-run).
    pub candidates_run: usize,
    /// The first violation the minimal point raises.
    pub violation: AuditViolation,
}

/// The shrink moves, in preference order: fewer faults first (halving keeps
/// a prefix of the seeded plan), then a shorter horizon, less work, and a
/// smaller server.
fn shrink_candidates(p: &FuzzPoint) -> Vec<FuzzPoint> {
    let mut out = Vec::new();
    if p.faults > 0 {
        let mut c = *p;
        c.faults /= 2;
        out.push(c);
    }
    if p.horizon_secs > MIN_HORIZON_SECS {
        let mut c = *p;
        c.horizon_secs = (c.horizon_secs / 2).max(MIN_HORIZON_SECS);
        out.push(c);
    }
    if p.work > 1 {
        let mut c = *p;
        c.work /= 2;
        out.push(c);
    }
    if p.gpus > 2 {
        let mut c = *p;
        c.gpus = 2;
        out.push(c);
    }
    out
}

/// Greedily minimises a violating point. Returns `None` if the starting
/// point does not actually violate when re-run (it never should — points
/// are pure functions of their fields). Terminates because every accepted
/// candidate strictly shrinks a bounded component.
pub fn shrink(start: FuzzPoint) -> Option<ShrinkOutcome> {
    let mut best = run_point_quiet(&start);
    let mut candidates_run = 1;
    if best.violations.is_empty() {
        return None;
    }
    loop {
        let mut improved = false;
        for cand in shrink_candidates(&best.point) {
            candidates_run += 1;
            let out = run_point_quiet(&cand);
            if !out.violations.is_empty() {
                best = out;
                improved = true;
                break;
            }
        }
        if !improved {
            break;
        }
    }
    Some(ShrinkOutcome {
        violation: best.violations[0].clone(),
        minimal: best.point,
        candidates_run,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_points_are_pure_functions_of_seed_and_index() {
        for i in 0..8 {
            assert_eq!(FuzzPoint::derive(7, i), FuzzPoint::derive(7, i));
        }
        assert_ne!(FuzzPoint::derive(7, 0).seed, FuzzPoint::derive(7, 1).seed);
        assert_ne!(FuzzPoint::derive(7, 0).seed, FuzzPoint::derive(8, 0).seed);
        let p = FuzzPoint::derive(7, 3);
        assert!(p.gpus == 2 || p.gpus == 8);
        assert!(p.work >= 1 && p.faults >= 1 && p.horizon_secs >= 60);
    }

    #[test]
    fn repro_spec_round_trips_every_field() {
        let p = FuzzPoint {
            seed: 123,
            gpus: 8,
            work: 2,
            faults: 3,
            horizon_secs: 90,
            plant: true,
        };
        let s = p.repro_spec();
        assert_eq!(
            s,
            "--seed 123 --gpus 8 --work 2 --faults 3 --horizon 90 --plant"
        );
        assert!(!FuzzPoint::derive(1, 0).repro_spec().contains("--plant"));
    }

    #[test]
    fn seeded_point_runs_clean_and_makes_progress() {
        let out = run_point_quiet(&FuzzPoint::derive(42, 0));
        assert!(
            out.violations.is_empty(),
            "clean chaos point tripped the audit: {:?}",
            out.violations
        );
        assert!(out.tokens > 0, "consumer made no progress");
    }

    #[test]
    fn planted_double_free_is_caught_and_shrinks_to_the_floor() {
        let start = FuzzPoint {
            seed: 9,
            gpus: 8,
            work: 2,
            faults: 4,
            horizon_secs: 120,
            plant: true,
        };
        let shrunk = shrink(start).expect("planted point must violate");
        assert_eq!(shrunk.violation.kind(), "double_free");
        // The plant is independent of faults, horizon, work and topology,
        // so the shrinker must strip all of them to their floors.
        assert_eq!(shrunk.minimal.faults, 0);
        assert_eq!(shrunk.minimal.horizon_secs, MIN_HORIZON_SECS);
        assert_eq!(shrunk.minimal.work, 1);
        assert_eq!(shrunk.minimal.gpus, 2);
        assert!(shrunk.minimal.plant);
        assert!(shrunk.candidates_run > 1);
        // And the minimal spec re-runs to the same violation.
        let again = run_point_quiet(&shrunk.minimal);
        assert_eq!(again.violations[0].kind(), "double_free");
    }
}
