//! §6.1 — the end-to-end cluster evaluation.
//!
//! "We evaluate the end-to-end benefits of using AQUA in a cluster of 8
//! servers, each with 2 GPUs. We host 16 models, one on each GPU … We test
//! two sets of 16 models", a **balanced** split (equal parts image, audio
//! and language models) and an **LLM-heavy** split (all LLMs with varying
//! workloads). AQUA-PLACER maps models to servers; in-server stable
//! matching pairs each consumer with its producer; and — like the paper,
//! which "uses these servers as building blocks by evaluating AQUA on an
//! individual server independently and sequentially" — each consumer
//! server's workload is then executed with AQUA and with the DRAM baseline.

use crate::setup::{
    codellama_cfs, mistral_lora_vllm, opt_flexgen, producer_engine, OffloadKind, ServerCtx,
};
use aqua_core::informer::LlmInformerConfig;
use aqua_engines::driver::{Driver, Engine};
use aqua_metrics::requests::RequestLog;
use aqua_metrics::table::Table;
use aqua_models::lora::LoraAdapter;
use aqua_models::zoo::{self, ModelProfile};
use aqua_placer::instance::{ModelSpec, PlacementInstance};
use aqua_placer::matching::stable_match;
use aqua_placer::solver::solve_optimal;
use aqua_sim::gpu::GpuId;
use aqua_sim::link::bytes::gib;
use aqua_sim::time::SimTime;
use aqua_workloads::items::item_trace;
use aqua_workloads::longprompt::long_prompt_trace;
use aqua_workloads::lora::lora_trace;
use aqua_workloads::sharegpt::{sharegpt_trace, ShareGptConfig};

/// The consumer workloads of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConsumerKind {
    /// OPT-30B long-prompt inference on FlexGen (metric: tokens generated).
    LongPrompt,
    /// Mistral-7B LoRA serving on vLLM (metric: RCT p50 seconds).
    Lora,
    /// Codellama-34B code summary on vLLM + CFS (metric: TTFT p90 seconds).
    Cfs,
}

impl std::fmt::Display for ConsumerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ConsumerKind::LongPrompt => "long-prompt (OPT-30B)",
            ConsumerKind::Lora => "lora (Mistral-7B)",
            ConsumerKind::Cfs => "cfs (Codellama-34B)",
        };
        f.write_str(s)
    }
}

/// What a GPU in the cluster hosts.
#[derive(Debug, Clone)]
pub enum HostedModel {
    /// A memory-bound consumer workload.
    Consumer(ConsumerKind),
    /// A compute-bound image/audio producer.
    MediaProducer(ModelProfile),
    /// A lightly loaded LLM producer.
    LlmProducer(ModelProfile),
}

impl HostedModel {
    /// The signed `R_m` handed to AQUA-PLACER: consumers declare their
    /// deficit, producers their plateau excess (media) or donatable pool
    /// (LLMs under low traffic).
    pub fn placement_spec(&self, name: String) -> ModelSpec {
        match self {
            HostedModel::Consumer(ConsumerKind::LongPrompt) => ModelSpec::consumer(name, gib(12)),
            HostedModel::Consumer(ConsumerKind::Lora) => ModelSpec::consumer(name, gib(10)),
            HostedModel::Consumer(ConsumerKind::Cfs) => ModelSpec::consumer(name, gib(8)),
            HostedModel::MediaProducer(m) => match m.modality() {
                aqua_models::zoo::Modality::Image => ModelSpec::producer(name, gib(55)),
                _ => ModelSpec::producer(name, gib(60)),
            },
            HostedModel::LlmProducer(_) => ModelSpec::producer(name, gib(35)),
        }
    }

    fn label(&self) -> String {
        match self {
            HostedModel::Consumer(k) => k.to_string(),
            HostedModel::MediaProducer(m) => format!("producer {}", m.name),
            HostedModel::LlmProducer(m) => format!("llm-producer {}", m.name),
        }
    }
}

/// The paper's two 16-model splits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Split {
    /// Equal parts image, audio and language models.
    Balanced,
    /// All models are LLMs with varying workloads.
    LlmHeavy,
}

impl std::fmt::Display for Split {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Split::Balanced => "balanced",
            Split::LlmHeavy => "llm-heavy",
        })
    }
}

/// Builds the 16-model roster for a split (models sampled with replacement,
/// like the paper: "Since there are fewer unique models than GPUs, we
/// sample models with replacement").
pub fn roster(split: Split) -> Vec<HostedModel> {
    match split {
        Split::Balanced => vec![
            // 6 language models: 3 consumers + 3 producers.
            HostedModel::Consumer(ConsumerKind::LongPrompt),
            HostedModel::Consumer(ConsumerKind::Lora),
            HostedModel::Consumer(ConsumerKind::Cfs),
            HostedModel::LlmProducer(zoo::llama2_13b()),
            HostedModel::LlmProducer(zoo::mistral_7b()),
            HostedModel::LlmProducer(zoo::llama2_13b()),
            // 5 image producers.
            HostedModel::MediaProducer(zoo::stable_diffusion()),
            HostedModel::MediaProducer(zoo::stable_diffusion_xl()),
            HostedModel::MediaProducer(zoo::kandinsky()),
            HostedModel::MediaProducer(zoo::stable_diffusion()),
            HostedModel::MediaProducer(zoo::stable_diffusion_xl()),
            // 5 audio producers.
            HostedModel::MediaProducer(zoo::audiogen()),
            HostedModel::MediaProducer(zoo::musicgen()),
            HostedModel::MediaProducer(zoo::audiogen()),
            HostedModel::MediaProducer(zoo::musicgen()),
            HostedModel::MediaProducer(zoo::audiogen()),
        ],
        Split::LlmHeavy => {
            let mut v = Vec::new();
            for _ in 0..2 {
                v.push(HostedModel::Consumer(ConsumerKind::LongPrompt));
            }
            for _ in 0..3 {
                v.push(HostedModel::Consumer(ConsumerKind::Lora));
            }
            for _ in 0..3 {
                v.push(HostedModel::Consumer(ConsumerKind::Cfs));
            }
            for i in 0..8 {
                let m = if i % 2 == 0 {
                    zoo::llama2_13b()
                } else {
                    zoo::mistral_7b()
                };
                v.push(HostedModel::LlmProducer(m));
            }
            v
        }
    }
}

/// One consumer's end-to-end outcome.
#[derive(Debug, Clone)]
pub struct ConsumerOutcome {
    /// Server the pair was placed on.
    pub server: usize,
    /// The consumer workload.
    pub kind: ConsumerKind,
    /// The producer it was paired with.
    pub producer: String,
    /// Headline metric with the DRAM baseline.
    pub baseline: f64,
    /// Headline metric with AQUA.
    pub aqua: f64,
}

impl ConsumerOutcome {
    /// AQUA's improvement factor (higher is better for tokens; for latency
    /// metrics the ratio is baseline/aqua, also higher-is-better).
    pub fn factor(&self) -> f64 {
        match self.kind {
            ConsumerKind::LongPrompt => self.aqua / self.baseline,
            ConsumerKind::Lora | ConsumerKind::Cfs => self.baseline / self.aqua,
        }
    }

    fn metric_name(&self) -> &'static str {
        match self.kind {
            ConsumerKind::LongPrompt => "tokens/window",
            ConsumerKind::Lora => "rct_p50_s",
            ConsumerKind::Cfs => "ttft_p90_s",
        }
    }
}

/// The whole §6.1 run for one split.
#[derive(Debug)]
pub struct E2eResult {
    /// Which split ran.
    pub split: Split,
    /// `(server, hosted models)` as placed by AQUA-PLACER.
    pub placement: Vec<(usize, Vec<String>)>,
    /// Per-consumer outcomes.
    pub outcomes: Vec<ConsumerOutcome>,
}

/// Places a roster on the 8×2 cluster with AQUA-PLACER and stable matching,
/// returning per-server `(consumer index, producer index)` pairs.
fn place(models: &[HostedModel]) -> (Vec<usize>, Vec<(usize, usize, usize)>) {
    let specs: Vec<ModelSpec> = models
        .iter()
        .enumerate()
        .map(|(i, m)| m.placement_spec(format!("m{i}")))
        .collect();
    let inst = PlacementInstance::new(8, 2, gib(80), specs.clone());
    let placement = solve_optimal(&inst);
    placement.validate(&inst).expect("feasible");

    let mut pairs = Vec::new();
    for s in 0..inst.servers {
        let members = placement.models_on(s);
        let member_specs: Vec<ModelSpec> = members.iter().map(|&m| specs[m].clone()).collect();
        for p in stable_match(&member_specs) {
            pairs.push((s, members[p.consumer], members[p.producer]));
        }
    }
    (placement.assignment, pairs)
}

fn producer_for(models: &[HostedModel], idx: usize) -> &ModelProfile {
    match &models[idx] {
        HostedModel::MediaProducer(m) | HostedModel::LlmProducer(m) => m,
        HostedModel::Consumer(_) => panic!("matching paired a consumer as producer"),
    }
}

/// Runs one consumer workload against one producer, with and without AQUA.
/// Returns `(baseline, aqua, driver events processed across both runs)`.
fn run_pair(
    models: &[HostedModel],
    kind: ConsumerKind,
    producer_idx: usize,
    window_secs: u64,
    seed: u64,
) -> (f64, f64, u64) {
    // Validate the pairing target up front (panics on a consumer).
    let _ = producer_for(models, producer_idx);
    let run_one = |aqua: bool| -> (f64, u64) {
        let ctx = ServerCtx::two_gpu();
        let mut driver = Driver::new();
        // The paired producer occupies GPU 1 and keeps serving.
        let mut producers: Vec<Box<dyn Engine>> = Vec::new();
        if aqua {
            match &models[producer_idx] {
                HostedModel::MediaProducer(m) => {
                    let engine = producer_engine(m).with_informer(Box::new(
                        aqua_core::informer::BatchInformer::new(
                            aqua_core::coordinator::GpuRef::single(GpuId(1)),
                            std::sync::Arc::clone(&ctx.coordinator),
                        ),
                    ));
                    driver.schedule_trace(
                        1,
                        item_trace(0.4, (window_secs / 3) as usize, seed + 1, 1_000_000),
                    );
                    producers.push(Box::new(engine));
                }
                HostedModel::LlmProducer(m) => {
                    let engine =
                        ctx.llm_producer_with_informer(m, GpuId(1), LlmInformerConfig::default());
                    driver.schedule_trace(
                        1,
                        sharegpt_trace(
                            &ShareGptConfig::new(0.4, (window_secs / 3) as usize),
                            seed + 1,
                            1_000_000,
                        ),
                    );
                    producers.push(Box::new(engine));
                }
                HostedModel::Consumer(_) => unreachable!("validated by producer_for"),
            }
        }
        let backend = |scattered: bool| {
            if aqua {
                OffloadKind::Aqua
            } else if scattered {
                OffloadKind::DramScattered
            } else {
                OffloadKind::DramPinned
            }
        };

        let horizon = SimTime::from_secs(window_secs);
        let metric = match kind {
            ConsumerKind::LongPrompt => {
                let mut engine = opt_flexgen(&ctx, backend(false), gib(8));
                driver.schedule_trace(0, long_prompt_trace(1, 1_000_000, 0));
                let mut engines: Vec<&mut dyn Engine> = vec![&mut engine];
                for p in producers.iter_mut() {
                    engines.push(p.as_mut());
                }
                driver.run(&mut engines, horizon);
                engine.tokens_generated() as f64
            }
            ConsumerKind::Lora => {
                let adapters = LoraAdapter::zephyr().synthesize_pool(30);
                let kind = if aqua {
                    OffloadKind::Aqua
                } else {
                    OffloadKind::DramPageable
                };
                let mut engine = mistral_lora_vllm(&ctx, kind, adapters, 10);
                if aqua {
                    // Adapters are prestaged by mistral_lora_vllm once the
                    // lease exists; give the informer a head start.
                }
                let count = (window_secs * 2) as usize;
                driver.schedule_trace(0, lora_trace(2.0, count, 30, seed, 0));
                let mut engines: Vec<&mut dyn Engine> = vec![&mut engine];
                for p in producers.iter_mut() {
                    engines.push(p.as_mut());
                }
                driver.run(
                    &mut engines,
                    horizon + aqua_sim::time::SimDuration::from_secs(600),
                );
                let log: RequestLog = engine.drain_completions().into_iter().collect();
                log.rct_summary().p50
            }
            ConsumerKind::Cfs => {
                let count = (window_secs * 5) as usize;
                let trace = sharegpt_trace(&ShareGptConfig::code_summary(5.0, count), seed, 0);
                if aqua {
                    let mut engine = codellama_cfs(&ctx, OffloadKind::Aqua, 1 << 30, 4);
                    driver.schedule_trace(0, trace);
                    let mut engines: Vec<&mut dyn Engine> = vec![&mut engine];
                    for p in producers.iter_mut() {
                        engines.push(p.as_mut());
                    }
                    driver.run(
                        &mut engines,
                        horizon + aqua_sim::time::SimDuration::from_secs(1_200),
                    );
                    let log: RequestLog = engine.drain_completions().into_iter().collect();
                    ttft_p90(&log)
                } else {
                    let mut engine = crate::setup::codellama_vllm(1 << 30);
                    driver.schedule_trace(0, trace);
                    let mut engines: Vec<&mut dyn Engine> = vec![&mut engine];
                    driver.run(
                        &mut engines,
                        horizon + aqua_sim::time::SimDuration::from_secs(1_200),
                    );
                    let log: RequestLog = engine.drain_completions().into_iter().collect();
                    ttft_p90(&log)
                }
            }
        };
        (metric, driver.processed_events())
    };
    let (baseline, base_events) = run_one(false);
    let (aqua, aqua_events) = run_one(true);
    (baseline, aqua, base_events + aqua_events)
}

fn ttft_p90(log: &RequestLog) -> f64 {
    let mut t = log.ttfts();
    if t.is_empty() {
        return f64::NAN;
    }
    t.sort_by(|a, b| a.partial_cmp(b).unwrap());
    t[(t.len() - 1) * 9 / 10]
}

/// Runs §6.1 for one split.
pub fn run(split: Split, window_secs: u64, seed: u64) -> E2eResult {
    let models = roster(split);
    let (assignment, pairs) = place(&models);

    let mut placement = Vec::new();
    for s in 0..8 {
        let names: Vec<String> = assignment
            .iter()
            .enumerate()
            .filter(|(_, &sv)| sv == s)
            .map(|(m, _)| models[m].label())
            .collect();
        placement.push((s, names));
    }

    let mut outcomes = Vec::new();
    for (server, consumer_idx, producer_idx) in pairs {
        let HostedModel::Consumer(kind) = models[consumer_idx] else {
            continue;
        };
        let (baseline, aqua, _) = run_pair(&models, kind, producer_idx, window_secs, seed);
        outcomes.push(ConsumerOutcome {
            server,
            kind,
            producer: models[producer_idx].label(),
            baseline,
            aqua,
        });
    }
    E2eResult {
        split,
        placement,
        outcomes,
    }
}

/// Runs §6.1 for one split with each consumer pair as its own PDES shard.
///
/// Every pair already builds a private `ServerCtx`, driver and journal, so
/// the pairs are fully decoupled shards: the lane executor runs pair `i` on
/// lane `i % lanes` under its own digest-only journal and merges outputs in
/// placement order. The assembled [`E2eResult`] — and therefore
/// [`tables`] — is byte-identical to [`run`]'s at every lane count, and the
/// folded shard digest is lane-count independent.
pub fn run_sharded(
    split: Split,
    window_secs: u64,
    seed: u64,
    lanes: usize,
) -> (E2eResult, crate::lanes::LaneOutcome<ConsumerOutcome>) {
    use crate::lanes::{run_decoupled, ShardFinish};
    let models = std::sync::Arc::new(roster(split));
    let (assignment, pairs) = place(&models);

    let mut placement = Vec::new();
    for s in 0..8 {
        let names: Vec<String> = assignment
            .iter()
            .enumerate()
            .filter(|(_, &sv)| sv == s)
            .map(|(m, _)| models[m].label())
            .collect();
        placement.push((s, names));
    }

    let tasks: Vec<Box<dyn FnOnce() -> ShardFinish<ConsumerOutcome> + Send>> = pairs
        .iter()
        .filter_map(|&(server, consumer_idx, producer_idx)| {
            let HostedModel::Consumer(kind) = models[consumer_idx] else {
                return None;
            };
            let models = std::sync::Arc::clone(&models);
            let task: Box<dyn FnOnce() -> ShardFinish<ConsumerOutcome> + Send> =
                Box::new(move || {
                    let (baseline, aqua, sim_events) =
                        run_pair(&models, kind, producer_idx, window_secs, seed);
                    ShardFinish {
                        output: ConsumerOutcome {
                            server,
                            kind,
                            producer: models[producer_idx].label(),
                            baseline,
                            aqua,
                        },
                        sim_events,
                    }
                });
            Some(task)
        })
        .collect();
    let outcome = run_decoupled(tasks, lanes);
    let result = E2eResult {
        split,
        placement,
        outcomes: outcome.shards.iter().map(|s| s.output.clone()).collect(),
    };
    (result, outcome)
}

/// Renders the placement and per-consumer outcomes.
pub fn tables(result: &E2eResult) -> (Table, Table) {
    let mut placement = Table::new(
        format!(
            "Section 6.1 ({}) — AQUA-PLACER placement, 8 servers x 2 GPUs",
            result.split
        ),
        &["server", "models"],
    );
    for (s, names) in &result.placement {
        placement.row(&[s.to_string(), names.join(" + ")]);
    }
    let mut outcomes = Table::new(
        format!("Section 6.1 ({}) — per-consumer results", result.split),
        &[
            "server",
            "workload",
            "paired_producer",
            "metric",
            "baseline",
            "aqua",
            "factor",
        ],
    );
    for o in &result.outcomes {
        outcomes.row(&[
            o.server.to_string(),
            o.kind.to_string(),
            o.producer.clone(),
            o.metric_name().to_owned(),
            format!("{:.2}", o.baseline),
            format!("{:.2}", o.aqua),
            format!("{:.2}x", o.factor()),
        ]);
    }
    (placement, outcomes)
}

/// The `aqua-repro` decomposition: one sweep point per cluster split.
pub fn repro_points(a: &crate::runner::ReproArgs) -> Vec<crate::runner::ReproPoint> {
    let (window, seed) = (a.window, a.seed);
    [Split::Balanced, Split::LlmHeavy]
        .iter()
        .map(|&split| {
            crate::runner::ReproPoint::new("e2e", format!("{split:?}"), move || {
                let r = run(split, window, seed);
                let (p, o) = tables(&r);
                format!("{p}\n{o}\n")
            })
            .with_cost_hint(25)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rosters_have_sixteen_models() {
        for split in [Split::Balanced, Split::LlmHeavy] {
            let r = roster(split);
            assert_eq!(r.len(), 16, "{split}");
            let consumers = r
                .iter()
                .filter(|m| matches!(m, HostedModel::Consumer(_)))
                .count();
            assert!(consumers >= 3);
        }
    }

    #[test]
    fn placement_pairs_every_consumer() {
        for split in [Split::Balanced, Split::LlmHeavy] {
            let models = roster(split);
            let (assignment, pairs) = place(&models);
            assert_eq!(assignment.len(), 16);
            let consumers = models
                .iter()
                .filter(|m| matches!(m, HostedModel::Consumer(_)))
                .count();
            assert_eq!(pairs.len(), consumers, "{split}: every consumer paired");
            // Every pair is intra-server and producer-backed.
            for (s, c, p) in pairs {
                assert_eq!(assignment[c], s);
                assert_eq!(assignment[p], s);
                assert!(matches!(
                    models[p],
                    HostedModel::MediaProducer(_) | HostedModel::LlmProducer(_)
                ));
            }
        }
    }

    #[test]
    fn balanced_split_end_to_end_wins() {
        let r = run(Split::Balanced, 40, 17);
        assert_eq!(r.outcomes.len(), 3);
        for o in &r.outcomes {
            assert!(
                o.factor() > 1.2,
                "{} vs {}: factor {:.2}",
                o.kind,
                o.producer,
                o.factor()
            );
        }
        let (p, t) = tables(&r);
        assert_eq!(p.len(), 8);
        assert_eq!(t.len(), 3);
    }
}
