//! `aqua-repro serve_chaos` — goodput under overload and crash recovery.
//!
//! Two questions the scheduler study (`serve`) cannot answer:
//!
//! 1. **Does overload protection buy goodput?** The study's zoo never drops
//!    a request, so at 4× overload every policy eventually serves everything
//!    — late. This experiment judges each mode against the chat tenant's
//!    SLO ([`CHAT_SLO_TTFT_S`] seconds to first token) and reports
//!    *goodput*: SLO-met tokens per second. A protected front door
//!    (SJF+bucketing, swap offload, KV-cost shedding, batch brownout, chat
//!    deadlines) should plateau as load grows; an unprotected FCFS queue
//!    should collapse, because its unbounded backlog pushes every chat TTFT
//!    past the deadline.
//! 2. **How fast does serving recover from a GPU crash?** A mid-run
//!    [`FaultKind::GpuCrash`] destroys the HBM KV of every running
//!    sequence. With swap offloading, preempted sequences keep their KV in
//!    the offload store and live-restore over NVLink; with recompute, every
//!    re-admission re-prefills from scratch. Both cells replay the same
//!    crash; the recovery clock measures how long after the window the
//!    in-flight population takes to drain.
//!
//! Every cell is seed-deterministic and journals through the ambient
//! tracer, so the experiment fans across the sweep runner digest-checked
//! like the rest of the suite.
//!
//! [`FaultKind::GpuCrash`]: aqua_sim::fault::FaultKind

use crate::setup::{OffloadKind, ServerCtx};
use aqua_engines::driver::{Driver, Engine};
use aqua_engines::vllm::PreemptionPolicy;
use aqua_gateway::admission::{BrownoutConfig, OverloadPolicy};
use aqua_gateway::engine::{GatewayConfig, GatewayEngine};
use aqua_gateway::outcome::{SloPolicy, TenantSlo};
use aqua_gateway::scheduler::PolicyKind;
use aqua_metrics::goodput::{GoodputReport, SloSpec};
use aqua_metrics::streaming::StreamLog;
use aqua_metrics::table::Table;
use aqua_models::zoo;
use aqua_sim::audit::SharedAuditor;
use aqua_sim::fault::FaultPlan;
use aqua_sim::gpu::{GpuId, GpuSpec};
use aqua_sim::link::bytes::gib;
use aqua_sim::time::{SimDuration, SimTime};
use aqua_telemetry::SharedTracer;
use aqua_workloads::tenants::{tenant_trace, TENANT_BATCH, TENANT_CHAT, TENANT_CODE};

/// The chat tenant's TTFT SLO (seconds). Both the protected gateway's
/// admission deadline and the goodput judgement use this bound, so the two
/// modes are scored against the identical objective.
pub const CHAT_SLO_TTFT_S: f64 = 30.0;

/// Load multipliers applied to the base rate *and* request count, so every
/// load level spans the same arrival window at a different intensity.
pub const LOAD_MULTIPLIERS: [usize; 3] = [1, 2, 4];

/// The crash window replayed by the recovery cells, seconds.
pub const CRASH_WINDOW_SECS: (u64, u64) = (12, 17);

/// Experiment parameters shared by every cell.
#[derive(Debug, Clone, Copy)]
pub struct ChaosExperiment {
    /// Chat-tenant request rate at 1× load, req/s.
    pub base_rate: f64,
    /// Chat-tenant request count at 1× load.
    pub base_count: usize,
    /// Workload seed.
    pub seed: u64,
    /// Consumer KV pool bytes (tight, as in the scheduler study).
    pub pool_bytes: u64,
    /// Per-tenant cap on admitted-but-unfinished requests.
    pub max_outstanding: usize,
}

impl ChaosExperiment {
    /// The standard configuration: the scheduler study's tight pool at a
    /// 2 req/s base chat rate.
    pub fn standard(base_count: usize, seed: u64) -> Self {
        ChaosExperiment {
            base_rate: 2.0,
            base_count,
            seed,
            pool_bytes: gib(3),
            max_outstanding: 8,
        }
    }

    /// The goodput measurement horizon, seconds. Both rate and count scale
    /// with load, so the arrival span is load-invariant and every cell is
    /// normalized by the same denominator — load ratios compare goodput
    /// *tokens* directly.
    pub fn measure_horizon_s(&self) -> f64 {
        self.base_count as f64 / self.base_rate + 60.0
    }

    /// Simulation horizon at `load`: generous slack past the last arrival
    /// so even the unprotected queue drains completely.
    pub fn horizon(&self, load: usize) -> SimTime {
        let span = (self.base_count * load) as f64 / (self.base_rate * load as f64);
        SimTime::from_secs(span as u64 + 40_000)
    }

    /// The overload policy of the protected mode. The brownout is the
    /// primary defense: under queue pressure the non-interactive tenants
    /// (batch *and* code) are paused and their arrivals shed, so the whole
    /// engine serves chat. The KV-cost budget and deep-queue watermark are
    /// backstops against pathological commitment; both are sized to stay
    /// inert at 1× load.
    pub fn protection(&self) -> OverloadPolicy {
        OverloadPolicy {
            queue_watermark: Some(6 * self.base_count),
            kv_commit_bytes: Some(8 * self.pool_bytes),
            brownout: Some(BrownoutConfig {
                enter_depth: 16,
                exit_depth: 4,
                capped_tenants: vec![TENANT_BATCH, TENANT_CODE],
                capped_outstanding: 0,
            }),
        }
    }

    /// The protected mode's admission deadlines: chat requests that can no
    /// longer meet [`CHAT_SLO_TTFT_S`] are cancelled instead of consuming
    /// capacity on an already-missed SLO.
    pub fn deadlines(&self) -> SloPolicy {
        SloPolicy::none().tenant(
            TENANT_CHAT,
            TenantSlo {
                ttft: Some(SimDuration::from_secs(CHAT_SLO_TTFT_S as u64)),
                total: None,
            },
        )
    }
}

/// One cell of the study: a serving mode at a load level, optionally with
/// a crash window.
#[derive(Debug, Clone, Copy)]
pub struct CellSpec {
    /// Decode scheduling policy.
    pub policy: PolicyKind,
    /// Swap preemption + AQUA offloader (vs recompute).
    pub offload: bool,
    /// Overload protection + chat deadlines engaged.
    pub protected: bool,
    /// Load multiplier over the base rate/count.
    pub load: usize,
    /// GPU crash window `(start_s, end_s)`, if any.
    pub crash: Option<(u64, u64)>,
}

impl CellSpec {
    /// The protected front door at `load`.
    pub fn protected(load: usize) -> Self {
        CellSpec {
            policy: PolicyKind::SjfBucket,
            offload: true,
            protected: true,
            load,
            crash: None,
        }
    }

    /// The unprotected FCFS baseline at `load`.
    pub fn unprotected(load: usize) -> Self {
        CellSpec {
            policy: PolicyKind::Fcfs,
            offload: false,
            protected: false,
            load,
            crash: None,
        }
    }

    /// A crash-recovery cell: protection off (so no shedding confounds the
    /// recovery clock), restore axis selected by `offload`.
    pub fn crashed(offload: bool) -> Self {
        CellSpec {
            policy: PolicyKind::SjfBucket,
            offload,
            protected: false,
            load: 2,
            crash: Some(CRASH_WINDOW_SECS),
        }
    }

    /// Display label for the mode axis.
    pub fn mode(&self) -> &'static str {
        match (self.protected, self.offload) {
            (true, _) => "protected",
            (false, true) => "fcfs+swap",
            (false, false) => "fcfs",
        }
    }

    /// Display label for the restore axis of crash cells.
    pub fn restore(&self) -> &'static str {
        if self.offload {
            "swap"
        } else {
            "recompute"
        }
    }
}

/// What one cell produced.
#[derive(Debug)]
pub struct ChaosRun {
    /// The cell that ran.
    pub spec: CellSpec,
    /// Per-request token streams (completed requests only).
    pub streams: StreamLog,
    /// Requests refused at admission.
    pub shed: usize,
    /// Requests cancelled on a blown deadline.
    pub timed_out: usize,
    /// Requests terminally lost to the crash.
    pub crash_aborted: usize,
    /// Crash-retry attempts across all requests.
    pub retries: u64,
    /// Chat-tenant goodput against [`CHAT_SLO_TTFT_S`].
    pub chat: GoodputReport,
    /// Simulator events the cell's driver processed.
    pub sim_events: u64,
}

impl ChaosRun {
    /// Recovery time after the crash window, seconds: how long until every
    /// request that was in flight when the GPU died had fully streamed.
    /// `None` when the cell had no crash or nothing was in flight.
    pub fn recovery_secs(&self) -> Option<f64> {
        let (start_s, end_s) = self.spec.crash?;
        let (start, end) = (SimTime::from_secs(start_s), SimTime::from_secs(end_s));
        self.streams
            .streams()
            .iter()
            .filter(|s| s.arrival <= start && s.completion().is_some_and(|c| c > start))
            .map(|s| s.completion().unwrap())
            .max()
            .map(|last| last.duration_since(end).as_secs_f64())
    }
}

/// Runs one cell with the process tracer.
pub fn run_cell(cfg: &ChaosExperiment, spec: CellSpec) -> ChaosRun {
    run_cell_traced(cfg, spec, crate::trace::tracer(), None)
}

/// Runs one cell, journalling into `tracer` and (optionally) under a
/// runtime auditor guarding the crash-restore invariant.
pub fn run_cell_traced(
    cfg: &ChaosExperiment,
    spec: CellSpec,
    tracer: SharedTracer,
    auditor: Option<SharedAuditor>,
) -> ChaosRun {
    let rate = cfg.base_rate * spec.load as f64;
    let count = cfg.base_count * spec.load;
    let mix = tenant_trace(rate, count, cfg.seed);
    let geom = *zoo::codellama_34b().llm_geometry().unwrap();
    let mut engine = GatewayEngine::new(
        geom,
        GpuSpec::a100_80g(),
        spec.policy,
        GatewayConfig {
            kv_pool_bytes: cfg.pool_bytes,
            preemption: if spec.offload {
                PreemptionPolicy::Swap
            } else {
                PreemptionPolicy::Recompute
            },
            max_outstanding_per_tenant: cfg.max_outstanding,
            overload: if spec.protected {
                cfg.protection()
            } else {
                OverloadPolicy::default()
            },
            slo: if spec.protected {
                cfg.deadlines()
            } else {
                SloPolicy::none()
            },
            ..GatewayConfig::default()
        },
    )
    .with_tenants(mix.tenant_of.clone())
    .with_tracer(
        tracer.clone(),
        format!("chaos:{}:x{}", spec.mode(), spec.load),
    );
    if spec.offload {
        let ctx = ServerCtx::two_gpu_traced(tracer);
        ctx.static_lease(GpuId(1), gib(30));
        engine = engine.with_offloader(ctx.offloader(OffloadKind::Aqua, GpuId(0)));
    }
    let mut driver = Driver::for_expected_events(mix.trace.len() + 1);
    if let Some((start_s, end_s)) = spec.crash {
        let (start, end) = (SimTime::from_secs(start_s), SimTime::from_secs(end_s));
        let plan = FaultPlan::new().gpu_crash(GpuId(0), start, end);
        engine = engine.with_fault_plan(&plan, GpuId(0));
        driver.crash_window(0, start, end);
    }
    if let Some(auditor) = auditor {
        engine = engine.with_auditor(auditor);
    }
    driver.schedule_trace(0, mix.trace);
    {
        let mut engines: Vec<&mut dyn Engine> = vec![&mut engine];
        driver.run(&mut engines, cfg.horizon(spec.load));
    }
    let streams = engine.drain_streams();
    let chat = streams
        .tenant(TENANT_CHAT)
        .goodput(&SloSpec::ttft(CHAT_SLO_TTFT_S), cfg.measure_horizon_s());
    ChaosRun {
        spec,
        shed: engine.outcomes().shed(),
        timed_out: engine.outcomes().timed_out(),
        crash_aborted: engine.outcomes().crash_aborted(),
        retries: engine.outcomes().total_retries(),
        streams,
        chat,
        sim_events: driver.processed_events(),
    }
}

/// Every cell of the study, in suite order: goodput cells (load × mode)
/// followed by the two crash-restore cells. This is the shard order of
/// [`run_sharded`] and the point order of [`repro_points`].
pub fn suite_cells() -> Vec<CellSpec> {
    let mut cells = Vec::new();
    for &load in &LOAD_MULTIPLIERS {
        cells.push(CellSpec::protected(load));
        cells.push(CellSpec::unprotected(load));
    }
    cells.push(CellSpec::crashed(true));
    cells.push(CellSpec::crashed(false));
    cells
}

/// Renders one cell exactly the way its `aqua-repro` suite point does, so
/// the sharded path and the sweep path emit byte-identical output.
pub fn render_cell(run: &ChaosRun) -> String {
    let spec = run.spec;
    if spec.crash.is_some() {
        format!(
            "{}\n",
            recovery_table(
                std::slice::from_ref(run),
                &format!("Serve-chaos crash recovery via `{}`", spec.restore()),
            )
        )
    } else {
        format!(
            "{}\n",
            goodput_table(
                std::slice::from_ref(run),
                &format!("Serve-chaos `{}` at {}x load", spec.mode(), spec.load),
            )
        )
    }
}

/// Runs every suite cell with each cell as its own PDES shard.
///
/// Cells never share simulator state, so they execute as decoupled shards —
/// cell `i` on lane `i % lanes`, journalling into its own digest-only
/// tracer — and their rendered tables are concatenated in [`suite_cells`]
/// order. Output and the folded digest are identical at every lane count.
/// With `audited`, the crash cells run under a collecting [`Auditor`] and
/// panic the shard on any invariant violation.
///
/// [`Auditor`]: aqua_sim::audit::Auditor
pub fn run_sharded(
    count: usize,
    seed: u64,
    lanes: usize,
    audited: bool,
) -> (String, crate::lanes::LaneOutcome<String>) {
    use crate::lanes::{run_decoupled, ShardFinish};
    use aqua_sim::audit::Auditor;
    let tasks: Vec<Box<dyn FnOnce() -> ShardFinish<String> + Send>> = suite_cells()
        .into_iter()
        .map(|spec| {
            let task: Box<dyn FnOnce() -> ShardFinish<String> + Send> = Box::new(move || {
                let cfg = ChaosExperiment::standard(count, seed);
                let auditor = (audited && spec.crash.is_some()).then(Auditor::collecting);
                let run = run_cell_traced(&cfg, spec, crate::trace::tracer(), auditor.clone());
                if let Some(a) = auditor {
                    assert!(
                        a.is_clean(),
                        "audited chaos shard `{}` tripped: {:?}",
                        spec.mode(),
                        a.violations()
                    );
                }
                ShardFinish {
                    sim_events: run.sim_events,
                    output: render_cell(&run),
                }
            });
            task
        })
        .collect();
    let outcome = run_decoupled(tasks, lanes);
    let output: String = outcome.shards.iter().map(|s| s.output.as_str()).collect();
    (output, outcome)
}

/// Renders goodput cells as the overload table.
pub fn goodput_table(runs: &[ChaosRun], title: &str) -> Table {
    let mut t = Table::new(
        title,
        &[
            "mode",
            "load",
            "streams",
            "shed",
            "timeout",
            "chat_n",
            "chat_met",
            "chat_goodput_tps",
            "chat_attain",
        ],
    );
    for run in runs {
        t.row(&[
            run.spec.mode().to_owned(),
            format!("{}x", run.spec.load),
            run.streams.len().to_string(),
            run.shed.to_string(),
            run.timed_out.to_string(),
            run.chat.streams.to_string(),
            run.chat.slo_met_streams.to_string(),
            format!("{:.1}", run.chat.goodput_tps()),
            format!("{:.3}", run.chat.slo_attainment()),
        ]);
    }
    t
}

/// Renders crash cells as the recovery table.
pub fn recovery_table(runs: &[ChaosRun], title: &str) -> Table {
    let mut t = Table::new(
        title,
        &[
            "restore",
            "load",
            "streams",
            "retries",
            "aborted",
            "recovery_s",
        ],
    );
    for run in runs {
        t.row(&[
            run.spec.restore().to_owned(),
            format!("{}x", run.spec.load),
            run.streams.len().to_string(),
            run.retries.to_string(),
            run.crash_aborted.to_string(),
            run.recovery_secs()
                .map_or("-".to_owned(), |s| format!("{s:.1}")),
        ]);
    }
    t
}

/// The `aqua-repro` decomposition: one point per goodput cell (mode × load)
/// plus one per crash-restore cell, rendered through the same
/// [`render_cell`] the sharded path uses.
pub fn repro_points(a: &crate::runner::ReproArgs) -> Vec<crate::runner::ReproPoint> {
    use crate::runner::ReproPoint;
    // The suite default of 200 chat requests would make the 4× cell the
    // tail of every run; the overload shapes show just as well at 48.
    let (count, seed) = (a.count.min(48), a.seed);
    suite_cells()
        .into_iter()
        .map(|spec| {
            let label = if spec.crash.is_some() {
                format!("crash,restore={}", spec.restore())
            } else {
                format!("mode={},load={}", spec.mode(), spec.load)
            };
            ReproPoint::new("serve_chaos", label, move || {
                let cfg = ChaosExperiment::standard(count, seed);
                render_cell(&run_cell(&cfg, spec))
            })
            .with_cost_hint(spec.load as u64)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_sim::audit::Auditor;

    fn cfg() -> ChaosExperiment {
        ChaosExperiment::standard(48, 7)
    }

    #[test]
    fn goodput_plateaus_with_protection_and_collapses_without() {
        // Acceptance: at 4x overload the protected mode keeps >= 70% of its
        // 1x chat goodput; the unprotected FCFS queue drops below 30%.
        let cfg = cfg();
        let prot_1 = run_cell(&cfg, CellSpec::protected(1));
        let prot_4 = run_cell(&cfg, CellSpec::protected(4));
        let fcfs_1 = run_cell(&cfg, CellSpec::unprotected(1));
        let fcfs_4 = run_cell(&cfg, CellSpec::unprotected(4));

        assert!(
            prot_1.chat.goodput_tokens > 0,
            "protected 1x must serve chat within SLO"
        );
        assert!(
            fcfs_1.chat.goodput_tokens > 0,
            "unprotected 1x must serve chat within SLO"
        );
        let prot_ratio = prot_4.chat.goodput_tps() / prot_1.chat.goodput_tps();
        let fcfs_ratio = fcfs_4.chat.goodput_tps() / fcfs_1.chat.goodput_tps();
        assert!(
            prot_ratio >= 0.7,
            "protected goodput must plateau: 4x/1x ratio {prot_ratio:.2}"
        );
        assert!(
            fcfs_ratio < 0.3,
            "unprotected goodput must collapse: 4x/1x ratio {fcfs_ratio:.2}"
        );
        // Protection engages under overload and stays inert at 1x-ish load.
        assert!(
            prot_4.shed + prot_4.timed_out > 0,
            "4x overload must trip protection"
        );
        assert_eq!(fcfs_4.shed, 0, "unprotected mode never sheds");
    }

    #[test]
    fn swap_restore_recovers_faster_than_recompute() {
        // Acceptance: after the same mid-run GpuCrash, live-restoring
        // swapped KV beats re-prefilling from scratch on recovery time.
        let cfg = cfg();
        let auditor = Auditor::collecting();
        let swap = run_cell_traced(
            &cfg,
            CellSpec::crashed(true),
            aqua_telemetry::null_tracer(),
            Some(auditor.clone()),
        );
        let recompute = run_cell(&cfg, CellSpec::crashed(false));
        let s = swap.recovery_secs().expect("swap cell saw the crash");
        let r = recompute
            .recovery_secs()
            .expect("recompute cell saw the crash");
        assert!(
            s < r,
            "swap restore ({s:.1}s) must beat recompute ({r:.1}s)"
        );
        assert!(
            swap.retries + recompute.retries > 0,
            "the crash must have retried in-flight work"
        );
        assert!(
            auditor.is_clean(),
            "restore invariant violated: {:?}",
            auditor.violations()
        );
    }

    #[test]
    fn cells_are_seed_deterministic() {
        let cfg = cfg();
        let a = run_cell(&cfg, CellSpec::protected(2));
        let b = run_cell(&cfg, CellSpec::protected(2));
        assert_eq!(a.streams.ttfts(), b.streams.ttfts());
        assert_eq!(a.shed, b.shed);
        assert_eq!(a.timed_out, b.timed_out);
        assert_eq!(a.chat, b.chat);
    }

    #[test]
    fn tables_render_every_cell() {
        let cfg = ChaosExperiment::standard(16, 3);
        let runs = [
            run_cell(&cfg, CellSpec::protected(1)),
            run_cell(&cfg, CellSpec::unprotected(1)),
        ];
        let t = goodput_table(&runs, "test");
        assert!(!t.is_empty());
        let crash = [run_cell(&cfg, CellSpec::crashed(true))];
        assert!(!recovery_table(&crash, "test").is_empty());
    }
}
