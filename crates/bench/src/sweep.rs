//! # aqua-sweep — deterministic parallel experiment fan-out
//!
//! The paper's evaluation is ~17 independent experiments, each itself a
//! sweep over independent points (request rates, tensor sizes, batch
//! splits, seeds). Points never share simulator state — every one builds
//! its own topology, engines and event queue — so they are embarrassingly
//! parallel. [`Sweep`] fans them out across `--jobs N` worker threads with
//! a work-stealing index counter (`std::thread::scope` + one `AtomicUsize`;
//! no rayon) and collects results **in input order**, so the output of a
//! parallel run is byte-identical to a sequential one.
//!
//! Determinism is not assumed, it is *measured*: each point runs under its
//! own digest-only [`JournalTracer`] (installed thread-locally via
//! [`trace::with_tracer`](crate::trace::with_tracer)), and the per-point
//! FNV-1a digests are folded **in point order** into a combined digest.
//! Worker scheduling can change which thread runs a point and in what wall
//! order, but never the combined digest — if it does, the simulation leaked
//! nondeterminism (wall-clock, global state, unseeded RNG) and
//! [`SweepResult::combined_digest`] catches it as a single `u64` mismatch.
//!
//! # Example
//!
//! ```
//! use aqua_bench::sweep::Sweep;
//!
//! let points = vec![1u64, 2, 3, 4];
//! let seq = Sweep::new().run(&points, |p| p * 10);
//! let par = Sweep::new().jobs(4).run(&points, |p| p * 10);
//! assert_eq!(seq.combined_digest(), par.combined_digest());
//! assert_eq!(seq.results(), vec![10, 20, 30, 40]);
//! ```

use crate::trace;
use aqua_telemetry::tracer::FNV_OFFSET;
use aqua_telemetry::{fnv1a, JournalTracer};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One completed sweep point: the experiment's return value plus the
/// telemetry evidence that it ran deterministically.
#[derive(Debug, Clone)]
pub struct SweepPoint<R> {
    /// Whatever the point's closure returned (typically a rendered table).
    pub result: R,
    /// FNV-1a determinism digest of every trace event the point emitted.
    pub digest: u64,
    /// Number of trace events folded into [`SweepPoint::digest`].
    pub events: usize,
    /// Wall time this point took on its worker thread.
    pub wall: Duration,
}

/// All points of a sweep, in input order, plus run-level accounting.
#[derive(Debug, Clone)]
pub struct SweepResult<R> {
    /// Completed points, index-aligned with the input slice.
    pub points: Vec<SweepPoint<R>>,
    /// Wall time of the whole fan-out (slowest worker, not sum of points).
    pub wall: Duration,
    /// Worker threads actually used.
    pub jobs: usize,
}

impl<R> SweepResult<R> {
    /// Folds the per-point digests, **in input order**, into one digest.
    ///
    /// Because the fold order is the input order — not the order workers
    /// happened to finish in — the combined digest is schedule-independent:
    /// `--jobs 1` and `--jobs 8` must produce the same value, and a mismatch
    /// means a point's behaviour depended on something outside its inputs.
    pub fn combined_digest(&self) -> u64 {
        self.points
            .iter()
            .fold(FNV_OFFSET, |h, p| fnv1a(h, &p.digest.to_le_bytes()))
    }

    /// Total trace events across all points.
    pub fn total_events(&self) -> usize {
        self.points.iter().map(|p| p.events).sum()
    }

    /// Consumes the sweep, returning just the per-point results in input
    /// order.
    pub fn results(self) -> Vec<R> {
        self.points.into_iter().map(|p| p.result).collect()
    }
}

/// A deterministic parallel runner for independent experiment points.
///
/// Construction is a builder: [`Sweep::new`] is sequential, [`Sweep::jobs`]
/// sets the worker count, and [`Sweep::passthrough`] disables the per-point
/// journals so events flow to the ambient (`AQUA_TRACE`) tracer instead —
/// passthrough forces sequential execution, because a single shared journal
/// would interleave events in worker-scheduling order.
#[derive(Debug, Clone)]
pub struct Sweep {
    jobs: usize,
    passthrough: bool,
}

impl Default for Sweep {
    fn default() -> Self {
        Self::new()
    }
}

impl Sweep {
    /// A sequential sweep (one worker, per-point digests still collected).
    pub fn new() -> Self {
        Sweep {
            jobs: 1,
            passthrough: false,
        }
    }

    /// Sets the number of worker threads. `0` is treated as `1`; the
    /// effective count never exceeds the number of points.
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Routes events to the ambient tracer instead of per-point journals,
    /// and forces sequential execution so the shared journal stays in
    /// deterministic event order. Used when `AQUA_TRACE` asks for one
    /// process-wide Chrome trace; per-point digests read as 0 events.
    pub fn passthrough(mut self) -> Self {
        self.passthrough = true;
        self.jobs = 1;
        self
    }

    /// Like [`Sweep::run`], but workers claim points in descending `weight`
    /// order (longest-processing-time-first). Results — and the combined
    /// digest fold — stay in **input order**, so output and digests are
    /// identical to a plain [`Sweep::run`]; only the packing changes. Use
    /// when one point dwarfs the rest (the 128-GPU placer solve): starting
    /// it first stops it from becoming the tail of the schedule.
    ///
    /// Weights are relative cost hints; ties execute in input order, so the
    /// claim order is deterministic. Passthrough mode ignores the hint — a
    /// shared ambient journal wants the natural input order.
    pub fn run_weighted<P, R, F, W>(&self, points: &[P], weight: W, f: F) -> SweepResult<R>
    where
        P: Sync,
        R: Send,
        F: Fn(&P) -> R + Sync,
        W: Fn(&P) -> u64,
    {
        let mut order: Vec<usize> = (0..points.len()).collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(weight(&points[i])), i));
        if self.passthrough || order.iter().enumerate().all(|(k, &i)| k == i) {
            return self.run(points, f);
        }
        let exec: Vec<&P> = order.iter().map(|&i| &points[i]).collect();
        let mut result = self.run(&exec, |p| f(*p));
        let mut slots: Vec<Option<SweepPoint<R>>> =
            std::iter::repeat_with(|| None).take(points.len()).collect();
        for (k, done) in result.points.drain(..).enumerate() {
            slots[order[k]] = Some(done);
        }
        result.points = slots
            .into_iter()
            .map(|s| s.expect("permutation is a bijection"))
            .collect();
        result
    }

    /// Runs `f` once per point, fanning across the configured workers, and
    /// returns the points **in input order** regardless of which worker
    /// finished first.
    ///
    /// `f` must derive everything from its point argument (and process-wide
    /// constants): any dependence on wall-clock, worker identity or shared
    /// mutable state shows up as a [`SweepResult::combined_digest`] mismatch
    /// between job counts.
    pub fn run<P, R, F>(&self, points: &[P], f: F) -> SweepResult<R>
    where
        P: Sync,
        R: Send,
        F: Fn(&P) -> R + Sync,
    {
        let t0 = Instant::now();
        let jobs = if self.passthrough {
            1
        } else {
            self.jobs.min(points.len()).max(1)
        };
        if jobs <= 1 {
            let points = points
                .iter()
                .map(|p| run_point(&f, p, self.passthrough))
                .collect();
            return SweepResult {
                points,
                wall: t0.elapsed(),
                jobs: 1,
            };
        }

        // Work stealing: one shared cursor; each worker claims the next
        // unclaimed index until the list is drained. Results land in
        // index-addressed slots, so completion order never matters.
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<SweepPoint<R>>>> =
            (0..points.len()).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(point) = points.get(i) else { break };
                    let done = run_point(&f, point, false);
                    *slots[i].lock().expect("slot lock") = Some(done);
                });
            }
        });
        let points = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("slot lock")
                    .expect("every claimed point completes before scope exit")
            })
            .collect();
        SweepResult {
            points,
            wall: t0.elapsed(),
            jobs,
        }
    }
}

/// Runs one point under its own digest-only journal (or the ambient tracer
/// in passthrough mode) and times it.
fn run_point<P, R>(f: &impl Fn(&P) -> R, point: &P, passthrough: bool) -> SweepPoint<R> {
    let t0 = Instant::now();
    if passthrough {
        let result = f(point);
        return SweepPoint {
            result,
            digest: FNV_OFFSET,
            events: 0,
            wall: t0.elapsed(),
        };
    }
    let journal = Arc::new(JournalTracer::digest_only());
    let result = trace::with_tracer(journal.clone(), || f(point));
    SweepPoint {
        result,
        digest: journal.digest(),
        events: journal.len(),
        wall: t0.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_stay_in_input_order() {
        let points: Vec<u64> = (0..64).collect();
        let out = Sweep::new().jobs(8).run(&points, |p| p * 2);
        assert_eq!(out.points.len(), 64);
        let results = out.results();
        assert_eq!(results, points.iter().map(|p| p * 2).collect::<Vec<_>>());
    }

    #[test]
    fn jobs_clamp_to_point_count() {
        let points = [1u8, 2];
        let out = Sweep::new().jobs(16).run(&points, |p| *p);
        assert_eq!(out.jobs, 2);
        assert_eq!(out.results(), vec![1, 2]);
        let empty: [u8; 0] = [];
        let out = Sweep::new().jobs(4).run(&empty, |p| *p);
        assert_eq!(out.jobs, 1);
        assert!(out.points.is_empty());
    }

    #[test]
    fn combined_digest_is_schedule_independent() {
        // Each point emits through the thread's tracer; the per-point
        // digests (and thus the combined digest) must not depend on how
        // points were spread across workers.
        let points: Vec<u64> = (0..16).collect();
        let emit = |p: &u64| {
            let tracer = crate::trace::tracer();
            for k in 0..=*p {
                tracer.emit(aqua_telemetry::TraceEvent::ReclaimRequested {
                    producer: format!("s0/gpu{k}"),
                    at: aqua_telemetry::time::SimTime::from_nanos(*p),
                });
            }
            *p
        };
        let seq = Sweep::new().run(&points, emit);
        let par4 = Sweep::new().jobs(4).run(&points, emit);
        let par8 = Sweep::new().jobs(8).run(&points, emit);
        assert_eq!(seq.combined_digest(), par4.combined_digest());
        assert_eq!(seq.combined_digest(), par8.combined_digest());
        assert_eq!(seq.total_events(), par8.total_events());
        assert_eq!(seq.total_events(), (1..=16).sum::<usize>());
        // And per-point, not just in aggregate.
        for (a, b) in seq.points.iter().zip(par8.points.iter()) {
            assert_eq!(a.digest, b.digest);
            assert_eq!(a.events, b.events);
        }
    }

    #[test]
    fn different_behaviour_changes_the_combined_digest() {
        let points: Vec<u64> = (0..4).collect();
        let emit = |salt: u64| {
            move |p: &u64| {
                crate::trace::tracer().emit(aqua_telemetry::TraceEvent::ReclaimRequested {
                    producer: "s0/gpu0".into(),
                    at: aqua_telemetry::time::SimTime::from_nanos(*p + salt),
                });
            }
        };
        let a = Sweep::new().run(&points, emit(0));
        let b = Sweep::new().run(&points, emit(1));
        assert_ne!(a.combined_digest(), b.combined_digest());
    }

    #[test]
    fn weighted_run_matches_plain_run() {
        // The LPT permutation must be invisible in the result: same input
        // order, same per-point digests, same combined digest.
        let points: Vec<u64> = (0..16).collect();
        let emit = |p: &u64| {
            crate::trace::tracer().emit(aqua_telemetry::TraceEvent::ReclaimRequested {
                producer: format!("s0/gpu{p}"),
                at: aqua_telemetry::time::SimTime::from_nanos(*p),
            });
            *p * 3
        };
        let plain = Sweep::new().jobs(4).run(&points, emit);
        // Weight ascending by value → claim order is the full reverse of
        // input order, the worst case for accidental order dependence.
        let weighted = Sweep::new().jobs(4).run_weighted(&points, |p| *p, emit);
        assert_eq!(
            plain.points.iter().map(|p| p.result).collect::<Vec<_>>(),
            weighted.points.iter().map(|p| p.result).collect::<Vec<_>>()
        );
        assert_eq!(plain.combined_digest(), weighted.combined_digest());
        assert_eq!(plain.total_events(), weighted.total_events());
    }

    #[test]
    fn passthrough_forces_sequential_and_skips_point_journals() {
        let points = [1u8, 2, 3];
        let out = Sweep::new().jobs(8).passthrough().run(&points, |p| *p);
        assert_eq!(out.jobs, 1);
        assert_eq!(out.total_events(), 0);
        assert_eq!(out.results(), vec![1, 2, 3]);
    }
}
