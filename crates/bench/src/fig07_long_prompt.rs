//! Figure 7 — long-prompt inference throughput (the 6× headline).
//!
//! OPT-30B on FlexGen with an 8,000-token prompt whose context exceeds the
//! GPU budget. The baseline streams the context over PCIe; AQUA streams it
//! from a colocated producer GPU over NVLink. The metric is tokens
//! generated in a fixed window (ten minutes in the paper).

use crate::setup::{opt_flexgen, OffloadKind, ServerCtx};
use aqua_engines::driver::{Driver, Engine};
use aqua_metrics::table::Table;
use aqua_sim::gpu::GpuId;
use aqua_sim::time::SimTime;
use aqua_workloads::longprompt::long_prompt_trace;

/// GPU context budget: the free HBM left for inference context after
/// OPT-30B's 60 GB of weights, framework state and activation workspace.
/// An 8,000-token context needs ~11 GB, so it does not fit.
pub const CONTEXT_BUDGET: u64 = 8 * (1 << 30);

/// Lease offered by the colocated producer GPU (StableDiffusion and
/// AudioGen at their plateau batch have far more spare, Figure 2): covers
/// the 11 GB streamed context plus ten minutes of per-token growth.
pub const PRODUCER_LEASE: u64 = 24 * (1 << 30);

/// Result of one run: tokens generated within the window per system.
#[derive(Debug, Clone)]
pub struct Fig07Result {
    /// `(system, tokens generated)` pairs.
    pub tokens: Vec<(String, u64)>,
}

impl Fig07Result {
    /// Tokens for one system.
    pub fn tokens_of(&self, system: &str) -> u64 {
        self.tokens
            .iter()
            .find(|(s, _)| s == system)
            .map(|(_, t)| *t)
            .unwrap_or_else(|| panic!("system {system} missing"))
    }

    /// The AQUA-over-FlexGen speedup factor.
    pub fn speedup(&self) -> f64 {
        self.tokens_of("aqua") as f64 / self.tokens_of("flexgen") as f64
    }
}

/// Runs the experiment for `window` seconds of simulated time. Includes a
/// DeepSpeed-style serial-offloading system as the third comparator the
/// paper's related work cites (§9: FlexGen beats DeepSpeed; AQUA's benefit
/// "can extend to Deepspeed").
pub fn run(window_secs: u64) -> Fig07Result {
    let mut tokens = Vec::new();
    // DeepSpeed baseline: synchronous offloading over DRAM.
    {
        let ctx = ServerCtx::two_gpu();
        let geom = *aqua_models::zoo::opt_30b().llm_geometry().unwrap();
        let mut engine = aqua_engines::deepspeed::DeepSpeedEngine::new(
            geom,
            aqua_sim::gpu::GpuSpec::a100_80g(),
            aqua_engines::deepspeed::DeepSpeedConfig {
                context_budget_bytes: CONTEXT_BUDGET,
                decode_chunk: 8,
            },
            ctx.offloader(OffloadKind::DramPinned, GpuId(0)),
        );
        let mut driver = Driver::new();
        driver.schedule_trace(0, long_prompt_trace(1, 1_000_000, 0));
        let mut engines: Vec<&mut dyn Engine> = vec![&mut engine];
        driver.run(&mut engines, SimTime::from_secs(window_secs));
        tokens.push(("deepspeed".to_owned(), engine.tokens_generated()));
    }
    for (name, kind) in [
        ("flexgen", OffloadKind::DramPinned),
        ("aqua", OffloadKind::Aqua),
    ] {
        let ctx = ServerCtx::two_gpu();
        if kind == OffloadKind::Aqua {
            ctx.static_lease(GpuId(1), PRODUCER_LEASE);
        }
        let mut engine = opt_flexgen(&ctx, kind, CONTEXT_BUDGET);
        // One long prompt generating tokens for the whole window.
        let mut driver = Driver::new();
        driver.schedule_trace(0, long_prompt_trace(1, 1_000_000, 0));
        let mut engines: Vec<&mut dyn Engine> = vec![&mut engine];
        driver.run(&mut engines, SimTime::from_secs(window_secs));
        tokens.push((name.to_owned(), engine.tokens_generated()));
    }
    Fig07Result { tokens }
}

/// Renders the Figure 7 bar chart as a table.
pub fn table(result: &Fig07Result, window_secs: u64) -> Table {
    let mut t = Table::new(
        format!("Figure 7: tokens generated in {window_secs}s on one 8000-token prompt (OPT-30B)"),
        &["system", "tokens", "tokens_per_s", "speedup"],
    );
    let base = result.tokens_of("flexgen") as f64;
    for (name, tok) in &result.tokens {
        t.row(&[
            name.clone(),
            tok.to_string(),
            format!("{:.2}", *tok as f64 / window_secs as f64),
            format!("{:.2}x", *tok as f64 / base),
        ]);
    }
    t
}

/// Sanity helper: the OPT context truly exceeds the budget.
pub fn context_exceeds_budget() -> bool {
    let geom = *aqua_models::zoo::opt_30b().llm_geometry().unwrap();
    geom.kv_bytes(aqua_workloads::longprompt::LONG_PROMPT_TOKENS) > CONTEXT_BUDGET
}

/// The `aqua-repro` decomposition: one long-prompt window point.
pub fn repro_points(a: &crate::runner::ReproArgs) -> Vec<crate::runner::ReproPoint> {
    let window = a.window;
    vec![crate::runner::ReproPoint::new(
        "fig07",
        format!("window={window}"),
        move || {
            let r = run(window);
            format!("{}\n", table(&r, window))
        },
    )]
}

#[cfg(test)]
mod tests {
    use super::*;

    use aqua_sim::link::bytes::gib;

    #[test]
    fn premise_holds() {
        assert!(context_exceeds_budget());
        assert!(
            PRODUCER_LEASE > gib(11),
            "lease covers the streamed context"
        );
    }

    #[test]
    fn aqua_wins_by_roughly_6x() {
        // 60-second window keeps the test fast; the rate ratio is
        // window-independent once decode dominates.
        let r = run(60);
        let speedup = r.speedup();
        assert!(
            (4.0..9.0).contains(&speedup),
            "expected ~6x, got {speedup:.2}x ({:?})",
            r.tokens
        );
        // Related-work ordering (§9): DeepSpeed < FlexGen < AQUA.
        assert!(r.tokens_of("deepspeed") < r.tokens_of("flexgen"));
        let t = table(&r, 60);
        assert_eq!(t.len(), 3);
    }
}
