//! Shared experiment scaffolding: servers, coordinators, offloaders and
//! engine builders matching the paper's testbeds.

use aqua_core::coordinator::{Coordinator, GpuRef};
use aqua_core::informer::{BatchInformer, LlmInformer, LlmInformerConfig};
use aqua_core::offloader::AquaOffloader;
use aqua_engines::cfs::{CfsConfig, CfsEngine};
use aqua_engines::flexgen::{FlexGenConfig, FlexGenEngine};
use aqua_engines::offload::{DramOffloader, Offloader};
use aqua_engines::producer::{ProducerEngine, ProducerModel};
use aqua_engines::vllm::{VllmConfig, VllmEngine};
use aqua_models::lora::LoraAdapter;
use aqua_models::zoo::{self, ModelProfile};
use aqua_sim::audit::SharedAuditor;
use aqua_sim::fault::FaultPlan;
use aqua_sim::gpu::{GpuId, GpuSpec};
use aqua_sim::link::bytes::gib;
use aqua_sim::topology::ServerTopology;
use aqua_sim::transfer::TransferEngine;
use aqua_telemetry::SharedTracer;
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

/// Which offload backend an experiment wires into a consumer engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OffloadKind {
    /// Host DRAM over pinned PCIe with one coalesced copy (FlexGen's
    /// pipelined context streaming).
    DramPinned,
    /// Host DRAM over pinned PCIe with per-tensor copies (vLLM's KV swap
    /// path — no gather/scatter kernels).
    DramScattered,
    /// Host DRAM with framework-level pageable copies (default LoRA path).
    DramPageable,
    /// AQUA: peer-GPU HBM over the fabric with DRAM fallback.
    Aqua,
}

impl std::fmt::Display for OffloadKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            OffloadKind::DramPinned => "dram-pinned",
            OffloadKind::DramScattered => "dram-pinned-scattered",
            OffloadKind::DramPageable => "dram-pageable",
            OffloadKind::Aqua => "aqua",
        };
        f.write_str(s)
    }
}

/// One simulated multi-GPU server with its shared transfer engine and an
/// AQUA coordinator.
pub struct ServerCtx {
    /// The server topology (2-GPU NVLink or 8-GPU NVSwitch).
    pub server: Rc<ServerTopology>,
    /// The server-wide transfer engine (shared port contention).
    pub transfers: Rc<RefCell<TransferEngine>>,
    /// The AQUA coordinator.
    pub coordinator: Arc<Coordinator>,
    /// The tracer every component built through this context reports to
    /// (the process `AQUA_TRACE` tracer unless injected explicitly).
    pub tracer: SharedTracer,
    /// The injected fault schedule, when this is a chaos run.
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// The invariant auditor, when this is an audited run.
    pub auditor: Option<SharedAuditor>,
}

impl ServerCtx {
    /// The paper's first testbed: 2× A100-80G joined by direct NVLinks.
    pub fn two_gpu() -> Self {
        Self::two_gpu_traced(crate::trace::tracer())
    }

    /// The paper's second testbed: 8× A100-80G behind an NVSwitch.
    pub fn eight_gpu() -> Self {
        Self::eight_gpu_traced(crate::trace::tracer())
    }

    /// [`ServerCtx::two_gpu`] with an explicit tracer (determinism tests
    /// journal the same scenario into two independent journals).
    pub fn two_gpu_traced(tracer: SharedTracer) -> Self {
        Self::build(ServerTopology::nvlink_pair(GpuSpec::a100_80g()), tracer)
    }

    /// [`ServerCtx::eight_gpu`] with an explicit tracer.
    pub fn eight_gpu_traced(tracer: SharedTracer) -> Self {
        Self::build(ServerTopology::nvswitch(8, GpuSpec::a100_80g()), tracer)
    }

    fn build(server: ServerTopology, tracer: SharedTracer) -> Self {
        let mut transfers = TransferEngine::new();
        transfers.set_tracer(tracer.clone(), 0);
        let coordinator = Arc::new(Coordinator::new());
        coordinator.set_tracer(tracer.clone());
        ServerCtx {
            server: Rc::new(server),
            transfers: Rc::new(RefCell::new(transfers)),
            coordinator,
            tracer,
            fault_plan: None,
            auditor: None,
        }
    }

    /// Injects a fault schedule: the transfer engine aborts/degrades
    /// transfers accordingly, the coordinator replays its crash/partition
    /// windows (epoch bumps, reachability), and offloaders built from this
    /// context model coordinator stalls from the same plan.
    pub fn with_fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.transfers
            .borrow_mut()
            .set_fault_plan(Arc::clone(&plan));
        self.coordinator.set_fault_plan(Arc::clone(&plan));
        self.fault_plan = Some(plan);
        self
    }

    /// Attaches an invariant auditor (aqua-audit): the transfer engine, the
    /// coordinator and every [`AquaOffloader`] built from this context
    /// report suspicious state transitions into it. Clean audited runs
    /// journal the exact same event stream as unaudited ones.
    pub fn with_auditor(mut self, auditor: SharedAuditor) -> Self {
        self.transfers.borrow_mut().set_auditor(auditor.clone());
        self.coordinator.set_auditor(auditor.clone());
        self.auditor = Some(auditor);
        self
    }

    /// Builds an offload backend of `kind` for the consumer at `gpu`.
    pub fn offloader(&self, kind: OffloadKind, gpu: GpuId) -> Box<dyn Offloader> {
        match kind {
            OffloadKind::DramPinned => Box::new(DramOffloader::pinned(
                &self.server,
                gpu,
                self.transfers.clone(),
            )),
            OffloadKind::DramScattered => Box::new(DramOffloader::pinned_scattered(
                &self.server,
                gpu,
                self.transfers.clone(),
            )),
            OffloadKind::DramPageable => Box::new(DramOffloader::pageable_scattered(
                &self.server,
                gpu,
                self.transfers.clone(),
            )),
            OffloadKind::Aqua => Box::new(self.aqua_offloader(gpu)),
        }
    }

    /// Builds a concrete [`AquaOffloader`] (when the caller needs to
    /// prestage content before boxing).
    pub fn aqua_offloader(&self, gpu: GpuId) -> AquaOffloader {
        let off = AquaOffloader::new(
            GpuRef::single(gpu),
            Arc::clone(&self.coordinator),
            self.server.clone(),
            self.transfers.clone(),
        )
        .with_tracer(self.tracer.clone());
        let off = match &self.fault_plan {
            Some(plan) => off.with_fault_plan(Arc::clone(plan)),
            None => off,
        };
        match &self.auditor {
            Some(aud) => off.with_auditor(aud.clone()),
            None => off,
        }
    }

    /// Registers a static lease of `bytes` from the producer at `gpu`
    /// (experiments that do not exercise the informer path).
    pub fn static_lease(&self, gpu: GpuId, bytes: u64) {
        self.coordinator.lease(GpuRef::single(gpu), bytes);
    }

    /// Records an AQUA-PLACER pairing between a consumer and producer GPU.
    pub fn pair(&self, consumer: GpuId, producer: GpuId) {
        self.coordinator
            .pair(GpuRef::single(consumer), GpuRef::single(producer));
    }

    /// A diffusion/audio producer engine at its Figure 2 plateau batch,
    /// with a batch informer donating its free memory.
    pub fn producer_with_informer(&self, model: &ModelProfile, gpu: GpuId) -> ProducerEngine {
        let engine = producer_engine(model);
        engine.with_informer(Box::new(
            BatchInformer::new(GpuRef::single(gpu), Arc::clone(&self.coordinator))
                .with_tracer(self.tracer.clone()),
        ))
    }

    /// An LLM producer (vLLM serving ShareGPT) with an llm-informer.
    pub fn llm_producer_with_informer(
        &self,
        model: &ModelProfile,
        gpu: GpuId,
        config: LlmInformerConfig,
    ) -> VllmEngine {
        let geom = *model
            .llm_geometry()
            .unwrap_or_else(|| panic!("{} is not an LLM", model.name));
        let spec = GpuSpec::a100_80g();
        let pool = spec.hbm_bytes - aqua_models::cost::llm_static_bytes(&geom, 4096);
        VllmEngine::new(
            geom,
            spec,
            VllmConfig {
                kv_pool_bytes: pool,
                ..VllmConfig::default()
            },
        )
        .with_tracer(self.tracer.clone(), format!("vllm-producer:{gpu}"))
        .with_informer(Box::new(
            LlmInformer::new(GpuRef::single(gpu), Arc::clone(&self.coordinator), config)
                .with_tracer(self.tracer.clone()),
        ))
    }
}

/// A producer engine for an image/audio model at its plateau batch size.
pub fn producer_engine(model: &ModelProfile) -> ProducerEngine {
    let spec = GpuSpec::a100_80g();
    if let Some(g) = model.diffusion_geometry() {
        let (batch, _, _) = aqua_models::cost::peak_batch_under_memory(
            spec.hbm_bytes,
            64,
            |b| aqua_models::cost::diffusion_throughput(g, &spec, b),
            |b| aqua_models::cost::diffusion_used_bytes(g, b),
        );
        ProducerEngine::new(ProducerModel::Diffusion(*g), spec, batch.max(1))
    } else if let Some(g) = model.audio_geometry() {
        let (batch, _, _) = aqua_models::cost::peak_batch_under_memory(
            spec.hbm_bytes,
            64,
            |b| aqua_models::cost::audio_throughput(g, &spec, b),
            |b| aqua_models::cost::audio_used_bytes(g, b),
        );
        ProducerEngine::new(ProducerModel::Audio(*g), spec, batch.max(1))
    } else {
        panic!("{} is not a producer-modality model", model.name);
    }
}

/// The KV pool left on an A100 after loading a model (the consumer-side
/// default unless an experiment constrains it further).
pub fn default_pool_bytes(model: &ModelProfile) -> u64 {
    let geom = model.llm_geometry().expect("LLM");
    GpuSpec::a100_80g()
        .hbm_bytes
        .saturating_sub(aqua_models::cost::llm_static_bytes(geom, 4096))
}

/// Builds the Figure 9/13 consumer: Codellama-34B under CFS.
pub fn codellama_cfs(ctx: &ServerCtx, kind: OffloadKind, pool_bytes: u64, slice: u64) -> CfsEngine {
    let model = zoo::codellama_34b();
    let geom = *model.llm_geometry().unwrap();
    CfsEngine::new(
        geom,
        GpuSpec::a100_80g(),
        CfsConfig {
            slice_tokens: slice,
            max_active: 48,
            kv_pool_bytes: pool_bytes,
            ..CfsConfig::default()
        },
        ctx.offloader(kind, GpuId(0)),
    )
    .with_tracer(ctx.tracer.clone(), format!("cfs:{kind}"))
}

/// Builds the Figure 9 vLLM baseline for Codellama-34B.
pub fn codellama_vllm(pool_bytes: u64) -> VllmEngine {
    let model = zoo::codellama_34b();
    let geom = *model.llm_geometry().unwrap();
    VllmEngine::new(
        geom,
        GpuSpec::a100_80g(),
        VllmConfig {
            kv_pool_bytes: pool_bytes,
            max_batch: 48,
            ..VllmConfig::default()
        },
    )
}

/// Builds the Figure 7/10 consumer: OPT-30B long prompts on FlexGen.
pub fn opt_flexgen(ctx: &ServerCtx, kind: OffloadKind, budget: u64) -> FlexGenEngine {
    let model = zoo::opt_30b();
    let geom = *model.llm_geometry().unwrap();
    FlexGenEngine::new(
        geom,
        GpuSpec::a100_80g(),
        FlexGenConfig {
            context_budget_bytes: budget,
            decode_chunk: 8,
        },
        ctx.offloader(kind, GpuId(0)),
    )
    .with_tracer(ctx.tracer.clone(), format!("flexgen:{kind}"))
}

/// Builds the Figure 8/12 consumer: Mistral-7B with a LoRA adapter pool.
/// For AQUA the adapters are prestaged into the offload store (peer GPU);
/// for the baselines they live in host DRAM.
pub fn mistral_lora_vllm(
    ctx: &ServerCtx,
    kind: OffloadKind,
    adapters: Vec<LoraAdapter>,
    cache_slots: usize,
) -> VllmEngine {
    let model = zoo::mistral_7b();
    let geom = *model.llm_geometry().unwrap();
    let offloader: Box<dyn Offloader> = match kind {
        OffloadKind::Aqua => {
            let mut aqua = ctx.aqua_offloader(GpuId(0));
            for a in &adapters {
                aqua.prestage(a.bytes);
            }
            Box::new(aqua)
        }
        other => ctx.offloader(other, GpuId(0)),
    };
    VllmEngine::new(
        geom,
        GpuSpec::a100_80g(),
        VllmConfig {
            kv_pool_bytes: gib(20),
            lora_cache_slots: cache_slots,
            ..VllmConfig::default()
        },
    )
    .with_tracer(ctx.tracer.clone(), format!("vllm-lora:{kind}"))
    .with_adapters(adapters)
    .with_offloader(offloader)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contexts_build() {
        let two = ServerCtx::two_gpu();
        assert_eq!(two.server.gpu_count(), 2);
        let eight = ServerCtx::eight_gpu();
        assert_eq!(eight.server.gpu_count(), 8);
    }

    #[test]
    fn offloader_kinds_dispatch() {
        let ctx = ServerCtx::two_gpu();
        for kind in [
            OffloadKind::DramPinned,
            OffloadKind::DramScattered,
            OffloadKind::DramPageable,
            OffloadKind::Aqua,
        ] {
            let off = ctx.offloader(kind, GpuId(0));
            assert!(!off.label().is_empty());
            assert!(!kind.to_string().is_empty());
        }
    }

    #[test]
    fn producer_engines_pick_plateau_batches() {
        for m in [zoo::stable_diffusion(), zoo::kandinsky(), zoo::audiogen()] {
            let e = producer_engine(&m);
            assert!(e.free_bytes() > gib(20), "{} should have spare HBM", m.name);
        }
    }

    #[test]
    fn default_pools_are_positive() {
        for m in [zoo::mistral_7b(), zoo::llama2_13b(), zoo::codellama_34b()] {
            assert!(default_pool_bytes(&m) > gib(4), "{}", m.name);
        }
    }

    #[test]
    #[should_panic(expected = "not a producer-modality")]
    fn llm_is_not_a_producer_engine() {
        producer_engine(&zoo::mistral_7b());
    }
}
