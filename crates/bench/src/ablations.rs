//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! 1. **Coalescing** — AQUA's gather/scatter kernels vs naive per-tensor
//!    copies over NVLink (§5's "small transfers are slow over NVlinks").
//! 2. **CFS slice length** — responsiveness vs context-switch overhead.
//! 3. **Producer sharing** — one producer backing two consumers halves the
//!    producer's port bandwidth (why AQUA-PLACER enforces 1:1, §4).
//! 4. **Reclaim threshold** — the llm-informer's high-water mark trades
//!    producer latency against consumer throughput.

use crate::fig09_cfs::{run as run_cfs, CfsExperiment};
use crate::fig10_elasticity::{run_with_informer, Timeline};
use crate::setup::ServerCtx;
use aqua_core::informer::LlmInformerConfig;
use aqua_engines::driver::{Driver, Engine};
use aqua_metrics::table::Table;
use aqua_sim::gpu::GpuId;
use aqua_sim::link::bytes::{gib, mib};
use aqua_sim::link::BandwidthModel;
use aqua_sim::time::SimTime;
use aqua_sim::transfer::TransferPlan;
use aqua_workloads::longprompt::long_prompt_trace;

/// Ablation 1: scattered vs coalesced transfer time over NVLink.
pub fn coalescing_table() -> Table {
    let nv = BandwidthModel::nvlink_a100();
    let mut t = Table::new(
        "Ablation: coalesced vs scattered NVLink copies (gather/scatter kernels)",
        &[
            "payload",
            "chunks",
            "scattered_ms",
            "coalesced_ms",
            "penalty",
        ],
    );
    for (label, bytes, chunks) in [
        ("LoRA 320MB", mib(320), 256u64),
        ("LoRA 160MB", mib(160), 256),
        ("KV 1 seq (400 tok)", 400 * 196_608, 96),
        ("KV pool 2GiB", gib(2), 4096),
    ] {
        let scattered = nv
            .transfer_time(TransferPlan::scattered(chunks, bytes / chunks))
            .as_secs_f64()
            * 1e3;
        let coalesced = nv
            .transfer_time(TransferPlan::coalesced(bytes))
            .as_secs_f64()
            * 1e3;
        t.row(&[
            label.to_owned(),
            chunks.to_string(),
            format!("{scattered:.2}"),
            format!("{coalesced:.2}"),
            format!("{:.1}x", scattered / coalesced),
        ]);
    }
    t
}

/// Ablation 2: CFS slice length sweep (AQUA backend).
pub fn cfs_slice_table(slices: &[u64], count: usize, seed: u64) -> Table {
    let mut t = Table::new(
        "Ablation: CFS slice length (tokens per slice, AQUA backend)",
        &["slice_tokens", "ttft_p90_s", "rct_p50_s"],
    );
    for &slice in slices {
        let cfg = CfsExperiment {
            slice_tokens: slice,
            ..CfsExperiment::figure9(5.0, count, seed)
        };
        let r = run_cfs(&cfg);
        let aqua = r.log_of("aqua");
        let mut ttfts = aqua.ttfts();
        ttfts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p90 = ttfts[(ttfts.len() - 1) * 9 / 10];
        t.row(&[
            slice.to_string(),
            format!("{p90:.3}"),
            format!("{:.3}", aqua.rct_summary().p50),
        ]);
    }
    t
}

/// Ablation 3: two consumers sharing one producer vs dedicated producers.
/// Returns `(shared per-consumer tokens, dedicated per-consumer tokens)`.
pub fn producer_sharing(window_secs: u64) -> (Vec<u64>, Vec<u64>) {
    let run_pair = |dedicated: bool| -> Vec<u64> {
        let ctx = ServerCtx::eight_gpu();
        if dedicated {
            ctx.static_lease(GpuId(4), gib(16));
            ctx.static_lease(GpuId(5), gib(16));
            ctx.pair(GpuId(0), GpuId(4));
            ctx.pair(GpuId(1), GpuId(5));
        } else {
            // One big lease on one producer: both consumers land on it and
            // share its NVLink ports.
            ctx.static_lease(GpuId(4), gib(32));
            ctx.pair(GpuId(0), GpuId(4));
            ctx.pair(GpuId(1), GpuId(4));
        }
        let mut consumers: Vec<_> = (0..2)
            .map(|i| {
                aqua_engines::flexgen::FlexGenEngine::new(
                    *aqua_models::zoo::opt_30b().llm_geometry().unwrap(),
                    aqua_sim::gpu::GpuSpec::a100_80g(),
                    aqua_engines::flexgen::FlexGenConfig {
                        context_budget_bytes: crate::fig07_long_prompt::CONTEXT_BUDGET,
                        decode_chunk: 8,
                    },
                    Box::new(ctx.aqua_offloader(GpuId(i))),
                )
            })
            .collect();
        let mut driver = Driver::new();
        for i in 0..2 {
            driver.schedule_trace(i, long_prompt_trace(1, 1_000_000, i as u64));
        }
        let mut engines: Vec<&mut dyn Engine> =
            consumers.iter_mut().map(|e| e as &mut dyn Engine).collect();
        driver.run(&mut engines, SimTime::from_secs(window_secs));
        drop(engines);
        consumers.iter().map(|c| c.tokens_generated()).collect()
    };
    (run_pair(false), run_pair(true))
}

/// Renders ablation 3.
pub fn producer_sharing_table(window_secs: u64) -> Table {
    let (shared, dedicated) = producer_sharing(window_secs);
    let mut t = Table::new(
        "Ablation: one producer shared by two consumers vs 1:1 pairing",
        &["config", "consumer0_tokens", "consumer1_tokens"],
    );
    t.row(&[
        "shared-producer".to_owned(),
        shared[0].to_string(),
        shared[1].to_string(),
    ]);
    t.row(&[
        "dedicated-producers".to_owned(),
        dedicated[0].to_string(),
        dedicated[1].to_string(),
    ]);
    t
}

/// Ablation 5: vLLM preemption policy (recompute vs swap) across offload
/// backends, under KV pressure.
pub fn preemption_table(count: usize, seed: u64) -> Table {
    use aqua_engines::vllm::{PreemptionPolicy, VllmConfig, VllmEngine};
    use aqua_workloads::sharegpt::{sharegpt_trace, ShareGptConfig};

    let geom = *aqua_models::zoo::mistral_7b().llm_geometry().unwrap();
    let trace = sharegpt_trace(&ShareGptConfig::new(6.0, count), seed, 0);
    let mut t = Table::new(
        "Ablation: preemption policy under KV pressure (Mistral-7B, 6 req/s)",
        &["policy", "backend", "preemptions", "rct_p50_s", "rct_p95_s"],
    );
    for (policy, pname) in [
        (PreemptionPolicy::Recompute, "recompute"),
        (PreemptionPolicy::Swap, "swap"),
    ] {
        for backend in [
            crate::setup::OffloadKind::DramScattered,
            crate::setup::OffloadKind::Aqua,
        ] {
            let ctx = ServerCtx::eight_gpu();
            ctx.static_lease(GpuId(1), gib(20));
            let mut engine = VllmEngine::new(
                geom,
                aqua_sim::gpu::GpuSpec::a100_80g(),
                VllmConfig {
                    kv_pool_bytes: geom.kv_bytes_per_token() * 16 * 600, // tight
                    preemption: policy,
                    ..VllmConfig::default()
                },
            )
            .with_offloader(ctx.offloader(backend, GpuId(0)));
            let mut driver = Driver::new();
            driver.schedule_trace(0, trace.clone());
            let mut engines: Vec<&mut dyn Engine> = vec![&mut engine];
            driver.run(&mut engines, SimTime::from_secs(3_600));
            let log: aqua_metrics::requests::RequestLog =
                engine.drain_completions().into_iter().collect();
            let s = log.rct_summary();
            t.row(&[
                pname.to_owned(),
                backend.to_string(),
                engine.preemptions().to_string(),
                format!("{:.3}", s.p50),
                format!("{:.3}", s.p95),
            ]);
        }
    }
    t
}

/// Ablation 4: llm-informer high-water mark sweep.
pub fn reclaim_threshold_table(highs: &[usize], tl: &Timeline, seed: u64) -> Table {
    let mut t = Table::new(
        "Ablation: llm-informer reclaim threshold (pending requests)",
        &["high_pending", "consumer_tokens", "producer_rct_p95_s"],
    );
    for &high in highs {
        let cfg = LlmInformerConfig {
            high_pending: high,
            ..LlmInformerConfig::default()
        };
        let (tokens, log) = run_with_informer(tl, cfg, seed);
        t.row(&[
            high.to_string(),
            tokens.to_string(),
            format!("{:.3}", log.rct_summary().p95),
        ]);
    }
    t
}

/// Ablation 6: adapter popularity skew. Heavy-headed (Zipf) adapter
/// traffic raises cache hit rates, shrinking the loading cost AQUA
/// accelerates — the uniform assignment of Figures 8/12 is AQUA's
/// best case.
pub fn lora_skew_table(skews: &[f64], count: usize, seed: u64) -> Table {
    use crate::setup::mistral_lora_vllm;
    use aqua_models::lora::LoraAdapter;
    use aqua_workloads::lora::lora_trace_skewed;

    let mut t = Table::new(
        "Ablation: LoRA adapter popularity skew (Zipf exponent)",
        &[
            "skew",
            "cache_hit_rate",
            "baseline_rct_p50_s",
            "aqua_rct_p50_s",
            "improvement",
        ],
    );
    for &skew in skews {
        let trace = lora_trace_skewed(2.0, count, 30, skew, seed, 0);
        let mut row = Vec::new();
        let mut hit_rate = 0.0;
        for kind in [
            crate::setup::OffloadKind::DramPageable,
            crate::setup::OffloadKind::Aqua,
        ] {
            let ctx = ServerCtx::two_gpu();
            if kind == crate::setup::OffloadKind::Aqua {
                ctx.static_lease(GpuId(1), gib(12));
            }
            let mut engine =
                mistral_lora_vllm(&ctx, kind, LoraAdapter::zephyr().synthesize_pool(30), 10);
            let mut driver = Driver::new();
            driver.schedule_trace(0, trace.clone());
            let mut engines: Vec<&mut dyn Engine> = vec![&mut engine];
            driver.run(&mut engines, SimTime::from_secs(3_600));
            let log: aqua_metrics::requests::RequestLog =
                engine.drain_completions().into_iter().collect();
            let (hits, misses) = engine.lora_cache_stats();
            hit_rate = hits as f64 / (hits + misses).max(1) as f64;
            row.push(log.rct_summary().p50);
        }
        t.row(&[
            format!("{skew:.1}"),
            format!("{hit_rate:.2}"),
            format!("{:.3}", row[0]),
            format!("{:.3}", row[1]),
            format!("{:.2}x", row[0] / row[1]),
        ]);
    }
    t
}

/// The `aqua-repro` decomposition: one sweep point per ablation study.
pub fn repro_points(a: &crate::runner::ReproArgs) -> Vec<crate::runner::ReproPoint> {
    let a = *a;
    let points = vec![
        crate::runner::ReproPoint::new("ablations", "coalescing", move || {
            format!("{}\n", coalescing_table())
        }),
        crate::runner::ReproPoint::new("ablations", "cfs-slice", move || {
            format!(
                "{}\n",
                cfs_slice_table(&[2, 4, 8, 16], a.count.min(120), a.seed)
            )
        }),
        crate::runner::ReproPoint::new("ablations", "producer-sharing", move || {
            format!("{}\n", producer_sharing_table(a.window))
        }),
        crate::runner::ReproPoint::new("ablations", "reclaim-threshold", move || {
            format!(
                "{}\n",
                reclaim_threshold_table(&[2, 8, 32], &Timeline::default(), a.seed)
            )
        }),
        crate::runner::ReproPoint::new("ablations", "preemption", move || {
            format!("{}\n", preemption_table(a.count, a.seed))
        }),
        crate::runner::ReproPoint::new("ablations", "lora-skew", move || {
            format!("{}\n", lora_skew_table(&[0.0, 1.0, 2.0], a.count, a.seed))
        }),
    ];
    // Reclaim-threshold replays the full production timeline three times and
    // dominates the study's wall; the other five points are near-instant.
    points
        .into_iter()
        .map(|p| {
            let hint = if p.label() == "reclaim-threshold" {
                55
            } else {
                4
            };
            p.with_cost_hint(hint)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalescing_always_wins() {
        let t = coalescing_table();
        assert_eq!(t.len(), 4);
        // Parse the penalty column: every row ends with "x" and > 1.
        for line in t.to_csv().lines().skip(1) {
            let penalty: f64 = line
                .split(',')
                .next_back()
                .unwrap()
                .trim_end_matches('x')
                .parse()
                .unwrap();
            assert!(penalty > 1.0, "row {line}");
        }
    }

    #[test]
    fn dedicated_producers_beat_sharing() {
        let (shared, dedicated) = producer_sharing(20);
        let shared_min = *shared.iter().min().unwrap() as f64;
        let dedicated_min = *dedicated.iter().min().unwrap() as f64;
        assert!(
            dedicated_min > 1.2 * shared_min,
            "dedicated {dedicated:?} vs shared {shared:?}"
        );
    }

    #[test]
    fn skew_reduces_aqua_advantage() {
        let t = lora_skew_table(&[0.0, 2.0], 80, 11);
        let rows: Vec<Vec<String>> = t
            .to_csv()
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(str::to_owned).collect())
            .collect();
        let parse = |s: &str| s.trim_end_matches('x').parse::<f64>().unwrap();
        let uniform_improvement = parse(&rows[0][4]);
        let skewed_improvement = parse(&rows[1][4]);
        let uniform_hits = parse(&rows[0][1]);
        let skewed_hits = parse(&rows[1][1]);
        assert!(skewed_hits > uniform_hits, "skew raises hit rate");
        assert!(
            skewed_improvement < uniform_improvement,
            "skew shrinks AQUA's edge: {skewed_improvement} vs {uniform_improvement}"
        );
    }

    #[test]
    fn preemption_sweep_renders() {
        let t = preemption_table(40, 3);
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn slice_sweep_renders() {
        let t = cfs_slice_table(&[4, 16], 30, 9);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn reclaim_threshold_sweep_renders() {
        let tl = Timeline {
            low_phase_start: 10,
            low_count: 10,
            burst_start: 40,
            burst_count: 60,
            end: 90,
        };
        let t = reclaim_threshold_table(&[4, 16], &tl, 3);
        assert_eq!(t.len(), 2);
    }
}
