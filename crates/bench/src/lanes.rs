//! The PDES lane executor: one scenario, many shards, `--lanes N` threads.
//!
//! [`crate::sweep::Sweep`] parallelises *across* independent experiment
//! points; this module parallelises *within* one large scenario. The
//! scenario is cut into [`LaneShard`]s — per-server (or per-cell, or
//! per-pair) simulations that exchange cross-shard events through the
//! conservative [`Mailbox`](aqua_sim::pdes::Mailbox) protocol described in
//! [`aqua_sim::pdes`]. Shard `i` always runs on lane `i % lanes`, every
//! shard journals into its own digest-only tracer, and per-shard digests
//! fold **in shard index order** — so the combined digest, like `Sweep`'s,
//! is a pure function of simulated behaviour, not of lane count or thread
//! schedule. `--lanes 1`, `--lanes 4` and `--lanes 8` must (and do, see
//! `tests/lanes.rs`) produce identical bytes and digests.
//!
//! The executor advances all shards in barrier-synchronised windows:
//!
//! 1. `S_min` = min over shard send horizons and undelivered messages.
//! 2. If `S_min` is unbounded, shards are decoupled → each runs to
//!    completion (the common case for embarrassingly parallel scenarios
//!    like the e2e pairs and serve-chaos cells).
//! 3. Otherwise every shard advances to `H = S_min + lookahead`
//!    (exclusive), messages produced inside the window are checked against
//!    the lookahead contract (`deliver_at ≥ H`), and deliveries for the
//!    next window are merged in `(deliver_at, src, seq)` order.

use aqua_sim::pdes::{Mailbox, Msg};
use aqua_sim::time::{SimDuration, SimTime};
use aqua_telemetry::tracer::FNV_OFFSET;
use aqua_telemetry::{fnv1a, JournalTracer};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One shard of a scenario: an independent sub-simulation plus its
/// cross-shard messaging contract.
///
/// Shards need not be `Send`: each is built *on* its lane thread (via the
/// `Send` builder closure) and never leaves it, so shards may hold
/// `Rc`-based simulator state. Only the builder, the message payload and
/// the output cross threads.
pub trait LaneShard {
    /// Cross-shard message payload.
    type Payload: Send;
    /// What the shard yields once the run completes.
    type Out: Send;

    /// A conservative lower bound on the earliest simulated time at which
    /// this shard could still emit a cross-shard message; `None` if it will
    /// never send again. Must never move backwards past a window the shard
    /// has already simulated.
    fn next_send_horizon(&self) -> Option<SimTime>;

    /// Delivers `inbox` (sorted by `(deliver_at, src, seq)`) and advances
    /// the shard's local simulation up to `until` (exclusive), or to
    /// completion when `until` is `None`. Returns the cross-shard messages
    /// produced inside the window; each must respect the lookahead
    /// (`deliver_at ≥ send time + L`).
    fn advance(
        &mut self,
        until: Option<SimTime>,
        inbox: Vec<Msg<Self::Payload>>,
    ) -> Vec<Msg<Self::Payload>>;

    /// Consumes the shard, returning its result and how many simulator
    /// events it processed.
    fn finish(self) -> ShardFinish<Self::Out>;
}

/// What [`LaneShard::finish`] yields.
#[derive(Debug)]
pub struct ShardFinish<O> {
    /// The shard's result (metrics, rendered rows, …).
    pub output: O,
    /// Simulator events the shard's driver processed.
    pub sim_events: u64,
}

/// One completed shard, with its determinism evidence.
#[derive(Debug)]
pub struct ShardReport<O> {
    /// The shard's result.
    pub output: O,
    /// FNV-1a digest of every trace event the shard journalled.
    pub digest: u64,
    /// Journalled event count behind [`ShardReport::digest`].
    pub events: usize,
    /// Simulator events the shard's driver processed.
    pub sim_events: u64,
}

/// A completed lane run: per-shard reports in shard index order plus the
/// schedule-independent roll-up.
#[derive(Debug)]
pub struct LaneOutcome<O> {
    /// Shard reports, index-aligned with the input builders.
    pub shards: Vec<ShardReport<O>>,
    /// Per-shard digests folded in shard index order.
    pub digest: u64,
    /// Total journalled events across shards.
    pub events: usize,
    /// Total simulator events processed across shards.
    pub sim_events: u64,
    /// Barrier windows the run took (1 for fully decoupled shards).
    pub windows: u64,
    /// Cross-shard messages exchanged.
    pub messages: u64,
    /// Lane threads actually used.
    pub lanes: usize,
    /// Wall time of the whole run.
    pub wall: Duration,
}

impl<O> LaneOutcome<O> {
    /// Consumes the outcome, returning shard outputs in shard order.
    pub fn outputs(self) -> Vec<O> {
        self.shards.into_iter().map(|s| s.output).collect()
    }
}

enum Cmd<P> {
    /// Advance every owned shard to `until` (exclusive; `None` = run to
    /// completion). `inboxes[j]` belongs to the lane's `j`-th owned shard.
    Window {
        until: Option<SimTime>,
        inboxes: Vec<Vec<Msg<P>>>,
    },
    Finish,
}

struct Reply<P> {
    /// Messages produced this window, across the lane's shards.
    sends: Vec<Msg<P>>,
    /// Updated send horizon per owned shard.
    horizons: Vec<Option<SimTime>>,
}

/// A deferred shard constructor, run on its lane thread so non-`Send`
/// shard state never crosses threads.
pub type ShardBuilder<S> = Box<dyn FnOnce() -> S + Send>;

/// Runs `builders.len()` shards across `lanes` threads under the
/// conservative window protocol with the given `lookahead`.
///
/// Shard `i` is built and run on lane `i % lanes`, inside its own
/// digest-only journal (installed via [`crate::trace::with_tracer`], so
/// everything the shard simulates — including `ServerCtx` construction —
/// lands in its journal). The returned outcome is identical for every lane
/// count; nondeterminism shows up as a digest mismatch, exactly like a
/// `Sweep` jobs mismatch.
pub fn run_lanes<S: LaneShard>(
    builders: Vec<ShardBuilder<S>>,
    lanes: usize,
    lookahead: SimDuration,
) -> LaneOutcome<S::Out> {
    let t0 = Instant::now();
    let shard_count = builders.len();
    let lanes = lanes.clamp(1, shard_count.max(1));
    let mut windows = 0u64;
    let mut messages = 0u64;

    // Partition builders by lane, remembering each shard's global index.
    let mut per_lane: Vec<Vec<(usize, ShardBuilder<S>)>> = (0..lanes).map(|_| Vec::new()).collect();
    for (i, b) in builders.into_iter().enumerate() {
        per_lane[i % lanes].push((i, b));
    }

    let mut reports: Vec<Option<ShardReport<S::Out>>> = (0..shard_count).map(|_| None).collect();

    std::thread::scope(|scope| {
        let mut cmd_txs = Vec::with_capacity(lanes);
        let mut reply_rxs = Vec::with_capacity(lanes);
        let (done_tx, done_rx) = mpsc::channel::<(usize, ShardReport<S::Out>)>();

        for lane_builders in per_lane.into_iter() {
            let (cmd_tx, cmd_rx) = mpsc::channel::<Cmd<S::Payload>>();
            let (reply_tx, reply_rx) = mpsc::channel::<Reply<S::Payload>>();
            let done_tx = done_tx.clone();
            cmd_txs.push(cmd_tx);
            reply_rxs.push(reply_rx);
            scope.spawn(move || {
                // Build each shard under its own journal so construction
                // events are attributed to the shard that caused them.
                let mut shards: Vec<(usize, S, Arc<JournalTracer>)> = lane_builders
                    .into_iter()
                    .map(|(idx, build)| {
                        let journal = Arc::new(JournalTracer::digest_only());
                        let shard = crate::trace::with_tracer(journal.clone(), build);
                        (idx, shard, journal)
                    })
                    .collect();
                let horizons = shards
                    .iter()
                    .map(|(_, s, _)| s.next_send_horizon())
                    .collect();
                reply_tx
                    .send(Reply {
                        sends: Vec::new(),
                        horizons,
                    })
                    .expect("executor alive");
                while let Ok(cmd) = cmd_rx.recv() {
                    match cmd {
                        Cmd::Window { until, inboxes } => {
                            let mut sends = Vec::new();
                            for ((_, shard, journal), inbox) in shards.iter_mut().zip(inboxes) {
                                let journal = journal.clone();
                                sends.extend(crate::trace::with_tracer(journal, || {
                                    shard.advance(until, inbox)
                                }));
                            }
                            let horizons = shards
                                .iter()
                                .map(|(_, s, _)| s.next_send_horizon())
                                .collect();
                            reply_tx
                                .send(Reply { sends, horizons })
                                .expect("executor alive");
                        }
                        Cmd::Finish => {
                            for (idx, shard, journal) in shards.drain(..) {
                                let fin =
                                    crate::trace::with_tracer(journal.clone(), || shard.finish());
                                let report = ShardReport {
                                    output: fin.output,
                                    digest: journal.digest(),
                                    events: journal.len(),
                                    sim_events: fin.sim_events,
                                };
                                done_tx.send((idx, report)).expect("executor alive");
                            }
                            break;
                        }
                    }
                }
            });
        }
        drop(done_tx);

        // Global shard → (lane, slot-within-lane) routing and horizons.
        let lane_of = |i: usize| (i % lanes, i / lanes);
        let mut horizons: Vec<Option<SimTime>> = vec![None; shard_count];
        for (lane, rx) in reply_rxs.iter().enumerate() {
            let init = rx.recv().expect("lane alive");
            assert!(init.sends.is_empty(), "shards must not send at build time");
            for (slot, h) in init.horizons.into_iter().enumerate() {
                horizons[slot * lanes + lane] = h;
            }
        }

        let mut mailbox: Mailbox<S::Payload> = Mailbox::new(shard_count);
        loop {
            let s_min = horizons
                .iter()
                .flatten()
                .copied()
                .chain(mailbox.next_time())
                .min();
            let until = s_min.map(|s| s + lookahead);
            windows += 1;
            let mut inboxes = match until {
                Some(h) => mailbox.deliverable(h),
                None => {
                    debug_assert!(mailbox.is_empty(), "pending messages imply a bounded S_min");
                    mailbox.drain_all()
                }
            };
            // Route per-destination inboxes to the owning lane, keyed by
            // the lane's local slot order.
            let mut lane_inboxes: Vec<Vec<Vec<Msg<S::Payload>>>> = (0..lanes)
                .map(|lane| {
                    (0..shard_count)
                        .filter(|i| i % lanes == lane)
                        .map(|_| Vec::new())
                        .collect()
                })
                .collect();
            for (dst, inbox) in inboxes.drain(..).enumerate() {
                let (lane, slot) = lane_of(dst);
                lane_inboxes[lane][slot] = inbox;
            }
            for (lane, tx) in cmd_txs.iter().enumerate() {
                tx.send(Cmd::Window {
                    until,
                    inboxes: std::mem::take(&mut lane_inboxes[lane]),
                })
                .expect("lane alive");
            }
            for (lane, rx) in reply_rxs.iter().enumerate() {
                let reply = rx.recv().expect("lane alive");
                for msg in reply.sends {
                    match until {
                        Some(h) => assert!(
                            msg.deliver_at >= h,
                            "lookahead violation: shard {} delivered at {:?} inside window ending {h:?}",
                            msg.src,
                            msg.deliver_at,
                        ),
                        None => panic!(
                            "shard {} sent during the final decoupled window",
                            msg.src
                        ),
                    }
                    messages += 1;
                    mailbox.post(msg);
                }
                for (slot, h) in reply.horizons.into_iter().enumerate() {
                    let global = slot * lanes + lane;
                    if let (Some(h), Some(u)) = (h, until) {
                        assert!(
                            h >= u,
                            "shard {global} horizon {h:?} regressed into simulated window ending {u:?}"
                        );
                    }
                    horizons[global] = h;
                }
            }
            if until.is_none() {
                break;
            }
        }

        for tx in &cmd_txs {
            tx.send(Cmd::Finish).expect("lane alive");
        }
        while let Ok((idx, report)) = done_rx.recv() {
            reports[idx] = Some(report);
        }
    });

    let shards: Vec<ShardReport<S::Out>> = reports
        .into_iter()
        .map(|r| r.expect("every shard finishes before the scope exits"))
        .collect();
    let digest = shards
        .iter()
        .fold(FNV_OFFSET, |h, s| fnv1a(h, &s.digest.to_le_bytes()));
    LaneOutcome {
        events: shards.iter().map(|s| s.events).sum(),
        sim_events: shards.iter().map(|s| s.sim_events).sum(),
        digest,
        shards,
        windows,
        messages,
        lanes,
        wall: t0.elapsed(),
    }
}

/// A shard with no cross-shard traffic: one closure, run to completion on
/// its lane. [`run_decoupled`] wraps a list of these so embarrassingly
/// parallel scenarios (the e2e pairs, the serve-chaos cells) ride the same
/// executor — and the same digest rule — as fully coupled ones.
struct TaskShard<O> {
    task: Option<Box<dyn FnOnce() -> ShardFinish<O> + Send>>,
    done: Option<ShardFinish<O>>,
}

impl<O: Send> LaneShard for TaskShard<O> {
    type Payload = ();
    type Out = O;

    fn next_send_horizon(&self) -> Option<SimTime> {
        None
    }

    fn advance(&mut self, until: Option<SimTime>, inbox: Vec<Msg<()>>) -> Vec<Msg<()>> {
        debug_assert!(inbox.is_empty(), "decoupled shards receive nothing");
        if until.is_none() {
            let task = self.task.take().expect("advanced to completion once");
            self.done = Some(task());
        }
        Vec::new()
    }

    fn finish(self) -> ShardFinish<O> {
        self.done.expect("executor always issues the final window")
    }
}

/// Runs independent tasks as decoupled shards: task `i` on lane
/// `i % lanes`, each under its own journal, digests folded in task order.
pub fn run_decoupled<O: Send + 'static>(
    tasks: Vec<Box<dyn FnOnce() -> ShardFinish<O> + Send>>,
    lanes: usize,
) -> LaneOutcome<O> {
    let builders: Vec<ShardBuilder<TaskShard<O>>> = tasks
        .into_iter()
        .map(|task| {
            let b: Box<dyn FnOnce() -> TaskShard<O> + Send> = Box::new(move || TaskShard {
                task: Some(task),
                done: None,
            });
            b
        })
        .collect();
    // Lookahead is irrelevant without cross-shard traffic; any nonzero
    // value satisfies the window rule.
    run_lanes(builders, lanes, SimDuration::from_nanos(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_telemetry::TraceEvent;

    fn emit_task(i: u64) -> Box<dyn FnOnce() -> ShardFinish<u64> + Send> {
        Box::new(move || {
            let tracer = crate::trace::tracer();
            for k in 0..=i {
                tracer.emit(TraceEvent::ReclaimRequested {
                    producer: format!("s{i}/gpu{k}"),
                    at: SimTime::from_nanos(i),
                });
            }
            ShardFinish {
                output: i * 10,
                sim_events: i + 1,
            }
        })
    }

    #[test]
    fn decoupled_tasks_keep_input_order_and_digests_across_lane_counts() {
        let run = |lanes| run_decoupled((0..9).map(emit_task).collect(), lanes);
        let one = run(1);
        let four = run(4);
        let eight = run(8);
        assert_eq!(one.digest, four.digest);
        assert_eq!(one.digest, eight.digest);
        assert_eq!(one.events, eight.events);
        assert_eq!(one.events, (1..=9).sum::<usize>());
        assert_eq!(one.sim_events, eight.sim_events);
        assert_eq!(one.windows, 1, "decoupled shards take a single window");
        assert_eq!(one.messages, 0);
        assert_eq!(four.lanes, 4);
        assert_eq!(one.outputs(), (0..9).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn lane_count_clamps_to_shard_count() {
        let out = run_decoupled((0..2).map(emit_task).collect(), 16);
        assert_eq!(out.lanes, 2);
        assert_eq!(out.outputs(), vec![0, 10]);
    }

    /// A ping-pong shard pair exercising the windowed protocol: shard 0
    /// sends `rounds` pings on a fixed schedule, shard 1 echoes each pong,
    /// both journal every delivery.
    struct PingShard {
        id: usize,
        schedule: Vec<SimTime>,
        next: usize,
        seq: u64,
        lookahead: SimDuration,
        received: Vec<(SimTime, u64)>,
    }

    impl LaneShard for PingShard {
        type Payload = u64;
        type Out = Vec<(SimTime, u64)>;

        fn next_send_horizon(&self) -> Option<SimTime> {
            // Shard 1 only reacts to deliveries; the executor covers its
            // replies through the undelivered-message term of S_min.
            self.schedule.get(self.next).copied()
        }

        fn advance(&mut self, until: Option<SimTime>, inbox: Vec<Msg<u64>>) -> Vec<Msg<u64>> {
            let mut out = Vec::new();
            let tracer = crate::trace::tracer();
            for msg in inbox {
                tracer.emit(TraceEvent::ReclaimRequested {
                    producer: format!("shard{}/from{}", self.id, msg.src),
                    at: msg.deliver_at,
                });
                self.received.push((msg.deliver_at, msg.payload));
                if self.id == 1 {
                    out.push(Msg {
                        deliver_at: msg.deliver_at + self.lookahead,
                        src: self.id,
                        dst: 0,
                        seq: self.seq,
                        payload: msg.payload + 100,
                    });
                    self.seq += 1;
                }
            }
            while self
                .schedule
                .get(self.next)
                .is_some_and(|&t| until.is_none_or(|u| t < u))
            {
                let at = self.schedule[self.next];
                if self.id == 0 {
                    out.push(Msg {
                        deliver_at: at + self.lookahead,
                        src: 0,
                        dst: 1,
                        seq: self.seq,
                        payload: self.next as u64,
                    });
                    self.seq += 1;
                }
                self.next += 1;
            }
            out
        }

        fn finish(self) -> ShardFinish<Vec<(SimTime, u64)>> {
            ShardFinish {
                sim_events: self.received.len() as u64,
                output: self.received,
            }
        }
    }

    fn ping_builders(
        rounds: usize,
        lookahead: SimDuration,
    ) -> Vec<Box<dyn FnOnce() -> PingShard + Send>> {
        let schedule: Vec<SimTime> = (0..rounds)
            .map(|i| SimTime::from_millis(10 * (i as u64 + 1)))
            .collect();
        let mk =
            move |id: usize, schedule: Vec<SimTime>| -> Box<dyn FnOnce() -> PingShard + Send> {
                Box::new(move || PingShard {
                    id,
                    schedule,
                    next: 0,
                    seq: 0,
                    lookahead,
                    received: Vec::new(),
                })
            };
        vec![mk(0, schedule.clone()), mk(1, Vec::new())]
    }

    #[test]
    fn windowed_ping_pong_is_lane_count_independent() {
        let lookahead = SimDuration::from_micros(7);
        let run = |lanes| run_lanes(ping_builders(5, lookahead), lanes, lookahead);
        let one = run(1);
        let two = run(2);
        assert_eq!(one.digest, two.digest);
        assert_eq!(one.messages, 10, "5 pings + 5 pongs");
        assert_eq!(one.messages, two.messages);
        assert_eq!(one.windows, two.windows);
        let outs = one.outputs();
        // Shard 1 saw every ping; shard 0 saw every echoed pong.
        assert_eq!(outs[1].len(), 5);
        assert_eq!(outs[0].len(), 5);
        assert_eq!(outs[0][0].1, 100);
        // Every pong arrived exactly two lookaheads after its ping fired.
        assert_eq!(
            outs[0][2].0,
            SimTime::from_millis(30) + lookahead + lookahead
        );
    }
}
