//! Figure 8 — LoRA adapter serving (sorted RCTs, up to 1.8×).
//!
//! Mistral-7B serves requests that each need one of 30 × 320 MB adapters;
//! the GPU caches only 10, so most requests must load an adapter. The
//! baseline loads adapters from DRAM with vLLM's default per-tensor copies;
//! AQUA stores them on the colocated producer GPU and loads them as one
//! coalesced NVLink copy. 8a colocates with StableDiffusion(-XL); 8b with a
//! Llama-2-13B producer — the data path is the same, only the lease donor
//! differs.

use crate::setup::{mistral_lora_vllm, OffloadKind, ServerCtx};
use aqua_engines::driver::{Driver, Engine};
use aqua_metrics::requests::RequestLog;
use aqua_metrics::table::Table;
use aqua_models::lora::LoraAdapter;
use aqua_sim::gpu::GpuId;
use aqua_sim::link::bytes::gib;
use aqua_sim::time::SimTime;
use aqua_workloads::lora::lora_trace;

/// The Figure 8 pool: 30 copies of the 320 MB Zephyr adapter.
pub fn adapter_pool() -> Vec<LoraAdapter> {
    LoraAdapter::zephyr().synthesize_pool(30)
}

/// GPU adapter-cache slots ("the serving engine can cache only 10 adapters
/// at a time on the GPU").
pub const CACHE_SLOTS: usize = 10;

/// Result: per-system completed-request logs.
#[derive(Debug)]
pub struct Fig08Result {
    /// `(system, log)` pairs.
    pub systems: Vec<(String, RequestLog)>,
}

impl Fig08Result {
    /// Log for one system.
    pub fn log_of(&self, system: &str) -> &RequestLog {
        &self
            .systems
            .iter()
            .find(|(s, _)| s == system)
            .unwrap_or_else(|| panic!("system {system} missing"))
            .1
    }

    /// Median-RCT improvement of AQUA over the baseline.
    pub fn p50_improvement(&self) -> f64 {
        self.log_of("baseline").rct_summary().p50 / self.log_of("aqua").rct_summary().p50
    }
}

/// Runs `count` LoRA requests at `rate` req/s against the baseline and
/// AQUA backends.
pub fn run(rate: f64, count: usize, seed: u64) -> Fig08Result {
    let trace = lora_trace(rate, count, 30, seed, 0);
    let mut systems = Vec::new();
    for (name, kind) in [
        ("baseline", OffloadKind::DramPageable),
        ("aqua", OffloadKind::Aqua),
    ] {
        let ctx = ServerCtx::two_gpu();
        if kind == OffloadKind::Aqua {
            // Producer lease covering the whole adapter pool (30 x 320 MB).
            ctx.static_lease(GpuId(1), gib(12));
        }
        let mut engine = mistral_lora_vllm(&ctx, kind, adapter_pool(), CACHE_SLOTS);
        let mut driver = Driver::new();
        driver.schedule_trace(0, trace.clone());
        let mut engines: Vec<&mut dyn Engine> = vec![&mut engine];
        driver.run(&mut engines, SimTime::from_secs(3_600));
        systems.push((
            name.to_owned(),
            engine.drain_completions().into_iter().collect(),
        ));
    }
    Fig08Result { systems }
}

/// Renders the sorted-RCT curves (empirical CDF quantiles) plus counts —
/// the Figure 8 series.
pub fn table(result: &Fig08Result) -> Table {
    let mut t = Table::new(
        "Figure 8: sorted LoRA request completion times (Mistral-7B, 30x320MB adapters)",
        &[
            "system",
            "n",
            "rct_p0_s",
            "rct_p25_s",
            "rct_p50_s",
            "rct_p75_s",
            "rct_p100_s",
        ],
    );
    for (name, log) in &result.systems {
        let cdf = aqua_metrics::cdf::Cdf::from_samples(&log.rcts());
        let row = cdf.quantile_row(5);
        let mut cells = vec![name.clone(), log.len().to_string()];
        cells.extend(row.iter().map(|v| format!("{v:.3}")));
        t.row(&cells);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aqua_improves_lora_rcts() {
        let r = run(2.0, 120, 7);
        let baseline = r.log_of("baseline");
        let aqua = r.log_of("aqua");
        assert!(baseline.len() >= 110);
        assert_eq!(baseline.len(), aqua.len());
        let improvement = r.p50_improvement();
        // Paper: "improves the Request completion times (RCTs) by up-to
        // 1.8X"; shape check with a generous band.
        assert!(
            (1.2..3.0).contains(&improvement),
            "p50 improvement {improvement:.2}"
        );
        // Sorted-RCT dominance: AQUA's curve sits below the baseline's in
        // the loaded region.
        let b = baseline.sorted_rcts();
        let a = aqua.sorted_rcts();
        let mid = b.len() / 2;
        assert!(a[mid] < b[mid]);
        assert!(!table(&r).is_empty());
    }
}
