//! Figures 9, 15, 16 and 17 — CFS responsiveness with real producers.
//!
//! A Codellama-34B consumer shares a server with a memory producer. Three
//! systems serve the same ShareGPT trace at 2 or 5 req/s:
//!
//! * **vLLM** — batch processing; queued requests starve (RCT jumps at ~20
//!   requests in the paper).
//! * **vLLM + CFS** — fair token slices, context switched to DRAM: TTFT
//!   drops ~4× but RCT roughly doubles.
//! * **AQUA** — fair slices with context switched to the producer GPU over
//!   the fabric: CFS-grade TTFT at vLLM-grade RCT.
//!
//! The producer varies per figure: Kandinsky (Fig. 9), a Mistral-7B LLM
//! producer (Fig. 15), StableDiffusion (Fig. 16), SD-XL + AudioGen
//! (Fig. 17); Figures 15–17 run on the 8-GPU NVSwitch server.

use crate::setup::{codellama_cfs, codellama_vllm, producer_engine, OffloadKind, ServerCtx};
use aqua_core::coordinator::GpuRef;
use aqua_core::informer::{BatchInformer, LlmInformerConfig};
use aqua_engines::driver::{Driver, Engine};
use aqua_metrics::requests::RequestLog;
use aqua_metrics::table::Table;
use aqua_models::zoo;
use aqua_sim::gpu::GpuId;
use aqua_sim::time::SimTime;
use aqua_workloads::items::item_trace;
use aqua_workloads::sharegpt::{sharegpt_trace, ShareGptConfig};
use std::sync::Arc;

/// Which producer shares the server with the CFS consumer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProducerChoice {
    /// Kandinsky image producer (Figure 9).
    Kandinsky,
    /// StableDiffusion image producer (Figure 16).
    StableDiffusion,
    /// StableDiffusion-XL plus AudioGen (Figure 17).
    SdxlAndAudiogen,
    /// A lightly loaded Mistral-7B LLM producer (Figure 15).
    MistralLlm,
}

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct CfsExperiment {
    /// Request rate for the consumer, req/s (the paper uses 2 and 5).
    pub rate: f64,
    /// Number of consumer requests.
    pub count: usize,
    /// Workload seed.
    pub seed: u64,
    /// Run on the 8-GPU NVSwitch server instead of the 2-GPU server.
    pub eight_gpu: bool,
    /// The colocated producer.
    pub producer: ProducerChoice,
    /// Consumer KV pool bytes (Codellama's post-weights HBM is tight).
    pub pool_bytes: u64,
    /// CFS slice length in tokens.
    pub slice_tokens: u64,
}

impl CfsExperiment {
    /// The Figure 9 configuration at a given rate.
    pub fn figure9(rate: f64, count: usize, seed: u64) -> Self {
        CfsExperiment {
            rate,
            count,
            seed,
            eight_gpu: false,
            producer: ProducerChoice::Kandinsky,
            // Tight KV pool: Codellama-34B leaves little HBM after weights,
            // so resident contexts are memory-limited — the regime where
            // vLLM's admission control starves queued prompts.
            pool_bytes: 1 << 30,
            slice_tokens: 4,
        }
    }
}

/// Result: per-system request logs (consumer side).
#[derive(Debug)]
pub struct CfsResult {
    /// `(system, log)` pairs: `vllm`, `vllm+cfs`, `aqua`.
    pub systems: Vec<(String, RequestLog)>,
}

impl CfsResult {
    /// Log for one system.
    pub fn log_of(&self, system: &str) -> &RequestLog {
        &self
            .systems
            .iter()
            .find(|(s, _)| s == system)
            .unwrap_or_else(|| panic!("system {system} missing"))
            .1
    }

    /// TTFT improvement (p90) of AQUA over vLLM.
    pub fn ttft_improvement(&self) -> f64 {
        percentile(&self.log_of("vllm").ttfts(), 0.9)
            / percentile(&self.log_of("aqua").ttfts(), 0.9)
    }

    /// RCT overhead (p50) of CFS-over-DRAM relative to AQUA.
    pub fn cfs_dram_rct_overhead(&self) -> f64 {
        self.log_of("vllm+cfs").rct_summary().p50 / self.log_of("aqua").rct_summary().p50
    }
}

fn percentile(v: &[f64], q: f64) -> f64 {
    let mut s = v.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).unwrap());
    s[((s.len() - 1) as f64 * q) as usize]
}

/// Sets up the chosen producers on `ctx`, returning the engines and
/// scheduling their item traffic on `driver` (engine indices start at
/// `base_index`).
pub fn attach_producers(
    ctx: &ServerCtx,
    driver: &mut Driver,
    choice: ProducerChoice,
    duration_secs: u64,
    base_index: usize,
    seed: u64,
) -> Vec<Box<dyn Engine>> {
    let first_gpu = if ctx.server.gpu_count() > 2 { 4 } else { 1 };
    let mut engines: Vec<Box<dyn Engine>> = Vec::new();
    let add_image = |name: ProducerChoice, gpu: usize, engines: &mut Vec<Box<dyn Engine>>| {
        let model = match name {
            ProducerChoice::Kandinsky => zoo::kandinsky(),
            ProducerChoice::StableDiffusion => zoo::stable_diffusion(),
            ProducerChoice::SdxlAndAudiogen => zoo::stable_diffusion_xl(),
            ProducerChoice::MistralLlm => unreachable!("handled separately"),
        };
        let engine = producer_engine(&model).with_informer(Box::new(
            BatchInformer::new(GpuRef::single(GpuId(gpu)), Arc::clone(&ctx.coordinator))
                .with_tracer(ctx.tracer.clone()),
        ));
        engines.push(Box::new(engine));
    };

    match choice {
        ProducerChoice::Kandinsky | ProducerChoice::StableDiffusion => {
            add_image(choice, first_gpu, &mut engines);
        }
        ProducerChoice::SdxlAndAudiogen => {
            add_image(ProducerChoice::SdxlAndAudiogen, first_gpu, &mut engines);
            let audio = producer_engine(&zoo::audiogen()).with_informer(Box::new(
                BatchInformer::new(
                    GpuRef::single(GpuId(first_gpu + 1)),
                    Arc::clone(&ctx.coordinator),
                )
                .with_tracer(ctx.tracer.clone()),
            ));
            engines.push(Box::new(audio));
        }
        ProducerChoice::MistralLlm => {
            let engine = ctx.llm_producer_with_informer(
                &zoo::mistral_7b(),
                GpuId(first_gpu),
                LlmInformerConfig::default(),
            );
            engines.push(Box::new(engine));
        }
    }

    // Keep the producers serving a light stream for the whole window.
    for (i, _) in engines.iter().enumerate() {
        let count = (duration_secs as f64 * 0.4) as usize;
        let trace = match choice {
            ProducerChoice::MistralLlm => sharegpt_trace(
                &ShareGptConfig::new(0.4, count),
                seed + 100 + i as u64,
                1_000_000,
            ),
            _ => item_trace(0.4, count, seed + 100 + i as u64, 1_000_000),
        };
        driver.schedule_trace(base_index + i, trace);
    }
    engines
}

/// Runs the three systems over the same trace with the process tracer
/// (`AQUA_TRACE` when set, otherwise the no-op tracer).
pub fn run(cfg: &CfsExperiment) -> CfsResult {
    run_traced(cfg, crate::trace::tracer())
}

/// Runs the three systems over the same trace, journalling every transfer,
/// lease and slice into `tracer`. Same-seed runs produce byte-identical
/// journals (the determinism-digest property `tests/determinism.rs` pins).
pub fn run_traced(cfg: &CfsExperiment, tracer: aqua_telemetry::SharedTracer) -> CfsResult {
    // The consumer workload is the Table-1 code-summary trace.
    let trace = sharegpt_trace(
        &ShareGptConfig::code_summary(cfg.rate, cfg.count),
        cfg.seed,
        0,
    );
    let duration = (cfg.count as f64 / cfg.rate) as u64 + 600;
    let horizon = SimTime::from_secs(duration + 1_200);
    let mut systems = Vec::new();

    // vLLM baseline (no producer interaction needed).
    {
        let mut engine =
            codellama_vllm(cfg.pool_bytes).with_tracer(tracer.clone(), "vllm:baseline");
        let mut driver = Driver::new();
        driver.schedule_trace(0, trace.clone());
        let mut engines: Vec<&mut dyn Engine> = vec![&mut engine];
        driver.run(&mut engines, horizon);
        systems.push((
            "vllm".to_owned(),
            engine.drain_completions().into_iter().collect(),
        ));
    }

    for (name, kind) in [
        ("vllm+cfs", OffloadKind::DramScattered),
        ("aqua", OffloadKind::Aqua),
    ] {
        let ctx = if cfg.eight_gpu {
            ServerCtx::eight_gpu_traced(tracer.clone())
        } else {
            ServerCtx::two_gpu_traced(tracer.clone())
        };
        let mut driver = Driver::new();
        driver.schedule_trace(0, trace.clone());
        let mut producers = if kind == OffloadKind::Aqua {
            attach_producers(&ctx, &mut driver, cfg.producer, duration, 1, cfg.seed)
        } else {
            Vec::new()
        };
        let mut consumer = codellama_cfs(&ctx, kind, cfg.pool_bytes, cfg.slice_tokens);
        let mut engines: Vec<&mut dyn Engine> = vec![&mut consumer];
        for p in producers.iter_mut() {
            engines.push(p.as_mut());
        }
        driver.run(&mut engines, horizon);
        systems.push((
            name.to_owned(),
            consumer.drain_completions().into_iter().collect(),
        ));
    }
    CfsResult { systems }
}

/// Renders the Figure 9/15/16/17 summaries.
pub fn table(result: &CfsResult, title: &str) -> Table {
    let mut t = Table::new(
        title,
        &[
            "system",
            "n",
            "ttft_p50_s",
            "ttft_p90_s",
            "rct_p50_s",
            "rct_p90_s",
        ],
    );
    for (name, log) in &result.systems {
        let ttfts = log.ttfts();
        let rcts = log.rcts();
        if ttfts.is_empty() {
            t.row(&[
                name.clone(),
                "0".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
            continue;
        }
        t.row(&[
            name.clone(),
            log.len().to_string(),
            format!("{:.3}", percentile(&ttfts, 0.5)),
            format!("{:.3}", percentile(&ttfts, 0.9)),
            format!("{:.3}", percentile(&rcts, 0.5)),
            format!("{:.3}", percentile(&rcts, 0.9)),
        ]);
    }
    t
}

/// The request rates Figure 9 reports (req/s).
pub const PAPER_RATES: [f64; 2] = [2.0, 5.0];

/// The `aqua-repro` decomposition: one sweep point per request rate.
pub fn repro_points(a: &crate::runner::ReproArgs) -> Vec<crate::runner::ReproPoint> {
    let (count, seed) = (a.count, a.seed);
    PAPER_RATES
        .iter()
        .map(|&rate| {
            crate::runner::ReproPoint::new("fig09", format!("rate={rate}"), move || {
                let cfg = CfsExperiment::figure9(rate, count, seed);
                let r = run(&cfg);
                format!("{}\n", table(&r, &format!("Figure 9 at {rate} req/s")))
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure9_shape_at_5rps() {
        let cfg = CfsExperiment::figure9(5.0, 120, 3);
        let r = run(&cfg);
        let vllm = r.log_of("vllm");
        let cfs = r.log_of("vllm+cfs");
        let aqua = r.log_of("aqua");
        assert!(vllm.len() >= 110, "vllm completed {}", vllm.len());
        assert!(cfs.len() >= 110);
        assert!(aqua.len() >= 110);

        // CFS (both variants) improves tail TTFT substantially.
        let imp = r.ttft_improvement();
        assert!(imp > 2.0, "TTFT improvement {imp:.2} (paper: 4x)");

        // AQUA's RCT is well below CFS-over-DRAM's.
        let overhead = r.cfs_dram_rct_overhead();
        assert!(
            overhead > 1.2,
            "CFS-DRAM should pay for paging: {overhead:.2} (paper: ~2x)"
        );
        assert!(!table(&r, "fig9 test").is_empty());
    }

    #[test]
    fn eight_gpu_with_llm_producer_works() {
        // Figure 15's setting, scaled down.
        let cfg = CfsExperiment {
            rate: 2.0,
            count: 40,
            seed: 5,
            eight_gpu: true,
            producer: ProducerChoice::MistralLlm,
            pool_bytes: 1 << 30,
            slice_tokens: 4,
        };
        let r = run(&cfg);
        assert!(r.log_of("aqua").len() >= 35);
    }
}
