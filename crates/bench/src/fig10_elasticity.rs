//! Figures 10 and 11 — elastic AQUA tensors under changing load.
//!
//! A Llama-2-13B producer (vLLM + llm-informer) shares the 2-GPU server
//! with an OPT-30B long-prompt consumer (FlexGen + AQUA):
//!
//! * Quiet start → the informer donates everything above the 5 GB retain
//!   floor; the consumer's offloaded context lands on the producer's HBM
//!   and throughput jumps (~6×, Figure 10b).
//! * At t≈150 s the producer serves 100 requests at 1 req/s — the retained
//!   memory absorbs them.
//! * At t≈400 s a burst of 250 requests at 5 req/s builds the queue; the
//!   informer reclaims, the consumer blocks while releasing (migrating its
//!   tensors to DRAM over PCIe) and then runs at DRAM speed.
//! * When the burst drains the informer donates again and the offloader
//!   promotes the tensors back — throughput recovers.
//!
//! Figure 11 reruns the producer workload without AQUA to show donation
//! costs the producer almost nothing except the reclaim pause.

use crate::setup::{opt_flexgen, OffloadKind, ServerCtx};
use aqua_core::informer::LlmInformerConfig;
use aqua_engines::driver::{Driver, Engine};
use aqua_engines::vllm::VllmEngine;
use aqua_metrics::requests::RequestLog;
use aqua_metrics::table::Table;
use aqua_metrics::timeseries::TimeSeries;
use aqua_models::zoo;
use aqua_sim::gpu::GpuId;
use aqua_sim::link::GIB;
use aqua_sim::time::SimTime;
use aqua_workloads::longprompt::long_prompt_trace;
use aqua_workloads::sampling::Sampler;

/// The experiment timeline (seconds).
#[derive(Debug, Clone, Copy)]
pub struct Timeline {
    /// When the consumer job and the low-rate producer phase start.
    pub low_phase_start: u64,
    /// Low-phase request count at 1 req/s.
    pub low_count: usize,
    /// When the high-rate burst starts.
    pub burst_start: u64,
    /// Burst request count at 5 req/s.
    pub burst_count: usize,
    /// Total window.
    pub end: u64,
}

impl Default for Timeline {
    fn default() -> Self {
        Timeline {
            low_phase_start: 150,
            low_count: 100,
            burst_start: 400,
            burst_count: 250,
            end: 700,
        }
    }
}

/// Results of the elasticity run.
#[derive(Debug)]
pub struct Fig10Result {
    /// Figure 10a: producer free memory (GiB) over time.
    pub producer_free: TimeSeries,
    /// Figure 10b: consumer decode throughput (tokens/s) per sample bucket.
    pub consumer_throughput: TimeSeries,
    /// Producer request log with AQUA active (Figure 11 "AQUA" series).
    pub producer_log: RequestLog,
    /// Consumer tokens generated in the whole window.
    pub consumer_tokens: u64,
}

fn producer_trace(
    tl: &Timeline,
    seed: u64,
) -> Vec<(SimTime, aqua_engines::request::InferenceRequest)> {
    // ShareGPT-like lengths with the paper's two-phase arrival pattern.
    let mut s = Sampler::new(seed);
    let mut out = Vec::new();
    let mut id = 500_000u64;
    let phase = |start: u64,
                 rate: f64,
                 count: usize,
                 output_mu: f64,
                 s: &mut Sampler,
                 out: &mut Vec<_>,
                 id: &mut u64| {
        for at in s.poisson_arrivals(SimTime::from_secs(start), rate, count) {
            let prompt = s.token_count(5.2, 0.9, 16, 1024);
            let output = s.token_count(output_mu, 0.7, 16, 1024);
            out.push((
                at,
                aqua_engines::request::InferenceRequest::text(*id, prompt, output),
            ));
            *id += 1;
        }
    };
    // Low phase: ordinary ShareGPT responses — the retained 5 GB copes.
    phase(
        tl.low_phase_start,
        1.0,
        tl.low_count,
        5.0,
        &mut s,
        &mut out,
        &mut id,
    );
    // Burst: long responses at 5 req/s genuinely exhaust the retained
    // memory, so the informer reclaims.
    phase(
        tl.burst_start,
        5.0,
        tl.burst_count,
        5.8,
        &mut s,
        &mut out,
        &mut id,
    );
    out
}

/// Runs the elasticity experiment, sampling every `sample_secs`.
pub fn run(tl: &Timeline, sample_secs: u64, seed: u64) -> Fig10Result {
    let ctx = ServerCtx::two_gpu();
    let mut producer =
        ctx.llm_producer_with_informer(&zoo::llama2_13b(), GpuId(1), LlmInformerConfig::default());
    let mut consumer = opt_flexgen(
        &ctx,
        OffloadKind::Aqua,
        crate::fig07_long_prompt::CONTEXT_BUDGET,
    );

    let mut driver = Driver::new();
    driver.schedule_trace(
        0,
        long_prompt_trace(1, 1_000_000, 0)
            .into_iter()
            .map(|(_, r)| (SimTime::from_secs(tl.low_phase_start), r)),
    );
    driver.schedule_trace(1, producer_trace(tl, seed));

    let mut producer_free = TimeSeries::new("producer-free-gib");
    let mut consumer_throughput = TimeSeries::new("consumer-tokens-per-s");
    let mut last_tokens = 0u64;

    let mut t = 0u64;
    while t < tl.end {
        t = (t + sample_secs).min(tl.end);
        {
            let mut engines: Vec<&mut dyn Engine> = vec![&mut consumer, &mut producer];
            driver.run(&mut engines, SimTime::from_secs(t));
        }
        let stats = aqua_engines::northbound::MemoryElastic::stats(&producer);
        let free = stats
            .context_reserved_bytes
            .saturating_sub(stats.context_used_bytes);
        producer_free.push(SimTime::from_secs(t), free as f64 / GIB);
        let tokens = consumer.tokens_generated();
        consumer_throughput.push(
            SimTime::from_secs(t),
            (tokens - last_tokens) as f64 / sample_secs as f64,
        );
        last_tokens = tokens;
    }

    Fig10Result {
        producer_free,
        consumer_throughput,
        producer_log: producer.drain_completions().into_iter().collect(),
        consumer_tokens: consumer.tokens_generated(),
    }
}

/// Figure 11 baseline: the identical producer workload without AQUA.
pub fn run_producer_baseline(tl: &Timeline, seed: u64) -> RequestLog {
    let ctx = ServerCtx::two_gpu();
    let mut producer =
        ctx.llm_producer_with_informer(&zoo::llama2_13b(), GpuId(1), LlmInformerConfig::default());
    // Strip the informer by rebuilding a plain engine with the same pool.
    let _ = &mut producer;
    let geom = *zoo::llama2_13b().llm_geometry().unwrap();
    let pool = aqua_sim::gpu::GpuSpec::a100_80g().hbm_bytes
        - aqua_models::cost::llm_static_bytes(&geom, 4096);
    let mut baseline = VllmEngine::new(
        geom,
        aqua_sim::gpu::GpuSpec::a100_80g(),
        aqua_engines::vllm::VllmConfig {
            kv_pool_bytes: pool,
            ..aqua_engines::vllm::VllmConfig::default()
        },
    );
    let mut driver = Driver::new();
    driver.schedule_trace(0, producer_trace(tl, seed));
    let mut engines: Vec<&mut dyn Engine> = vec![&mut baseline];
    driver.run(&mut engines, SimTime::from_secs(tl.end + 600));
    baseline.drain_completions().into_iter().collect()
}

/// Renders Figure 10 as two time-series tables.
pub fn table(result: &Fig10Result) -> Table {
    let mut t = Table::new(
        "Figure 10: producer free memory and consumer throughput over time",
        &["t_s", "producer_free_gib", "consumer_tokens_per_s"],
    );
    for ((ts, free), (_, tput)) in result
        .producer_free
        .points()
        .iter()
        .zip(result.consumer_throughput.points())
    {
        t.row(&[
            format!("{:.0}", ts.as_secs_f64()),
            format!("{free:.1}"),
            format!("{tput:.2}"),
        ]);
    }
    t
}

/// Renders Figure 11: sorted producer RCTs with and without AQUA.
pub fn producer_table(aqua: &RequestLog, baseline: &RequestLog) -> Table {
    let mut t = Table::new(
        "Figure 11: producer RCTs, baseline vs donating via AQUA",
        &["system", "n", "rct_p50_s", "rct_p95_s", "rct_max_s"],
    );
    for (name, log) in [("baseline", baseline), ("aqua", aqua)] {
        let s = log.rct_summary();
        t.row(&[
            name.to_owned(),
            log.len().to_string(),
            format!("{:.3}", s.p50),
            format!("{:.3}", s.p95),
            format!("{:.3}", s.max),
        ]);
    }
    t
}

/// Helper for tests and ablations: run with a custom informer threshold.
pub fn run_with_informer(tl: &Timeline, config: LlmInformerConfig, seed: u64) -> (u64, RequestLog) {
    let ctx = ServerCtx::two_gpu();
    let mut producer = ctx.llm_producer_with_informer(&zoo::llama2_13b(), GpuId(1), config);
    let mut consumer = opt_flexgen(
        &ctx,
        OffloadKind::Aqua,
        crate::fig07_long_prompt::CONTEXT_BUDGET,
    );
    let mut driver = Driver::new();
    driver.schedule_trace(
        0,
        long_prompt_trace(1, 1_000_000, 0)
            .into_iter()
            .map(|(_, r)| (SimTime::from_secs(tl.low_phase_start), r)),
    );
    driver.schedule_trace(1, producer_trace(tl, seed));
    let mut engines: Vec<&mut dyn Engine> = vec![&mut consumer, &mut producer];
    driver.run(&mut engines, SimTime::from_secs(tl.end));
    (
        consumer.tokens_generated(),
        producer.drain_completions().into_iter().collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn short_timeline() -> Timeline {
        Timeline {
            low_phase_start: 20,
            low_count: 20,
            burst_start: 80,
            burst_count: 200,
            end: 180,
        }
    }

    #[test]
    fn donation_then_reclaim_shapes_free_memory() {
        let tl = short_timeline();
        let r = run(&tl, 5, 11);
        // Early: informer donated, free ≈ retain floor (5 GiB).
        let early = r
            .producer_free
            .value_at(SimTime::from_secs(tl.low_phase_start))
            .unwrap();
        assert!(early < 10.0, "free after donation {early:.1} GiB");
        // After the burst begins, memory comes back (> 20 GiB).
        let late_max = r
            .producer_free
            .points()
            .iter()
            .filter(|(t, _)| t.as_secs_f64() >= tl.burst_start as f64)
            .map(|(_, v)| *v)
            .fold(0.0, f64::max);
        assert!(late_max > 20.0, "reclaimed free {late_max:.1} GiB");
        assert!(r.consumer_tokens > 0);
        assert!(!table(&r).is_empty());
    }

    #[test]
    fn consumer_fast_while_donated_slow_after_reclaim() {
        let tl = short_timeline();
        let r = run(&tl, 5, 13);
        let early_rate = r
            .consumer_throughput
            .mean_in(
                SimTime::from_secs(tl.low_phase_start + 10),
                SimTime::from_secs(tl.burst_start),
            )
            .unwrap_or(0.0);
        // The dip: the slowest sample bucket while the burst holds the
        // producer's memory (throughput recovers once the informer donates
        // again, so the mean over the whole tail would wash the dip out).
        let dip = r
            .consumer_throughput
            .points()
            .iter()
            .filter(|(t, _)| {
                let s = t.as_secs_f64();
                s > (tl.burst_start + 5) as f64 && s < (tl.end - 5) as f64
            })
            .map(|(_, v)| *v)
            .fold(f64::MAX, f64::min);
        assert!(
            early_rate > 2.0 * dip.max(0.1),
            "fabric phase {early_rate:.2} tok/s vs reclaim dip {dip:.2}"
        );
    }

    #[test]
    fn producer_overhead_is_small_outside_reclaim() {
        let tl = short_timeline();
        let aqua = run(&tl, 5, 17).producer_log;
        let baseline = run_producer_baseline(&tl, 17);
        assert!(aqua.len() >= 130, "aqua producer finished {}", aqua.len());
        assert_eq!(baseline.len(), 220);
        let ratio = aqua.rct_summary().p50 / baseline.rct_summary().p50;
        assert!(
            ratio < 2.0,
            "median producer RCT ratio {ratio:.2} (paper: near parity)"
        );
        assert!(!producer_table(&aqua, &baseline).is_empty());
    }
}
