//! Chaos run — Figure 10's elasticity timeline with the producer crashing.
//!
//! The same 2-GPU server as Figure 10: a Llama-2-13B producer donating via
//! its llm-informer and an OPT-30B long-prompt consumer (FlexGen + AQUA).
//! Instead of a request burst, the producer GPU *crashes* mid-lease:
//!
//! * Quiet start → the informer donates, the consumer's context lands on
//!   the producer's HBM, throughput jumps to the fabric rate.
//! * At `crash_start` a [`FaultPlan`] takes the producer GPU down. The
//!   transfer engine aborts its in-flight fabric transfers, the driver
//!   stops ticking the producer (so no informer heartbeats), and after the
//!   chaos heartbeat TTL the coordinator expires the lease.
//! * The consumer's next iteration boundary finds the lease revoked,
//!   re-materialises the stranded bytes into host DRAM over PCIe, and
//!   enters degraded mode — new offloads pin to DRAM until the window
//!   lapses. During the fault it runs at DRAM speed, never losing a
//!   request.
//! * At `crash_end` the producer returns; its informer resyncs its books
//!   against the coordinator and donates again, and the offloader
//!   promotes the context back to the fabric — throughput recovers.
//!
//! The report compares the fault-window throughput against a consumer-only
//! FlexGen DRAM baseline (the acceptance bound: within 2×) and the
//! recovered throughput against the pre-fault rate (≥ 90%).

use crate::setup::{opt_flexgen, OffloadKind, ServerCtx};
use aqua_core::coordinator::FailureConfig;
use aqua_core::informer::LlmInformerConfig;
use aqua_engines::driver::{Driver, Engine};
use aqua_metrics::table::Table;
use aqua_metrics::timeseries::TimeSeries;
use aqua_models::zoo;
use aqua_sim::audit::SharedAuditor;
use aqua_sim::fault::FaultPlan;
use aqua_sim::gpu::GpuId;
use aqua_sim::time::SimTime;
use aqua_telemetry::{JournalTracer, SharedTracer};
use aqua_workloads::longprompt::long_prompt_trace;
use std::sync::Arc;

/// The chaos timeline (seconds).
#[derive(Debug, Clone, Copy)]
pub struct ChaosTimeline {
    /// When the consumer job arrives (the producer idles and donates).
    pub consumer_start: u64,
    /// When the producer GPU crashes.
    pub crash_start: u64,
    /// When the producer GPU comes back.
    pub crash_end: u64,
    /// Total window.
    pub end: u64,
}

impl Default for ChaosTimeline {
    fn default() -> Self {
        ChaosTimeline {
            consumer_start: 20,
            crash_start: 300,
            crash_end: 420,
            end: 700,
        }
    }
}

impl ChaosTimeline {
    /// A scaled-down timeline for tests (same phases, shorter window).
    pub fn short() -> Self {
        ChaosTimeline {
            consumer_start: 10,
            crash_start: 60,
            crash_end: 100,
            end: 200,
        }
    }

    /// Sampling span for the healthy pre-fault phase (skip warm-up).
    fn pre_span(&self) -> (SimTime, SimTime) {
        (
            SimTime::from_secs(self.consumer_start + 10),
            SimTime::from_secs(self.crash_start),
        )
    }

    /// Sampling span inside the fault (skip the lease-expiry TTL and the
    /// blocking DRAM re-materialisation at the front).
    fn fault_span(&self) -> (SimTime, SimTime) {
        (
            SimTime::from_secs(self.crash_start + 15),
            SimTime::from_secs(self.crash_end),
        )
    }

    /// Sampling span after recovery (skip the degraded-window tail and the
    /// promotion copy).
    fn recovery_span(&self) -> (SimTime, SimTime) {
        (
            SimTime::from_secs(self.crash_end + 20),
            SimTime::from_secs(self.end),
        )
    }
}

/// The traced chaos run (digest-checkable — no baselines, no counters).
#[derive(Debug)]
pub struct ChaosResult {
    /// Consumer decode throughput (tokens/s) per sample bucket.
    pub consumer_throughput: TimeSeries,
    /// Consumer tokens generated over the whole window.
    pub consumer_tokens: u64,
    /// Mean throughput while the lease is healthy.
    pub pre_fault_tput: f64,
    /// Mean throughput while the producer is down (degraded mode).
    pub fault_tput: f64,
    /// Mean throughput after the producer returns and re-donates.
    pub recovery_tput: f64,
}

/// The full chaos report: the traced run plus the DRAM baseline and the
/// robustness counters the acceptance criteria check.
#[derive(Debug)]
pub struct ChaosReport {
    /// The chaos run itself.
    pub chaos: ChaosResult,
    /// Consumer-only FlexGen DRAM baseline mean throughput (no fault).
    pub dram_baseline_tput: f64,
    /// The fault-free AQUA run's mean throughput over the recovery span
    /// (the recovery yardstick — same context length, no crash).
    pub nofault_recovery_tput: f64,
    /// Leases the coordinator expired on missed heartbeats.
    pub lease_expirations: u64,
    /// Offloader failovers down the lease → sibling → DRAM ladder.
    pub failovers: u64,
    /// Aborted fabric transfers the offloader retried.
    pub retries: u64,
    /// Times the offloader entered degraded (DRAM-pinned) mode.
    pub degraded_entries: u64,
}

/// One producer+consumer run over the chaos timeline, with the fault
/// injected or not. Returns the sampled consumer throughput and the total
/// token count.
fn run_consumer(
    tl: &ChaosTimeline,
    sample_secs: u64,
    tracer: SharedTracer,
    faulted: bool,
    auditor: Option<SharedAuditor>,
) -> (TimeSeries, u64) {
    let mut ctx = ServerCtx::two_gpu_traced(tracer.clone());
    if let Some(aud) = &auditor {
        ctx = ctx.with_auditor(aud.clone());
    }
    if faulted {
        let plan = Arc::new(FaultPlan::new().gpu_crash(
            GpuId(1),
            SimTime::from_secs(tl.crash_start),
            SimTime::from_secs(tl.crash_end),
        ));
        ctx = ctx.with_fault_plan(Arc::clone(&plan));
        plan.emit(&tracer);
        ctx.coordinator.set_failure_config(FailureConfig::chaos());
    }

    let mut producer =
        ctx.llm_producer_with_informer(&zoo::llama2_13b(), GpuId(1), LlmInformerConfig::default());
    let mut consumer = opt_flexgen(
        &ctx,
        OffloadKind::Aqua,
        crate::fig07_long_prompt::CONTEXT_BUDGET,
    );

    let mut driver = Driver::new();
    if let Some(aud) = &auditor {
        driver.set_auditor(aud.clone());
    }
    if faulted {
        // Engine 1 (the producer) goes dark for the crash window: no ticks,
        // no informer heartbeats, arrivals held until it returns.
        driver.crash_window(
            1,
            SimTime::from_secs(tl.crash_start),
            SimTime::from_secs(tl.crash_end),
        );
    }
    driver.schedule_trace(
        0,
        long_prompt_trace(1, 1_000_000, 0)
            .into_iter()
            .map(|(_, r)| (SimTime::from_secs(tl.consumer_start), r)),
    );

    let mut consumer_throughput = TimeSeries::new("consumer-tokens-per-s");
    let mut last_tokens = 0u64;
    let mut t = 0u64;
    while t < tl.end {
        t = (t + sample_secs).min(tl.end);
        {
            let mut engines: Vec<&mut dyn Engine> = vec![&mut consumer, &mut producer];
            driver.run(&mut engines, SimTime::from_secs(t));
        }
        let tokens = consumer.tokens_generated();
        consumer_throughput.push(
            SimTime::from_secs(t),
            (tokens - last_tokens) as f64 / sample_secs as f64,
        );
        last_tokens = tokens;
    }
    let tokens = consumer.tokens_generated();
    (consumer_throughput, tokens)
}

/// Runs the chaos experiment against an explicit tracer, sampling every
/// `sample_secs`. Determinism tests call this twice with two journals and
/// compare digests.
pub fn run_traced(tl: &ChaosTimeline, sample_secs: u64, tracer: SharedTracer) -> ChaosResult {
    run_traced_audited(tl, sample_secs, tracer, None)
}

/// [`run_traced`] with a full aqua-audit attachment: the transfer engine,
/// coordinator, driver and offloader all report into `auditor`. A clean
/// audited run journals the exact same event stream — and digest — as an
/// unaudited one (`tests/determinism.rs` pins this).
pub fn run_traced_audited(
    tl: &ChaosTimeline,
    sample_secs: u64,
    tracer: SharedTracer,
    auditor: Option<SharedAuditor>,
) -> ChaosResult {
    let (consumer_throughput, consumer_tokens) =
        run_consumer(tl, sample_secs, tracer, true, auditor);
    let mean = |(a, b)| consumer_throughput.mean_in(a, b).unwrap_or(0.0);
    let pre_fault_tput = mean(tl.pre_span());
    let fault_tput = mean(tl.fault_span());
    let recovery_tput = mean(tl.recovery_span());
    ChaosResult {
        consumer_throughput,
        consumer_tokens,
        pre_fault_tput,
        fault_tput,
        recovery_tput,
    }
}

/// The fault-free AQUA run's mean throughput over the recovery span — the
/// apples-to-apples yardstick for recovery. (The long-prompt job's
/// per-token cost grows with its context, so the pre-fault rate overstates
/// what even a healthy run does this late in the window.)
pub fn run_nofault_recovery(tl: &ChaosTimeline, sample_secs: u64) -> f64 {
    let (ts, _) = run_consumer(tl, sample_secs, aqua_telemetry::null_tracer(), false, None);
    let (a, b) = tl.recovery_span();
    ts.mean_in(a, b).unwrap_or(0.0)
}

/// The consumer-only FlexGen baseline: same job, DRAM offload, no fault.
/// This is the floor the degraded consumer is measured against.
pub fn run_dram_baseline(tl: &ChaosTimeline, sample_secs: u64) -> f64 {
    // Silenced: the baseline is an internal yardstick; an `AQUA_TRACE`
    // capture of the chaos experiment should witness the faulted run, not
    // this one.
    let ctx = ServerCtx::two_gpu_traced(aqua_telemetry::null_tracer());
    let mut consumer = opt_flexgen(
        &ctx,
        OffloadKind::DramPinned,
        crate::fig07_long_prompt::CONTEXT_BUDGET,
    );
    let mut driver = Driver::new();
    driver.schedule_trace(
        0,
        long_prompt_trace(1, 1_000_000, 0)
            .into_iter()
            .map(|(_, r)| (SimTime::from_secs(tl.consumer_start), r)),
    );
    let mut ts = TimeSeries::new("dram-baseline-tokens-per-s");
    let mut last_tokens = 0u64;
    let mut t = 0u64;
    while t < tl.end {
        t = (t + sample_secs).min(tl.end);
        {
            let mut engines: Vec<&mut dyn Engine> = vec![&mut consumer];
            driver.run(&mut engines, SimTime::from_secs(t));
        }
        let tokens = consumer.tokens_generated();
        ts.push(
            SimTime::from_secs(t),
            (tokens - last_tokens) as f64 / sample_secs as f64,
        );
        last_tokens = tokens;
    }
    ts.mean_in(
        SimTime::from_secs(tl.consumer_start + 10),
        SimTime::from_secs(tl.end),
    )
    .unwrap_or(0.0)
}

/// Runs the chaos experiment end to end: traced run, DRAM baseline, and
/// the robustness counters.
pub fn run(tl: &ChaosTimeline, sample_secs: u64) -> ChaosReport {
    // With a sweep-point override or `AQUA_TRACE` active, journal the
    // faulted run into that capture so the exported trace and digest
    // witness the fault cascade; otherwise keep a private journal (the
    // counters need one either way).
    let journal = match crate::trace::active_journal() {
        Some(j) => j,
        None => Arc::new(JournalTracer::new()),
    };
    let chaos = run_traced(tl, sample_secs, journal.clone());
    let reg = journal.registry();
    ChaosReport {
        chaos,
        dram_baseline_tput: run_dram_baseline(tl, sample_secs),
        nofault_recovery_tput: run_nofault_recovery(tl, sample_secs),
        lease_expirations: reg.counter("coordinator.lease_expirations"),
        failovers: reg.counter("offloader.failovers"),
        retries: reg.counter("offloader.retries"),
        degraded_entries: reg.counter("offloader.degraded_entries"),
    }
}

/// Renders the chaos report: the throughput time-series plus a phase
/// summary against the acceptance bounds.
pub fn table(report: &ChaosReport) -> Table {
    let mut t = Table::new(
        "Chaos: consumer throughput through a producer crash",
        &["t_s", "consumer_tokens_per_s"],
    );
    for (ts, tput) in report.chaos.consumer_throughput.points() {
        t.row(&[format!("{:.0}", ts.as_secs_f64()), format!("{tput:.2}")]);
    }
    t
}

/// The phase summary table (pre / fault / recovery vs the bounds).
pub fn summary_table(report: &ChaosReport) -> Table {
    let mut t = Table::new(
        "Chaos summary: phase means vs acceptance bounds",
        &["phase", "tokens_per_s", "bound"],
    );
    t.row(&[
        "pre-fault (fabric)".into(),
        format!("{:.2}", report.chaos.pre_fault_tput),
        "-".into(),
    ]);
    t.row(&[
        "fault (degraded)".into(),
        format!("{:.2}", report.chaos.fault_tput),
        format!(">= {:.2} (dram/2)", report.dram_baseline_tput / 2.0),
    ]);
    t.row(&[
        "recovery".into(),
        format!("{:.2}", report.chaos.recovery_tput),
        format!(
            ">= {:.2} (0.9x healthy)",
            0.9 * report.nofault_recovery_tput
        ),
    ]);
    t.row(&[
        "healthy run, same span".into(),
        format!("{:.2}", report.nofault_recovery_tput),
        "-".into(),
    ]);
    t.row(&[
        "dram baseline".into(),
        format!("{:.2}", report.dram_baseline_tput),
        "-".into(),
    ]);
    t.row(&[
        "counters".into(),
        format!(
            "expirations={} failovers={} retries={} degraded={}",
            report.lease_expirations, report.failovers, report.retries, report.degraded_entries
        ),
        "-".into(),
    ]);
    t
}

/// The `aqua-repro` decomposition: one chaos-timeline point (faults and
/// parallel fan-out compose — the point digest captures the cascade).
pub fn repro_points(_a: &crate::runner::ReproArgs) -> Vec<crate::runner::ReproPoint> {
    vec![
        crate::runner::ReproPoint::new("chaos", "default-timeline", move || {
            let tl = ChaosTimeline::default();
            let r = run(&tl, 10);
            format!("{}\n{}\n", table(&r), summary_table(&r))
        })
        .with_cost_hint(20),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn producer_crash_degrades_then_recovers() {
        let tl = ChaosTimeline::short();
        let r = run(&tl, 5);
        // The lease must actually have expired and the offloader failed over.
        assert!(r.lease_expirations >= 1, "no lease expired: {r:?}");
        assert!(r.failovers >= 1, "no failover engaged: {r:?}");
        assert!(r.degraded_entries >= 1, "never entered degraded: {r:?}");
        // Fabric phase beats the fault phase; the fault phase still moves.
        assert!(
            r.chaos.pre_fault_tput > r.chaos.fault_tput,
            "pre {:.2} vs fault {:.2}",
            r.chaos.pre_fault_tput,
            r.chaos.fault_tput
        );
        assert!(r.chaos.fault_tput > 0.0, "consumer stalled during fault");
        // Degraded throughput stays within 2x of the DRAM baseline.
        assert!(
            r.chaos.fault_tput >= r.dram_baseline_tput / 2.0,
            "fault {:.2} vs dram baseline {:.2}",
            r.chaos.fault_tput,
            r.dram_baseline_tput
        );
        // Recovery reaches >= 90% of what the identical fault-free run does
        // over the same span.
        assert!(
            r.chaos.recovery_tput >= 0.9 * r.nofault_recovery_tput,
            "recovery {:.2} vs healthy {:.2}",
            r.chaos.recovery_tput,
            r.nofault_recovery_tput
        );
        assert!(!table(&r).is_empty());
        assert!(!summary_table(&r).is_empty());
    }

    #[test]
    fn traced_chaos_runs_are_digest_identical() {
        let tl = ChaosTimeline::short();
        let a = Arc::new(JournalTracer::new());
        let b = Arc::new(JournalTracer::new());
        let ra = run_traced(&tl, 5, a.clone());
        let rb = run_traced(&tl, 5, b.clone());
        assert_eq!(ra.consumer_tokens, rb.consumer_tokens);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.digest(), b.digest());
        assert!(!a.is_empty(), "chaos run journaled nothing");
    }
}
