//! Figure 1 — the motivating experiment.
//!
//! An LLM served at 5 req/s on one A100: vLLM batch-processes and starves
//! queued prompts (TTFT spikes, Figure 1a) while keeping RCT low
//! (Figure 1b); fair scheduling over DRAM fixes TTFT but inflates RCT by
//! paging over PCIe; AQUA keeps both low by paging over NVLink to the
//! neighbouring GPU.

use crate::setup::{OffloadKind, ServerCtx};
use aqua_engines::cfs::{CfsConfig, CfsEngine};
use aqua_engines::driver::{Driver, Engine};
use aqua_engines::vllm::{VllmConfig, VllmEngine};
use aqua_metrics::requests::RequestLog;
use aqua_metrics::table::Table;
use aqua_models::zoo;
use aqua_sim::gpu::{GpuId, GpuSpec};
use aqua_sim::link::bytes::gib;
use aqua_sim::time::SimTime;
use aqua_workloads::sharegpt::{sharegpt_trace, ShareGptConfig};

/// Results of one Figure-1 run: per-system request logs.
#[derive(Debug)]
pub struct Fig01Result {
    /// `(system name, completed-request log)` triples.
    pub systems: Vec<(String, RequestLog)>,
}

/// KV pool used for the constrained consumer GPU: roughly 20 interactive
/// contexts fit, matching the paper's "after ≈ 20 requests, the GPU runs
/// out of memory" observation.
pub const CONSTRAINED_POOL: u64 = 7 * (1 << 30);

/// Runs the motivation experiment: `count` ShareGPT requests at `rate`
/// req/s against vLLM, vLLM+CFS (DRAM) and AQUA.
pub fn run(rate: f64, count: usize, seed: u64) -> Fig01Result {
    let model = zoo::llama2_13b();
    let geom = *model.llm_geometry().unwrap();
    let trace = sharegpt_trace(&ShareGptConfig::new(rate, count), seed, 0);
    let horizon = SimTime::from_secs(3_600);

    let mut systems = Vec::new();

    // vLLM: batch processing with admission control.
    {
        let mut engine = VllmEngine::new(
            geom,
            GpuSpec::a100_80g(),
            VllmConfig {
                kv_pool_bytes: CONSTRAINED_POOL,
                max_batch: 64,
                ..VllmConfig::default()
            },
        );
        let mut driver = Driver::new();
        driver.schedule_trace(0, trace.clone());
        let mut engines: Vec<&mut dyn Engine> = vec![&mut engine];
        driver.run(&mut engines, horizon);
        systems.push((
            "vllm".to_owned(),
            engine.drain_completions().into_iter().collect(),
        ));
    }

    // vLLM + CFS over DRAM, and AQUA (CFS over NVLink).
    for (name, kind) in [
        ("vllm+cfs", OffloadKind::DramScattered),
        ("aqua", OffloadKind::Aqua),
    ] {
        let ctx = ServerCtx::two_gpu();
        if kind == OffloadKind::Aqua {
            // The neighbouring GPU (hosting a compute-bound model) leases
            // its spare HBM; Figure 1 abstracts the producer away.
            ctx.static_lease(GpuId(1), gib(40));
        }
        let mut engine = CfsEngine::new(
            geom,
            GpuSpec::a100_80g(),
            CfsConfig {
                slice_tokens: 8,
                max_active: 32,
                kv_pool_bytes: CONSTRAINED_POOL,
                ..CfsConfig::default()
            },
            ctx.offloader(kind, GpuId(0)),
        );
        let mut driver = Driver::new();
        driver.schedule_trace(0, trace.clone());
        let mut engines: Vec<&mut dyn Engine> = vec![&mut engine];
        driver.run(&mut engines, horizon);
        systems.push((
            name.to_owned(),
            engine.drain_completions().into_iter().collect(),
        ));
    }

    Fig01Result { systems }
}

/// Renders Figure 1a/1b as one table: per-system TTFT and RCT summaries.
pub fn table(result: &Fig01Result) -> Table {
    let mut t = Table::new(
        "Figure 1: responsiveness (TTFT) and throughput (RCT) at 5 req/s",
        &[
            "system",
            "n",
            "ttft_p50_s",
            "ttft_p99_s",
            "rct_p50_s",
            "rct_p99_s",
        ],
    );
    for (name, log) in &result.systems {
        let ttft = log.ttft_summary();
        let rct = log.rct_summary();
        t.row(&[
            name.clone(),
            log.len().to_string(),
            format!("{:.3}", ttft.p50),
            format!("{:.3}", ttft.p99),
            format!("{:.3}", rct.p50),
            format!("{:.3}", rct.p99),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_shape_holds_small() {
        // Scaled down: 60 requests at 5/s.
        let r = run(5.0, 60, 42);
        assert_eq!(r.systems.len(), 3);
        let get = |name: &str| {
            &r.systems
                .iter()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| panic!("{name} missing"))
                .1
        };
        let vllm = get("vllm");
        let cfs = get("vllm+cfs");
        let aqua = get("aqua");
        assert!(vllm.len() >= 55, "vllm finished {}", vllm.len());
        assert!(cfs.len() >= 55);
        assert!(aqua.len() >= 55);

        // Fair scheduling cuts tail TTFT relative to batch processing.
        assert!(
            aqua.ttft_summary().p99 < vllm.ttft_summary().p99,
            "aqua p99 ttft {} vs vllm {}",
            aqua.ttft_summary().p99,
            vllm.ttft_summary().p99
        );
        // AQUA's RCT beats CFS-over-DRAM.
        assert!(
            aqua.rct_summary().p50 < cfs.rct_summary().p50,
            "aqua rct {} vs cfs {}",
            aqua.rct_summary().p50,
            cfs.rct_summary().p50
        );
        let tbl = table(&r);
        assert_eq!(tbl.len(), 3);
    }
}
