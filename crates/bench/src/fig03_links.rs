//! Figure 3 — NVLink bandwidth vs buffer size, and the cost of sharing.
//!
//! 3a: observed NVLink bandwidth between two A100s grows with buffer size,
//! reaching ~100 GB/s at 2 MB and ~250 GB/s at large buffers; small buffers
//! are PCIe-slow. 3b: donating memory costs a producer < 5% throughput
//! (S = shared vs I = isolated).

use crate::setup::producer_engine;
use aqua_engines::driver::Engine;
use aqua_engines::northbound::MemoryElastic;
use aqua_engines::request::InferenceRequest;
use aqua_metrics::table::Table;
use aqua_models::zoo;
use aqua_sim::link::{BandwidthModel, GIB};
use aqua_sim::time::SimTime;

/// One Figure-3a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandwidthPoint {
    /// Buffer size in bytes.
    pub bytes: u64,
    /// Effective NVLink bandwidth, bytes/s.
    pub nvlink: f64,
    /// Effective PCIe bandwidth, bytes/s.
    pub pcie: f64,
}

/// Sweeps buffer sizes over the calibrated link models (Figure 3a).
pub fn run_bandwidth(sizes: &[u64]) -> Vec<BandwidthPoint> {
    let nv = BandwidthModel::nvlink_a100();
    let pcie = BandwidthModel::pcie_gen4_pinned();
    sizes
        .iter()
        .map(|&bytes| BandwidthPoint {
            bytes,
            nvlink: nv.effective_bandwidth(bytes),
            pcie: pcie.effective_bandwidth(bytes),
        })
        .collect()
}

/// One Figure-3b sample: a producer's throughput isolated vs sharing.
#[derive(Debug, Clone, PartialEq)]
pub struct SharingPoint {
    /// Producer model name.
    pub model: String,
    /// Items/s when isolated.
    pub isolated: f64,
    /// Items/s while donating memory.
    pub shared: f64,
}

impl SharingPoint {
    /// Fractional throughput loss from sharing.
    pub fn impact(&self) -> f64 {
        1.0 - self.shared / self.isolated
    }
}

/// Measures producer throughput with and without a donation (Figure 3b).
pub fn run_sharing(batches: usize) -> Vec<SharingPoint> {
    let models = [
        zoo::stable_diffusion(),
        zoo::stable_diffusion_xl(),
        zoo::kandinsky(),
        zoo::musicgen(),
        zoo::audiogen(),
    ];
    models
        .iter()
        .map(|m| {
            let mut isolated = producer_engine(m);
            let mut shared = producer_engine(m);
            let donated = shared.donate(20 << 30);
            assert!(donated > 0);
            let throughput = |e: &mut aqua_engines::producer::ProducerEngine| {
                let mut id = 0u64;
                let mut now = SimTime::ZERO;
                for _ in 0..batches {
                    for _ in 0..64 {
                        e.submit(InferenceRequest::item(id), now);
                        id += 1;
                    }
                    now = e.step(now);
                }
                e.items_served() as f64 / now.as_secs_f64()
            };
            SharingPoint {
                model: m.name.clone(),
                isolated: throughput(&mut isolated),
                shared: throughput(&mut shared),
            }
        })
        .collect()
}

/// Renders Figure 3a.
pub fn bandwidth_table(points: &[BandwidthPoint]) -> Table {
    let mut t = Table::new(
        "Figure 3a: effective bandwidth vs buffer size (2x A100, NVLink)",
        &["buffer", "nvlink_gbps", "pcie_gbps"],
    );
    for p in points {
        let label = if p.bytes >= 1 << 20 {
            format!("{}MiB", p.bytes >> 20)
        } else {
            format!("{}KiB", p.bytes >> 10)
        };
        t.row(&[
            label,
            format!("{:.1}", p.nvlink / 1e9),
            format!("{:.1}", p.pcie / 1e9),
        ]);
    }
    t
}

/// Renders Figure 3b.
pub fn sharing_table(points: &[SharingPoint]) -> Table {
    let mut t = Table::new(
        "Figure 3b: producer throughput, Shared vs Isolated",
        &["model", "isolated_items_s", "shared_items_s", "impact_pct"],
    );
    for p in points {
        t.row(&[
            p.model.clone(),
            format!("{:.3}", p.isolated),
            format!("{:.3}", p.shared),
            format!("{:.1}", 100.0 * p.impact()),
        ]);
    }
    t
}

/// Default buffer-size sweep: 4 KiB to 1 GiB.
pub fn default_sizes() -> Vec<u64> {
    (12..=30).map(|e| 1u64 << e).collect()
}

/// Convenience: GIB export for binaries.
pub fn gib_f64(bytes: u64) -> f64 {
    bytes as f64 / GIB
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_curve_matches_figure_3a() {
        let pts = run_bandwidth(&default_sizes());
        let at = |bytes: u64| pts.iter().find(|p| p.bytes == bytes).unwrap();
        // 2 MiB → ~100 GB/s.
        let two_mib = at(2 << 20);
        assert!((80e9..120e9).contains(&two_mib.nvlink));
        // Large buffers → ~250 GB/s, 10x PCIe.
        let big = at(1 << 30);
        assert!(big.nvlink > 240e9);
        assert!(big.nvlink / big.pcie > 8.0);
        // Small buffers → PCIe-class.
        let small = at(1 << 16);
        assert!(small.nvlink < 12e9, "64 KiB NVLink {:.2e}", small.nvlink);
    }

    #[test]
    fn sharing_impact_under_five_percent() {
        for p in run_sharing(3) {
            assert!(
                p.impact() < 0.05,
                "{}: sharing impact {:.3}",
                p.model,
                p.impact()
            );
            assert!(p.impact() >= 0.0, "sharing never speeds things up");
        }
    }

    #[test]
    fn tables_render() {
        assert!(!bandwidth_table(&run_bandwidth(&default_sizes())).is_empty());
        assert!(!sharing_table(&run_sharing(2)).is_empty());
    }
}
