//! Figure 13 / §8 — long-term responsiveness for a chatbot.
//!
//! 25 simulated users converse with Codellama-34B (colocated with
//! Kandinsky) for several turns; each user re-prompts after a think time.
//! The same closed-loop trace runs against vLLM, vLLM+CFS(DRAM) and AQUA.
//! The paper's findings: CFS without AQUA inflates RCT ~1.5×; AQUA stays
//! within ~20% of vLLM in the worst case while preserving CFS's
//! responsiveness — and the per-turn pattern produces the saw-tooth.

use crate::fig09_cfs::{attach_producers, ProducerChoice};
use crate::setup::{codellama_cfs, codellama_vllm, OffloadKind, ServerCtx};
use aqua_engines::driver::{Driver, Engine};
use aqua_metrics::requests::{RequestLog, RequestRecord};
use aqua_metrics::table::Table;
use aqua_sim::time::{SimDuration, SimTime};
use aqua_workloads::chat::ChatWorkload;

/// One system's closed-loop outcome.
#[derive(Debug)]
pub struct ChatOutcome {
    /// System label.
    pub system: String,
    /// All completed requests across turns, in completion order.
    pub log: RequestLog,
    /// Mean RCT per turn (the saw-tooth heights).
    pub per_turn_rct: Vec<f64>,
}

/// Result across the three systems.
#[derive(Debug)]
pub struct Fig13Result {
    /// Outcomes for `vllm`, `vllm+cfs`, `aqua`.
    pub outcomes: Vec<ChatOutcome>,
}

impl Fig13Result {
    /// Outcome of one system.
    pub fn of(&self, system: &str) -> &ChatOutcome {
        self.outcomes
            .iter()
            .find(|o| o.system == system)
            .unwrap_or_else(|| panic!("system {system} missing"))
    }
}

/// Drives one engine through the closed-loop chat, returning per-turn logs.
fn run_closed_loop(
    engine: &mut dyn Engine,
    mut producers: Vec<Box<dyn Engine>>,
    mut driver: Driver,
    users: usize,
    turns: usize,
    seed: u64,
) -> (RequestLog, Vec<f64>) {
    // Mean think time of 1 s keeps the 25 users concurrent enough to
    // pressure the KV pool (the paper's point about repeat users).
    let mut chat = ChatWorkload::new(users, turns, 1.0, seed);
    let mut log = RequestLog::new();
    let mut per_turn = Vec::new();
    let mut wave = chat.first_turn();
    let mut horizon = SimTime::ZERO;

    loop {
        driver.schedule_trace(0, wave.clone());
        let wave_max = wave.iter().map(|(t, _)| *t).max().unwrap_or(horizon);
        horizon = wave_max + SimDuration::from_secs(3_600);
        // Run until this turn's requests all complete.
        let mut turn_records: Vec<RequestRecord> = Vec::new();
        let mut t = wave_max;
        while turn_records.len() < wave.len() && t < horizon {
            t += SimDuration::from_secs(5);
            {
                let mut engines: Vec<&mut dyn Engine> = vec![&mut *engine];
                for p in producers.iter_mut() {
                    engines.push(p.as_mut());
                }
                driver.run(&mut engines, t);
            }
            turn_records.extend(engine.drain_completions());
        }
        assert_eq!(
            turn_records.len(),
            wave.len(),
            "turn did not drain within the horizon"
        );
        let mean_rct =
            turn_records.iter().map(RequestRecord::rct).sum::<f64>() / turn_records.len() as f64;
        per_turn.push(mean_rct);
        log.extend(turn_records.iter().copied());
        match chat.next_turn(&turn_records) {
            Some(next) => wave = next,
            None => break,
        }
    }
    (log, per_turn)
}

/// Runs the chat workload for all three systems.
pub fn run(users: usize, turns: usize, seed: u64) -> Fig13Result {
    // Codellama-34B leaves little HBM after its 68 GB of weights; growing
    // chat histories overflow this pool from turn 2 on.
    let pool = 1 << 30;
    let mut outcomes = Vec::new();

    // vLLM.
    {
        let mut engine = codellama_vllm(pool);
        let (log, per_turn) =
            run_closed_loop(&mut engine, Vec::new(), Driver::new(), users, turns, seed);
        outcomes.push(ChatOutcome {
            system: "vllm".to_owned(),
            log,
            per_turn_rct: per_turn,
        });
    }

    for (name, kind) in [
        ("vllm+cfs", OffloadKind::DramScattered),
        ("aqua", OffloadKind::Aqua),
    ] {
        let ctx = ServerCtx::two_gpu();
        let mut driver = Driver::new();
        let producers = if kind == OffloadKind::Aqua {
            attach_producers(&ctx, &mut driver, ProducerChoice::Kandinsky, 1_200, 1, seed)
        } else {
            Vec::new()
        };
        let mut engine = codellama_cfs(&ctx, kind, pool, 8);
        let (log, per_turn) = run_closed_loop(&mut engine, producers, driver, users, turns, seed);
        outcomes.push(ChatOutcome {
            system: name.to_owned(),
            log,
            per_turn_rct: per_turn,
        });
    }
    Fig13Result { outcomes }
}

/// Renders the per-turn saw-tooth and the overall summary.
pub fn table(result: &Fig13Result) -> Table {
    let turns = result.outcomes[0].per_turn_rct.len();
    let mut headers: Vec<String> = vec!["system".into(), "rct_p50_s".into(), "rct_max_s".into()];
    for t in 0..turns {
        headers.push(format!("turn{}_mean_rct_s", t + 1));
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut tbl = Table::new(
        "Figure 13: responsive chat on Codellama-34B (25 users, saw-tooth per turn)",
        &header_refs,
    );
    for o in &result.outcomes {
        let s = o.log.rct_summary();
        let mut row = vec![
            o.system.clone(),
            format!("{:.3}", s.p50),
            format!("{:.3}", s.max),
        ];
        for v in &o.per_turn_rct {
            row.push(format!("{v:.3}"));
        }
        tbl.row(&row);
    }
    tbl
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chat_shape_holds_small() {
        // Scaled down to 2 turns; the paper's 25 users so the growing
        // histories overflow the KV pool and force context switching.
        let r = run(25, 2, 31);
        let vllm = r.of("vllm");
        let cfs = r.of("vllm+cfs");
        let aqua = r.of("aqua");
        assert_eq!(vllm.log.len(), 50);
        assert_eq!(cfs.log.len(), 50);
        assert_eq!(aqua.log.len(), 50);
        assert_eq!(vllm.per_turn_rct.len(), 2);

        // CFS-over-DRAM pays more than AQUA relative to vLLM. Compare mean
        // RCTs rather than the pooled p50: a 2-turn run pools two RCT
        // populations of 25 (cheap first turn, pool-overflowing second
        // turn), so the pooled median sits on the boundary between the two
        // modes and which side it lands on is sampling noise, not a
        // performance signal. The mean — and every per-turn mean — ranks
        // the systems the way Figure 13 does at all scales.
        let mean =
            |o: &ChatOutcome| o.per_turn_rct.iter().sum::<f64>() / o.per_turn_rct.len() as f64;
        let cfs_overhead = mean(cfs) / mean(vllm);
        let aqua_overhead = mean(aqua) / mean(vllm);
        assert!(
            aqua_overhead < cfs_overhead,
            "aqua {aqua_overhead:.2} vs cfs {cfs_overhead:.2}"
        );
        for (turn, (a, c)) in aqua.per_turn_rct.iter().zip(&cfs.per_turn_rct).enumerate() {
            assert!(
                a < c,
                "turn {}: aqua mean {a:.2}s vs cfs mean {c:.2}s",
                turn + 1
            );
        }
        assert!(!table(&r).is_empty());
    }
}
