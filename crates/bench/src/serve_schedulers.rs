//! The gateway scheduler study (`aqua-repro serve`).
//!
//! A Codellama-34B [`GatewayEngine`] serves the standard three-tenant mix
//! (interactive chat, code summarization, a long-prompt batch backlog) on a
//! deliberately tight KV pool, once per scheduling policy in the zoo:
//!
//! * **fcfs** — vLLM's arrival order; the batch backlog heads the queue
//!   and interactive TTFT collapses at high load.
//! * **sjf** — shortest remaining output first.
//! * **sjf+bucket** — SJF quantized into length buckets; ties break FCFS,
//!   so short interactive turns leapfrog the backlog without reordering
//!   each other.
//! * **sjf+aging** — SJF with starvation aging (waiting > 60 s promotes to
//!   the head).
//! * **orca** — an Orca-style learned remaining-length predictor.
//!
//! Every policy is crossed with the offload axis: `recompute` discards
//! preempted KV (vLLM default), `aqua` swaps it to a peer GPU over NVLink.
//! TTFT *and* inter-token latency percentiles come from the gateway's
//! per-request [`StreamLog`], not just request completion times.
//!
//! [`GatewayEngine`]: aqua_gateway::engine::GatewayEngine
//! [`StreamLog`]: aqua_metrics::streaming::StreamLog

use crate::setup::{OffloadKind, ServerCtx};
use aqua_engines::driver::{Driver, Engine};
use aqua_engines::vllm::PreemptionPolicy;
use aqua_gateway::engine::{GatewayConfig, GatewayEngine};
use aqua_gateway::scheduler::PolicyKind;
use aqua_metrics::streaming::StreamLog;
use aqua_metrics::table::Table;
use aqua_models::zoo;
use aqua_sim::gpu::{GpuId, GpuSpec};
use aqua_sim::link::bytes::gib;
use aqua_sim::time::SimTime;
use aqua_telemetry::SharedTracer;
use aqua_workloads::tenants::{tenant_trace, TENANT_CHAT};

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct ServeExperiment {
    /// Chat-tenant request rate, req/s (the other tenants scale from it).
    pub rate: f64,
    /// Chat-tenant request count.
    pub count: usize,
    /// Workload seed.
    pub seed: u64,
    /// Consumer KV pool bytes. The default (3 GiB) fits one of the batch
    /// tenant's 8k-token contexts plus a dozen interactive turns — tight
    /// enough that admission order decides interactive TTFT and decode
    /// growth forces preemption, while every request still fits alone.
    pub pool_bytes: u64,
    /// Per-tenant cap on admitted-but-unfinished requests.
    pub max_outstanding: usize,
}

impl ServeExperiment {
    /// The standard configuration at a given chat rate.
    pub fn at_rate(rate: f64, count: usize, seed: u64) -> Self {
        ServeExperiment {
            rate,
            count,
            seed,
            pool_bytes: gib(3),
            max_outstanding: 8,
        }
    }

    /// Simulation horizon: generous slack past the last arrival.
    pub fn horizon(&self) -> SimTime {
        SimTime::from_secs((self.count as f64 / self.rate) as u64 + 3_600)
    }
}

/// The request rates the serve table reports (chat req/s).
pub const LOAD_RATES: [f64; 2] = [1.0, 3.0];

/// One `(policy, offload)` cell of the study.
#[derive(Debug)]
pub struct ServeRun {
    /// The scheduling policy.
    pub policy: PolicyKind,
    /// Whether preempted KV swapped to a peer GPU (vs recompute).
    pub offload: bool,
    /// Per-request token-delivery streams.
    pub streams: StreamLog,
    /// Mid-decode preemptions.
    pub preemptions: u64,
    /// KV bytes moved by swap preemption.
    pub swapped_bytes: u64,
}

impl ServeRun {
    /// Display label for the offload axis.
    pub fn mode(&self) -> &'static str {
        if self.offload {
            "aqua"
        } else {
            "recompute"
        }
    }
}

/// All policies crossed with both offload modes at one load level.
#[derive(Debug)]
pub struct ServeResult {
    /// Chat rate this result was measured at.
    pub rate: f64,
    /// One run per `(policy, offload)` pair.
    pub runs: Vec<ServeRun>,
}

impl ServeResult {
    /// The run for one `(policy, offload)` cell.
    pub fn run_of(&self, policy: PolicyKind, offload: bool) -> &ServeRun {
        self.runs
            .iter()
            .find(|r| r.policy == policy && r.offload == offload)
            .unwrap_or_else(|| panic!("no run for {policy}/{offload}"))
    }

    /// Interactive-tenant P99 TTFT (seconds) for one cell — the SLO the
    /// policy zoo competes on.
    pub fn chat_ttft_p99(&self, policy: PolicyKind, offload: bool) -> f64 {
        self.run_of(policy, offload)
            .streams
            .tenant(TENANT_CHAT)
            .ttft_summary()
            .p99
    }
}

/// Runs one `(policy, offload)` cell with the process tracer.
pub fn run_policy(cfg: &ServeExperiment, policy: PolicyKind, offload: bool) -> ServeRun {
    run_policy_traced(cfg, policy, offload, crate::trace::tracer())
}

/// Runs one `(policy, offload)` cell, journalling every lifecycle event
/// into `tracer`. Same-seed runs journal byte-identical streams — the
/// property `aqua-repro serve --smoke` and `tests/determinism.rs` pin.
pub fn run_policy_traced(
    cfg: &ServeExperiment,
    policy: PolicyKind,
    offload: bool,
    tracer: SharedTracer,
) -> ServeRun {
    let mix = tenant_trace(cfg.rate, cfg.count, cfg.seed);
    let geom = *zoo::codellama_34b().llm_geometry().unwrap();
    let mode = if offload { "aqua" } else { "recompute" };
    let mut engine = GatewayEngine::new(
        geom,
        GpuSpec::a100_80g(),
        policy,
        GatewayConfig {
            kv_pool_bytes: cfg.pool_bytes,
            preemption: if offload {
                PreemptionPolicy::Swap
            } else {
                PreemptionPolicy::Recompute
            },
            max_outstanding_per_tenant: cfg.max_outstanding,
            ..GatewayConfig::default()
        },
    )
    .with_tenants(mix.tenant_of.clone())
    .with_tracer(tracer.clone(), format!("gateway:{policy}:{mode}"));
    if offload {
        // The serving GPU pages preempted KV to its idle NVLink peer.
        let ctx = ServerCtx::two_gpu_traced(tracer);
        ctx.static_lease(GpuId(1), gib(30));
        engine = engine.with_offloader(ctx.offloader(OffloadKind::Aqua, GpuId(0)));
    }
    let mut driver = Driver::new();
    driver.schedule_trace(0, mix.trace);
    {
        let mut engines: Vec<&mut dyn Engine> = vec![&mut engine];
        driver.run(&mut engines, cfg.horizon());
    }
    ServeRun {
        policy,
        offload,
        streams: engine.drain_streams(),
        preemptions: engine.preemptions(),
        swapped_bytes: engine.swapped_bytes_total(),
    }
}

/// Runs the full policy zoo crossed with both offload modes.
pub fn run(cfg: &ServeExperiment) -> ServeResult {
    let mut runs = Vec::new();
    for policy in PolicyKind::ALL {
        for offload in [false, true] {
            runs.push(run_policy(cfg, policy, offload));
        }
    }
    ServeResult {
        rate: cfg.rate,
        runs,
    }
}

/// Renders runs as the serve SLO table: TTFT percentiles over the
/// interactive chat tenant (the SLO the policies compete on — batch jobs
/// have no TTFT target), inter-token latency over every stream.
pub fn table(runs: &[ServeRun], title: &str) -> Table {
    let mut t = Table::new(
        title,
        &[
            "policy",
            "offload",
            "n",
            "chat_ttft_p50_s",
            "chat_ttft_p99_s",
            "itl_p50_ms",
            "itl_p99_ms",
            "preempt",
        ],
    );
    for run in runs {
        let ttft = run.streams.tenant(TENANT_CHAT).ttft_summary();
        let itl = run.streams.itl_summary();
        t.row(&[
            run.policy.name().to_owned(),
            run.mode().to_owned(),
            run.streams.len().to_string(),
            format!("{:.3}", ttft.p50),
            format!("{:.3}", ttft.p99),
            format!("{:.2}", itl.p50 * 1e3),
            format!("{:.2}", itl.p99 * 1e3),
            run.preemptions.to_string(),
        ]);
    }
    t
}

/// The `aqua-repro` decomposition: one sweep point per policy × load level,
/// each crossing offload off/on.
pub fn repro_points(a: &crate::runner::ReproArgs) -> Vec<crate::runner::ReproPoint> {
    let (count, seed) = (a.count, a.seed);
    let mut points = Vec::new();
    for &rate in &LOAD_RATES {
        for policy in PolicyKind::ALL {
            points.push(
                crate::runner::ReproPoint::new(
                    "serve",
                    format!("rate={rate},policy={policy}"),
                    move || {
                        let cfg = ServeExperiment::at_rate(rate, count, seed);
                        let runs = [false, true].map(|off| run_policy(&cfg, policy, off));
                        format!(
                            "{}\n",
                            table(&runs, &format!("Serve `{policy}` at {rate} req/s"))
                        )
                    },
                )
                // Wall scales with the request count, which scales with rate.
                .with_cost_hint(5 * rate as u64),
            );
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_cell_serves_the_whole_mix() {
        let cfg = ServeExperiment::at_rate(4.0, 32, 7);
        let expected = tenant_trace(cfg.rate, cfg.count, cfg.seed).trace.len();
        let r = run(&cfg);
        assert_eq!(r.runs.len(), PolicyKind::ALL.len() * 2);
        for run in &r.runs {
            assert_eq!(
                run.streams.len(),
                expected,
                "{}/{} dropped requests",
                run.policy,
                run.mode()
            );
            assert!(run.streams.ttft_summary().p99 > 0.0);
            if run.offload {
                assert_eq!(run.swapped_bytes > 0, run.preemptions > 0);
            }
        }
        assert!(!table(&r.runs, "serve test").is_empty());
    }

    #[test]
    fn bucketed_sjf_beats_fcfs_tail_at_high_load() {
        // The headline claim: at high load the batch backlog heads FCFS's
        // queue and interactive P99 TTFT collapses; length bucketing lets
        // short turns leapfrog it.
        let cfg = ServeExperiment::at_rate(LOAD_RATES[1], 96, 3);
        let fcfs = run_policy(&cfg, PolicyKind::Fcfs, false);
        let bucket = run_policy(&cfg, PolicyKind::SjfBucket, false);
        let f = fcfs.streams.tenant(TENANT_CHAT).ttft_summary().p99;
        let b = bucket.streams.tenant(TENANT_CHAT).ttft_summary().p99;
        assert!(
            b < f,
            "sjf+bucket chat P99 TTFT {b:.2}s must beat fcfs {f:.2}s"
        );
    }

    #[test]
    fn serve_runs_are_seed_deterministic() {
        let cfg = ServeExperiment::at_rate(4.0, 24, 5);
        let a = run_policy(&cfg, PolicyKind::Orca, true);
        let b = run_policy(&cfg, PolicyKind::Orca, true);
        assert_eq!(a.streams.ttfts(), b.streams.ttfts());
        assert_eq!(a.streams.itls(), b.streams.itls());
        assert_eq!(a.preemptions, b.preemptions);
        assert_eq!(a.swapped_bytes, b.swapped_bytes);
    }
}
