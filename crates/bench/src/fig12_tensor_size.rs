//! Figure 12 — AQUA's benefit grows with offloaded-tensor size.
//!
//! 200 synthesized adapters at a fixed size (160 MB or 320 MB), 200 prompts
//! at 10 req/s, **each prompt assigned a different adapter** (guaranteed
//! cache misses), 10 GB reserved for the GPU adapter cache. The larger
//! adapter moves more bytes for the same compute, so AQUA's faster loads
//! save more — "AQUA benefits workloads that need larger I/O more".

use crate::setup::{mistral_lora_vllm, OffloadKind, ServerCtx};
use aqua_engines::driver::{Driver, Engine};
use aqua_engines::request::InferenceRequest;
use aqua_metrics::requests::RequestLog;
use aqua_metrics::table::Table;
use aqua_models::lora::LoraAdapter;
use aqua_sim::gpu::GpuId;
use aqua_sim::link::bytes::{gib, mib};
use aqua_sim::time::SimTime;
use aqua_workloads::sampling::Sampler;

/// Result for one adapter size: baseline and AQUA logs.
#[derive(Debug)]
pub struct Fig12Result {
    /// Adapter size in bytes.
    pub adapter_bytes: u64,
    /// Baseline (DRAM per-tensor loads) log.
    pub baseline: RequestLog,
    /// AQUA log.
    pub aqua: RequestLog,
}

impl Fig12Result {
    /// Median-RCT improvement factor.
    pub fn p50_improvement(&self) -> f64 {
        self.baseline.rct_summary().p50 / self.aqua.rct_summary().p50
    }
}

fn trace(count: usize, rate: f64, seed: u64) -> Vec<(SimTime, InferenceRequest)> {
    let mut s = Sampler::new(seed);
    s.poisson_arrivals(SimTime::ZERO, rate, count)
        .into_iter()
        .enumerate()
        .map(|(i, at)| {
            let prompt = s.token_count(5.0, 0.8, 16, 1024);
            let output = s.token_count(4.2, 0.7, 8, 256);
            // Each prompt gets its own adapter: guaranteed miss.
            (
                at,
                InferenceRequest::with_adapter(i as u64, prompt, output, i),
            )
        })
        .collect()
}

/// Runs the experiment for one adapter size.
pub fn run(adapter_bytes: u64, count: usize, rate: f64, seed: u64) -> Fig12Result {
    let cache_slots = (gib(10) / adapter_bytes) as usize;
    let pool: Vec<LoraAdapter> = (0..count)
        .map(|i| LoraAdapter::sized_like_mistral(format!("syn-{i}"), adapter_bytes))
        .collect();
    let trace = trace(count, rate, seed);

    let run_one = |kind: OffloadKind| -> RequestLog {
        let ctx = ServerCtx::two_gpu();
        if kind == OffloadKind::Aqua {
            // StableDiffusion producer: lease covers the adapter pool.
            ctx.static_lease(GpuId(1), (adapter_bytes * count as u64) + gib(2));
        }
        let mut engine = mistral_lora_vllm(&ctx, kind, pool.clone(), cache_slots);
        let mut driver = Driver::new();
        driver.schedule_trace(0, trace.clone());
        let mut engines: Vec<&mut dyn Engine> = vec![&mut engine];
        driver.run(&mut engines, SimTime::from_secs(3_600));
        engine.drain_completions().into_iter().collect()
    };

    Fig12Result {
        adapter_bytes,
        baseline: run_one(OffloadKind::DramPageable),
        aqua: run_one(OffloadKind::Aqua),
    }
}

/// Renders the per-size comparison.
pub fn table(results: &[Fig12Result]) -> Table {
    let mut t = Table::new(
        "Figure 12: AQUA benefit vs offloaded tensor size (200 adapters, 10 req/s)",
        &[
            "adapter_mb",
            "baseline_rct_p50_s",
            "aqua_rct_p50_s",
            "improvement",
        ],
    );
    for r in results {
        t.row(&[
            (r.adapter_bytes >> 20).to_string(),
            format!("{:.3}", r.baseline.rct_summary().p50),
            format!("{:.3}", r.aqua.rct_summary().p50),
            format!("{:.2}x", r.p50_improvement()),
        ]);
    }
    t
}

/// The paper's two sizes.
pub fn paper_sizes() -> [u64; 2] {
    [mib(160), mib(320)]
}

/// The `aqua-repro` decomposition: one sweep point per adapter size.
pub fn repro_points(a: &crate::runner::ReproArgs) -> Vec<crate::runner::ReproPoint> {
    let (count, seed) = (a.count, a.seed);
    paper_sizes()
        .iter()
        .map(|&bytes| {
            crate::runner::ReproPoint::new("fig12", format!("bytes={bytes}"), move || {
                let r = run(bytes, count, 10.0, seed);
                format!("{}\n", table(std::slice::from_ref(&r)))
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn larger_adapters_benefit_more() {
        let small = run(mib(160), 60, 10.0, 21);
        let large = run(mib(320), 60, 10.0, 21);
        assert!(small.baseline.len() >= 55);
        assert!(large.aqua.len() >= 55);
        let si = small.p50_improvement();
        let li = large.p50_improvement();
        assert!(si > 1.05, "160 MB improvement {si:.2}");
        assert!(li > si, "320 MB ({li:.2}x) should beat 160 MB ({si:.2}x)");
        assert!(!table(&[small, large]).is_empty());
    }
}
