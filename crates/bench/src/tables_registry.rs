//! Tables 1–3 — the evaluation's model/workload inventory.
//!
//! | Table | Contents |
//! |---|---|
//! | 1 | LLM inference jobs with a GPU memory deficit (consumers) |
//! | 2 | LLM inference jobs with excess GPU memory (LLM producers) |
//! | 3 | Image and audio inference jobs (always producers) |

use aqua_metrics::table::Table;
use aqua_models::zoo::{self, ResourceBound};

/// Renders Table 1: consumer workloads.
pub fn table1() -> Table {
    let mut t = Table::new(
        "Table 1: LLM inference jobs with GPU memory deficit (consumers)",
        &["model", "workload", "serving_engine"],
    );
    t.row(&[
        "OPT-30B".into(),
        "Long-prompt inference".into(),
        "FlexGen".into(),
    ]);
    t.row(&["Mistral-7B".into(), "LoRA adapters".into(), "vLLM".into()]);
    t.row(&[
        "Codellama-34B".into(),
        "Code summary".into(),
        "vLLM + CFS".into(),
    ]);
    t
}

/// Renders Table 2: LLM producer workloads.
pub fn table2() -> Table {
    let mut t = Table::new(
        "Table 2: LLM inference jobs with excess GPU memory (producers)",
        &["model", "workload", "serving_engine"],
    );
    t.row(&["Mistral-7B".into(), "ShareGPT".into(), "vLLM".into()]);
    t.row(&["Llama-2-13B".into(), "ShareGPT".into(), "vLLM".into()]);
    t
}

/// Renders Table 3: image/audio producer workloads.
pub fn table3() -> Table {
    let mut t = Table::new(
        "Table 3: image and audio inference jobs (memory producers)",
        &["models", "workload", "serving_engine"],
    );
    t.row(&[
        "SD, SD-XL, Kandinsky".into(),
        "Parti prompts".into(),
        "Diffusers".into(),
    ]);
    t.row(&[
        "MusicGen, AudioGen".into(),
        "Audio descriptions".into(),
        "PyTorch".into(),
    ]);
    t
}

/// A derived inventory: every zoo model with its resource classification
/// and the HBM its weights pin — the facts Tables 1–3 rest on.
pub fn model_inventory() -> Table {
    let mut t = Table::new(
        "Model inventory (derived from published geometry)",
        &[
            "model",
            "modality",
            "bound",
            "weights_gib",
            "kv_mb_per_token",
        ],
    );
    for m in zoo::all_models() {
        let bound = match m.resource_bound() {
            ResourceBound::MemoryBound => "memory-bound",
            ResourceBound::ComputeBound => "compute-bound",
        };
        let kv = m
            .llm_geometry()
            .map(|g| format!("{:.2}", g.kv_bytes_per_token() as f64 / (1 << 20) as f64))
            .unwrap_or_else(|| "-".to_owned());
        t.row(&[
            m.name.clone(),
            format!("{:?}", m.modality()),
            bound.to_owned(),
            format!("{:.1}", m.weights_bytes() as f64 / (1u64 << 30) as f64),
            kv,
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_cover_the_paper_inventory() {
        assert_eq!(table1().len(), 3);
        assert_eq!(table2().len(), 2);
        assert_eq!(table3().len(), 2);
        let inv = model_inventory();
        assert_eq!(inv.len(), 9);
        let text = inv.to_string();
        assert!(text.contains("OPT-30B"));
        assert!(text.contains("memory-bound"));
        assert!(text.contains("compute-bound"));
    }
}
