//! Per-token streaming delivery records — the serving-gateway view of a
//! request.
//!
//! The figure harnesses summarize a request by two timestamps (first and
//! last token, [`crate::requests::RequestRecord`]); a serving front-end
//! additionally cares *when every token* reached the client, because the
//! user-visible SLOs are TTFT and inter-token latency (ITL). [`TokenStream`]
//! keeps the full delivery timeline of one request and [`StreamLog`]
//! aggregates streams into P50/P99 TTFT and ITL summaries.

use crate::latency::Summary;
use crate::requests::RequestRecord;
use aqua_sim::time::SimTime;
use serde::{Deserialize, Serialize};

/// The token-delivery timeline of one request served by a gateway.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TokenStream {
    /// Request identifier.
    pub id: u64,
    /// Tenant the request belongs to.
    pub tenant: u32,
    /// When the request entered the gateway.
    pub arrival: SimTime,
    /// Delivery time of every output token, in order (never empty for a
    /// completed stream).
    pub tokens: Vec<SimTime>,
}

impl TokenStream {
    /// Time to first token, seconds. `None` when the stream delivered no
    /// tokens (a request cancelled, shed or aborted before its first token).
    pub fn ttft(&self) -> Option<f64> {
        self.tokens
            .first()
            .map(|t| t.duration_since(self.arrival).as_secs_f64())
    }

    /// When the last token was delivered, or `None` for a tokenless stream.
    pub fn completion(&self) -> Option<SimTime> {
        self.tokens.last().copied()
    }

    /// Gaps between consecutive token deliveries, seconds. Empty for a
    /// single-token (or tokenless) stream.
    pub fn itl_samples(&self) -> Vec<f64> {
        self.tokens
            .windows(2)
            .map(|w| w[1].duration_since(w[0]).as_secs_f64())
            .collect()
    }

    /// Collapses the stream to the two-timestamp record the figure
    /// harnesses consume. `None` for a tokenless stream, which has no
    /// first-token or completion timestamp to report.
    pub fn record(&self) -> Option<RequestRecord> {
        Some(RequestRecord {
            id: self.id,
            arrival: self.arrival,
            first_token: *self.tokens.first()?,
            completion: self.completion()?,
            output_tokens: self.tokens.len() as u64,
        })
    }
}

/// A log of completed token streams with SLO-oriented accessors.
///
/// # Example
///
/// ```
/// use aqua_metrics::streaming::{StreamLog, TokenStream};
/// use aqua_sim::time::SimTime;
///
/// let mut log = StreamLog::new();
/// log.record(TokenStream {
///     id: 0,
///     tenant: 1,
///     arrival: SimTime::ZERO,
///     tokens: vec![SimTime::from_millis(100), SimTime::from_millis(150)],
/// });
/// assert_eq!(log.ttft_summary().p99, 0.1);
/// assert_eq!(log.itl_summary().p50, 0.05);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StreamLog {
    streams: Vec<TokenStream>,
}

impl StreamLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a completed stream.
    pub fn record(&mut self, stream: TokenStream) {
        self.streams.push(stream);
    }

    /// All streams, in recording order.
    pub fn streams(&self) -> &[TokenStream] {
        &self.streams
    }

    /// Number of completed streams.
    pub fn len(&self) -> usize {
        self.streams.len()
    }

    /// Returns `true` if nothing completed.
    pub fn is_empty(&self) -> bool {
        self.streams.is_empty()
    }

    /// TTFT samples in arrival order, seconds. Tokenless streams contribute
    /// no sample.
    pub fn ttfts(&self) -> Vec<f64> {
        let mut by_arrival = self.streams.clone();
        by_arrival.sort_by_key(|s| (s.arrival, s.id));
        by_arrival.iter().filter_map(TokenStream::ttft).collect()
    }

    /// Every inter-token gap across all streams, seconds.
    pub fn itls(&self) -> Vec<f64> {
        let mut by_arrival = self.streams.clone();
        by_arrival.sort_by_key(|s| (s.arrival, s.id));
        by_arrival.iter().flat_map(|s| s.itl_samples()).collect()
    }

    /// Summary statistics over TTFTs (all-zero default when empty).
    pub fn ttft_summary(&self) -> Summary {
        Summary::from_samples(&self.ttfts())
    }

    /// Summary statistics over inter-token latencies.
    pub fn itl_summary(&self) -> Summary {
        Summary::from_samples(&self.itls())
    }

    /// Streams belonging to `tenant` only.
    pub fn tenant(&self, tenant: u32) -> StreamLog {
        StreamLog {
            streams: self
                .streams
                .iter()
                .filter(|s| s.tenant == tenant)
                .cloned()
                .collect(),
        }
    }

    /// Collapses every stream into a [`crate::requests::RequestLog`].
    /// Tokenless streams are skipped — they have no timestamps to collapse.
    pub fn request_log(&self) -> crate::requests::RequestLog {
        self.streams
            .iter()
            .filter_map(TokenStream::record)
            .collect()
    }
}

impl FromIterator<TokenStream> for StreamLog {
    fn from_iter<I: IntoIterator<Item = TokenStream>>(iter: I) -> Self {
        StreamLog {
            streams: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(id: u64, tenant: u32, arrival_ms: u64, token_ms: &[u64]) -> TokenStream {
        TokenStream {
            id,
            tenant,
            arrival: SimTime::from_millis(arrival_ms),
            tokens: token_ms.iter().map(|&t| SimTime::from_millis(t)).collect(),
        }
    }

    #[test]
    fn ttft_itl_and_record() {
        let s = stream(7, 2, 100, &[250, 300, 400]);
        assert!((s.ttft().unwrap() - 0.15).abs() < 1e-9);
        assert_eq!(s.itl_samples(), vec![0.05, 0.1]);
        let r = s.record().unwrap();
        assert_eq!(r.id, 7);
        assert_eq!(r.output_tokens, 3);
        assert_eq!(r.completion, SimTime::from_millis(400));
    }

    #[test]
    fn single_token_stream_has_no_itl() {
        let s = stream(0, 0, 0, &[50]);
        assert!(s.itl_samples().is_empty());
        assert_eq!(s.completion(), Some(SimTime::from_millis(50)));
    }

    #[test]
    fn tokenless_stream_is_total_not_panicking() {
        let s = stream(3, 0, 100, &[]);
        assert_eq!(s.ttft(), None);
        assert_eq!(s.completion(), None);
        assert_eq!(s.record(), None);
        assert!(s.itl_samples().is_empty());

        let mut log = StreamLog::new();
        log.record(s);
        log.record(stream(4, 0, 0, &[50]));
        // The tokenless stream contributes no samples and no record, and
        // percentile queries over the remaining single-token stream are
        // well-defined rather than panicking.
        assert_eq!(log.ttfts(), vec![0.05]);
        assert_eq!(log.ttft_summary().count, 1);
        assert_eq!(log.itl_summary().count, 0);
        assert_eq!(log.request_log().len(), 1);
    }

    #[test]
    fn log_summaries_and_tenant_filter() {
        let mut log = StreamLog::new();
        log.record(stream(1, 0, 0, &[100, 200]));
        log.record(stream(2, 1, 0, &[300, 350]));
        assert_eq!(log.len(), 2);
        assert_eq!(log.itls(), vec![0.1, 0.05]);
        assert_eq!(log.tenant(1).len(), 1);
        assert!((log.tenant(1).ttft_summary().p50 - 0.3).abs() < 1e-9);
        assert_eq!(log.request_log().len(), 2);
    }

    #[test]
    fn empty_log_is_safe() {
        let log = StreamLog::new();
        assert!(log.is_empty());
        assert_eq!(log.ttft_summary().p99, 0.0);
        assert_eq!(log.itl_summary().count, 0);
    }
}
