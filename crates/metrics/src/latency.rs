//! Percentile summaries of latency samples.

use serde::{Deserialize, Serialize};

/// Summary statistics over a set of latency samples (seconds).
///
/// # Example
///
/// ```
/// use aqua_metrics::latency::Summary;
/// let s = Summary::from_samples(&[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(s.p50, 2.5);
/// assert_eq!(s.max, 4.0);
/// assert_eq!(s.count, 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (interpolated).
    pub p50: f64,
    /// 95th percentile (interpolated).
    pub p95: f64,
    /// 99th percentile (interpolated).
    pub p99: f64,
    /// Minimum sample.
    pub min: f64,
    /// Maximum sample.
    pub max: f64,
}

impl Summary {
    /// Computes a summary; returns the default (all zeros) for empty input.
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Summary::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        Summary {
            count: sorted.len(),
            mean,
            p50: percentile_sorted(&sorted, 50.0),
            p95: percentile_sorted(&sorted, 95.0),
            p99: percentile_sorted(&sorted, 99.0),
            min: sorted[0],
            max: sorted[sorted.len() - 1],
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.3}s p50={:.3}s p95={:.3}s p99={:.3}s max={:.3}s",
            self.count, self.mean, self.p50, self.p95, self.p99, self.max
        )
    }
}

/// Total-function percentile: `None` for an empty slice instead of a panic.
///
/// Summaries over failure-heavy runs (every request shed, zero streams
/// completed) hit the empty case routinely; callers that can render a
/// missing value should use this instead of [`percentile_sorted`].
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]`.
pub fn try_percentile_sorted(sorted: &[f64], p: f64) -> Option<f64> {
    if sorted.is_empty() {
        None
    } else {
        Some(percentile_sorted(sorted, p))
    }
}

/// Linearly interpolated percentile of an ascending-sorted slice.
///
/// # Panics
///
/// Panics if `sorted` is empty or `p` is outside `[0, 100]`.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Sorts samples ascending and returns them — the "sorted RCTs" presentation
/// used by Figures 8, 11 and 12.
pub fn sorted(samples: &[f64]) -> Vec<f64> {
    let mut v = samples.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn summary_of_known_values() {
        let s = Summary::from_samples(&[3.0, 1.0, 2.0]);
        assert_eq!(s.count, 3);
        assert_eq!(s.p50, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!((s.mean - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_summary_is_default() {
        assert_eq!(Summary::from_samples(&[]), Summary::default());
    }

    #[test]
    fn percentile_interpolates() {
        let v = [0.0, 10.0];
        assert_eq!(percentile_sorted(&v, 0.0), 0.0);
        assert_eq!(percentile_sorted(&v, 50.0), 5.0);
        assert_eq!(percentile_sorted(&v, 100.0), 10.0);
        assert_eq!(percentile_sorted(&[7.0], 95.0), 7.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_of_empty_panics() {
        percentile_sorted(&[], 50.0);
    }

    #[test]
    fn display_is_nonempty() {
        let s = Summary::from_samples(&[1.0]);
        assert!(s.to_string().contains("p95"));
    }

    proptest! {
        #[test]
        fn percentiles_are_monotone(mut v in proptest::collection::vec(0.0f64..1e6, 2..100)) {
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let p25 = percentile_sorted(&v, 25.0);
            let p50 = percentile_sorted(&v, 50.0);
            let p95 = percentile_sorted(&v, 95.0);
            prop_assert!(p25 <= p50 + 1e-9);
            prop_assert!(p50 <= p95 + 1e-9);
            prop_assert!(v[0] <= p25 + 1e-9);
            prop_assert!(p95 <= v[v.len() - 1] + 1e-9);
        }

        #[test]
        fn summary_bounds_hold(v in proptest::collection::vec(0.0f64..1e6, 1..200)) {
            let s = Summary::from_samples(&v);
            prop_assert!(s.min <= s.mean + 1e-9);
            prop_assert!(s.mean <= s.max + 1e-9);
            prop_assert!(s.min <= s.p50 + 1e-9 && s.p50 <= s.max + 1e-9);
            prop_assert_eq!(s.count, v.len());
        }

        #[test]
        fn sorted_is_permutation(v in proptest::collection::vec(0.0f64..1e3, 0..50)) {
            let s = sorted(&v);
            prop_assert_eq!(s.len(), v.len());
            prop_assert!(s.windows(2).all(|w| w[0] <= w[1]));
            let sum_a: f64 = v.iter().sum();
            let sum_b: f64 = s.iter().sum();
            prop_assert!((sum_a - sum_b).abs() < 1e-6);
        }
    }
}
