//! Per-request latency records (TTFT and RCT).

use crate::latency::Summary;
use aqua_sim::time::SimTime;
use serde::{Deserialize, Serialize};

/// Lifecycle timestamps of one completed inference request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestRecord {
    /// Opaque request identifier (assigned by the workload generator).
    pub id: u64,
    /// When the request was submitted to the serving engine.
    pub arrival: SimTime,
    /// When the first output token was produced.
    pub first_token: SimTime,
    /// When the last output token was produced.
    pub completion: SimTime,
    /// Number of output tokens generated.
    pub output_tokens: u64,
}

impl RequestRecord {
    /// Time to first token, in seconds — the paper's responsiveness metric.
    pub fn ttft(&self) -> f64 {
        self.first_token.duration_since(self.arrival).as_secs_f64()
    }

    /// Request completion time, in seconds — the paper's throughput metric.
    pub fn rct(&self) -> f64 {
        self.completion.duration_since(self.arrival).as_secs_f64()
    }
}

/// A log of completed requests with summary accessors.
///
/// # Example
///
/// ```
/// use aqua_metrics::requests::{RequestLog, RequestRecord};
/// use aqua_sim::time::SimTime;
///
/// let mut log = RequestLog::new();
/// log.record(RequestRecord {
///     id: 0,
///     arrival: SimTime::ZERO,
///     first_token: SimTime::from_millis(120),
///     completion: SimTime::from_secs(2),
///     output_tokens: 100,
/// });
/// assert_eq!(log.ttfts(), vec![0.12]);
/// assert_eq!(log.total_output_tokens(), 100);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RequestLog {
    records: Vec<RequestRecord>,
}

impl RequestLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a completed request.
    pub fn record(&mut self, rec: RequestRecord) {
        self.records.push(rec);
    }

    /// Appends every record from `other`.
    pub fn extend_from(&mut self, other: &RequestLog) {
        self.records.extend_from_slice(&other.records);
    }

    /// All records, in completion-recording order.
    pub fn records(&self) -> &[RequestRecord] {
        &self.records
    }

    /// Number of completed requests.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if nothing completed.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// TTFT samples in arrival order, seconds.
    pub fn ttfts(&self) -> Vec<f64> {
        let mut by_arrival = self.records.clone();
        by_arrival.sort_by_key(|r| (r.arrival, r.id));
        by_arrival.iter().map(RequestRecord::ttft).collect()
    }

    /// RCT samples in arrival order, seconds.
    pub fn rcts(&self) -> Vec<f64> {
        let mut by_arrival = self.records.clone();
        by_arrival.sort_by_key(|r| (r.arrival, r.id));
        by_arrival.iter().map(RequestRecord::rct).collect()
    }

    /// RCT samples sorted ascending (the Figure 8/11/12 presentation).
    pub fn sorted_rcts(&self) -> Vec<f64> {
        crate::latency::sorted(&self.rcts())
    }

    /// Summary statistics over TTFTs.
    pub fn ttft_summary(&self) -> Summary {
        Summary::from_samples(&self.ttfts())
    }

    /// Summary statistics over RCTs.
    pub fn rct_summary(&self) -> Summary {
        Summary::from_samples(&self.rcts())
    }

    /// Total output tokens across completed requests (the Figure 7/18
    /// throughput count).
    pub fn total_output_tokens(&self) -> u64 {
        self.records.iter().map(|r| r.output_tokens).sum()
    }

    /// Tokens generated up to and including `cutoff`.
    pub fn output_tokens_by(&self, cutoff: SimTime) -> u64 {
        self.records
            .iter()
            .filter(|r| r.completion <= cutoff)
            .map(|r| r.output_tokens)
            .sum()
    }
}

impl FromIterator<RequestRecord> for RequestLog {
    fn from_iter<I: IntoIterator<Item = RequestRecord>>(iter: I) -> Self {
        RequestLog {
            records: iter.into_iter().collect(),
        }
    }
}

impl Extend<RequestRecord> for RequestLog {
    fn extend<I: IntoIterator<Item = RequestRecord>>(&mut self, iter: I) {
        self.records.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, arrival_ms: u64, first_ms: u64, done_ms: u64) -> RequestRecord {
        RequestRecord {
            id,
            arrival: SimTime::from_millis(arrival_ms),
            first_token: SimTime::from_millis(first_ms),
            completion: SimTime::from_millis(done_ms),
            output_tokens: 10,
        }
    }

    #[test]
    fn ttft_and_rct() {
        let r = rec(1, 100, 250, 1100);
        assert!((r.ttft() - 0.15).abs() < 1e-9);
        assert!((r.rct() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn log_orders_by_arrival() {
        let mut log = RequestLog::new();
        log.record(rec(2, 200, 300, 400));
        log.record(rec(1, 100, 500, 600));
        let ttfts = log.ttfts();
        assert!((ttfts[0] - 0.4).abs() < 1e-9, "first arrival first");
        assert!((ttfts[1] - 0.1).abs() < 1e-9);
    }

    #[test]
    fn sorted_rcts_ascend() {
        let log: RequestLog = vec![rec(1, 0, 1, 500), rec(2, 0, 1, 100)]
            .into_iter()
            .collect();
        let s = log.sorted_rcts();
        assert!(s[0] < s[1]);
    }

    #[test]
    fn token_counting_with_cutoff() {
        let mut log = RequestLog::new();
        log.record(rec(1, 0, 10, 1000));
        log.record(rec(2, 0, 10, 3000));
        assert_eq!(log.total_output_tokens(), 20);
        assert_eq!(log.output_tokens_by(SimTime::from_millis(1500)), 10);
        assert_eq!(log.output_tokens_by(SimTime::ZERO), 0);
    }

    #[test]
    fn empty_log_summaries_are_default() {
        let log = RequestLog::new();
        assert!(log.is_empty());
        assert_eq!(log.ttft_summary().count, 0);
        assert_eq!(log.rct_summary().count, 0);
    }

    #[test]
    fn extend_and_merge() {
        let mut a = RequestLog::new();
        a.record(rec(1, 0, 1, 2));
        let b: RequestLog = vec![rec(2, 0, 1, 2)].into_iter().collect();
        a.extend_from(&b);
        a.extend(vec![rec(3, 0, 1, 2)]);
        assert_eq!(a.len(), 3);
    }
}
