//! Goodput — SLO-met tokens per second.
//!
//! Raw throughput hides overload collapse: an engine can keep emitting
//! tokens while every interactive request blows its deadline. *Goodput*
//! counts only the tokens of streams that met their tenant's SLO, so a
//! front door that protects chat latency under a 4× batch storm shows a
//! plateau where an unprotected FCFS queue shows a cliff. The `serve_chaos`
//! experiment in `aqua-bench` reports this metric per tenant and load.

use crate::streaming::{StreamLog, TokenStream};

/// The service-level objective a stream is judged against.
///
/// Deadlines are expressed in seconds relative to the request's arrival.
/// A `None` bound is unconstrained; [`SloSpec::none`] (both unconstrained)
/// accepts every completed stream, which is the right reading for batch
/// tenants whose tokens all count as useful work.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SloSpec {
    /// Maximum time to first token, seconds.
    pub ttft_s: Option<f64>,
    /// Maximum total latency (arrival to last token), seconds.
    pub total_s: Option<f64>,
}

impl SloSpec {
    /// No deadlines: every stream with at least one token meets the SLO.
    pub fn none() -> Self {
        Self::default()
    }

    /// An interactive SLO bounding only TTFT.
    pub fn ttft(ttft_s: f64) -> Self {
        SloSpec {
            ttft_s: Some(ttft_s),
            total_s: None,
        }
    }

    /// An interactive SLO bounding both TTFT and total latency.
    pub fn interactive(ttft_s: f64, total_s: f64) -> Self {
        SloSpec {
            ttft_s: Some(ttft_s),
            total_s: Some(total_s),
        }
    }

    /// Whether `stream` met this SLO. Tokenless streams never do — they
    /// delivered nothing to a client.
    pub fn met_by(&self, stream: &TokenStream) -> bool {
        let Some(ttft) = stream.ttft() else {
            return false;
        };
        let Some(completion) = stream.completion() else {
            return false;
        };
        if let Some(bound) = self.ttft_s {
            if ttft > bound {
                return false;
            }
        }
        if let Some(bound) = self.total_s {
            if completion.duration_since(stream.arrival).as_secs_f64() > bound {
                return false;
            }
        }
        true
    }
}

/// Goodput over a [`StreamLog`]: how many streams met the SLO and how many
/// of the delivered tokens were SLO-met, normalized by a measurement
/// horizon.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GoodputReport {
    /// Completed streams examined.
    pub streams: usize,
    /// Streams that met the SLO.
    pub slo_met_streams: usize,
    /// Tokens delivered across all streams.
    pub total_tokens: u64,
    /// Tokens delivered by SLO-met streams.
    pub goodput_tokens: u64,
    /// Measurement horizon, seconds.
    pub horizon_s: f64,
}

impl GoodputReport {
    /// SLO-met tokens per second (0 for a non-positive horizon).
    pub fn goodput_tps(&self) -> f64 {
        if self.horizon_s > 0.0 {
            self.goodput_tokens as f64 / self.horizon_s
        } else {
            0.0
        }
    }

    /// All delivered tokens per second, SLO-met or not.
    pub fn throughput_tps(&self) -> f64 {
        if self.horizon_s > 0.0 {
            self.total_tokens as f64 / self.horizon_s
        } else {
            0.0
        }
    }

    /// Fraction of streams that met the SLO (0 when no streams completed).
    pub fn slo_attainment(&self) -> f64 {
        if self.streams > 0 {
            self.slo_met_streams as f64 / self.streams as f64
        } else {
            0.0
        }
    }
}

impl StreamLog {
    /// Judges every stream in the log against `slo` and reports goodput
    /// over `horizon_s` seconds.
    pub fn goodput(&self, slo: &SloSpec, horizon_s: f64) -> GoodputReport {
        let mut report = GoodputReport {
            horizon_s,
            ..GoodputReport::default()
        };
        for stream in self.streams() {
            report.streams += 1;
            report.total_tokens += stream.tokens.len() as u64;
            if slo.met_by(stream) {
                report.slo_met_streams += 1;
                report.goodput_tokens += stream.tokens.len() as u64;
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_sim::time::SimTime;

    fn stream(arrival_ms: u64, token_ms: &[u64]) -> TokenStream {
        TokenStream {
            id: arrival_ms,
            tenant: 0,
            arrival: SimTime::from_millis(arrival_ms),
            tokens: token_ms.iter().map(|&t| SimTime::from_millis(t)).collect(),
        }
    }

    #[test]
    fn slo_judgement_covers_both_deadlines() {
        let slo = SloSpec::interactive(0.1, 1.0);
        assert!(slo.met_by(&stream(0, &[50, 900])));
        assert!(!slo.met_by(&stream(0, &[200, 900])), "ttft blown");
        assert!(!slo.met_by(&stream(0, &[50, 1500])), "total blown");
        assert!(SloSpec::none().met_by(&stream(0, &[5000])));
        assert!(!SloSpec::none().met_by(&stream(0, &[])), "tokenless");
    }

    #[test]
    fn goodput_counts_only_met_tokens() {
        let mut log = StreamLog::new();
        log.record(stream(0, &[50, 60, 70]));
        log.record(stream(0, &[500, 600]));
        let r = log.goodput(&SloSpec::ttft(0.1), 10.0);
        assert_eq!(r.streams, 2);
        assert_eq!(r.slo_met_streams, 1);
        assert_eq!(r.total_tokens, 5);
        assert_eq!(r.goodput_tokens, 3);
        assert!((r.goodput_tps() - 0.3).abs() < 1e-12);
        assert!((r.throughput_tps() - 0.5).abs() < 1e-12);
        assert!((r.slo_attainment() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_log_and_zero_horizon_are_safe() {
        let log = StreamLog::new();
        let r = log.goodput(&SloSpec::none(), 0.0);
        assert_eq!(r.goodput_tps(), 0.0);
        assert_eq!(r.throughput_tps(), 0.0);
        assert_eq!(r.slo_attainment(), 0.0);
    }
}
