//! # aqua-metrics — measurement and reporting for the AQUA harness
//!
//! The paper reports two latency metrics throughout §6:
//!
//! * **TTFT** (time to first token) — responsiveness (Figures 1a, 9, 15–17).
//! * **RCT** (request completion time) — throughput (Figures 1b, 8, 11, 13).
//!
//! plus throughput counts (tokens generated in a fixed window, Figures 7,
//! 10b, 18) and free-memory timelines (Figures 2, 10a). This crate provides
//! the recorders, percentile math, time series and plain-text table
//! rendering shared by every figure harness in `aqua-bench`.

pub mod cdf;
pub mod goodput;
pub mod latency;
pub mod requests;
pub mod streaming;
pub mod table;
pub mod timeseries;

pub mod prelude {
    //! Convenience re-exports.
    pub use crate::cdf::Cdf;
    pub use crate::goodput::{GoodputReport, SloSpec};
    pub use crate::latency::Summary;
    pub use crate::requests::{RequestLog, RequestRecord};
    pub use crate::streaming::{StreamLog, TokenStream};
    pub use crate::table::Table;
    pub use crate::timeseries::TimeSeries;
}

pub use prelude::*;
