//! Time series of sampled simulator quantities.
//!
//! Used for the free-memory timelines of Figures 2 and 10a and the
//! throughput timelines of Figures 10b and 13.

use aqua_sim::time::SimTime;
use serde::{Deserialize, Serialize};

/// A named series of `(time, value)` samples in nondecreasing time order.
///
/// # Example
///
/// ```
/// use aqua_metrics::timeseries::TimeSeries;
/// use aqua_sim::time::SimTime;
///
/// let mut free = TimeSeries::new("free-memory-gib");
/// free.push(SimTime::ZERO, 75.0);
/// free.push(SimTime::from_secs(10), 5.0);
/// assert_eq!(free.value_at(SimTime::from_secs(7)), Some(75.0));
/// assert_eq!(free.min(), Some(5.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    name: String,
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Series name (used as a column header).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes the last sample's time.
    pub fn push(&mut self, t: SimTime, value: f64) {
        if let Some((last, _)) = self.points.last() {
            assert!(t >= *last, "samples must be pushed in time order");
        }
        self.points.push((t, value));
    }

    /// All samples.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` if the series has no samples.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The value in force at `t` (last sample at or before `t`), if any.
    pub fn value_at(&self, t: SimTime) -> Option<f64> {
        match self.points.binary_search_by(|(pt, _)| pt.cmp(&t)) {
            Ok(i) => Some(self.points[i].1),
            Err(0) => None,
            Err(i) => Some(self.points[i - 1].1),
        }
    }

    /// Minimum sampled value.
    pub fn min(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|(_, v)| *v)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.min(v))))
    }

    /// Maximum sampled value.
    pub fn max(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|(_, v)| *v)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// Mean of values sampled within `[from, to)`.
    pub fn mean_in(&self, from: SimTime, to: SimTime) -> Option<f64> {
        let vals: Vec<f64> = self
            .points
            .iter()
            .filter(|(t, _)| *t >= from && *t < to)
            .map(|(_, v)| *v)
            .collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }

    /// Downsamples to at most `n` evenly spaced points (always keeping the
    /// first and last) — used to print compact figure rows.
    pub fn downsample(&self, n: usize) -> Vec<(SimTime, f64)> {
        if n == 0 || self.points.is_empty() {
            return Vec::new();
        }
        if self.points.len() <= n || n == 1 {
            return if n == 1 {
                vec![self.points[0]]
            } else {
                self.points.clone()
            };
        }
        let mut out = Vec::with_capacity(n);
        let last = self.points.len() - 1;
        for i in 0..n {
            let idx = i * last / (n - 1);
            out.push(self.points[idx]);
        }
        out.dedup_by_key(|(t, _)| *t);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> TimeSeries {
        let mut ts = TimeSeries::new("s");
        for i in 0..10u64 {
            ts.push(SimTime::from_secs(i), i as f64);
        }
        ts
    }

    #[test]
    fn value_at_steps() {
        let ts = series();
        assert_eq!(ts.value_at(SimTime::from_secs(3)), Some(3.0));
        assert_eq!(ts.value_at(SimTime::from_millis(3500)), Some(3.0));
        assert_eq!(ts.value_at(SimTime::ZERO), Some(0.0));
        let empty = TimeSeries::new("e");
        assert_eq!(empty.value_at(SimTime::ZERO), None);
        assert!(empty.is_empty());
    }

    #[test]
    fn min_max_mean() {
        let ts = series();
        assert_eq!(ts.min(), Some(0.0));
        assert_eq!(ts.max(), Some(9.0));
        assert_eq!(
            ts.mean_in(SimTime::from_secs(2), SimTime::from_secs(5)),
            Some(3.0)
        );
        assert_eq!(
            ts.mean_in(SimTime::from_secs(20), SimTime::from_secs(30)),
            None
        );
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_push_panics() {
        let mut ts = series();
        ts.push(SimTime::from_secs(1), 0.0);
    }

    #[test]
    fn downsample_keeps_endpoints() {
        let ts = series();
        let d = ts.downsample(4);
        assert_eq!(d.first().unwrap().0, SimTime::ZERO);
        assert_eq!(d.last().unwrap().0, SimTime::from_secs(9));
        assert!(d.len() <= 4);
        assert_eq!(ts.downsample(0).len(), 0);
        assert_eq!(ts.downsample(1).len(), 1);
        assert_eq!(ts.downsample(100).len(), 10);
    }
}
