//! Empirical CDFs — the presentation behind the paper's sorted-RCT plots.
//!
//! Figures 8, 11 and 12 plot request completion times in sorted order,
//! which is the empirical CDF with the axes swapped. [`Cdf`] stores the
//! sorted samples once and answers quantile and fraction-below queries, and
//! can emit a fixed-size row of quantiles for table rendering.

use serde::{Deserialize, Serialize};

/// An empirical cumulative distribution over `f64` samples.
///
/// # Example
///
/// ```
/// use aqua_metrics::cdf::Cdf;
/// let cdf = Cdf::from_samples(&[4.0, 1.0, 3.0, 2.0]);
/// assert_eq!(cdf.quantile(0.0), 1.0);
/// assert_eq!(cdf.quantile(1.0), 4.0);
/// assert_eq!(cdf.fraction_below(2.5), 0.5);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from samples (order irrelevant; NaNs rejected).
    ///
    /// # Panics
    ///
    /// Panics if any sample is NaN.
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(
            samples.iter().all(|s| !s.is_nan()),
            "CDF samples must not be NaN"
        );
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
        Cdf { sorted }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Returns `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The sorted samples (the y-values of a sorted-RCT plot).
    pub fn sorted(&self) -> &[f64] {
        &self.sorted
    }

    /// Linearly interpolated quantile, `q` in `[0, 1]`.
    ///
    /// An empty CDF reports 0.0 at every quantile (matching
    /// [`crate::latency::Summary`]'s all-zero default) and a single-sample
    /// CDF reports that sample everywhere — a tail percentile over a run
    /// that completed zero or one request must summarize, not crash.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        if self.sorted.is_empty() {
            return 0.0;
        }
        crate::latency::percentile_sorted(&self.sorted, q * 100.0)
    }

    /// Fraction of samples strictly below `x` (the CDF value at `x`).
    pub fn fraction_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v < x);
        idx as f64 / self.sorted.len() as f64
    }

    /// `n` evenly spaced quantiles from 0 to 1 inclusive — a compact row
    /// for table output. All zeros for an empty CDF.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn quantile_row(&self, n: usize) -> Vec<f64> {
        assert!(n >= 2, "need at least the two endpoints");
        (0..n)
            .map(|i| self.quantile(i as f64 / (n - 1) as f64))
            .collect()
    }

    /// The largest horizontal gap between this CDF and `other` at their
    /// merged sample points — a simple two-sample discrepancy score used to
    /// compare systems' latency distributions.
    pub fn max_quantile_gap(&self, other: &Cdf, probes: usize) -> f64 {
        assert!(probes >= 2);
        (0..probes)
            .map(|i| {
                let q = i as f64 / (probes - 1) as f64;
                (self.quantile(q) - other.quantile(q)).abs()
            })
            .fold(0.0, f64::max)
    }
}

impl FromIterator<f64> for Cdf {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let v: Vec<f64> = iter.into_iter().collect();
        Cdf::from_samples(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn quantiles_and_fractions() {
        let cdf = Cdf::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(cdf.len(), 5);
        assert_eq!(cdf.quantile(0.5), 3.0);
        assert_eq!(cdf.fraction_below(3.0), 0.4);
        assert_eq!(cdf.fraction_below(100.0), 1.0);
        assert_eq!(cdf.fraction_below(0.0), 0.0);
    }

    #[test]
    fn quantile_row_endpoints() {
        let cdf: Cdf = (1..=10).map(|i| i as f64).collect();
        let row = cdf.quantile_row(5);
        assert_eq!(row.first(), Some(&1.0));
        assert_eq!(row.last(), Some(&10.0));
        assert!(row.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn gap_between_identical_cdfs_is_zero() {
        let a = Cdf::from_samples(&[1.0, 2.0, 3.0]);
        let b = a.clone();
        assert_eq!(a.max_quantile_gap(&b, 11), 0.0);
        let shifted = Cdf::from_samples(&[2.0, 3.0, 4.0]);
        assert!((a.max_quantile_gap(&shifted, 11) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_cdf_is_safe_everywhere() {
        let cdf = Cdf::default();
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(cdf.quantile(q), 0.0);
        }
        assert_eq!(cdf.quantile_row(5), vec![0.0; 5]);
        assert_eq!(cdf.fraction_below(10.0), 0.0);
        let one = Cdf::from_samples(&[3.0]);
        assert_eq!(one.max_quantile_gap(&cdf, 3), 3.0);
    }

    #[test]
    fn single_sample_cdf_is_flat() {
        let cdf = Cdf::from_samples(&[7.5]);
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(cdf.quantile(q), 7.5, "quantile {q}");
        }
        assert_eq!(cdf.quantile_row(3), vec![7.5; 3]);
        assert_eq!(cdf.fraction_below(7.5), 0.0);
        assert_eq!(cdf.fraction_below(7.6), 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_quantile_panics() {
        Cdf::from_samples(&[1.0]).quantile(1.5);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        Cdf::from_samples(&[1.0, f64::NAN]);
    }

    proptest! {
        #[test]
        fn fraction_below_is_monotone(mut v in proptest::collection::vec(0.0f64..100.0, 1..50)) {
            let cdf = Cdf::from_samples(&v);
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let mut last = 0.0;
            for x in [0.0, 10.0, 50.0, 99.0, 200.0] {
                let f = cdf.fraction_below(x);
                prop_assert!(f >= last);
                prop_assert!((0.0..=1.0).contains(&f));
                last = f;
            }
        }
    }
}
