//! Plain-text table rendering for the figure harnesses.
//!
//! Every bench target prints the rows/series its paper figure reports; this
//! keeps that output aligned and greppable, and can emit CSV for plotting.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A simple column-aligned table.
///
/// # Example
///
/// ```
/// use aqua_metrics::table::Table;
/// let mut t = Table::new("fig7", &["system", "tokens"]);
/// t.row(&["FlexGen".into(), "1300".into()]);
/// t.row(&["AQUA".into(), "8100".into()]);
/// let text = t.to_string();
/// assert!(text.contains("FlexGen"));
/// assert!(t.to_csv().starts_with("system,tokens"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Appends a row of displayable values.
    pub fn row_display<D: fmt::Display>(&mut self, cells: &[D]) -> &mut Self {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The table's title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Renders as comma-separated values (headers first, title omitted).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let fmt_row = |row: &[String]| -> String {
            row.iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", fmt_row(&self.headers))?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["a", "long-header"]);
        t.row(&["xxxxxxx".into(), "1".into()]);
        let s = t.to_string();
        assert!(s.contains("== demo =="));
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[1].starts_with("a      "), "{:?}", lines[1]);
    }

    #[test]
    fn csv_round_trip_structure() {
        let mut t = Table::new("x", &["c1", "c2"]);
        t.row_display(&[1, 2]).row_display(&[3, 4]);
        assert_eq!(t.to_csv(), "c1,c2\n1,2\n3,4\n");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.title(), "x");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("x", &["a"]);
        t.row(&["1".into(), "2".into()]);
    }

    #[test]
    fn empty_table_renders() {
        let t = Table::new("empty", &["h"]);
        assert!(t.is_empty());
        assert!(t.to_string().contains("empty"));
        assert_eq!(t.to_csv(), "h\n");
    }
}
