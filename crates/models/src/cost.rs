//! Roofline latency model.
//!
//! Every engine in `aqua-engines` asks this module "how long does one
//! iteration take?". The answers come from the classic roofline argument:
//!
//! * **LLM decode** is *memory-bound* at serving batch sizes: each step must
//!   sweep the weights plus the live KV cache through the HBM, so
//!   `t = max((weights + kv) / hbm_bw, 2·params·batch / flops) + overhead`.
//!   This single formula produces Figure 2c (throughput climbs with batch
//!   while memory time is amortised, and the KV cache eats the HBM).
//! * **LLM prefill** is *compute-bound*: `t = 2·params·tokens / flops`.
//! * **Diffusion and audio generation** are *compute-bound* with a per-step
//!   launch overhead, producing the Figure 2a/2b throughput plateau with
//!   tens of GB of HBM left free.

use crate::geometry::{AudioGeometry, DiffusionGeometry, LlmGeometry};
use aqua_sim::gpu::GpuSpec;
use aqua_sim::link::bytes::gib;
use aqua_sim::time::SimDuration;

/// Fixed per-iteration overhead of an LLM serving engine (scheduling,
/// sampling, kernel launches).
pub const LLM_ITER_OVERHEAD: SimDuration = SimDuration::from_millis(3);

/// Fixed per-denoising-step overhead of a diffusion pipeline.
pub const DIFFUSION_STEP_OVERHEAD: SimDuration = SimDuration::from_millis(10);

/// Fixed per-token overhead of an autoregressive audio pipeline.
pub const AUDIO_TOKEN_OVERHEAD: SimDuration = SimDuration::from_millis(1);

/// Framework baseline HBM consumption besides weights (CUDA context,
/// cuBLAS workspaces, allocator fragmentation).
pub const FRAMEWORK_BASE_BYTES: u64 = 4 * 1024 * 1024 * 1024;

/// Time for one LLM prefill pass over `new_tokens` prompt tokens
/// (compute-bound, but never faster than one weight sweep).
pub fn llm_prefill_time(geom: &LlmGeometry, gpu: &GpuSpec, new_tokens: u64) -> SimDuration {
    if new_tokens == 0 {
        return SimDuration::ZERO;
    }
    let compute = geom.forward_flops(new_tokens) / gpu.effective_flops();
    let weight_sweep = geom.weights_bytes() as f64 / gpu.hbm_bandwidth;
    LLM_ITER_OVERHEAD + SimDuration::from_secs_f64(compute.max(weight_sweep))
}

/// Time for one LLM decode step that generates one token for each of `batch`
/// sequences whose context lengths sum to `total_context_tokens`.
pub fn llm_decode_step_time(
    geom: &LlmGeometry,
    gpu: &GpuSpec,
    batch: u64,
    total_context_tokens: u64,
) -> SimDuration {
    if batch == 0 {
        return SimDuration::ZERO;
    }
    let bytes_swept = geom.weights_bytes() + geom.kv_bytes(total_context_tokens);
    let mem = bytes_swept as f64 / gpu.hbm_bandwidth;
    let compute = geom.forward_flops(batch) / gpu.effective_flops();
    LLM_ITER_OVERHEAD + SimDuration::from_secs_f64(mem.max(compute))
}

/// Decode throughput (tokens/s) at a steady batch size and total live
/// context — the quantity swept in Figure 2c.
pub fn llm_decode_throughput(
    geom: &LlmGeometry,
    gpu: &GpuSpec,
    batch: u64,
    total_context_tokens: u64,
) -> f64 {
    if batch == 0 {
        return 0.0;
    }
    batch as f64 / llm_decode_step_time(geom, gpu, batch, total_context_tokens).as_secs_f64()
}

/// HBM consumed by an LLM beyond its KV cache: weights, framework baseline
/// and activation workspace for `max_batch_tokens` simultaneous tokens.
pub fn llm_static_bytes(geom: &LlmGeometry, max_batch_tokens: u64) -> u64 {
    let activations = geom.hidden * max_batch_tokens * crate::geometry::FP16_BYTES * 8;
    geom.weights_bytes() + FRAMEWORK_BASE_BYTES + activations
}

/// Time to fully denoise a batch of `batch` images.
pub fn diffusion_batch_time(geom: &DiffusionGeometry, gpu: &GpuSpec, batch: u64) -> SimDuration {
    if batch == 0 {
        return SimDuration::ZERO;
    }
    let per_step = geom.flops_per_step_per_image * batch as f64 / gpu.effective_flops();
    let step = DIFFUSION_STEP_OVERHEAD + SimDuration::from_secs_f64(per_step);
    SimDuration::from_nanos(step.as_nanos() * geom.steps)
}

/// Steady-state image throughput (images/s) at a batch size — Figure 2b.
pub fn diffusion_throughput(geom: &DiffusionGeometry, gpu: &GpuSpec, batch: u64) -> f64 {
    if batch == 0 {
        return 0.0;
    }
    batch as f64 / diffusion_batch_time(geom, gpu, batch).as_secs_f64()
}

/// HBM consumed by a diffusion pipeline running a batch of `batch` images.
pub fn diffusion_used_bytes(geom: &DiffusionGeometry, batch: u64) -> u64 {
    geom.weights_bytes() + FRAMEWORK_BASE_BYTES + geom.activation_bytes_per_image * batch
}

/// Time to generate a batch of `batch` audio clips.
pub fn audio_batch_time(geom: &AudioGeometry, gpu: &GpuSpec, batch: u64) -> SimDuration {
    if batch == 0 {
        return SimDuration::ZERO;
    }
    let weight_sweep = geom.weights_bytes() as f64 / gpu.hbm_bandwidth;
    let compute = geom.flops_per_token_per_item * batch as f64 / gpu.effective_flops();
    let per_token = AUDIO_TOKEN_OVERHEAD + SimDuration::from_secs_f64(weight_sweep.max(compute));
    SimDuration::from_nanos(per_token.as_nanos() * geom.tokens_per_clip())
}

/// Steady-state audio throughput (clips/s) at a batch size — Figure 2a.
pub fn audio_throughput(geom: &AudioGeometry, gpu: &GpuSpec, batch: u64) -> f64 {
    if batch == 0 {
        return 0.0;
    }
    batch as f64 / audio_batch_time(geom, gpu, batch).as_secs_f64()
}

/// HBM consumed by an audio pipeline running a batch of `batch` clips.
pub fn audio_used_bytes(geom: &AudioGeometry, batch: u64) -> u64 {
    geom.weights_bytes() + FRAMEWORK_BASE_BYTES + geom.activation_bytes_per_item * batch
}

/// Fraction of the maximum achievable throughput that counts as "on the
/// plateau" when picking an operating batch size.
pub const PLATEAU_THRESHOLD: f64 = 0.95;

/// The operating batch size on the throughput plateau, its throughput, and
/// the free bytes at that batch — the point marked in Figure 2.
///
/// The paper observes that "increasing the batch-size beyond a point results
/// in diminishing increase in throughput. So, a smaller batch size anywhere
/// on the plateau will lead to a higher free memory." Accordingly this picks
/// the *smallest* batch achieving at least [`PLATEAU_THRESHOLD`] of the best
/// memory-feasible throughput, rather than the largest feasible batch.
pub fn peak_batch_under_memory<F, M>(
    capacity: u64,
    max_batch: u64,
    throughput_at: F,
    used_at: M,
) -> (u64, f64, u64)
where
    F: Fn(u64) -> f64,
    M: Fn(u64) -> u64,
{
    let mut best_tput = 0.0f64;
    let mut feasible_max = 0u64;
    for b in 1..=max_batch {
        if used_at(b) > capacity {
            break;
        }
        feasible_max = b;
        best_tput = best_tput.max(throughput_at(b));
    }
    for b in 1..=feasible_max {
        let tput = throughput_at(b);
        if tput >= PLATEAU_THRESHOLD * best_tput {
            return (b, tput, capacity - used_at(b));
        }
    }
    (0, 0.0, capacity)
}

/// Convenience: free HBM of an 80 GiB GPU after a given usage, saturating.
pub fn free_of_80g(used: u64) -> u64 {
    gib(80).saturating_sub(used)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;
    use aqua_sim::gpu::GpuSpec;

    fn a100() -> GpuSpec {
        GpuSpec::a100_80g()
    }

    #[test]
    fn decode_is_memory_bound_at_serving_batches() {
        let m = zoo::llama2_13b();
        let g = m.llm_geometry().unwrap();
        let gpu = a100();
        // batch 1: dominated by the 26 GB weight sweep (~13 ms) + overhead.
        let t1 = llm_decode_step_time(g, &gpu, 1, 512);
        assert!((0.013..0.025).contains(&t1.as_secs_f64()), "t1 = {t1}");
        // Throughput grows with batch while memory time is amortised.
        let tput8 = llm_decode_throughput(g, &gpu, 8, 8 * 512);
        let tput64 = llm_decode_throughput(g, &gpu, 64, 64 * 512);
        assert!(tput64 > 4.0 * tput8 / 2.0);
        assert!(tput64 > tput8);
    }

    #[test]
    fn single_stream_decode_rate_is_realistic() {
        // A100 single-stream decode for a 13B model is commonly ~40-70 tok/s.
        let m = zoo::llama2_13b();
        let g = m.llm_geometry().unwrap();
        let rate = llm_decode_throughput(g, &a100(), 1, 256);
        assert!((30.0..90.0).contains(&rate), "rate = {rate:.1} tok/s");
    }

    #[test]
    fn prefill_is_compute_bound_for_long_prompts() {
        let m = zoo::opt_30b();
        let g = m.llm_geometry().unwrap();
        let t = llm_prefill_time(g, &a100(), 8_000);
        // 2 * 30e9 * 8000 / 156e12 ≈ 3.1 s.
        assert!((2.0..5.0).contains(&t.as_secs_f64()), "t = {t}");
        assert_eq!(llm_prefill_time(g, &a100(), 0), SimDuration::ZERO);
    }

    #[test]
    fn diffusion_throughput_plateaus() {
        let m = zoo::stable_diffusion();
        let g = m.diffusion_geometry().unwrap();
        let gpu = a100();
        let t1 = diffusion_throughput(g, &gpu, 1);
        let t8 = diffusion_throughput(g, &gpu, 8);
        let t16 = diffusion_throughput(g, &gpu, 16);
        let t32 = diffusion_throughput(g, &gpu, 32);
        assert!(t8 > t1, "batching should help at small batches");
        // Diminishing returns: the 16 -> 32 gain is much smaller than 1 -> 8.
        let early_gain = t8 / t1;
        let late_gain = t32 / t16;
        assert!(late_gain < 1.10, "late gain {late_gain:.3}");
        assert!(early_gain > 1.2, "early gain {early_gain:.3}");
    }

    #[test]
    fn compute_bound_models_leave_tens_of_gb_free() {
        // Figure 2a/2b: at the throughput plateau the GPU has 10s of GB free.
        let gpu = a100();
        for m in [
            zoo::stable_diffusion(),
            zoo::stable_diffusion_xl(),
            zoo::kandinsky(),
        ] {
            let g = *m.diffusion_geometry().unwrap();
            let (batch, _tput, free) = peak_batch_under_memory(
                gpu.hbm_bytes,
                64,
                |b| diffusion_throughput(&g, &gpu, b),
                |b| diffusion_used_bytes(&g, b),
            );
            assert!(batch >= 2, "{}: peak batch {batch}", m.name);
            assert!(free > gib(20), "{}: only {} free at plateau", m.name, free);
        }
        for m in [zoo::musicgen(), zoo::audiogen()] {
            let g = *m.audio_geometry().unwrap();
            let (_, _, free) = peak_batch_under_memory(
                gpu.hbm_bytes,
                64,
                |b| audio_throughput(&g, &gpu, b),
                |b| audio_used_bytes(&g, b),
            );
            assert!(free > gib(20), "{}: only {} free at plateau", m.name, free);
        }
    }

    #[test]
    fn llm_exhausts_memory_at_peak_throughput() {
        // Figure 2c: free memory is nearly 0 when LLM throughput peaks.
        let m = zoo::llama2_13b();
        let g = *m.llm_geometry().unwrap();
        let gpu = a100();
        let avg_ctx = 1024u64;
        let (batch, _tput, free) = peak_batch_under_memory(
            gpu.hbm_bytes,
            512,
            |b| llm_decode_throughput(&g, &gpu, b, b * avg_ctx),
            |b| llm_static_bytes(&g, b) + g.kv_bytes(b * avg_ctx),
        );
        assert!(batch >= 32, "peak batch {batch}");
        // "Nearly 0" on an 80 GiB device: under 10% of capacity left.
        assert!(
            free < gib(8),
            "LLM should exhaust HBM at peak, {free} bytes free"
        );
    }

    #[test]
    fn audio_plateau_shape() {
        let m = zoo::audiogen();
        let g = m.audio_geometry().unwrap();
        let gpu = a100();
        let t1 = audio_throughput(g, &gpu, 1);
        let t16 = audio_throughput(g, &gpu, 16);
        let t32 = audio_throughput(g, &gpu, 32);
        assert!(t16 > 2.0 * t1);
        assert!(t32 / t16 < 1.15, "plateau: {t16:.2} -> {t32:.2}");
    }

    #[test]
    fn zero_batch_is_zero_cost() {
        let m = zoo::mistral_7b();
        let g = m.llm_geometry().unwrap();
        let gpu = a100();
        assert_eq!(llm_decode_step_time(g, &gpu, 0, 0), SimDuration::ZERO);
        assert_eq!(llm_decode_throughput(g, &gpu, 0, 0), 0.0);
        let d = zoo::stable_diffusion();
        assert_eq!(
            diffusion_batch_time(d.diffusion_geometry().unwrap(), &gpu, 0),
            SimDuration::ZERO
        );
        let a = zoo::audiogen();
        assert_eq!(audio_throughput(a.audio_geometry().unwrap(), &gpu, 0), 0.0);
    }
}
