//! The eight generative models the paper evaluates (Tables 1–3).
//!
//! | Model | Modality | Paper role |
//! |---|---|---|
//! | OPT-30B | text | long-prompt consumer (FlexGen) |
//! | Mistral-7B | text | LoRA consumer / ShareGPT producer |
//! | Codellama-34B | text | CFS consumer |
//! | Llama-2-13B | text | ShareGPT producer |
//! | StableDiffusion, SD-XL, Kandinsky | image | memory producers |
//! | MusicGen, AudioGen | audio | memory producers |
//!
//! Geometry values are the published architecture numbers; diffusion/audio
//! FLOP figures are calibrated so batch-1 latency and the throughput plateau
//! match commonly reported A100 numbers (≈1 s per 50-step SD image, a few
//! seconds per audio clip).

use crate::geometry::{AudioGeometry, DiffusionGeometry, LlmGeometry};
use serde::{Deserialize, Serialize};

/// Output modality of a generative model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Modality {
    /// Large language models.
    Text,
    /// Latent-diffusion image generators.
    Image,
    /// Autoregressive audio generators.
    Audio,
}

/// Which resource bottlenecks a model's inference throughput (§2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResourceBound {
    /// Throughput limited by HBM capacity (LLMs: the KV cache fills memory
    /// before compute saturates).
    MemoryBound,
    /// Throughput limited by GPU compute, with tens of GB of HBM to spare
    /// (image and audio models).
    ComputeBound,
}

/// Architecture-specific geometry of a model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ModelKind {
    /// Transformer decoder LLM.
    Llm(LlmGeometry),
    /// Latent-diffusion image generator.
    Diffusion(DiffusionGeometry),
    /// Autoregressive audio generator.
    Audio(AudioGeometry),
}

/// A model in the zoo: name plus geometry.
///
/// # Example
///
/// ```
/// use aqua_models::zoo::{self, Modality, ResourceBound};
/// let sd = zoo::stable_diffusion();
/// assert_eq!(sd.modality(), Modality::Image);
/// assert_eq!(sd.resource_bound(), ResourceBound::ComputeBound);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelProfile {
    /// Human-readable model name (matches the paper's tables).
    pub name: String,
    /// Architecture geometry.
    pub kind: ModelKind,
}

impl ModelProfile {
    /// Output modality.
    pub fn modality(&self) -> Modality {
        match self.kind {
            ModelKind::Llm(_) => Modality::Text,
            ModelKind::Diffusion(_) => Modality::Image,
            ModelKind::Audio(_) => Modality::Audio,
        }
    }

    /// The paper's §2.1 finding: LLMs are memory-bound; image and audio
    /// generators are compute-bound.
    pub fn resource_bound(&self) -> ResourceBound {
        match self.modality() {
            Modality::Text => ResourceBound::MemoryBound,
            Modality::Image | Modality::Audio => ResourceBound::ComputeBound,
        }
    }

    /// Bytes of HBM pinned by the fp16 weights.
    pub fn weights_bytes(&self) -> u64 {
        match &self.kind {
            ModelKind::Llm(g) => g.weights_bytes(),
            ModelKind::Diffusion(g) => g.weights_bytes(),
            ModelKind::Audio(g) => g.weights_bytes(),
        }
    }

    /// LLM geometry, if this is a text model.
    pub fn llm_geometry(&self) -> Option<&LlmGeometry> {
        match &self.kind {
            ModelKind::Llm(g) => Some(g),
            _ => None,
        }
    }

    /// Diffusion geometry, if this is an image model.
    pub fn diffusion_geometry(&self) -> Option<&DiffusionGeometry> {
        match &self.kind {
            ModelKind::Diffusion(g) => Some(g),
            _ => None,
        }
    }

    /// Audio geometry, if this is an audio model.
    pub fn audio_geometry(&self) -> Option<&AudioGeometry> {
        match &self.kind {
            ModelKind::Audio(g) => Some(g),
            _ => None,
        }
    }
}

impl std::fmt::Display for ModelProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

fn llm(name: &str, g: LlmGeometry) -> ModelProfile {
    ModelProfile {
        name: name.to_owned(),
        kind: ModelKind::Llm(g),
    }
}

/// OPT-30B — FlexGen's model (long-prompt consumer workload, Table 1).
pub fn opt_30b() -> ModelProfile {
    llm(
        "OPT-30B",
        LlmGeometry {
            params: 30_000_000_000,
            layers: 48,
            hidden: 7168,
            heads: 56,
            kv_heads: 56,
            head_dim: 128,
            vocab: 50_272,
        },
    )
}

/// Llama-2-13B — ShareGPT producer workload (Table 2).
pub fn llama2_13b() -> ModelProfile {
    llm(
        "Llama-2-13B",
        LlmGeometry {
            params: 13_000_000_000,
            layers: 40,
            hidden: 5120,
            heads: 40,
            kv_heads: 40,
            head_dim: 128,
            vocab: 32_000,
        },
    )
}

/// Mistral-7B — LoRA consumer (Table 1) and ShareGPT producer (Table 2).
pub fn mistral_7b() -> ModelProfile {
    llm(
        "Mistral-7B",
        LlmGeometry {
            params: 7_240_000_000,
            layers: 32,
            hidden: 4096,
            heads: 32,
            kv_heads: 8,
            head_dim: 128,
            vocab: 32_000,
        },
    )
}

/// Codellama-34B — CFS code-summary consumer workload (Table 1).
pub fn codellama_34b() -> ModelProfile {
    llm(
        "Codellama-34B",
        LlmGeometry {
            params: 34_000_000_000,
            layers: 48,
            hidden: 8192,
            heads: 64,
            kv_heads: 8,
            head_dim: 128,
            vocab: 32_016,
        },
    )
}

/// StableDiffusion v1.5 — image producer (Table 3).
pub fn stable_diffusion() -> ModelProfile {
    ModelProfile {
        name: "StableDiffusion".to_owned(),
        kind: ModelKind::Diffusion(DiffusionGeometry {
            params: 1_100_000_000,
            steps: 50,
            flops_per_step_per_image: 3.0e12,
            activation_bytes_per_image: 1 << 30, // 1 GiB
        }),
    }
}

/// StableDiffusion-XL — image producer (Table 3, Figure 8a/17).
pub fn stable_diffusion_xl() -> ModelProfile {
    ModelProfile {
        name: "StableDiffusion-XL".to_owned(),
        kind: ModelKind::Diffusion(DiffusionGeometry {
            params: 3_500_000_000,
            steps: 50,
            flops_per_step_per_image: 9.0e12,
            activation_bytes_per_image: 5 << 29, // 2.5 GiB
        }),
    }
}

/// Kandinsky 2.2 — image producer (Table 3, Figures 9/13).
pub fn kandinsky() -> ModelProfile {
    ModelProfile {
        name: "Kandinsky".to_owned(),
        kind: ModelKind::Diffusion(DiffusionGeometry {
            params: 4_600_000_000,
            steps: 50,
            flops_per_step_per_image: 7.0e12,
            activation_bytes_per_image: 1 << 31, // 2 GiB
        }),
    }
}

/// MusicGen (large) — audio producer (Table 3).
pub fn musicgen() -> ModelProfile {
    ModelProfile {
        name: "MusicGen".to_owned(),
        kind: ModelKind::Audio(AudioGeometry {
            params: 3_300_000_000,
            tokens_per_audio_second: 50,
            clip_seconds: 10,
            flops_per_token_per_item: 1.0e11,
            activation_bytes_per_item: 1 << 29, // 512 MiB
        }),
    }
}

/// AudioGen (medium) — audio producer (Table 3, Figures 2a/7/17).
pub fn audiogen() -> ModelProfile {
    ModelProfile {
        name: "AudioGen".to_owned(),
        kind: ModelKind::Audio(AudioGeometry {
            params: 1_500_000_000,
            tokens_per_audio_second: 50,
            clip_seconds: 10,
            flops_per_token_per_item: 1.0e11,
            activation_bytes_per_item: 1 << 29, // 512 MiB
        }),
    }
}

/// All eight models of Tables 1–3, in table order.
pub fn all_models() -> Vec<ModelProfile> {
    vec![
        opt_30b(),
        mistral_7b(),
        codellama_34b(),
        llama2_13b(),
        stable_diffusion(),
        stable_diffusion_xl(),
        kandinsky(),
        musicgen(),
        audiogen(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_sim::link::bytes::gib;

    #[test]
    fn weights_fit_on_an_a100() {
        // §2.1: "Even the largest generative ML models of each modality fit
        // with[in] the memory of one GPU in our setup."
        for m in all_models() {
            assert!(
                m.weights_bytes() < gib(80),
                "{} weights {} exceed 80 GiB",
                m.name,
                m.weights_bytes()
            );
        }
    }

    #[test]
    fn modality_classification() {
        assert_eq!(opt_30b().modality(), Modality::Text);
        assert_eq!(stable_diffusion_xl().modality(), Modality::Image);
        assert_eq!(musicgen().modality(), Modality::Audio);
        assert_eq!(opt_30b().resource_bound(), ResourceBound::MemoryBound);
        assert_eq!(kandinsky().resource_bound(), ResourceBound::ComputeBound);
        assert_eq!(audiogen().resource_bound(), ResourceBound::ComputeBound);
    }

    #[test]
    fn geometry_accessors_dispatch() {
        assert!(opt_30b().llm_geometry().is_some());
        assert!(opt_30b().diffusion_geometry().is_none());
        assert!(stable_diffusion().diffusion_geometry().is_some());
        assert!(audiogen().audio_geometry().is_some());
        assert!(audiogen().llm_geometry().is_none());
    }

    #[test]
    fn kv_cache_rates_reflect_gqa() {
        // Mistral and Codellama use grouped-query attention; their KV cache
        // grows much slower per token than same-size MHA models.
        let opt = opt_30b();
        let mistral = mistral_7b();
        let opt_rate = opt.llm_geometry().unwrap().kv_bytes_per_token();
        let mis_rate = mistral.llm_geometry().unwrap().kv_bytes_per_token();
        assert!(opt_rate > 8 * mis_rate);
        // OPT-30B: 2*48*56*128*2 = 1.376 MB/token.
        assert_eq!(opt_rate, 1_376_256);
    }

    #[test]
    fn opt_long_prompt_context_is_gigabytes() {
        // The Figure 7 workload: an 8,000-token prompt's KV cache on OPT-30B
        // is ~11 GB — larger than FlexGen's GPU context budget.
        let kv = opt_30b().llm_geometry().unwrap().kv_bytes(8_000);
        assert!((gib(10)..gib(12)).contains(&kv), "kv = {kv}");
    }

    #[test]
    fn zoo_has_nine_entries_with_unique_names() {
        let models = all_models();
        assert_eq!(models.len(), 9);
        let mut names: Vec<&str> = models.iter().map(|m| m.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 9);
        assert_eq!(opt_30b().to_string(), "OPT-30B");
    }
}
