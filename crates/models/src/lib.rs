//! # aqua-models — model zoo and roofline cost models
//!
//! The AQUA paper (§2, §6) hosts eight state-of-the-art generative models of
//! three modalities on A100-80G GPUs:
//!
//! * **LLMs** (memory-bound): OPT-30B, Llama-2-13B, Mistral-7B, Codellama-34B
//! * **Image** (compute-bound): StableDiffusion, StableDiffusion-XL, Kandinsky
//! * **Audio** (compute-bound): MusicGen, AudioGen
//!
//! Reproducing the evaluation does not require running these models — it
//! requires their *resource envelopes*: how many bytes of HBM the weights
//! pin, how fast the KV cache grows per generated token, how long a decode
//! step or diffusion step takes on a given GPU, and whether throughput is
//! limited by memory or compute. This crate derives all of that from
//! published model geometry with a roofline model:
//!
//! * [`geometry`] — layer/head/hidden dimensions → weight bytes, KV bytes per
//!   token, LoRA adapter bytes.
//! * [`zoo`] — the eight models of Tables 1–3 with their real geometry.
//! * [`cost`] — roofline latency model: decode time is the max of the
//!   weight+KV memory sweep and the batch GEMM compute time; diffusion and
//!   audio generation are dominated by compute.
//! * [`lora`] — LoRA adapter descriptors (the paper's Zephyr ≈ 320 MB and
//!   Mteb ≈ 160 MB adapters, plus synthesized copies).
//!
//! # Example
//!
//! ```
//! use aqua_models::prelude::*;
//! use aqua_sim::gpu::GpuSpec;
//!
//! let llama = zoo::llama2_13b();
//! let gpu = GpuSpec::a100_80g();
//! let geom = llama.llm_geometry().unwrap();
//! // One decode step over a batch of 32 sequences with 1k tokens of context
//! // each is memory-bound on an A100.
//! let t = cost::llm_decode_step_time(geom, &gpu, 32, 32 * 1024);
//! assert!(t.as_secs_f64() > 0.01 && t.as_secs_f64() < 0.1);
//! ```

pub mod cost;
pub mod geometry;
pub mod lora;
pub mod zoo;

pub mod prelude {
    //! Convenience re-exports.
    pub use crate::cost;
    pub use crate::geometry::{AudioGeometry, DiffusionGeometry, LlmGeometry};
    pub use crate::lora::LoraAdapter;
    pub use crate::zoo::{self, Modality, ModelKind, ModelProfile, ResourceBound};
}

pub use prelude::*;
