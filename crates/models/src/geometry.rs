//! Model geometry: the published architecture numbers every cost derives from.
//!
//! For a transformer LLM with `L` layers, `H_kv` key-value heads of dimension
//! `d`, fp16 weights and fp16 KV cache, the two numbers that drive the whole
//! paper are:
//!
//! * weight bytes = `2 × params`
//! * KV bytes per token = `2 (K and V) × L × H_kv × d × 2 (fp16)`
//!
//! Grouped-query attention (Mistral, Codellama) shrinks the KV cache by the
//! head-group factor, which is why those models fit more context per GiB.

use serde::{Deserialize, Serialize};

/// Bytes per element for fp16/bf16 tensors.
pub const FP16_BYTES: u64 = 2;

/// Transformer decoder geometry for an LLM.
///
/// # Example
///
/// ```
/// use aqua_models::geometry::LlmGeometry;
/// let llama = LlmGeometry {
///     params: 13_000_000_000,
///     layers: 40,
///     hidden: 5120,
///     heads: 40,
///     kv_heads: 40,
///     head_dim: 128,
///     vocab: 32_000,
/// };
/// assert_eq!(llama.kv_bytes_per_token(), 819_200);
/// assert_eq!(llama.weights_bytes(), 26_000_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LlmGeometry {
    /// Total parameter count.
    pub params: u64,
    /// Number of transformer layers.
    pub layers: u64,
    /// Hidden (embedding) dimension.
    pub hidden: u64,
    /// Number of attention heads.
    pub heads: u64,
    /// Number of key-value heads (< `heads` with grouped-query attention).
    pub kv_heads: u64,
    /// Per-head dimension.
    pub head_dim: u64,
    /// Vocabulary size.
    pub vocab: u64,
}

impl LlmGeometry {
    /// Bytes of HBM pinned by the fp16 weights.
    pub fn weights_bytes(&self) -> u64 {
        self.params * FP16_BYTES
    }

    /// Bytes of KV cache appended per token of context (fp16 K and V across
    /// all layers).
    pub fn kv_bytes_per_token(&self) -> u64 {
        2 * self.layers * self.kv_heads * self.head_dim * FP16_BYTES
    }

    /// Bytes of KV cache for a sequence of `tokens` context tokens.
    pub fn kv_bytes(&self, tokens: u64) -> u64 {
        self.kv_bytes_per_token() * tokens
    }

    /// FLOPs of one full forward pass over `tokens` new tokens (the standard
    /// `2 × params` per token estimate; attention score terms are second
    /// order at the context lengths the paper uses).
    pub fn forward_flops(&self, tokens: u64) -> f64 {
        2.0 * self.params as f64 * tokens as f64
    }

    /// Bytes of one LoRA adapter of rank `r` applied to the attention
    /// projections of every layer: per layer, four target matrices each with
    /// an `A (hidden × r)` and `B (r × hidden)` factor, in fp16.
    pub fn lora_adapter_bytes(&self, rank: u64) -> u64 {
        let per_matrix = 2 * self.hidden * rank * FP16_BYTES;
        self.layers * 4 * per_matrix
    }

    /// Number of distinct tensors a rank-`r` adapter ships (two factors per
    /// target matrix per layer) — the chunk count for a naive scattered copy.
    pub fn lora_tensor_count(&self) -> u64 {
        self.layers * 4 * 2
    }
}

/// Latent-diffusion image generator geometry (UNet denoiser).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiffusionGeometry {
    /// Total parameters across UNet, VAE and text encoders.
    pub params: u64,
    /// Denoising steps per image.
    pub steps: u64,
    /// FLOPs of one denoising step for one image.
    pub flops_per_step_per_image: f64,
    /// Activation bytes held per in-flight image (latents + UNet activations).
    pub activation_bytes_per_image: u64,
}

impl DiffusionGeometry {
    /// Bytes of HBM pinned by the fp16 weights.
    pub fn weights_bytes(&self) -> u64 {
        self.params * FP16_BYTES
    }

    /// FLOPs to fully denoise a batch of `batch` images.
    pub fn flops_per_batch(&self, batch: u64) -> f64 {
        self.steps as f64 * self.flops_per_step_per_image * batch as f64
    }
}

/// Autoregressive audio generator geometry (MusicGen/AudioGen style).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AudioGeometry {
    /// Total parameters (language model plus compression model).
    pub params: u64,
    /// Audio tokens generated per second of output audio.
    pub tokens_per_audio_second: u64,
    /// Seconds of audio per request (the default prompt set generates
    /// fixed-length clips).
    pub clip_seconds: u64,
    /// FLOPs per generated audio token per item (includes the upsampling
    /// stack, which makes audio generation compute-heavy for its size).
    pub flops_per_token_per_item: f64,
    /// Activation bytes held per in-flight clip.
    pub activation_bytes_per_item: u64,
}

impl AudioGeometry {
    /// Bytes of HBM pinned by the fp16 weights.
    pub fn weights_bytes(&self) -> u64 {
        self.params * FP16_BYTES
    }

    /// Audio tokens generated for one clip.
    pub fn tokens_per_clip(&self) -> u64 {
        self.tokens_per_audio_second * self.clip_seconds
    }

    /// FLOPs to generate a batch of `batch` clips.
    pub fn flops_per_batch(&self, batch: u64) -> f64 {
        self.tokens_per_clip() as f64 * self.flops_per_token_per_item * batch as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mistral() -> LlmGeometry {
        LlmGeometry {
            params: 7_240_000_000,
            layers: 32,
            hidden: 4096,
            heads: 32,
            kv_heads: 8,
            head_dim: 128,
            vocab: 32_000,
        }
    }

    #[test]
    fn gqa_shrinks_kv_cache() {
        let m = mistral();
        // 2 * 32 layers * 8 kv heads * 128 dim * 2 bytes = 131072 B/token.
        assert_eq!(m.kv_bytes_per_token(), 131_072);
        let mha = LlmGeometry { kv_heads: 32, ..m };
        assert_eq!(mha.kv_bytes_per_token(), 4 * m.kv_bytes_per_token());
    }

    #[test]
    fn kv_bytes_scales_linearly() {
        let m = mistral();
        assert_eq!(m.kv_bytes(0), 0);
        assert_eq!(m.kv_bytes(1000), 1000 * m.kv_bytes_per_token());
    }

    #[test]
    fn forward_flops_twice_params_per_token() {
        let m = mistral();
        assert_eq!(m.forward_flops(1), 2.0 * 7_240_000_000.0);
        assert_eq!(m.forward_flops(100), 200.0 * 7_240_000_000.0);
    }

    #[test]
    fn lora_bytes_match_paper_scale() {
        // The paper's Mistral adapters are ~160 MB (Mteb) and ~320 MB
        // (Zephyr). A rank-64 adapter over Mistral's geometry lands in the
        // right ballpark; rank-128 doubles it.
        let m = mistral();
        let r64 = m.lora_adapter_bytes(64);
        let r128 = m.lora_adapter_bytes(128);
        assert!((100_000_000..250_000_000).contains(&r64), "rank-64: {r64}");
        assert_eq!(r128, 2 * r64);
        assert_eq!(m.lora_tensor_count(), 32 * 8);
    }

    #[test]
    fn diffusion_flops_scale_with_batch_and_steps() {
        let d = DiffusionGeometry {
            params: 1_000_000_000,
            steps: 50,
            flops_per_step_per_image: 1e12,
            activation_bytes_per_image: 1 << 30,
        };
        assert_eq!(d.weights_bytes(), 2_000_000_000);
        assert_eq!(d.flops_per_batch(2), 2.0 * d.flops_per_batch(1));
    }

    #[test]
    fn audio_tokens_per_clip() {
        let a = AudioGeometry {
            params: 1_500_000_000,
            tokens_per_audio_second: 50,
            clip_seconds: 10,
            flops_per_token_per_item: 1e10,
            activation_bytes_per_item: 1 << 28,
        };
        assert_eq!(a.tokens_per_clip(), 500);
        assert!(a.flops_per_batch(4) > a.flops_per_batch(1));
    }
}
