//! LoRA adapter descriptors.
//!
//! The paper's LoRA workloads (§6, Figures 8/12, §A.2) use the two most
//! popular public Mistral adapters — Zephyr (≈ 320 MB) and Mteb (≈ 160 MB) —
//! plus synthesized copies at the same sizes. An adapter matters to AQUA in
//! exactly two ways: how many **bytes** must move when a request needs it,
//! and how many **tensors** those bytes are scattered across (vLLM's default
//! loader copies each per-layer tensor separately — many small transfers —
//! while AQUA copies the whole adapter as one coalesced buffer, §B.1).

use crate::geometry::LlmGeometry;
use aqua_sim::transfer::TransferPlan;
use serde::{Deserialize, Serialize};

/// One LoRA adapter.
///
/// # Example
///
/// ```
/// use aqua_models::lora::LoraAdapter;
/// let zephyr = LoraAdapter::zephyr();
/// assert_eq!(zephyr.bytes, 320 * 1024 * 1024);
/// // AQUA moves it as one buffer; the baseline scatters it per tensor.
/// assert_eq!(zephyr.coalesced_plan().total_bytes(), zephyr.bytes);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LoraAdapter {
    /// Adapter name (for reports).
    pub name: String,
    /// Total adapter bytes.
    pub bytes: u64,
    /// Number of separate tensors the adapter is stored as.
    pub tensor_count: u64,
}

impl LoraAdapter {
    /// Creates an adapter of `bytes` split into `tensor_count` tensors.
    ///
    /// # Panics
    ///
    /// Panics if `tensor_count == 0`.
    pub fn new(name: impl Into<String>, bytes: u64, tensor_count: u64) -> Self {
        assert!(tensor_count > 0, "an adapter has at least one tensor");
        LoraAdapter {
            name: name.into(),
            bytes,
            tensor_count,
        }
    }

    /// The Zephyr adapter for Mistral-7B (≈ 320 MB).
    pub fn zephyr() -> Self {
        Self::sized_like_mistral("zephyr-7b-beta-lora", 320 * 1024 * 1024)
    }

    /// The Mteb / e5-mistral adapter (≈ 160 MB).
    pub fn mteb() -> Self {
        Self::sized_like_mistral("e5-mistral-7b-mteb-lora", 160 * 1024 * 1024)
    }

    /// An adapter of arbitrary size with Mistral's per-layer tensor layout
    /// (used to synthesize the 200-adapter pools of Figure 12).
    pub fn sized_like_mistral(name: impl Into<String>, bytes: u64) -> Self {
        let mistral_layers = 32;
        Self::new(name, bytes, mistral_layers * 4 * 2)
    }

    /// Derives an adapter of rank `rank` for a concrete LLM geometry.
    pub fn for_geometry(name: impl Into<String>, geom: &LlmGeometry, rank: u64) -> Self {
        Self::new(
            name,
            geom.lora_adapter_bytes(rank),
            geom.lora_tensor_count(),
        )
    }

    /// Transfer plan of the naive loader: one copy per stored tensor.
    pub fn scattered_plan(&self) -> TransferPlan {
        TransferPlan::scattered(self.tensor_count, self.bytes / self.tensor_count)
    }

    /// Transfer plan of AQUA's loader: the whole adapter as one buffer.
    pub fn coalesced_plan(&self) -> TransferPlan {
        TransferPlan::coalesced(self.bytes)
    }

    /// Synthesizes `count` same-sized copies (the paper copies Zephyr/Mteb to
    /// build larger pools).
    pub fn synthesize_pool(&self, count: usize) -> Vec<LoraAdapter> {
        (0..count)
            .map(|i| LoraAdapter {
                name: format!("{}-copy{}", self.name, i),
                bytes: self.bytes,
                tensor_count: self.tensor_count,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_sim::link::BandwidthModel;

    #[test]
    fn paper_adapter_sizes() {
        assert_eq!(LoraAdapter::zephyr().bytes, 320 << 20);
        assert_eq!(LoraAdapter::mteb().bytes, 160 << 20);
    }

    #[test]
    fn scattered_plan_covers_all_bytes() {
        let a = LoraAdapter::zephyr();
        let plan = a.scattered_plan();
        // Integer division may drop a remainder smaller than one tensor.
        assert!(plan.total_bytes() <= a.bytes);
        assert!(a.bytes - plan.total_bytes() < a.tensor_count);
    }

    #[test]
    fn coalesced_load_is_much_faster_on_nvlink() {
        let a = LoraAdapter::zephyr();
        let nv = BandwidthModel::nvlink_a100();
        let scattered = nv.transfer_time(a.scattered_plan());
        let coalesced = nv.transfer_time(a.coalesced_plan());
        assert!(
            scattered.as_secs_f64() > 3.0 * coalesced.as_secs_f64(),
            "scattered {scattered} vs coalesced {coalesced}"
        );
    }

    #[test]
    fn pool_synthesis_names_are_unique() {
        let pool = LoraAdapter::zephyr().synthesize_pool(30);
        assert_eq!(pool.len(), 30);
        let mut names: Vec<_> = pool.iter().map(|a| a.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 30);
        assert!(pool.iter().all(|a| a.bytes == 320 << 20));
    }

    #[test]
    fn geometry_derived_adapter() {
        let mistral = crate::zoo::mistral_7b();
        let g = mistral.llm_geometry().unwrap();
        let a = LoraAdapter::for_geometry("rank64", g, 64);
        assert_eq!(a.bytes, g.lora_adapter_bytes(64));
        assert_eq!(a.tensor_count, 256);
    }

    #[test]
    #[should_panic(expected = "at least one tensor")]
    fn zero_tensor_adapter_rejected() {
        LoraAdapter::new("bad", 100, 0);
    }
}
