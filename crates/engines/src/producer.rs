//! Compute-bound producer engines (image and audio generation).
//!
//! The paper's §2.1 experiment shows diffusion and audio models plateau in
//! throughput with tens of GB of HBM to spare; those GPUs become AQUA's
//! *memory producers*. This engine serves item requests (one image or clip
//! each) in plateau-sized batches, reports donatable memory through the
//! northbound interface, and models the paper's Figure 3b finding: donating
//! memory costs the producer only a small slowdown while NVLink I/O is in
//! flight (< 5%).

use crate::driver::Engine;
use crate::northbound::{EngineStats, Informer, MemoryElastic};
use crate::request::InferenceRequest;
use aqua_metrics::requests::RequestRecord;
use aqua_models::cost;
use aqua_models::geometry::{AudioGeometry, DiffusionGeometry};
use aqua_sim::gpu::GpuSpec;
use aqua_sim::time::SimTime;
use std::collections::VecDeque;

/// Which compute-bound generator a producer hosts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProducerModel {
    /// Latent-diffusion image generator.
    Diffusion(DiffusionGeometry),
    /// Autoregressive audio generator.
    Audio(AudioGeometry),
}

impl ProducerModel {
    fn batch_time(&self, gpu: &GpuSpec, batch: u64) -> aqua_sim::time::SimDuration {
        match self {
            ProducerModel::Diffusion(g) => cost::diffusion_batch_time(g, gpu, batch),
            ProducerModel::Audio(g) => cost::audio_batch_time(g, gpu, batch),
        }
    }

    fn used_bytes(&self, batch: u64) -> u64 {
        match self {
            ProducerModel::Diffusion(g) => cost::diffusion_used_bytes(g, batch),
            ProducerModel::Audio(g) => cost::audio_used_bytes(g, batch),
        }
    }
}

/// Fractional slowdown applied to producer iterations while its donated
/// memory is in use (Figure 3b measures this effect at < 5%).
pub const SHARING_SLOWDOWN: f64 = 0.03;

/// Batch-serving engine for compute-bound models.
///
/// # Example
///
/// ```
/// use aqua_engines::producer::{ProducerEngine, ProducerModel};
/// use aqua_engines::driver::Engine;
/// use aqua_engines::request::InferenceRequest;
/// use aqua_models::zoo;
/// use aqua_sim::gpu::GpuSpec;
/// use aqua_sim::time::SimTime;
///
/// let sd = zoo::stable_diffusion();
/// let model = ProducerModel::Diffusion(*sd.diffusion_geometry().unwrap());
/// let mut engine = ProducerEngine::new(model, GpuSpec::a100_80g(), 8);
/// engine.submit(InferenceRequest::item(0), SimTime::ZERO);
/// let done = engine.step(SimTime::ZERO);
/// assert!(done.as_secs_f64() > 0.5); // a ~50-step diffusion run
/// ```
pub struct ProducerEngine {
    model: ProducerModel,
    gpu: GpuSpec,
    max_batch: u64,
    waiting: VecDeque<(InferenceRequest, SimTime)>,
    completions: Vec<RequestRecord>,
    informer: Option<Box<dyn Informer>>,
    donated_bytes: u64,
    batches: u64,
    items_served: u64,
}

impl std::fmt::Debug for ProducerEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProducerEngine")
            .field("waiting", &self.waiting.len())
            .field("batches", &self.batches)
            .field("donated_bytes", &self.donated_bytes)
            .finish()
    }
}

impl ProducerEngine {
    /// Creates a producer serving `model` on `gpu` with operating batch size
    /// `max_batch` (pick the Figure 2 plateau batch).
    pub fn new(model: ProducerModel, gpu: GpuSpec, max_batch: u64) -> Self {
        assert!(max_batch > 0, "batch size must be positive");
        ProducerEngine {
            model,
            gpu,
            max_batch,
            waiting: VecDeque::new(),
            completions: Vec::new(),
            informer: None,
            donated_bytes: 0,
            batches: 0,
            items_served: 0,
        }
    }

    /// Attaches an AQUA informer (the paper's batch-informer).
    pub fn with_informer(mut self, informer: Box<dyn Informer>) -> Self {
        self.informer = Some(informer);
        self
    }

    /// Bytes currently donated to AQUA.
    pub fn donated_bytes(&self) -> u64 {
        self.donated_bytes
    }

    /// Items (images/clips) generated so far.
    pub fn items_served(&self) -> u64 {
        self.items_served
    }

    /// Batches executed so far.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Free HBM on this GPU at the operating batch, after donations.
    pub fn free_bytes(&self) -> u64 {
        self.gpu
            .hbm_bytes
            .saturating_sub(self.model.used_bytes(self.max_batch))
            .saturating_sub(self.donated_bytes)
    }

    fn run_informer(&mut self, now: SimTime) -> SimTime {
        if let Some(mut informer) = self.informer.take() {
            let resume = informer.control(self, now);
            self.informer = Some(informer);
            resume.max(now)
        } else {
            now
        }
    }
}

impl Engine for ProducerEngine {
    fn submit(&mut self, req: InferenceRequest, now: SimTime) {
        self.waiting.push_back((req, now));
    }

    fn has_work(&self) -> bool {
        !self.waiting.is_empty()
    }

    fn step(&mut self, now: SimTime) -> SimTime {
        let now = self.run_informer(now);
        let batch = (self.waiting.len() as u64).min(self.max_batch);
        if batch == 0 {
            return now;
        }
        self.batches += 1;
        let mut t = self.model.batch_time(&self.gpu, batch);
        if self.donated_bytes > 0 {
            t = t.mul_f64(1.0 + SHARING_SLOWDOWN);
        }
        let end = now + t;
        for _ in 0..batch {
            let (req, arrival) = self.waiting.pop_front().expect("batch <= len");
            self.items_served += 1;
            self.completions.push(RequestRecord {
                id: req.id.0,
                arrival,
                first_token: end,
                completion: end,
                output_tokens: 1,
            });
        }
        end
    }

    fn tick(&mut self, now: SimTime) {
        let _ = self.run_informer(now);
    }

    fn drain_completions(&mut self) -> Vec<RequestRecord> {
        std::mem::take(&mut self.completions)
    }
}

impl MemoryElastic for ProducerEngine {
    fn stats(&self) -> EngineStats {
        EngineStats {
            pending_requests: self.waiting.len(),
            running_requests: 0,
            context_used_bytes: self.model.used_bytes(self.max_batch),
            context_reserved_bytes: self.gpu.hbm_bytes,
            donatable_bytes: self.free_bytes(),
            donated_bytes: self.donated_bytes,
        }
    }

    fn donate(&mut self, bytes: u64) -> u64 {
        let granted = bytes.min(self.free_bytes());
        self.donated_bytes += granted;
        granted
    }

    fn reclaim(&mut self, bytes: u64) {
        self.donated_bytes = self.donated_bytes.saturating_sub(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_models::zoo;
    use aqua_sim::link::bytes::gib;

    fn sd_engine(batch: u64) -> ProducerEngine {
        let sd = zoo::stable_diffusion();
        ProducerEngine::new(
            ProducerModel::Diffusion(*sd.diffusion_geometry().unwrap()),
            GpuSpec::a100_80g(),
            batch,
        )
    }

    #[test]
    fn batches_requests_up_to_max() {
        let mut e = sd_engine(8);
        for i in 0..12 {
            e.submit(InferenceRequest::item(i), SimTime::ZERO);
        }
        let t1 = e.step(SimTime::ZERO);
        assert_eq!(e.drain_completions().len(), 8);
        let t2 = e.step(t1);
        assert_eq!(e.drain_completions().len(), 4);
        assert!(t2 > t1);
        assert_eq!(e.items_served(), 12);
        assert_eq!(e.batches(), 2);
    }

    #[test]
    fn producer_has_tens_of_gb_free() {
        let e = sd_engine(8);
        assert!(e.free_bytes() > gib(40), "free = {}", e.free_bytes());
    }

    #[test]
    fn donation_reduces_free_and_slows_slightly() {
        let mut e = sd_engine(8);
        for i in 0..16 {
            e.submit(InferenceRequest::item(i), SimTime::ZERO);
        }
        let base = e.step(SimTime::ZERO);
        let free_before = e.free_bytes();
        let granted = e.donate(gib(30));
        assert_eq!(granted, gib(30));
        assert_eq!(e.free_bytes(), free_before - gib(30));
        let shared_end = e.step(base);
        let shared = (shared_end - base).as_secs_f64();
        let baseline = base.as_secs_f64();
        let overhead = shared / baseline - 1.0;
        assert!(
            overhead > 0.0 && overhead < 0.05,
            "sharing overhead {overhead:.3} should be < 5% (Fig 3b)"
        );
    }

    #[test]
    fn donation_capped_at_free() {
        let mut e = sd_engine(8);
        let granted = e.donate(gib(1000));
        assert!(granted < gib(80));
        assert_eq!(e.free_bytes(), 0);
        e.reclaim(granted + gib(5)); // over-reclaim saturates
        assert_eq!(e.donated_bytes(), 0);
    }

    #[test]
    fn audio_producer_works() {
        let ag = zoo::audiogen();
        let mut e = ProducerEngine::new(
            ProducerModel::Audio(*ag.audio_geometry().unwrap()),
            GpuSpec::a100_80g(),
            8,
        );
        e.submit(InferenceRequest::item(0), SimTime::ZERO);
        let end = e.step(SimTime::ZERO);
        // A 10 s clip takes on the order of seconds to generate.
        assert!((0.5..10.0).contains(&end.as_secs_f64()), "end = {end}");
        assert_eq!(e.drain_completions().len(), 1);
    }

    #[test]
    fn stats_reflect_donations() {
        let mut e = sd_engine(8);
        e.donate(gib(10));
        let s = e.stats();
        assert_eq!(s.donated_bytes, gib(10));
        assert!(s.donatable_bytes > 0);
        assert_eq!(s.pending_requests, 0);
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_rejected() {
        sd_engine(0);
    }
}
