//! The offload backend abstraction.
//!
//! Serving engines move inference context (KV caches, LoRA adapters) between
//! GPU HBM and an *offload store*. Today's engines use host DRAM over PCIe;
//! AQUA's contribution is an offloader that uses a neighbouring GPU over
//! NVLink (implemented in `aqua-core`, which plugs in through this trait).
//!
//! An [`Offloader`] is asked to move `bytes` that are naturally scattered
//! across `chunks` tensors. Whether the implementation honours that scatter
//! (many small copies) or coalesces through a staging buffer first is the
//! implementation's choice — that is precisely the design axis the paper's
//! custom gather/scatter kernels occupy.

use aqua_sim::link::BandwidthModel;
use aqua_sim::time::SimTime;
use aqua_sim::topology::LinkPath;
use aqua_sim::transfer::{TransferEngine, TransferPlan};
use std::cell::RefCell;
use std::rc::Rc;

/// Where offloaded context currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OffloadLocation {
    /// Host DRAM over PCIe.
    HostDram,
    /// A peer GPU's HBM over the inter-GPU fabric.
    PeerGpu,
    /// Split between a peer GPU and host DRAM (partial lease).
    Mixed,
}

impl std::fmt::Display for OffloadLocation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            OffloadLocation::HostDram => "host-dram",
            OffloadLocation::PeerGpu => "peer-gpu",
            OffloadLocation::Mixed => "mixed",
        };
        f.write_str(s)
    }
}

/// Moves context between a GPU and its offload store.
///
/// Implementations return the completion time of the requested movement;
/// queueing behind other transfers on shared ports is included.
pub trait Offloader {
    /// Copies `bytes` (scattered across `chunks` tensors) from the GPU to
    /// the offload store, starting no earlier than `now`.
    fn swap_out(&mut self, bytes: u64, chunks: u64, now: SimTime) -> SimTime;

    /// Copies `bytes` (scattered across `chunks` tensors) from the offload
    /// store back into GPU HBM, starting no earlier than `now`. The bytes
    /// leave the offload store (a context switch back in).
    fn swap_in(&mut self, bytes: u64, chunks: u64, now: SimTime) -> SimTime;

    /// Reads `bytes` from the offload store into GPU HBM *without removing
    /// them* — the streaming pattern of FlexGen's per-token context sweeps
    /// and of LoRA adapter loads from a persistent adapter store. Defaults
    /// to [`Offloader::swap_in`] for backends that do not track occupancy.
    fn read_in(&mut self, bytes: u64, chunks: u64, now: SimTime) -> SimTime {
        self.swap_in(bytes, chunks, now)
    }

    /// Called by the engine at each iteration boundary (the paper's
    /// `aqua.respond()`); gives elastic offloaders a chance to migrate
    /// tensors. Returns the time at which the engine may proceed (equals
    /// `now` unless a blocking migration is in progress).
    fn on_iteration_boundary(&mut self, now: SimTime) -> SimTime {
        now
    }

    /// Where the offloaded context currently lives.
    fn location(&self) -> OffloadLocation;

    /// Short label for reports (e.g. `"dram"`, `"aqua"`).
    fn label(&self) -> &str;
}

/// Baseline offloader: host DRAM over this GPU's PCIe link.
///
/// This is what vLLM and FlexGen do today (§2.2). It honours the caller's
/// scatter when `coalesce` is false (vLLM's default per-tensor LoRA loads,
/// §B.1) and can use a pinned staging path when `coalesce` is true (KV swap).
///
/// # Example
///
/// ```
/// use aqua_engines::offload::{DramOffloader, Offloader};
/// use aqua_sim::prelude::*;
/// use std::{cell::RefCell, rc::Rc};
///
/// let server = ServerTopology::nvlink_pair(GpuSpec::a100_80g());
/// let xfer = Rc::new(RefCell::new(TransferEngine::new()));
/// let mut dram = DramOffloader::pinned(&server, GpuId(0), xfer);
/// let done = dram.swap_out(1 << 30, 1, SimTime::ZERO);
/// assert!(done.as_secs_f64() > 0.03); // ~40 ms at 25 GB/s
/// ```
#[derive(Debug, Clone)]
pub struct DramOffloader {
    to_host: LinkPath,
    from_host: LinkPath,
    model: BandwidthModel,
    coalesce: bool,
    transfers: Rc<RefCell<TransferEngine>>,
    label: String,
}

impl DramOffloader {
    /// DRAM offloader using pinned staging buffers (coalesced copies at full
    /// PCIe bandwidth) — the KV-swap fast path.
    pub fn pinned(
        server: &aqua_sim::topology::ServerTopology,
        gpu: aqua_sim::gpu::GpuId,
        transfers: Rc<RefCell<TransferEngine>>,
    ) -> Self {
        DramOffloader {
            to_host: server.gpu_to_host_path(gpu),
            from_host: server.host_to_gpu_path(gpu),
            model: BandwidthModel::pcie_gen4_pinned(),
            coalesce: true,
            transfers,
            label: "dram-pinned".to_owned(),
        }
    }

    /// DRAM offloader with pinned buffers but **per-tensor copies** — how
    /// vLLM swaps KV blocks today: "a given token's key and value tensors
    /// are scattered across multiple tensors and this leads to multiple
    /// small copies" (§5). AQUA's gather/scatter kernels are exactly what
    /// this path lacks.
    pub fn pinned_scattered(
        server: &aqua_sim::topology::ServerTopology,
        gpu: aqua_sim::gpu::GpuId,
        transfers: Rc<RefCell<TransferEngine>>,
    ) -> Self {
        DramOffloader {
            to_host: server.gpu_to_host_path(gpu),
            from_host: server.host_to_gpu_path(gpu),
            model: BandwidthModel::pcie_gen4_pinned(),
            coalesce: false,
            transfers,
            label: "dram-pinned-scattered".to_owned(),
        }
    }

    /// DRAM offloader doing framework-level per-tensor copies from pageable
    /// memory — the default LoRA-adapter load path the paper replaces.
    pub fn pageable_scattered(
        server: &aqua_sim::topology::ServerTopology,
        gpu: aqua_sim::gpu::GpuId,
        transfers: Rc<RefCell<TransferEngine>>,
    ) -> Self {
        DramOffloader {
            to_host: server.gpu_to_host_path(gpu),
            from_host: server.host_to_gpu_path(gpu),
            model: BandwidthModel::pcie_gen4_pageable(),
            coalesce: false,
            transfers,
            label: "dram-pageable".to_owned(),
        }
    }

    fn plan(&self, bytes: u64, chunks: u64) -> TransferPlan {
        if self.coalesce || chunks <= 1 {
            TransferPlan::coalesced(bytes)
        } else {
            TransferPlan::scattered(chunks, bytes / chunks.max(1))
        }
    }
}

impl Offloader for DramOffloader {
    fn swap_out(&mut self, bytes: u64, chunks: u64, now: SimTime) -> SimTime {
        if bytes == 0 {
            return now;
        }
        let plan = self.plan(bytes, chunks);
        self.transfers
            .borrow_mut()
            .schedule_with_model(&self.to_host, &self.model, plan, now)
            .end
    }

    fn swap_in(&mut self, bytes: u64, chunks: u64, now: SimTime) -> SimTime {
        if bytes == 0 {
            return now;
        }
        let plan = self.plan(bytes, chunks);
        self.transfers
            .borrow_mut()
            .schedule_with_model(&self.from_host, &self.model, plan, now)
            .end
    }

    fn location(&self) -> OffloadLocation {
        OffloadLocation::HostDram
    }

    fn label(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_sim::gpu::{GpuId, GpuSpec};
    use aqua_sim::link::bytes::{gib, mib};
    use aqua_sim::topology::ServerTopology;

    fn setup() -> (ServerTopology, Rc<RefCell<TransferEngine>>) {
        (
            ServerTopology::nvlink_pair(GpuSpec::a100_80g()),
            Rc::new(RefCell::new(TransferEngine::new())),
        )
    }

    #[test]
    fn pinned_swap_is_pcie_speed() {
        let (server, xfer) = setup();
        let mut d = DramOffloader::pinned(&server, GpuId(0), xfer);
        let done = d.swap_out(gib(1), 64, SimTime::ZERO);
        let secs = done.as_secs_f64();
        // 1 GiB at 25 GB/s ≈ 43 ms.
        assert!((0.03..0.08).contains(&secs), "secs = {secs}");
        assert_eq!(d.location(), OffloadLocation::HostDram);
        assert_eq!(d.label(), "dram-pinned");
    }

    #[test]
    fn pageable_scattered_is_slower() {
        let (server, xfer) = setup();
        let mut fast = DramOffloader::pinned(&server, GpuId(0), xfer.clone());
        let mut slow = DramOffloader::pageable_scattered(&server, GpuId(0), xfer);
        let bytes = mib(320);
        let t_fast = fast.swap_in(bytes, 256, SimTime::ZERO).as_secs_f64();
        // Issue the slow one afterwards on a fresh engine to avoid queueing.
        let (server2, xfer2) = setup();
        let mut slow2 = DramOffloader::pageable_scattered(&server2, GpuId(0), xfer2);
        let t_slow = slow2.swap_in(bytes, 256, SimTime::ZERO).as_secs_f64();
        let _ = &mut slow;
        assert!(t_slow > 3.0 * t_fast, "slow {t_slow} vs fast {t_fast}");
    }

    #[test]
    fn zero_bytes_is_instant() {
        let (server, xfer) = setup();
        let mut d = DramOffloader::pinned(&server, GpuId(0), xfer);
        let t = SimTime::from_secs(5);
        assert_eq!(d.swap_out(0, 0, t), t);
        assert_eq!(d.swap_in(0, 10, t), t);
        assert_eq!(d.on_iteration_boundary(t), t);
    }

    #[test]
    fn out_and_in_are_full_duplex() {
        let (server, xfer) = setup();
        let mut d = DramOffloader::pinned(&server, GpuId(0), xfer);
        let out = d.swap_out(gib(1), 1, SimTime::ZERO);
        let inn = d.swap_in(gib(1), 1, SimTime::ZERO);
        // Different PCIe directions do not queue behind each other.
        assert_eq!(out, inn);
    }

    #[test]
    fn sequential_swaps_queue() {
        let (server, xfer) = setup();
        let mut d = DramOffloader::pinned(&server, GpuId(0), xfer);
        let first = d.swap_out(gib(1), 1, SimTime::ZERO);
        let second = d.swap_out(gib(1), 1, SimTime::ZERO);
        assert!(second > first);
    }
}
