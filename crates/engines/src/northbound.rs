//! The northbound interface between serving engines and AQUA-LIB.
//!
//! The paper (§3, §B): "the northbound interface enables the model serving
//! infrastructure to interact with AQUA-LIB. Using the northbound interface,
//! inference serving systems share metrics like their inference load … and
//! size of dynamic context". Engines expose [`EngineStats`] snapshots (the
//! `inform_stats(...)` payload) and implement [`MemoryElastic`] so AQUA's
//! informers can donate and reclaim HBM on their behalf.

use serde::{Deserialize, Serialize};

/// A snapshot of engine load and memory, passed to `inform_stats(...)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct EngineStats {
    /// Requests queued, not yet running (the llm-informer's key signal).
    pub pending_requests: usize,
    /// Requests currently being inferred.
    pub running_requests: usize,
    /// Bytes of reserved context pool currently in use (KV cache).
    pub context_used_bytes: u64,
    /// Bytes of context pool reserved in total.
    pub context_reserved_bytes: u64,
    /// HBM bytes the engine could donate right now without disturbing the
    /// current working set.
    pub donatable_bytes: u64,
    /// HBM bytes currently donated to AQUA.
    pub donated_bytes: u64,
}

impl EngineStats {
    /// Context-pool utilisation in `[0, 1]` (0 when nothing is reserved).
    pub fn context_utilization(&self) -> f64 {
        if self.context_reserved_bytes == 0 {
            0.0
        } else {
            self.context_used_bytes as f64 / self.context_reserved_bytes as f64
        }
    }
}

/// A memory-management control loop attached to an engine (AQUA's
/// informers implement this; `aqua-core` provides `LlmInformer` and
/// `BatchInformer`).
///
/// Engines invoke their informer at every iteration boundary and idle tick,
/// passing themselves as the [`MemoryElastic`] handle. The informer may
/// donate or reclaim engine memory and talk to the AQUA coordinator. The
/// returned time is when the engine may resume — later than `now` only
/// while a blocking reclaim is being waited out (the paper's "pauses serving
/// requests for a few seconds to reclaim memory", Figure 11).
pub trait Informer {
    /// Runs one control decision at `now`.
    fn control(
        &mut self,
        engine: &mut dyn MemoryElastic,
        now: aqua_sim::time::SimTime,
    ) -> aqua_sim::time::SimTime;
}

/// An engine whose HBM footprint AQUA can elastically resize.
pub trait MemoryElastic {
    /// Current load and memory snapshot.
    fn stats(&self) -> EngineStats;

    /// Releases up to `bytes` of the engine's reserved memory to AQUA.
    /// Returns the bytes actually released (0 if nothing is spare).
    fn donate(&mut self, bytes: u64) -> u64;

    /// Returns `bytes` previously donated back to the engine's reserves.
    fn reclaim(&mut self, bytes: u64);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_handles_zero_reserve() {
        let s = EngineStats::default();
        assert_eq!(s.context_utilization(), 0.0);
        let s2 = EngineStats {
            context_used_bytes: 50,
            context_reserved_bytes: 200,
            ..Default::default()
        };
        assert!((s2.context_utilization() - 0.25).abs() < 1e-12);
    }
}
