//! DeepSpeed-ZeRO-Inference-style offloading engine.
//!
//! The paper's related work (§9): "Deepspeed-zero is another engine like
//! FlexGen that can execute models with offloading when there is not enough
//! GPU memory. FlexGen evaluated Deepspeed and showed that they perform
//! better because of their more efficient offloading strategy. Since AQUA
//! can improve FlexGen's performance, similar benefits can extend to
//! Deepspeed."
//!
//! The efficiency difference FlexGen documented is *overlap*: FlexGen
//! pipelines context I/O with compute, while DeepSpeed's inference
//! offloading executes synchronously — fetch, compute, write back. This
//! engine reproduces that strategy over the same [`Offloader`] abstraction,
//! so the AQUA-extends-to-DeepSpeed claim is directly measurable
//! (`fig07_long_prompt` includes it as a third system).

use crate::driver::Engine;
use crate::offload::Offloader;
use crate::request::InferenceRequest;
use aqua_metrics::requests::RequestRecord;
use aqua_models::cost;
use aqua_models::geometry::LlmGeometry;
use aqua_sim::gpu::GpuSpec;
use aqua_sim::link::bytes::gib;
use aqua_sim::time::SimTime;
use std::collections::VecDeque;

/// Configuration of a [`DeepSpeedEngine`].
#[derive(Debug, Clone)]
pub struct DeepSpeedConfig {
    /// HBM bytes available for inference context; above this, streaming.
    pub context_budget_bytes: u64,
    /// Decode tokens simulated per driver step.
    pub decode_chunk: u64,
}

impl Default for DeepSpeedConfig {
    fn default() -> Self {
        DeepSpeedConfig {
            context_budget_bytes: gib(8),
            decode_chunk: 8,
        }
    }
}

#[derive(Debug, Clone)]
struct DsSeq {
    req: InferenceRequest,
    arrival: SimTime,
    generated: u64,
    first_token: Option<SimTime>,
    prefilled: bool,
    streaming: bool,
}

/// Synchronous offloaded inference: context I/O and compute strictly
/// alternate (no pipelining), one request at a time.
///
/// # Example
///
/// ```
/// use aqua_engines::deepspeed::{DeepSpeedConfig, DeepSpeedEngine};
/// use aqua_engines::driver::Engine;
/// use aqua_engines::offload::DramOffloader;
/// use aqua_engines::request::InferenceRequest;
/// use aqua_models::zoo;
/// use aqua_sim::prelude::*;
/// use std::{cell::RefCell, rc::Rc};
///
/// let server = ServerTopology::nvlink_pair(GpuSpec::a100_80g());
/// let xfer = Rc::new(RefCell::new(TransferEngine::new()));
/// let geom = *zoo::opt_30b().llm_geometry().unwrap();
/// let off = DramOffloader::pinned(&server, GpuId(0), xfer);
/// let mut ds = DeepSpeedEngine::new(geom, GpuSpec::a100_80g(), DeepSpeedConfig::default(), Box::new(off));
/// ds.submit(InferenceRequest::text(0, 8_000, 8), SimTime::ZERO);
/// let mut now = SimTime::ZERO;
/// while ds.has_work() { now = ds.step(now); }
/// assert_eq!(ds.drain_completions().len(), 1);
/// ```
pub struct DeepSpeedEngine {
    geom: LlmGeometry,
    gpu: GpuSpec,
    config: DeepSpeedConfig,
    queue: VecDeque<DsSeq>,
    current: Option<DsSeq>,
    completions: Vec<RequestRecord>,
    offloader: Box<dyn Offloader>,
    tokens_generated: u64,
}

impl std::fmt::Debug for DeepSpeedEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeepSpeedEngine")
            .field("queued", &self.queue.len())
            .field("tokens_generated", &self.tokens_generated)
            .finish()
    }
}

impl DeepSpeedEngine {
    /// Creates a DeepSpeed-style engine for `geom` on `gpu`.
    pub fn new(
        geom: LlmGeometry,
        gpu: GpuSpec,
        config: DeepSpeedConfig,
        offloader: Box<dyn Offloader>,
    ) -> Self {
        DeepSpeedEngine {
            geom,
            gpu,
            config,
            queue: VecDeque::new(),
            current: None,
            completions: Vec::new(),
            offloader,
            tokens_generated: 0,
        }
    }

    /// Total tokens generated so far.
    pub fn tokens_generated(&self) -> u64 {
        self.tokens_generated
    }

    /// Whether a request of this shape must stream its context.
    pub fn must_stream(&self, req: &InferenceRequest) -> bool {
        self.geom.kv_bytes(req.prompt_tokens + req.output_tokens) > self.config.context_budget_bytes
    }
}

impl Engine for DeepSpeedEngine {
    fn submit(&mut self, mut req: InferenceRequest, now: SimTime) {
        req.output_tokens = req.output_tokens.max(1);
        let streaming = self.must_stream(&req);
        self.queue.push_back(DsSeq {
            req,
            arrival: now,
            generated: 0,
            first_token: None,
            prefilled: false,
            streaming,
        });
    }

    fn has_work(&self) -> bool {
        self.current.is_some() || !self.queue.is_empty()
    }

    fn step(&mut self, now: SimTime) -> SimTime {
        let now = self.offloader.on_iteration_boundary(now).max(now);
        if self.current.is_none() {
            self.current = self.queue.pop_front();
        }
        let Some(mut seq) = self.current.take() else {
            return now;
        };

        let end;
        if !seq.prefilled {
            // Prefill, then write the whole context out — strictly serial.
            let compute_done =
                now + cost::llm_prefill_time(&self.geom, &self.gpu, seq.req.prompt_tokens);
            end = if seq.streaming {
                let bytes = self.geom.kv_bytes(seq.req.prompt_tokens);
                self.offloader
                    .swap_out(bytes, self.geom.layers * 2, compute_done)
            } else {
                compute_done
            };
            seq.prefilled = true;
        } else {
            let chunk = self
                .config
                .decode_chunk
                .min(seq.req.output_tokens - seq.generated)
                .max(1);
            let mut cursor = now;
            for _ in 0..chunk {
                let ctx = seq.req.prompt_tokens + seq.generated + 1;
                if seq.streaming {
                    // Fetch the full context, THEN compute, THEN append —
                    // no overlap between the stages.
                    let bytes = self.geom.kv_bytes(ctx);
                    cursor = self.offloader.read_in(bytes, self.geom.layers, cursor);
                    cursor += cost::llm_decode_step_time(&self.geom, &self.gpu, 1, ctx);
                    cursor = self.offloader.swap_out(
                        self.geom.kv_bytes_per_token(),
                        self.geom.layers,
                        cursor,
                    );
                } else {
                    cursor += cost::llm_decode_step_time(&self.geom, &self.gpu, 1, ctx);
                }
                seq.generated += 1;
                self.tokens_generated += 1;
                if seq.first_token.is_none() {
                    seq.first_token = Some(cursor);
                }
            }
            end = cursor;
        }

        if seq.prefilled && seq.generated >= seq.req.output_tokens {
            self.completions.push(RequestRecord {
                id: seq.req.id.0,
                arrival: seq.arrival,
                first_token: seq.first_token.expect("decode emitted tokens"),
                completion: end,
                output_tokens: seq.generated,
            });
        } else {
            self.current = Some(seq);
        }
        end
    }

    fn drain_completions(&mut self) -> Vec<RequestRecord> {
        std::mem::take(&mut self.completions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flexgen::{FlexGenConfig, FlexGenEngine};
    use crate::offload::DramOffloader;
    use aqua_models::zoo;
    use aqua_sim::gpu::GpuId;
    use aqua_sim::topology::ServerTopology;
    use aqua_sim::transfer::TransferEngine;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn run_tokens<E: Engine>(engine: &mut E, secs: u64) -> u64 {
        let mut now = SimTime::ZERO;
        let end = SimTime::from_secs(secs);
        while engine.has_work() && now < end {
            now = engine.step(now);
        }
        engine
            .drain_completions()
            .iter()
            .map(|r| r.output_tokens)
            .sum()
    }

    #[test]
    fn flexgen_beats_deepspeed_on_long_prompts() {
        // The FlexGen paper's claim, reproduced: overlap wins.
        let geom = *zoo::opt_30b().llm_geometry().unwrap();
        let mk_off = || {
            let server = ServerTopology::nvlink_pair(GpuSpec::a100_80g());
            let xfer = Rc::new(RefCell::new(TransferEngine::new()));
            DramOffloader::pinned(&server, GpuId(0), xfer)
        };
        let mut ds = DeepSpeedEngine::new(
            geom,
            GpuSpec::a100_80g(),
            DeepSpeedConfig::default(),
            Box::new(mk_off()),
        );
        let mut fg = FlexGenEngine::new(
            geom,
            GpuSpec::a100_80g(),
            FlexGenConfig::default(),
            Box::new(mk_off()),
        );
        ds.submit(InferenceRequest::text(0, 8_000, 1_000_000), SimTime::ZERO);
        fg.submit(InferenceRequest::text(0, 8_000, 1_000_000), SimTime::ZERO);
        let mut t_ds = SimTime::ZERO;
        let mut t_fg = SimTime::ZERO;
        for _ in 0..40 {
            t_ds = ds.step(t_ds);
            t_fg = fg.step(t_fg);
        }
        // Same number of steps processed; FlexGen's clock advanced less.
        assert!(
            t_fg < t_ds,
            "FlexGen (overlapped, {t_fg}) must beat DeepSpeed (serial, {t_ds})"
        );
    }

    #[test]
    fn short_contexts_run_at_full_speed() {
        let geom = *zoo::mistral_7b().llm_geometry().unwrap();
        let server = ServerTopology::nvlink_pair(GpuSpec::a100_80g());
        let xfer = Rc::new(RefCell::new(TransferEngine::new()));
        let mut ds = DeepSpeedEngine::new(
            geom,
            GpuSpec::a100_80g(),
            DeepSpeedConfig::default(),
            Box::new(DramOffloader::pinned(&server, GpuId(0), xfer)),
        );
        let req = InferenceRequest::text(0, 128, 32);
        assert!(!ds.must_stream(&req));
        ds.submit(req, SimTime::ZERO);
        assert_eq!(run_tokens(&mut ds, 600), 32);
    }

    #[test]
    fn completes_queued_requests_in_order() {
        let geom = *zoo::opt_30b().llm_geometry().unwrap();
        let server = ServerTopology::nvlink_pair(GpuSpec::a100_80g());
        let xfer = Rc::new(RefCell::new(TransferEngine::new()));
        let mut ds = DeepSpeedEngine::new(
            geom,
            GpuSpec::a100_80g(),
            DeepSpeedConfig::default(),
            Box::new(DramOffloader::pinned(&server, GpuId(0), xfer)),
        );
        ds.submit(InferenceRequest::text(0, 100, 4), SimTime::ZERO);
        ds.submit(InferenceRequest::text(1, 100, 4), SimTime::ZERO);
        let mut now = SimTime::ZERO;
        while ds.has_work() {
            now = ds.step(now);
        }
        let recs = ds.drain_completions();
        assert_eq!(recs.len(), 2);
        assert!(recs[0].completion <= recs[1].first_token);
    }
}
