//! Inference requests as engines see them.

use aqua_sim::time::SimTime;
use serde::{Deserialize, Serialize};

/// Opaque request identifier assigned by the workload generator.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct RequestId(pub u64);

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "req{}", self.0)
    }
}

/// One inference request submitted to a serving engine.
///
/// For LLM engines `prompt_tokens`/`output_tokens` are token counts; for the
/// producer engines (image/audio) a request is one item (image or clip) and
/// the token fields are ignored.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InferenceRequest {
    /// Request identifier (unique per workload).
    pub id: RequestId,
    /// Prompt length in tokens.
    pub prompt_tokens: u64,
    /// Number of tokens to generate before the request completes.
    pub output_tokens: u64,
    /// Index of the LoRA adapter this request needs, if any.
    pub adapter: Option<usize>,
}

impl InferenceRequest {
    /// A plain text-generation request.
    pub fn text(id: u64, prompt_tokens: u64, output_tokens: u64) -> Self {
        InferenceRequest {
            id: RequestId(id),
            prompt_tokens,
            output_tokens,
            adapter: None,
        }
    }

    /// A request that must run with LoRA adapter `adapter`.
    pub fn with_adapter(id: u64, prompt_tokens: u64, output_tokens: u64, adapter: usize) -> Self {
        InferenceRequest {
            id: RequestId(id),
            prompt_tokens,
            output_tokens,
            adapter: Some(adapter),
        }
    }

    /// A producer-side item request (one image or one audio clip).
    pub fn item(id: u64) -> Self {
        InferenceRequest {
            id: RequestId(id),
            prompt_tokens: 0,
            output_tokens: 1,
            adapter: None,
        }
    }
}

/// A request annotated with its arrival time (as queued inside an engine).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArrivedRequest {
    /// The request.
    pub request: InferenceRequest,
    /// When it was submitted to the engine.
    pub arrival: SimTime,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let r = InferenceRequest::text(1, 100, 50);
        assert_eq!(r.id, RequestId(1));
        assert_eq!(r.adapter, None);
        let l = InferenceRequest::with_adapter(2, 10, 5, 7);
        assert_eq!(l.adapter, Some(7));
        let i = InferenceRequest::item(3);
        assert_eq!(i.output_tokens, 1);
        assert_eq!(RequestId(3).to_string(), "req3");
    }
}
