//! Inference requests as engines see them, plus the per-request lifecycle
//! bookkeeping ([`SeqLifecycle`]) every serving engine shares.

use aqua_metrics::requests::RequestRecord;
use aqua_sim::time::SimTime;
use serde::{Deserialize, Serialize};

/// Opaque request identifier assigned by the workload generator.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct RequestId(pub u64);

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "req{}", self.0)
    }
}

/// One inference request submitted to a serving engine.
///
/// For LLM engines `prompt_tokens`/`output_tokens` are token counts; for the
/// producer engines (image/audio) a request is one item (image or clip) and
/// the token fields are ignored.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InferenceRequest {
    /// Request identifier (unique per workload).
    pub id: RequestId,
    /// Prompt length in tokens.
    pub prompt_tokens: u64,
    /// Number of tokens to generate before the request completes.
    pub output_tokens: u64,
    /// Index of the LoRA adapter this request needs, if any.
    pub adapter: Option<usize>,
}

impl InferenceRequest {
    /// A plain text-generation request.
    pub fn text(id: u64, prompt_tokens: u64, output_tokens: u64) -> Self {
        InferenceRequest {
            id: RequestId(id),
            prompt_tokens,
            output_tokens,
            adapter: None,
        }
    }

    /// A request that must run with LoRA adapter `adapter`.
    pub fn with_adapter(id: u64, prompt_tokens: u64, output_tokens: u64, adapter: usize) -> Self {
        InferenceRequest {
            id: RequestId(id),
            prompt_tokens,
            output_tokens,
            adapter: Some(adapter),
        }
    }

    /// A producer-side item request (one image or one audio clip).
    pub fn item(id: u64) -> Self {
        InferenceRequest {
            id: RequestId(id),
            prompt_tokens: 0,
            output_tokens: 1,
            adapter: None,
        }
    }
}

/// A request annotated with its arrival time (as queued inside an engine).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArrivedRequest {
    /// The request.
    pub request: InferenceRequest,
    /// When it was submitted to the engine.
    pub arrival: SimTime,
}

/// Per-request lifecycle bookkeeping shared by every serving engine.
///
/// The vLLM, CFS and gateway engines all track the same four facts about a
/// sequence — the request, its arrival, how many tokens it has generated and
/// when the first one appeared — and all turn them into the same
/// [`RequestRecord`] at completion. This struct owns that bookkeeping so the
/// engines only add their scheduler-specific state (residency, swap flags).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeqLifecycle {
    /// The request being served.
    pub req: InferenceRequest,
    /// When the request entered the engine.
    pub arrival: SimTime,
    /// Output tokens generated so far.
    pub generated: u64,
    /// When the first output token was produced, once it has been.
    pub first_token: Option<SimTime>,
}

impl SeqLifecycle {
    /// Starts tracking `req` as of `arrival`. Output is clamped to at least
    /// one token: a zero-token request would otherwise complete without ever
    /// producing a first-token timestamp.
    pub fn new(mut req: InferenceRequest, arrival: SimTime) -> Self {
        req.output_tokens = req.output_tokens.max(1);
        SeqLifecycle {
            req,
            arrival,
            generated: 0,
            first_token: None,
        }
    }

    /// Tokens currently in the KV context: the prompt plus everything
    /// generated so far. This is also what a preempted-and-recomputed
    /// sequence must re-prefill before decoding resumes.
    pub fn context_tokens(&self) -> u64 {
        self.req.prompt_tokens + self.generated
    }

    /// Accounts one generated token at `at`, stamping the first-token time
    /// on the first call.
    pub fn note_token(&mut self, at: SimTime) {
        self.generated += 1;
        if self.first_token.is_none() {
            self.first_token = Some(at);
        }
    }

    /// Returns `true` once the request has generated all its tokens.
    pub fn is_complete(&self) -> bool {
        self.generated >= self.req.output_tokens
    }

    /// The completion record, with `completion` as the last-token time.
    ///
    /// # Panics
    ///
    /// Panics if no token was ever generated (records require a first-token
    /// timestamp).
    pub fn record(&self, completion: SimTime) -> RequestRecord {
        RequestRecord {
            id: self.req.id.0,
            arrival: self.arrival,
            first_token: self
                .first_token
                .expect("completed sequences emitted at least one token"),
            completion,
            output_tokens: self.generated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let r = InferenceRequest::text(1, 100, 50);
        assert_eq!(r.id, RequestId(1));
        assert_eq!(r.adapter, None);
        let l = InferenceRequest::with_adapter(2, 10, 5, 7);
        assert_eq!(l.adapter, Some(7));
        let i = InferenceRequest::item(3);
        assert_eq!(i.output_tokens, 1);
        assert_eq!(RequestId(3).to_string(), "req3");
    }

    #[test]
    fn lifecycle_clamps_and_counts() {
        let mut s = SeqLifecycle::new(InferenceRequest::text(7, 100, 0), SimTime::from_secs(1));
        assert_eq!(s.req.output_tokens, 1, "zero-token requests are clamped");
        assert_eq!(s.context_tokens(), 100);
        assert!(!s.is_complete());
        s.note_token(SimTime::from_secs(2));
        assert_eq!(s.first_token, Some(SimTime::from_secs(2)));
        assert_eq!(s.context_tokens(), 101);
        assert!(s.is_complete());
        let r = s.record(SimTime::from_secs(3));
        assert_eq!(r.id, 7);
        assert_eq!(r.output_tokens, 1);
        assert!((r.ttft() - 1.0).abs() < 1e-9);
        assert!((r.rct() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn lifecycle_first_token_is_sticky() {
        let mut s = SeqLifecycle::new(InferenceRequest::text(1, 10, 3), SimTime::ZERO);
        s.note_token(SimTime::from_secs(1));
        s.note_token(SimTime::from_secs(2));
        assert_eq!(s.first_token, Some(SimTime::from_secs(1)));
        assert_eq!(s.generated, 2);
        assert!(!s.is_complete());
    }

    #[test]
    #[should_panic(expected = "at least one token")]
    fn record_without_tokens_panics() {
        SeqLifecycle::new(InferenceRequest::text(0, 1, 1), SimTime::ZERO).record(SimTime::ZERO);
    }
}
