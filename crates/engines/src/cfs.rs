//! Completely fair prompt scheduling (paper §5).
//!
//! Inspired by Linux's CFS, the engine time-shares the GPU across *all*
//! outstanding prompts instead of batch-processing an admitted subset:
//!
//! * A **slice** generates `slice_tokens` tokens for the active set.
//! * After each slice, the prompts with the **fewest generated tokens** run
//!   next (new arrivals have zero, so they reach the GPU within one slice —
//!   that is where the 4× TTFT improvement of Figure 9 comes from).
//! * Context switching **pages KV caches** out of and into HBM through the
//!   configured [`Offloader`]. Over PCIe to DRAM this overhead inflates RCT
//!   by ~50% (Figure 1b); over NVLink via AQUA it nearly vanishes.

use crate::driver::Engine;
use crate::kvcache::{PagedKvCache, DEFAULT_BLOCK_TOKENS};
use crate::northbound::{EngineStats, MemoryElastic};
use crate::offload::Offloader;
use crate::request::{InferenceRequest, SeqLifecycle};
use aqua_metrics::requests::RequestRecord;
use aqua_models::cost;
use aqua_models::geometry::LlmGeometry;
use aqua_sim::gpu::GpuSpec;
use aqua_sim::link::bytes::gib;
use aqua_sim::time::SimTime;
use aqua_telemetry::{null_tracer, trace, SharedTracer, TraceEvent};

/// Configuration of a [`CfsEngine`].
#[derive(Debug, Clone)]
pub struct CfsConfig {
    /// Tokens generated per scheduling slice (the paper's Figure 6 uses 5).
    pub slice_tokens: u64,
    /// Maximum sequences active in one slice.
    pub max_active: usize,
    /// Bytes reserved for the resident KV pool.
    pub kv_pool_bytes: u64,
    /// Tokens per KV block.
    pub block_tokens: u64,
}

impl Default for CfsConfig {
    fn default() -> Self {
        CfsConfig {
            slice_tokens: 5,
            max_active: 64,
            kv_pool_bytes: gib(30),
            block_tokens: DEFAULT_BLOCK_TOKENS,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Place {
    /// Not yet prefilled.
    New,
    /// KV cache resident in HBM.
    Resident,
    /// KV cache offloaded through the offloader.
    Swapped,
}

#[derive(Debug, Clone)]
struct CfsSeq {
    life: SeqLifecycle,
    place: Place,
}

/// Token-slice fair scheduler over a paged KV pool.
///
/// # Example
///
/// ```
/// use aqua_engines::cfs::{CfsConfig, CfsEngine};
/// use aqua_engines::driver::Engine;
/// use aqua_engines::offload::DramOffloader;
/// use aqua_engines::request::InferenceRequest;
/// use aqua_models::zoo;
/// use aqua_sim::prelude::*;
/// use std::{cell::RefCell, rc::Rc};
///
/// let server = ServerTopology::nvlink_pair(GpuSpec::a100_80g());
/// let xfer = Rc::new(RefCell::new(TransferEngine::new()));
/// let geom = *zoo::mistral_7b().llm_geometry().unwrap();
/// let off = DramOffloader::pinned(&server, GpuId(0), xfer);
/// let mut cfs = CfsEngine::new(geom, GpuSpec::a100_80g(), CfsConfig::default(), Box::new(off));
/// cfs.submit(InferenceRequest::text(0, 128, 10), SimTime::ZERO);
/// let mut now = SimTime::ZERO;
/// while cfs.has_work() { now = cfs.step(now); }
/// assert_eq!(cfs.drain_completions().len(), 1);
/// ```
pub struct CfsEngine {
    geom: LlmGeometry,
    gpu: GpuSpec,
    config: CfsConfig,
    kv: PagedKvCache,
    seqs: Vec<CfsSeq>,
    completions: Vec<RequestRecord>,
    offloader: Box<dyn Offloader>,
    context_switches: u64,
    swapped_bytes: u64,
    slices: u64,
    tracer: SharedTracer,
    scope: String,
    last_outstanding_gauge: Option<f64>,
}

impl std::fmt::Debug for CfsEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CfsEngine")
            .field("outstanding", &self.seqs.len())
            .field("slices", &self.slices)
            .field("context_switches", &self.context_switches)
            .finish()
    }
}

impl CfsEngine {
    /// Creates a fair scheduler for `geom` on `gpu`, context-switching
    /// through `offloader`.
    pub fn new(
        geom: LlmGeometry,
        gpu: GpuSpec,
        config: CfsConfig,
        offloader: Box<dyn Offloader>,
    ) -> Self {
        let kv = PagedKvCache::new(geom, config.kv_pool_bytes, config.block_tokens);
        CfsEngine {
            geom,
            gpu,
            config,
            kv,
            seqs: Vec::new(),
            completions: Vec::new(),
            offloader,
            context_switches: 0,
            swapped_bytes: 0,
            slices: 0,
            tracer: null_tracer(),
            scope: "cfs".to_owned(),
            last_outstanding_gauge: None,
        }
    }

    /// Attaches a tracer; every slice becomes a [`TraceEvent::SliceFinished`]
    /// and context switching feeds the `cfs.*` counters. `scope` labels this
    /// engine's events (e.g. `"cfs:s0/gpu0"`).
    pub fn with_tracer(mut self, tracer: SharedTracer, scope: impl Into<String>) -> Self {
        self.tracer = tracer;
        self.scope = scope.into();
        self
    }

    /// Number of scheduling slices executed.
    pub fn slices(&self) -> u64 {
        self.slices
    }

    /// Number of sequences paged out across all context switches.
    pub fn context_switches(&self) -> u64 {
        self.context_switches
    }

    /// Total bytes moved by context switching (both directions).
    pub fn swapped_bytes(&self) -> u64 {
        self.swapped_bytes
    }

    /// Outstanding (incomplete) sequences.
    pub fn outstanding(&self) -> usize {
        self.seqs.len()
    }

    /// Offload-backend label (for reports).
    pub fn offloader_label(&self) -> &str {
        self.offloader.label()
    }

    /// Picks the fair active set: least-generated first, bounded by KV pool
    /// capacity (context plus slice growth) and `max_active`.
    fn select_active(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.seqs.len()).collect();
        let key = |&i: &usize| {
            let s = &self.seqs[i];
            (s.life.generated, s.life.arrival, s.life.req.id)
        };
        // The scan below almost always stops after `max_active` picks, so a
        // full O(n log n) sort of a deep backlog is wasted work: partition
        // the smallest-key prefix out first and sort only that. The prefix
        // is generous (skipped oversized contexts consume candidates), and
        // if it still cannot settle the answer the full sort runs — the
        // chosen set is identical either way because keys are unique
        // (request ids are) and both paths scan the same ascending order.
        let prefix = self.config.max_active + 64;
        let partial = order.len() > prefix.saturating_mul(2);
        if partial {
            order.select_nth_unstable_by_key(prefix, key);
            order[..prefix].sort_unstable_by_key(key);
            if let Some(chosen) = self.scan_for_active(order[..prefix].iter().copied(), false) {
                return chosen;
            }
        }
        order.sort_unstable_by_key(key);
        self.scan_for_active(order.iter().copied(), true)
            .expect("full scan is total")
    }

    /// Walks candidates in fair order, picking until the KV pool or
    /// `max_active` is exhausted. Returns `None` when `complete` is false
    /// and the walk ran out of candidates while slots remained — a longer
    /// candidate list could still add picks, so the caller must retry with
    /// the full order.
    fn scan_for_active(
        &self,
        order: impl Iterator<Item = usize>,
        complete: bool,
    ) -> Option<Vec<usize>> {
        let mut chosen = Vec::new();
        let mut blocks = 0u64;
        for i in order {
            if chosen.len() >= self.config.max_active {
                break;
            }
            let s = &self.seqs[i];
            let tokens = s.life.context_tokens() + self.config.slice_tokens;
            let need = tokens.div_ceil(self.config.block_tokens);
            if blocks + need > self.kv.total_blocks() {
                if chosen.is_empty() {
                    panic!(
                        "CFS KV pool ({} blocks) cannot hold a single context of {} tokens",
                        self.kv.total_blocks(),
                        tokens
                    );
                }
                continue;
            }
            blocks += need;
            chosen.push(i);
        }
        if complete || chosen.len() >= self.config.max_active {
            Some(chosen)
        } else {
            None
        }
    }
}

impl Engine for CfsEngine {
    fn submit(&mut self, req: InferenceRequest, now: SimTime) {
        self.seqs.push(CfsSeq {
            life: SeqLifecycle::new(req, now),
            place: Place::New,
        });
    }

    fn has_work(&self) -> bool {
        !self.seqs.is_empty()
    }

    fn step(&mut self, now: SimTime) -> SimTime {
        self.slices += 1;
        let now = self.offloader.on_iteration_boundary(now).max(now);
        let slice_start = now;
        let active = self.select_active();
        let active_count = active.len() as u64;
        let is_active = |i: usize| active.contains(&i);

        // Page out residents that lost their slot.
        let mut bytes_out = 0u64;
        let mut chunks_out = 0u64;
        for (i, s) in self.seqs.iter_mut().enumerate() {
            if s.place == Place::Resident && !is_active(i) {
                bytes_out += self.kv.free_seq(s.life.req.id);
                chunks_out += 2 * self.geom.layers;
                s.place = Place::Swapped;
                self.context_switches += 1;
            }
        }
        let out_done = self.offloader.swap_out(bytes_out, chunks_out, now);

        // Page in previously swapped members of the active set.
        let mut bytes_in = 0u64;
        let mut chunks_in = 0u64;
        let mut prefill_tokens = 0u64;
        for &i in &active {
            let s = &mut self.seqs[i];
            match s.place {
                Place::Swapped => {
                    let tokens = s.life.context_tokens();
                    self.kv
                        .grow_seq(s.life.req.id, tokens)
                        .expect("select_active sized the set to fit");
                    bytes_in += self.geom.kv_bytes(tokens);
                    chunks_in += 2 * self.geom.layers;
                    s.place = Place::Resident;
                }
                Place::New => {
                    self.kv
                        .grow_seq(s.life.req.id, s.life.req.prompt_tokens)
                        .expect("select_active sized the set to fit");
                    prefill_tokens += s.life.req.prompt_tokens;
                    s.place = Place::Resident;
                }
                Place::Resident => {}
            }
        }
        let in_done = self.offloader.swap_in(bytes_in, chunks_in, now);
        self.swapped_bytes += bytes_out + bytes_in;
        if chunks_out > 0 {
            self.tracer.incr(
                "cfs.context_switches_out",
                chunks_out / (2 * self.geom.layers),
            );
        }
        self.tracer.incr("cfs.swapped_bytes", bytes_out + bytes_in);

        // Compute starts once incoming context has landed; outgoing copies
        // overlap on the other link direction but must also finish before
        // the freed blocks are reused — take the max.
        let io_done = out_done.max(in_done);
        let t_prefill = cost::llm_prefill_time(&self.geom, &self.gpu, prefill_tokens);
        let mut cursor = io_done + t_prefill;

        // Run the slice: up to `slice_tokens` decode steps. KV growth is
        // batched to one `grow_seq` per sequence at slice end — nothing
        // inside the loop reads the pool (decode timing depends only on
        // `life.context_tokens()`), and `select_active` already reserved the
        // full end-of-slice footprint, so per-token bookkeeping would only
        // repeat the same map lookup `slice_tokens` times.
        let mut live: Vec<usize> = active;
        let gen_before: Vec<(usize, u64)> = live
            .iter()
            .map(|&i| (i, self.seqs[i].life.generated))
            .collect();
        let mut slice_tokens_generated = 0u64;
        for _ in 0..self.config.slice_tokens {
            live.retain(|&i| !self.seqs[i].life.is_complete());
            if live.is_empty() {
                break;
            }
            let batch = live.len() as u64;
            slice_tokens_generated += batch;
            let total_ctx: u64 = live
                .iter()
                .map(|&i| self.seqs[i].life.context_tokens() + 1)
                .sum();
            cursor += cost::llm_decode_step_time(&self.geom, &self.gpu, batch, total_ctx);
            for &i in &live {
                self.seqs[i].life.note_token(cursor);
            }
        }
        for (i, before) in gen_before {
            let s = &self.seqs[i];
            let grew = s.life.generated - before;
            if grew > 0 {
                self.kv
                    .grow_seq(s.life.req.id, grew)
                    .expect("slice growth reserved at selection");
            }
        }

        // Retire completed sequences.
        let mut i = 0;
        while i < self.seqs.len() {
            if self.seqs[i].life.is_complete() {
                let s = self.seqs.swap_remove(i);
                self.kv.free_seq(s.life.req.id);
                self.completions.push(s.life.record(cursor));
            } else {
                i += 1;
            }
        }

        trace!(
            self.tracer,
            TraceEvent::SliceFinished {
                engine: self.scope.clone(),
                slice: self.slices,
                active: active_count,
                tokens: slice_tokens_generated,
                start: slice_start,
                end: cursor,
            }
        );
        if self.tracer.enabled() {
            let outstanding = self.seqs.len() as f64;
            if self.last_outstanding_gauge != Some(outstanding) {
                self.last_outstanding_gauge = Some(outstanding);
                let name = format!("{}.outstanding", self.scope);
                self.tracer.gauge(&name, outstanding);
                self.tracer.emit(TraceEvent::Gauge {
                    name,
                    value: outstanding,
                    at: cursor,
                });
            }
        }
        cursor
    }

    fn drain_completions(&mut self) -> Vec<RequestRecord> {
        std::mem::take(&mut self.completions)
    }
}

impl MemoryElastic for CfsEngine {
    fn stats(&self) -> EngineStats {
        EngineStats {
            pending_requests: self.seqs.iter().filter(|s| s.place == Place::New).count(),
            running_requests: self.seqs.iter().filter(|s| s.place != Place::New).count(),
            context_used_bytes: self.kv.used_bytes(),
            context_reserved_bytes: self.kv.capacity_bytes(),
            donatable_bytes: 0, // CFS hosts memory-bound consumers
            donated_bytes: 0,
        }
    }

    fn donate(&mut self, _bytes: u64) -> u64 {
        0
    }

    fn reclaim(&mut self, _bytes: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offload::DramOffloader;
    use aqua_models::zoo;
    use aqua_sim::gpu::GpuId;
    use aqua_sim::topology::ServerTopology;
    use aqua_sim::transfer::TransferEngine;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn engine(pool_gib: u64, slice: u64, max_active: usize) -> CfsEngine {
        let server = ServerTopology::nvlink_pair(GpuSpec::a100_80g());
        let xfer = Rc::new(RefCell::new(TransferEngine::new()));
        let geom = *zoo::codellama_34b().llm_geometry().unwrap();
        CfsEngine::new(
            geom,
            GpuSpec::a100_80g(),
            CfsConfig {
                slice_tokens: slice,
                max_active,
                kv_pool_bytes: gib(pool_gib),
                ..CfsConfig::default()
            },
            Box::new(DramOffloader::pinned(&server, GpuId(0), xfer)),
        )
    }

    fn run(engine: &mut CfsEngine) -> SimTime {
        let mut now = SimTime::ZERO;
        let mut guard = 0;
        while engine.has_work() {
            now = engine.step(now);
            guard += 1;
            assert!(guard < 500_000, "no progress");
        }
        now
    }

    #[test]
    fn completes_all_requests() {
        let mut e = engine(10, 5, 8);
        for i in 0..10 {
            e.submit(InferenceRequest::text(i, 200, 30), SimTime::ZERO);
        }
        run(&mut e);
        let recs = e.drain_completions();
        assert_eq!(recs.len(), 10);
        assert!(recs.iter().all(|r| r.output_tokens == 30));
        assert_eq!(e.outstanding(), 0);
    }

    #[test]
    fn late_arrival_gets_fast_first_token() {
        // Saturate the engine with long jobs, then submit a latecomer: CFS
        // must schedule it in the next slice, not after the long jobs drain.
        let mut e = engine(6, 5, 4);
        let mut now = SimTime::ZERO;
        for i in 0..8 {
            e.submit(InferenceRequest::text(i, 512, 400), now);
        }
        // Run a few slices, then inject the latecomer.
        for _ in 0..6 {
            now = e.step(now);
        }
        let late_arrival = now;
        e.submit(InferenceRequest::text(99, 128, 10), now);
        while e.has_work() {
            now = e.step(now);
        }
        let recs = e.drain_completions();
        let late = recs.iter().find(|r| r.id == 99).expect("latecomer done");
        let ttft = late.first_token.duration_since(late_arrival).as_secs_f64();
        // One slice of 4×5 decode steps on a 34B model is well under 2 s;
        // batch processing would have made it wait tens of seconds.
        assert!(ttft < 3.0, "latecomer TTFT {ttft}");
    }

    #[test]
    fn context_switching_pages_kv() {
        // More sequences than the pool can hold resident: swapping must occur
        // (12 × ~840-token contexts on Codellama-34B ≈ 2 GB of KV > 1 GiB).
        let mut e = engine(1, 5, 16);
        for i in 0..12 {
            e.submit(InferenceRequest::text(i, 800, 40), SimTime::ZERO);
        }
        run(&mut e);
        assert!(e.context_switches() > 0, "expected paging");
        assert!(e.swapped_bytes() > 0);
        assert_eq!(e.drain_completions().len(), 12);
    }

    #[test]
    fn fairness_bounds_ttft_spread() {
        let mut e = engine(8, 5, 8);
        for i in 0..16 {
            e.submit(InferenceRequest::text(i, 300, 60), SimTime::ZERO);
        }
        run(&mut e);
        let recs = e.drain_completions();
        let ttfts: Vec<f64> = recs.iter().map(|r| r.ttft()).collect();
        let max = ttfts.iter().cloned().fold(0.0, f64::max);
        let min = ttfts.iter().cloned().fold(f64::MAX, f64::min);
        // All 16 requests see a first token within a few slices of each
        // other; batch processing would give the last ones ~16x the first's.
        assert!(max / min < 10.0, "ttft spread {min}..{max}");
    }

    #[test]
    #[should_panic(expected = "cannot hold a single context")]
    fn oversized_context_panics_clearly() {
        let mut e = engine(1, 5, 4);
        e.submit(InferenceRequest::text(0, 100_000, 10), SimTime::ZERO);
        e.step(SimTime::ZERO);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(16))]

        // Liveness and accounting: every submitted request eventually
        // completes with exactly its requested tokens, first tokens never
        // precede arrivals, and the KV pool drains back to empty.
        #[test]
        fn cfs_liveness_and_accounting(
            reqs in proptest::collection::vec((1u64..600, 1u64..80, 0u64..20), 1..14)
        ) {
            use crate::driver::Driver;
            let mut e = engine(4, 5, 6);
            let mut driver = Driver::new();
            for (i, (prompt, output, at_s)) in reqs.iter().enumerate() {
                driver.schedule_arrival(
                    0,
                    SimTime::from_secs(*at_s),
                    InferenceRequest::text(i as u64, *prompt, *output),
                );
            }
            {
                let mut engines: Vec<&mut dyn Engine> = vec![&mut e];
                driver.run(&mut engines, SimTime::from_secs(100_000));
            }
            proptest::prop_assert!(!e.has_work(), "drained within the horizon");
            let recs = e.drain_completions();
            proptest::prop_assert_eq!(recs.len(), reqs.len());
            for r in &recs {
                let (_, output, _) = reqs[r.id as usize];
                proptest::prop_assert_eq!(r.output_tokens, output.max(1));
                proptest::prop_assert!(r.first_token >= r.arrival);
                proptest::prop_assert!(r.completion >= r.first_token);
            }
            proptest::prop_assert_eq!(e.kv.used_blocks(), 0, "pool drains");
        }
    }

    #[test]
    fn traced_engine_journals_slices_and_paging() {
        use aqua_telemetry::{JournalTracer, TraceEvent};
        use std::sync::Arc;

        let journal = Arc::new(JournalTracer::new());
        let mut e = engine(1, 5, 16);
        e = e.with_tracer(journal.clone(), "cfs:test");
        for i in 0..12 {
            e.submit(InferenceRequest::text(i, 800, 40), SimTime::ZERO);
        }
        run(&mut e);
        let events = journal.events();
        let slices = events
            .iter()
            .filter(
                |ev| matches!(ev, TraceEvent::SliceFinished { engine, .. } if engine == "cfs:test"),
            )
            .count() as u64;
        assert_eq!(slices, e.slices());
        // Every slice's duration is non-negative and tokens are accounted.
        for ev in &events {
            if let TraceEvent::SliceFinished { start, end, .. } = ev {
                assert!(end >= start);
            }
        }
        assert_eq!(
            journal.registry().counter("cfs.swapped_bytes"),
            e.swapped_bytes()
        );
        assert!(events.iter().any(
            |ev| matches!(ev, TraceEvent::Gauge { name, .. } if name == "cfs:test.outstanding")
        ));
    }

    #[test]
    fn stats_report_places() {
        let mut e = engine(8, 5, 4);
        for i in 0..3 {
            e.submit(InferenceRequest::text(i, 100, 50), SimTime::ZERO);
        }
        let s = e.stats();
        assert_eq!(s.pending_requests, 3);
        e.step(SimTime::ZERO);
        let s = e.stats();
        assert_eq!(s.pending_requests + s.running_requests, 3);
        assert_eq!(e.donate(1 << 30), 0, "consumers do not donate");
    }
}
