//! # aqua-engines — serving-engine simulations
//!
//! The paper integrates AQUA into real serving engines; this crate provides
//! faithful scheduler-level simulations of those engines, all driven by the
//! roofline cost model in `aqua-models` and the hardware model in `aqua-sim`:
//!
//! * [`vllm`] — vLLM-style continuous batching over a paged KV cache, with
//!   admission control (the source of TTFT spikes under bursts), recompute
//!   preemption, LoRA adapter caching and elastic producer-mode donation.
//! * [`cfs`] — the paper's completely fair scheduler (§5): token-slice
//!   time-sharing with context switching through an [`offload::Offloader`].
//! * [`flexgen`] — FlexGen-style long-prompt engine whose decode pipeline is
//!   bounded by context-streaming I/O (the Figure 7 workload).
//! * [`deepspeed`] — DeepSpeed-style synchronous offloading (the slower
//!   comparator the paper's related work cites; §9).
//! * [`producer`] — compute-bound image/audio engines that serve requests in
//!   plateau-sized batches and donate their spare HBM.
//! * [`offload`] — the offload-backend abstraction (`DramOffloader` here;
//!   AQUA's NVLink offloader lives in `aqua-core`).
//! * [`northbound`] — the stats/donate/reclaim interface AQUA's informers
//!   drive (`inform_stats(...)` in the paper's §B).
//! * [`driver`] — a deterministic multi-engine simulation driver.
//! * [`kvcache`] — the paged KV block pool.
//! * [`request`] — request types shared with the workload generators.

pub mod cfs;
pub mod deepspeed;
pub mod driver;
pub mod flexgen;
pub mod gauges;
pub mod kvcache;
pub mod northbound;
pub mod offload;
pub mod producer;
pub mod request;
pub mod vllm;

pub mod prelude {
    //! Convenience re-exports.
    pub use crate::cfs::{CfsConfig, CfsEngine};
    pub use crate::deepspeed::{DeepSpeedConfig, DeepSpeedEngine};
    pub use crate::driver::{Driver, Engine};
    pub use crate::flexgen::{FlexGenConfig, FlexGenEngine};
    pub use crate::kvcache::{BlockId, PagedKvCache};
    pub use crate::northbound::{EngineStats, Informer, MemoryElastic};
    pub use crate::offload::{DramOffloader, OffloadLocation, Offloader};
    pub use crate::producer::{ProducerEngine, ProducerModel};
    pub use crate::request::{InferenceRequest, RequestId};
    pub use crate::vllm::{PreemptionPolicy, VllmConfig, VllmEngine};
}

pub use prelude::*;
