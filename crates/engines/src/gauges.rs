//! Change-detecting gauge name cache.
//!
//! Engines journal a handful of gauges (`queue_depth`, `running`, …) every
//! scheduler iteration, but only when the value changed. The naive pattern —
//! `format!("{scope}.{suffix}")` into a `BTreeMap<String, f64>` per probe —
//! allocates a scope-qualified name on every iteration just to discover the
//! value is unchanged. [`GaugeCache`] interns each full gauge name once and
//! answers the "did it change?" probe with a linear scan over the few
//! registered suffixes, which is allocation-free on the (overwhelmingly
//! common) unchanged path.

/// Interned `scope.suffix` gauge names with last-emitted values.
#[derive(Debug, Clone, Default)]
pub struct GaugeCache {
    entries: Vec<(&'static str, String, Option<f64>)>,
}

impl GaugeCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Forgets interned names (call when the scope string changes).
    pub fn reset(&mut self) {
        self.entries.clear();
    }

    /// Records `value` for `scope.suffix` and returns the interned full name
    /// if it differs from the previously recorded value, `None` when
    /// unchanged. The first observation of a suffix always reports changed.
    pub fn changed(&mut self, scope: &str, suffix: &'static str, value: f64) -> Option<&str> {
        let idx = match self.entries.iter().position(|(s, _, _)| *s == suffix) {
            Some(i) => i,
            None => {
                self.entries
                    .push((suffix, format!("{scope}.{suffix}"), None));
                self.entries.len() - 1
            }
        };
        let (_, name, last) = &mut self.entries[idx];
        if *last == Some(value) {
            None
        } else {
            *last = Some(value);
            Some(name)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_changes_only() {
        let mut g = GaugeCache::new();
        assert_eq!(g.changed("eng", "depth", 1.0), Some("eng.depth"));
        assert_eq!(g.changed("eng", "depth", 1.0), None);
        assert_eq!(g.changed("eng", "depth", 2.0), Some("eng.depth"));
        // Independent suffixes do not interfere.
        assert_eq!(g.changed("eng", "running", 2.0), Some("eng.running"));
        assert_eq!(g.changed("eng", "depth", 2.0), None);
    }

    #[test]
    fn reset_forgets_names_and_values() {
        let mut g = GaugeCache::new();
        assert!(g.changed("a", "x", 1.0).is_some());
        g.reset();
        assert_eq!(g.changed("b", "x", 1.0), Some("b.x"));
    }
}
