//! vLLM-style serving engine: continuous batching over a paged KV cache.
//!
//! This reproduces the scheduler behaviour the paper measures (§1, §5):
//!
//! * New requests are **admitted only if their prompt's KV cache fits** in
//!   the block pool; otherwise they queue. Under bursts the queue grows and
//!   time-to-first-token spikes (Figure 1a, Figure 9's "jumps in RCTs for
//!   vLLM at 20 requests").
//! * Running sequences each generate one token per iteration (continuous
//!   batching, Orca-style). When the pool runs dry mid-decode, the youngest
//!   sequence is preempted and recomputed later (vLLM's recompute policy).
//! * LoRA requests load their adapter into a fixed-slot GPU cache through
//!   the configured [`Offloader`] before computing (§B.1) — this is the data
//!   path AQUA accelerates in Figures 8 and 12.
//! * In producer mode, an attached [`Informer`] donates free KV-pool memory
//!   to AQUA and reclaims it under load (Figures 10 and 11).

use crate::driver::Engine;
use crate::kvcache::{PagedKvCache, DEFAULT_BLOCK_TOKENS};
use crate::northbound::{EngineStats, Informer, MemoryElastic};
use crate::offload::Offloader;
use crate::request::{InferenceRequest, SeqLifecycle};
use aqua_metrics::requests::RequestRecord;
use aqua_models::cost;
use aqua_models::geometry::LlmGeometry;
use aqua_models::lora::LoraAdapter;
use aqua_sim::gpu::GpuSpec;
use aqua_sim::link::bytes::gib;
use aqua_sim::time::SimTime;
use aqua_telemetry::{null_tracer, trace, SharedTracer, TraceEvent};
use std::collections::VecDeque;

/// What happens to a sequence preempted when the KV pool runs dry.
///
/// vLLM supports both: discard-and-recompute (its default) and swapping
/// the KV cache out through the offload backend. Recompute trades GPU
/// compute for zero I/O; swap trades I/O for zero recompute — which wins
/// depends entirely on how fast the offload path is, which is why this is
/// an AQUA ablation axis (`ablate_preemption`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PreemptionPolicy {
    /// Free the KV cache and re-prefill prompt + generated tokens later.
    #[default]
    Recompute,
    /// Swap the KV cache to the offload backend; swap it back on
    /// re-admission (requires an offloader).
    Swap,
}

/// Configuration of a [`VllmEngine`].
#[derive(Debug, Clone)]
pub struct VllmConfig {
    /// Maximum sequences batched per iteration.
    pub max_batch: usize,
    /// Bytes reserved for the paged KV pool.
    pub kv_pool_bytes: u64,
    /// Tokens per KV block.
    pub block_tokens: u64,
    /// GPU adapter-cache slots (number of LoRA adapters resident at once).
    pub lora_cache_slots: usize,
    /// Minimum KV pool retained when donating memory (the paper's producer
    /// LLM retains 5 GB "to stay responsive").
    pub donation_floor_bytes: u64,
    /// What happens to sequences preempted under KV pressure.
    pub preemption: PreemptionPolicy,
}

impl Default for VllmConfig {
    fn default() -> Self {
        VllmConfig {
            max_batch: 256,
            kv_pool_bytes: gib(40),
            block_tokens: DEFAULT_BLOCK_TOKENS,
            lora_cache_slots: 10,
            donation_floor_bytes: gib(5),
            preemption: PreemptionPolicy::Recompute,
        }
    }
}

#[derive(Debug, Clone)]
struct Seq {
    life: SeqLifecycle,
    prefilled: bool,
    /// KV cache lives in the offload store (swap preemption).
    swapped: bool,
}

impl Seq {
    /// Tokens that must be (re)computed into the KV cache before decoding:
    /// the prompt plus anything generated before a preemption.
    fn prefill_tokens(&self) -> u64 {
        self.life.context_tokens()
    }
}

/// vLLM-style continuous-batching engine.
///
/// # Example
///
/// ```
/// use aqua_engines::vllm::{VllmConfig, VllmEngine};
/// use aqua_engines::driver::Engine;
/// use aqua_engines::request::InferenceRequest;
/// use aqua_models::zoo;
/// use aqua_sim::gpu::GpuSpec;
/// use aqua_sim::time::SimTime;
///
/// let geom = *zoo::mistral_7b().llm_geometry().unwrap();
/// let mut engine = VllmEngine::new(geom, GpuSpec::a100_80g(), VllmConfig::default());
/// engine.submit(InferenceRequest::text(0, 128, 16), SimTime::ZERO);
/// let mut now = SimTime::ZERO;
/// while engine.has_work() {
///     now = engine.step(now);
/// }
/// assert_eq!(engine.drain_completions().len(), 1);
/// ```
pub struct VllmEngine {
    geom: LlmGeometry,
    gpu: GpuSpec,
    config: VllmConfig,
    kv: PagedKvCache,
    waiting: VecDeque<Seq>,
    running: Vec<Seq>,
    completions: Vec<RequestRecord>,
    adapters: Vec<LoraAdapter>,
    lora_cache: VecDeque<usize>,
    offloader: Option<Box<dyn Offloader>>,
    informer: Option<Box<dyn Informer>>,
    donated_bytes: u64,
    iterations: u64,
    preemptions: u64,
    pending_swap_out: u64,
    pending_swap_in: u64,
    swapped_bytes_total: u64,
    lora_misses: u64,
    lora_hits: u64,
    tracer: SharedTracer,
    scope: String,
    gauges: crate::gauges::GaugeCache,
}

impl std::fmt::Debug for VllmEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VllmEngine")
            .field("waiting", &self.waiting.len())
            .field("running", &self.running.len())
            .field("iterations", &self.iterations)
            .field("kv_used_blocks", &self.kv.used_blocks())
            .finish()
    }
}

impl VllmEngine {
    /// Creates an engine hosting `geom` on `gpu`.
    pub fn new(geom: LlmGeometry, gpu: GpuSpec, config: VllmConfig) -> Self {
        let kv = PagedKvCache::new(geom, config.kv_pool_bytes, config.block_tokens);
        VllmEngine {
            geom,
            gpu,
            config,
            kv,
            waiting: VecDeque::new(),
            running: Vec::new(),
            completions: Vec::new(),
            adapters: Vec::new(),
            lora_cache: VecDeque::new(),
            offloader: None,
            informer: None,
            donated_bytes: 0,
            iterations: 0,
            preemptions: 0,
            pending_swap_out: 0,
            pending_swap_in: 0,
            swapped_bytes_total: 0,
            lora_misses: 0,
            lora_hits: 0,
            tracer: null_tracer(),
            scope: "vllm".to_owned(),
            gauges: crate::gauges::GaugeCache::new(),
        }
    }

    /// Attaches a tracer. `scope` labels this engine's events and gauges
    /// (e.g. `"vllm:s1/gpu0"`) so traces from multi-engine experiments stay
    /// disentangled.
    pub fn with_tracer(mut self, tracer: SharedTracer, scope: impl Into<String>) -> Self {
        self.tracer = tracer;
        self.scope = scope.into();
        self.gauges.reset();
        self
    }

    /// Journals a gauge sample only when the value changed, so long runs do
    /// not fill the journal with identical samples.
    fn emit_gauge(&mut self, suffix: &'static str, value: f64, at: SimTime) {
        if !self.tracer.enabled() {
            return;
        }
        let Some(name) = self.gauges.changed(&self.scope, suffix, value) else {
            return;
        };
        self.tracer.gauge(name, value);
        let name = name.to_owned();
        self.tracer.emit(TraceEvent::Gauge { name, value, at });
    }

    /// Installs the adapter pool available to LoRA requests.
    pub fn with_adapters(mut self, adapters: Vec<LoraAdapter>) -> Self {
        self.adapters = adapters;
        self
    }

    /// Installs the offload backend used for LoRA loads (and donations).
    pub fn with_offloader(mut self, offloader: Box<dyn Offloader>) -> Self {
        self.offloader = Some(offloader);
        self
    }

    /// Attaches an AQUA informer (producer mode).
    pub fn with_informer(mut self, informer: Box<dyn Informer>) -> Self {
        self.informer = Some(informer);
        self
    }

    /// Number of decode/prefill iterations executed.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// Number of mid-decode preemptions.
    pub fn preemptions(&self) -> u64 {
        self.preemptions
    }

    /// Total KV bytes moved by swap preemption (both directions).
    pub fn swapped_bytes_total(&self) -> u64 {
        self.swapped_bytes_total
    }

    /// `(hits, misses)` of the GPU LoRA-adapter cache.
    pub fn lora_cache_stats(&self) -> (u64, u64) {
        (self.lora_hits, self.lora_misses)
    }

    /// Requests queued for admission.
    pub fn queue_depth(&self) -> usize {
        self.waiting.len()
    }

    /// Sequences currently being decoded.
    pub fn running_count(&self) -> usize {
        self.running.len()
    }

    /// Bytes currently donated to AQUA.
    pub fn donated_bytes(&self) -> u64 {
        self.donated_bytes
    }

    /// Read access to the KV pool (for tests and free-memory reporting).
    pub fn kv(&self) -> &PagedKvCache {
        &self.kv
    }

    fn run_informer(&mut self, now: SimTime) -> SimTime {
        if let Some(mut informer) = self.informer.take() {
            let resume = informer.control(self, now);
            self.informer = Some(informer);
            resume.max(now)
        } else {
            now
        }
    }

    /// Ensures every running sequence can grow by one token this iteration,
    /// preempting the youngest sequences if the pool is exhausted.
    fn make_room_for_decode(&mut self, now: SimTime) {
        loop {
            let need: u64 = self
                .running
                .iter()
                .filter(|s| s.life.context_tokens() % self.config.block_tokens == 0)
                .count() as u64;
            if need <= self.kv.free_blocks() || self.running.is_empty() {
                return;
            }
            // Preempt the most recently admitted sequence (vLLM preempts the
            // lowest-priority, i.e. youngest).
            let mut victim = self.running.pop().expect("non-empty");
            self.kv.free_seq(victim.life.req.id);
            self.preemptions += 1;
            self.tracer.incr("vllm.preemptions", 1);
            let swapping =
                self.config.preemption == PreemptionPolicy::Swap && self.offloader.is_some();
            trace!(
                self.tracer,
                TraceEvent::RequestPreempted {
                    engine: self.scope.clone(),
                    request: victim.life.req.id.0,
                    policy: if swapping { "swap" } else { "recompute" }.to_owned(),
                    at: now,
                }
            );
            if swapping {
                // Swap the context out; it returns without recomputation.
                let bytes = self.geom.kv_bytes(victim.prefill_tokens());
                self.pending_swap_out += bytes;
                self.swapped_bytes_total += bytes;
                victim.swapped = true;
            } else {
                victim.prefilled = false; // recompute on re-admission
            }
            self.waiting.push_front(victim);
        }
    }

    /// Adapters referenced by running sequences are pinned; only others may
    /// be evicted (vLLM's `max_loras` admission semantics).
    fn referenced_adapters(&self) -> Vec<usize> {
        self.running
            .iter()
            .filter_map(|s| s.life.req.adapter)
            .collect()
    }

    fn adapter_admissible(&self, adapter: Option<usize>) -> bool {
        let Some(idx) = adapter else { return true };
        // The batch can reference at most `lora_cache_slots` distinct
        // adapters at once (vLLM's `max_loras`): unreferenced cached
        // adapters can always be evicted, referenced ones cannot.
        let mut needed = self.referenced_adapters();
        needed.push(idx);
        needed.sort_unstable();
        needed.dedup();
        needed.len() <= self.config.lora_cache_slots
    }

    fn admit(&mut self, now: SimTime) {
        while self.running.len() < self.config.max_batch {
            let Some(front) = self.waiting.front() else {
                break;
            };
            let needed = front.prefill_tokens() + 1;
            if !self.kv.can_fit_tokens(needed) {
                break;
            }
            if !self.adapter_admissible(front.life.req.adapter) {
                break;
            }
            let mut seq = self.waiting.pop_front().expect("checked");
            trace!(
                self.tracer,
                TraceEvent::RequestAdmitted {
                    engine: self.scope.clone(),
                    request: seq.life.req.id.0,
                    waiting: self.waiting.len() as u64,
                    at: now,
                }
            );
            self.kv
                .grow_seq(seq.life.req.id, seq.prefill_tokens())
                .expect("can_fit_tokens checked");
            if seq.swapped {
                // The context streams back from the offload store intact.
                let bytes = self.geom.kv_bytes(seq.prefill_tokens());
                self.pending_swap_in += bytes;
                self.swapped_bytes_total += bytes;
                seq.swapped = false;
                seq.prefilled = true;
            } else {
                seq.prefilled = false;
            }
            self.running.push(seq);
        }
    }

    /// Loads adapters newly required by the running batch; returns the
    /// completion time of the last load (== `now` on full cache hits).
    /// Adapters referenced by running sequences are never evicted, so an
    /// adapter is loaded at most once per residency.
    fn load_adapters(&mut self, now: SimTime) -> SimTime {
        let mut io_done = now;
        let referenced = self.referenced_adapters();
        let mut needed: Vec<usize> = referenced.clone();
        needed.sort_unstable();
        needed.dedup();
        for idx in needed {
            if let Some(pos) = self.lora_cache.iter().position(|&a| a == idx) {
                self.lora_hits += 1;
                // Refresh LRU position.
                self.lora_cache.remove(pos);
                self.lora_cache.push_back(idx);
                continue;
            }
            self.lora_misses += 1;
            while self.lora_cache.len() >= self.config.lora_cache_slots {
                let victim = self
                    .lora_cache
                    .iter()
                    .position(|a| !referenced.contains(a))
                    .expect("adapter_admissible gated admission on a free slot");
                self.lora_cache.remove(victim);
            }
            self.lora_cache.push_back(idx);
            let adapter = self
                .adapters
                .get(idx)
                .unwrap_or_else(|| panic!("request references unknown adapter {idx}"));
            if let Some(off) = self.offloader.as_mut() {
                // Adapters persist in the offload store; loading is a read.
                io_done = off.read_in(adapter.bytes, adapter.tensor_count, io_done);
            }
        }
        io_done
    }
}

impl Engine for VllmEngine {
    fn submit(&mut self, req: InferenceRequest, now: SimTime) {
        self.waiting.push_back(Seq {
            life: SeqLifecycle::new(req, now),
            prefilled: true, // set properly at admission
            swapped: false,
        });
    }

    fn has_work(&self) -> bool {
        if !self.running.is_empty() {
            return true;
        }
        self.waiting
            .front()
            .is_some_and(|s| self.kv.can_fit_tokens(s.prefill_tokens() + 1))
    }

    fn step(&mut self, now: SimTime) -> SimTime {
        self.iterations += 1;
        let mut now = self.run_informer(now);
        if let Some(off) = self.offloader.as_mut() {
            now = off.on_iteration_boundary(now).max(now);
        }
        self.admit(now);
        // Admission may have consumed blocks the running batch needs for its
        // next token; preempt (youngest first) until decode headroom exists.
        self.make_room_for_decode(now);
        self.emit_gauge("queue_depth", self.waiting.len() as f64, now);
        self.emit_gauge("running", self.running.len() as f64, now);
        self.emit_gauge("kv_used_bytes", self.kv.used_bytes() as f64, now);
        if self.running.is_empty() {
            return now;
        }

        let mut io_done = self.load_adapters(now);
        if let Some(off) = self.offloader.as_mut() {
            let chunks_per_gib = 2 * self.geom.layers;
            if self.pending_swap_out > 0 {
                io_done = io_done.max(off.swap_out(self.pending_swap_out, chunks_per_gib, now));
                self.pending_swap_out = 0;
            }
            if self.pending_swap_in > 0 {
                io_done = io_done.max(off.swap_in(self.pending_swap_in, chunks_per_gib, now));
                self.pending_swap_in = 0;
            }
        } else {
            // No offloader: swap preemption silently degrades to recompute
            // semantics (nothing was marked swapped), so nothing pends.
            self.pending_swap_out = 0;
            self.pending_swap_in = 0;
        }

        let prefill_tokens: u64 = self
            .running
            .iter()
            .filter(|s| !s.prefilled)
            .map(Seq::prefill_tokens)
            .sum();
        let t_prefill = cost::llm_prefill_time(&self.geom, &self.gpu, prefill_tokens);
        let batch = self.running.len() as u64;
        let total_ctx = self.kv.total_context_tokens() + batch;
        let t_decode = cost::llm_decode_step_time(&self.geom, &self.gpu, batch, total_ctx);
        let end = io_done + t_prefill + t_decode;

        let mut finished: Vec<usize> = Vec::new();
        for (i, seq) in self.running.iter_mut().enumerate() {
            seq.prefilled = true;
            self.kv
                .grow_seq(seq.life.req.id, 1)
                .expect("make_room_for_decode guarantees headroom");
            seq.life.note_token(end);
            if seq.life.is_complete() {
                finished.push(i);
            }
        }
        for &i in finished.iter().rev() {
            let seq = self.running.remove(i);
            self.kv.free_seq(seq.life.req.id);
            self.completions.push(seq.life.record(end));
        }
        end
    }

    fn tick(&mut self, now: SimTime) {
        let _ = self.run_informer(now);
    }

    fn drain_completions(&mut self) -> Vec<RequestRecord> {
        std::mem::take(&mut self.completions)
    }
}

impl MemoryElastic for VllmEngine {
    fn stats(&self) -> EngineStats {
        let floor = self.config.donation_floor_bytes;
        let donatable = self
            .kv
            .free_bytes()
            .min(self.kv.capacity_bytes().saturating_sub(floor));
        EngineStats {
            pending_requests: self.waiting.len(),
            running_requests: self.running.len(),
            context_used_bytes: self.kv.used_bytes(),
            context_reserved_bytes: self.kv.capacity_bytes(),
            donatable_bytes: donatable,
            donated_bytes: self.donated_bytes,
        }
    }

    fn donate(&mut self, bytes: u64) -> u64 {
        let floor = self.config.donation_floor_bytes;
        let max_donation = self
            .kv
            .capacity_bytes()
            .saturating_sub(floor.max(self.kv.used_bytes()));
        let granted = self.kv.donate_bytes(bytes.min(max_donation));
        self.donated_bytes += granted;
        self.tracer.incr("vllm.donated_bytes", granted);
        granted
    }

    fn reclaim(&mut self, bytes: u64) {
        let bytes = bytes.min(self.donated_bytes);
        self.kv.reclaim_bytes(bytes);
        self.donated_bytes -= bytes;
        self.tracer.incr("vllm.reclaimed_bytes", bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_models::zoo;

    fn mistral_engine(pool_gib: u64) -> VllmEngine {
        let geom = *zoo::mistral_7b().llm_geometry().unwrap();
        VllmEngine::new(
            geom,
            GpuSpec::a100_80g(),
            VllmConfig {
                kv_pool_bytes: gib(pool_gib),
                ..VllmConfig::default()
            },
        )
    }

    fn run_to_completion(engine: &mut VllmEngine) -> SimTime {
        let mut now = SimTime::ZERO;
        let mut guard = 0;
        while engine.has_work() {
            now = engine.step(now);
            guard += 1;
            assert!(guard < 1_000_000, "engine failed to make progress");
        }
        now
    }

    #[test]
    fn single_request_completes_with_sane_latency() {
        let mut e = mistral_engine(40);
        e.submit(InferenceRequest::text(0, 256, 64), SimTime::ZERO);
        run_to_completion(&mut e);
        let recs = e.drain_completions();
        assert_eq!(recs.len(), 1);
        let r = &recs[0];
        assert_eq!(r.output_tokens, 64);
        // TTFT: prefill + one decode step, tens of ms.
        assert!(r.ttft() > 0.005 && r.ttft() < 0.5, "ttft = {}", r.ttft());
        // 64 tokens at roughly 7-10 ms/token.
        assert!(r.rct() > 0.3 && r.rct() < 2.0, "rct = {}", r.rct());
        assert!(e.kv().used_blocks() == 0, "kv released after completion");
    }

    #[test]
    fn batch_improves_aggregate_throughput() {
        let mut single = mistral_engine(40);
        single.submit(InferenceRequest::text(0, 128, 100), SimTime::ZERO);
        let t_single = run_to_completion(&mut single);

        let mut batched = mistral_engine(40);
        for i in 0..16 {
            batched.submit(InferenceRequest::text(i, 128, 100), SimTime::ZERO);
        }
        let t_batch = run_to_completion(&mut batched);
        // 16 requests take far less than 16x one request's time.
        assert!(
            t_batch.as_secs_f64() < 4.0 * t_single.as_secs_f64(),
            "batch {t_batch} vs single {t_single}"
        );
        assert_eq!(batched.drain_completions().len(), 16);
    }

    #[test]
    fn admission_control_queues_when_pool_full() {
        // Tiny pool: fits one 1000-token context but not two.
        let geom = *zoo::mistral_7b().llm_geometry().unwrap();
        let pool = geom.kv_bytes_per_token() * 16 * 80; // 80 blocks = 1280 tokens
        let mut e = VllmEngine::new(
            geom,
            GpuSpec::a100_80g(),
            VllmConfig {
                kv_pool_bytes: pool,
                ..VllmConfig::default()
            },
        );
        e.submit(InferenceRequest::text(0, 1000, 50), SimTime::ZERO);
        e.submit(InferenceRequest::text(1, 1000, 50), SimTime::ZERO);
        let mid = e.step(SimTime::ZERO);
        assert_eq!(e.running_count(), 1, "second request must queue");
        assert_eq!(e.queue_depth(), 1);
        run_to_completion(&mut e);
        let recs = e.drain_completions();
        assert_eq!(recs.len(), 2);
        // The queued request's TTFT includes the first one's entire run.
        let ttfts: Vec<f64> = recs.iter().map(|r| r.ttft()).collect();
        let max_ttft = ttfts.iter().cloned().fold(0.0, f64::max);
        let min_ttft = ttfts.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            max_ttft > 3.0 * min_ttft,
            "queued TTFT should spike: {ttfts:?}"
        );
        let _ = mid;
    }

    #[test]
    fn preemption_recovers_from_kv_exhaustion() {
        let geom = *zoo::mistral_7b().llm_geometry().unwrap();
        // Pool: 40 blocks = 640 tokens. Two seqs of prompt 256 + 200 output
        // = 456 each → 912 > 640 → must preempt mid-decode.
        let pool = geom.kv_bytes_per_token() * 16 * 40;
        let mut e = VllmEngine::new(
            geom,
            GpuSpec::a100_80g(),
            VllmConfig {
                kv_pool_bytes: pool,
                ..VllmConfig::default()
            },
        );
        e.submit(InferenceRequest::text(0, 256, 200), SimTime::ZERO);
        e.submit(InferenceRequest::text(1, 256, 200), SimTime::ZERO);
        run_to_completion(&mut e);
        let recs = e.drain_completions();
        assert_eq!(recs.len(), 2, "both must eventually finish");
        assert!(e.preemptions() > 0, "expected at least one preemption");
        assert!(recs.iter().all(|r| r.output_tokens == 200));
    }

    #[test]
    fn donation_respects_floor_and_usage() {
        let mut e = mistral_engine(20);
        e.submit(InferenceRequest::text(0, 512, 4), SimTime::ZERO);
        e.step(SimTime::ZERO);
        let used = e.kv().used_bytes();
        let granted = e.donate(gib(100));
        assert!(granted > 0);
        // Floor (5 GiB) and current usage both retained.
        assert!(e.kv().capacity_bytes() >= gib(5).max(used));
        let stats = e.stats();
        assert_eq!(stats.donated_bytes, granted);
        e.reclaim(granted);
        assert_eq!(e.donated_bytes(), 0);
        assert_eq!(e.kv().capacity_bytes(), gib(20));
    }

    #[test]
    fn reclaim_is_capped_at_donated() {
        let mut e = mistral_engine(20);
        let granted = e.donate(gib(2));
        e.reclaim(gib(50));
        assert_eq!(e.donated_bytes(), 0);
        assert_eq!(e.kv().capacity_bytes(), gib(20));
        let _ = granted;
    }

    #[test]
    fn lora_cache_hits_and_misses() {
        let geom = *zoo::mistral_7b().llm_geometry().unwrap();
        let adapters = LoraAdapter::zephyr().synthesize_pool(3);
        let mut e = VllmEngine::new(
            geom,
            GpuSpec::a100_80g(),
            VllmConfig {
                lora_cache_slots: 2,
                ..VllmConfig::default()
            },
        )
        .with_adapters(adapters);
        e.submit(InferenceRequest::with_adapter(0, 64, 4, 0), SimTime::ZERO);
        run_to_completion(&mut e);
        e.submit(
            InferenceRequest::with_adapter(1, 64, 4, 0),
            SimTime::from_secs(10),
        );
        let mut now = SimTime::from_secs(10);
        while e.has_work() {
            now = e.step(now);
        }
        let (hits, misses) = e.lora_cache_stats();
        assert_eq!(misses, 1, "first use misses");
        assert!(hits >= 1, "second request reuses the cached adapter");
    }

    #[test]
    fn swap_preemption_avoids_recompute() {
        use crate::offload::DramOffloader;
        use aqua_sim::topology::ServerTopology;
        use aqua_sim::transfer::TransferEngine;
        use std::cell::RefCell;
        use std::rc::Rc;

        let geom = *zoo::mistral_7b().llm_geometry().unwrap();
        let pool = geom.kv_bytes_per_token() * 16 * 40; // 640 tokens
        let run = |policy: PreemptionPolicy| -> (SimTime, u64) {
            let server = ServerTopology::nvlink_pair(GpuSpec::a100_80g());
            let xfer = Rc::new(RefCell::new(TransferEngine::new()));
            let mut e = VllmEngine::new(
                geom,
                GpuSpec::a100_80g(),
                VllmConfig {
                    kv_pool_bytes: pool,
                    preemption: policy,
                    ..VllmConfig::default()
                },
            )
            .with_offloader(Box::new(DramOffloader::pinned(&server, GpuId(0), xfer)));
            e.submit(InferenceRequest::text(0, 256, 200), SimTime::ZERO);
            e.submit(InferenceRequest::text(1, 256, 200), SimTime::ZERO);
            let mut now = SimTime::ZERO;
            while e.has_work() {
                now = e.step(now);
            }
            assert_eq!(e.drain_completions().len(), 2);
            (now, e.preemptions())
        };
        let (t_recompute, p1) = run(PreemptionPolicy::Recompute);
        let (t_swap, p2) = run(PreemptionPolicy::Swap);
        assert!(p1 > 0 && p2 > 0, "both must hit KV pressure");
        // Mistral's GQA KV is tiny (0.125 MB/token): swapping ~450 tokens is
        // far cheaper than re-prefilling them.
        assert!(
            t_swap < t_recompute,
            "swap {t_swap} should beat recompute {t_recompute}"
        );
    }

    use aqua_sim::gpu::GpuId;

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(16))]

        // Liveness under both preemption policies: every admissible request
        // completes with its exact token count and the pool drains.
        #[test]
        fn vllm_liveness_and_accounting(
            reqs in proptest::collection::vec((1u64..400, 1u64..60, 0u64..10), 1..12),
            swap in proptest::bool::ANY,
        ) {
            use crate::driver::Driver;
            use crate::offload::DramOffloader;
            use aqua_sim::gpu::GpuId;
            use aqua_sim::topology::ServerTopology;
            use aqua_sim::transfer::TransferEngine;
            use std::cell::RefCell;
            use std::rc::Rc;

            let geom = *zoo::mistral_7b().llm_geometry().unwrap();
            let server = ServerTopology::nvlink_pair(GpuSpec::a100_80g());
            let xfer = Rc::new(RefCell::new(TransferEngine::new()));
            let mut e = VllmEngine::new(
                geom,
                GpuSpec::a100_80g(),
                VllmConfig {
                    kv_pool_bytes: geom.kv_bytes_per_token() * 16 * 60,
                    preemption: if swap { PreemptionPolicy::Swap } else { PreemptionPolicy::Recompute },
                    ..VllmConfig::default()
                },
            )
            .with_offloader(Box::new(DramOffloader::pinned(&server, GpuId(0), xfer)));
            let mut driver = Driver::new();
            for (i, (prompt, output, at_s)) in reqs.iter().enumerate() {
                driver.schedule_arrival(
                    0,
                    SimTime::from_secs(*at_s),
                    InferenceRequest::text(i as u64, *prompt, *output),
                );
            }
            {
                let mut engines: Vec<&mut dyn crate::driver::Engine> = vec![&mut e];
                driver.run(&mut engines, SimTime::from_secs(100_000));
            }
            proptest::prop_assert!(!e.has_work());
            let recs = e.drain_completions();
            proptest::prop_assert_eq!(recs.len(), reqs.len());
            for r in &recs {
                let (_, output, _) = reqs[r.id as usize];
                proptest::prop_assert_eq!(r.output_tokens, output.max(1));
                proptest::prop_assert!(r.first_token >= r.arrival);
            }
            proptest::prop_assert_eq!(e.kv().used_blocks(), 0);
        }
    }

    #[test]
    fn traced_engine_journals_admissions_and_preemptions() {
        use aqua_telemetry::{JournalTracer, TraceEvent};
        use std::sync::Arc;

        let geom = *zoo::mistral_7b().llm_geometry().unwrap();
        let pool = geom.kv_bytes_per_token() * 16 * 40; // 640 tokens → preempts
        let journal = Arc::new(JournalTracer::new());
        let mut e = VllmEngine::new(
            geom,
            GpuSpec::a100_80g(),
            VllmConfig {
                kv_pool_bytes: pool,
                ..VllmConfig::default()
            },
        )
        .with_tracer(journal.clone(), "vllm:test");
        e.submit(InferenceRequest::text(0, 256, 200), SimTime::ZERO);
        e.submit(InferenceRequest::text(1, 256, 200), SimTime::ZERO);
        run_to_completion(&mut e);

        let events = journal.events();
        let admissions = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::RequestAdmitted { engine, .. } if engine == "vllm:test"))
            .count();
        assert!(
            admissions >= 2,
            "both requests admitted (plus re-admissions)"
        );
        assert!(events.iter().any(|e| matches!(
            e,
            TraceEvent::RequestPreempted { policy, .. } if policy == "recompute"
        )));
        assert!(events.iter().any(
            |e| matches!(e, TraceEvent::Gauge { name, .. } if name == "vllm:test.queue_depth")
        ));
        assert_eq!(
            journal.registry().counter("vllm.preemptions"),
            e.preemptions()
        );
    }

    #[test]
    fn has_work_false_when_nothing_fits() {
        let geom = *zoo::mistral_7b().llm_geometry().unwrap();
        let pool = geom.kv_bytes_per_token() * 16 * 4; // 64 tokens
        let mut e = VllmEngine::new(
            geom,
            GpuSpec::a100_80g(),
            VllmConfig {
                kv_pool_bytes: pool,
                ..VllmConfig::default()
            },
        );
        e.submit(InferenceRequest::text(0, 10_000, 5), SimTime::ZERO);
        assert!(!e.has_work(), "oversized prompt can never be admitted");
    }
}
