//! FlexGen-style long-prompt engine (paper §6, "Long prompts").
//!
//! FlexGen targets throughput-oriented inference when the context does not
//! fit in the GPU's remaining HBM: it streams the KV cache through the GPU
//! from an offload store, overlapping the I/O with compute. Its throughput
//! is therefore bounded by
//!
//! ```text
//! tokens/s ≈ 1 / max(compute_per_token, kv_bytes(context) / offload_bw)
//! ```
//!
//! Over PCIe to DRAM the I/O term dominates by an order of magnitude; with
//! AQUA the same context streams over NVLink from a neighbouring GPU, which
//! is where Figure 7's 6× token count and Figure 10b's elastic throughput
//! timeline come from.

use crate::driver::Engine;
use crate::offload::Offloader;
use crate::request::InferenceRequest;
use aqua_metrics::requests::RequestRecord;
use aqua_models::cost;
use aqua_models::geometry::LlmGeometry;
use aqua_sim::gpu::GpuSpec;
use aqua_sim::link::bytes::gib;
use aqua_sim::time::SimTime;
use aqua_telemetry::{null_tracer, trace, SharedTracer, TraceEvent};
use std::collections::VecDeque;

/// Configuration of a [`FlexGenEngine`].
#[derive(Debug, Clone)]
pub struct FlexGenConfig {
    /// HBM bytes available for inference context after weights and
    /// workspace. When a request's full context exceeds this budget the
    /// engine runs in streaming (offloaded) mode.
    pub context_budget_bytes: u64,
    /// Decode tokens simulated per driver step (pure event-count batching;
    /// does not change modelled timing).
    pub decode_chunk: u64,
}

impl Default for FlexGenConfig {
    fn default() -> Self {
        FlexGenConfig {
            context_budget_bytes: gib(8),
            decode_chunk: 8,
        }
    }
}

#[derive(Debug, Clone)]
struct FgSeq {
    req: InferenceRequest,
    arrival: SimTime,
    generated: u64,
    first_token: Option<SimTime>,
    prefilled: bool,
    streaming: bool,
}

/// Long-prompt streaming engine.
///
/// # Example
///
/// ```
/// use aqua_engines::flexgen::{FlexGenConfig, FlexGenEngine};
/// use aqua_engines::driver::Engine;
/// use aqua_engines::offload::DramOffloader;
/// use aqua_engines::request::InferenceRequest;
/// use aqua_models::zoo;
/// use aqua_sim::prelude::*;
/// use std::{cell::RefCell, rc::Rc};
///
/// let server = ServerTopology::nvlink_pair(GpuSpec::a100_80g());
/// let xfer = Rc::new(RefCell::new(TransferEngine::new()));
/// let geom = *zoo::opt_30b().llm_geometry().unwrap();
/// let off = DramOffloader::pinned(&server, GpuId(0), xfer);
/// let mut fg = FlexGenEngine::new(geom, GpuSpec::a100_80g(), FlexGenConfig::default(), Box::new(off));
/// // An 8,000-token prompt: context exceeds the budget, so it streams.
/// fg.submit(InferenceRequest::text(0, 8_000, 32), SimTime::ZERO);
/// let mut now = SimTime::ZERO;
/// while fg.has_work() { now = fg.step(now); }
/// assert_eq!(fg.drain_completions().len(), 1);
/// ```
pub struct FlexGenEngine {
    geom: LlmGeometry,
    gpu: GpuSpec,
    config: FlexGenConfig,
    queue: VecDeque<FgSeq>,
    current: Option<FgSeq>,
    completions: Vec<RequestRecord>,
    offloader: Box<dyn Offloader>,
    tokens_generated: u64,
    streamed_bytes: u64,
    tracer: SharedTracer,
    scope: String,
}

impl std::fmt::Debug for FlexGenEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlexGenEngine")
            .field("queued", &self.queue.len())
            .field("active", &self.current.is_some())
            .field("tokens_generated", &self.tokens_generated)
            .finish()
    }
}

impl FlexGenEngine {
    /// Creates a long-prompt engine for `geom` on `gpu` with the given
    /// offload backend.
    pub fn new(
        geom: LlmGeometry,
        gpu: GpuSpec,
        config: FlexGenConfig,
        offloader: Box<dyn Offloader>,
    ) -> Self {
        FlexGenEngine {
            geom,
            gpu,
            config,
            queue: VecDeque::new(),
            current: None,
            completions: Vec::new(),
            offloader,
            tokens_generated: 0,
            streamed_bytes: 0,
            tracer: null_tracer(),
            scope: "flexgen".to_owned(),
        }
    }

    /// Attaches a tracer; every streamed decode chunk becomes a
    /// [`TraceEvent::WindowFetched`] and streamed bytes feed the
    /// `flexgen.streamed_bytes` counter. `scope` labels this engine's events.
    pub fn with_tracer(mut self, tracer: SharedTracer, scope: impl Into<String>) -> Self {
        self.tracer = tracer;
        self.scope = scope.into();
        self
    }

    /// Total tokens generated so far (the Figure 7 metric).
    pub fn tokens_generated(&self) -> u64 {
        self.tokens_generated
    }

    /// Total context bytes streamed through the offload path.
    pub fn streamed_bytes(&self) -> u64 {
        self.streamed_bytes
    }

    /// Offload-backend label (for reports).
    pub fn offloader_label(&self) -> &str {
        self.offloader.label()
    }

    /// Whether a request of this shape must stream its context.
    pub fn must_stream(&self, req: &InferenceRequest) -> bool {
        let max_ctx = req.prompt_tokens + req.output_tokens;
        self.geom.kv_bytes(max_ctx) > self.config.context_budget_bytes
    }
}

impl Engine for FlexGenEngine {
    fn submit(&mut self, mut req: InferenceRequest, now: SimTime) {
        req.output_tokens = req.output_tokens.max(1);
        let streaming = self.must_stream(&req);
        self.queue.push_back(FgSeq {
            req,
            arrival: now,
            generated: 0,
            first_token: None,
            prefilled: false,
            streaming,
        });
    }

    fn has_work(&self) -> bool {
        self.current.is_some() || !self.queue.is_empty()
    }

    fn step(&mut self, now: SimTime) -> SimTime {
        let now = self.offloader.on_iteration_boundary(now).max(now);
        if self.current.is_none() {
            self.current = self.queue.pop_front();
        }
        let Some(mut seq) = self.current.take() else {
            return now;
        };

        let end;
        if !seq.prefilled {
            // Prefill: compute the prompt's KV; in streaming mode the blocks
            // are written out to the offload store as they are produced, so
            // compute and I/O overlap.
            let compute = cost::llm_prefill_time(&self.geom, &self.gpu, seq.req.prompt_tokens);
            let compute_done = now + compute;
            end = if seq.streaming {
                let bytes = self.geom.kv_bytes(seq.req.prompt_tokens);
                self.streamed_bytes += bytes;
                self.tracer.incr("flexgen.streamed_bytes", bytes);
                let io_done = self.offloader.swap_out(bytes, self.geom.layers * 2, now);
                compute_done.max(io_done)
            } else {
                compute_done
            };
            seq.prefilled = true;
        } else {
            // Decode a chunk of tokens. Each token must sweep the full
            // context KV; in streaming mode that sweep crosses the offload
            // link, overlapped with the next token's compute.
            let chunk = self
                .config
                .decode_chunk
                .min(seq.req.output_tokens - seq.generated)
                .max(1);
            let mut compute_cursor = now;
            let mut io_cursor = now;
            let mut chunk_bytes = 0u64;
            for t in 0..chunk {
                let ctx = seq.req.prompt_tokens + seq.generated + 1;
                let compute = cost::llm_decode_step_time(&self.geom, &self.gpu, 1, ctx);
                if seq.streaming {
                    let bytes = self.geom.kv_bytes(ctx);
                    self.streamed_bytes += bytes;
                    chunk_bytes += bytes;
                    // Streaming read: the context stays offloaded. The new
                    // token's KV is appended to the store on the other link
                    // direction (tiny; overlaps the read).
                    io_cursor = self.offloader.read_in(bytes, self.geom.layers, io_cursor);
                    self.offloader.swap_out(
                        self.geom.kv_bytes_per_token(),
                        self.geom.layers,
                        io_cursor,
                    );
                    // A token completes when both its context stream and its
                    // compute are done; compute for token t+1 overlaps the
                    // stream for token t+1.
                    compute_cursor = compute_cursor.max(io_cursor) + compute;
                } else {
                    compute_cursor += compute;
                }
                seq.generated += 1;
                self.tokens_generated += 1;
                if seq.first_token.is_none() {
                    seq.first_token = Some(compute_cursor);
                }
                let _ = t;
            }
            if chunk_bytes > 0 {
                self.tracer.incr("flexgen.streamed_bytes", chunk_bytes);
                trace!(
                    self.tracer,
                    TraceEvent::WindowFetched {
                        engine: self.scope.clone(),
                        bytes: chunk_bytes,
                        start: now,
                        end: io_cursor,
                    }
                );
            }
            end = compute_cursor;
        }

        if seq.prefilled && seq.generated >= seq.req.output_tokens {
            self.completions.push(RequestRecord {
                id: seq.req.id.0,
                arrival: seq.arrival,
                first_token: seq.first_token.expect("decode emitted tokens"),
                completion: end,
                output_tokens: seq.generated,
            });
        } else {
            self.current = Some(seq);
        }
        end
    }

    fn drain_completions(&mut self) -> Vec<RequestRecord> {
        std::mem::take(&mut self.completions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offload::DramOffloader;
    use aqua_models::zoo;
    use aqua_sim::gpu::GpuId;
    use aqua_sim::topology::ServerTopology;
    use aqua_sim::transfer::TransferEngine;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn dram_engine(budget: u64) -> FlexGenEngine {
        let server = ServerTopology::nvlink_pair(GpuSpec::a100_80g());
        let xfer = Rc::new(RefCell::new(TransferEngine::new()));
        let geom = *zoo::opt_30b().llm_geometry().unwrap();
        FlexGenEngine::new(
            geom,
            GpuSpec::a100_80g(),
            FlexGenConfig {
                context_budget_bytes: budget,
                decode_chunk: 8,
            },
            Box::new(DramOffloader::pinned(&server, GpuId(0), xfer)),
        )
    }

    fn run_for(engine: &mut FlexGenEngine, seconds: u64) -> SimTime {
        let mut now = SimTime::ZERO;
        let end = SimTime::from_secs(seconds);
        while engine.has_work() && now < end {
            now = engine.step(now);
        }
        now
    }

    #[test]
    fn long_prompt_streams() {
        let mut e = dram_engine(gib(8));
        let req = InferenceRequest::text(0, 8_000, 64);
        assert!(e.must_stream(&req));
        e.submit(req, SimTime::ZERO);
        run_for(&mut e, 3_600);
        let recs = e.drain_completions();
        assert_eq!(recs.len(), 1);
        assert!(e.streamed_bytes() > gib(64), "context swept repeatedly");
    }

    #[test]
    fn short_prompt_stays_resident() {
        let mut e = dram_engine(gib(8));
        let req = InferenceRequest::text(0, 512, 32);
        assert!(!e.must_stream(&req));
        e.submit(req, SimTime::ZERO);
        run_for(&mut e, 3_600);
        assert_eq!(e.drain_completions().len(), 1);
        assert_eq!(e.streamed_bytes(), 0);
    }

    #[test]
    fn streaming_decode_is_io_bound_over_pcie() {
        // 8,000-token context on OPT-30B = ~11 GB per token sweep; at
        // 25 GB/s PCIe that is ~0.44 s/token, far slower than compute.
        let mut e = dram_engine(gib(8));
        e.submit(InferenceRequest::text(0, 8_000, 16), SimTime::ZERO);
        // Prefill step.
        let mut now = e.step(SimTime::ZERO);
        let decode_start = now;
        now = e.step(now); // one chunk of 8 tokens
        let per_token = (now - decode_start).as_secs_f64() / 8.0;
        assert!(
            (0.3..0.7).contains(&per_token),
            "per-token {per_token}s should be PCIe-bound (~0.45 s)"
        );
    }

    #[test]
    fn tokens_generated_counts_across_requests() {
        let mut e = dram_engine(gib(64));
        e.submit(InferenceRequest::text(0, 100, 10), SimTime::ZERO);
        e.submit(InferenceRequest::text(1, 100, 10), SimTime::ZERO);
        run_for(&mut e, 3_600);
        assert_eq!(e.tokens_generated(), 20);
        assert_eq!(e.drain_completions().len(), 2);
    }

    #[test]
    fn traced_engine_journals_window_fetches() {
        use aqua_telemetry::{JournalTracer, TraceEvent};
        use std::sync::Arc;

        let journal = Arc::new(JournalTracer::new());
        let mut e = dram_engine(gib(8)).with_tracer(journal.clone(), "flexgen:test");
        e.submit(InferenceRequest::text(0, 8_000, 16), SimTime::ZERO);
        run_for(&mut e, 3_600);
        assert_eq!(e.drain_completions().len(), 1);
        let events = journal.events();
        let fetched: u64 = events
            .iter()
            .filter_map(|ev| match ev {
                TraceEvent::WindowFetched { engine, bytes, .. } if engine == "flexgen:test" => {
                    Some(*bytes)
                }
                _ => None,
            })
            .sum();
        assert!(fetched > 0, "streaming decode journals window fetches");
        assert_eq!(
            journal.registry().counter("flexgen.streamed_bytes"),
            e.streamed_bytes()
        );
    }

    #[test]
    fn requests_run_one_at_a_time() {
        let mut e = dram_engine(gib(64));
        e.submit(InferenceRequest::text(0, 100, 5), SimTime::ZERO);
        e.submit(InferenceRequest::text(1, 100, 5), SimTime::ZERO);
        run_for(&mut e, 3_600);
        let recs = e.drain_completions();
        // Second request's first token strictly after the first completes.
        let r0 = recs.iter().find(|r| r.id == 0).unwrap();
        let r1 = recs.iter().find(|r| r.id == 1).unwrap();
        assert!(r1.first_token > r0.completion);
    }
}
