//! The deterministic simulation driver.
//!
//! Engines are synchronous state machines: `step(now)` executes one
//! inference iteration (admission, I/O, compute, token effects) and returns
//! its completion time. The driver interleaves request arrivals, engine
//! steps and idle control ticks on one [`EventQueue`], so multiple engines
//! on one server (consumers and producers) advance in a single global time
//! order — which is what lets port contention and elastic memory events
//! interact the way they do on real hardware.

use crate::request::InferenceRequest;
use aqua_metrics::requests::RequestRecord;
use aqua_sim::audit::SharedAuditor;
use aqua_sim::event::EventQueue;
use aqua_sim::time::{SimDuration, SimTime};

/// A serving engine that the driver can step.
pub trait Engine {
    /// Enqueues a request at `now`.
    fn submit(&mut self, req: InferenceRequest, now: SimTime);

    /// Returns `true` if a call to [`Engine::step`] would make progress.
    fn has_work(&self) -> bool;

    /// Executes one iteration starting at `now`; returns its completion
    /// time, which must be strictly after `now` whenever [`Engine::has_work`]
    /// is `true`.
    fn step(&mut self, now: SimTime) -> SimTime;

    /// Periodic control hook invoked while the engine is idle (used by
    /// AQUA informers to donate/reclaim memory even when no requests flow).
    fn tick(&mut self, _now: SimTime) {}

    /// Removes and returns records of requests completed so far.
    fn drain_completions(&mut self) -> Vec<RequestRecord>;
}

#[derive(Debug, Clone)]
enum Ev {
    Arrival(usize, InferenceRequest),
    StepDone(usize),
}

/// Drives a set of engines through a shared timeline.
///
/// # Example
///
/// ```
/// use aqua_engines::driver::{Driver, Engine};
/// use aqua_engines::request::InferenceRequest;
/// use aqua_sim::time::SimTime;
///
/// use aqua_engines::vllm::{VllmConfig, VllmEngine};
/// use aqua_models::zoo;
/// use aqua_sim::gpu::GpuSpec;
///
/// let geom = *zoo::mistral_7b().llm_geometry().unwrap();
/// let mut llm = VllmEngine::new(geom, GpuSpec::a100_80g(), VllmConfig::default());
/// let mut driver = Driver::new();
/// driver.schedule_arrival(0, SimTime::from_secs(1), InferenceRequest::text(1, 128, 64));
/// let mut engines: Vec<&mut dyn Engine> = vec![&mut llm];
/// driver.run(&mut engines, SimTime::from_secs(600));
/// ```
#[derive(Debug)]
pub struct Driver {
    events: EventQueue<Ev>,
    tick_interval: SimDuration,
    next_tick: SimTime,
    busy: Vec<bool>,
    /// `(engine, start, end)` spans during which an engine is crashed: it
    /// takes no arrivals, steps and ticks. Arrivals landing inside a span
    /// are re-queued at its end, so requests are delayed, never lost.
    crash_windows: Vec<(usize, SimTime, SimTime)>,
    /// aqua-audit: checks that the global timeline never runs backwards.
    auditor: Option<SharedAuditor>,
    /// Timestamp of the last processed event/tick (for the monotonicity
    /// audit).
    last_time: SimTime,
    /// Total events processed (popped arrivals/step-dones plus idle-tick
    /// rounds), the denominator behind the `scale_cluster` events/s report.
    processed: u64,
}

impl Driver {
    /// Default pre-sized event-queue capacity: enough for a typical figure
    /// harness trace (thousands of arrivals) without mid-run re-growth.
    const DEFAULT_EVENT_CAPACITY: usize = 4096;

    /// Creates a driver with the default 100 ms idle-tick interval.
    pub fn new() -> Self {
        Self::with_event_capacity(Self::DEFAULT_EVENT_CAPACITY)
    }

    /// Creates a driver whose event queue is pre-sized for `capacity`
    /// pending events (arrivals + in-flight steps), so long-horizon runs do
    /// not re-grow the heap mid-simulation.
    pub fn with_event_capacity(capacity: usize) -> Self {
        Driver {
            events: EventQueue::with_capacity(capacity),
            tick_interval: SimDuration::from_millis(100),
            next_tick: SimTime::ZERO,
            busy: Vec::new(),
            crash_windows: Vec::new(),
            auditor: None,
            last_time: SimTime::ZERO,
            processed: 0,
        }
    }

    /// Creates a driver pre-sized for a workload of `expected_events`
    /// scheduled events (every trace arrival plus one in-flight step per
    /// engine), so the event arena never re-grows mid-run. Prefer this over
    /// [`Driver::new`] when the trace length is known up front.
    pub fn for_expected_events(expected_events: usize) -> Self {
        Self::with_event_capacity(expected_events.max(Self::DEFAULT_EVENT_CAPACITY))
    }

    /// Reserves room for `additional` more pending events beyond the
    /// current queue length (idempotent with what `schedule_trace` already
    /// reserves from its iterator's size hint).
    pub fn expect_events(&mut self, additional: usize) {
        self.events.reserve(additional);
    }

    /// Number of pending events the queue can hold without re-growing its
    /// entry storage (regression-asserted by the microbench).
    pub fn event_capacity(&self) -> usize {
        self.events.capacity()
    }

    /// Total events processed so far: popped arrivals and step completions
    /// plus idle-tick rounds.
    pub fn processed_events(&self) -> u64 {
        self.processed
    }

    /// The firing time of the earliest queued event, if any — the shard
    /// clock the PDES lane executor reads between windows.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.events.peek_time()
    }

    /// Attaches an invariant auditor: every popped event and idle tick is
    /// checked against the last processed timestamp, so a mis-ordered event
    /// queue raises a `time_regression` violation instead of silently
    /// reordering the simulation.
    pub fn set_auditor(&mut self, auditor: SharedAuditor) {
        self.auditor = Some(auditor);
    }

    /// Marks engine `engine` as crashed over `[start, end)`: no steps, no
    /// control ticks (so no informer heartbeats), and arrivals are held
    /// until the engine comes back.
    pub fn crash_window(&mut self, engine: usize, start: SimTime, end: SimTime) {
        assert!(start < end, "crash window must have positive length");
        self.crash_windows.push((engine, start, end));
    }

    /// If `engine` is crashed at `now`, the time it comes back.
    fn crashed_until(&self, engine: usize, now: SimTime) -> Option<SimTime> {
        self.crash_windows
            .iter()
            .filter(|(e, start, end)| *e == engine && *start <= now && now < *end)
            .map(|(_, _, end)| *end)
            .max()
    }

    /// Overrides the idle-tick interval.
    pub fn with_tick_interval(mut self, interval: SimDuration) -> Self {
        assert!(!interval.is_zero(), "tick interval must be positive");
        self.tick_interval = interval;
        self
    }

    /// Schedules `req` to arrive at engine `engine` at time `at`.
    pub fn schedule_arrival(&mut self, engine: usize, at: SimTime, req: InferenceRequest) {
        self.events.push(at, Ev::Arrival(engine, req));
    }

    /// Schedules a whole trace of `(time, request)` pairs for one engine.
    pub fn schedule_trace<I>(&mut self, engine: usize, trace: I)
    where
        I: IntoIterator<Item = (SimTime, InferenceRequest)>,
    {
        let trace = trace.into_iter();
        self.events.reserve(trace.size_hint().0);
        for (at, req) in trace {
            self.schedule_arrival(engine, at, req);
        }
    }

    /// Runs until `end` or until no events remain.
    ///
    /// Events after `end` stay queued, so `run` may be called repeatedly
    /// with increasing horizons (the figure harnesses sample state between
    /// chunks). An engine mid-step at `end` finishes that step on the next
    /// call.
    pub fn run(&mut self, engines: &mut [&mut dyn Engine], end: SimTime) {
        if self.busy.len() < engines.len() {
            self.busy.resize(engines.len(), false);
        }
        // One StepDone per engine can be in flight on top of every queued
        // arrival; reserving it here keeps a queue that `schedule_trace`
        // sized exactly from re-growing on the first step of a full trace.
        self.events.reserve(engines.len());
        loop {
            let next_event = self.events.peek_time();
            let next = next_event.map_or(self.next_tick, |t| t.min(self.next_tick));
            if next > end {
                break;
            }
            self.processed += 1;
            if next_event.is_some_and(|t| t <= self.next_tick) {
                let (now, ev) = self.events.pop().expect("peeked");
                if let Some(aud) = &self.auditor {
                    aud.check_monotonic("driver.events", self.last_time, now);
                }
                self.last_time = self.last_time.max(now);
                match ev {
                    Ev::Arrival(i, req) => {
                        if let Some(until) = self.crashed_until(i, now) {
                            // The engine is down: hold the request until it
                            // comes back rather than dropping it.
                            self.events.push(until, Ev::Arrival(i, req));
                        } else {
                            engines[i].submit(req, now);
                            self.maybe_start(engines, i, now);
                        }
                    }
                    Ev::StepDone(i) => {
                        self.busy[i] = false;
                        self.maybe_start(engines, i, now);
                        if !self.busy[i] && self.crashed_until(i, now).is_none() {
                            engines[i].tick(now);
                            self.maybe_start(engines, i, now);
                        }
                    }
                }
            } else {
                let now = self.next_tick;
                if let Some(aud) = &self.auditor {
                    aud.check_monotonic("driver.ticks", self.last_time, now);
                }
                self.last_time = self.last_time.max(now);
                for i in 0..engines.len() {
                    if !self.busy[i] && self.crashed_until(i, now).is_none() {
                        engines[i].tick(now);
                        self.maybe_start(engines, i, now);
                    }
                }
                self.next_tick = now + self.tick_interval;
            }
        }
    }

    fn maybe_start(&mut self, engines: &mut [&mut dyn Engine], i: usize, now: SimTime) {
        if self.crashed_until(i, now).is_some() {
            return;
        }
        if !self.busy[i] && engines[i].has_work() {
            let mut done = engines[i].step(now);
            if done <= now {
                // Defensive: engines must advance time; clamp to 1 ns to
                // guarantee global progress even if one misbehaves.
                done = now + SimDuration::from_nanos(1);
            }
            self.busy[i] = true;
            self.events.push(done, Ev::StepDone(i));
        }
    }
}

impl Default for Driver {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial engine that takes a fixed time per request.
    struct FixedEngine {
        pending: Vec<(InferenceRequest, SimTime)>,
        per_req: SimDuration,
        done: Vec<RequestRecord>,
        ticks: usize,
    }

    impl FixedEngine {
        fn new(ms: u64) -> Self {
            FixedEngine {
                pending: Vec::new(),
                per_req: SimDuration::from_millis(ms),
                done: Vec::new(),
                ticks: 0,
            }
        }
    }

    impl Engine for FixedEngine {
        fn submit(&mut self, req: InferenceRequest, now: SimTime) {
            self.pending.push((req, now));
        }
        fn has_work(&self) -> bool {
            !self.pending.is_empty()
        }
        fn step(&mut self, now: SimTime) -> SimTime {
            let (req, arrival) = self.pending.remove(0);
            let end = now + self.per_req;
            self.done.push(RequestRecord {
                id: req.id.0,
                arrival,
                first_token: end,
                completion: end,
                output_tokens: req.output_tokens,
            });
            end
        }
        fn tick(&mut self, _now: SimTime) {
            self.ticks += 1;
        }
        fn drain_completions(&mut self) -> Vec<RequestRecord> {
            std::mem::take(&mut self.done)
        }
    }

    #[test]
    fn sequential_requests_queue_on_one_engine() {
        let mut driver = Driver::new();
        for i in 0..3 {
            driver.schedule_arrival(0, SimTime::ZERO, InferenceRequest::text(i, 1, 1));
        }
        let mut e = FixedEngine::new(100);
        let mut engines: Vec<&mut dyn Engine> = vec![&mut e];
        driver.run(&mut engines, SimTime::from_secs(10));
        let recs = e.drain_completions();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].completion, SimTime::from_millis(100));
        assert_eq!(recs[1].completion, SimTime::from_millis(200));
        assert_eq!(recs[2].completion, SimTime::from_millis(300));
    }

    #[test]
    fn engines_run_in_parallel() {
        let mut driver = Driver::new();
        driver.schedule_arrival(0, SimTime::ZERO, InferenceRequest::text(0, 1, 1));
        driver.schedule_arrival(1, SimTime::ZERO, InferenceRequest::text(1, 1, 1));
        let mut a = FixedEngine::new(100);
        let mut b = FixedEngine::new(100);
        {
            let mut engines: Vec<&mut dyn Engine> = vec![&mut a, &mut b];
            driver.run(&mut engines, SimTime::from_secs(1));
        }
        assert_eq!(
            a.drain_completions()[0].completion,
            SimTime::from_millis(100)
        );
        assert_eq!(
            b.drain_completions()[0].completion,
            SimTime::from_millis(100)
        );
    }

    #[test]
    fn end_time_cuts_off_new_arrivals() {
        let mut driver = Driver::new();
        driver.schedule_arrival(0, SimTime::from_secs(5), InferenceRequest::text(0, 1, 1));
        let mut e = FixedEngine::new(10);
        let mut engines: Vec<&mut dyn Engine> = vec![&mut e];
        driver.run(&mut engines, SimTime::from_secs(1));
        assert!(e.drain_completions().is_empty());
        assert!(!e.has_work());
    }

    #[test]
    fn idle_engines_get_ticks() {
        let mut driver = Driver::new();
        let mut e = FixedEngine::new(10);
        {
            let mut engines: Vec<&mut dyn Engine> = vec![&mut e];
            driver.run(&mut engines, SimTime::from_secs(1));
        }
        // 1 s of 100 ms ticks ≈ 10 tick events (plus step-done ticks).
        assert!(e.ticks >= 9, "got {} ticks", e.ticks);
    }

    #[test]
    fn crashed_engine_holds_arrivals_instead_of_losing_them() {
        let mut driver = Driver::new();
        driver.crash_window(0, SimTime::from_secs(1), SimTime::from_secs(3));
        // One arrival before, one during, one after the crash.
        driver.schedule_arrival(
            0,
            SimTime::from_millis(500),
            InferenceRequest::text(0, 1, 1),
        );
        driver.schedule_arrival(0, SimTime::from_secs(2), InferenceRequest::text(1, 1, 1));
        driver.schedule_arrival(0, SimTime::from_secs(4), InferenceRequest::text(2, 1, 1));
        let mut e = FixedEngine::new(10);
        let mut engines: Vec<&mut dyn Engine> = vec![&mut e];
        driver.run(&mut engines, SimTime::from_secs(10));
        let recs = e.drain_completions();
        assert_eq!(recs.len(), 3, "no request is lost to the crash");
        // The mid-crash arrival was held until the engine came back.
        let held = recs.iter().find(|r| r.id == 1).expect("completed");
        assert!(held.completion >= SimTime::from_secs(3));
    }

    #[test]
    fn crashed_engine_gets_no_ticks() {
        let mut driver = Driver::new();
        driver.crash_window(0, SimTime::ZERO, SimTime::from_secs(2));
        let mut crashed = FixedEngine::new(10);
        let mut healthy = FixedEngine::new(10);
        {
            let mut engines: Vec<&mut dyn Engine> = vec![&mut crashed, &mut healthy];
            driver.run(&mut engines, SimTime::from_secs(1));
        }
        assert_eq!(crashed.ticks, 0, "no control ticks while down");
        assert!(healthy.ticks >= 9, "sibling keeps ticking");
    }

    #[test]
    fn pre_sized_queue_never_regrows_and_counts_events() {
        let trace: Vec<(SimTime, InferenceRequest)> = (0..256)
            .map(|i| (SimTime::from_millis(i * 5), InferenceRequest::text(i, 1, 1)))
            .collect();
        let mut driver = Driver::for_expected_events(trace.len() + 1);
        driver.schedule_trace(0, trace);
        assert_eq!(driver.next_event_time(), Some(SimTime::ZERO));
        let before = driver.event_capacity();
        assert!(before >= 257);
        let mut e = FixedEngine::new(1);
        let mut engines: Vec<&mut dyn Engine> = vec![&mut e];
        driver.run(&mut engines, SimTime::from_secs(10));
        assert_eq!(
            driver.event_capacity(),
            before,
            "a pre-sized queue must not re-grow mid-run"
        );
        // 256 arrivals + 256 step completions, plus idle ticks.
        assert!(driver.processed_events() >= 512);
        assert_eq!(e.drain_completions().len(), 256);
        assert_eq!(driver.next_event_time(), None);
    }

    #[test]
    fn trace_scheduling() {
        let mut driver = Driver::new();
        let trace = (0..5).map(|i| {
            (
                SimTime::from_millis(i * 10),
                InferenceRequest::text(i, 1, 1),
            )
        });
        driver.schedule_trace(0, trace);
        let mut e = FixedEngine::new(1);
        let mut engines: Vec<&mut dyn Engine> = vec![&mut e];
        driver.run(&mut engines, SimTime::from_secs(1));
        assert_eq!(e.drain_completions().len(), 5);
    }
}
