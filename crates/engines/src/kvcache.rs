//! Paged KV-cache block manager (vLLM's PagedAttention pool).
//!
//! vLLM reserves the HBM left after loading model weights as a pool of
//! fixed-size blocks and maps each sequence's KV cache onto a **block
//! table** (§2, [32]). Three properties matter to AQUA:
//!
//! * Admission control: a request is only admitted when enough blocks are
//!   free for its prompt — otherwise it queues (the source of Figure 1a's
//!   TTFT spikes).
//! * Fragmentation: blocks are allocated from a free list, so a sequence's
//!   table is physically scattered — which is why vLLM's swap path moves
//!   many small tensors (§5) and why donation needs compaction.
//! * Elasticity: an LLM producer *donates* free pool capacity to AQUA and
//!   reclaims it later. §B.1: "This allocation leads to fragmentation of
//!   the tensor and makes it impossible to selectively free parts of a
//!   tensor. We solve this problem by copying the scattered allocated
//!   blocks to a temporary location to free up the reserved memory" — the
//!   pool models that compaction and accounts the bytes it copies.
//!
//! Per-sequence state is stored struct-of-arrays (dense parallel vectors
//! indexed through a `RequestId → slot` map, freed slots swap-removed), and
//! the pool maintains running `used_blocks` / `total_tokens` counters so the
//! admission checks and gauges the engines issue every decode iteration are
//! O(1) instead of a scan over every live sequence — `grow_seq(id, 1)` per
//! running sequence per step is the simulator's hottest path.

use aqua_models::geometry::LlmGeometry;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

use crate::request::RequestId;

/// Default tokens per KV block (vLLM's default block size).
pub const DEFAULT_BLOCK_TOKENS: u64 = 16;

/// Physical index of one KV block within the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockId(pub u64);

/// A paged KV-cache pool for one model on one GPU.
///
/// # Example
///
/// ```
/// use aqua_engines::kvcache::PagedKvCache;
/// use aqua_engines::request::RequestId;
/// use aqua_models::zoo;
///
/// let geom = *zoo::mistral_7b().llm_geometry().unwrap();
/// let mut kv = PagedKvCache::new(geom, 1 << 30, 16);
/// assert!(kv.can_fit_tokens(1000));
/// kv.grow_seq(RequestId(1), 1000).unwrap();
/// assert_eq!(kv.block_table(RequestId(1)).unwrap().len(), 63); // ceil(1000/16)
/// kv.free_seq(RequestId(1));
/// assert_eq!(kv.used_blocks(), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PagedKvCache {
    geom: LlmGeometry,
    block_tokens: u64,
    total_blocks: u64,
    /// Physical blocks never yet allocated (ids `next_fresh..total_blocks`
    /// conceptually; tracked as a watermark).
    next_fresh: u64,
    /// Recycled blocks, LIFO — reuse keeps tables fragmented, like a real
    /// allocator under churn.
    free_list: Vec<BlockId>,
    /// Struct-of-arrays per-sequence state: `seq_ids[i]`, `seq_tokens[i]`
    /// and `seq_tables[i]` describe the same sequence; `index` maps a
    /// request id to its slot `i`. Frees swap-remove, so iteration order is
    /// dense and deterministic for a given operation sequence.
    seq_ids: Vec<RequestId>,
    seq_tokens: Vec<u64>,
    seq_tables: Vec<Vec<BlockId>>,
    index: HashMap<RequestId, usize>,
    /// Running totals maintained by grow/free so the per-iteration
    /// admission and gauge queries never scan live sequences.
    used_blocks: u64,
    total_tokens: u64,
    compacted_bytes: u64,
}

/// Error returned when the pool cannot satisfy a block request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KvOutOfBlocks {
    /// Blocks requested.
    pub requested: u64,
    /// Blocks free.
    pub free: u64,
}

impl std::fmt::Display for KvOutOfBlocks {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "kv pool exhausted: requested {} blocks, {} free",
            self.requested, self.free
        )
    }
}

impl std::error::Error for KvOutOfBlocks {}

impl PagedKvCache {
    /// Creates a pool of `pool_bytes` of KV storage for `geom`, paged into
    /// blocks of `block_tokens` tokens.
    ///
    /// # Panics
    ///
    /// Panics if `block_tokens == 0`.
    pub fn new(geom: LlmGeometry, pool_bytes: u64, block_tokens: u64) -> Self {
        assert!(block_tokens > 0, "block size must be positive");
        let block_bytes = geom.kv_bytes_per_token() * block_tokens;
        let total_blocks = pool_bytes / block_bytes;
        PagedKvCache {
            geom,
            block_tokens,
            total_blocks,
            next_fresh: 0,
            free_list: Vec::new(),
            seq_ids: Vec::new(),
            seq_tokens: Vec::new(),
            seq_tables: Vec::new(),
            index: HashMap::new(),
            used_blocks: 0,
            total_tokens: 0,
            compacted_bytes: 0,
        }
    }

    /// Bytes of one KV block.
    pub fn block_bytes(&self) -> u64 {
        self.geom.kv_bytes_per_token() * self.block_tokens
    }

    /// Total pool capacity in blocks.
    pub fn total_blocks(&self) -> u64 {
        self.total_blocks
    }

    /// Blocks currently mapped to sequences. O(1).
    pub fn used_blocks(&self) -> u64 {
        self.used_blocks
    }

    /// Blocks currently free. O(1).
    pub fn free_blocks(&self) -> u64 {
        self.total_blocks - self.used_blocks
    }

    /// Total pool capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.total_blocks * self.block_bytes()
    }

    /// Bytes currently mapped.
    pub fn used_bytes(&self) -> u64 {
        self.used_blocks() * self.block_bytes()
    }

    /// Bytes currently free.
    pub fn free_bytes(&self) -> u64 {
        self.free_blocks() * self.block_bytes()
    }

    /// Whether `tokens` additional tokens (for a fresh sequence) would fit.
    pub fn can_fit_tokens(&self, tokens: u64) -> bool {
        tokens.div_ceil(self.block_tokens) <= self.free_blocks()
    }

    /// Number of live sequences.
    pub fn seq_count(&self) -> usize {
        self.seq_ids.len()
    }

    /// Tokens currently stored for a sequence (0 if absent).
    pub fn used_tokens_of(&self, id: RequestId) -> u64 {
        self.index.get(&id).map_or(0, |&i| self.seq_tokens[i])
    }

    /// KV bytes currently mapped for a sequence (block-granular).
    pub fn bytes_of(&self, id: RequestId) -> u64 {
        self.index
            .get(&id)
            .map_or(0, |&i| self.seq_tables[i].len() as u64)
            * self.block_bytes()
    }

    /// The sequence's physical block table (its scatter pattern), if live.
    pub fn block_table(&self, id: RequestId) -> Option<&[BlockId]> {
        self.index.get(&id).map(|&i| self.seq_tables[i].as_slice())
    }

    /// Sum of context tokens across all live sequences. O(1).
    pub fn total_context_tokens(&self) -> u64 {
        self.total_tokens
    }

    /// Bytes copied so far by donation-time compaction (§B.1).
    pub fn compacted_bytes(&self) -> u64 {
        self.compacted_bytes
    }

    /// Extends sequence `id` by `tokens`, allocating blocks as needed.
    ///
    /// # Errors
    ///
    /// Returns [`KvOutOfBlocks`] (without partial allocation) if the pool
    /// cannot supply the required blocks.
    pub fn grow_seq(&mut self, id: RequestId, tokens: u64) -> Result<(), KvOutOfBlocks> {
        let slot = self.index.get(&id).copied();
        let (have_blocks, have_tokens) = slot
            .map(|i| (self.seq_tables[i].len() as u64, self.seq_tokens[i]))
            .unwrap_or((0, 0));
        let new_tokens = have_tokens + tokens;
        let needed_blocks = new_tokens.div_ceil(self.block_tokens);
        let extra = needed_blocks.saturating_sub(have_blocks);
        if extra > self.free_blocks() {
            return Err(KvOutOfBlocks {
                requested: extra,
                free: self.free_blocks(),
            });
        }
        let i = slot.unwrap_or_else(|| {
            let i = self.seq_ids.len();
            self.seq_ids.push(id);
            self.seq_tokens.push(0);
            // Size the table for the final footprint this grow implies, so
            // one-token decode growth never re-allocates the table.
            self.seq_tables
                .push(Vec::with_capacity(needed_blocks as usize));
            self.index.insert(id, i);
            i
        });
        self.seq_tokens[i] = new_tokens;
        let table = &mut self.seq_tables[i];
        for _ in 0..extra {
            // Cannot fail: extra <= free_blocks was checked above.
            let b = if let Some(b) = self.free_list.pop() {
                b
            } else {
                debug_assert!(self.next_fresh < self.total_blocks);
                let b = BlockId(self.next_fresh);
                self.next_fresh += 1;
                b
            };
            table.push(b);
        }
        self.used_blocks += extra;
        self.total_tokens += tokens;
        Ok(())
    }

    /// Releases all blocks of a sequence (no-op if absent). Returns freed
    /// bytes.
    pub fn free_seq(&mut self, id: RequestId) -> u64 {
        let Some(i) = self.index.remove(&id) else {
            return 0;
        };
        self.seq_ids.swap_remove(i);
        let tokens = self.seq_tokens.swap_remove(i);
        let table = self.seq_tables.swap_remove(i);
        if i < self.seq_ids.len() {
            // A tail slot moved into `i`; repoint its index entry.
            self.index.insert(self.seq_ids[i], i);
        }
        let freed_blocks = table.len() as u64;
        self.free_list.extend(table);
        self.used_blocks -= freed_blocks;
        self.total_tokens -= tokens;
        freed_blocks * self.block_bytes()
    }

    /// Shrinks the pool by up to `bytes` of *free* capacity (donation to
    /// AQUA). Returns the bytes actually removed.
    ///
    /// Donation gives away the physically-highest blocks; live blocks above
    /// the new watermark are compacted into free slots below it first (the
    /// §B.1 copy), which this method performs and accounts in
    /// [`PagedKvCache::compacted_bytes`].
    pub fn donate_bytes(&mut self, bytes: u64) -> u64 {
        let donate_blocks = (bytes / self.block_bytes()).min(self.free_blocks());
        if donate_blocks == 0 {
            return 0;
        }
        let new_total = self.total_blocks - donate_blocks;

        // Free slots below the cut, available as compaction targets.
        self.free_list.retain(|b| b.0 < new_total);
        // (Blocks at or above the cut simply leave the pool; fresh-watermark
        // capacity above the cut leaves implicitly via `total_blocks`.)
        let mut targets = std::mem::take(&mut self.free_list);

        // Live blocks above the cut must move below it. There are always
        // enough recycled slots below the cut: live-above-cut blocks only
        // exist when every id below the cut was minted, and
        // used <= new_total guarantees enough of those are free.
        let mut moved = 0u64;
        for table in self.seq_tables.iter_mut() {
            for b in table.iter_mut() {
                if b.0 >= new_total {
                    *b = targets
                        .pop()
                        .expect("donate <= free guarantees compaction targets");
                    moved += 1;
                }
            }
        }
        self.free_list = targets;
        self.compacted_bytes += moved * self.block_bytes();
        self.total_blocks = new_total;
        self.next_fresh = self.next_fresh.min(new_total);
        donate_blocks * self.block_bytes()
    }

    /// Grows the pool by `bytes` (reclaim from AQUA).
    pub fn reclaim_bytes(&mut self, bytes: u64) {
        self.total_blocks += bytes / self.block_bytes();
    }

    /// Pool utilisation in `[0, 1]` (0 for an empty pool).
    pub fn utilization(&self) -> f64 {
        if self.total_blocks == 0 {
            0.0
        } else {
            self.used_blocks() as f64 / self.total_blocks as f64
        }
    }

    /// Debug invariant: block tables are disjoint, within bounds, the free
    /// list holds no live block, and the O(1) counters match a full rescan.
    pub fn check_invariants(&self) -> bool {
        if self.seq_ids.len() != self.seq_tokens.len()
            || self.seq_ids.len() != self.seq_tables.len()
            || self.seq_ids.len() != self.index.len()
        {
            return false;
        }
        let mut seen = std::collections::HashSet::new();
        let mut blocks = 0u64;
        let mut tokens = 0u64;
        for (i, id) in self.seq_ids.iter().enumerate() {
            if self.index.get(id) != Some(&i) {
                return false;
            }
            let table = &self.seq_tables[i];
            if table.len() as u64 != self.seq_tokens[i].div_ceil(self.block_tokens) {
                return false;
            }
            blocks += table.len() as u64;
            tokens += self.seq_tokens[i];
            for b in table {
                if b.0 >= self.total_blocks || !seen.insert(*b) {
                    return false;
                }
            }
        }
        if blocks != self.used_blocks || tokens != self.total_tokens {
            return false;
        }
        for b in &self.free_list {
            if b.0 >= self.total_blocks || b.0 >= self.next_fresh || !seen.insert(*b) {
                return false;
            }
        }
        self.used_blocks() <= self.total_blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_models::zoo;
    use aqua_sim::link::bytes::gib;
    use proptest::prelude::*;

    fn cache(pool_gib: u64) -> PagedKvCache {
        let geom = *zoo::llama2_13b().llm_geometry().unwrap();
        PagedKvCache::new(geom, gib(pool_gib), DEFAULT_BLOCK_TOKENS)
    }

    #[test]
    fn block_math() {
        let kv = cache(40);
        // Llama-2-13B: 819200 B/token * 16 tokens = 12.5 MiB blocks.
        assert_eq!(kv.block_bytes(), 819_200 * 16);
        assert!(kv.total_blocks() > 3000);
        assert_eq!(kv.used_blocks(), 0);
        assert_eq!(kv.utilization(), 0.0);
    }

    #[test]
    fn grow_allocates_ceil_blocks() {
        let mut kv = cache(40);
        kv.grow_seq(RequestId(1), 17).unwrap();
        // 17 tokens need 2 blocks of 16.
        assert_eq!(kv.used_blocks(), 2);
        assert_eq!(kv.used_tokens_of(RequestId(1)), 17);
        // One more token fits in the existing second block.
        kv.grow_seq(RequestId(1), 1).unwrap();
        assert_eq!(kv.used_blocks(), 2);
        // Crossing the boundary allocates a third block.
        kv.grow_seq(RequestId(1), 15).unwrap();
        assert_eq!(kv.used_blocks(), 3);
        assert_eq!(kv.block_table(RequestId(1)).unwrap().len(), 3);
        assert!(kv.check_invariants());
    }

    #[test]
    fn exhaustion_is_atomic() {
        let geom = *zoo::llama2_13b().llm_geometry().unwrap();
        let mut kv = PagedKvCache::new(geom, kv_pool_of_blocks(&geom, 4), 16);
        assert_eq!(kv.total_blocks(), 4);
        kv.grow_seq(RequestId(1), 48).unwrap(); // 3 blocks
        let err = kv.grow_seq(RequestId(2), 32).unwrap_err(); // needs 2, 1 free
        assert_eq!(err.requested, 2);
        assert_eq!(err.free, 1);
        // Failed grow must not leak blocks.
        assert_eq!(kv.used_blocks(), 3);
        assert_eq!(kv.used_tokens_of(RequestId(2)), 0);
        assert!(kv.check_invariants());
    }

    fn kv_pool_of_blocks(geom: &LlmGeometry, blocks: u64) -> u64 {
        geom.kv_bytes_per_token() * 16 * blocks
    }

    #[test]
    fn free_seq_returns_bytes_and_recycles() {
        let mut kv = cache(40);
        kv.grow_seq(RequestId(9), 100).unwrap();
        let table_before: Vec<BlockId> = kv.block_table(RequestId(9)).unwrap().to_vec();
        let freed = kv.free_seq(RequestId(9));
        assert_eq!(freed, 7 * kv.block_bytes());
        assert_eq!(kv.free_seq(RequestId(9)), 0, "second free is a no-op");
        assert_eq!(kv.used_blocks(), 0);
        // Recycled blocks come back for the next sequence (LIFO reuse).
        kv.grow_seq(RequestId(10), 100).unwrap();
        let table_after = kv.block_table(RequestId(10)).unwrap();
        assert!(table_after.iter().all(|b| table_before.contains(b)));
    }

    #[test]
    fn tables_fragment_under_churn() {
        let mut kv = cache(1);
        // Interleave three sequences, then free the middle one.
        for t in 0..6 {
            for id in 0..3u64 {
                kv.grow_seq(RequestId(id), 16).unwrap();
                let _ = t;
            }
        }
        kv.free_seq(RequestId(1));
        // A new sequence reuses the freed (non-contiguous) blocks.
        kv.grow_seq(RequestId(7), 96).unwrap();
        let table = kv.block_table(RequestId(7)).unwrap();
        let contiguous = table.windows(2).all(|w| w[1].0 == w[0].0 + 1);
        assert!(!contiguous, "reused blocks are scattered: {table:?}");
        assert!(kv.check_invariants());
    }

    #[test]
    fn donation_only_takes_free_blocks() {
        let mut kv = cache(1);
        let total = kv.total_blocks();
        kv.grow_seq(RequestId(1), 16 * (total - 2)).unwrap();
        let donated = kv.donate_bytes(gib(1));
        assert_eq!(donated, 2 * kv.block_bytes());
        assert_eq!(kv.free_blocks(), 0);
        kv.reclaim_bytes(donated);
        assert_eq!(kv.free_blocks(), 2);
        assert!(kv.check_invariants());
    }

    #[test]
    fn donation_compacts_scattered_live_blocks() {
        let geom = *zoo::llama2_13b().llm_geometry().unwrap();
        let mut kv = PagedKvCache::new(geom, kv_pool_of_blocks(&geom, 8), 16);
        // Fill all 8 blocks across two sequences, free the first -> the
        // survivor's blocks sit scattered across the address range.
        kv.grow_seq(RequestId(1), 16 * 4).unwrap();
        kv.grow_seq(RequestId(2), 16 * 4).unwrap();
        kv.free_seq(RequestId(1));
        // Donate half the pool: survivor blocks living in the top half must
        // be compacted below the cut.
        let donated = kv.donate_bytes(4 * kv.block_bytes());
        assert_eq!(donated, 4 * kv.block_bytes());
        assert_eq!(kv.total_blocks(), 4);
        assert!(kv.compacted_bytes() > 0, "live top-half blocks moved");
        let table = kv.block_table(RequestId(2)).unwrap();
        assert!(
            table.iter().all(|b| b.0 < 4),
            "all blocks below the cut: {table:?}"
        );
        assert!(kv.check_invariants());
    }

    #[test]
    fn can_fit_matches_grow() {
        let geom = *zoo::mistral_7b().llm_geometry().unwrap();
        let mut kv = PagedKvCache::new(geom, kv_pool_of_blocks(&geom, 10), 16);
        assert!(kv.can_fit_tokens(160));
        assert!(!kv.can_fit_tokens(161));
        kv.grow_seq(RequestId(1), 160).unwrap();
        assert!(kv.can_fit_tokens(0));
        assert!(!kv.can_fit_tokens(1));
    }

    proptest! {
        /// Arbitrary grow/free/donate/reclaim sequences preserve the block
        /// invariants: disjoint in-bounds tables sized ceil(tokens/block),
        /// and the O(1) counters agreeing with a full rescan.
        #[test]
        fn block_accounting(ops in proptest::collection::vec((0u64..8, 1u64..200, 0u8..5), 1..100)) {
            let geom = *zoo::mistral_7b().llm_geometry().unwrap();
            let mut kv = PagedKvCache::new(geom, gib(4), 16);
            let mut donated_total = 0u64;
            for (seq, tokens, op) in ops {
                let id = RequestId(seq);
                match op {
                    0 => {
                        kv.free_seq(id);
                    }
                    1 if donated_total > 0 => {
                        kv.reclaim_bytes(donated_total);
                        donated_total = 0;
                    }
                    2 => {
                        donated_total += kv.donate_bytes(tokens * kv.block_bytes() / 4);
                    }
                    _ => {
                        let _ = kv.grow_seq(id, tokens);
                    }
                }
                prop_assert!(kv.check_invariants());
                let expected: u64 = (0..8)
                    .map(|s| kv.used_tokens_of(RequestId(s)).div_ceil(16))
                    .sum();
                prop_assert_eq!(kv.used_blocks(), expected);
                prop_assert!(kv.used_blocks() <= kv.total_blocks());
                let expected_tokens: u64 = (0..8)
                    .map(|s| kv.used_tokens_of(RequestId(s)))
                    .sum();
                prop_assert_eq!(kv.total_context_tokens(), expected_tokens);
            }
        }
    }
}
