//! First-fit-decreasing baseline placer.
//!
//! A fast heuristic used (a) as a comparison point for the exact solver and
//! (b) for instances with more distinct model types than
//! [`crate::solver::MAX_TYPES`]. Consumers are placed largest-deficit first
//! onto the server whose running memory balance best absorbs them;
//! producers largest-excess first onto the server with the worst deficit.

use crate::instance::{Placement, PlacementInstance, Role};

/// Greedily places models; always returns a constraint-feasible placement.
///
/// # Example
///
/// ```
/// use aqua_placer::prelude::*;
/// let inst = PlacementInstance::new(2, 2, 80 << 30, vec![
///     ModelSpec::producer("p", 40 << 30),
///     ModelSpec::consumer("c", 30 << 30),
/// ]);
/// let p = solve_greedy(&inst);
/// assert!(p.validate(&inst).is_ok());
/// ```
pub fn solve_greedy(inst: &PlacementInstance) -> Placement {
    let mut order: Vec<usize> = (0..inst.models.len()).collect();
    // Consumers first (most negative first), then producers (largest first):
    // every consumer lands before the producers that will back it.
    order.sort_by_key(|&m| {
        let spec = &inst.models[m];
        match spec.role() {
            Role::Consumer => (0, spec.mem_bytes),
            Role::Producer => (1, -spec.mem_bytes),
        }
    });

    let mut assignment = vec![0usize; inst.models.len()];
    let mut load = vec![0usize; inst.servers];
    let mut mem = vec![0i64; inst.servers];
    for &m in &order {
        let spec = &inst.models[m];
        let mut best: Option<(i64, usize)> = None;
        for s in 0..inst.servers {
            if load[s] >= inst.gpus_per_server {
                continue;
            }
            // Pick the server whose balance moves closest to zero.
            let after = (mem[s] + spec.mem_bytes).abs();
            if best.is_none_or(|(b, _)| after < b) {
                best = Some((after, s));
            }
        }
        let (_, s) = best.expect("instance guarantees enough GPUs");
        assignment[m] = s;
        load[s] += 1;
        mem[s] += spec.mem_bytes;
    }
    Placement { assignment }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::ModelSpec;

    const GB: u64 = 1 << 30;

    #[test]
    fn produces_feasible_placements() {
        let inst = PlacementInstance::new(
            4,
            8,
            80 * GB,
            (0..16)
                .map(|i| ModelSpec::producer(format!("p{i}"), 40 * GB))
                .chain((0..16).map(|i| ModelSpec::consumer(format!("c{i}"), 30 * GB)))
                .collect(),
        );
        let p = solve_greedy(&inst);
        p.validate(&inst).unwrap();
    }

    #[test]
    fn pairs_producers_with_consumers() {
        let inst = PlacementInstance::new(
            2,
            2,
            80 * GB,
            vec![
                ModelSpec::producer("p0", 40 * GB),
                ModelSpec::producer("p1", 40 * GB),
                ModelSpec::consumer("c0", 30 * GB),
                ModelSpec::consumer("c1", 30 * GB),
            ],
        );
        let p = solve_greedy(&inst);
        for s in 0..2 {
            let t_sum: i64 = p.models_on(s).iter().map(|&m| inst.models[m].t()).sum();
            assert_eq!(t_sum, 0, "each server balanced");
        }
    }

    #[test]
    fn respects_capacity_under_pressure() {
        // 1 server with exactly as many GPUs as models.
        let inst = PlacementInstance::new(
            1,
            3,
            80 * GB,
            vec![
                ModelSpec::consumer("a", GB),
                ModelSpec::consumer("b", GB),
                ModelSpec::consumer("c", GB),
            ],
        );
        let p = solve_greedy(&inst);
        p.validate(&inst).unwrap();
        assert_eq!(p.models_on(0).len(), 3);
    }

    #[test]
    fn handles_many_distinct_types() {
        // Beyond the exact solver's type limit: greedy still works.
        let inst = PlacementInstance::new(
            4,
            8,
            80 * GB,
            (0..20)
                .map(|i| {
                    if i % 2 == 0 {
                        ModelSpec::producer(format!("p{i}"), (i as u64 + 1) * GB)
                    } else {
                        ModelSpec::consumer(format!("c{i}"), (i as u64 + 1) * GB)
                    }
                })
                .collect(),
        );
        let p = solve_greedy(&inst);
        p.validate(&inst).unwrap();
    }
}
