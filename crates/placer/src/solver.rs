//! Exact solver for Algorithm 1.
//!
//! Key observation: models with identical `R_m` are interchangeable, so the
//! search runs over model *types* with multiplicities, filling servers one
//! at a time. A state is `(remaining type counts, servers left)`; its value
//! is the **Pareto frontier** of `(max mem_s, max eq_s)` pairs achievable
//! over all completions — two maxima that cannot be collapsed into one
//! scalar until the end, because `G_mem` weighs them only in the final
//! objective (Equation 5).
//!
//! The state space — and therefore solve time — grows combinatorially with
//! the number of *distinct* types, not the number of models. That is
//! exactly the behaviour the paper reports in Figure 14: inputs mixing
//! image/audio/LLM models take far longer at 128 GPUs than 50/50 LLM
//! producer/consumer inputs.
//!
//! Three compounding optimisations keep the exact search fast without
//! giving up optimality (the solver still returns a brute-force-identical
//! objective, checked by proptest):
//!
//! 1. **Fill catalog.** The feasible per-server fills — bounded multiset
//!    compositions of at most `gpus_per_server` GPUs over the model types —
//!    are enumerated *once* per instance, with each fill's `(mem, eq)`
//!    totals and packed memo-key delta precomputed. DP transitions iterate
//!    the catalog filtered against the remaining counts instead of
//!    re-running a recursive cartesian walk at every state. Crucially the
//!    filter also rejects fills whose child state cannot hold the leftover
//!    models (`remaining > (servers_left − 1) · G`): the old walk recursed
//!    into millions of such dead states and memoised their empty frontiers.
//! 2. **Incumbent bound.** The greedy placement's objective is an upper
//!    bound on the optimum. A transition is skipped when an optimistic
//!    completion bound (fill totals joined with per-server averages of the
//!    remaining totals) already exceeds the incumbent, and candidate pairs
//!    whose own scalar exceeds it are never inserted — both prunes keep
//!    every completion that could still *match* the incumbent, so ties and
//!    the true optimum survive.
//! 3. **Sorted frontiers.** Frontier merges collect all candidate pairs,
//!    sort by `(mem, eq)` and sweep once keeping strictly-decreasing `eq` —
//!    O(n log n) instead of the old O(n²) scan-and-retain per insertion.
//!
//! Note on catalog dedup: two *different* fills can share identical
//! `(mem, eq)` totals (e.g. types with memories {1, 5} vs {2, 4}), but they
//! consume different models and leave different remainders, so collapsing
//! them would lose completions and break exactness — the catalog therefore
//! keys entries by their full count vector and only caches the totals.

use crate::greedy::solve_greedy;
use crate::instance::{Placement, PlacementInstance};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::rc::Rc;

/// Multiply-shift hasher for the DP memo's already-packed `u64` keys. The
/// memo sees millions of lookups at 256 GPUs, where SipHash's per-call cost
/// is measurable; the keys are dense bit-packed counts, so a single odd
/// multiply mixes them more than well enough.
#[derive(Default)]
struct PackedKeyHasher(u64);

impl Hasher for PackedKeyHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(b as u64);
        }
    }

    fn write_u64(&mut self, n: u64) {
        let h = (self.0 ^ n).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        self.0 = h ^ (h >> 32);
    }
}

type MemoMap<V> = HashMap<u64, V, BuildHasherDefault<PackedKeyHasher>>;

/// Maximum number of distinct model types the exact solver accepts.
pub const MAX_TYPES: usize = 9;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Pair {
    mem: i64,
    eq: i64,
}

struct TypeInfo {
    mem: i64,
    t: i64,
    members: Vec<usize>,
}

/// Per-instance memo-key layout: each type's remaining count gets exactly
/// as many bits as its *initial* multiplicity needs, and `servers_left`
/// sits above them. Widths are derived from the instance, so a key either
/// fits losslessly in 64 bits or the instance is rejected up front —
/// silent field overflow (and the memo collisions it caused) is impossible
/// by construction.
struct KeyLayout {
    /// Bit offset of each type's count field.
    shift: Vec<u32>,
    /// Bit width of each type's count field.
    width: Vec<u32>,
    /// Bit offset of the `servers_left` field (above all counts).
    server_shift: u32,
}

impl KeyLayout {
    /// Plans the packing for `counts`/`servers`, or explains why the key
    /// cannot fit in 64 bits.
    fn plan(counts: &[usize], servers: usize) -> Result<KeyLayout, String> {
        fn bits_for(v: usize) -> u32 {
            (usize::BITS - v.leading_zeros()).max(1)
        }
        let width: Vec<u32> = counts.iter().map(|&c| bits_for(c)).collect();
        let mut shift = vec![0u32; counts.len()];
        let mut offset = 0u32;
        for (i, &w) in width.iter().enumerate().rev() {
            shift[i] = offset;
            offset += w;
        }
        let server_shift = offset;
        let total = offset + bits_for(servers);
        if total > u64::BITS {
            return Err(format!(
                "exact solver memo key needs {total} bits (> 64): \
                 {} type counts {counts:?} plus {servers} servers; \
                 use the greedy solver for this instance",
                counts.len()
            ));
        }
        Ok(KeyLayout {
            shift,
            width,
            server_shift,
        })
    }

    /// Packs a state into its unique `u64` memo key.
    fn encode(&self, counts: &[usize], servers_left: usize) -> u64 {
        let mut key = (servers_left as u64) << self.server_shift;
        for (i, &c) in counts.iter().enumerate() {
            debug_assert!(
                (c as u64) < (1u64 << self.width[i]),
                "count {c} overflows its {}-bit key field",
                self.width[i]
            );
            key |= (c as u64) << self.shift[i];
        }
        key
    }
}

/// One precomputed per-server fill: how many models of each type go on the
/// server, with totals and the packed key decrement cached so a DP
/// transition touches no per-type arithmetic beyond the feasibility check.
#[derive(Debug, Clone, Copy)]
struct Fill {
    /// Models taken per type (fixed-size so `Fill` is `Copy` and the
    /// catalog can be read while the DP recurses).
    take: [u16; MAX_TYPES],
    /// Total GPUs the fill occupies.
    used: usize,
    /// Σ type mem · take.
    mem: i64,
    /// Σ type t · take.
    eq: i64,
    /// Packed-key decrement for applying this fill *and* consuming one
    /// server: `child_key = key − key_delta`.
    key_delta: u64,
}

/// Deterministic work accounting for one exact solve: a machine-independent
/// proxy for convergence cost (wall time scales with it, but unlike wall
/// time it is bit-identical across runs and hosts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolveStats {
    /// Distinct DP states memoised: `(remaining type counts, servers left)`.
    pub dp_states: usize,
    /// Catalog fills applied during the forward search — transitions that
    /// passed the feasibility filter and the incumbent bound. Pruned
    /// branches and reconstruction (which replays memoised frontiers) are
    /// not counted.
    pub expansions: u64,
}

/// Ceiling division that stays exact for negative numerators (divisor > 0):
/// the average is a valid lower bound on a max over `den` servers.
fn div_ceil(num: i64, den: i64) -> i64 {
    num.div_euclid(den) + (num.rem_euclid(den) != 0) as i64
}

struct Dp<'a> {
    types: &'a [TypeInfo],
    gpus_per_server: usize,
    catalog: Vec<Fill>,
    layout: KeyLayout,
    /// Upper bound on the optimal scalar (greedy objective); `i128::MAX`
    /// disables pruning for the reference solve.
    incumbent: i128,
    gpu_mem: i128,
    // Frontiers are shared by `Rc`: the DP reads a memoised child frontier
    // once per applied fill, and a deep clone per read dominated the solve.
    memo: MemoMap<Rc<[Pair]>>,
    /// Recycled candidate buffers, one per live recursion level, so a
    /// steady-state DP expansion allocates only its memoised frontier.
    scratch: Vec<Vec<Pair>>,
    expansions: u64,
}

/// Equation-5 scalar of a suffix maxima pair, exactly matching
/// [`PlacementInstance::objective`]: every server applies some catalog fill
/// (an *empty* fill contributes `(0, 0)`, just like an empty server in the
/// objective), so root pairs are true cluster-wide maxima and need no
/// clamping. (The previous solver clamped negatives to zero here, which
/// silently mis-ranked ties on all-consumer instances whose true optimum
/// is negative.) Because the final maxima dominate any suffix pair
/// component-wise and this scalar is monotone in both coordinates
/// (`gpu_mem ≥ 0`), the scalar of *any* suffix pair lower-bounds the full
/// objective — the property both incumbent prunes rely on.
fn scalar(p: Pair, gpu_mem: i128) -> i128 {
    p.mem as i128 + gpu_mem * p.eq as i128
}

impl Dp<'_> {
    /// Builds the fill catalog: every composition of at most
    /// `gpus_per_server` GPUs over the types, bounded by the instance's
    /// initial multiplicities, in lexicographic take order (which fixes the
    /// reconstruction tie-break).
    fn build_catalog(&mut self, init_counts: &[usize]) {
        let mut take = [0u16; MAX_TYPES];
        self.push_fills(0, self.gpus_per_server, init_counts, &mut take);
    }

    fn push_fills(
        &mut self,
        ty: usize,
        room: usize,
        init_counts: &[usize],
        take: &mut [u16; MAX_TYPES],
    ) {
        if ty == init_counts.len() {
            let mut mem = 0i64;
            let mut eq = 0i64;
            let mut used = 0usize;
            let mut key_delta = 1u64 << self.layout.server_shift;
            for (i, &n) in take.iter().enumerate().take(init_counts.len()) {
                mem += self.types[i].mem * n as i64;
                eq += self.types[i].t * n as i64;
                used += n as usize;
                key_delta += (n as u64) << self.layout.shift[i];
            }
            self.catalog.push(Fill {
                take: *take,
                used,
                mem,
                eq,
                key_delta,
            });
            return;
        }
        let available = init_counts[ty].min(room);
        for n in 0..=available {
            take[ty] = n as u16;
            self.push_fills(ty + 1, room - n, init_counts, take);
        }
        take[ty] = 0;
    }

    /// Pareto-optimal `(max mem, max eq)` pairs over all ways of packing the
    /// remaining `counts` into `servers_left` servers, pruned against the
    /// incumbent (points that cannot match it are dropped; points that tie
    /// it are kept, so the reported optimum is exact).
    fn solve(&mut self, counts: &mut [usize], servers_left: usize, key: u64) -> Rc<[Pair]> {
        if let Some(f) = self.memo.get(&key) {
            return Rc::clone(f);
        }
        let total: usize = counts.iter().sum();
        if servers_left == 0 {
            let frontier: Rc<[Pair]> = if total == 0 {
                Rc::from(vec![Pair {
                    mem: i64::MIN,
                    eq: i64::MIN,
                }])
            } else {
                Rc::from(Vec::new()) // infeasible: models left but no servers
            };
            self.memo.insert(key, Rc::clone(&frontier));
            return frontier;
        }
        debug_assert!(
            total <= servers_left * self.gpus_per_server,
            "transitions never enter over-full states"
        );
        let mut mem_left = 0i64;
        let mut eq_left = 0i64;
        for (i, &c) in counts.iter().enumerate() {
            mem_left += self.types[i].mem * c as i64;
            eq_left += self.types[i].t * c as i64;
        }
        let mut cands = self.scratch.pop().unwrap_or_default();
        let room_after = (servers_left - 1) * self.gpus_per_server;
        for idx in 0..self.catalog.len() {
            let fill = self.catalog[idx];
            if total - fill.used.min(total) > room_after {
                continue; // leftover models cannot fit in the remaining servers
            }
            if fill
                .take
                .iter()
                .zip(counts.iter())
                .any(|(&t, &c)| t as usize > c)
            {
                continue;
            }
            if self.incumbent < i128::MAX {
                // Optimistic completion: the subtree's maxima are at least
                // the fill's totals and at least the per-server average of
                // what remains. If even that cannot match the incumbent,
                // no completion through this fill can.
                let k1 = (servers_left - 1) as i64;
                let bound = if k1 == 0 {
                    Pair {
                        mem: fill.mem,
                        eq: fill.eq,
                    }
                } else {
                    Pair {
                        mem: fill.mem.max(div_ceil(mem_left - fill.mem, k1)),
                        eq: fill.eq.max(div_ceil(eq_left - fill.eq, k1)),
                    }
                };
                if scalar(bound, self.gpu_mem) > self.incumbent {
                    continue;
                }
            }
            self.expansions += 1;
            for (i, &t) in fill.take.iter().enumerate().take(counts.len()) {
                counts[i] -= t as usize;
            }
            let child = self.solve(counts, servers_left - 1, key - fill.key_delta);
            for (i, &t) in fill.take.iter().enumerate().take(counts.len()) {
                counts[i] += t as usize;
            }
            for r in child.iter() {
                let p = Pair {
                    mem: fill.mem.max(r.mem),
                    eq: fill.eq.max(r.eq),
                };
                if scalar(p, self.gpu_mem) > self.incumbent {
                    continue;
                }
                cands.push(p);
            }
        }
        let frontier = pareto_sweep(&mut cands);
        cands.clear();
        self.scratch.push(cands);
        self.memo.insert(key, Rc::clone(&frontier));
        frontier
    }

    /// Finds the lexicographically-first catalog fill for the next server
    /// such that combining it with a point of the (already memoised) child
    /// frontier achieves `target`. Replays the forward search's exact
    /// feasibility filter and incumbent bound, so every child lookup is a
    /// memo hit and reconstruction does no new enumeration work (and does
    /// not advance [`SolveStats::expansions`]).
    fn reconstruct_fill(
        &mut self,
        counts: &mut [usize],
        servers_left: usize,
        key: u64,
        target: i128,
    ) -> Option<Fill> {
        let total: usize = counts.iter().sum();
        let mut mem_left = 0i64;
        let mut eq_left = 0i64;
        for (i, &c) in counts.iter().enumerate() {
            mem_left += self.types[i].mem * c as i64;
            eq_left += self.types[i].t * c as i64;
        }
        let room_after = (servers_left - 1) * self.gpus_per_server;
        for idx in 0..self.catalog.len() {
            let fill = self.catalog[idx];
            if total - fill.used.min(total) > room_after {
                continue;
            }
            if fill
                .take
                .iter()
                .zip(counts.iter())
                .any(|(&t, &c)| t as usize > c)
            {
                continue;
            }
            if self.incumbent < i128::MAX {
                let k1 = (servers_left - 1) as i64;
                let bound = if k1 == 0 {
                    Pair {
                        mem: fill.mem,
                        eq: fill.eq,
                    }
                } else {
                    Pair {
                        mem: fill.mem.max(div_ceil(mem_left - fill.mem, k1)),
                        eq: fill.eq.max(div_ceil(eq_left - fill.eq, k1)),
                    }
                };
                if scalar(bound, self.gpu_mem) > self.incumbent {
                    continue;
                }
            }
            for (i, &t) in fill.take.iter().enumerate().take(counts.len()) {
                counts[i] -= t as usize;
            }
            let child = self.solve(counts, servers_left - 1, key - fill.key_delta);
            for (i, &t) in fill.take.iter().enumerate().take(counts.len()) {
                counts[i] += t as usize;
            }
            let hit = child.iter().any(|r| {
                let p = Pair {
                    mem: fill.mem.max(r.mem),
                    eq: fill.eq.max(r.eq),
                };
                scalar(p, self.gpu_mem) <= target
            });
            if hit {
                return Some(fill);
            }
        }
        None
    }
}

/// Sorts candidates by `(mem, eq)` and sweeps once, keeping points with
/// strictly decreasing `eq` — exactly the non-dominated set under
/// minimise-both dominance, in O(n log n).
fn pareto_sweep(cands: &mut [Pair]) -> Rc<[Pair]> {
    cands.sort_unstable_by_key(|a| (a.mem, a.eq));
    let mut out: Vec<Pair> = Vec::new();
    let mut best_eq = i64::MAX;
    for &p in cands.iter() {
        if p.eq < best_eq {
            out.push(p);
            best_eq = p.eq;
        }
    }
    Rc::from(out)
}

/// Groups an instance's models into types (equal `R_m` ⇒ interchangeable)
/// and plans the memo-key layout; `Err` explains why the exact solver
/// cannot handle the instance.
fn plan_types(inst: &PlacementInstance) -> Result<(Vec<TypeInfo>, Vec<usize>, KeyLayout), String> {
    let mut type_index: HashMap<i64, usize> = HashMap::new();
    let mut types: Vec<TypeInfo> = Vec::new();
    for (m, model) in inst.models.iter().enumerate() {
        let idx = *type_index.entry(model.mem_bytes).or_insert_with(|| {
            types.push(TypeInfo {
                mem: model.mem_bytes,
                t: model.t(),
                members: Vec::new(),
            });
            types.len() - 1
        });
        types[idx].members.push(m);
    }
    if types.len() > MAX_TYPES {
        return Err(format!(
            "exact solver supports at most {MAX_TYPES} distinct model types, got {}",
            types.len()
        ));
    }
    let counts: Vec<usize> = types.iter().map(|t| t.members.len()).collect();
    let layout = KeyLayout::plan(&counts, inst.servers)?;
    Ok((types, counts, layout))
}

/// Solves Algorithm 1 exactly, returning an Equation-5-optimal placement.
///
/// # Panics
///
/// Panics if the instance has more than [`MAX_TYPES`] distinct `R_m` values
/// or its memo key cannot fit in 64 bits (the exact DP's state space is
/// exponential in the type count; use [`crate::greedy::solve_greedy`]
/// beyond that) or if no feasible placement exists (cannot happen for
/// instances accepted by [`PlacementInstance::new`]).
pub fn solve_optimal(inst: &PlacementInstance) -> Placement {
    solve_optimal_stats(inst).0
}

/// Like [`solve_optimal`], additionally returning the deterministic
/// [`SolveStats`] work counters (Figure 14 reports these instead of
/// machine-dependent wall seconds).
pub fn solve_optimal_stats(inst: &PlacementInstance) -> (Placement, SolveStats) {
    let incumbent = clamped_incumbent(inst);
    solve_with_incumbent(inst, incumbent)
}

/// Reference solve with incumbent pruning disabled — the exact DP explores
/// every feasible transition. A differential-testing oracle: it must return
/// the *identical* [`Placement`] (not merely the same objective) as
/// [`solve_optimal_stats`], because both reconstruct along the same
/// lexicographic catalog order toward the same optimal scalar.
pub fn solve_optimal_reference(inst: &PlacementInstance) -> (Placement, SolveStats) {
    solve_with_incumbent(inst, i128::MAX)
}

/// The greedy placement's Equation-5 objective: an upper bound on the
/// optimum used to seed the branch-and-bound pruning.
fn clamped_incumbent(inst: &PlacementInstance) -> i128 {
    let greedy = solve_greedy(inst);
    greedy.objective(inst)
}

fn solve_with_incumbent(inst: &PlacementInstance, incumbent: i128) -> (Placement, SolveStats) {
    let (types, mut counts, layout) = match plan_types(inst) {
        Ok(plan) => plan,
        Err(e) => panic!("{e}"),
    };
    let mut dp = Dp {
        types: &types,
        gpus_per_server: inst.gpus_per_server,
        catalog: Vec::new(),
        layout,
        incumbent,
        gpu_mem: inst.gpu_mem_bytes as i128,
        memo: MemoMap::default(),
        scratch: Vec::new(),
        expansions: 0,
    };
    dp.build_catalog(&counts);
    let root_key = dp.layout.encode(&counts, inst.servers);
    let frontier = dp.solve(&mut counts, inst.servers, root_key);
    let target = frontier
        .iter()
        .map(|&p| scalar(p, dp.gpu_mem))
        .min()
        .expect("instance admits a feasible placement");

    // Reconstruct: walk servers, picking the first catalog fill whose
    // combination with the memoised child frontier achieves the optimum.
    let mut assignment = vec![usize::MAX; inst.models.len()];
    let mut next_member: Vec<usize> = vec![0; types.len()];
    let mut servers_left = inst.servers;
    while servers_left > 0 {
        let key = dp.layout.encode(&counts, servers_left);
        let fill = dp
            .reconstruct_fill(&mut counts, servers_left, key, target)
            .expect("optimal fill exists for every prefix");
        let server = inst.servers - servers_left;
        for (ty, &n) in fill.take.iter().enumerate().take(types.len()) {
            for _ in 0..n {
                let member = types[ty].members[next_member[ty]];
                next_member[ty] += 1;
                assignment[member] = server;
                counts[ty] -= 1;
            }
        }
        servers_left -= 1;
    }
    debug_assert!(assignment.iter().all(|&s| s < inst.servers));
    let stats = SolveStats {
        dp_states: dp.memo.len(),
        expansions: dp.expansions,
    };
    (Placement { assignment }, stats)
}

/// Solves exactly when the instance fits the exact solver's limits (at most
/// [`MAX_TYPES`] distinct model types and a 64-bit memo key), otherwise
/// falls back to the greedy heuristic — the API a cluster scheduler would
/// call on arbitrary inputs.
pub fn solve(inst: &PlacementInstance) -> Placement {
    if plan_types(inst).is_ok() {
        solve_optimal(inst)
    } else {
        crate::greedy::solve_greedy(inst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::ModelSpec;
    use proptest::prelude::*;

    const GB: i64 = 1 << 30;

    fn brute_force(inst: &PlacementInstance) -> i128 {
        fn rec(inst: &PlacementInstance, m: usize, assignment: &mut Vec<usize>, best: &mut i128) {
            if m == inst.models.len() {
                let mut counts = vec![0usize; inst.servers];
                for &s in assignment.iter() {
                    counts[s] += 1;
                }
                if counts.iter().all(|&c| c <= inst.gpus_per_server) {
                    *best = (*best).min(inst.objective(assignment));
                }
                return;
            }
            for s in 0..inst.servers {
                assignment.push(s);
                rec(inst, m + 1, assignment, best);
                assignment.pop();
            }
        }
        let mut best = i128::MAX;
        rec(inst, 0, &mut Vec::new(), &mut best);
        best
    }

    fn fig4() -> PlacementInstance {
        PlacementInstance::new(
            2,
            2,
            80 * GB as u64,
            vec![
                ModelSpec::producer("v0", 40 * GB as u64),
                ModelSpec::producer("v1", 40 * GB as u64),
                ModelSpec::consumer("l0", 30 * GB as u64),
                ModelSpec::consumer("l1", 30 * GB as u64),
            ],
        )
    }

    #[test]
    fn figure4_colocates() {
        let inst = fig4();
        let p = solve_optimal(&inst);
        p.validate(&inst).unwrap();
        for s in 0..2 {
            let models = p.models_on(s);
            let roles: Vec<i64> = models.iter().map(|&m| inst.models[m].t()).collect();
            assert_eq!(roles.iter().sum::<i64>(), 0, "one producer + one consumer");
        }
    }

    #[test]
    fn matches_brute_force_on_small_instances() {
        let cases = vec![
            fig4(),
            PlacementInstance::new(
                3,
                2,
                80 * GB as u64,
                vec![
                    ModelSpec::producer("p0", 50 * GB as u64),
                    ModelSpec::producer("p1", 20 * GB as u64),
                    ModelSpec::consumer("c0", 45 * GB as u64),
                    ModelSpec::consumer("c1", 10 * GB as u64),
                    ModelSpec::consumer("c2", 10 * GB as u64),
                ],
            ),
            PlacementInstance::new(
                2,
                4,
                80 * GB as u64,
                vec![
                    ModelSpec::producer("p0", 60 * GB as u64),
                    ModelSpec::producer("p1", 60 * GB as u64),
                    ModelSpec::producer("p2", 30 * GB as u64),
                    ModelSpec::consumer("c0", 40 * GB as u64),
                    ModelSpec::consumer("c1", 40 * GB as u64),
                    ModelSpec::consumer("c2", 40 * GB as u64),
                ],
            ),
        ];
        for inst in cases {
            let p = solve_optimal(&inst);
            p.validate(&inst).unwrap();
            let opt = brute_force(&inst);
            assert_eq!(
                p.objective(&inst),
                opt,
                "DP must match brute force on {} models",
                inst.models.len()
            );
        }
    }

    #[test]
    fn optimal_never_worse_than_greedy() {
        let inst = PlacementInstance::new(
            4,
            8,
            80 * GB as u64,
            (0..12)
                .map(|i| ModelSpec::producer(format!("p{i}"), 40 * GB as u64))
                .chain((0..12).map(|i| ModelSpec::consumer(format!("c{i}"), 35 * GB as u64)))
                .collect(),
        );
        let opt = solve_optimal(&inst);
        let greedy = solve_greedy(&inst);
        opt.validate(&inst).unwrap();
        greedy.validate(&inst).unwrap();
        assert!(opt.objective(&inst) <= greedy.objective(&inst));
    }

    #[test]
    fn scales_to_16_gpus_with_three_types() {
        // A small Figure-14-style instance: 2 servers × 8 GPUs, three types.
        let inst = PlacementInstance::new(
            2,
            8,
            80 * GB as u64,
            (0..5)
                .map(|i| ModelSpec::producer(format!("img{i}"), 50 * GB as u64))
                .chain((0..5).map(|i| ModelSpec::producer(format!("aud{i}"), 60 * GB as u64)))
                .chain((0..6).map(|i| ModelSpec::consumer(format!("llm{i}"), 30 * GB as u64)))
                .collect(),
        );
        let p = solve_optimal(&inst);
        p.validate(&inst).unwrap();
    }

    #[test]
    fn nine_types_accepted() {
        // MAX_TYPES rose from 7 to 9: a 9-type instance must solve exactly.
        let inst = PlacementInstance::new(
            3,
            4,
            80 * GB as u64,
            (0..9u64)
                .map(|i| {
                    if i % 2 == 0 {
                        ModelSpec::producer(format!("p{i}"), (i + 1) << 30)
                    } else {
                        ModelSpec::consumer(format!("c{i}"), (i + 1) << 30)
                    }
                })
                .collect(),
        );
        let p = solve_optimal(&inst);
        p.validate(&inst).unwrap();
        let (pr, _) = solve_optimal_reference(&inst);
        assert_eq!(p, pr, "pruned and reference solves must agree");
    }

    #[test]
    #[should_panic(expected = "distinct model types")]
    fn too_many_types_rejected() {
        let inst = PlacementInstance::new(
            3,
            4,
            80 * GB as u64,
            (0..10)
                .map(|i| ModelSpec::producer(format!("m{i}"), (i as u64 + 1) << 30))
                .collect(),
        );
        solve_optimal(&inst);
    }

    #[test]
    fn wide_counts_solve_exactly() {
        // 300 identical producers (> 255, the old 8-bit field limit that
        // silently collided memo keys): the dynamic key layout gives the
        // count 9 bits and the solve stays exact — perfect balance puts 8
        // models on 37 servers and 4 on the last, so the maxima are
        // (8 · mem, +8).
        let mem = 2 * GB as u64;
        let inst = PlacementInstance::new(
            38,
            8,
            80 * GB as u64,
            (0..300)
                .map(|i| ModelSpec::producer(format!("p{i}"), mem))
                .collect(),
        );
        let (p, _) = solve_optimal_stats(&inst);
        p.validate(&inst).unwrap();
        assert_eq!(
            p.objective(&inst),
            8 * mem as i128 + 8 * (80 * GB as u128 as i128)
        );
    }

    #[test]
    fn many_servers_solve_exactly() {
        // > 255 servers: the servers_left field also gets a dynamic width.
        let inst = PlacementInstance::new(
            300,
            1,
            80 * GB as u64,
            vec![
                ModelSpec::producer("p", 40 * GB as u64),
                ModelSpec::consumer("c", 30 * GB as u64),
            ],
        );
        let p = solve_optimal(&inst);
        p.validate(&inst).unwrap();
        // One producer alone on some server: maxima (40 GB, +1).
        assert_eq!(p.objective(&inst), 40 * GB as i128 + 80 * GB as i128);
    }

    /// 9 types × 127 models each needs 9 × 7 = 63 count bits plus 11 server
    /// bits — over 64, so the exact solver must refuse rather than let key
    /// fields collide.
    fn overflowing_instance() -> PlacementInstance {
        PlacementInstance::new(
            1143,
            1,
            80 * GB as u64,
            (0..9u64)
                .flat_map(|ty| {
                    (0..127).map(move |i| ModelSpec::producer(format!("t{ty}m{i}"), (ty + 1) << 30))
                })
                .collect(),
        )
    }

    #[test]
    #[should_panic(expected = "memo key needs")]
    fn oversized_memo_key_rejected() {
        solve_optimal(&overflowing_instance());
    }

    #[test]
    fn solve_falls_back_to_greedy_on_oversized_keys() {
        let inst = overflowing_instance();
        solve(&inst).validate(&inst).unwrap();
    }

    #[test]
    fn solve_dispatches_by_type_count() {
        // Few types: exact.
        let small = fig4();
        assert_eq!(
            solve(&small).objective(&small),
            solve_optimal(&small).objective(&small)
        );
        // Many types: greedy fallback is still feasible.
        let many = PlacementInstance::new(
            4,
            8,
            80 * GB as u64,
            (0..20u64)
                .map(|i| {
                    if i % 2 == 0 {
                        ModelSpec::producer(format!("p{i}"), (i + 10) * GB as u64)
                    } else {
                        ModelSpec::consumer(format!("c{i}"), (i + 5) * GB as u64)
                    }
                })
                .collect(),
        );
        solve(&many).validate(&many).unwrap();
    }

    #[test]
    fn single_model_instance() {
        let inst = PlacementInstance::new(
            2,
            1,
            80 * GB as u64,
            vec![ModelSpec::consumer("c", 10 * GB as u64)],
        );
        let p = solve_optimal(&inst);
        p.validate(&inst).unwrap();
        assert_eq!(p.assignment.len(), 1);
    }

    #[test]
    fn reconstruction_replays_memoised_frontiers() {
        // The reconstruction walk must be near-free: it replays the forward
        // search's memo instead of enumerating fills again, so the
        // expansions counter (forward work only) does not move between the
        // stats solve and an identical re-solve.
        let inst = PlacementInstance::new(
            2,
            8,
            80 * GB as u64,
            (0..5)
                .map(|i| ModelSpec::producer(format!("img{i}"), 50 * GB as u64))
                .chain((0..5).map(|i| ModelSpec::producer(format!("aud{i}"), 60 * GB as u64)))
                .chain((0..6).map(|i| ModelSpec::consumer(format!("llm{i}"), 30 * GB as u64)))
                .collect(),
        );
        let (a, sa) = solve_optimal_stats(&inst);
        let (b, sb) = solve_optimal_stats(&inst);
        assert_eq!(a, b, "solves are deterministic");
        assert_eq!(sa, sb, "work counters are deterministic");
        assert!(sa.expansions > 0);
    }

    proptest! {
        /// The catalog DP with incumbent pruning stays exact: on random
        /// small instances its objective equals brute force, and disabling
        /// the pruning (reference solve) reproduces the identical placement.
        #[test]
        fn random_instances_match_brute_force(
            servers in 1usize..4,
            gpus in 1usize..4,
            specs in proptest::collection::vec((1u64..6, 0u8..2), 1..7),
        ) {
            let capacity = servers * gpus;
            let models: Vec<ModelSpec> = specs
                .iter()
                .take(capacity.min(6))
                .enumerate()
                .map(|(i, &(mem, kind))| {
                    if kind == 0 {
                        ModelSpec::producer(format!("p{i}"), mem * GB as u64)
                    } else {
                        ModelSpec::consumer(format!("c{i}"), mem * GB as u64)
                    }
                })
                .collect();
            let inst = PlacementInstance::new(servers, gpus, 80 * GB as u64, models);
            let (p, _) = solve_optimal_stats(&inst);
            p.validate(&inst).unwrap();
            prop_assert_eq!(p.objective(&inst), brute_force(&inst));
            let (reference, _) = solve_optimal_reference(&inst);
            prop_assert_eq!(p, reference);
        }
    }
}
