//! Exact solver for Algorithm 1.
//!
//! Key observation: models with identical `R_m` are interchangeable, so the
//! search runs over model *types* with multiplicities, filling servers one
//! at a time. A state is `(remaining type counts, servers left)`; its value
//! is the **Pareto frontier** of `(max mem_s, max eq_s)` pairs achievable
//! over all completions — two maxima that cannot be collapsed into one
//! scalar until the end, because `G_mem` weighs them only in the final
//! objective (Equation 5).
//!
//! The state space — and therefore solve time — grows combinatorially with
//! the number of *distinct* types, not the number of models. That is
//! exactly the behaviour the paper reports in Figure 14: inputs mixing
//! image/audio/LLM models take tens of seconds at 128 GPUs, while 50/50 LLM
//! producer/consumer inputs solve in under a second.

use crate::instance::{Placement, PlacementInstance};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::rc::Rc;

/// Multiply-shift hasher for the DP memo's already-packed `u64` keys. The
/// memo sees ~100M lookups at 128 GPUs, where SipHash's per-call cost is
/// measurable; the keys are dense bit-packed counts, so a single odd
/// multiply mixes them more than well enough.
#[derive(Default)]
struct PackedKeyHasher(u64);

impl Hasher for PackedKeyHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(b as u64);
        }
    }

    fn write_u64(&mut self, n: u64) {
        let h = (self.0 ^ n).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        self.0 = h ^ (h >> 32);
    }
}

type MemoMap<V> = HashMap<u64, V, BuildHasherDefault<PackedKeyHasher>>;

/// Maximum number of distinct model types the exact solver accepts.
pub const MAX_TYPES: usize = 7;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Pair {
    mem: i64,
    eq: i64,
}

/// Merges a point into a Pareto frontier (minimising both coordinates).
fn insert_pareto(frontier: &mut Vec<Pair>, p: Pair) {
    if frontier.iter().any(|q| q.mem <= p.mem && q.eq <= p.eq) {
        return;
    }
    frontier.retain(|q| !(p.mem <= q.mem && p.eq <= q.eq));
    frontier.push(p);
}

struct TypeInfo {
    mem: i64,
    t: i64,
    members: Vec<usize>,
}

struct Dp<'a> {
    types: &'a [TypeInfo],
    gpus_per_server: usize,
    // Frontiers are shared by `Rc`: the hot leaf of `enumerate_fills` reads
    // a memoised child frontier once per fill (~100M times at 128 GPUs),
    // and a deep `Vec` clone per read dominated the whole solve.
    memo: MemoMap<Rc<Vec<Pair>>>,
    expansions: u64,
}

/// Deterministic work accounting for one exact solve: a machine-independent
/// proxy for convergence cost (wall time scales with it, but unlike wall
/// time it is bit-identical across runs and hosts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolveStats {
    /// Distinct DP states memoised: `(remaining type counts, servers left)`.
    pub dp_states: usize,
    /// Server-fill enumerations explored across the whole search.
    pub expansions: u64,
}

fn encode(counts: &[usize], servers_left: usize) -> u64 {
    let mut key = servers_left as u64;
    for &c in counts {
        key = key << 8 | c as u64;
    }
    key
}

impl Dp<'_> {
    /// Pareto-optimal `(max mem, max eq)` pairs over all ways of packing the
    /// remaining `counts` into `servers_left` servers.
    fn solve(&mut self, counts: &mut Vec<usize>, servers_left: usize) -> Rc<Vec<Pair>> {
        let key = encode(counts, servers_left);
        if let Some(f) = self.memo.get(&key) {
            return Rc::clone(f);
        }
        let total: usize = counts.iter().sum();
        if servers_left == 0 {
            let frontier = Rc::new(if total == 0 {
                vec![Pair {
                    mem: i64::MIN,
                    eq: i64::MIN,
                }]
            } else {
                Vec::new() // infeasible: models left but no servers
            });
            self.memo.insert(key, Rc::clone(&frontier));
            return frontier;
        }
        let mut frontier: Vec<Pair> = Vec::new();
        let mut fill = vec![0usize; counts.len()];
        self.enumerate_fills(
            0,
            self.gpus_per_server,
            counts,
            &mut fill,
            servers_left,
            &mut frontier,
        );
        let frontier = Rc::new(frontier);
        self.memo.insert(key, Rc::clone(&frontier));
        frontier
    }

    fn enumerate_fills(
        &mut self,
        ty: usize,
        room: usize,
        counts: &mut Vec<usize>,
        fill: &mut Vec<usize>,
        servers_left: usize,
        frontier: &mut Vec<Pair>,
    ) {
        if ty == counts.len() {
            self.expansions += 1;
            let (mem, eq) = self.fill_totals(fill);
            let rest = self.solve(counts, servers_left - 1);
            for r in rest.iter() {
                insert_pareto(
                    frontier,
                    Pair {
                        mem: mem.max(r.mem),
                        eq: eq.max(r.eq),
                    },
                );
            }
            return;
        }
        let available = counts[ty].min(room);
        for take in 0..=available {
            counts[ty] -= take;
            fill[ty] = take;
            self.enumerate_fills(ty + 1, room - take, counts, fill, servers_left, frontier);
            fill[ty] = 0;
            counts[ty] += take;
        }
    }

    fn fill_totals(&self, fill: &[usize]) -> (i64, i64) {
        let mut mem = 0i64;
        let mut eq = 0i64;
        for (i, &n) in fill.iter().enumerate() {
            mem += self.types[i].mem * n as i64;
            eq += self.types[i].t * n as i64;
        }
        (mem, eq)
    }
}

/// Solves Algorithm 1 exactly, returning an Equation-5-optimal placement.
///
/// # Panics
///
/// Panics if the instance has more than [`MAX_TYPES`] distinct `R_m` values
/// (the exact DP's state space is exponential in the type count; use
/// [`crate::greedy::solve_greedy`] beyond that) or if no feasible placement
/// exists (cannot happen for instances accepted by
/// [`PlacementInstance::new`]).
pub fn solve_optimal(inst: &PlacementInstance) -> Placement {
    solve_optimal_stats(inst).0
}

/// Like [`solve_optimal`], additionally returning the deterministic
/// [`SolveStats`] work counters (Figure 14 reports these instead of
/// machine-dependent wall seconds).
pub fn solve_optimal_stats(inst: &PlacementInstance) -> (Placement, SolveStats) {
    // Group models into types by signed memory.
    let mut type_index: HashMap<i64, usize> = HashMap::new();
    let mut types: Vec<TypeInfo> = Vec::new();
    for (m, model) in inst.models.iter().enumerate() {
        let idx = *type_index.entry(model.mem_bytes).or_insert_with(|| {
            types.push(TypeInfo {
                mem: model.mem_bytes,
                t: model.t(),
                members: Vec::new(),
            });
            types.len() - 1
        });
        types[idx].members.push(m);
    }
    assert!(
        types.len() <= MAX_TYPES,
        "exact solver supports at most {MAX_TYPES} distinct model types, got {}",
        types.len()
    );

    let mut counts: Vec<usize> = types.iter().map(|t| t.members.len()).collect();
    let mut dp = Dp {
        types: &types,
        gpus_per_server: inst.gpus_per_server,
        memo: MemoMap::default(),
        expansions: 0,
    };
    let frontier = dp.solve(&mut counts, inst.servers);
    let best = frontier
        .iter()
        .min_by_key(|p| scalar(inst, **p))
        .copied()
        .expect("instance admits a feasible placement");

    // Reconstruct: walk servers, picking a fill whose combination with the
    // child frontier reproduces the optimal scalar.
    let mut assignment = vec![usize::MAX; inst.models.len()];
    let mut next_member: Vec<usize> = vec![0; types.len()];
    let target = scalar(inst, best);
    let mut servers_left = inst.servers;
    while servers_left > 0 {
        let fill = find_fill(&mut dp, &mut counts, servers_left, target, inst)
            .expect("optimal fill exists for every prefix");
        let server = inst.servers - servers_left;
        for (ty, &n) in fill.iter().enumerate() {
            for _ in 0..n {
                let member = dp.types[ty].members[next_member[ty]];
                next_member[ty] += 1;
                assignment[member] = server;
                counts[ty] -= 1;
            }
        }
        servers_left -= 1;
    }
    debug_assert!(assignment.iter().all(|&s| s < inst.servers));
    let stats = SolveStats {
        dp_states: dp.memo.len(),
        expansions: dp.expansions,
    };
    (Placement { assignment }, stats)
}

fn scalar(inst: &PlacementInstance, p: Pair) -> i128 {
    // Empty-server maxima: a MIN sentinel means "no server yet", which the
    // final objective treats as 0 only if no real server ever contributes —
    // impossible here since every server contributes at least (0, 0).
    let mem = p.mem.max(0);
    let eq = p.eq.max(0);
    mem as i128 + inst.gpu_mem_bytes as i128 * eq as i128
}

/// Finds a fill for the next server such that combining it with some point
/// of the child frontier achieves `target`.
fn find_fill(
    dp: &mut Dp<'_>,
    counts: &mut Vec<usize>,
    servers_left: usize,
    target: i128,
    inst: &PlacementInstance,
) -> Option<Vec<usize>> {
    let room = dp.gpus_per_server;
    let mut stack_fill = vec![0usize; counts.len()];
    find_fill_rec(
        dp,
        0,
        room,
        counts,
        &mut stack_fill,
        servers_left,
        target,
        inst,
    )
}

#[allow(clippy::too_many_arguments)]
fn find_fill_rec(
    dp: &mut Dp<'_>,
    ty: usize,
    room: usize,
    counts: &mut Vec<usize>,
    fill: &mut Vec<usize>,
    servers_left: usize,
    target: i128,
    inst: &PlacementInstance,
) -> Option<Vec<usize>> {
    if ty == counts.len() {
        let (mem, eq) = dp.fill_totals(fill);
        let rest = dp.solve(counts, servers_left - 1);
        for r in rest.iter() {
            let combined = Pair {
                mem: mem.max(r.mem),
                eq: eq.max(r.eq),
            };
            if scalar(inst, combined) <= target {
                return Some(fill.clone());
            }
        }
        return None;
    }
    let available = counts[ty].min(room);
    for take in 0..=available {
        counts[ty] -= take;
        fill[ty] = take;
        let found = find_fill_rec(
            dp,
            ty + 1,
            room - take,
            counts,
            fill,
            servers_left,
            target,
            inst,
        );
        fill[ty] = 0;
        counts[ty] += take;
        if found.is_some() {
            return found;
        }
    }
    None
}

/// Solves exactly when the instance has at most [`MAX_TYPES`] distinct
/// model types, otherwise falls back to the greedy heuristic - the API a
/// cluster scheduler would call on arbitrary inputs.
pub fn solve(inst: &PlacementInstance) -> Placement {
    let mut distinct: Vec<i64> = inst.models.iter().map(|m| m.mem_bytes).collect();
    distinct.sort_unstable();
    distinct.dedup();
    if distinct.len() <= MAX_TYPES {
        solve_optimal(inst)
    } else {
        crate::greedy::solve_greedy(inst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::solve_greedy;
    use crate::instance::ModelSpec;

    const GB: i64 = 1 << 30;

    fn brute_force(inst: &PlacementInstance) -> i128 {
        fn rec(inst: &PlacementInstance, m: usize, assignment: &mut Vec<usize>, best: &mut i128) {
            if m == inst.models.len() {
                let mut counts = vec![0usize; inst.servers];
                for &s in assignment.iter() {
                    counts[s] += 1;
                }
                if counts.iter().all(|&c| c <= inst.gpus_per_server) {
                    *best = (*best).min(inst.objective(assignment));
                }
                return;
            }
            for s in 0..inst.servers {
                assignment.push(s);
                rec(inst, m + 1, assignment, best);
                assignment.pop();
            }
        }
        let mut best = i128::MAX;
        rec(inst, 0, &mut Vec::new(), &mut best);
        best
    }

    fn fig4() -> PlacementInstance {
        PlacementInstance::new(
            2,
            2,
            80 * GB as u64,
            vec![
                ModelSpec::producer("v0", 40 * GB as u64),
                ModelSpec::producer("v1", 40 * GB as u64),
                ModelSpec::consumer("l0", 30 * GB as u64),
                ModelSpec::consumer("l1", 30 * GB as u64),
            ],
        )
    }

    #[test]
    fn figure4_colocates() {
        let inst = fig4();
        let p = solve_optimal(&inst);
        p.validate(&inst).unwrap();
        for s in 0..2 {
            let models = p.models_on(s);
            let roles: Vec<i64> = models.iter().map(|&m| inst.models[m].t()).collect();
            assert_eq!(roles.iter().sum::<i64>(), 0, "one producer + one consumer");
        }
    }

    #[test]
    fn matches_brute_force_on_small_instances() {
        let cases = vec![
            fig4(),
            PlacementInstance::new(
                3,
                2,
                80 * GB as u64,
                vec![
                    ModelSpec::producer("p0", 50 * GB as u64),
                    ModelSpec::producer("p1", 20 * GB as u64),
                    ModelSpec::consumer("c0", 45 * GB as u64),
                    ModelSpec::consumer("c1", 10 * GB as u64),
                    ModelSpec::consumer("c2", 10 * GB as u64),
                ],
            ),
            PlacementInstance::new(
                2,
                4,
                80 * GB as u64,
                vec![
                    ModelSpec::producer("p0", 60 * GB as u64),
                    ModelSpec::producer("p1", 60 * GB as u64),
                    ModelSpec::producer("p2", 30 * GB as u64),
                    ModelSpec::consumer("c0", 40 * GB as u64),
                    ModelSpec::consumer("c1", 40 * GB as u64),
                    ModelSpec::consumer("c2", 40 * GB as u64),
                ],
            ),
        ];
        for inst in cases {
            let p = solve_optimal(&inst);
            p.validate(&inst).unwrap();
            let opt = brute_force(&inst);
            assert_eq!(
                p.objective(&inst),
                opt,
                "DP must match brute force on {} models",
                inst.models.len()
            );
        }
    }

    #[test]
    fn optimal_never_worse_than_greedy() {
        let inst = PlacementInstance::new(
            4,
            8,
            80 * GB as u64,
            (0..12)
                .map(|i| ModelSpec::producer(format!("p{i}"), 40 * GB as u64))
                .chain((0..12).map(|i| ModelSpec::consumer(format!("c{i}"), 35 * GB as u64)))
                .collect(),
        );
        let opt = solve_optimal(&inst);
        let greedy = solve_greedy(&inst);
        opt.validate(&inst).unwrap();
        greedy.validate(&inst).unwrap();
        assert!(opt.objective(&inst) <= greedy.objective(&inst));
    }

    #[test]
    fn scales_to_16_gpus_with_three_types() {
        // A small Figure-14-style instance: 2 servers × 8 GPUs, three types.
        let inst = PlacementInstance::new(
            2,
            8,
            80 * GB as u64,
            (0..5)
                .map(|i| ModelSpec::producer(format!("img{i}"), 50 * GB as u64))
                .chain((0..5).map(|i| ModelSpec::producer(format!("aud{i}"), 60 * GB as u64)))
                .chain((0..6).map(|i| ModelSpec::consumer(format!("llm{i}"), 30 * GB as u64)))
                .collect(),
        );
        let p = solve_optimal(&inst);
        p.validate(&inst).unwrap();
    }

    #[test]
    #[should_panic(expected = "distinct model types")]
    fn too_many_types_rejected() {
        let inst = PlacementInstance::new(
            2,
            8,
            80 * GB as u64,
            (0..10)
                .map(|i| ModelSpec::producer(format!("m{i}"), (i as u64 + 1) << 30))
                .collect(),
        );
        solve_optimal(&inst);
    }

    #[test]
    fn solve_dispatches_by_type_count() {
        // Few types: exact.
        let small = fig4();
        assert_eq!(
            solve(&small).objective(&small),
            solve_optimal(&small).objective(&small)
        );
        // Many types: greedy fallback is still feasible.
        let many = PlacementInstance::new(
            4,
            8,
            80 * GB as u64,
            (0..20u64)
                .map(|i| {
                    if i % 2 == 0 {
                        ModelSpec::producer(format!("p{i}"), (i + 10) * GB as u64)
                    } else {
                        ModelSpec::consumer(format!("c{i}"), (i + 5) * GB as u64)
                    }
                })
                .collect(),
        );
        solve(&many).validate(&many).unwrap();
    }

    #[test]
    fn single_model_instance() {
        let inst = PlacementInstance::new(
            2,
            1,
            80 * GB as u64,
            vec![ModelSpec::consumer("c", 10 * GB as u64)],
        );
        let p = solve_optimal(&inst);
        p.validate(&inst).unwrap();
        assert_eq!(p.assignment.len(), 1);
    }
}
