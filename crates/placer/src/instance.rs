//! Placement instances, placements and the Equation-5 objective.

use serde::{Deserialize, Serialize};

/// Whether a model offers or needs HBM (the paper's `t_m`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Role {
    /// Compute-bound model with spare HBM (`t_m = +1`).
    Producer,
    /// Memory-bound model with an HBM deficit (`t_m = -1`).
    Consumer,
}

/// One model to place: name plus signed memory requirement `R_m`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ModelSpec {
    /// Model name (for reports).
    pub name: String,
    /// Signed memory in bytes: positive = excess offered (producer),
    /// negative = deficit (consumer). "The model's memory requirement is
    /// positive if it is a producer and negative if it is a consumer."
    pub mem_bytes: i64,
}

impl ModelSpec {
    /// A producer offering `excess` bytes.
    pub fn producer(name: impl Into<String>, excess: u64) -> Self {
        ModelSpec {
            name: name.into(),
            mem_bytes: excess as i64,
        }
    }

    /// A consumer needing `deficit` bytes.
    pub fn consumer(name: impl Into<String>, deficit: u64) -> Self {
        ModelSpec {
            name: name.into(),
            mem_bytes: -(deficit as i64),
        }
    }

    /// The paper's `t_m`: +1 for producers, −1 for consumers.
    pub fn t(&self) -> i64 {
        if self.mem_bytes >= 0 {
            1
        } else {
            -1
        }
    }

    /// Producer/consumer classification.
    pub fn role(&self) -> Role {
        if self.mem_bytes >= 0 {
            Role::Producer
        } else {
            Role::Consumer
        }
    }
}

/// The placement optimisation instance (Algorithm 1 inputs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementInstance {
    /// Number of servers `S`.
    pub servers: usize,
    /// GPUs per server `G`.
    pub gpus_per_server: usize,
    /// HBM per GPU `G_mem`, bytes.
    pub gpu_mem_bytes: u64,
    /// Models to place.
    pub models: Vec<ModelSpec>,
}

impl PlacementInstance {
    /// Builds an instance.
    ///
    /// # Panics
    ///
    /// Panics if the models cannot fit (`models.len() > servers × G`) or any
    /// dimension is zero.
    pub fn new(
        servers: usize,
        gpus_per_server: usize,
        gpu_mem_bytes: u64,
        models: Vec<ModelSpec>,
    ) -> Self {
        assert!(
            servers > 0 && gpus_per_server > 0,
            "cluster must be non-empty"
        );
        assert!(
            models.len() <= servers * gpus_per_server,
            "more models ({}) than GPUs ({})",
            models.len(),
            servers * gpus_per_server
        );
        PlacementInstance {
            servers,
            gpus_per_server,
            gpu_mem_bytes,
            models,
        }
    }

    /// Total GPUs in the cluster.
    pub fn total_gpus(&self) -> usize {
        self.servers * self.gpus_per_server
    }

    /// Equation-5 objective of an assignment (`model → server`), lower is
    /// better: `max_s(mem_s) + G_mem · max_s(eq_s)`.
    pub fn objective(&self, assignment: &[usize]) -> i128 {
        let mut mem = vec![0i64; self.servers];
        let mut eq = vec![0i64; self.servers];
        for (m, &s) in assignment.iter().enumerate() {
            mem[s] += self.models[m].mem_bytes;
            eq[s] += self.models[m].t();
        }
        let max_mem = mem.iter().copied().max().unwrap_or(0);
        let max_eq = eq.iter().copied().max().unwrap_or(0);
        max_mem as i128 + self.gpu_mem_bytes as i128 * max_eq as i128
    }
}

/// A computed placement: `assignment[m]` is the server hosting model `m`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    /// Server index per model.
    pub assignment: Vec<usize>,
}

/// Constraint-violation report from [`Placement::validate`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementError {
    /// A model was assigned to a server index outside `0..S`.
    ServerOutOfRange {
        /// Offending model index.
        model: usize,
        /// Assigned server.
        server: usize,
    },
    /// A server got more models than it has GPUs (Equation 2).
    ServerOverCapacity {
        /// Overfull server.
        server: usize,
        /// Models assigned to it.
        assigned: usize,
        /// Its GPU count.
        capacity: usize,
    },
    /// The assignment vector length does not equal the model count
    /// (Equation 1 — every model maps to exactly one server).
    WrongLength {
        /// Expected number of models.
        expected: usize,
        /// Actual assignment length.
        actual: usize,
    },
}

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementError::ServerOutOfRange { model, server } => {
                write!(f, "model {model} assigned to nonexistent server {server}")
            }
            PlacementError::ServerOverCapacity {
                server,
                assigned,
                capacity,
            } => write!(
                f,
                "server {server} holds {assigned} models but has {capacity} GPUs"
            ),
            PlacementError::WrongLength { expected, actual } => {
                write!(f, "assignment covers {actual} models, expected {expected}")
            }
        }
    }
}

impl std::error::Error for PlacementError {}

impl Placement {
    /// Indices of models assigned to `server`.
    pub fn models_on(&self, server: usize) -> Vec<usize> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|(_, &s)| s == server)
            .map(|(m, _)| m)
            .collect()
    }

    /// Checks Equations 1–2 against an instance.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self, inst: &PlacementInstance) -> Result<(), PlacementError> {
        if self.assignment.len() != inst.models.len() {
            return Err(PlacementError::WrongLength {
                expected: inst.models.len(),
                actual: self.assignment.len(),
            });
        }
        let mut counts = vec![0usize; inst.servers];
        for (m, &s) in self.assignment.iter().enumerate() {
            if s >= inst.servers {
                return Err(PlacementError::ServerOutOfRange {
                    model: m,
                    server: s,
                });
            }
            counts[s] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            if c > inst.gpus_per_server {
                return Err(PlacementError::ServerOverCapacity {
                    server: s,
                    assigned: c,
                    capacity: inst.gpus_per_server,
                });
            }
        }
        Ok(())
    }

    /// Objective value under an instance (Equation 5).
    pub fn objective(&self, inst: &PlacementInstance) -> i128 {
        inst.objective(&self.assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: u64 = 1 << 30;

    fn fig4_instance() -> PlacementInstance {
        PlacementInstance::new(
            2,
            2,
            80 * GB,
            vec![
                ModelSpec::producer("v0", 40 * GB),
                ModelSpec::producer("v1", 40 * GB),
                ModelSpec::consumer("l0", 30 * GB),
                ModelSpec::consumer("l1", 30 * GB),
            ],
        )
    }

    #[test]
    fn roles_and_signs() {
        let p = ModelSpec::producer("p", 10);
        let c = ModelSpec::consumer("c", 10);
        assert_eq!(p.t(), 1);
        assert_eq!(c.t(), -1);
        assert_eq!(p.role(), Role::Producer);
        assert_eq!(c.role(), Role::Consumer);
        assert_eq!(c.mem_bytes, -10);
    }

    #[test]
    fn objective_prefers_colocation() {
        let inst = fig4_instance();
        // Figure 4a: producers together, consumers together.
        let segregated = inst.objective(&[0, 0, 1, 1]);
        // Figure 4b: one producer + one consumer per server.
        let colocated = inst.objective(&[0, 1, 0, 1]);
        assert!(
            colocated < segregated,
            "colocated {colocated} must beat segregated {segregated}"
        );
    }

    #[test]
    fn validation_catches_violations() {
        let inst = fig4_instance();
        let ok = Placement {
            assignment: vec![0, 1, 0, 1],
        };
        assert!(ok.validate(&inst).is_ok());

        let too_short = Placement {
            assignment: vec![0, 1],
        };
        assert!(matches!(
            too_short.validate(&inst),
            Err(PlacementError::WrongLength { .. })
        ));

        let bad_server = Placement {
            assignment: vec![0, 1, 0, 7],
        };
        assert!(matches!(
            bad_server.validate(&inst),
            Err(PlacementError::ServerOutOfRange { .. })
        ));

        let overfull = Placement {
            assignment: vec![0, 0, 0, 1],
        };
        let err = overfull.validate(&inst).unwrap_err();
        assert!(matches!(err, PlacementError::ServerOverCapacity { .. }));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn models_on_lists_members() {
        let p = Placement {
            assignment: vec![0, 1, 0, 1],
        };
        assert_eq!(p.models_on(0), vec![0, 2]);
        assert_eq!(p.models_on(1), vec![1, 3]);
        assert!(p.models_on(2).is_empty());
    }

    #[test]
    #[should_panic(expected = "more models")]
    fn too_many_models_rejected() {
        PlacementInstance::new(
            1,
            1,
            GB,
            vec![ModelSpec::producer("a", 1), ModelSpec::producer("b", 1)],
        );
    }

    #[test]
    fn empty_server_contributes_zero_to_maxes() {
        let inst = PlacementInstance::new(2, 2, 80 * GB, vec![ModelSpec::consumer("c", 30 * GB)]);
        // Consumer alone: mem_0 = -30 GB, but server 1 is empty with mem = 0,
        // so max_s(mem_s) = 0 and max_s(eq_s) = 0.
        assert_eq!(inst.objective(&[0]), 0);
    }
}
