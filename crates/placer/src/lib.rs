//! # aqua-placer — optimal model placement (paper §4, Algorithm 1)
//!
//! AQUA-PLACER maps ML models to GPUs in a cluster so that every
//! memory-bound model (consumer) sits on the same fast inter-GPU network as
//! a memory-rich model (producer). The paper encodes the first step — models
//! to *servers* — as an integer program solved with Gurobi, then matches
//! producers to consumers *within* each server with simple stable matching.
//!
//! Gurobi is proprietary, so this crate implements Algorithm 1 exactly with
//! an in-house solver:
//!
//! * [`instance`] — the optimisation instance: `S` servers of `G` GPUs with
//!   `G_mem` HBM each, and models with signed memory requirements `R_m`
//!   (positive = producer excess, negative = consumer deficit) and type
//!   `t_m` (+1 producer / −1 consumer). The objective is the paper's
//!   Equation 5: `max_s(mem_s) + G_mem · max_s(eq_s)`.
//! * [`solver`] — an exact dynamic program over model *types* (models with
//!   equal `R_m` are interchangeable) with Pareto-frontier merging of the
//!   two max terms, accelerated by a precomputed fill catalog, a greedy
//!   incumbent bound, and sorted-frontier merges. It provably finds an
//!   Equation-5 optimum; its runtime grows with the number of distinct
//!   model types, which reproduces Figure 14's shape (mixed-modality
//!   inputs converge much slower than 50/50 LLM producer/consumer inputs).
//! * [`greedy`] — a first-fit-decreasing baseline for comparison and for
//!   instances with many distinct types.
//! * [`matching`] — Gale–Shapley producer↔consumer stable matching within a
//!   server ("AQUA-PLACER matches every consumer GPU with exactly one
//!   producer GPU", §4).
//!
//! # Example
//!
//! ```
//! use aqua_placer::prelude::*;
//!
//! // Figure 4's scenario: 2 servers × 2 GPUs, two vision producers
//! // (+40 GB) and two LLM consumers (−30 GB).
//! let inst = PlacementInstance::new(2, 2, 80 << 30, vec![
//!     ModelSpec::producer("vision-0", 40 << 30),
//!     ModelSpec::producer("vision-1", 40 << 30),
//!     ModelSpec::consumer("llm-0", 30 << 30),
//!     ModelSpec::consumer("llm-1", 30 << 30),
//! ]);
//! let placement = solve_optimal(&inst);
//! // The optimum colocates one producer with one consumer per server.
//! for s in 0..2 {
//!     let models = placement.models_on(s);
//!     assert_eq!(models.len(), 2);
//! }
//! assert!(placement.validate(&inst).is_ok());
//! ```

pub mod greedy;
pub mod instance;
pub mod matching;
pub mod solver;

pub mod prelude {
    //! Convenience re-exports.
    pub use crate::greedy::solve_greedy;
    pub use crate::instance::{ModelSpec, Placement, PlacementInstance, Role};
    pub use crate::matching::stable_match;
    pub use crate::solver::{
        solve, solve_optimal, solve_optimal_reference, solve_optimal_stats, SolveStats,
    };
}

pub use prelude::*;
