//! In-server producer↔consumer stable matching (paper §4).
//!
//! After AQUA-PLACER assigns models to servers, "within each server, it
//! matches producers to consumers using simple stable matching", and
//! "matches every consumer GPU with exactly one producer GPU that has
//! sufficient free memory to meet the consumer's memory deficit. Mapping a
//! single producer to multiple consumers is feasible but AQUA-PLACER does
//! not allow that by design" (to avoid splitting the producer's NVLink
//! bandwidth).
//!
//! Preferences on both sides are by *fit*: a consumer prefers the smallest
//! producer that covers its deficit (leaving big producers for big
//! consumers); a producer prefers the largest consumer it can cover. We run
//! consumer-proposing Gale–Shapley over those preference lists.

use crate::instance::{ModelSpec, Role};
use serde::{Deserialize, Serialize};

/// One producer↔consumer pair produced by [`stable_match`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MatchedPair {
    /// Index (into the input slice) of the consumer model.
    pub consumer: usize,
    /// Index (into the input slice) of the producer model.
    pub producer: usize,
}

/// Matches consumers to producers within one server, one-to-one.
///
/// Only pairs where the producer's excess covers the consumer's deficit are
/// admissible. Returns the stable matching under fit-based preferences;
/// consumers that no producer can cover remain unmatched (they fall back to
/// DRAM offloading at runtime).
///
/// # Example
///
/// ```
/// use aqua_placer::instance::ModelSpec;
/// use aqua_placer::matching::stable_match;
///
/// let models = vec![
///     ModelSpec::producer("sd", 50 << 30),
///     ModelSpec::consumer("opt", 20 << 30),
///     ModelSpec::producer("audio", 25 << 30),
///     ModelSpec::consumer("llama", 40 << 30),
/// ];
/// let pairs = stable_match(&models);
/// assert_eq!(pairs.len(), 2);
/// // The big consumer (llama, 40 GB) takes the only producer that covers
/// // it (sd, 50 GB); opt pairs with the audio producer.
/// assert!(pairs.iter().any(|p| p.consumer == 3 && p.producer == 0));
/// assert!(pairs.iter().any(|p| p.consumer == 1 && p.producer == 2));
/// ```
pub fn stable_match(models: &[ModelSpec]) -> Vec<MatchedPair> {
    let consumers: Vec<usize> = (0..models.len())
        .filter(|&m| models[m].role() == Role::Consumer)
        .collect();
    let producers: Vec<usize> = (0..models.len())
        .filter(|&m| models[m].role() == Role::Producer)
        .collect();

    // Consumer c's preference list: admissible producers, smallest first.
    let prefs: Vec<Vec<usize>> = consumers
        .iter()
        .map(|&c| {
            let deficit = -models[c].mem_bytes;
            let mut admissible: Vec<usize> = (0..producers.len())
                .filter(|&pi| models[producers[pi]].mem_bytes >= deficit)
                .collect();
            admissible.sort_by_key(|&pi| (models[producers[pi]].mem_bytes, pi));
            admissible
        })
        .collect();

    // Producer ranking of consumers: larger deficit preferred.
    let producer_rank = |pi: usize, ci: usize| -> i64 {
        let _ = pi;
        models[consumers[ci]].mem_bytes // more negative = bigger deficit = better
    };

    let mut next_proposal = vec![0usize; consumers.len()];
    let mut engaged_to: Vec<Option<usize>> = vec![None; producers.len()];
    let mut free: Vec<usize> = (0..consumers.len()).collect();
    // Propose larger consumers first for determinism (does not affect the
    // stable outcome with strict preferences).
    free.sort_by_key(|&ci| models[consumers[ci]].mem_bytes);

    while let Some(ci) = free.pop() {
        let list = &prefs[ci];
        let mut proposer = Some(ci);
        while let Some(c) = proposer {
            if next_proposal[c] >= prefs[c].len() {
                break; // exhausted: stays unmatched
            }
            let pi = prefs[c][next_proposal[c]];
            next_proposal[c] += 1;
            match engaged_to[pi] {
                None => {
                    engaged_to[pi] = Some(c);
                    proposer = None;
                }
                Some(current) => {
                    if producer_rank(pi, c) < producer_rank(pi, current) {
                        engaged_to[pi] = Some(c);
                        proposer = Some(current);
                    } else {
                        proposer = Some(c);
                    }
                }
            }
        }
        let _ = list;
    }

    let mut pairs: Vec<MatchedPair> = engaged_to
        .iter()
        .enumerate()
        .filter_map(|(pi, c)| {
            c.map(|ci| MatchedPair {
                consumer: consumers[ci],
                producer: producers[pi],
            })
        })
        .collect();
    pairs.sort_by_key(|p| p.consumer);
    pairs
}

/// Checks that a matching is stable: no consumer–producer pair would both
/// rather be matched to each other than to their assigned partners.
pub fn is_stable(models: &[ModelSpec], pairs: &[MatchedPair]) -> bool {
    let partner_of_consumer = |c: usize| pairs.iter().find(|p| p.consumer == c).map(|p| p.producer);
    let partner_of_producer = |p: usize| pairs.iter().find(|q| q.producer == p).map(|q| q.consumer);
    for c in 0..models.len() {
        if models[c].role() != Role::Consumer {
            continue;
        }
        let deficit = -models[c].mem_bytes;
        for p in 0..models.len() {
            if models[p].role() != Role::Producer || models[p].mem_bytes < deficit {
                continue;
            }
            // Would c prefer p over its current partner?
            let c_prefers = match partner_of_consumer(c) {
                None => true,
                Some(cur) => models[p].mem_bytes < models[cur].mem_bytes,
            };
            // Would p prefer c over its current partner?
            let p_prefers = match partner_of_producer(p) {
                None => true,
                Some(cur) => models[c].mem_bytes < models[cur].mem_bytes,
            };
            if c_prefers && p_prefers {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const GB: u64 = 1 << 30;

    #[test]
    fn empty_input_empty_matching() {
        assert!(stable_match(&[]).is_empty());
        assert!(is_stable(&[], &[]));
    }

    #[test]
    fn one_to_one_never_shares_a_producer() {
        let models = vec![
            ModelSpec::producer("p", 60 * GB),
            ModelSpec::consumer("c0", 10 * GB),
            ModelSpec::consumer("c1", 10 * GB),
        ];
        let pairs = stable_match(&models);
        assert_eq!(pairs.len(), 1, "a producer backs exactly one consumer");
        assert!(is_stable(&models, &pairs));
    }

    #[test]
    fn insufficient_producers_leave_consumers_unmatched() {
        let models = vec![
            ModelSpec::producer("small", 5 * GB),
            ModelSpec::consumer("big", 40 * GB),
        ];
        let pairs = stable_match(&models);
        assert!(pairs.is_empty(), "5 GB cannot cover a 40 GB deficit");
    }

    #[test]
    fn fit_based_pairing() {
        let models = vec![
            ModelSpec::producer("p-big", 50 * GB),
            ModelSpec::producer("p-small", 25 * GB),
            ModelSpec::consumer("c-big", 40 * GB),
            ModelSpec::consumer("c-small", 20 * GB),
        ];
        let pairs = stable_match(&models);
        assert_eq!(pairs.len(), 2);
        let find = |c: usize| pairs.iter().find(|p| p.consumer == c).unwrap().producer;
        assert_eq!(find(2), 0, "big consumer needs the big producer");
        assert_eq!(find(3), 1, "small consumer takes the small producer");
        assert!(is_stable(&models, &pairs));
    }

    proptest! {
        /// Matchings are always one-to-one, admissible and stable.
        #[test]
        fn matching_invariants(
            prods in proptest::collection::vec(1u64..80, 0..8),
            cons in proptest::collection::vec(1u64..80, 0..8),
        ) {
            let mut models = Vec::new();
            for (i, p) in prods.iter().enumerate() {
                models.push(ModelSpec::producer(format!("p{i}"), p * GB));
            }
            for (i, c) in cons.iter().enumerate() {
                models.push(ModelSpec::consumer(format!("c{i}"), c * GB));
            }
            let pairs = stable_match(&models);
            // One-to-one.
            let mut ps: Vec<usize> = pairs.iter().map(|p| p.producer).collect();
            let mut cs: Vec<usize> = pairs.iter().map(|p| p.consumer).collect();
            ps.sort_unstable(); ps.dedup();
            cs.sort_unstable(); cs.dedup();
            prop_assert_eq!(ps.len(), pairs.len());
            prop_assert_eq!(cs.len(), pairs.len());
            // Admissible: producer covers the deficit.
            for p in &pairs {
                prop_assert!(models[p.producer].mem_bytes >= -models[p.consumer].mem_bytes);
            }
            // Stable.
            prop_assert!(is_stable(&models, &pairs));
        }
    }
}
