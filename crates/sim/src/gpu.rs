//! GPU hardware specifications and per-GPU state.
//!
//! The paper's testbeds use NVIDIA A100-80G GPUs. [`GpuSpec`] captures the
//! three numbers the roofline cost models in `aqua-models` need — HBM
//! capacity, HBM bandwidth and dense-math throughput — plus the PCIe link to
//! host DRAM. [`Gpu`] pairs a spec with an [`HbmAllocator`] instance.

use crate::link::{bytes::gib, BandwidthModel};
use crate::memory::HbmAllocator;
use serde::{Deserialize, Serialize};

/// Index of a GPU within one server.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct GpuId(pub usize);

impl std::fmt::Display for GpuId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "gpu{}", self.0)
    }
}

/// Hardware specification of one GPU.
///
/// # Example
///
/// ```
/// use aqua_sim::gpu::GpuSpec;
/// let a100 = GpuSpec::a100_80g();
/// assert_eq!(a100.hbm_bytes, 80 * 1024 * 1024 * 1024);
/// assert!(a100.dense_flops > 1e14);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Human-readable device name.
    pub name: String,
    /// HBM capacity in bytes.
    pub hbm_bytes: u64,
    /// HBM bandwidth in bytes per second.
    pub hbm_bandwidth: f64,
    /// Peak dense fp16/bf16 tensor-core throughput in FLOP/s.
    pub dense_flops: f64,
    /// Fraction of peak FLOP/s realistically achieved by inference kernels.
    pub compute_efficiency: f64,
    /// PCIe link between this GPU and host DRAM.
    pub pcie: BandwidthModel,
}

impl GpuSpec {
    /// NVIDIA A100-80G: 80 GiB HBM2e at ~2.0 TB/s, 312 TFLOP/s dense fp16,
    /// PCIe gen4 ×16 to the host.
    pub fn a100_80g() -> Self {
        GpuSpec {
            name: "A100-80G".to_owned(),
            hbm_bytes: gib(80),
            hbm_bandwidth: 2.0e12,
            dense_flops: 312e12,
            compute_efficiency: 0.5,
            pcie: BandwidthModel::pcie_gen4_pinned(),
        }
    }

    /// Effective dense throughput (FLOP/s) after the efficiency factor.
    pub fn effective_flops(&self) -> f64 {
        self.dense_flops * self.compute_efficiency
    }
}

impl Default for GpuSpec {
    fn default() -> Self {
        Self::a100_80g()
    }
}

/// One GPU: its spec plus live HBM accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Gpu {
    /// Index of this GPU within its server.
    pub id: GpuId,
    /// Hardware specification.
    pub spec: GpuSpec,
    /// HBM accounting allocator.
    pub memory: HbmAllocator,
}

impl Gpu {
    /// Creates a GPU with an empty HBM allocator sized from the spec.
    pub fn new(id: GpuId, spec: GpuSpec) -> Self {
        let memory = HbmAllocator::new(spec.hbm_bytes);
        Gpu { id, spec, memory }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::RegionKind;

    #[test]
    fn a100_constants_are_sane() {
        let spec = GpuSpec::a100_80g();
        assert_eq!(spec.hbm_bytes, gib(80));
        assert!(spec.hbm_bandwidth > 1e12);
        assert!(spec.effective_flops() < spec.dense_flops);
        assert_eq!(GpuSpec::default(), spec);
    }

    #[test]
    fn gpu_memory_matches_spec() {
        let gpu = Gpu::new(GpuId(3), GpuSpec::a100_80g());
        assert_eq!(gpu.memory.capacity(), gib(80));
        assert_eq!(gpu.id.to_string(), "gpu3");
    }

    #[test]
    fn gpu_allocations_work_through_state() {
        let mut gpu = Gpu::new(GpuId(0), GpuSpec::a100_80g());
        let id = gpu.memory.alloc(RegionKind::Weights, gib(26)).unwrap();
        assert_eq!(gpu.memory.free_bytes(), gib(54));
        gpu.memory.free(id).unwrap();
    }
}
